package parsearch

// The reorganize chaos battery: incremental reorganization must be
// invisible to the query path. Readers hammer KNN/RangeQuery/
// PartialMatch while Reorganize cuts bucket splits in concurrently, and
// every answer must be byte-identical to the linear-scan oracle — no
// transiently torn structure, no dropped or duplicated point, ever.
// Variants add concurrent batched ingest (must-see/may-see oracle),
// mid-reorganize disk failure on a replicated index, and mid-reorganize
// process crashes on a durable index with reopen equivalence. The whole
// file is meant for `go test -race`.

import (
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"parsearch/internal/data"
	"parsearch/internal/fsx"
	"parsearch/internal/vec"
)

// driftedIndex builds an index over nUniform uniform points, then
// inserts nSkew points concentrated near the origin — the distribution
// shift that overloads the low buckets and gives Reorganize real work.
// It returns the index and the id→point oracle map.
func driftedIndex(t *testing.T, opts Options, nUniform, nSkew int) (*Index, map[int][]float64) {
	t.Helper()
	ix, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	expected := make(map[int][]float64, nUniform+nSkew)
	raw := make([][]float64, nUniform)
	for i, p := range data.Uniform(nUniform, opts.Dim, 1701) {
		raw[i] = p
		expected[i] = p
	}
	if err := ix.Build(raw); err != nil {
		t.Fatal(err)
	}
	for _, p := range data.Uniform(nSkew, opts.Dim, 1702) {
		q := make([]float64, opts.Dim)
		for j := range q {
			q[j] = p[j] * 0.2
		}
		id, err := ix.Insert(q)
		if err != nil {
			t.Fatal(err)
		}
		expected[id] = q
	}
	return ix, expected
}

// boxScan is the range/partial-match oracle: ids of the live points
// inside [lo, hi], ascending — RangeQuery's exact output order.
func boxScan(expected map[int][]float64, lo, hi []float64) []int {
	ids := []int{} // non-nil: DeepEqual-comparable with resultIDs on empty results
	for id, p := range expected {
		if inBox(p, lo, hi) {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids
}

// checkKNNExact fails unless the result is byte-identical to the
// linear-scan oracle over expected.
func checkKNNExact(t *testing.T, expected map[int][]float64, q []float64, k int, got []Neighbor, m vec.Metric) {
	t.Helper()
	want := linearScanKNN(expected, q, k, m)
	if len(got) != len(want) {
		t.Errorf("KNN returned %d neighbors, oracle has %d", len(got), len(want))
		return
	}
	for j := range got {
		if got[j].ID != want[j].id || got[j].Dist != want[j].dist {
			t.Errorf("KNN neighbor %d: got (id %d, dist %v), want (id %d, dist %v)",
				j, got[j].ID, got[j].Dist, want[j].id, want[j].dist)
			return
		}
	}
}

// resultIDs extracts the result ids.
func resultIDs(ns []Neighbor) []int {
	ids := make([]int, 0, len(ns))
	for _, n := range ns {
		ids = append(ids, n.ID)
	}
	return ids
}

// TestReorgChaosServingExact is the core battery: the point set is
// fixed, so while Reorganize churns bucket cut-ins, every concurrent
// query of every kind must match the oracle exactly.
func TestReorgChaosServingExact(t *testing.T) {
	opts := Options{Dim: 4, Disks: 8, QuantileSplits: true}
	ix, expected := driftedIndex(t, opts, 1200, stressIters(1600, 600))
	m, err := Euclidean.vecMetric()
	if err != nil {
		t.Fatal(err)
	}
	if !ix.NeedsReorganization() {
		t.Fatal("drifted index reports no reorganization need — workload too tame")
	}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(int64(400 + g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch rng.Intn(3) {
				case 0:
					q := randPoint(rng, opts.Dim)
					k := 1 + rng.Intn(8)
					got, _, err := ix.KNN(q, k)
					if err != nil {
						t.Errorf("KNN: %v", err)
						return
					}
					checkKNNExact(t, expected, q, k, got, m)
				case 1:
					lo, hi := randBox(rng, opts.Dim)
					got, _, err := ix.RangeQuery(lo, hi)
					if err != nil {
						t.Errorf("RangeQuery: %v", err)
						return
					}
					if want := boxScan(expected, lo, hi); !reflect.DeepEqual(resultIDs(got), want) {
						t.Errorf("RangeQuery ids %v, want %v", resultIDs(got), want)
						return
					}
				case 2:
					spec := make([]float64, opts.Dim)
					lo := make([]float64, opts.Dim)
					hi := make([]float64, opts.Dim)
					eps := 0.15
					specified := 0
					for j := range spec {
						if rng.Intn(2) == 0 {
							spec[j] = Wildcard
							lo[j], hi[j] = -1, 2
							continue
						}
						specified++
						spec[j] = rng.Float64()
						lo[j], hi[j] = spec[j]-eps, spec[j]+eps
					}
					if specified == 0 {
						continue
					}
					got, _, err := ix.PartialMatch(spec, eps)
					if err != nil {
						t.Errorf("PartialMatch: %v", err)
						return
					}
					if want := boxScan(expected, lo, hi); !reflect.DeepEqual(resultIDs(got), want) {
						t.Errorf("PartialMatch ids %v, want %v", resultIDs(got), want)
						return
					}
				}
			}
		}(g)
	}

	// Maintenance: repeated incremental reorganizations racing the
	// readers. Each round's cut-ins happen while queries are in flight.
	var total ReorgStats
	for round := 0; round < stressIters(5, 3); round++ {
		stats, err := ix.ReorganizeStats()
		if err != nil {
			t.Fatalf("Reorganize round %d: %v", round, err)
		}
		total.Steps += stats.Steps
		total.BucketsSplit += stats.BucketsSplit
		total.PointsMoved += stats.PointsMoved
		if stats.Rebuilt {
			t.Fatalf("round %d fell back to a full rebuild on a bucketed layout", round)
		}
		if err := ix.CheckIntegrity(); err != nil {
			t.Fatalf("integrity after round %d: %v", round, err)
		}
	}
	close(stop)
	readers.Wait()

	if total.Steps == 0 {
		t.Fatal("reorganization performed no incremental steps on a drifted index")
	}
	if ix.Metrics().ReorgBuckets != int64(total.BucketsSplit) {
		t.Fatalf("reorg_buckets metric %d, stats counted %d", ix.Metrics().ReorgBuckets, total.BucketsSplit)
	}
	verifyFinalState(t, ix, expected, opts)
}

// TestReorgChaosConcurrentIngest layers batched async ingest on top of
// the reorganize churn. With writers live the oracle is a moving
// target, so readers use the must-see/may-see check: a KNN answer must
// be exactly the linear scan over (everything acknowledged before the
// query started) ∪ (the points the answer itself returned) — late
// acks may appear, acknowledged points must never vanish.
func TestReorgChaosConcurrentIngest(t *testing.T) {
	opts := Options{Dim: 4, Disks: 6, QuantileSplits: true}
	ix, expected := driftedIndex(t, opts, 800, 600)
	m, err := Euclidean.vecMetric()
	if err != nil {
		t.Fatal(err)
	}

	var ackMu sync.Mutex
	acked := make(map[int][]float64, len(expected))
	for id, p := range expected {
		acked[id] = p
	}
	snapshotAcked := func() map[int][]float64 {
		ackMu.Lock()
		defer ackMu.Unlock()
		out := make(map[int][]float64, len(acked))
		for id, p := range acked {
			out[id] = p
		}
		return out
	}

	aw := NewAsyncWriter(ix, AsyncConfig{MaxBatch: 32})
	stop := make(chan struct{})
	var readers, writers sync.WaitGroup

	writers.Add(1)
	go func() {
		defer writers.Done()
		rng := rand.New(rand.NewSource(500))
		for i := 0; i < stressIters(900, 300); i++ {
			p := randPoint(rng, opts.Dim)
			for j := range p {
				p[j] *= 0.2 // keep drifting into the hot region
			}
			pend, err := aw.Insert(p)
			if err != nil {
				t.Errorf("async Insert: %v", err)
				return
			}
			id, err := pend.Wait()
			if err != nil {
				t.Errorf("async ack: %v", err)
				return
			}
			ackMu.Lock()
			acked[id] = p
			ackMu.Unlock()
		}
	}()

	for g := 0; g < 3; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(int64(510 + g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				mustSee := snapshotAcked()
				q := randPoint(rng, opts.Dim)
				k := 1 + rng.Intn(8)
				got, _, err := ix.KNN(q, k)
				if err != nil {
					t.Errorf("KNN: %v", err)
					return
				}
				// Union the answer's own points in: anything it returned
				// beyond the must-see set was acked mid-query, which is
				// legal — but given that union, the answer must be the
				// exact k nearest.
				union := mustSee
				for _, n := range got {
					union[n.ID] = n.Point
				}
				checkKNNExact(t, union, q, k, got, m)
			}
		}(g)
	}

	var maintenance sync.WaitGroup
	maintenance.Add(1)
	go func() {
		defer maintenance.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := ix.Reorganize(); err != nil {
				t.Errorf("Reorganize: %v", err)
				return
			}
		}
	}()

	writers.Wait()
	if err := aw.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	close(stop)
	readers.Wait()
	maintenance.Wait()
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	if got := ix.Metrics().IngestBatches; got == 0 {
		t.Fatal("ingest_batches metric stayed zero across the async workload")
	}
	// Quiesced: the full acked set is the oracle again.
	verifyFinalState(t, ix, snapshotAcked(), opts)
}

// TestReorgChaosDiskFailure reorganizes while disks fail and heal. With
// Replication 1 and at most one failed disk, every query has a live
// copy of everything: answers must stay exact (never Degraded) even
// when the failure lands mid-cut-in.
func TestReorgChaosDiskFailure(t *testing.T) {
	opts := Options{Dim: 5, Disks: 6, Replication: 1, QuantileSplits: true}
	ix, expected := driftedIndex(t, opts, 900, stressIters(1200, 500))
	m, err := Euclidean.vecMetric()
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var flipper, readers sync.WaitGroup
	flipper.Add(1)
	go func() {
		defer flipper.Done()
		rng := rand.New(rand.NewSource(600))
		for {
			select {
			case <-stop:
				return
			default:
			}
			d := rng.Intn(opts.Disks)
			ix.FailDisk(d) // one at a time: the chained replica stays live
			ix.HealDisk(d)
		}
	}()
	for g := 0; g < 3; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(int64(610 + g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := randPoint(rng, opts.Dim)
				k := 1 + rng.Intn(6)
				got, stats, err := ix.KNN(q, k)
				checkFailureOutcome(t, expected, q, k, got, stats.Degraded, err, m)
			}
		}(g)
	}

	steps := 0
	for round := 0; round < stressIters(5, 3); round++ {
		stats, err := ix.ReorganizeStats()
		if err != nil {
			t.Fatalf("Reorganize under failures: %v", err)
		}
		steps += stats.Steps
	}
	close(stop)
	readers.Wait()
	flipper.Wait()
	if steps == 0 {
		t.Fatal("no incremental steps ran while disks were flipping")
	}
	for d := 0; d < opts.Disks; d++ {
		ix.HealDisk(d)
	}
	verifyFinalState(t, ix, expected, opts)
}

// TestReorgChaosApproxRecall runs the approximate tier through the
// live-mutation gauntlet: approximate queries (ε + LSH recall target)
// while Reorganize cuts buckets in and an ingest stream drifts the
// distribution. The oracle is recomputed per phase — quiesced before,
// concurrent during (against the points acknowledged before the phase
// started: late inserts may displace a hit but acknowledged points set
// the bar), quiesced after — and the measured recall must hold its
// floor in every phase. Approximation must never shorten a result set,
// whatever the churn.
func TestReorgChaosApproxRecall(t *testing.T) {
	opts := Options{Dim: 4, Disks: 6, QuantileSplits: true, LSH: true, PageSize: 256}
	ix, expected := driftedIndex(t, opts, 900, stressIters(900, 400))
	m, err := Euclidean.vecMetric()
	if err != nil {
		t.Fatal(err)
	}
	if !ix.NeedsReorganization() {
		t.Fatal("drifted index reports no reorganization need — workload too tame")
	}

	const k = 8
	knobs := Approx{Epsilon: 0.1, RecallTarget: 0.9}
	approxActivity := 0

	// measureRecall runs nq seeded approximate queries against the given
	// oracle and returns the mean recall; every answer must be exactly k
	// long and honor the ε contract relative to the oracle's kth distance
	// (a valid upper bound even while inserts add closer points).
	measureRecall := func(oracle map[int][]float64, seed int64, nq int) float64 {
		rng := rand.New(rand.NewSource(seed))
		var sum float64
		for qi := 0; qi < nq; qi++ {
			q := randPoint(rng, opts.Dim)
			got, stats, err := ix.KNNApprox(q, k, knobs)
			if err != nil {
				t.Fatalf("approx KNN: %v", err)
			}
			if len(got) != k {
				t.Fatalf("query %d: approx returned %d neighbors, want %d — silently short under churn",
					qi, len(got), k)
			}
			approxActivity += stats.PagesSkippedApprox + stats.ProbePages
			want := linearScanKNN(oracle, q, k, m)
			kth := want[len(want)-1].dist
			hits := make(map[int]bool, len(want))
			for _, h := range want {
				hits[h.id] = true
			}
			n := 0
			for _, nb := range got {
				if hits[nb.ID] {
					n++
				}
				if nb.Dist > (1+knobs.Epsilon)*kth+1e-9 {
					t.Fatalf("query %d: dist %v exceeds (1+ε)·kth = %v", qi, nb.Dist, (1+knobs.Epsilon)*kth)
				}
			}
			sum += float64(n) / float64(len(want))
		}
		return sum / float64(nq)
	}
	snapshot := func() map[int][]float64 {
		out := make(map[int][]float64, len(expected))
		for id, p := range expected {
			out[id] = p
		}
		return out
	}

	// Phase 1: quiesced, pre-reorganize.
	if r := measureRecall(snapshot(), 2001, 25); r < 0.9 {
		t.Errorf("pre-reorganize recall %.3f below 0.9", r)
	}

	// Phase 2: queries race an incremental reorganize and an ingest
	// stream. The oracle is the phase-start snapshot; inserts landing
	// mid-phase may displace hits, so the floor is looser.
	oracle := snapshot()
	done := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(2)
	go func() {
		defer churn.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if err := ix.Reorganize(); err != nil {
				t.Errorf("Reorganize: %v", err)
				return
			}
		}
	}()
	ingested := make(map[int][]float64)
	go func() {
		defer churn.Done()
		rng := rand.New(rand.NewSource(2002))
		for i := 0; i < stressIters(400, 150); i++ {
			p := randPoint(rng, opts.Dim)
			for j := range p {
				p[j] *= 0.2
			}
			id, err := ix.Insert(p)
			if err != nil {
				t.Errorf("Insert: %v", err)
				return
			}
			ingested[id] = p
		}
	}()
	if r := measureRecall(oracle, 2003, 40); r < 0.8 {
		t.Errorf("mid-churn recall %.3f below 0.8", r)
	}
	close(done)
	churn.Wait()
	for id, p := range ingested {
		expected[id] = p
	}

	// Phase 3: quiesced again over the full surviving set; one more
	// reorganize settles the drift the phase-2 stream caused.
	if err := ix.Reorganize(); err != nil {
		t.Fatal(err)
	}
	if err := ix.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	if r := measureRecall(snapshot(), 2004, 25); r < 0.9 {
		t.Errorf("post-reorganize recall %.3f below 0.9", r)
	}
	if approxActivity == 0 {
		t.Error("no pages skipped or probed across the whole chaos run — approximate tier was inert")
	}
	verifyFinalState(t, ix, expected, opts)
}

// TestReorgChaosCrashDuringReorganize crashes a durable index at a
// sweep of write offsets inside the Reorganize-time checkpoint, then
// recovers. Reorganization only restructures — it must never move the
// logical contents — so every recovery, whatever the crash point, must
// reproduce the pre-reorganize table and answers exactly.
func TestReorgChaosCrashDuringReorganize(t *testing.T) {
	opts := durableOpts()
	opts.QuantileSplits = true
	// Small pages: the balance slack is one leaf's worth of points, and
	// the default page holds more points than this whole workload.
	opts.PageSize = 256

	// Deterministic drifting workload, shared by the golden run and
	// every crash run.
	workload := func(ix *Index) error {
		for i := 0; i < 60; i++ {
			if _, err := ix.Insert(durPoint(i, opts.Dim)); err != nil {
				return err
			}
		}
		for i := 0; i < 140; i++ {
			p := durPoint(i, opts.Dim)
			for j := range p {
				p[j] *= 0.05
			}
			if _, err := ix.Insert(p); err != nil {
				return err
			}
		}
		return nil
	}

	// Golden run: no failpoints. Everything written from `base` on
	// belongs to the reorganize (bucket cut-ins + sealing checkpoint).
	golden := fsx.NewMem()
	gix, err := openDurable(opts, golden)
	if err != nil {
		t.Fatal(err)
	}
	if err := workload(gix); err != nil {
		t.Fatal(err)
	}
	wantTable := tableOf(gix)
	queries := make([][]float64, 8)
	wantAnswers := make([][]Neighbor, len(queries))
	for q := range queries {
		queries[q] = durPoint(q*17+3, opts.Dim)
		if wantAnswers[q], _, err = gix.KNN(queries[q], 5); err != nil {
			t.Fatal(err)
		}
	}
	base := golden.TotalWritten()
	stats, err := gix.ReorganizeStats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Steps == 0 || !stats.Checkpointed {
		t.Fatalf("golden reorganize did nothing to crash into: %+v", stats)
	}
	total := golden.TotalWritten()
	if total <= base {
		t.Fatal("reorganize wrote nothing durable")
	}

	var offsets []int64
	for _, b := range golden.WriteBoundaries() {
		if b >= base && b < total {
			offsets = append(offsets, b, b+3)
		}
	}
	if testing.Short() && len(offsets) > 24 {
		offsets = offsets[:24]
	}
	if len(offsets) < 4 {
		t.Fatalf("only %d crash points in the reorganize window", len(offsets))
	}

	for _, off := range offsets {
		fs := fsx.NewMem()
		ix, err := openDurable(opts, fs)
		if err != nil {
			t.Fatal(err)
		}
		if err := workload(ix); err != nil {
			t.Fatal(err)
		}
		fs.CrashAfter(off)
		// The reorganize dies mid-write (in-memory cut-ins may or may
		// not have landed; the checkpoint may be torn).
		if err := ix.Reorganize(); err == nil && !fs.Crashed() {
			t.Fatalf("offset %d: reorganize finished without hitting the crash point", off)
		}
		re, err := openDurable(opts, fs.DurableView())
		if err != nil {
			t.Fatalf("offset %d: recovery failed: %v", off, err)
		}
		if got := tableOf(re); !reflect.DeepEqual(got, wantTable) {
			t.Fatalf("offset %d: recovered table differs from pre-crash contents", off)
		}
		for q := range queries {
			got, _, err := re.KNN(queries[q], 5)
			if err != nil {
				t.Fatalf("offset %d query %d: %v", off, q, err)
			}
			if !reflect.DeepEqual(got, wantAnswers[q]) {
				t.Fatalf("offset %d query %d: recovered answer differs from pre-crash", off, q)
			}
		}
		if err := re.CheckIntegrity(); err != nil {
			t.Fatalf("offset %d: %v", off, err)
		}
	}
}

// TestReorganizeThenCrashKeepsSemantics is the regression test for two
// bugs around the reorganize/durability seam. (1) Reorganize used to
// discard the adaptive splitter (ix.adaptive = nil), so the drift
// statistics restarted from midpoint references and an index serving
// skewed data re-triggered reorganization forever; it must instead
// adopt the new quantiles, so inserts from the same distribution keep
// NeedsReorganization false. (2) A crash immediately after Reorganize
// must recover to the same answers and the same NeedsReorganization
// verdict — the sealing checkpoint makes the reorganized structure the
// recovery baseline instead of a long log replay.
func TestReorganizeThenCrashKeepsSemantics(t *testing.T) {
	opts := durableOpts()
	opts.QuantileSplits = true
	opts.PageSize = 256
	fs := fsx.NewMem()
	ix, err := openDurable(opts, fs)
	if err != nil {
		t.Fatal(err)
	}
	// A stationary skewed distribution: the same cluster before and
	// after the reorganize, so post-reorganize inserts are NOT drift.
	skewPool := data.Uniform(280, opts.Dim, 1900)
	skewed := func(i int) []float64 {
		p := append([]float64(nil), skewPool[i%len(skewPool)]...)
		for j := range p {
			p[j] *= 0.05
		}
		return p
	}
	for _, p := range data.Uniform(40, opts.Dim, 1901) {
		if _, err := ix.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 160; i++ {
		if _, err := ix.Insert(skewed(i)); err != nil {
			t.Fatal(err)
		}
	}
	if !ix.NeedsReorganization() {
		t.Fatal("drifted index reports no reorganization need")
	}
	genBefore := ix.Durability().Generation

	stats, err := ix.ReorganizeStats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Steps == 0 || !stats.Checkpointed {
		t.Fatalf("reorganize did not restructure and seal: %+v", stats)
	}
	if gen := ix.Durability().Generation; gen <= genBefore {
		t.Fatalf("sealing checkpoint did not rotate: generation %d -> %d", genBefore, gen)
	}
	if ix.NeedsReorganization() {
		t.Fatal("reorganization did not clear the drift signal")
	}
	// The splitter must have adopted the new quantiles: more data from
	// the SAME skewed distribution is not drift and must not re-trigger.
	for i := 160; i < 280; i++ {
		if _, err := ix.Insert(skewed(i)); err != nil {
			t.Fatal(err)
		}
	}
	if ix.NeedsReorganization() {
		t.Fatal("same-distribution inserts re-triggered reorganization (splitter was reset)")
	}
	needsBefore := ix.NeedsReorganization()
	wantTable := tableOf(ix)
	queries := make([][]float64, 6)
	wantAnswers := make([][]Neighbor, len(queries))
	for q := range queries {
		queries[q] = skewed(q*13 + 2)
		if wantAnswers[q], _, err = ix.KNN(queries[q], 5); err != nil {
			t.Fatal(err)
		}
	}

	// Crash (no Close) and recover: only fsynced bytes survive.
	re, err := openDurable(opts, fs.DurableView())
	if err != nil {
		t.Fatal(err)
	}
	if got := tableOf(re); !reflect.DeepEqual(got, wantTable) {
		t.Fatal("recovered table differs from pre-crash contents")
	}
	for q := range queries {
		got, _, err := re.KNN(queries[q], 5)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, wantAnswers[q]) {
			t.Fatalf("query %d: recovered answer differs from pre-crash", q)
		}
	}
	if err := re.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	if got := re.NeedsReorganization(); got != needsBefore {
		t.Fatalf("recovered NeedsReorganization = %v, pre-crash %v", got, needsBefore)
	}
	// The checkpoint bounds the replay: recovery starts from the sealed
	// snapshot, not the whole mutation history.
	if rec := re.Recovery(); rec.Records > 121 {
		t.Fatalf("recovery replayed %d records — the reorganize checkpoint did not bound the log", rec.Records)
	}
}

// TestReorgChaosStorageFaultMidReorganize injects a one-shot write
// error inside the reorganize-time checkpoint on a live (not crashed)
// process: Reorganize must surface the failure, and the index must keep
// serving exact answers on its in-memory state.
func TestReorgChaosStorageFaultMidReorganize(t *testing.T) {
	opts := durableOpts()
	opts.QuantileSplits = true
	opts.PageSize = 256
	fs := fsx.NewMem()
	ix, err := openDurable(opts, fs)
	if err != nil {
		t.Fatal(err)
	}
	expected := make(map[int][]float64)
	for i := 0; i < 50; i++ {
		p := durPoint(i, opts.Dim)
		if i >= 15 {
			for j := range p {
				p[j] *= 0.05
			}
		}
		id, err := ix.Insert(p)
		if err != nil {
			t.Fatal(err)
		}
		expected[id] = p
	}
	fs.FailWriteAt(fs.TotalWritten() + 64) // lands inside the sealing checkpoint
	stats, err := ix.ReorganizeStats()
	if stats.Steps == 0 {
		t.Fatalf("reorganize did no incremental steps: %+v (err %v)", stats, err)
	}
	if err == nil && stats.Checkpointed {
		t.Fatalf("reorganize checkpoint swallowed the injected write error: %+v", stats)
	}
	if errors.Is(err, ErrClosed) {
		t.Fatalf("injected fault closed the index: %v", err)
	}
	m, _ := Euclidean.vecMetric()
	for q := 0; q < 6; q++ {
		query := durPoint(q*9+1, opts.Dim)
		got, _, err := ix.KNN(query, 4)
		if err != nil {
			t.Fatalf("KNN after storage fault: %v", err)
		}
		checkKNNExact(t, expected, query, 4, got, m)
	}
	if err := ix.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}
