// Command parsearch-coord serves a multi-node parsearch cluster: it
// fans queries out to a set of parsearchd shard daemons (package
// coord), merges the per-group answers into results byte-identical to
// the single-process library, and drains gracefully on SIGTERM/SIGINT.
//
// Usage:
//
//	parsearch-coord -shards http://s0:7080,http://s1:7080,http://s2:7080 \
//	    -dim 10 -disks 16 -listen :7090
//
// Shard i primarily serves group i of the disk → disk mod m partition;
// every shard holds the full snapshot (bootstrap one with
// parsearchd -catchup-from), so a dead shard's groups fail over to the
// next live shard. The coordinator re-probes shard health every
// -health-interval and on every GET /healthz.
//
// Endpoints: POST /v1/{knn,range,partialmatch,batch}; GET /healthz,
// /varz, /statusz — the same surface as parsearchd, so package client
// works against a cluster unchanged.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"parsearch"
	"parsearch/coord"
)

// config collects the flag values.
type config struct {
	shards   string
	listen   string
	dim      int
	disks    int
	strategy string

	maxInFlight    int
	maxQueue       int
	timeout        time.Duration
	drainTimeout   time.Duration
	healthInterval time.Duration
}

func parseFlags(args []string) (config, error) {
	var c config
	fs := flag.NewFlagSet("parsearch-coord", flag.ContinueOnError)
	fs.StringVar(&c.shards, "shards", "", "comma-separated shard daemon base URLs; shard i serves group i (required)")
	fs.StringVar(&c.listen, "listen", ":7090", "listen address")
	fs.IntVar(&c.dim, "dim", 10, "vector dimensionality of the served index")
	fs.IntVar(&c.disks, "disks", 16, "declustered disk count of the served index")
	fs.StringVar(&c.strategy, "strategy", "near-optimal", "declustering strategy (drives home-group routing)")
	fs.IntVar(&c.maxInFlight, "max-in-flight", 64, "admission: max concurrent fan-outs")
	fs.IntVar(&c.maxQueue, "max-queue", 128, "admission: max queued requests (excess gets 429)")
	fs.DurationVar(&c.timeout, "timeout", 10*time.Second, "default per-request deadline")
	fs.DurationVar(&c.drainTimeout, "drain-timeout", 30*time.Second, "max wait for in-flight fan-outs on shutdown")
	fs.DurationVar(&c.healthInterval, "health-interval", 2*time.Second, "shard health re-probe interval")
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	return c, nil
}

// run is main minus the exit code, separated for tests. ready, when
// non-nil, receives the bound listen address once serving.
func run(ctx context.Context, c config, ready chan<- string) error {
	var shards []string
	for _, s := range strings.Split(c.shards, ",") {
		if s = strings.TrimSpace(s); s != "" {
			shards = append(shards, s)
		}
	}
	co, err := coord.New(coord.Config{
		Shards: shards,
		Dim:    c.dim,
		Disks:  c.disks,
		Kind:   parsearch.Kind(c.strategy),
	})
	if err != nil {
		return err
	}
	if live := co.CheckHealth(ctx); live < len(shards) {
		fmt.Fprintf(os.Stderr, "parsearch-coord: %d of %d shards live at startup\n", live, len(shards))
	}
	srv, err := coord.NewServer(co, coord.ServerConfig{
		MaxInFlight:    c.maxInFlight,
		MaxQueue:       c.maxQueue,
		DefaultTimeout: c.timeout,
		ExpvarName:     "parsearch_coord",
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", c.listen)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(os.Stderr, "parsearch-coord: coordinating %d shard groups over %d disks at %s\n",
		co.Groups(), co.Disks(), ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	watchCtx, stopWatch := context.WithCancel(context.Background())
	defer stopWatch()
	go co.WatchHealth(watchCtx, c.healthInterval)

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case <-ctx.Done():
	case err := <-serveErr:
		return err
	}

	fmt.Fprintln(os.Stderr, "parsearch-coord: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), c.drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "parsearch-coord: drain incomplete: %v\n", err)
	}
	if err := hs.Shutdown(drainCtx); err != nil {
		return err
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(os.Stderr, "parsearch-coord: drained, bye")
	return nil
}

func main() {
	c, err := parseFlags(os.Args[1:])
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	if err := run(ctx, c, nil); err != nil {
		fmt.Fprintf(os.Stderr, "parsearch-coord: %v\n", err)
		os.Exit(1)
	}
}
