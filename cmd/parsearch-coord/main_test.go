package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"parsearch/client"
)

// buildBinaries compiles parsearchd and parsearch-coord once into a
// temp dir, returning their paths.
func buildBinaries(t *testing.T) (shardBin, coordBin string) {
	t.Helper()
	dir := t.TempDir()
	shardBin = filepath.Join(dir, "parsearchd")
	coordBin = filepath.Join(dir, "parsearch-coord")
	for bin, pkg := range map[string]string{
		shardBin: "parsearch/cmd/parsearchd",
		coordBin: "parsearch/cmd/parsearch-coord",
	} {
		cmd := exec.Command("go", "build", "-o", bin, pkg)
		cmd.Dir = "../.." // module root
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}
	return shardBin, coordBin
}

// startProc launches a daemon binary and scans its stderr for the
// "at HOST:PORT" serving line, returning the base URL and the process.
func startProc(t *testing.T, bin string, args ...string) (string, *exec.Cmd) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	})

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if !strings.Contains(line, "serving") && !strings.Contains(line, "coordinating") {
				continue
			}
			if i := strings.LastIndex(line, " at "); i >= 0 {
				select {
				case addrCh <- strings.TrimSpace(line[i+4:]):
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return "http://" + addr, cmd
	case <-time.After(30 * time.Second):
		t.Fatalf("%s did not report a listen address", filepath.Base(bin))
		return "", nil
	}
}

// TestThreeProcessCluster is the deployment-shaped acceptance test: a
// leader parsearchd seeds a durable dataset, two followers bootstrap
// full snapshots from it over the catch-up protocol, a parsearch-coord
// process coordinates the three, and the cluster keeps answering
// exactly after one shard dies.
func TestThreeProcessCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess cluster test; skipped with -short")
	}
	shardBin, coordBin := buildBinaries(t)
	ctx := context.Background()

	const (
		dim, disks, points = 6, 16, 2000
	)
	common := []string{
		"-listen", "127.0.0.1:0",
		"-dim", fmt.Sprint(dim), "-disks", fmt.Sprint(disks),
		"-no-coalesce",
	}

	// Leader: seeds the durable dataset.
	leaderDir := filepath.Join(t.TempDir(), "leader")
	leaderURL, _ := startProc(t, shardBin, append(common,
		"-durable-dir", leaderDir, "-points", fmt.Sprint(points))...)

	// Followers: bootstrap their full snapshot from the leader with the
	// catch-up protocol, then serve it.
	shardURLs := []string{leaderURL}
	var followers []*exec.Cmd
	for i := 0; i < 2; i++ {
		dir := filepath.Join(t.TempDir(), fmt.Sprintf("follower%d", i))
		url, cmd := startProc(t, shardBin, append(common,
			"-durable-dir", dir, "-catchup-from", leaderURL, "-points", "0")...)
		shardURLs = append(shardURLs, url)
		followers = append(followers, cmd)
	}

	// Every shard must hold the identical dataset: same healthz disks,
	// same answer to a spot-check query.
	q := make([]float64, dim)
	for i := range q {
		q[i] = 0.4 + 0.02*float64(i)
	}
	spot := ""
	for i, u := range shardURLs {
		ns, err := client.New(u).KNN(ctx, q, 5)
		if err != nil {
			t.Fatalf("shard %d spot query: %v", i, err)
		}
		b, _ := json.Marshal(ns)
		if spot == "" {
			spot = string(b)
		} else if string(b) != spot {
			t.Fatalf("shard %d dataset differs from leader after catch-up", i)
		}
	}

	// The coordinator over the three processes.
	coordURL, coordCmd := startProc(t, coordBin,
		"-shards", strings.Join(shardURLs, ","),
		"-dim", fmt.Sprint(dim), "-disks", fmt.Sprint(disks),
		"-listen", "127.0.0.1:0", "-health-interval", "100ms")
	cl := client.New(coordURL)

	want, err := client.New(leaderURL).KNN(ctx, q, 10)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cl.KNN(ctx, q, 10)
	if err != nil {
		t.Fatal(err)
	}
	wb, _ := json.Marshal(want)
	gb, _ := json.Marshal(got)
	if string(gb) != string(wb) {
		t.Error("coordinated result differs from a full single-shard query")
	}

	// Kill one follower outright; the cluster keeps answering exactly.
	_ = followers[0].Process.Kill()
	_, _ = followers[0].Process.Wait()
	got, err = cl.KNN(ctx, q, 10)
	if err != nil {
		t.Fatalf("query after shard kill: %v", err)
	}
	if gb, _ := json.Marshal(got); string(gb) != string(wb) {
		t.Error("post-kill coordinated result differs")
	}
	// The health view converges to rerouted (the watcher probes every
	// 100ms).
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(coordURL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var h struct {
			Status string `json:"status"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&h)
		resp.Body.Close()
		if h.Status == "rerouted" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("health never reached rerouted, last %q", h.Status)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Graceful coordinator shutdown on SIGTERM.
	if err := coordCmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- coordCmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("coordinator exit after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("coordinator did not exit after SIGTERM")
	}
}

// TestCoordBadFlags pins flag validation failures.
func TestCoordBadFlags(t *testing.T) {
	if _, err := parseFlags([]string{"-bogus"}); err == nil {
		t.Error("unknown flag accepted")
	}
	c, err := parseFlags([]string{"-shards", ""})
	if err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), c, nil); err == nil {
		t.Error("run accepted an empty shard list")
	}
}
