package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return out.String(), errb.String(), code
}

func TestColorsMode(t *testing.T) {
	out, _, code := runCLI(t, "-d", "16", "-colors")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if !strings.Contains(out, "colors required by col: 32") {
		t.Errorf("output missing staircase value:\n%s", out)
	}
	if !strings.Contains(out, "lower bound 17, upper bound 32") {
		t.Errorf("output missing bounds:\n%s", out)
	}
}

func TestVerifyNearOptimal(t *testing.T) {
	out, _, code := runCLI(t, "-d", "3", "-strategy", "new", "-verify")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if !strings.Contains(out, "near-optimal: yes") {
		t.Errorf("col should verify clean in d=3:\n%s", out)
	}
	// The d=3 table prints all 8 quadrants.
	if strings.Count(out, "bucket ") != 8 {
		t.Errorf("expected 8 table rows:\n%s", out)
	}
}

func TestVerifyFindsViolations(t *testing.T) {
	out, _, code := runCLI(t, "-d", "3", "-strategy", "HIL", "-verify")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if !strings.Contains(out, "near-optimal: NO") {
		t.Errorf("Hilbert should violate near-optimality in d=3 (Lemma 1):\n%s", out)
	}
}

func TestAllStrategies(t *testing.T) {
	out, _, code := runCLI(t, "-d", "3", "-strategy", "all")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	for _, name := range []string{"new", "DM", "FX", "HIL", "direct-only"} {
		if !strings.Contains(out, "strategy "+name) {
			t.Errorf("missing strategy %s:\n%s", name, out)
		}
	}
}

func TestErrors(t *testing.T) {
	for name, args := range map[string][]string{
		"bad dimension": {"-d", "0"},
		"huge dim":      {"-d", "30"},
		"bad strategy":  {"-strategy", "nope"},
		"bad flag":      {"-nonsense"},
	} {
		_, errOut, code := runCLI(t, args...)
		if code == 0 {
			t.Errorf("%s: expected nonzero exit", name)
		}
		if errOut == "" {
			t.Errorf("%s: expected a message on stderr", name)
		}
	}
}
