package main

// Golden-file tests: declust's output is fully deterministic, so the
// assignment tables and verification verdicts are compared byte-for-byte
// against files under testdata/. Regenerate with:
//
//	go test ./cmd/declust -run TestGolden -update
import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func TestGoldenOutputs(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"d4_n8", []string{"-d", "4", "-n", "8"}},
		{"d3_all_verify", []string{"-d", "3", "-strategy", "all", "-verify"}},
		{"d16_colors", []string{"-d", "16", "-colors"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			out, errOut, code := runCLI(t, tc.args...)
			if code != 0 || errOut != "" {
				t.Fatalf("exit %d, stderr %q", code, errOut)
			}
			checkGolden(t, tc.name, out)
		})
	}
}
