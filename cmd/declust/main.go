// Command declust inspects declustering strategies: it prints the disk
// assignment of every quadrant of a d-dimensional data space, verifies
// near-optimality (Definition 4 of the paper), and shows the coloring
// parameters.
//
// Usage:
//
//	declust -d 3 -n 4 -strategy all          # compare assignments
//	declust -d 8 -n 16 -strategy new -verify # check near-optimality
//	declust -d 16 -colors                    # coloring parameters only
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"parsearch/internal/core"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the command against the given argument list and streams;
// it returns the process exit code. Split from main for testability.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("declust", flag.ContinueOnError)
	fs.SetOutput(stderr)
	d := fs.Int("d", 3, "dimensionality of the data space")
	n := fs.Int("n", 0, "number of disks (default: the coloring's native count)")
	strategy := fs.String("strategy", "new", "strategy: new, DM, FX, HIL, direct-only or all")
	verify := fs.Bool("verify", false, "verify near-optimality (enumerates all 2^d buckets)")
	colors := fs.Bool("colors", false, "print only the coloring parameters for -d")
	table := fs.Bool("table", false, "print the full bucket-to-disk table (2^d rows)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *d < 1 || *d > 24 {
		fmt.Fprintln(stderr, "declust: -d must be in [1, 24]")
		return 1
	}
	if *colors {
		fmt.Fprintf(stdout, "d = %d\n", *d)
		fmt.Fprintf(stdout, "colors required by col: %d (lower bound %d, upper bound %d)\n",
			core.NumColors(*d), core.ColorLowerBound(*d), core.ColorUpperBound(*d))
		return 0
	}
	disks := *n
	if disks == 0 {
		disks = core.NumColors(*d)
	}

	strategies := map[string]core.Strategy{
		"new":         core.NewNearOptimal(*d, disks),
		"DM":          core.NewDiskModulo(disks),
		"FX":          core.NewFX(disks),
		"HIL":         core.MustNewHilbert(*d, 1, disks),
		"direct-only": core.NewDirectOnly(*d, disks),
	}
	var selected []core.Strategy
	if *strategy == "all" {
		for _, name := range []string{"new", "DM", "FX", "HIL", "direct-only"} {
			selected = append(selected, strategies[name])
		}
	} else if s, ok := strategies[*strategy]; ok {
		selected = append(selected, s)
	} else {
		fmt.Fprintf(stderr, "declust: unknown strategy %q\n", *strategy)
		return 1
	}

	for _, s := range selected {
		fmt.Fprintf(stdout, "strategy %s, d = %d, disks = %d\n", s.Name(), *d, disks)
		if *table || *d <= 4 {
			for b := uint64(0); b < core.NumBuckets(*d); b++ {
				bucket := core.Bucket(b)
				fmt.Fprintf(stdout, "  bucket %s -> disk %d\n", bucket.BitString(*d), s.Disk(bucket.Cell(*d)))
			}
		}
		if *verify {
			violations := core.VerifyNearOptimal(s, *d, 5)
			if len(violations) == 0 {
				fmt.Fprintln(stdout, "  near-optimal: yes (no direct or indirect neighbors share a disk)")
			} else {
				fmt.Fprintln(stdout, "  near-optimal: NO (showing up to 5 violations)")
				for _, v := range violations {
					fmt.Fprintf(stdout, "    %s\n", v)
				}
			}
		}
		fmt.Fprintln(stdout)
	}
	return 0
}
