// Command parsearchd serves a parallel similarity index over HTTP.
// It loads an index snapshot (or self-populates a synthetic one),
// mounts the serving API of package server, and drains gracefully on
// SIGTERM/SIGINT: in-flight queries complete, new requests get 503,
// then the listener closes.
//
// Usage:
//
//	parsearchd -snapshot index.snap -listen :7080
//	parsearchd -points 100000 -dim 10 -disks 16        # synthetic index
//	parsearchd -snapshot index.snap -coalesce-window 1ms -max-batch 32
//	parsearchd -durable-dir /var/lib/parsearch         # WAL + crash recovery
//
// With -durable-dir the daemon opens (or creates) a durable index in
// that directory: prior state is recovered from the newest snapshot
// generation plus the write-ahead log, and the graceful drain closes
// the index so a clean shutdown leaves no torn log tail.
//
// Endpoints: POST /v1/{knn,range,partialmatch,batch}; GET /healthz,
// /varz, /statusz. See the server package documentation for the wire
// format and the admission/coalescing knobs.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"parsearch"
	"parsearch/client"
	"parsearch/internal/data"
	"parsearch/server"
)

// config collects the flag values.
type config struct {
	snapshot    string
	durableDir  string
	walSync     string
	salvage     bool
	catchupFrom string
	listen      string

	// synthetic-index knobs (used when no snapshot is given)
	points   int
	dim      int
	disks    int
	strategy string
	seed     int64

	coalesceWindow time.Duration
	maxBatch       int
	noCoalesce     bool
	maxInFlight    int
	maxQueue       int
	timeout        time.Duration
	drainTimeout   time.Duration

	faultProb    float64
	faultRetries int
	spikeProb    float64
	spikeLatency time.Duration
}

func parseFlags(args []string) (config, error) {
	var c config
	fs := flag.NewFlagSet("parsearchd", flag.ContinueOnError)
	fs.StringVar(&c.snapshot, "snapshot", "", "index snapshot to serve (parsearch.Save format); empty builds a synthetic index")
	fs.StringVar(&c.durableDir, "durable-dir", "", "directory for the durable mutation log; recovers existing state at startup")
	fs.StringVar(&c.walSync, "wal-sync", "always", "durable: WAL fsync policy, always|os")
	fs.BoolVar(&c.salvage, "salvage", false, "durable: recover the valid prefix of a corrupt log instead of refusing to start")
	fs.StringVar(&c.catchupFrom, "catchup-from", "", "durable: before opening, catch the durable dir up from this peer's base URL (snapshot+delta shipping)")
	fs.StringVar(&c.listen, "listen", ":7080", "listen address")
	fs.IntVar(&c.points, "points", 20000, "synthetic index: number of points")
	fs.IntVar(&c.dim, "dim", 10, "synthetic index: dimensionality")
	fs.IntVar(&c.disks, "disks", 16, "synthetic index: number of disks")
	fs.StringVar(&c.strategy, "strategy", "near-optimal", "synthetic index: declustering strategy")
	fs.Int64Var(&c.seed, "seed", 42, "synthetic index: data seed")
	fs.DurationVar(&c.coalesceWindow, "coalesce-window", 2*time.Millisecond, "KNN coalescing window")
	fs.IntVar(&c.maxBatch, "max-batch", 16, "max coalesced batch size")
	fs.BoolVar(&c.noCoalesce, "no-coalesce", false, "disable KNN request coalescing")
	fs.IntVar(&c.maxInFlight, "max-in-flight", 64, "admission: max concurrent requests")
	fs.IntVar(&c.maxQueue, "max-queue", 128, "admission: max queued requests (excess gets 429)")
	fs.DurationVar(&c.timeout, "timeout", 10*time.Second, "default per-request deadline")
	fs.DurationVar(&c.drainTimeout, "drain-timeout", 30*time.Second, "max wait for in-flight queries on shutdown")
	fs.Float64Var(&c.faultProb, "fault-prob", 0, "fault injection: per-read transient error probability")
	fs.IntVar(&c.faultRetries, "fault-retries", 3, "fault injection: max retries per page read")
	fs.Float64Var(&c.spikeProb, "spike-prob", 0, "fault injection: per-read latency spike probability")
	fs.DurationVar(&c.spikeLatency, "spike-latency", 20*time.Millisecond, "fault injection: extra service time per spike")
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	return c, nil
}

// openIndex opens the durable directory, loads the snapshot, or builds
// a synthetic uniform index, in that order of preference. A fresh
// durable directory is seeded with the synthetic dataset so the first
// start and every restart go through the same code path.
func openIndex(c config) (*parsearch.Index, error) {
	if c.catchupFrom != "" && c.durableDir == "" {
		return nil, fmt.Errorf("-catchup-from requires -durable-dir")
	}
	if c.durableDir != "" {
		if c.snapshot != "" {
			return nil, fmt.Errorf("-snapshot and -durable-dir are mutually exclusive")
		}
		if c.catchupFrom != "" {
			shipped, err := client.New(c.catchupFrom).CatchupDir(context.Background(), c.durableDir)
			if err != nil {
				return nil, fmt.Errorf("catching up from %s: %w", c.catchupFrom, err)
			}
			fmt.Fprintf(os.Stderr, "parsearchd: caught up %s from %s (%d bytes shipped)\n",
				c.durableDir, c.catchupFrom, shipped)
		}
		ix, err := parsearch.Open(parsearch.Options{
			Dim:     c.dim,
			Disks:   c.disks,
			Kind:    parsearch.Kind(c.strategy),
			Durable: true,
			Dir:     c.durableDir,
			WALSync: parsearch.WALSyncPolicy(c.walSync),
			Salvage: c.salvage,
		})
		if err != nil {
			return nil, err
		}
		rec := ix.Recovery()
		if rec.Recovered {
			fmt.Fprintf(os.Stderr, "parsearchd: recovered %d points from %s (%d WAL records, %d log generations",
				ix.Len(), c.durableDir, rec.Records, rec.WALsReplayed)
			if rec.TornBytes > 0 {
				fmt.Fprintf(os.Stderr, ", %d torn bytes truncated", rec.TornBytes)
			}
			if rec.Salvaged {
				fmt.Fprintf(os.Stderr, ", salvaged %d bytes dropped", rec.DroppedBytes)
			}
			fmt.Fprintln(os.Stderr, ")")
			return ix, nil
		}
		if c.points > 0 {
			pts := data.Uniform(c.points, c.dim, c.seed)
			raw := make([][]float64, len(pts))
			for i, p := range pts {
				raw[i] = p
			}
			if err := ix.Build(raw); err != nil {
				return nil, err
			}
			fmt.Fprintf(os.Stderr, "parsearchd: seeded fresh durable dir %s with %d points\n", c.durableDir, c.points)
		}
		return ix, nil
	}
	if c.snapshot != "" {
		f, err := os.Open(c.snapshot)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		ix, err := parsearch.Load(f)
		if err != nil {
			return nil, fmt.Errorf("loading snapshot %s: %w", c.snapshot, err)
		}
		return ix, nil
	}
	ix, err := parsearch.Open(parsearch.Options{
		Dim:   c.dim,
		Disks: c.disks,
		Kind:  parsearch.Kind(c.strategy),
	})
	if err != nil {
		return nil, err
	}
	pts := data.Uniform(c.points, c.dim, c.seed)
	raw := make([][]float64, len(pts))
	for i, p := range pts {
		raw[i] = p
	}
	if err := ix.Build(raw); err != nil {
		return nil, err
	}
	return ix, nil
}

// run is main minus the exit code, separated for tests. ready, when
// non-nil, receives the bound listen address once serving.
func run(ctx context.Context, c config, ready chan<- string) error {
	ix, err := openIndex(c)
	if err != nil {
		return err
	}
	if c.faultProb > 0 || c.spikeProb > 0 {
		err := ix.SetFaults(parsearch.FaultModel{
			TransientProb: c.faultProb,
			MaxRetries:    c.faultRetries,
			SpikeProb:     c.spikeProb,
			SpikeLatency:  c.spikeLatency,
		})
		if err != nil {
			return err
		}
	}
	srv, err := server.New(ix, server.Config{
		CoalesceWindow:    c.coalesceWindow,
		MaxBatch:          c.maxBatch,
		DisableCoalescing: c.noCoalesce,
		MaxInFlight:       c.maxInFlight,
		MaxQueue:          c.maxQueue,
		DefaultTimeout:    c.timeout,
		ExpvarName:        "parsearch",
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", c.listen)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(os.Stderr, "parsearchd: serving %d points on %d disks at %s\n",
		ix.Len(), ix.Disks(), ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case <-ctx.Done():
	case err := <-serveErr:
		return err
	}

	// Drain: first the query layer (in-flight queries complete, new
	// ones get 503 through the still-open listener), then the HTTP
	// layer closes idle connections and the listener.
	fmt.Fprintln(os.Stderr, "parsearchd: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), c.drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "parsearchd: drain incomplete: %v\n", err)
	}
	// With the query layer drained, close the index: the WAL is flushed
	// to its sync point and further mutations are refused, so the next
	// start recovers with no torn tail. Queries served during the HTTP
	// wind-down below still work on a closed index.
	if err := ix.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "parsearchd: closing index: %v\n", err)
	}
	if err := hs.Shutdown(drainCtx); err != nil {
		return err
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(os.Stderr, "parsearchd: drained, bye")
	return nil
}

func main() {
	c, err := parseFlags(os.Args[1:])
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	if err := run(ctx, c, nil); err != nil {
		fmt.Fprintf(os.Stderr, "parsearchd: %v\n", err)
		os.Exit(1)
	}
}
