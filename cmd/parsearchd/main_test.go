package main

import (
	"context"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"parsearch"
	"parsearch/client"
	"parsearch/internal/data"
)

// startDaemon runs the daemon on an ephemeral port and returns its
// base URL plus the cancel that plays the role of SIGTERM.
func startDaemon(t *testing.T, c config) (string, context.CancelFunc, chan error) {
	t.Helper()
	c.listen = "127.0.0.1:0"
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- run(ctx, c, ready) }()
	select {
	case addr := <-ready:
		return "http://" + addr, cancel, done
	case err := <-done:
		cancel()
		t.Fatalf("daemon exited before ready: %v", err)
		return "", nil, nil
	}
}

func baseConfig() config {
	c, _ := parseFlags(nil)
	c.points = 1500
	c.dim = 6
	c.disks = 8
	return c
}

// TestDaemonServesAndDrains boots a synthetic daemon, serves a query,
// then delivers the shutdown signal mid-flight and verifies the
// graceful exit: the in-flight query completes, and run returns nil.
func TestDaemonServesAndDrains(t *testing.T) {
	c := baseConfig()
	c.coalesceWindow = 100 * time.Millisecond // holds the last query in flight across the signal
	base, cancel, done := startDaemon(t, c)
	defer cancel()
	cl := client.New(base)

	ns, err := cl.KNN(context.Background(), []float64{0.5, 0.5, 0.5, 0.5, 0.5, 0.5}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 5 {
		t.Fatalf("got %d neighbors", len(ns))
	}
	if h, err := cl.Health(context.Background()); err != nil || h.Status != "ok" {
		t.Fatalf("health = %+v, %v", h, err)
	}

	// Park one query in the coalescing window, then signal.
	inflight := make(chan error, 1)
	go func() {
		_, err := cl.KNN(context.Background(), []float64{0.4, 0.4, 0.4, 0.4, 0.4, 0.4}, 3)
		inflight <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()

	if err := <-inflight; err != nil {
		t.Errorf("in-flight query failed during drain: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit after signal")
	}
	// The listener is gone: a further request fails at the transport.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("listener still accepting after shutdown")
	}
}

// TestDaemonServesSnapshot round-trips an index through a snapshot
// file and the -snapshot flag.
func TestDaemonServesSnapshot(t *testing.T) {
	ix, err := parsearch.Open(parsearch.Options{Dim: 4, Disks: 4})
	if err != nil {
		t.Fatal(err)
	}
	pts := data.Uniform(600, 4, 9)
	raw := make([][]float64, len(pts))
	for i, p := range pts {
		raw[i] = p
	}
	if err := ix.Build(raw); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "index.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	c := baseConfig()
	c.snapshot = path
	base, cancel, done := startDaemon(t, c)
	defer cancel()
	cl := client.New(base)

	q := []float64{0.5, 0.5, 0.5, 0.5}
	served, err := cl.KNN(context.Background(), q, 3)
	if err != nil {
		t.Fatal(err)
	}
	direct, _, err := ix.KNN(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct {
		if served[i].ID != direct[i].ID || served[i].Dist != direct[i].Dist {
			t.Fatalf("snapshot-served neighbor %d = %+v, direct %+v", i, served[i], direct[i])
		}
	}
	cancel()
	if err := <-done; err != nil {
		t.Errorf("run: %v", err)
	}
}

// TestDaemonDurableRestart boots a daemon on a fresh durable directory,
// drains it (which closes the index and flushes the WAL), restarts on
// the same directory, and verifies the recovered instance reports the
// recovery on /healthz and serves identical answers.
func TestDaemonDurableRestart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "state")
	c := baseConfig()
	c.points = 400
	c.durableDir = dir

	base, cancel, done := startDaemon(t, c)
	cl := client.New(base)
	q := []float64{0.5, 0.5, 0.5, 0.5, 0.5, 0.5}
	first, err := cl.KNN(context.Background(), q, 5)
	if err != nil {
		t.Fatal(err)
	}
	h, err := cl.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Durability == nil {
		t.Fatal("durable daemon reports no durability block on /healthz")
	}
	if h.Durability.SyncPolicy != "always" {
		t.Fatalf("sync policy = %q", h.Durability.SyncPolicy)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("first run: %v", err)
	}

	base, cancel, done = startDaemon(t, c)
	defer cancel()
	cl = client.New(base)
	h, err = cl.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Durability == nil || !h.Durability.Recovered {
		t.Fatalf("restarted daemon reports no recovery: %+v", h.Durability)
	}
	if h.Durability.TornBytes != 0 {
		t.Fatalf("clean shutdown left a torn tail of %d bytes", h.Durability.TornBytes)
	}
	second, err := cl.KNN(context.Background(), q, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if first[i].ID != second[i].ID || first[i].Dist != second[i].Dist {
			t.Fatalf("answer %d changed across restart: %+v vs %+v", i, first[i], second[i])
		}
	}
	cancel()
	if err := <-done; err != nil {
		t.Errorf("second run: %v", err)
	}
}

// TestDaemonBadFlags pins flag validation surfacing as errors, not
// panics.
func TestDaemonBadFlags(t *testing.T) {
	if _, err := parseFlags([]string{"-not-a-flag"}); err == nil {
		t.Error("unknown flag accepted")
	}
	c := baseConfig()
	c.snapshot = filepath.Join(t.TempDir(), "missing.snap")
	err := run(context.Background(), c, nil)
	if err == nil || !errors.Is(err, os.ErrNotExist) {
		t.Errorf("missing snapshot: err = %v, want not-exist", err)
	}
	c = baseConfig()
	c.strategy = "not-a-strategy"
	if err := run(context.Background(), c, nil); err == nil {
		t.Error("bad strategy accepted")
	}
	c = baseConfig()
	c.snapshot = "x.snap"
	c.durableDir = "y"
	if err := run(context.Background(), c, nil); err == nil {
		t.Error("snapshot + durable-dir accepted")
	}
	c = baseConfig()
	c.durableDir = filepath.Join(t.TempDir(), "d")
	c.walSync = "sometimes"
	if err := run(context.Background(), c, nil); err == nil {
		t.Error("unknown wal-sync policy accepted")
	}
}
