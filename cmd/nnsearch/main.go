// Command nnsearch builds a parallel similarity index over a generated
// workload and runs k-nearest-neighbor queries against it, reporting the
// paper's cost metrics per query and in aggregate.
//
// Usage:
//
//	nnsearch -workload uniform -n 100000 -d 10 -disks 16 -k 10
//	nnsearch -workload fourier -strategy hilbert -queries 50
//	nnsearch -workload text -quantile -verbose
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"parsearch"
	"parsearch/internal/data"
	"parsearch/internal/vec"
)

// loadDataset reads a dataset file, CSV when the name ends in .csv and
// the binary format otherwise.
func loadDataset(path string) ([]vec.Point, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".csv") {
		return data.ReadCSV(f)
	}
	return data.ReadBinary(f)
}

// saveDataset writes a dataset file, CSV when the name ends in .csv and
// the binary format otherwise.
func saveDataset(path string, pts []vec.Point) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".csv") {
		err = data.WriteCSV(f, pts)
	} else {
		err = data.WriteBinary(f, pts)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func main() {
	workload := flag.String("workload", "uniform", "workload: uniform, clustered, fourier or text")
	n := flag.Int("n", 65536, "number of data points")
	d := flag.Int("d", 10, "dimensionality")
	disks := flag.Int("disks", 16, "number of disks")
	strategy := flag.String("strategy", "near-optimal", "declustering: near-optimal, hilbert, disk-modulo, fx, round-robin")
	k := flag.Int("k", 10, "neighbors per query")
	queries := flag.Int("queries", 20, "number of queries")
	quantile := flag.Bool("quantile", false, "use median (0.5-quantile) splits")
	recursive := flag.Bool("recursive", false, "recursively decluster overloaded disks")
	seed := flag.Int64("seed", 1, "random seed")
	verbose := flag.Bool("verbose", false, "print every query's statistics")
	load := flag.String("load", "", "load the dataset from this file instead of generating (binary or .csv)")
	save := flag.String("save", "", "save the generated dataset to this file (binary, or .csv by extension)")
	flag.Parse()

	var pts []vec.Point
	if *load != "" {
		var err error
		pts, err = loadDataset(*load)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nnsearch: %v\n", err)
			os.Exit(1)
		}
		if len(pts) == 0 {
			fmt.Fprintln(os.Stderr, "nnsearch: dataset is empty")
			os.Exit(1)
		}
		*d = len(pts[0])
		*workload = "file:" + *load
	}
	switch *workload {
	case "uniform":
		pts = data.Uniform(*n, *d, *seed)
	case "clustered":
		pts = data.Clustered(*n, *d, 8, 0.05, *seed)
	case "fourier":
		pts = data.Fourier(*n, *d, 12, 0.15, *seed)
	case "text":
		pts = data.Text(*n, *d, 8, *seed)
	default:
		if !strings.HasPrefix(*workload, "file:") {
			fmt.Fprintf(os.Stderr, "nnsearch: unknown workload %q\n", *workload)
			os.Exit(1)
		}
	}
	if *save != "" {
		if err := saveDataset(*save, pts); err != nil {
			fmt.Fprintf(os.Stderr, "nnsearch: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("dataset saved to %s (%d points)\n", *save, len(pts))
	}
	qs := data.QueriesFromData(pts, *queries, 0.02, *seed+1)

	ix, err := parsearch.Open(parsearch.Options{
		Dim:            *d,
		Disks:          *disks,
		Kind:           parsearch.Kind(*strategy),
		QuantileSplits: *quantile,
		Recursive:      *recursive,
		Baseline:       true,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "nnsearch: %v\n", err)
		os.Exit(1)
	}
	raw := make([][]float64, len(pts))
	for i, p := range pts {
		raw[i] = p
	}
	if err := ix.Build(raw); err != nil {
		fmt.Fprintf(os.Stderr, "nnsearch: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("workload %s: %d points, d = %d, %d disks, strategy %s\n",
		*workload, len(pts), *d, *disks, ix.Strategy())
	fmt.Printf("disk loads: %v\n\n", ix.DiskLoads())

	var sumMax, sumTotal, sumSpeedup float64
	for i, q := range qs {
		res, stats, err := ix.KNN(q, *k)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nnsearch: query %d: %v\n", i, err)
			os.Exit(1)
		}
		sumMax += float64(stats.MaxPages)
		sumTotal += float64(stats.TotalPages)
		sumSpeedup += stats.BaselineSpeedup
		if *verbose {
			fmt.Printf("query %2d: nearest id=%d dist=%.4f | pages max=%d total=%d speed-up=%.2f\n",
				i, res[0].ID, res[0].Dist, stats.MaxPages, stats.TotalPages, stats.BaselineSpeedup)
		}
	}
	m := float64(len(qs))
	fmt.Printf("\naverages over %d %d-NN queries:\n", len(qs), *k)
	fmt.Printf("  bottleneck pages: %.1f\n", sumMax/m)
	fmt.Printf("  total pages:      %.1f\n", sumTotal/m)
	fmt.Printf("  speed-up:         %.2f (vs. sequential X-tree, %d disks)\n", sumSpeedup/m, *disks)
}
