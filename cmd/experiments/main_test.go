package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"parsearch/internal/exp"
)

func runCLI(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return out.String(), errb.String(), code
}

func TestListMode(t *testing.T) {
	out, _, code := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	for _, id := range []string{"fig1", "fig12", "fig17", "abl-knn", "ext-queueing"} {
		if !strings.Contains(out, id) {
			t.Errorf("listing missing %s:\n%s", id, out)
		}
	}
}

func TestNoArgsShowsHelp(t *testing.T) {
	out, _, code := runCLI(t)
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if !strings.Contains(out, "run one with -run") {
		t.Errorf("missing hint:\n%s", out)
	}
}

func TestUnknownExperiment(t *testing.T) {
	_, errOut, code := runCLI(t, "-run", "fig99")
	if code == 0 {
		t.Fatal("expected nonzero exit")
	}
	if !strings.Contains(errOut, "unknown experiment") {
		t.Errorf("stderr: %q", errOut)
	}
}

func TestRunCheapExperimentWithTSV(t *testing.T) {
	dir := t.TempDir()
	out, _, code := runCLI(t, "-run", "fig7,fig10", "-tsv", dir)
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if !strings.Contains(out, "== fig7") || !strings.Contains(out, "== fig10") {
		t.Errorf("missing results:\n%s", out)
	}
	for _, name := range []string{"fig7.tsv", "fig10.tsv"} {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("TSV not written: %v", err)
		}
		if !strings.Contains(string(b), "\t") {
			t.Errorf("%s does not look like TSV: %q", name, b)
		}
	}
}

func TestBadFlags(t *testing.T) {
	if _, _, code := runCLI(t, "-bogus"); code == 0 {
		t.Error("expected nonzero exit for unknown flag")
	}
}

func TestBenchSubcommand(t *testing.T) {
	dir := t.TempDir()
	outPath := filepath.Join(dir, "BENCH_parsearch.json")

	// A profile small enough for a unit test does not exist by name, so
	// use short but verify only the report structure, not timings.
	_, errOut, code := runCLI(t, "bench", "-profile", "nope")
	if code == 0 || !strings.Contains(errOut, "unknown bench profile") {
		t.Fatalf("bad profile: code %d, stderr %q", code, errOut)
	}

	_, errOut, code = runCLI(t, "bench", "-profile", "short", "-out", outPath)
	if code != 0 {
		t.Fatalf("bench run failed (%d): %s", code, errOut)
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var report exp.BenchReport
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if report.Disks != exp.BenchDisks || len(report.Workloads) != 11 {
		t.Fatalf("report %+v", report)
	}
	if report.Workload("server-knn16") == nil {
		t.Fatal("report lacks the serving-latency row")
	}
	if w := report.Workload("coord-knn16"); w == nil || w.SavedPagesPerQuery <= 0 {
		t.Fatalf("report lacks a cluster row with remote-bound savings: %+v", w)
	}
	for _, name := range []string{"knn16-eps01", "knn16-lsh"} {
		w := report.Workload(name)
		if w == nil {
			t.Fatalf("report lacks the approximate row %s", name)
		}
		if w.Recall < exp.RecallFloor || w.Recall > 1 {
			t.Fatalf("%s recall %v outside [%v, 1]", name, w.Recall, exp.RecallFloor)
		}
	}
	for _, name := range []string{"mixed-serve16", "mixed-reorg16"} {
		if w := report.Workload(name); w == nil || w.NsPerOp <= 0 {
			t.Fatalf("report lacks a measured live-mutation row %s: %+v", name, w)
		}
	}
	if w := report.Workload("wal-ingest"); w == nil || w.NsPerOp <= 0 {
		t.Fatalf("report lacks a measured durable-ingest row: %+v", w)
	}
	for _, w := range report.Workloads {
		if w.Name == "wal-ingest" {
			continue // mutation-only: reads no pages, balance undefined
		}
		if w.Balance <= 0 || w.Balance > 1 {
			t.Errorf("%s balance %v", w.Name, w.Balance)
		}
	}

	// Gating against its own report passes; against a forged faster
	// baseline it fails with a regression message. The self-gate run
	// uses a wide threshold: this test shares the machine with the rest
	// of the suite, so wall-clock noise on the syscall-bound rows is
	// expected — regression *detection* is proven by the forged
	// baseline below, which no threshold can absorb.
	_, errOut, code = runCLI(t, "bench", "-profile", "short", "-out", "-",
		"-baseline", outPath, "-threshold", "3")
	if code != 0 {
		t.Fatalf("self-baseline gate failed (%d): %s", code, errOut)
	}
	forged := report
	forged.Workloads = append([]exp.BenchWorkload(nil), report.Workloads...)
	for i := range forged.Workloads {
		forged.Workloads[i].NsPerOp = 1 // impossibly fast baseline
	}
	blob, err := exp.MarshalBenchReport(forged)
	if err != nil {
		t.Fatal(err)
	}
	forgedPath := filepath.Join(dir, "forged.json")
	if err := os.WriteFile(forgedPath, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	_, errOut, code = runCLI(t, "bench", "-baseline", forgedPath)
	if code != 1 || !strings.Contains(errOut, "REGRESSION") {
		t.Fatalf("forged baseline: code %d, stderr %q", code, errOut)
	}

	// A baseline from a different profile is reported, not compared.
	mismatched := report
	mismatched.Profile = "full"
	blob, err = exp.MarshalBenchReport(mismatched)
	if err != nil {
		t.Fatal(err)
	}
	mismatchPath := filepath.Join(dir, "mismatch.json")
	if err := os.WriteFile(mismatchPath, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	_, errOut, code = runCLI(t, "bench", "-baseline", mismatchPath)
	if code != 0 || !strings.Contains(errOut, "does not match") {
		t.Fatalf("profile mismatch: code %d, stderr %q", code, errOut)
	}
}
