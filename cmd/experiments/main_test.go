package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return out.String(), errb.String(), code
}

func TestListMode(t *testing.T) {
	out, _, code := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	for _, id := range []string{"fig1", "fig12", "fig17", "abl-knn", "ext-queueing"} {
		if !strings.Contains(out, id) {
			t.Errorf("listing missing %s:\n%s", id, out)
		}
	}
}

func TestNoArgsShowsHelp(t *testing.T) {
	out, _, code := runCLI(t)
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if !strings.Contains(out, "run one with -run") {
		t.Errorf("missing hint:\n%s", out)
	}
}

func TestUnknownExperiment(t *testing.T) {
	_, errOut, code := runCLI(t, "-run", "fig99")
	if code == 0 {
		t.Fatal("expected nonzero exit")
	}
	if !strings.Contains(errOut, "unknown experiment") {
		t.Errorf("stderr: %q", errOut)
	}
}

func TestRunCheapExperimentWithTSV(t *testing.T) {
	dir := t.TempDir()
	out, _, code := runCLI(t, "-run", "fig7,fig10", "-tsv", dir)
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if !strings.Contains(out, "== fig7") || !strings.Contains(out, "== fig10") {
		t.Errorf("missing results:\n%s", out)
	}
	for _, name := range []string{"fig7.tsv", "fig10.tsv"} {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("TSV not written: %v", err)
		}
		if !strings.Contains(string(b), "\t") {
			t.Errorf("%s does not look like TSV: %q", name, b)
		}
	}
}

func TestBadFlags(t *testing.T) {
	if _, _, code := runCLI(t, "-bogus"); code == 0 {
		t.Error("expected nonzero exit for unknown flag")
	}
}
