// Command experiments reproduces the figures of "Fast Parallel Similarity
// Search in Multimedia Databases" (SIGMOD 1997) and the repository's
// ablations, printing each as a numeric table.
//
// Usage:
//
//	experiments -list
//	experiments -run fig12
//	experiments -run all [-scale 0.5] [-queries 10] [-seed 42]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"parsearch/internal/exp"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the command against the given argument list and streams;
// it returns the process exit code. Split from main for testability.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the available experiments")
	runID := fs.String("run", "", "experiment id to run, or \"all\"")
	scale := fs.Float64("scale", 1.0, "data-set scale factor (1.0 = standard)")
	queries := fs.Int("queries", 20, "query points per measurement")
	seed := fs.Int64("seed", 42, "random seed")
	tsvDir := fs.String("tsv", "", "also write each result as a TSV file into this directory")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list || *runID == "" {
		fmt.Fprintln(stdout, "available experiments:")
		for _, e := range exp.All() {
			fmt.Fprintf(stdout, "  %-14s %-18s %s\n", e.ID, e.Figure, e.Title)
		}
		if *runID == "" && !*list {
			fmt.Fprintln(stdout, "\nrun one with -run <id>, or -run all")
		}
		return 0
	}

	cfg := exp.Config{Scale: *scale, Queries: *queries, Seed: *seed}
	ids := strings.Split(*runID, ",")
	if *runID == "all" {
		ids = ids[:0]
		for _, e := range exp.All() {
			ids = append(ids, e.ID)
		}
	}
	for _, id := range ids {
		e, ok := exp.Get(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(stderr, "experiments: unknown experiment %q (use -list)\n", id)
			return 1
		}
		start := time.Now()
		result := e.Run(cfg)
		fmt.Fprint(stdout, result.Format())
		fmt.Fprintf(stdout, "(%s, %s)\n\n", e.Figure, time.Since(start).Round(time.Millisecond))
		if *tsvDir != "" {
			path := filepath.Join(*tsvDir, result.ID+".tsv")
			if err := os.WriteFile(path, []byte(result.TSV()), 0o644); err != nil {
				fmt.Fprintf(stderr, "experiments: %v\n", err)
				return 1
			}
		}
	}
	return 0
}
