// Command experiments reproduces the figures of "Fast Parallel Similarity
// Search in Multimedia Databases" (SIGMOD 1997) and the repository's
// ablations, printing each as a numeric table.
//
// Usage:
//
//	experiments -list
//	experiments -run fig12
//	experiments -run all [-scale 0.5] [-queries 10] [-seed 42]
//
// The bench subcommand runs the benchmark-regression harness (see
// internal/exp.RunBench) and writes the machine-readable report CI
// diffs against the committed baseline:
//
//	experiments bench [-profile short|full|scale] [-out BENCH_parsearch.json]
//	                  [-baseline BENCH_parsearch.json] [-threshold 0.25] [-seed 42]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"parsearch/internal/exp"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the command against the given argument list and streams;
// it returns the process exit code. Split from main for testability.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) > 0 && args[0] == "bench" {
		return runBench(args[1:], stdout, stderr)
	}
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the available experiments")
	runID := fs.String("run", "", "experiment id to run, or \"all\"")
	scale := fs.Float64("scale", 1.0, "data-set scale factor (1.0 = standard)")
	queries := fs.Int("queries", 20, "query points per measurement")
	seed := fs.Int64("seed", 42, "random seed")
	tsvDir := fs.String("tsv", "", "also write each result as a TSV file into this directory")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list || *runID == "" {
		fmt.Fprintln(stdout, "available experiments:")
		for _, e := range exp.All() {
			fmt.Fprintf(stdout, "  %-14s %-18s %s\n", e.ID, e.Figure, e.Title)
		}
		if *runID == "" && !*list {
			fmt.Fprintln(stdout, "\nrun one with -run <id>, or -run all")
		}
		return 0
	}

	cfg := exp.Config{Scale: *scale, Queries: *queries, Seed: *seed}
	ids := strings.Split(*runID, ",")
	if *runID == "all" {
		ids = ids[:0]
		for _, e := range exp.All() {
			ids = append(ids, e.ID)
		}
	}
	for _, id := range ids {
		e, ok := exp.Get(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(stderr, "experiments: unknown experiment %q (use -list)\n", id)
			return 1
		}
		start := time.Now()
		result := e.Run(cfg)
		fmt.Fprint(stdout, result.Format())
		fmt.Fprintf(stdout, "(%s, %s)\n\n", e.Figure, time.Since(start).Round(time.Millisecond))
		if *tsvDir != "" {
			path := filepath.Join(*tsvDir, result.ID+".tsv")
			if err := os.WriteFile(path, []byte(result.TSV()), 0o644); err != nil {
				fmt.Fprintf(stderr, "experiments: %v\n", err)
				return 1
			}
		}
	}
	return 0
}

// runBench implements the bench subcommand: measure, write the report,
// and optionally gate against a baseline (exit 1 on regression).
func runBench(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	profile := fs.String("profile", "short", "bench profile: short, full, or scale")
	out := fs.String("out", "", "write the JSON report to this file ('-' or empty = stdout)")
	baseline := fs.String("baseline", "", "baseline BENCH_parsearch.json to gate against")
	threshold := fs.Float64("threshold", 0.25, "allowed fractional ns/op growth vs the baseline")
	seed := fs.Int64("seed", 42, "random seed")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	p, ok := exp.BenchProfiles[*profile]
	if !ok {
		fmt.Fprintf(stderr, "experiments: unknown bench profile %q (short, full, scale)\n", *profile)
		return 1
	}
	report, err := exp.RunBench(p, *seed)
	if err != nil {
		fmt.Fprintf(stderr, "experiments: %v\n", err)
		return 1
	}
	blob, err := exp.MarshalBenchReport(report)
	if err != nil {
		fmt.Fprintf(stderr, "experiments: %v\n", err)
		return 1
	}
	if *out == "" || *out == "-" {
		stdout.Write(blob)
	} else if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintf(stderr, "experiments: %v\n", err)
		return 1
	}
	for _, w := range report.Workloads {
		fmt.Fprintf(stderr, "bench %-8s %12d ns/op %10.1f pages/query  balance %.3f  p99 %dns\n",
			w.Name, w.NsPerOp, w.PagesPerQuery, w.Balance, w.LatencyP99Ns)
	}

	if *baseline == "" {
		return 0
	}
	raw, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintf(stderr, "experiments: reading baseline: %v\n", err)
		return 1
	}
	var base exp.BenchReport
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(stderr, "experiments: parsing baseline: %v\n", err)
		return 1
	}
	if base.Profile != report.Profile {
		fmt.Fprintf(stderr, "experiments: baseline profile %q does not match run profile %q — not comparing\n",
			base.Profile, report.Profile)
		return 0
	}
	if regressions := exp.CompareBench(base, report, *threshold); len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintf(stderr, "experiments: REGRESSION %s\n", r)
		}
		return 1
	}
	fmt.Fprintln(stderr, "bench: no regressions vs baseline")
	return 0
}
