package main

// Golden-file tests: the CLI's output for the listing and for the cheap,
// fully deterministic figure reproductions is compared byte-for-byte
// against files under testdata/. Wall-clock durations in the trailer
// lines are normalized before comparison. Regenerate with:
//
//	go test ./cmd/experiments -run TestGolden -update
import (
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// durationRe matches the "(Figure N, 12ms)" trailer printed after each
// experiment; the elapsed time is the only nondeterministic output.
var durationRe = regexp.MustCompile(`(?m)^\((.*), [0-9][^)]*\)$`)

func normalize(out string) string {
	return durationRe.ReplaceAllString(out, "($1, DURATION)")
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func TestGoldenList(t *testing.T) {
	out, errOut, code := runCLI(t, "-list")
	if code != 0 || errOut != "" {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	checkGolden(t, "list", out)
}

// TestGoldenFigures locks down the numeric tables of the two cheap,
// deterministic figure reproductions (near-optimality violations per
// strategy; chromatic-number bounds per dimension) at the default seed.
func TestGoldenFigures(t *testing.T) {
	for _, id := range []string{"fig7", "fig10"} {
		t.Run(id, func(t *testing.T) {
			out, errOut, code := runCLI(t, "-run", id)
			if code != 0 || errOut != "" {
				t.Fatalf("exit %d, stderr %q", code, errOut)
			}
			norm := normalize(out)
			if norm == out && durationRe.FindString(out) == "" {
				t.Fatalf("expected a duration trailer in output:\n%s", out)
			}
			checkGolden(t, id, norm)
		})
	}
}

// TestGoldenFailureSweep locks down the fault-tolerance sweep at a small
// scale: the speedup and availability columns are pure functions of the
// seeded data and the simulated service-time model, so the table is
// fully deterministic. It doubles as the regression test for the
// degraded-mode contract — any silent change to the routing or the
// availability accounting shows up as a diff.
func TestGoldenFailureSweep(t *testing.T) {
	out, errOut, code := runCLI(t, "-run", "ext-failures", "-scale", "0.02", "-queries", "6")
	if code != 0 || errOut != "" {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	checkGolden(t, "failures", normalize(out))
}
