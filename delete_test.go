package parsearch

import (
	"bytes"
	"testing"

	"parsearch/internal/data"
)

func TestDeleteBasics(t *testing.T) {
	ix := buildTestIndex(t, Options{Dim: 4, Disks: 4, Baseline: true}, 500)

	if err := ix.Delete(1000); err == nil {
		t.Error("deleting unknown id should error")
	}
	if err := ix.Delete(-1); err == nil {
		t.Error("deleting negative id should error")
	}
	if err := ix.Delete(42); err != nil {
		t.Fatal(err)
	}
	if err := ix.Delete(42); err == nil {
		t.Error("double delete should error")
	}
	if ix.Len() != 499 {
		t.Errorf("Len = %d", ix.Len())
	}

	// The deleted vector must never be returned again.
	q := data.Uniform(1, 4, 5)[0]
	res, _, err := ix.KNN(q, 499)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 499 {
		t.Fatalf("got %d results, want 499", len(res))
	}
	for _, nb := range res {
		if nb.ID == 42 {
			t.Fatal("deleted vector returned by KNN")
		}
	}
}

func TestDeleteThenInsertContinuesIDs(t *testing.T) {
	ix := buildTestIndex(t, Options{Dim: 3, Disks: 2}, 10)
	if err := ix.Delete(3); err != nil {
		t.Fatal(err)
	}
	id, err := ix.Insert([]float64{0.5, 0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if id != 10 {
		t.Errorf("id = %d, want 10 (IDs are never reused)", id)
	}
	if ix.Len() != 10 {
		t.Errorf("Len = %d", ix.Len())
	}
}

func TestDeleteAllThenQuery(t *testing.T) {
	ix := buildTestIndex(t, Options{Dim: 2, Disks: 2}, 20)
	for id := 0; id < 20; id++ {
		if err := ix.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	if ix.Len() != 0 {
		t.Errorf("Len = %d", ix.Len())
	}
	if _, _, err := ix.NN([]float64{0.5, 0.5}); err != ErrEmpty {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
}

func TestSnapshotPreservesTombstones(t *testing.T) {
	ix := buildTestIndex(t, Options{Dim: 3, Disks: 2}, 50)
	for _, id := range []int{0, 7, 49} {
		if err := ix.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 47 {
		t.Errorf("Len = %d after reload, want 47", loaded.Len())
	}
	// Deleted IDs stay deleted; the next insert continues past 49.
	if err := loaded.Delete(7); err == nil {
		t.Error("tombstone resurrected by snapshot round trip")
	}
	id, err := loaded.Insert([]float64{0.1, 0.2, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if id != 50 {
		t.Errorf("next id = %d, want 50", id)
	}
}

func TestDeleteUnderRecursiveAssigner(t *testing.T) {
	pts := data.Clustered(600, 5, 1, 0.02, 3)
	raw := make([][]float64, len(pts))
	for i, p := range pts {
		raw[i] = p
	}
	ix, err := Open(Options{Dim: 5, Disks: 8, Recursive: true, QuantileSplits: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Build(raw); err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 600; id += 3 {
		if err := ix.Delete(id); err != nil {
			t.Fatalf("delete %d: %v", id, err)
		}
	}
	if ix.Len() != 400 {
		t.Errorf("Len = %d", ix.Len())
	}
	q := raw[1]
	res, _, err := ix.KNN(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, nb := range res {
		if nb.ID%3 == 0 {
			t.Fatalf("deleted id %d returned", nb.ID)
		}
	}
}

func TestDynamicReorganization(t *testing.T) {
	const d, disks = 6, 8
	ix, err := Open(Options{Dim: d, Disks: disks, QuantileSplits: true})
	if err != nil {
		t.Fatal(err)
	}
	// Build over uniform data: splits land near 0.5.
	uni := data.Uniform(3000, d, 21)
	raw := make([][]float64, len(uni))
	for i, p := range uni {
		raw[i] = p
	}
	if err := ix.Build(raw); err != nil {
		t.Fatal(err)
	}
	if ix.NeedsReorganization() {
		t.Fatal("fresh index should not need reorganization")
	}

	// Drift: insert heavily skewed data (all coordinates small).
	skew := data.Clustered(4000, d, 1, 0.03, 22)
	for _, p := range skew {
		q := make([]float64, d)
		for j, x := range p {
			q[j] = x * 0.2
		}
		if _, err := ix.Insert(q); err != nil {
			t.Fatal(err)
		}
	}
	if !ix.NeedsReorganization() {
		t.Fatal("heavy drift should trigger reorganization")
	}
	before := maxOf(ix.DiskLoads())
	if err := ix.Reorganize(); err != nil {
		t.Fatal(err)
	}
	if ix.NeedsReorganization() {
		t.Error("reorganization did not reset the drift statistics")
	}
	after := maxOf(ix.DiskLoads())
	if after >= before {
		t.Errorf("reorganization did not rebalance: max load %d -> %d", before, after)
	}
	if ix.Len() != 7000 {
		t.Errorf("Len = %d after reorganization", ix.Len())
	}
	// Queries still correct after the rebuild.
	nb, _, err := ix.NN(raw[0])
	if err != nil {
		t.Fatal(err)
	}
	if nb.Dist != 0 || nb.ID != 0 {
		t.Errorf("NN after reorganize: %+v", nb)
	}
}

func maxOf(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func TestReorganizePreservesTombstones(t *testing.T) {
	ix := buildTestIndex(t, Options{Dim: 3, Disks: 2, QuantileSplits: true}, 100)
	if err := ix.Delete(5); err != nil {
		t.Fatal(err)
	}
	if err := ix.Reorganize(); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 99 {
		t.Errorf("Len = %d", ix.Len())
	}
	if err := ix.Delete(5); err == nil {
		t.Error("tombstone resurrected by reorganization")
	}
}
