package parsearch

// Property tests for the cost statistics: QueryStats must stay
// internally consistent no matter how queries interleave with writers,
// BatchKNN's per-query accounting must sum to the batch totals, and the
// per-disk load report must equal the per-cell accounting after any
// mutation history.

import (
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"parsearch/internal/data"
)

// checkQueryStats asserts the internal invariants of one QueryStats
// value: PagesPerDisk sums to TotalPages, the bottleneck disk is the
// argmax, and the speed-up is the sequential/parallel time ratio.
func checkQueryStats(t *testing.T, qs QueryStats, disks int) {
	t.Helper()
	if len(qs.PagesPerDisk) != disks {
		t.Fatalf("PagesPerDisk has %d entries, want %d", len(qs.PagesPerDisk), disks)
	}
	sum, max := 0, 0
	for _, p := range qs.PagesPerDisk {
		if p < 0 {
			t.Fatalf("negative page count in %v", qs.PagesPerDisk)
		}
		sum += p
		if p > max {
			max = p
		}
	}
	if sum != qs.TotalPages {
		t.Fatalf("sum(PagesPerDisk) = %d, TotalPages = %d", sum, qs.TotalPages)
	}
	if max != qs.MaxPages {
		t.Fatalf("max(PagesPerDisk) = %d, MaxPages = %d", max, qs.MaxPages)
	}
	if qs.ParallelTime < 0 || qs.SequentialTime < qs.ParallelTime {
		t.Fatalf("times inconsistent: parallel %v, sequential %v", qs.ParallelTime, qs.SequentialTime)
	}
	if qs.ParallelTime > 0 {
		want := qs.SequentialTime / qs.ParallelTime
		if math.Abs(qs.Speedup-want) > 1e-9 {
			t.Fatalf("Speedup = %v, want SequentialTime/ParallelTime = %v", qs.Speedup, want)
		}
	} else if qs.Speedup != 0 {
		t.Fatalf("Speedup = %v with zero ParallelTime", qs.Speedup)
	}
	if qs.BaselineTime > 0 && qs.ParallelTime > 0 {
		want := qs.BaselineTime / qs.ParallelTime
		if math.Abs(qs.BaselineSpeedup-want) > 1e-9 {
			t.Fatalf("BaselineSpeedup = %v, want %v", qs.BaselineSpeedup, want)
		}
	}
}

// TestQueryStatsConsistentUnderConcurrency runs readers that verify
// every QueryStats they receive while writers mutate the index: the
// invariants must hold for any interleaving, under both cost models.
func TestQueryStatsConsistentUnderConcurrency(t *testing.T) {
	for _, cfg := range []struct {
		name string
		opts Options
	}{
		{"tree-pages", Options{Dim: 5, Disks: 4}},
		{"bucket-pages", Options{Dim: 5, Disks: 4, CostModel: BucketPages}},
		{"baseline", Options{Dim: 4, Disks: 3, Baseline: true}},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			opts := cfg.opts
			ix, err := Open(opts)
			if err != nil {
				t.Fatal(err)
			}
			pts := data.Uniform(500, opts.Dim, 51)
			raw := make([][]float64, len(pts))
			for i, p := range pts {
				raw[i] = p
			}
			if err := ix.Build(raw); err != nil {
				t.Fatal(err)
			}

			stop := make(chan struct{})
			var writer, readers sync.WaitGroup
			writer.Add(1)
			go func() {
				defer writer.Done()
				rng := rand.New(rand.NewSource(52))
				for i := 0; i < stressIters(300, 100); i++ {
					if _, err := ix.Insert(randPoint(rng, opts.Dim)); err != nil {
						t.Errorf("Insert: %v", err)
						return
					}
				}
			}()
			for g := 0; g < 3; g++ {
				readers.Add(1)
				go func(g int) {
					defer readers.Done()
					rng := rand.New(rand.NewSource(int64(60 + g)))
					for {
						select {
						case <-stop:
							return
						default:
						}
						q := randPoint(rng, opts.Dim)
						var qs QueryStats
						var err error
						if rng.Intn(2) == 0 {
							_, qs, err = ix.KNN(q, 1+rng.Intn(6))
						} else {
							lo, hi := randBox(rng, opts.Dim)
							_, qs, err = ix.RangeQuery(lo, hi)
						}
						if !tolerableQueryErr(err) {
							t.Errorf("query: %v", err)
							return
						}
						if err == nil {
							checkQueryStats(t, qs, opts.Disks)
						}
					}
				}(g)
			}
			writer.Wait()
			close(stop)
			readers.Wait()
		})
	}
}

// TestBatchStatsConsistency checks BatchKNN's accounting on a static
// index: the batch totals are the sum of the per-query page counts, and
// every per-query QueryStats is itself internally consistent.
func TestBatchStatsConsistency(t *testing.T) {
	const d, n, k, queries = 6, 1200, 5, 24
	ix, err := Open(Options{Dim: d, Disks: 4})
	if err != nil {
		t.Fatal(err)
	}
	pts := data.Uniform(n, d, 61)
	raw := make([][]float64, n)
	for i, p := range pts {
		raw[i] = p
	}
	if err := ix.Build(raw); err != nil {
		t.Fatal(err)
	}
	qs := data.Uniform(queries, d, 62)
	batch := make([][]float64, queries)
	for i, q := range qs {
		batch[i] = q
	}

	_, stats, err := ix.BatchKNN(batch, k)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Queries != queries {
		t.Fatalf("Queries = %d, want %d", stats.Queries, queries)
	}
	if stats.Workers < 1 {
		t.Fatalf("Workers = %d", stats.Workers)
	}
	if len(stats.PerQuery) != queries {
		t.Fatalf("PerQuery has %d entries, want %d", len(stats.PerQuery), queries)
	}

	perDisk := make([]int, 4)
	total := 0
	for i, pq := range stats.PerQuery {
		checkQueryStats(t, pq, 4)
		for dsk, pages := range pq.PagesPerDisk {
			perDisk[dsk] += pages
		}
		total += pq.TotalPages
		// Each per-query stat must equal what a standalone KNN of the
		// same query reports.
		_, solo, err := ix.KNN(batch[i], k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(pq.PagesPerDisk, solo.PagesPerDisk) {
			t.Fatalf("query %d: batch pages %v != solo pages %v", i, pq.PagesPerDisk, solo.PagesPerDisk)
		}
		if pq.Cells != solo.Cells || pq.MaxPages != solo.MaxPages || pq.TotalPages != solo.TotalPages {
			t.Fatalf("query %d: batch stats (%d cells, %d max, %d total) != solo (%d, %d, %d)",
				i, pq.Cells, pq.MaxPages, pq.TotalPages, solo.Cells, solo.MaxPages, solo.TotalPages)
		}
	}
	if !reflect.DeepEqual(perDisk, stats.PagesPerDisk) {
		t.Fatalf("sum of per-query pages %v != batch PagesPerDisk %v", perDisk, stats.PagesPerDisk)
	}
	if total != stats.TotalPages {
		t.Fatalf("sum of per-query totals %d != batch TotalPages %d", total, stats.TotalPages)
	}
	if stats.MakespanSeconds <= 0 || stats.QueriesPerSecond <= 0 {
		t.Fatalf("non-positive throughput: makespan %v, qps %v", stats.MakespanSeconds, stats.QueriesPerSecond)
	}
	if stats.Utilization <= 0 || stats.Utilization > 1+1e-9 {
		t.Fatalf("Utilization = %v, want (0, 1]", stats.Utilization)
	}
}

// TestBatchWorkerCountInvariance: results and page accounting must not
// depend on the worker-pool size — one worker or many, same answers.
func TestBatchWorkerCountInvariance(t *testing.T) {
	const d, n, k, queries = 5, 900, 4, 16
	pts := data.Uniform(n, d, 71)
	raw := make([][]float64, n)
	for i, p := range pts {
		raw[i] = p
	}
	qs := data.Uniform(queries, d, 72)
	batch := make([][]float64, queries)
	for i, q := range qs {
		batch[i] = q
	}

	type run struct {
		results [][]Neighbor
		stats   BatchStats
	}
	runs := make(map[int]run)
	for _, workers := range []int{1, 2, 7} {
		ix, err := Open(Options{Dim: d, Disks: 3, BatchWorkers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if err := ix.Build(raw); err != nil {
			t.Fatal(err)
		}
		res, stats, err := ix.BatchKNN(batch, k)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Workers != min(workers, queries) {
			t.Fatalf("Workers = %d, want %d", stats.Workers, min(workers, queries))
		}
		runs[workers] = run{results: res, stats: stats}
	}
	ref := runs[1]
	for _, workers := range []int{2, 7} {
		got := runs[workers]
		if !reflect.DeepEqual(got.results, ref.results) {
			t.Fatalf("results with %d workers differ from 1 worker", workers)
		}
		if !reflect.DeepEqual(got.stats.PagesPerDisk, ref.stats.PagesPerDisk) ||
			got.stats.TotalPages != ref.stats.TotalPages ||
			!reflect.DeepEqual(got.stats.PerQuery, ref.stats.PerQuery) {
			t.Fatalf("accounting with %d workers differs from 1 worker", workers)
		}
	}
}

// TestDiskLoadsEqualCellLoads: after any interleaving of inserts and
// deletes — sequential histories with several seeds plus one concurrent
// history — the per-disk load report equals the per-cell accounting and
// sums to the live count.
func TestDiskLoadsEqualCellLoads(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		opts := Options{Dim: 4, Disks: 3 + int(seed%3)}
		ix, err := Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		pts := data.Uniform(150, opts.Dim, 80+seed)
		raw := make([][]float64, len(pts))
		for i, p := range pts {
			raw[i] = p
		}
		if err := ix.Build(raw); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		live := make(map[int]bool)
		for id := range raw {
			live[id] = true
		}
		for op := 0; op < 200; op++ {
			if rng.Intn(2) == 0 || len(live) == 0 {
				id, err := ix.Insert(randPoint(rng, opts.Dim))
				if err != nil {
					t.Fatal(err)
				}
				live[id] = true
			} else {
				var victim int
				for id := range live {
					victim = id
					break
				}
				if err := ix.Delete(victim); err != nil {
					t.Fatal(err)
				}
				delete(live, victim)
			}
			if op%25 == 0 {
				assertLoadsConsistent(t, ix, len(live))
			}
		}
		assertLoadsConsistent(t, ix, len(live))
		if err := ix.CheckIntegrity(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}

	// Concurrent history: loads must still reconcile after the dust
	// settles.
	opts := Options{Dim: 4, Disks: 4}
	ix, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Build([][]float64{{0.1, 0.2, 0.3, 0.4}}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	perWriter := stressIters(100, 40)
	const writers = 4
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(90 + w)))
			for i := 0; i < perWriter; i++ {
				id, err := ix.Insert(randPoint(rng, opts.Dim))
				if err != nil {
					t.Errorf("Insert: %v", err)
					return
				}
				if i%3 == 0 {
					if err := ix.Delete(id); err != nil {
						t.Errorf("Delete: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	assertLoadsConsistent(t, ix, ix.Len())
	if err := ix.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func assertLoadsConsistent(t *testing.T, ix *Index, wantLive int) {
	t.Helper()
	diskLoads := ix.DiskLoads()
	cellLoads := ix.CellLoads()
	if !reflect.DeepEqual(diskLoads, cellLoads) {
		t.Fatalf("DiskLoads %v != CellLoads %v", diskLoads, cellLoads)
	}
	sum := 0
	for _, l := range diskLoads {
		sum += l
	}
	if sum != wantLive {
		t.Fatalf("loads sum to %d, want live count %d", sum, wantLive)
	}
}
