package parsearch

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"testing"

	"parsearch/internal/data"
)

// packedSnapshotPayload builds a snapshot of a packed+quantized index
// (float32 point table, flag bits 32|64) and returns its payload with
// the trailing CRC-32 stripped, so fuzz mutations reach the parser
// instead of dying at the checksum.
func packedSnapshotPayload(f *testing.F) []byte {
	f.Helper()
	ix, err := Open(Options{Dim: 5, Disks: 3, Packed: true, Quantize: true})
	if err != nil {
		f.Fatal(err)
	}
	pts := data.Uniform(80, 5, 11)
	if err := ix.Build(pts); err != nil {
		f.Fatal(err)
	}
	if err := ix.Delete(9); err != nil { // a tombstone slot in the table
		f.Fatal(err)
	}
	for _, q := range data.Uniform(3, 5, 12) {
		if _, _, err := ix.KNN(q, 2); err != nil {
			f.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()[:buf.Len()-4]
}

// snapshotCountOffset walks the fixed header and the two length-prefixed
// strings to the byte offset of the uint64 point count.
func snapshotCountOffset(payload []byte) int {
	off := len(snapshotMagic) + 4*4 + 1 + 8 + 8 + 8
	off += 2 + int(binary.LittleEndian.Uint16(payload[off:])) // Kind
	off += 2 + int(binary.LittleEndian.Uint16(payload[off:])) // CostModel
	return off
}

// FuzzSlabRoundtrip fuzzes the packed-snapshot bits (header flags 32/64
// and the 4-byte float32 point table). The seeds cover the failure
// shapes the packed format introduces: the packed flag flipped in either
// direction (so the coordinate stride disagrees with the table — a
// dimension/size mismatch the loader must reject, not misparse),
// truncation mid-point-table, and a forged huge point count that must be
// rejected before any allocation is sized from it. A payload that loads
// must be queryable and must survive Save→Load with bitwise-identical
// query results.
func FuzzSlabRoundtrip(f *testing.F) {
	payload := packedSnapshotPayload(f)
	f.Add(payload)

	// Packed flag cleared but the table still holds float32 coords: the
	// loader reads 8-byte strides and must fail cleanly (short table or
	// trailing bytes), never panic.
	unpacked := append([]byte(nil), payload...)
	unpacked[len(snapshotMagic)+16] &^= flagPacked
	f.Add(unpacked)

	// Quantize flag without the packed flag: Open rejects the option
	// combination even if the table happens to parse.
	quantOnly := append([]byte(nil), payload...)
	quantOnly[len(snapshotMagic)+16] &^= flagPacked
	quantOnly[len(snapshotMagic)+16] |= flagQuantize
	f.Add(quantOnly)

	// Packed flag forged onto a float64 snapshot: 4-byte strides leave
	// half the table unread — the loader must reject the leftovers.
	ix64, err := Open(Options{Dim: 5, Disks: 3})
	if err != nil {
		f.Fatal(err)
	}
	if err := ix64.Build(data.Uniform(40, 5, 13)); err != nil {
		f.Fatal(err)
	}
	var buf64 bytes.Buffer
	if err := ix64.Save(&buf64); err != nil {
		f.Fatal(err)
	}
	forged := buf64.Bytes()[:buf64.Len()-4]
	forged[len(snapshotMagic)+16] |= flagPacked
	f.Add(forged)

	// Truncated mid-point-table (count intact, coordinates missing).
	countOff := snapshotCountOffset(payload)
	f.Add(payload[:countOff+8+3+2*(1+4*5)])

	// A forged huge count: must be rejected by the plausibility bounds
	// before make() ever sees it — the fuzz harness itself would OOM
	// otherwise.
	huge := append([]byte(nil), payload...)
	binary.LittleEndian.PutUint64(huge[countOff:], 1<<60)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, b []byte) {
		full := make([]byte, len(b)+4)
		copy(full, b)
		binary.LittleEndian.PutUint32(full[len(b):], crc32.ChecksumIEEE(b))
		loaded, err := Load(bytes.NewReader(full))
		if err != nil {
			return
		}
		if loaded.Len() == 0 {
			return
		}
		q := make([]float64, loaded.opts.Dim)
		res, _, err := loaded.KNN(q, 2)
		if err != nil {
			t.Fatalf("loaded index cannot be queried: %v", err)
		}
		var again bytes.Buffer
		if err := loaded.Save(&again); err != nil {
			t.Fatalf("re-saving loaded index: %v", err)
		}
		reloaded, err := Load(bytes.NewReader(again.Bytes()))
		if err != nil {
			t.Fatalf("re-loading saved index: %v", err)
		}
		if reloaded.Len() != loaded.Len() {
			t.Fatalf("round-trip changed Len: %d -> %d", loaded.Len(), reloaded.Len())
		}
		res2, _, err := reloaded.KNN(q, 2)
		if err != nil {
			t.Fatalf("round-tripped index cannot be queried: %v", err)
		}
		if !sameNeighbors(res2, res) {
			t.Fatalf("round-trip changed query results:\n got %+v\nwant %+v", res2, res)
		}
	})
}

// TestPreSlabGoldenSnapshot loads the committed golden snapshot written
// by the pre-slab (float64-table) code and checks the current loader
// still honors it: the format is append-only, old snapshots must keep
// loading forever. The golden data was pre-rounded to float32 at
// generation time, so re-ingesting it into a packed index is lossless —
// query results must match the float64 load bit for bit.
func TestPreSlabGoldenSnapshot(t *testing.T) {
	raw, err := os.ReadFile("testdata/pre_slab_golden.snap")
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Load(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("loading pre-slab golden snapshot: %v", err)
	}
	if ix.opts.Packed || ix.opts.Quantize {
		t.Fatalf("pre-slab snapshot loaded with packed options: %+v", ix.opts)
	}
	if got := ix.Len(); got != 499 { // 500 points, ID 7 deleted
		t.Fatalf("golden index Len = %d, want 499", got)
	}
	queries := data.Uniform(8, 8, 99)
	var refRes [][]Neighbor
	for _, q := range queries {
		res, _, err := ix.KNN(q, 5)
		if err != nil {
			t.Fatalf("querying golden index: %v", err)
		}
		for _, nb := range res {
			if nb.ID == 7 {
				t.Fatal("golden tombstone resurfaced in results")
			}
		}
		refRes = append(refRes, res)
	}

	// Migrate forward: rebuild the same data as a packed index and check
	// the results are unchanged. The golden coordinates were rounded to
	// float32 before saving, so packing loses nothing.
	packed, err := Open(Options{Dim: 8, Disks: 4, Replication: 1, Packed: true})
	if err != nil {
		t.Fatal(err)
	}
	pts := make([][]float64, 0, ix.Len())
	ix.meta.Lock()
	for _, p := range ix.points {
		if p != nil {
			pts = append(pts, p)
		}
	}
	ix.meta.Unlock()
	if err := packed.Build(pts); err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		res, _, err := packed.KNN(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != len(refRes[i]) {
			t.Fatalf("query %d: packed returned %d results, golden %d", i, len(res), len(refRes[i]))
		}
		// IDs are reassigned by the rebuild (the golden tombstone shifts
		// them), so compare the geometry: distances and coordinates must
		// match bit for bit.
		for j := range res {
			if res[j].Dist != refRes[i][j].Dist {
				t.Fatalf("query %d result %d: packed dist %v, golden %v", i, j, res[j].Dist, refRes[i][j].Dist)
			}
			for d := range res[j].Point {
				if res[j].Point[d] != refRes[i][j].Point[d] {
					t.Fatalf("query %d result %d dim %d: packed %v, golden %v",
						i, j, d, res[j].Point[d], refRes[i][j].Point[d])
				}
			}
		}
	}
}
