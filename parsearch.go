// Package parsearch is a parallel similarity-search engine for
// high-dimensional feature vectors, reproducing "Fast Parallel Similarity
// Search in Multimedia Databases" (Berchtold, Böhm, Braunmüller, Keim,
// Kriegel; ACM SIGMOD 1997).
//
// Feature vectors are declustered over a bank of simulated disks; each
// disk holds an X-tree over its share of the data, and k-nearest-neighbor
// queries run against all disks in parallel (one goroutine per disk). The
// declustering strategy decides how well the pages a query must read are
// spread over the disks, and hence the speed-up; the paper's near-optimal
// strategy guarantees that all directly and indirectly neighboring
// quadrants of the data space land on different disks.
//
// Basic use:
//
//	ix, err := parsearch.Open(parsearch.Options{Dim: 16, Disks: 8})
//	if err != nil { ... }
//	ix.Build(points)
//	neighbors, stats, err := ix.KNN(query, 10)
//
// The returned QueryStats carry the paper's cost metrics: pages read per
// disk, the bottleneck disk, and the speed-up over a sequential search.
//
// # Concurrency
//
// An Index is safe for concurrent use by any number of goroutines: the
// query methods (NN, KNN, RangeQuery, PartialMatch, BatchKNN, Browse,
// ServiceDemands, Save) may run concurrently with each other and with the
// mutating methods (Insert, Delete, FailDisk, HealDisk, Reorganize,
// Build). Build and Reorganize replace the index structure as an atomic
// cutover: a query observes either the old or the new structure, never a
// half-built one. See DESIGN.md ("Concurrency contract") for the exact
// guarantees and the lock hierarchy.
package parsearch

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"parsearch/internal/core"
	"parsearch/internal/disk"
	"parsearch/internal/knn"
	"parsearch/internal/vec"
	"parsearch/internal/xtree"
)

// Kind selects a declustering strategy.
type Kind string

// The available declustering strategies.
const (
	// NearOptimal is the paper's graph-coloring declustering ("new"):
	// quadrant coloring with col, folded to the disk count.
	NearOptimal Kind = "near-optimal"
	// Hilbert declusters by the quadrant's Hilbert value mod disks
	// [FB 93] — the strongest classic baseline.
	Hilbert Kind = "hilbert"
	// DiskModulo declusters by the coordinate sum mod disks [DS 82].
	DiskModulo Kind = "disk-modulo"
	// FX declusters by the coordinate XOR mod disks [KP 88].
	FX Kind = "fx"
	// RoundRobin assigns points to disks by insertion order.
	RoundRobin Kind = "round-robin"
	// DirectOnly is an ablation: a d+1-coloring separating only direct
	// neighbors.
	DirectOnly Kind = "direct-only"
)

// DiskParams is the service-time model of one simulated disk.
type DiskParams struct {
	// Seek is charged once per page read (positioning).
	Seek time.Duration
	// Transfer is charged per 4-KByte block of the page.
	Transfer time.Duration
	// Throttle, when non-zero, makes queries really sleep the scaled
	// service time on each disk goroutine (tests and demos only).
	Throttle float64
}

// DefaultDiskParams models the paper's mid-1990s SCSI disks: 8 ms
// positioning and 1 ms to transfer a 4-KByte block.
func DefaultDiskParams() DiskParams {
	p := disk.DefaultParams()
	return DiskParams{Seek: p.Seek, Transfer: p.Transfer, Throttle: p.Throttle}
}

func (p DiskParams) validate() error {
	if p.Seek < 0 || p.Transfer < 0 || p.Throttle < 0 {
		return fmt.Errorf("parsearch: negative disk parameters %+v", p)
	}
	return nil
}

// Metric selects the distance function for similarity queries.
type Metric string

// The available metrics.
const (
	// Euclidean (L2) distance, the paper's similarity measure. Default.
	Euclidean Metric = "l2"
	// Manhattan (L1) distance.
	Manhattan Metric = "l1"
	// Maximum (L∞) distance.
	Maximum Metric = "linf"
)

// CostModel selects how query page accesses are accounted.
type CostModel string

// The available cost models.
const (
	// TreePages counts the leaf pages of each disk's X-tree whose MBR
	// intersects the NN-sphere — the behaviour of the real system,
	// where every disk packs its share of the data into its own index
	// pages. Default.
	TreePages CostModel = "tree"
	// BucketPages counts the pages of the quadrant buckets intersecting
	// the NN-sphere — the paper's idealized storage model of §3, where
	// the buckets themselves are the storage units. Useful at small
	// scale, where per-disk trees cannot resolve quadrants yet.
	BucketPages CostModel = "buckets"
)

// Options configure an Index. Zero values select the documented defaults.
// Options are immutable after Open.
type Options struct {
	// Dim is the dimensionality of the feature vectors. Required.
	Dim int
	// Disks is the number of disks to decluster onto. Required.
	Disks int
	// Kind selects the declustering strategy; default NearOptimal.
	Kind Kind
	// PageSize is the disk block size in bytes; default 4096 (the
	// paper's block size). It determines the X-tree node capacities.
	PageSize int
	// QuantileSplits, when true, places the quadrant split of every
	// dimension at the data's median instead of 0.5 (the paper's first
	// extension for skewed data). Takes effect at Build time.
	QuantileSplits bool
	// Recursive, when true, recursively declusters overloaded disks
	// (the paper's second extension for highly clustered data). Takes
	// effect at Build time. Only valid with Kind NearOptimal.
	Recursive bool
	// DiskParams is the service-time model of the simulated disks;
	// nil selects DefaultDiskParams.
	DiskParams *DiskParams
	// Baseline, when true, additionally maintains a sequential X-tree
	// over all data so QueryStats can report the true speed-up.
	Baseline bool
	// CostModel selects the page-access accounting; default TreePages.
	CostModel CostModel
	// Metric selects the similarity measure; default Euclidean.
	Metric Metric
	// BatchWorkers caps the number of concurrent query workers of the
	// BatchKNN scheduler; 0 selects runtime.GOMAXPROCS(0). It bounds
	// CPU fan-out under heavy batch load, not the per-query disk
	// parallelism.
	BatchWorkers int
}

// vecMetric maps the option value to the internal metric type.
func (m Metric) vecMetric() (vec.Metric, error) {
	switch m {
	case Euclidean:
		return vec.L2, nil
	case Manhattan:
		return vec.L1, nil
	case Maximum:
		return vec.LInf, nil
	default:
		return 0, fmt.Errorf("parsearch: unknown metric %q", m)
	}
}

// metric returns the validated internal metric of the index.
func (ix *Index) metric() vec.Metric {
	m, err := ix.opts.Metric.vecMetric()
	if err != nil {
		panic(err) // validated in Open
	}
	return m
}

// Neighbor is one query result.
type Neighbor struct {
	// ID is the identifier assigned at Build/Insert time.
	ID int
	// Point is the stored feature vector.
	Point []float64
	// Dist is the distance to the query point under the index's metric
	// (Euclidean by default).
	Dist float64
}

// QueryStats reports the cost of one query in the paper's metrics. Data
// is stored in bucket cells (the quadrants of the data space, the paper's
// storage units); a query must read the pages of every cell whose region
// intersects the NN-sphere.
type QueryStats struct {
	// PagesPerDisk is the number of data pages each disk had to read.
	PagesPerDisk []int
	// MaxPages is the bottleneck disk's page count — the paper's
	// parallel search cost.
	MaxPages int
	// TotalPages is the sum over all disks, the cost of a sequential
	// search over the same storage.
	TotalPages int
	// Cells is the number of bucket cells the NN-sphere intersected.
	Cells int
	// SeqPages is the page count of a sequential X-tree over all data
	// (the paper's sequential baseline); 0 unless Options.Baseline was
	// set.
	SeqPages int
	// BaselineTime is the simulated search time of the sequential
	// X-tree, in seconds; 0 without Options.Baseline.
	BaselineTime float64
	// BaselineSpeedup is BaselineTime / ParallelTime — the speed-up the
	// paper reports (parallel X-tree vs. the original sequential
	// X-tree); 0 without Options.Baseline.
	BaselineSpeedup float64
	// ParallelTime is the simulated search time of the bottleneck
	// disk, in seconds.
	ParallelTime float64
	// SequentialTime is the simulated time had one disk performed all
	// reads, in seconds.
	SequentialTime float64
	// Speedup is SequentialTime / ParallelTime, the paper's headline
	// metric.
	Speedup float64
}

// cellInfo is one storage cell: a quadrant (or recursive sub-quadrant)
// region, the disk it is assigned to, and how many points it holds.
type cellInfo struct {
	rect  vec.Rect
	disk  int
	count int
}

// shard is one disk's partition of the index: the disk's X-tree plus the
// read-write mutex that serializes structural tree mutation against
// concurrent query traversals. Queries on different disks never contend.
type shard struct {
	mu   sync.RWMutex
	tree *xtree.Tree
}

// state is the derived index structure — everything Build computes from
// the stored vectors: the bucketing, the declustering assignment, the
// per-disk shards, the optional sequential baseline, and the storage-cell
// accounting. Build and Reorganize construct a replacement state off the
// lock and cut it in under the index write lock, so queries never observe
// a half-built index. bucketer and assigner are immutable within a state;
// cells/cellIndex are mutated by Insert/Delete under Index.meta.
type state struct {
	bucketer  core.Bucketer
	assigner  core.Assigner
	shards    []*shard
	baseline  *shard // nil unless Options.Baseline
	cells     []cellInfo
	cellIndex map[string]int
}

// Index is a parallel similarity-search index, safe for concurrent use
// (see the package comment).
//
// Lock hierarchy (always acquired in this order, never the reverse):
//
//	mu (R by queries and point mutations, W by Build/Reorganize cutover)
//	→ meta (point table, live count, cell loads, quantile estimators)
//	→ shard.mu per disk (R by tree traversals, W by tree mutation)
type Index struct {
	opts   Options
	params disk.Params
	array  *disk.Array

	// mu is the cutover lock: queries and single-point mutations hold
	// it in read mode; Build and Reorganize take it in write mode only
	// for the moment they swap in a freshly built state, so a rebuild
	// is atomic without blocking readers while it is computed.
	mu sync.RWMutex
	st *state

	// meta guards the point table and everything maintained per point:
	// the ID space, the live count, the storage-cell loads of the
	// current state, the adaptive quantile estimators, and the
	// mutation version counter.
	meta     sync.Mutex
	points   []vec.Point // index = ID; nil entries are deleted (tombstones)
	live     int         // number of non-tombstone points
	adaptive *core.AdaptiveSplitter
	version  uint64 // bumped by every mutation; Reorganize's conflict check
}

// Open validates the options and returns an empty index.
func Open(opts Options) (*Index, error) {
	if opts.Dim < 1 || opts.Dim > core.MaxDim {
		return nil, fmt.Errorf("parsearch: dimension %d outside [1, %d]", opts.Dim, core.MaxDim)
	}
	if opts.Disks < 1 {
		return nil, fmt.Errorf("parsearch: %d disks", opts.Disks)
	}
	if opts.Kind == "" {
		opts.Kind = NearOptimal
	}
	if opts.PageSize == 0 {
		opts.PageSize = xtree.PageSize
	}
	if opts.PageSize < 256 {
		return nil, fmt.Errorf("parsearch: page size %d too small", opts.PageSize)
	}
	if opts.Recursive && opts.Kind != NearOptimal {
		return nil, fmt.Errorf("parsearch: recursive declustering requires the near-optimal strategy, not %q", opts.Kind)
	}
	if opts.CostModel == "" {
		opts.CostModel = TreePages
	}
	if opts.CostModel != TreePages && opts.CostModel != BucketPages {
		return nil, fmt.Errorf("parsearch: unknown cost model %q", opts.CostModel)
	}
	if opts.Metric == "" {
		opts.Metric = Euclidean
	}
	if _, err := opts.Metric.vecMetric(); err != nil {
		return nil, err
	}
	if opts.BatchWorkers < 0 {
		return nil, fmt.Errorf("parsearch: %d batch workers", opts.BatchWorkers)
	}
	params := disk.DefaultParams()
	if opts.DiskParams != nil {
		if err := opts.DiskParams.validate(); err != nil {
			return nil, err
		}
		params = disk.Params{
			Seek:     opts.DiskParams.Seek,
			Transfer: opts.DiskParams.Transfer,
			Throttle: opts.DiskParams.Throttle,
		}
	}

	ix := &Index{opts: opts, params: params}
	ix.array = disk.NewArray(opts.Disks, params)
	st, err := ix.emptyState()
	if err != nil {
		return nil, err
	}
	ix.st = st
	return ix, nil
}

// emptyState returns the derived structure of an index with no data: a
// midpoint bucketing, the configured strategy, and empty trees.
func (ix *Index) emptyState() (*state, error) {
	st := &state{
		bucketer:  core.NewMidpointSplitter(ix.opts.Dim),
		cellIndex: make(map[string]int),
	}
	assigner, err := ix.makeAssigner(st.bucketer)
	if err != nil {
		return nil, err
	}
	st.assigner = assigner
	cfg := ix.treeConfig()
	st.shards = make([]*shard, ix.opts.Disks)
	for i := range st.shards {
		st.shards[i] = &shard{tree: xtree.New(cfg)}
	}
	if ix.opts.Baseline {
		st.baseline = &shard{tree: xtree.New(cfg)}
	}
	return st, nil
}

// splitValues returns the current per-dimension split values of the
// state's bucketer (both splitter implementations expose them).
func splitValues(st *state) []float64 {
	return st.bucketer.(interface{ Splits() []float64 }).Splits()
}

// assignCell places point i under the given state and returns its disk
// together with the storage cell it lands in. The state's bucketer and
// assigner are immutable, so no lock is needed beyond pinning st.
func (ix *Index) assignCell(st *state, i int, p vec.Point) (diskNo int, key string, rect vec.Rect) {
	if rec, ok := st.assigner.(*core.Recursive); ok {
		c := rec.AssignCell(p)
		return c.Disk, c.Key(), c.Rect
	}
	diskNo = st.assigner.Assign(i, p)
	b := st.bucketer.Bucket(p)
	// Round robin scatters a quadrant over every disk; the disk is part
	// of the cell identity so each disk keeps its own pages per quadrant.
	key = fmt.Sprintf("%d#%d", b, diskNo)
	return diskNo, key, core.QuadrantRect(b, splitValues(st))
}

// addToCell records one point in its storage cell. Caller holds meta (or
// exclusively owns st during a build).
func addToCell(st *state, key string, diskNo int, rect vec.Rect) {
	if idx, ok := st.cellIndex[key]; ok {
		st.cells[idx].count++
		return
	}
	st.cellIndex[key] = len(st.cells)
	st.cells = append(st.cells, cellInfo{rect: rect, disk: diskNo, count: 1})
}

func (ix *Index) treeConfig() xtree.Config {
	cfg := xtree.DefaultConfig(ix.opts.Dim)
	cfg.LeafCapacity = xtree.LeafCapacityForPage(ix.opts.Dim, ix.opts.PageSize)
	cfg.DirCapacity = xtree.DirCapacityForPage(ix.opts.Dim, ix.opts.PageSize)
	return cfg
}

// makeAssigner builds the Assigner for the configured strategy over the
// given bucketer.
func (ix *Index) makeAssigner(b core.Bucketer) (core.Assigner, error) {
	d, n := ix.opts.Dim, ix.opts.Disks
	switch ix.opts.Kind {
	case NearOptimal:
		return core.NewBucketAssigner(b, core.NewNearOptimal(d, n)), nil
	case Hilbert:
		s, err := core.NewHilbert(d, 1, n)
		if err != nil {
			return nil, fmt.Errorf("parsearch: %w", err)
		}
		return core.NewBucketAssigner(b, s), nil
	case DiskModulo:
		return core.NewBucketAssigner(b, core.NewDiskModulo(n)), nil
	case FX:
		return core.NewBucketAssigner(b, core.NewFX(n)), nil
	case RoundRobin:
		return core.NewRoundRobin(n), nil
	case DirectOnly:
		return core.NewBucketAssigner(b, core.NewDirectOnly(d, n)), nil
	default:
		return nil, fmt.Errorf("parsearch: unknown strategy %q", ix.opts.Kind)
	}
}

// Strategy returns the name of the active declustering strategy.
func (ix *Index) Strategy() string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.st.assigner.Name()
}

// Disks returns the number of disks.
func (ix *Index) Disks() int { return ix.opts.Disks }

// Len returns the number of indexed (non-deleted) vectors.
func (ix *Index) Len() int {
	ix.meta.Lock()
	defer ix.meta.Unlock()
	return ix.live
}

// liveCount returns the live count under meta.
func (ix *Index) liveCount() int {
	ix.meta.Lock()
	defer ix.meta.Unlock()
	return ix.live
}

// FailDisk marks a simulated disk as failed: queries whose page reads
// touch it return an error (wrapping disk.ErrDiskFailed) until HealDisk
// is called. Used for failure-injection testing. The failure flag is
// atomic; FailDisk is safe to call during running queries.
func (ix *Index) FailDisk(d int) error {
	if d < 0 || d >= ix.opts.Disks {
		return fmt.Errorf("parsearch: no disk %d", d)
	}
	ix.array.Fail(d)
	return nil
}

// HealDisk clears a disk failure injected with FailDisk.
func (ix *Index) HealDisk(d int) error {
	if d < 0 || d >= ix.opts.Disks {
		return fmt.Errorf("parsearch: no disk %d", d)
	}
	ix.array.Heal(d)
	return nil
}

// DiskFailed reports whether disk d is currently failed.
func (ix *Index) DiskFailed(d int) bool {
	if d < 0 || d >= ix.opts.Disks {
		return false
	}
	return ix.array.Failed(d)
}

// DiskLoads returns the number of vectors stored on each disk.
func (ix *Index) DiskLoads() []int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	loads := make([]int, len(ix.st.shards))
	for i, sh := range ix.st.shards {
		sh.mu.RLock()
		loads[i] = sh.tree.Len()
		sh.mu.RUnlock()
	}
	return loads
}

// CellLoads returns, per disk, the sum of the point counts of the disk's
// storage cells. By construction it equals DiskLoads after any
// interleaving of operations; CheckIntegrity verifies exactly that.
func (ix *Index) CellLoads() []int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	st := ix.st
	ix.meta.Lock()
	defer ix.meta.Unlock()
	loads := make([]int, len(st.shards))
	for _, c := range st.cells {
		loads[c.disk] += c.count
	}
	return loads
}

// CheckIntegrity verifies the cross-structure invariants of the index and
// returns the first violation found, or nil:
//
//   - the live count equals the number of non-tombstone points,
//   - every disk's X-tree passes its structural invariant check,
//   - every disk's tree size equals the sum of its cell loads,
//   - the tree sizes sum to the live count,
//   - the baseline tree (if any) holds exactly the live points.
//
// It takes the same locks as a writer, so the check is atomic with
// respect to concurrent mutations.
func (ix *Index) CheckIntegrity() error {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	st := ix.st
	ix.meta.Lock()
	defer ix.meta.Unlock()

	stored := 0
	for _, p := range ix.points {
		if p != nil {
			stored++
		}
	}
	if stored != ix.live {
		return fmt.Errorf("parsearch: %d stored points but live count %d", stored, ix.live)
	}
	cellLoads := make([]int, len(st.shards))
	for _, c := range st.cells {
		if c.count < 0 {
			return fmt.Errorf("parsearch: negative cell load %d on disk %d", c.count, c.disk)
		}
		cellLoads[c.disk] += c.count
	}
	total := 0
	for d, sh := range st.shards {
		sh.mu.RLock()
		n := sh.tree.Len()
		err := sh.tree.CheckInvariants()
		sh.mu.RUnlock()
		if err != nil {
			return fmt.Errorf("parsearch: disk %d: %w", d, err)
		}
		if cellLoads[d] != n {
			return fmt.Errorf("parsearch: disk %d holds %d vectors but cell loads sum to %d", d, n, cellLoads[d])
		}
		total += n
	}
	if total != ix.live {
		return fmt.Errorf("parsearch: trees hold %d vectors, live count %d", total, ix.live)
	}
	if st.baseline != nil {
		st.baseline.mu.RLock()
		n := st.baseline.tree.Len()
		err := st.baseline.tree.CheckInvariants()
		st.baseline.mu.RUnlock()
		if err != nil {
			return fmt.Errorf("parsearch: baseline: %w", err)
		}
		if n != ix.live {
			return fmt.Errorf("parsearch: baseline holds %d vectors, live count %d", n, ix.live)
		}
	}
	return nil
}

// buildState constructs a fresh derived state (and the cloned point
// table) from the given vectors. It reads only immutable index fields, so
// it runs without any lock — Build and Reorganize call it off the lock
// and cut the result in atomically.
func (ix *Index) buildState(points [][]float64) (st *state, pts []vec.Point, live int, err error) {
	for i, p := range points {
		if p != nil && len(p) != ix.opts.Dim {
			return nil, nil, 0, fmt.Errorf("parsearch: point %d has dimension %d, want %d", i, len(p), ix.opts.Dim)
		}
	}
	pts = make([]vec.Point, len(points))
	var livePoints []vec.Point
	for i, p := range points {
		if p == nil {
			continue
		}
		pts[i] = vec.Clone(p)
		livePoints = append(livePoints, pts[i])
		live++
	}

	st = &state{cellIndex: make(map[string]int)}
	// Choose the bucketing per the configured extensions.
	if ix.opts.QuantileSplits && live > 0 {
		st.bucketer = core.NewQuantileSplitter(livePoints, 0.5)
	} else {
		st.bucketer = core.NewMidpointSplitter(ix.opts.Dim)
	}
	if ix.opts.Recursive {
		st.assigner = core.BuildRecursive(livePoints, st.bucketer, ix.opts.Disks,
			core.DefaultRecursiveConfig(ix.opts.Disks))
	} else {
		assigner, err := ix.makeAssigner(st.bucketer)
		if err != nil {
			return nil, nil, 0, err
		}
		st.assigner = assigner
	}

	// Partition into per-disk trees and bucket cells. Bucket-based
	// strategies store data per bucket, so no page spans two buckets
	// (the paper's storage layout); round robin has no spatial
	// grouping — each disk indexes its arrival-order sample as a whole.
	// With a single disk there is nothing to decluster: the "parallel"
	// index degenerates to the original sequential X-tree, so the plain
	// layout applies (bucket grouping would only fragment pages).
	_, isRR := st.assigner.(*core.RoundRobin)
	plain := isRR || ix.opts.Disks == 1
	groups := make([]map[string][]xtree.Entry, ix.opts.Disks)
	for d := range groups {
		groups[d] = make(map[string][]xtree.Entry)
	}
	for i, p := range pts {
		if p == nil {
			continue
		}
		d, key, rect := ix.assignCell(st, i, p)
		addToCell(st, key, d, rect)
		groups[d][key] = append(groups[d][key], xtree.Entry{Point: p, ID: i})
	}
	cfg := ix.treeConfig()
	st.shards = make([]*shard, ix.opts.Disks)
	for d := range st.shards {
		keys := make([]string, 0, len(groups[d]))
		for key := range groups[d] {
			keys = append(keys, key)
		}
		sort.Strings(keys) // deterministic build
		st.shards[d] = &shard{tree: xtree.New(cfg)}
		if plain {
			var all []xtree.Entry
			for _, key := range keys {
				all = append(all, groups[d][key]...)
			}
			st.shards[d].tree.BulkLoad(all)
			continue
		}
		parts := make([][]xtree.Entry, 0, len(keys))
		for _, key := range keys {
			parts = append(parts, groups[d][key])
		}
		st.shards[d].tree.BulkLoadGrouped(parts)
	}
	if ix.opts.Baseline {
		entries := make([]xtree.Entry, 0, live)
		for i, p := range pts {
			if p != nil {
				entries = append(entries, xtree.Entry{Point: p, ID: i})
			}
		}
		st.baseline = &shard{tree: xtree.New(cfg)}
		st.baseline.tree.BulkLoad(entries)
	}
	return st, pts, live, nil
}

// Build indexes the given vectors, replacing any previous content. Vector
// i receives ID i. A nil vector is a tombstone: its ID stays reserved but
// nothing is stored (snapshots of indexes with deletions use this). With
// Options.QuantileSplits the quadrant splits are placed at the
// per-dimension medians of the data; with Options.Recursive overloaded
// disks are recursively declustered (both extensions of §4.3).
//
// The new structure is computed off the lock — queries keep running
// against the old contents meanwhile — and swapped in as an atomic
// cutover. A concurrent Insert or Delete serializes either before the
// cutover (its effect is replaced, as if it preceded Build) or after it.
func (ix *Index) Build(points [][]float64) error {
	st, pts, live, err := ix.buildState(points)
	if err != nil {
		return err
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.meta.Lock()
	defer ix.meta.Unlock()
	ix.st = st
	ix.points = pts
	ix.live = live
	ix.version++
	return nil
}

// Insert adds one vector dynamically and returns its ID. Point mutations
// are serialized with each other but run concurrently with queries.
func (ix *Index) Insert(p []float64) (int, error) {
	if len(p) != ix.opts.Dim {
		return 0, fmt.Errorf("parsearch: inserting dimension %d, want %d", len(p), ix.opts.Dim)
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	st := ix.st
	ix.meta.Lock()
	defer ix.meta.Unlock()

	id := len(ix.points)
	point := vec.Clone(p)
	ix.points = append(ix.points, point)
	ix.live++
	ix.version++
	if ix.opts.QuantileSplits {
		ix.observer().Observe(point)
	}
	d, key, rect := ix.assignCell(st, id, point)
	addToCell(st, key, d, rect)
	sh := st.shards[d]
	sh.mu.Lock()
	sh.tree.Insert(point, id)
	sh.mu.Unlock()
	if st.baseline != nil {
		st.baseline.mu.Lock()
		st.baseline.tree.Insert(point, id)
		st.baseline.mu.Unlock()
	}
	return id, nil
}

// Delete removes the vector with the given ID. The ID is not reused;
// subsequent inserts continue from the highest ID ever assigned.
func (ix *Index) Delete(id int) error {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	st := ix.st
	ix.meta.Lock()
	defer ix.meta.Unlock()

	if id < 0 || id >= len(ix.points) || ix.points[id] == nil {
		return fmt.Errorf("parsearch: no vector with id %d", id)
	}
	p := ix.points[id]
	d, key, _ := ix.assignCell(st, id, p)
	sh := st.shards[d]
	sh.mu.Lock()
	ok := sh.tree.Delete(p, id)
	sh.mu.Unlock()
	if !ok {
		return fmt.Errorf("parsearch: internal inconsistency: id %d not found on disk %d", id, d)
	}
	if st.baseline != nil {
		st.baseline.mu.Lock()
		st.baseline.tree.Delete(p, id)
		st.baseline.mu.Unlock()
	}
	if idx, ok := st.cellIndex[key]; ok && st.cells[idx].count > 0 {
		st.cells[idx].count--
	}
	ix.points[id] = nil
	ix.live--
	ix.version++
	return nil
}

// ErrEmpty is returned by queries on an empty index.
var ErrEmpty = errors.New("parsearch: index is empty")

// NN returns the nearest neighbor of q.
func (ix *Index) NN(q []float64) (Neighbor, QueryStats, error) {
	res, stats, err := ix.KNN(q, 1)
	if err != nil {
		return Neighbor{}, stats, err
	}
	return res[0], stats, nil
}

// KNN returns the k nearest neighbors of q, searching all disks in
// parallel, together with the query's cost statistics.
func (ix *Index) KNN(q []float64, k int) ([]Neighbor, QueryStats, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	st := ix.st

	var stats QueryStats
	if len(q) != ix.opts.Dim {
		return nil, stats, fmt.Errorf("parsearch: query dimension %d, want %d", len(q), ix.opts.Dim)
	}
	if k < 1 {
		return nil, stats, fmt.Errorf("parsearch: k = %d", k)
	}
	if ix.liveCount() == 0 {
		return nil, stats, ErrEmpty
	}

	// Phase 1: every disk finds its local k nearest neighbors, one
	// goroutine per disk (the union of the local results contains the
	// global result). Each goroutine holds only its own disk's read
	// lock, so a concurrent insert on one disk never blocks the
	// searches on the others.
	m := ix.metric()
	locals := make([][]knn.Result, len(st.shards))
	var wg sync.WaitGroup
	for d := range st.shards {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			sh := st.shards[d]
			sh.mu.RLock()
			locals[d], _ = knn.HSMetric(sh.tree, q, k, m)
			sh.mu.RUnlock()
		}(d)
	}
	wg.Wait()

	// Merge to the global k nearest.
	var merged []knn.Result
	for _, l := range locals {
		merged = append(merged, l...)
	}
	sortResults(merged)
	if len(merged) > k {
		merged = merged[:k]
	}
	if len(merged) == 0 {
		// Concurrent deletions emptied the index between the live
		// check and the search.
		return nil, stats, ErrEmpty
	}
	rk := merged[len(merged)-1].Dist

	// Phase 2: cost accounting — every disk must read its pages
	// intersecting the NN-sphere of radius rk (§3.2: the partitions
	// intersecting the NN-sphere should be distributed over different
	// disks). The cost model selects what a "page" is: the disk's own
	// X-tree leaf pages (real system) or the quadrant buckets (the
	// paper's idealized storage).
	stats.PagesPerDisk = make([]int, len(st.shards))
	refs, cells := ix.sphereRefs(st, q, rk, stats.PagesPerDisk)
	stats.Cells = cells
	batch, err := ix.array.ReadBatch(refs)
	if err != nil {
		return nil, stats, fmt.Errorf("parsearch: %w", err)
	}
	stats.MaxPages = batch.MaxPerDisk
	stats.TotalPages = batch.Total
	stats.ParallelTime = batch.ParallelTime.Seconds()
	stats.SequentialTime = batch.SequentialTime.Seconds()
	stats.Speedup = batch.Speedup()

	if st.baseline != nil {
		st.baseline.mu.RLock()
		pages, leaves := knn.SphereLeafPagesMetric(st.baseline.tree, q, rk, m)
		st.baseline.mu.RUnlock()
		stats.SeqPages = pages
		stats.BaselineTime = ix.params.SimulateCost(leaves, pages).Seconds()
		if stats.ParallelTime > 0 {
			stats.BaselineSpeedup = stats.BaselineTime / stats.ParallelTime
		}
	}

	out := make([]Neighbor, len(merged))
	for i, r := range merged {
		out[i] = Neighbor{ID: r.Entry.ID, Point: r.Entry.Point, Dist: r.Dist}
	}
	return out, stats, nil
}

// sphereRefs collects the page reads a query with NN-sphere radius rk
// requires, per the configured cost model: the disks' own X-tree leaf
// pages (real system) or the quadrant bucket pages (the paper's
// idealized storage of §3). perDisk is incremented with the page counts;
// the returned refs feed the disk array. Each disk's leaves are
// enumerated under that disk's read lock; the cell scan of the bucket
// model runs under meta.
func (ix *Index) sphereRefs(st *state, q vec.Point, rk float64, perDisk []int) (refs []disk.PageRef, cells int) {
	m := ix.metric()
	rank := m.ToRank(rk)
	switch ix.opts.CostModel {
	case BucketPages:
		leafCap := ix.treeConfig().LeafCapacity
		ix.meta.Lock()
		for i := range st.cells {
			c := &st.cells[i]
			if c.count == 0 || m.RankMinDist(c.rect, q) > rank {
				continue
			}
			pages := (c.count + leafCap - 1) / leafCap
			cells++
			perDisk[c.disk] += pages
			refs = append(refs, disk.PageRef{Disk: c.disk, Blocks: pages})
		}
		ix.meta.Unlock()
	default: // TreePages
		for d, sh := range st.shards {
			sh.mu.RLock()
			for _, leaf := range sh.tree.Leaves() {
				if m.RankMinDist(leaf.Rect(), q) > rank {
					continue
				}
				cells++
				perDisk[d] += leaf.Super()
				refs = append(refs, disk.PageRef{Disk: d, Blocks: leaf.Super()})
			}
			sh.mu.RUnlock()
		}
	}
	return refs, cells
}

// sortResults orders by distance, breaking ties by ID.
func sortResults(rs []knn.Result) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0; j-- {
			if rs[j].Dist < rs[j-1].Dist ||
				(rs[j].Dist == rs[j-1].Dist && rs[j].Entry.ID < rs[j-1].Entry.ID) {
				rs[j], rs[j-1] = rs[j-1], rs[j]
			} else {
				break
			}
		}
	}
}

// VerifyDeclustering checks the active bucket-based strategy against the
// paper's near-optimality criterion (Definition 4) and returns up to max
// violations, formatted for display. Round-robin and recursive
// assignments are point-based and return an error, as do dimensions too
// large to enumerate.
func (ix *Index) VerifyDeclustering(max int) ([]string, error) {
	ix.mu.RLock()
	assigner := ix.st.assigner
	ix.mu.RUnlock()
	ba, ok := assigner.(*core.BucketAssigner)
	if !ok {
		return nil, fmt.Errorf("parsearch: strategy %q is not bucket-based", assigner.Name())
	}
	if ix.opts.Dim >= 25 {
		return nil, fmt.Errorf("parsearch: dimension %d too large for exhaustive verification", ix.opts.Dim)
	}
	var out []string
	for _, v := range core.VerifyNearOptimal(ba.Strategy(), ix.opts.Dim, max) {
		out = append(out, v.String())
	}
	return out, nil
}
