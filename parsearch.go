// Package parsearch is a parallel similarity-search engine for
// high-dimensional feature vectors, reproducing "Fast Parallel Similarity
// Search in Multimedia Databases" (Berchtold, Böhm, Braunmüller, Keim,
// Kriegel; ACM SIGMOD 1997).
//
// Feature vectors are declustered over a bank of simulated disks; each
// disk holds an X-tree over its share of the data, and k-nearest-neighbor
// queries run against all disks in parallel (one goroutine per disk). The
// declustering strategy decides how well the pages a query must read are
// spread over the disks, and hence the speed-up; the paper's near-optimal
// strategy guarantees that all directly and indirectly neighboring
// quadrants of the data space land on different disks.
//
// Basic use:
//
//	ix, err := parsearch.Open(parsearch.Options{Dim: 16, Disks: 8})
//	if err != nil { ... }
//	ix.Build(points)
//	neighbors, stats, err := ix.KNN(query, 10)
//
// The returned QueryStats carry the paper's cost metrics: pages read per
// disk, the bottleneck disk, and the speed-up over a sequential search.
package parsearch

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"parsearch/internal/core"
	"parsearch/internal/disk"
	"parsearch/internal/knn"
	"parsearch/internal/vec"
	"parsearch/internal/xtree"
)

// Kind selects a declustering strategy.
type Kind string

// The available declustering strategies.
const (
	// NearOptimal is the paper's graph-coloring declustering ("new"):
	// quadrant coloring with col, folded to the disk count.
	NearOptimal Kind = "near-optimal"
	// Hilbert declusters by the quadrant's Hilbert value mod disks
	// [FB 93] — the strongest classic baseline.
	Hilbert Kind = "hilbert"
	// DiskModulo declusters by the coordinate sum mod disks [DS 82].
	DiskModulo Kind = "disk-modulo"
	// FX declusters by the coordinate XOR mod disks [KP 88].
	FX Kind = "fx"
	// RoundRobin assigns points to disks by insertion order.
	RoundRobin Kind = "round-robin"
	// DirectOnly is an ablation: a d+1-coloring separating only direct
	// neighbors.
	DirectOnly Kind = "direct-only"
)

// DiskParams is the service-time model of one simulated disk.
type DiskParams struct {
	// Seek is charged once per page read (positioning).
	Seek time.Duration
	// Transfer is charged per 4-KByte block of the page.
	Transfer time.Duration
	// Throttle, when non-zero, makes queries really sleep the scaled
	// service time on each disk goroutine (tests and demos only).
	Throttle float64
}

// DefaultDiskParams models the paper's mid-1990s SCSI disks: 8 ms
// positioning and 1 ms to transfer a 4-KByte block.
func DefaultDiskParams() DiskParams {
	p := disk.DefaultParams()
	return DiskParams{Seek: p.Seek, Transfer: p.Transfer, Throttle: p.Throttle}
}

func (p DiskParams) validate() error {
	if p.Seek < 0 || p.Transfer < 0 || p.Throttle < 0 {
		return fmt.Errorf("parsearch: negative disk parameters %+v", p)
	}
	return nil
}

// Metric selects the distance function for similarity queries.
type Metric string

// The available metrics.
const (
	// Euclidean (L2) distance, the paper's similarity measure. Default.
	Euclidean Metric = "l2"
	// Manhattan (L1) distance.
	Manhattan Metric = "l1"
	// Maximum (L∞) distance.
	Maximum Metric = "linf"
)

// CostModel selects how query page accesses are accounted.
type CostModel string

// The available cost models.
const (
	// TreePages counts the leaf pages of each disk's X-tree whose MBR
	// intersects the NN-sphere — the behaviour of the real system,
	// where every disk packs its share of the data into its own index
	// pages. Default.
	TreePages CostModel = "tree"
	// BucketPages counts the pages of the quadrant buckets intersecting
	// the NN-sphere — the paper's idealized storage model of §3, where
	// the buckets themselves are the storage units. Useful at small
	// scale, where per-disk trees cannot resolve quadrants yet.
	BucketPages CostModel = "buckets"
)

// Options configure an Index. Zero values select the documented defaults.
type Options struct {
	// Dim is the dimensionality of the feature vectors. Required.
	Dim int
	// Disks is the number of disks to decluster onto. Required.
	Disks int
	// Kind selects the declustering strategy; default NearOptimal.
	Kind Kind
	// PageSize is the disk block size in bytes; default 4096 (the
	// paper's block size). It determines the X-tree node capacities.
	PageSize int
	// QuantileSplits, when true, places the quadrant split of every
	// dimension at the data's median instead of 0.5 (the paper's first
	// extension for skewed data). Takes effect at Build time.
	QuantileSplits bool
	// Recursive, when true, recursively declusters overloaded disks
	// (the paper's second extension for highly clustered data). Takes
	// effect at Build time. Only valid with Kind NearOptimal.
	Recursive bool
	// DiskParams is the service-time model of the simulated disks;
	// nil selects DefaultDiskParams.
	DiskParams *DiskParams
	// Baseline, when true, additionally maintains a sequential X-tree
	// over all data so QueryStats can report the true speed-up.
	Baseline bool
	// CostModel selects the page-access accounting; default TreePages.
	CostModel CostModel
	// Metric selects the similarity measure; default Euclidean.
	Metric Metric
}

// vecMetric maps the option value to the internal metric type.
func (m Metric) vecMetric() (vec.Metric, error) {
	switch m {
	case Euclidean:
		return vec.L2, nil
	case Manhattan:
		return vec.L1, nil
	case Maximum:
		return vec.LInf, nil
	default:
		return 0, fmt.Errorf("parsearch: unknown metric %q", m)
	}
}

// metric returns the validated internal metric of the index.
func (ix *Index) metric() vec.Metric {
	m, err := ix.opts.Metric.vecMetric()
	if err != nil {
		panic(err) // validated in Open
	}
	return m
}

// Neighbor is one query result.
type Neighbor struct {
	// ID is the identifier assigned at Build/Insert time.
	ID int
	// Point is the stored feature vector.
	Point []float64
	// Dist is the distance to the query point under the index's metric
	// (Euclidean by default).
	Dist float64
}

// QueryStats reports the cost of one query in the paper's metrics. Data
// is stored in bucket cells (the quadrants of the data space, the paper's
// storage units); a query must read the pages of every cell whose region
// intersects the NN-sphere.
type QueryStats struct {
	// PagesPerDisk is the number of data pages each disk had to read.
	PagesPerDisk []int
	// MaxPages is the bottleneck disk's page count — the paper's
	// parallel search cost.
	MaxPages int
	// TotalPages is the sum over all disks, the cost of a sequential
	// search over the same storage.
	TotalPages int
	// Cells is the number of bucket cells the NN-sphere intersected.
	Cells int
	// SeqPages is the page count of a sequential X-tree over all data
	// (the paper's sequential baseline); 0 unless Options.Baseline was
	// set.
	SeqPages int
	// BaselineTime is the simulated search time of the sequential
	// X-tree, in seconds; 0 without Options.Baseline.
	BaselineTime float64
	// BaselineSpeedup is BaselineTime / ParallelTime — the speed-up the
	// paper reports (parallel X-tree vs. the original sequential
	// X-tree); 0 without Options.Baseline.
	BaselineSpeedup float64
	// ParallelTime is the simulated search time of the bottleneck
	// disk, in seconds.
	ParallelTime float64
	// SequentialTime is the simulated time had one disk performed all
	// reads, in seconds.
	SequentialTime float64
	// Speedup is SequentialTime / ParallelTime, the paper's headline
	// metric.
	Speedup float64
}

// cellInfo is one storage cell: a quadrant (or recursive sub-quadrant)
// region, the disk it is assigned to, and how many points it holds.
type cellInfo struct {
	rect  vec.Rect
	disk  int
	count int
}

// Index is a parallel similarity-search index.
type Index struct {
	opts      Options
	params    disk.Params
	bucketer  core.Bucketer
	assigner  core.Assigner
	array     *disk.Array
	trees     []*xtree.Tree
	baseline  *xtree.Tree
	points    []vec.Point // index = ID; nil entries are deleted (tombstones)
	live      int         // number of non-tombstone points
	adaptive  *core.AdaptiveSplitter
	cells     []cellInfo
	cellIndex map[string]int
	mu        sync.RWMutex
}

// Open validates the options and returns an empty index.
func Open(opts Options) (*Index, error) {
	if opts.Dim < 1 || opts.Dim > core.MaxDim {
		return nil, fmt.Errorf("parsearch: dimension %d outside [1, %d]", opts.Dim, core.MaxDim)
	}
	if opts.Disks < 1 {
		return nil, fmt.Errorf("parsearch: %d disks", opts.Disks)
	}
	if opts.Kind == "" {
		opts.Kind = NearOptimal
	}
	if opts.PageSize == 0 {
		opts.PageSize = xtree.PageSize
	}
	if opts.PageSize < 256 {
		return nil, fmt.Errorf("parsearch: page size %d too small", opts.PageSize)
	}
	if opts.Recursive && opts.Kind != NearOptimal {
		return nil, fmt.Errorf("parsearch: recursive declustering requires the near-optimal strategy, not %q", opts.Kind)
	}
	if opts.CostModel == "" {
		opts.CostModel = TreePages
	}
	if opts.CostModel != TreePages && opts.CostModel != BucketPages {
		return nil, fmt.Errorf("parsearch: unknown cost model %q", opts.CostModel)
	}
	if opts.Metric == "" {
		opts.Metric = Euclidean
	}
	if _, err := opts.Metric.vecMetric(); err != nil {
		return nil, err
	}
	params := disk.DefaultParams()
	if opts.DiskParams != nil {
		if err := opts.DiskParams.validate(); err != nil {
			return nil, err
		}
		params = disk.Params{
			Seek:     opts.DiskParams.Seek,
			Transfer: opts.DiskParams.Transfer,
			Throttle: opts.DiskParams.Throttle,
		}
	}

	ix := &Index{opts: opts, params: params}
	ix.bucketer = core.NewMidpointSplitter(opts.Dim)
	assigner, err := ix.makeAssigner(ix.bucketer)
	if err != nil {
		return nil, err
	}
	ix.assigner = assigner
	ix.array = disk.NewArray(opts.Disks, params)
	ix.trees = make([]*xtree.Tree, opts.Disks)
	cfg := ix.treeConfig()
	for i := range ix.trees {
		ix.trees[i] = xtree.New(cfg)
	}
	if opts.Baseline {
		ix.baseline = xtree.New(cfg)
	}
	ix.cellIndex = make(map[string]int)
	return ix, nil
}

// splitValues returns the current per-dimension split values of the
// bucketer (both splitter implementations expose them).
func (ix *Index) splitValues() []float64 {
	return ix.bucketer.(interface{ Splits() []float64 }).Splits()
}

// assignCell places point i and returns its disk together with the
// storage cell it lands in.
func (ix *Index) assignCell(i int, p vec.Point) (diskNo int, key string, rect vec.Rect) {
	if rec, ok := ix.assigner.(*core.Recursive); ok {
		c := rec.AssignCell(p)
		return c.Disk, c.Key(), c.Rect
	}
	diskNo = ix.assigner.Assign(i, p)
	b := ix.bucketer.Bucket(p)
	// Round robin scatters a quadrant over every disk; the disk is part
	// of the cell identity so each disk keeps its own pages per quadrant.
	key = fmt.Sprintf("%d#%d", b, diskNo)
	return diskNo, key, core.QuadrantRect(b, ix.splitValues())
}

// addToCell records one point in its storage cell.
func (ix *Index) addToCell(key string, diskNo int, rect vec.Rect) {
	if idx, ok := ix.cellIndex[key]; ok {
		ix.cells[idx].count++
		return
	}
	ix.cellIndex[key] = len(ix.cells)
	ix.cells = append(ix.cells, cellInfo{rect: rect, disk: diskNo, count: 1})
}

func (ix *Index) treeConfig() xtree.Config {
	cfg := xtree.DefaultConfig(ix.opts.Dim)
	cfg.LeafCapacity = xtree.LeafCapacityForPage(ix.opts.Dim, ix.opts.PageSize)
	cfg.DirCapacity = xtree.DirCapacityForPage(ix.opts.Dim, ix.opts.PageSize)
	return cfg
}

// makeAssigner builds the Assigner for the configured strategy over the
// given bucketer.
func (ix *Index) makeAssigner(b core.Bucketer) (core.Assigner, error) {
	d, n := ix.opts.Dim, ix.opts.Disks
	switch ix.opts.Kind {
	case NearOptimal:
		return core.NewBucketAssigner(b, core.NewNearOptimal(d, n)), nil
	case Hilbert:
		s, err := core.NewHilbert(d, 1, n)
		if err != nil {
			return nil, fmt.Errorf("parsearch: %w", err)
		}
		return core.NewBucketAssigner(b, s), nil
	case DiskModulo:
		return core.NewBucketAssigner(b, core.NewDiskModulo(n)), nil
	case FX:
		return core.NewBucketAssigner(b, core.NewFX(n)), nil
	case RoundRobin:
		return core.NewRoundRobin(n), nil
	case DirectOnly:
		return core.NewBucketAssigner(b, core.NewDirectOnly(d, n)), nil
	default:
		return nil, fmt.Errorf("parsearch: unknown strategy %q", ix.opts.Kind)
	}
}

// Strategy returns the name of the active declustering strategy.
func (ix *Index) Strategy() string { return ix.assigner.Name() }

// Disks returns the number of disks.
func (ix *Index) Disks() int { return ix.opts.Disks }

// Len returns the number of indexed (non-deleted) vectors.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.live
}

// FailDisk marks a simulated disk as failed: queries whose page reads
// touch it return an error (wrapping disk.ErrDiskFailed) until HealDisk
// is called. Used for failure-injection testing.
func (ix *Index) FailDisk(d int) error {
	if d < 0 || d >= ix.opts.Disks {
		return fmt.Errorf("parsearch: no disk %d", d)
	}
	ix.array.Fail(d)
	return nil
}

// HealDisk clears a disk failure injected with FailDisk.
func (ix *Index) HealDisk(d int) error {
	if d < 0 || d >= ix.opts.Disks {
		return fmt.Errorf("parsearch: no disk %d", d)
	}
	ix.array.Heal(d)
	return nil
}

// DiskLoads returns the number of vectors stored on each disk.
func (ix *Index) DiskLoads() []int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	loads := make([]int, len(ix.trees))
	for i, t := range ix.trees {
		loads[i] = t.Len()
	}
	return loads
}

// Build indexes the given vectors, replacing any previous content. Vector
// i receives ID i. A nil vector is a tombstone: its ID stays reserved but
// nothing is stored (snapshots of indexes with deletions use this). With
// Options.QuantileSplits the quadrant splits are placed at the
// per-dimension medians of the data; with Options.Recursive overloaded
// disks are recursively declustered (both extensions of §4.3).
func (ix *Index) Build(points [][]float64) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()

	for i, p := range points {
		if p != nil && len(p) != ix.opts.Dim {
			return fmt.Errorf("parsearch: point %d has dimension %d, want %d", i, len(p), ix.opts.Dim)
		}
	}
	ix.points = make([]vec.Point, len(points))
	ix.live = 0
	var livePoints []vec.Point
	for i, p := range points {
		if p == nil {
			continue
		}
		ix.points[i] = vec.Clone(p)
		livePoints = append(livePoints, ix.points[i])
		ix.live++
	}

	// Choose the bucketing per the configured extensions.
	if ix.opts.QuantileSplits && ix.live > 0 {
		ix.bucketer = core.NewQuantileSplitter(livePoints, 0.5)
	} else {
		ix.bucketer = core.NewMidpointSplitter(ix.opts.Dim)
	}
	if ix.opts.Recursive {
		ix.assigner = core.BuildRecursive(livePoints, ix.bucketer, ix.opts.Disks,
			core.DefaultRecursiveConfig(ix.opts.Disks))
	} else {
		assigner, err := ix.makeAssigner(ix.bucketer)
		if err != nil {
			return err
		}
		ix.assigner = assigner
	}

	// Partition into per-disk trees and bucket cells. Bucket-based
	// strategies store data per bucket, so no page spans two buckets
	// (the paper's storage layout); round robin has no spatial
	// grouping — each disk indexes its arrival-order sample as a whole.
	ix.cells = nil
	ix.cellIndex = make(map[string]int)
	// With a single disk there is nothing to decluster: the "parallel"
	// index degenerates to the original sequential X-tree, so the plain
	// layout applies (bucket grouping would only fragment pages).
	_, isRR := ix.assigner.(*core.RoundRobin)
	plain := isRR || ix.opts.Disks == 1
	groups := make([]map[string][]xtree.Entry, ix.opts.Disks)
	for d := range groups {
		groups[d] = make(map[string][]xtree.Entry)
	}
	for i, p := range ix.points {
		if p == nil {
			continue
		}
		d, key, rect := ix.assignCell(i, p)
		ix.addToCell(key, d, rect)
		groups[d][key] = append(groups[d][key], xtree.Entry{Point: p, ID: i})
	}
	cfg := ix.treeConfig()
	for d := range ix.trees {
		keys := make([]string, 0, len(groups[d]))
		for key := range groups[d] {
			keys = append(keys, key)
		}
		sort.Strings(keys) // deterministic build
		ix.trees[d] = xtree.New(cfg)
		if plain {
			var all []xtree.Entry
			for _, key := range keys {
				all = append(all, groups[d][key]...)
			}
			ix.trees[d].BulkLoad(all)
			continue
		}
		parts := make([][]xtree.Entry, 0, len(keys))
		for _, key := range keys {
			parts = append(parts, groups[d][key])
		}
		ix.trees[d].BulkLoadGrouped(parts)
	}
	if ix.opts.Baseline {
		entries := make([]xtree.Entry, 0, ix.live)
		for i, p := range ix.points {
			if p != nil {
				entries = append(entries, xtree.Entry{Point: p, ID: i})
			}
		}
		ix.baseline = xtree.New(cfg)
		ix.baseline.BulkLoad(entries)
	}
	return nil
}

// Insert adds one vector dynamically and returns its ID.
func (ix *Index) Insert(p []float64) (int, error) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if len(p) != ix.opts.Dim {
		return 0, fmt.Errorf("parsearch: inserting dimension %d, want %d", len(p), ix.opts.Dim)
	}
	id := len(ix.points)
	point := vec.Clone(p)
	ix.points = append(ix.points, point)
	ix.live++
	if ix.opts.QuantileSplits {
		ix.observer().Observe(point)
	}
	d, key, rect := ix.assignCell(id, point)
	ix.addToCell(key, d, rect)
	ix.trees[d].Insert(point, id)
	if ix.baseline != nil {
		ix.baseline.Insert(point, id)
	}
	return id, nil
}

// Delete removes the vector with the given ID. The ID is not reused;
// subsequent inserts continue from the highest ID ever assigned.
func (ix *Index) Delete(id int) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if id < 0 || id >= len(ix.points) || ix.points[id] == nil {
		return fmt.Errorf("parsearch: no vector with id %d", id)
	}
	p := ix.points[id]
	d, key, _ := ix.assignCell(id, p)
	if !ix.trees[d].Delete(p, id) {
		return fmt.Errorf("parsearch: internal inconsistency: id %d not found on disk %d", id, d)
	}
	if ix.baseline != nil {
		ix.baseline.Delete(p, id)
	}
	if idx, ok := ix.cellIndex[key]; ok && ix.cells[idx].count > 0 {
		ix.cells[idx].count--
	}
	ix.points[id] = nil
	ix.live--
	return nil
}

// ErrEmpty is returned by queries on an empty index.
var ErrEmpty = errors.New("parsearch: index is empty")

// NN returns the nearest neighbor of q.
func (ix *Index) NN(q []float64) (Neighbor, QueryStats, error) {
	res, stats, err := ix.KNN(q, 1)
	if err != nil {
		return Neighbor{}, stats, err
	}
	return res[0], stats, nil
}

// KNN returns the k nearest neighbors of q, searching all disks in
// parallel, together with the query's cost statistics.
func (ix *Index) KNN(q []float64, k int) ([]Neighbor, QueryStats, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()

	var stats QueryStats
	if len(q) != ix.opts.Dim {
		return nil, stats, fmt.Errorf("parsearch: query dimension %d, want %d", len(q), ix.opts.Dim)
	}
	if k < 1 {
		return nil, stats, fmt.Errorf("parsearch: k = %d", k)
	}
	if ix.live == 0 {
		return nil, stats, ErrEmpty
	}

	// Phase 1: every disk finds its local k nearest neighbors, one
	// goroutine per disk (the union of the local results contains the
	// global result).
	m := ix.metric()
	type local struct{ res []knn.Result }
	locals := make([]local, len(ix.trees))
	var wg sync.WaitGroup
	for d := range ix.trees {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			res, _ := knn.HSMetric(ix.trees[d], q, k, m)
			locals[d] = local{res: res}
		}(d)
	}
	wg.Wait()

	// Merge to the global k nearest.
	var merged []knn.Result
	for _, l := range locals {
		merged = append(merged, l.res...)
	}
	sortResults(merged)
	if len(merged) > k {
		merged = merged[:k]
	}
	rk := merged[len(merged)-1].Dist

	// Phase 2: cost accounting — every disk must read its pages
	// intersecting the NN-sphere of radius rk (§3.2: the partitions
	// intersecting the NN-sphere should be distributed over different
	// disks). The cost model selects what a "page" is: the disk's own
	// X-tree leaf pages (real system) or the quadrant buckets (the
	// paper's idealized storage).
	stats.PagesPerDisk = make([]int, len(ix.trees))
	refs, cells := ix.sphereRefs(q, rk, stats.PagesPerDisk)
	stats.Cells = cells
	batch, err := ix.array.ReadBatch(refs)
	if err != nil {
		return nil, stats, fmt.Errorf("parsearch: %w", err)
	}
	stats.MaxPages = batch.MaxPerDisk
	stats.TotalPages = batch.Total
	stats.ParallelTime = batch.ParallelTime.Seconds()
	stats.SequentialTime = batch.SequentialTime.Seconds()
	stats.Speedup = batch.Speedup()

	if ix.baseline != nil {
		pages, leaves := knn.SphereLeafPagesMetric(ix.baseline, q, rk, m)
		stats.SeqPages = pages
		stats.BaselineTime = ix.params.SimulateCost(leaves, pages).Seconds()
		if stats.ParallelTime > 0 {
			stats.BaselineSpeedup = stats.BaselineTime / stats.ParallelTime
		}
	}

	out := make([]Neighbor, len(merged))
	for i, r := range merged {
		out[i] = Neighbor{ID: r.Entry.ID, Point: r.Entry.Point, Dist: r.Dist}
	}
	return out, stats, nil
}

// sphereRefs collects the page reads a query with NN-sphere radius rk
// requires, per the configured cost model: the disks' own X-tree leaf
// pages (real system) or the quadrant bucket pages (the paper's
// idealized storage of §3). perDisk is incremented with the page counts;
// the returned refs feed the disk array.
func (ix *Index) sphereRefs(q vec.Point, rk float64, perDisk []int) (refs []disk.PageRef, cells int) {
	m := ix.metric()
	rank := m.ToRank(rk)
	switch ix.opts.CostModel {
	case BucketPages:
		leafCap := ix.treeConfig().LeafCapacity
		for i := range ix.cells {
			c := &ix.cells[i]
			if c.count == 0 || m.RankMinDist(c.rect, q) > rank {
				continue
			}
			pages := (c.count + leafCap - 1) / leafCap
			cells++
			perDisk[c.disk] += pages
			refs = append(refs, disk.PageRef{Disk: c.disk, Blocks: pages})
		}
	default: // TreePages
		for d, t := range ix.trees {
			for _, leaf := range t.Leaves() {
				if m.RankMinDist(leaf.Rect(), q) > rank {
					continue
				}
				cells++
				perDisk[d] += leaf.Super()
				refs = append(refs, disk.PageRef{Disk: d, Blocks: leaf.Super()})
			}
		}
	}
	return refs, cells
}

// sortResults orders by distance, breaking ties by ID.
func sortResults(rs []knn.Result) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0; j-- {
			if rs[j].Dist < rs[j-1].Dist ||
				(rs[j].Dist == rs[j-1].Dist && rs[j].Entry.ID < rs[j-1].Entry.ID) {
				rs[j], rs[j-1] = rs[j-1], rs[j]
			} else {
				break
			}
		}
	}
}

// VerifyDeclustering checks the active bucket-based strategy against the
// paper's near-optimality criterion (Definition 4) and returns up to max
// violations, formatted for display. Round-robin and recursive
// assignments are point-based and return an error, as do dimensions too
// large to enumerate.
func (ix *Index) VerifyDeclustering(max int) ([]string, error) {
	ba, ok := ix.assigner.(*core.BucketAssigner)
	if !ok {
		return nil, fmt.Errorf("parsearch: strategy %q is not bucket-based", ix.assigner.Name())
	}
	if ix.opts.Dim >= 25 {
		return nil, fmt.Errorf("parsearch: dimension %d too large for exhaustive verification", ix.opts.Dim)
	}
	var out []string
	for _, v := range core.VerifyNearOptimal(ba.Strategy(), ix.opts.Dim, max) {
		out = append(out, v.String())
	}
	return out, nil
}
