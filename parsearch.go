// Package parsearch is a parallel similarity-search engine for
// high-dimensional feature vectors, reproducing "Fast Parallel Similarity
// Search in Multimedia Databases" (Berchtold, Böhm, Braunmüller, Keim,
// Kriegel; ACM SIGMOD 1997).
//
// Feature vectors are declustered over a bank of simulated disks; each
// disk holds an X-tree over its share of the data, and k-nearest-neighbor
// queries run against all disks in parallel (one goroutine per disk). The
// declustering strategy decides how well the pages a query must read are
// spread over the disks, and hence the speed-up; the paper's near-optimal
// strategy guarantees that all directly and indirectly neighboring
// quadrants of the data space land on different disks.
//
// Basic use:
//
//	ix, err := parsearch.Open(parsearch.Options{Dim: 16, Disks: 8})
//	if err != nil { ... }
//	ix.Build(points)
//	neighbors, stats, err := ix.KNN(query, 10)
//
// The returned QueryStats carry the paper's cost metrics: pages read per
// disk, the bottleneck disk, and the speed-up over a sequential search.
//
// # Concurrency
//
// An Index is safe for concurrent use by any number of goroutines: the
// query methods (NN, KNN, RangeQuery, PartialMatch, BatchKNN, Browse,
// ServiceDemands, Save) may run concurrently with each other and with the
// mutating methods (Insert, Delete, FailDisk, HealDisk, Reorganize,
// Build). Build and Reorganize replace the index structure as an atomic
// cutover: a query observes either the old or the new structure, never a
// half-built one. See DESIGN.md ("Concurrency contract") for the exact
// guarantees and the lock hierarchy.
package parsearch

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"parsearch/internal/core"
	"parsearch/internal/disk"
	"parsearch/internal/fsx"
	"parsearch/internal/knn"
	"parsearch/internal/lsh"
	"parsearch/internal/metrics"
	"parsearch/internal/vec"
	"parsearch/internal/wal"
	"parsearch/internal/xtree"
)

// Kind selects a declustering strategy.
type Kind string

// The available declustering strategies.
const (
	// NearOptimal is the paper's graph-coloring declustering ("new"):
	// quadrant coloring with col, folded to the disk count.
	NearOptimal Kind = "near-optimal"
	// Hilbert declusters by the quadrant's Hilbert value mod disks
	// [FB 93] — the strongest classic baseline.
	Hilbert Kind = "hilbert"
	// DiskModulo declusters by the coordinate sum mod disks [DS 82].
	DiskModulo Kind = "disk-modulo"
	// FX declusters by the coordinate XOR mod disks [KP 88].
	FX Kind = "fx"
	// RoundRobin assigns points to disks by insertion order.
	RoundRobin Kind = "round-robin"
	// DirectOnly is an ablation: a d+1-coloring separating only direct
	// neighbors.
	DirectOnly Kind = "direct-only"
)

// DiskParams is the service-time model of one simulated disk.
type DiskParams struct {
	// Seek is charged once per page read (positioning).
	Seek time.Duration
	// Transfer is charged per 4-KByte block of the page.
	Transfer time.Duration
	// Throttle, when non-zero, makes queries really sleep the scaled
	// service time on each disk goroutine (tests and demos only).
	Throttle float64
}

// DefaultDiskParams models the paper's mid-1990s SCSI disks: 8 ms
// positioning and 1 ms to transfer a 4-KByte block.
func DefaultDiskParams() DiskParams {
	p := disk.DefaultParams()
	return DiskParams{Seek: p.Seek, Transfer: p.Transfer, Throttle: p.Throttle}
}

func (p DiskParams) validate() error {
	if p.Seek < 0 || p.Transfer < 0 || p.Throttle < 0 {
		return fmt.Errorf("parsearch: negative disk parameters %+v", p)
	}
	return nil
}

// Metric selects the distance function for similarity queries.
type Metric string

// The available metrics.
const (
	// Euclidean (L2) distance, the paper's similarity measure. Default.
	Euclidean Metric = "l2"
	// Manhattan (L1) distance.
	Manhattan Metric = "l1"
	// Maximum (L∞) distance.
	Maximum Metric = "linf"
)

// CostModel selects how query page accesses are accounted.
type CostModel string

// The available cost models.
const (
	// TreePages counts the leaf pages of each disk's X-tree whose MBR
	// intersects the NN-sphere — the behaviour of the real system,
	// where every disk packs its share of the data into its own index
	// pages. Default.
	TreePages CostModel = "tree"
	// BucketPages counts the pages of the quadrant buckets intersecting
	// the NN-sphere — the paper's idealized storage model of §3, where
	// the buckets themselves are the storage units. Useful at small
	// scale, where per-disk trees cannot resolve quadrants yet.
	BucketPages CostModel = "buckets"
)

// Options configure an Index. Zero values select the documented defaults.
// Options are immutable after Open.
type Options struct {
	// Dim is the dimensionality of the feature vectors. Required.
	Dim int
	// Disks is the number of disks to decluster onto. Required.
	Disks int
	// Kind selects the declustering strategy; default NearOptimal.
	Kind Kind
	// PageSize is the disk block size in bytes; default 4096 (the
	// paper's block size). It determines the X-tree node capacities.
	PageSize int
	// QuantileSplits, when true, places the quadrant split of every
	// dimension at the data's median instead of 0.5 (the paper's first
	// extension for skewed data). Takes effect at Build time.
	QuantileSplits bool
	// Recursive, when true, recursively declusters overloaded disks
	// (the paper's second extension for highly clustered data). Takes
	// effect at Build time. Only valid with Kind NearOptimal.
	Recursive bool
	// DiskParams is the service-time model of the simulated disks;
	// nil selects DefaultDiskParams.
	DiskParams *DiskParams
	// Baseline, when true, additionally maintains a sequential X-tree
	// over all data so QueryStats can report the true speed-up.
	Baseline bool
	// CostModel selects the page-access accounting; default TreePages.
	CostModel CostModel
	// Metric selects the similarity measure; default Euclidean.
	Metric Metric
	// BatchWorkers caps the number of concurrent query workers of the
	// BatchKNN scheduler; 0 selects runtime.GOMAXPROCS(0). It bounds
	// CPU fan-out under heavy batch load, not the per-query disk
	// parallelism.
	BatchWorkers int
	// DisableSharedBound turns off cooperative cross-disk pruning: the
	// parallel k-NN fan-out then runs every disk's search to completion
	// with only its local k-best bound. Results are identical either
	// way — the shared bound is exactness-preserving — so this knob
	// exists to benchmark the savings (QueryStats.PagesSavedByBound,
	// the knn16-indep workload of the bench harness). See DESIGN.md
	// "Cooperative pruning".
	DisableSharedBound bool
	// Replication is the number of extra copies every storage cell
	// keeps (0 or 1). With Replication = 1 each disk's cells are stored
	// twice: on their primary disk (the declustering's choice) and on
	// the chained replica disk (primary+1 mod Disks), so queries keep
	// returning exact results through any single disk failure — at a
	// degraded speed-up, since the replica disk serves double load.
	// Requires Disks >= 2. See README "Failure semantics".
	Replication int
	// Faults configures fault injection on the simulated disks
	// (transient read errors with bounded retry, latency spikes); nil
	// disables it. It can also be changed at runtime with SetFaults.
	Faults *FaultModel
	// Tracer, when non-nil, receives structured span events for every
	// query (plan, per-disk fan-out, merge, I/O, retry/reroute
	// decisions). It must be safe for concurrent use; a per-request
	// tracer can instead be carried in a context via WithTracer and the
	// *Context query methods. See README "Observability".
	Tracer Tracer
	// Packed stores vectors in contiguous per-page float32 slabs and
	// serves queries with batched distance kernels (see DESIGN.md
	// "Packed storage"). Coordinates are rounded to float32 at
	// Build/Insert; on data already representable in float32, results
	// are byte-identical to the unpacked engine. This is the layout
	// that makes million-point indexes practical (the `scale` bench
	// profile).
	Packed bool
	// Quantize additionally keeps an 8-bit scalar quantization (SQ8)
	// of every leaf page and uses its distance lower bounds to skip
	// exact distance computations the k-NN result provably cannot need
	// (counted in QueryStats.DistCompsSaved). Results are identical to
	// the unquantized packed path. Requires Packed.
	Quantize bool
	// Epsilon is the default ε of the approximate search tier: k-NN
	// traversals stop once the next node's MINDIST exceeds
	// kth/(1+ε), so every returned distance is within a factor (1+ε)
	// of exact (see DESIGN.md "Approximate search"). 0 (the default)
	// keeps every query exact — byte-identical to an index without the
	// knob. Per-query overrides: KNNApprox / BatchKNNApprox and the
	// wire "epsilon" field. Must be finite, ≥ 0, and ≤ 1e6.
	Epsilon float64
	// RecallTarget is the default probe budget of the LSH pre-filter,
	// in (0, 1]: each shard admits ceil(RecallTarget·L) of its L leaf
	// pages, Hamming-ranked by the query's LSH signature. 0 (the
	// default) and 1 disable the cap. Only effective with LSH.
	RecallTarget float64
	// LSH builds a multi-probe LSH pre-filter over every shard's leaf
	// pages at Build/Reorganize time (random-hyperplane signatures;
	// see internal/lsh). The filter orders and caps leaf visits under
	// RecallTarget; with RecallTarget 0/1 it is built but never
	// filters, so results stay exact.
	LSH bool

	// Durable arms the durability subsystem: every Insert and Delete
	// is appended to a write-ahead log in Dir before it returns, and
	// Open recovers the acknowledged state from the newest snapshot
	// plus the log chain after a crash (see durable.go). Checkpoint
	// rotates the log into a fresh snapshot; Close flushes and stops
	// mutations.
	Durable bool
	// Dir is the durable directory (required with Durable, rejected
	// without). It is created when missing.
	Dir string
	// WALSync selects the log fsync policy: WALSyncAlways (the
	// default) makes every acknowledged mutation crash-proof;
	// WALSyncOS trades the unsynced tail for mutation throughput.
	WALSync WALSyncPolicy
	// Salvage turns recovery's refusal of corrupt durable state
	// (ErrCorrupt) into best-effort recovery of the longest valid
	// prefix. Only meaningful with Durable.
	Salvage bool
}

// vecMetric maps the option value to the internal metric type.
func (m Metric) vecMetric() (vec.Metric, error) {
	switch m {
	case Euclidean:
		return vec.L2, nil
	case Manhattan:
		return vec.L1, nil
	case Maximum:
		return vec.LInf, nil
	default:
		return 0, fmt.Errorf("parsearch: unknown metric %q", m)
	}
}

// metric returns the validated internal metric of the index.
func (ix *Index) metric() vec.Metric {
	m, err := ix.opts.Metric.vecMetric()
	if err != nil {
		panic(err) // validated in Open
	}
	return m
}

// Neighbor is one query result.
type Neighbor struct {
	// ID is the identifier assigned at Build/Insert time.
	ID int
	// Point is the stored feature vector.
	Point []float64
	// Dist is the distance to the query point under the index's metric
	// (Euclidean by default).
	Dist float64
}

// QueryStats reports the cost of one query in the paper's metrics. Data
// is stored in bucket cells (the quadrants of the data space, the paper's
// storage units); a query must read the pages of every cell whose region
// intersects the NN-sphere.
type QueryStats struct {
	// PagesPerDisk is the number of data pages each disk had to read.
	PagesPerDisk []int
	// MaxPages is the bottleneck disk's page count — the paper's
	// parallel search cost.
	MaxPages int
	// TotalPages is the sum over all disks, the cost of a sequential
	// search over the same storage.
	TotalPages int
	// Cells is the number of bucket cells the NN-sphere intersected.
	Cells int
	// SeqPages is the page count of a sequential X-tree over all data
	// (the paper's sequential baseline); 0 unless Options.Baseline was
	// set.
	SeqPages int
	// BaselineTime is the simulated search time of the sequential
	// X-tree, in seconds; 0 without Options.Baseline.
	BaselineTime float64
	// BaselineSpeedup is BaselineTime / ParallelTime — the speed-up the
	// paper reports (parallel X-tree vs. the original sequential
	// X-tree); 0 without Options.Baseline.
	BaselineSpeedup float64
	// ParallelTime is the simulated search time of the bottleneck
	// disk, in seconds.
	ParallelTime float64
	// SequentialTime is the simulated time had one disk performed all
	// reads, in seconds.
	SequentialTime float64
	// Speedup is SequentialTime / ParallelTime, the paper's headline
	// metric.
	Speedup float64
	// Degraded reports that unreachable data (no live copy on any disk)
	// could have affected this query's answer: the results are
	// best-effort — exact over the reachable data, but points on the
	// unreachable disks may be missing. When Degraded is false the
	// results are provably exact, even with disks failed: either every
	// shard had a live copy, or the unreachable pages lie outside the
	// query's NN-sphere (or box). Always false with
	// Options.Replication = 1 and at most one failed disk.
	Degraded bool
	// Unreachable is the number of pages the query needed whose primary
	// and replica disks were both failed (0 on healthy paths).
	Unreachable int
	// Rerouted is the number of pages served by a replica disk because
	// the primary was failed.
	Rerouted int
	// Retries is the number of read retries the fault model's transient
	// errors caused (0 without fault injection).
	Retries int
	// SearchPages is the number of index pages the per-disk searches
	// actually traversed while answering the query (the Hjaltason–Samet
	// fan-out of a k-NN query, the tree walk of a range query) — the
	// engine's own I/O, as opposed to the cost-model accounting of
	// PagesPerDisk/TotalPages, which charges the pages the paper's
	// storage model must read for the final NN-sphere or box.
	SearchPages int
	// PagesSavedByBound is the number of search pages the shared bound
	// of the cooperative k-NN fan-out pruned: pages an independent
	// per-disk search would have traversed but the cooperative search
	// skipped. SearchPages + PagesSavedByBound always equals the
	// independent search's SearchPages exactly. 0 with
	// Options.DisableSharedBound, and for range queries (a box has no
	// distance bound to share).
	PagesSavedByBound int
	// BoundTightenings counts how often the cooperative fan-out lowered
	// the shared bound (0 when disabled).
	BoundTightenings int
	// DistCompsSaved is the number of exact distance computations the
	// SQ8 pre-filter of Options.Quantize skipped: leaf points whose
	// quantized lower bound already exceeded the running k-th-best
	// distance. 0 without Quantize.
	DistCompsSaved int
	// PagesSavedByRemoteBound is the subset of PagesSavedByBound pruned
	// while the shared bound still held an externally seeded value
	// (Approx.Bound — the kth-distance bound a distributed coordinator
	// ships with follow-up shard requests): pruning attributable to the
	// remote bound rather than to this query's own local tightenings.
	// Always 0 without a seeded bound.
	PagesSavedByRemoteBound int
	// PagesSkippedApprox is the number of search pages the approximate
	// tier skipped: the still-reachable priority queue at ε-termination
	// (a lower bound on the avoided work — pages under unexpanded
	// directory nodes are not counted) plus every leaf page the LSH
	// pre-filter rejected. Always 0 on exact queries.
	PagesSkippedApprox int
	// ProbePages is the number of leaf pages the LSH pre-filter
	// admitted once the candidate set was full. 0 without an effective
	// recall target.
	ProbePages int
	// EffectiveEpsilon is the ε that governed this query's termination
	// (the per-query override, or Options.Epsilon). 0 on exact queries.
	EffectiveEpsilon float64
}

// Approx carries the per-query knobs of the approximate search tier
// (see DESIGN.md "Approximate search"). The zero value requests an
// exact search; KNNApprox with a zero Approx is byte-identical to KNN
// on an index with no approximate defaults.
type Approx struct {
	// Epsilon relaxes the k-NN termination: every returned distance is
	// within a factor (1+Epsilon) of the exact answer. Must be finite,
	// ≥ 0, and ≤ 1e6; 0 keeps the traversal exact.
	Epsilon float64
	// RecallTarget caps the LSH probe fraction, in (0, 1]; 0 and 1
	// disable the cap. Ignored unless the index was opened with
	// Options.LSH (without the filter there is nothing to cap, and the
	// search stays exact).
	RecallTarget float64
	// Bound seeds the cooperative k-NN bound with an externally known
	// upper bound on the k-th-best distance, in metric space — the
	// cross-network half of the shared-bound protocol: a coordinator
	// ships the k-th distance one shard group has already achieved so
	// the other groups can prune against it. Seeding is
	// exactness-preserving (pruned pages are still traversed in
	// accounting-only phantom mode, so results never depend on the
	// bound's value); the savings surface as
	// QueryStats.PagesSavedByRemoteBound. 0 (the default) disables
	// seeding; must be finite and ≥ 0. Ignored with
	// Options.DisableSharedBound (there is no bound to seed).
	Bound float64
}

// maxEpsilon bounds Options.Epsilon and per-query epsilons: beyond it
// the knob is indistinguishable from "first k candidates win" and is
// almost certainly a caller bug (or an attack on the wire).
const maxEpsilon = 1e6

func (a Approx) validate() error {
	if math.IsNaN(a.Epsilon) || a.Epsilon < 0 || a.Epsilon > maxEpsilon {
		return fmt.Errorf("parsearch: epsilon %v outside [0, %g]", a.Epsilon, maxEpsilon)
	}
	if math.IsNaN(a.RecallTarget) || a.RecallTarget < 0 || a.RecallTarget > 1 {
		return fmt.Errorf("parsearch: recall target %v outside [0, 1]", a.RecallTarget)
	}
	if math.IsNaN(a.Bound) || math.IsInf(a.Bound, 0) || a.Bound < 0 {
		return fmt.Errorf("parsearch: bound %v, want a finite distance >= 0", a.Bound)
	}
	return nil
}

// ShardSpec restricts a query to a subset of the declustered disks: the
// disks d with d mod Of in Groups. The zero value selects every disk —
// the ordinary single-process query. The spec is how a multi-node
// deployment partitions one declustered index over Of process shards
// (disk d belongs to shard group d mod Of): every shard daemon serves
// the full snapshot, and the coordinator restricts each daemon to its
// groups per query, so global IDs — and with them the merge — are
// identical to the single-process search. A dead shard's groups can be
// handed to any other daemon the same way (see the coord package).
type ShardSpec struct {
	// Of is the number of shard groups the disk set is partitioned
	// into; 0 disables the restriction.
	Of int
	// Groups lists the group indices (in [0, Of)) this query serves.
	Groups []int
}

// Enabled reports whether the spec restricts the query at all.
func (s ShardSpec) Enabled() bool { return s.Of > 0 }

func (s ShardSpec) validate(disks int) error {
	if s.Of == 0 {
		if len(s.Groups) != 0 {
			return fmt.Errorf("parsearch: shard groups %v without a group count", s.Groups)
		}
		return nil
	}
	if s.Of < 0 || s.Of > disks {
		return fmt.Errorf("parsearch: %d shard groups over %d disks", s.Of, disks)
	}
	if len(s.Groups) == 0 {
		return fmt.Errorf("parsearch: shard spec of %d selects no groups", s.Of)
	}
	seen := make(map[int]bool, len(s.Groups))
	for _, g := range s.Groups {
		if g < 0 || g >= s.Of {
			return fmt.Errorf("parsearch: shard group %d outside [0, %d)", g, s.Of)
		}
		if seen[g] {
			return fmt.Errorf("parsearch: duplicate shard group %d", g)
		}
		seen[g] = true
	}
	return nil
}

// mask returns the per-disk selection of the (validated) spec, or nil
// when the spec is disabled.
func (s ShardSpec) mask(disks int) []bool {
	if !s.Enabled() {
		return nil
	}
	sel := make([]bool, disks)
	for d := 0; d < disks; d++ {
		for _, g := range s.Groups {
			if d%s.Of == g {
				sel[d] = true
				break
			}
		}
	}
	return sel
}

// ApproxDefaults returns the index-level approximate-search defaults
// (Options.Epsilon / Options.RecallTarget): what KNN and BatchKNN run
// with, and what the server fills into requests that omit the knobs.
func (ix *Index) ApproxDefaults() Approx {
	return Approx{Epsilon: ix.opts.Epsilon, RecallTarget: ix.opts.RecallTarget}
}

// cellInfo is one storage cell: a quadrant (or recursive sub-quadrant)
// region, the disk it is assigned to, and how many points it holds.
type cellInfo struct {
	rect  vec.Rect
	disk  int
	count int
}

// shard is one disk's partition of the index: the disk's X-tree plus the
// read-write mutex that serializes structural tree mutation against
// concurrent query traversals. Queries on different disks never contend.
// probe is the shard's multi-probe LSH pre-filter (nil without
// Options.LSH): immutable, rebuilt with the tree at Build/Reorganize;
// leaves created by later mutations are absent from it and always
// admitted, so a stale filter only grows more permissive.
type shard struct {
	mu    sync.RWMutex
	tree  *xtree.Tree
	probe *lsh.Filter
}

// lshSeed derives every shard's LSH hyperplane family. One fixed seed
// keeps the ranking deterministic across rebuilds, and makes a replica
// tree (same pages as its primary) rank identically to the primary, so
// rerouted queries probe the same data.
const lshSeed int64 = 0x1547

// state is the derived index structure — everything Build computes from
// the stored vectors: the bucketing, the declustering assignment, the
// per-disk shards, the optional sequential baseline, and the storage-cell
// accounting. Build and Reorganize construct a replacement state off the
// lock and cut it in under the index write lock, so queries never observe
// a half-built index. bucketer and assigner are immutable within a state;
// cells/cellIndex are mutated by Insert/Delete under Index.meta.
type state struct {
	bucketer core.Bucketer
	assigner core.Assigner
	shards   []*shard
	// replicas are the replica trees, indexed by the disk *hosting*
	// them: replicas[r] holds a copy of the data whose primary disk is
	// r-1 mod n (chained declustering). nil unless Options.Replication.
	replicas  []*shard
	baseline  *shard // nil unless Options.Baseline
	cells     []cellInfo
	cellIndex map[string]int
}

// Index is a parallel similarity-search index, safe for concurrent use
// (see the package comment).
//
// Lock hierarchy (always acquired in this order, never the reverse):
//
//	ckptMu (serializes Checkpoint / durable Build / Close)
//	→ rotMu (R by durable mutations, W by durable Build and Close)
//	→ mu (R by queries and point mutations, W by Build/Reorganize cutover)
//	→ meta (point table, live count, cell loads, quantile estimators)
//	→ shard.mu per disk (R by tree traversals, W by tree mutation)
type Index struct {
	opts   Options
	params disk.Params
	array  *disk.Array

	// reg is the engine-wide metrics registry (see Metrics); querySeq
	// numbers traced queries. Both are updated lock-free.
	reg      *metrics.Registry
	querySeq atomic.Uint64

	// mu is the cutover lock: queries and single-point mutations hold
	// it in read mode; Build and Reorganize take it in write mode only
	// for the moment they swap in a freshly built state, so a rebuild
	// is atomic without blocking readers while it is computed.
	mu sync.RWMutex
	st *state

	// meta guards the point table and everything maintained per point:
	// the ID space, the live count, the storage-cell loads of the
	// current state, the adaptive quantile estimators, and the
	// mutation version counter.
	meta     sync.Mutex
	points   []vec.Point // index = ID; nil entries are deleted (tombstones)
	live     int         // number of non-tombstone points
	adaptive *core.AdaptiveSplitter
	version  uint64 // bumped by every mutation; Reorganize's conflict check

	// Durability state (durable.go); fs and recov are set once at
	// Open, wal/gen/closed are guarded by meta. ckptMu serializes
	// generation rotations; rotMu excludes mutations from the durable
	// Build cutover (mutations hold it in read mode for their whole
	// log-append + apply + sync span).
	fs     fsx.FS
	ckptMu sync.Mutex
	rotMu  sync.RWMutex
	wal    *wal.Writer
	gen    uint64
	closed bool
	recov  RecoveryInfo
}

// Open validates the options and returns an index: empty, or — with
// Options.Durable — recovered from the durable directory's snapshot
// and write-ahead log (see durable.go).
func Open(opts Options) (*Index, error) {
	if !opts.Durable {
		if opts.Dir != "" {
			return nil, fmt.Errorf("parsearch: Dir requires Durable")
		}
		if opts.WALSync != "" {
			return nil, fmt.Errorf("parsearch: WALSync requires Durable")
		}
		if opts.Salvage {
			return nil, fmt.Errorf("parsearch: Salvage requires Durable")
		}
		return open(opts)
	}
	if opts.Dir == "" {
		return nil, fmt.Errorf("parsearch: Durable requires Dir")
	}
	fs, err := fsx.NewOS(opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("parsearch: %w", err)
	}
	return openDurable(opts, fs)
}

// open builds the in-memory index: the non-durable Open, and the
// substrate openDurable recovers onto.
func open(opts Options) (*Index, error) {
	if opts.Dim < 1 || opts.Dim > core.MaxDim {
		return nil, fmt.Errorf("parsearch: dimension %d outside [1, %d]", opts.Dim, core.MaxDim)
	}
	if opts.Disks < 1 {
		return nil, fmt.Errorf("parsearch: %d disks", opts.Disks)
	}
	if opts.Kind == "" {
		opts.Kind = NearOptimal
	}
	if opts.PageSize == 0 {
		opts.PageSize = xtree.PageSize
	}
	if opts.PageSize < 256 {
		return nil, fmt.Errorf("parsearch: page size %d too small", opts.PageSize)
	}
	if opts.Recursive && opts.Kind != NearOptimal {
		return nil, fmt.Errorf("parsearch: recursive declustering requires the near-optimal strategy, not %q", opts.Kind)
	}
	if opts.CostModel == "" {
		opts.CostModel = TreePages
	}
	if opts.CostModel != TreePages && opts.CostModel != BucketPages {
		return nil, fmt.Errorf("parsearch: unknown cost model %q", opts.CostModel)
	}
	if opts.Metric == "" {
		opts.Metric = Euclidean
	}
	if _, err := opts.Metric.vecMetric(); err != nil {
		return nil, err
	}
	if opts.BatchWorkers < 0 {
		return nil, fmt.Errorf("parsearch: %d batch workers", opts.BatchWorkers)
	}
	if opts.Replication < 0 || opts.Replication > 1 {
		return nil, fmt.Errorf("parsearch: replication %d, want 0 or 1", opts.Replication)
	}
	if opts.Replication == 1 && opts.Disks < 2 {
		return nil, fmt.Errorf("parsearch: replication needs at least 2 disks, have %d", opts.Disks)
	}
	if opts.Quantize && !opts.Packed {
		return nil, fmt.Errorf("parsearch: Quantize requires Packed")
	}
	if err := (Approx{Epsilon: opts.Epsilon, RecallTarget: opts.RecallTarget}).validate(); err != nil {
		return nil, err
	}
	params := disk.DefaultParams()
	if opts.DiskParams != nil {
		if err := opts.DiskParams.validate(); err != nil {
			return nil, err
		}
		params = disk.Params{
			Seek:     opts.DiskParams.Seek,
			Transfer: opts.DiskParams.Transfer,
			Throttle: opts.DiskParams.Throttle,
		}
	}

	ix := &Index{opts: opts, params: params}
	ix.array = disk.NewArray(opts.Disks, params)
	ix.reg = metrics.NewRegistry(opts.Disks)
	if opts.Faults != nil {
		if err := ix.array.SetFaults(opts.Faults.diskFaults()); err != nil {
			return nil, fmt.Errorf("parsearch: %w", err)
		}
	}
	st, err := ix.emptyState()
	if err != nil {
		return nil, err
	}
	ix.st = st
	return ix, nil
}

// emptyState returns the derived structure of an index with no data: a
// midpoint bucketing, the configured strategy, and empty trees.
func (ix *Index) emptyState() (*state, error) {
	st := &state{
		bucketer:  core.NewMidpointSplitter(ix.opts.Dim),
		cellIndex: make(map[string]int),
	}
	assigner, err := ix.makeAssigner(st.bucketer)
	if err != nil {
		return nil, err
	}
	st.assigner = assigner
	cfg := ix.treeConfig()
	st.shards = make([]*shard, ix.opts.Disks)
	for i := range st.shards {
		st.shards[i] = &shard{tree: xtree.New(cfg)}
	}
	if ix.opts.Replication > 0 {
		st.replicas = make([]*shard, ix.opts.Disks)
		for i := range st.replicas {
			st.replicas[i] = &shard{tree: xtree.New(cfg)}
		}
	}
	if ix.opts.Baseline {
		st.baseline = &shard{tree: xtree.New(cfg)}
	}
	return st, nil
}

// splitValues returns the current per-dimension split values of the
// state's bucketer (both splitter implementations expose them).
func splitValues(st *state) []float64 {
	return st.bucketer.(interface{ Splits() []float64 }).Splits()
}

// assignCell places point i under the given state and returns its disk
// together with the storage cell it lands in. The state's bucketer and
// assigner are immutable, so no lock is needed beyond pinning st.
func (ix *Index) assignCell(st *state, i int, p vec.Point) (diskNo int, key string, rect vec.Rect) {
	if rec, ok := st.assigner.(*core.Recursive); ok {
		c := rec.AssignCell(p)
		return c.Disk, c.Key(), c.Rect
	}
	diskNo = st.assigner.Assign(i, p)
	b := st.bucketer.Bucket(p)
	// Round robin scatters a quadrant over every disk; the disk is part
	// of the cell identity so each disk keeps its own pages per quadrant.
	key = fmt.Sprintf("%d#%d", b, diskNo)
	return diskNo, key, core.QuadrantRect(b, splitValues(st))
}

// addToCell records one point in its storage cell. Caller holds meta (or
// exclusively owns st during a build).
func addToCell(st *state, key string, diskNo int, rect vec.Rect) {
	if idx, ok := st.cellIndex[key]; ok {
		st.cells[idx].count++
		return
	}
	st.cellIndex[key] = len(st.cells)
	st.cells = append(st.cells, cellInfo{rect: rect, disk: diskNo, count: 1})
}

func (ix *Index) treeConfig() xtree.Config {
	cfg := xtree.DefaultConfig(ix.opts.Dim)
	cfg.LeafCapacity = xtree.LeafCapacityForPage(ix.opts.Dim, ix.opts.PageSize)
	cfg.DirCapacity = xtree.DirCapacityForPage(ix.opts.Dim, ix.opts.PageSize)
	cfg.Packed = ix.opts.Packed
	cfg.Quantize = ix.opts.Quantize
	return cfg
}

// canonPacked applies packed mode's rounding-at-ingest contract to a
// freshly cloned point: every coordinate is rounded to the nearest
// float32, so the tree's float64 values and the slabs' float32 copies
// are the same numbers and the batched kernels match the scalar ones
// bit for bit. A no-op on unpacked indexes.
func (ix *Index) canonPacked(p vec.Point) {
	if !ix.opts.Packed {
		return
	}
	for j := range p {
		p[j] = float64(float32(p[j]))
	}
}

// makeAssigner builds the Assigner for the configured strategy over the
// given bucketer.
func (ix *Index) makeAssigner(b core.Bucketer) (core.Assigner, error) {
	d, n := ix.opts.Dim, ix.opts.Disks
	switch ix.opts.Kind {
	case NearOptimal:
		return core.NewBucketAssigner(b, core.NewNearOptimal(d, n)), nil
	case Hilbert:
		s, err := core.NewHilbert(d, 1, n)
		if err != nil {
			return nil, fmt.Errorf("parsearch: %w", err)
		}
		return core.NewBucketAssigner(b, s), nil
	case DiskModulo:
		return core.NewBucketAssigner(b, core.NewDiskModulo(n)), nil
	case FX:
		return core.NewBucketAssigner(b, core.NewFX(n)), nil
	case RoundRobin:
		return core.NewRoundRobin(n), nil
	case DirectOnly:
		return core.NewBucketAssigner(b, core.NewDirectOnly(d, n)), nil
	default:
		return nil, fmt.Errorf("parsearch: unknown strategy %q", ix.opts.Kind)
	}
}

// Strategy returns the name of the active declustering strategy.
func (ix *Index) Strategy() string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.st.assigner.Name()
}

// Disks returns the number of disks.
func (ix *Index) Disks() int { return ix.opts.Disks }

// Dim returns the dimensionality of the indexed vectors.
func (ix *Index) Dim() int { return ix.opts.Dim }

// Replication returns the configured number of extra copies per
// storage cell (0 or 1; see Options.Replication).
func (ix *Index) Replication() int { return ix.opts.Replication }

// Len returns the number of indexed (non-deleted) vectors.
func (ix *Index) Len() int {
	ix.meta.Lock()
	defer ix.meta.Unlock()
	return ix.live
}

// liveCount returns the live count under meta.
func (ix *Index) liveCount() int {
	ix.meta.Lock()
	defer ix.meta.Unlock()
	return ix.live
}

// FailDisk marks a simulated disk as failed. Queries starting after
// the call route the disk's page reads to the chained replica (with
// Options.Replication = 1) or return best-effort results flagged
// Degraded; only a failure flipped mid-query surfaces as an error
// (wrapping disk.ErrDiskFailed) until HealDisk is called. The failure
// flag is atomic; FailDisk is safe to call during running queries.
func (ix *Index) FailDisk(d int) error {
	if err := ix.array.Fail(d); err != nil {
		return fmt.Errorf("parsearch: %w", err)
	}
	return nil
}

// HealDisk clears a disk failure injected with FailDisk.
func (ix *Index) HealDisk(d int) error {
	if err := ix.array.Heal(d); err != nil {
		return fmt.Errorf("parsearch: %w", err)
	}
	return nil
}

// DiskFailed reports whether disk d is currently failed.
func (ix *Index) DiskFailed(d int) bool {
	if d < 0 || d >= ix.opts.Disks {
		return false
	}
	return ix.array.Failed(d)
}

// DiskLoads returns the number of vectors stored on each disk.
func (ix *Index) DiskLoads() []int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	loads := make([]int, len(ix.st.shards))
	for i, sh := range ix.st.shards {
		sh.mu.RLock()
		loads[i] = sh.tree.Len()
		sh.mu.RUnlock()
	}
	return loads
}

// CellLoads returns, per disk, the sum of the point counts of the disk's
// storage cells. By construction it equals DiskLoads after any
// interleaving of operations; CheckIntegrity verifies exactly that.
func (ix *Index) CellLoads() []int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	st := ix.st
	ix.meta.Lock()
	defer ix.meta.Unlock()
	loads := make([]int, len(st.shards))
	for _, c := range st.cells {
		loads[c.disk] += c.count
	}
	return loads
}

// CheckIntegrity verifies the cross-structure invariants of the index and
// returns the first violation found, or nil:
//
//   - the live count equals the number of non-tombstone points,
//   - every disk's X-tree passes its structural invariant check,
//   - every disk's tree size equals the sum of its cell loads,
//   - the tree sizes sum to the live count,
//   - with Options.Replication, every replica tree passes the same
//     invariant check and holds exactly its primary disk's vectors,
//   - the baseline tree (if any) holds exactly the live points.
//
// It takes the same locks as a writer, so the check is atomic with
// respect to concurrent mutations.
func (ix *Index) CheckIntegrity() error {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	st := ix.st
	ix.meta.Lock()
	defer ix.meta.Unlock()

	stored := 0
	for _, p := range ix.points {
		if p != nil {
			stored++
		}
	}
	if stored != ix.live {
		return fmt.Errorf("parsearch: %d stored points but live count %d", stored, ix.live)
	}
	cellLoads := make([]int, len(st.shards))
	for _, c := range st.cells {
		if c.count < 0 {
			return fmt.Errorf("parsearch: negative cell load %d on disk %d", c.count, c.disk)
		}
		cellLoads[c.disk] += c.count
	}
	total := 0
	treeLens := make([]int, len(st.shards))
	for d, sh := range st.shards {
		sh.mu.RLock()
		n := sh.tree.Len()
		err := sh.tree.CheckInvariants()
		sh.mu.RUnlock()
		if err != nil {
			return fmt.Errorf("parsearch: disk %d: %w", d, err)
		}
		if cellLoads[d] != n {
			return fmt.Errorf("parsearch: disk %d holds %d vectors but cell loads sum to %d", d, n, cellLoads[d])
		}
		treeLens[d] = n
		total += n
	}
	if total != ix.live {
		return fmt.Errorf("parsearch: trees hold %d vectors, live count %d", total, ix.live)
	}
	if (st.replicas != nil) != (ix.opts.Replication > 0) {
		return fmt.Errorf("parsearch: replica trees present = %v with replication %d",
			st.replicas != nil, ix.opts.Replication)
	}
	if st.replicas != nil {
		n := len(st.shards)
		for h, rsh := range st.replicas {
			src := (h - 1 + n) % n
			rsh.mu.RLock()
			rn := rsh.tree.Len()
			err := rsh.tree.CheckInvariants()
			rsh.mu.RUnlock()
			if err != nil {
				return fmt.Errorf("parsearch: replica of disk %d on disk %d: %w", src, h, err)
			}
			if rn != treeLens[src] {
				return fmt.Errorf("parsearch: replica of disk %d on disk %d holds %d vectors, primary holds %d",
					src, h, rn, treeLens[src])
			}
		}
	}
	if st.baseline != nil {
		st.baseline.mu.RLock()
		n := st.baseline.tree.Len()
		err := st.baseline.tree.CheckInvariants()
		st.baseline.mu.RUnlock()
		if err != nil {
			return fmt.Errorf("parsearch: baseline: %w", err)
		}
		if n != ix.live {
			return fmt.Errorf("parsearch: baseline holds %d vectors, live count %d", n, ix.live)
		}
	}
	return nil
}

// buildState constructs a fresh derived state (and the cloned point
// table) from the given vectors. It reads only immutable index fields, so
// it runs without any lock — Build and Reorganize call it off the lock
// and cut the result in atomically.
func (ix *Index) buildState(points [][]float64) (st *state, pts []vec.Point, live int, err error) {
	for i, p := range points {
		if p != nil && len(p) != ix.opts.Dim {
			return nil, nil, 0, fmt.Errorf("parsearch: point %d has dimension %d, want %d", i, len(p), ix.opts.Dim)
		}
	}
	pts = make([]vec.Point, len(points))
	var livePoints []vec.Point
	for i, p := range points {
		if p == nil {
			continue
		}
		pts[i] = vec.Clone(p)
		ix.canonPacked(pts[i])
		livePoints = append(livePoints, pts[i])
		live++
	}

	st = &state{cellIndex: make(map[string]int)}
	// Choose the bucketing per the configured extensions.
	if ix.opts.QuantileSplits && live > 0 {
		st.bucketer = core.NewQuantileSplitter(livePoints, 0.5)
	} else {
		st.bucketer = core.NewMidpointSplitter(ix.opts.Dim)
	}
	if ix.opts.Recursive {
		st.assigner = core.BuildRecursive(livePoints, st.bucketer, ix.opts.Disks,
			core.DefaultRecursiveConfig(ix.opts.Disks))
	} else {
		assigner, err := ix.makeAssigner(st.bucketer)
		if err != nil {
			return nil, nil, 0, err
		}
		st.assigner = assigner
	}

	// Partition into per-disk trees and bucket cells. Bucket-based
	// strategies store data per bucket, so no page spans two buckets
	// (the paper's storage layout); round robin has no spatial
	// grouping — each disk indexes its arrival-order sample as a whole.
	// With a single disk there is nothing to decluster: the "parallel"
	// index degenerates to the original sequential X-tree, so the plain
	// layout applies (bucket grouping would only fragment pages).
	_, isRR := st.assigner.(*core.RoundRobin)
	plain := isRR || ix.opts.Disks == 1
	groups := make([]map[string][]xtree.Entry, ix.opts.Disks)
	for d := range groups {
		groups[d] = make(map[string][]xtree.Entry)
	}
	for i, p := range pts {
		if p == nil {
			continue
		}
		d, key, rect := ix.assignCell(st, i, p)
		addToCell(st, key, d, rect)
		groups[d][key] = append(groups[d][key], xtree.Entry{Point: p, ID: i})
	}
	cfg := ix.treeConfig()
	st.shards = make([]*shard, ix.opts.Disks)
	for d := range st.shards {
		st.shards[d] = loadShard(cfg, groups[d], plain)
	}
	if ix.opts.Replication > 0 {
		// Chained replication: disk r hosts a second, independently
		// packed tree over the data whose primary is disk r-1.
		st.replicas = make([]*shard, ix.opts.Disks)
		for d := range groups {
			st.replicas[replicaOf(d, ix.opts.Disks)] = loadShard(cfg, groups[d], plain)
		}
	}
	if ix.opts.LSH {
		for _, sh := range st.shards {
			sh.probe = lsh.Build(sh.tree, lshSeed)
		}
		for _, sh := range st.replicas {
			sh.probe = lsh.Build(sh.tree, lshSeed)
		}
	}
	if ix.opts.Baseline {
		entries := make([]xtree.Entry, 0, live)
		for i, p := range pts {
			if p != nil {
				entries = append(entries, xtree.Entry{Point: p, ID: i})
			}
		}
		st.baseline = &shard{tree: xtree.New(cfg)}
		st.baseline.tree.BulkLoad(entries)
	}
	return st, pts, live, nil
}

// loadShard bulk-loads one disk's share of the data — grouped by
// storage cell so no page spans two cells, or flat for the plain layout
// — into a fresh tree. Cell keys are sorted for a deterministic build.
func loadShard(cfg xtree.Config, groups map[string][]xtree.Entry, plain bool) *shard {
	keys := make([]string, 0, len(groups))
	for key := range groups {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	sh := &shard{tree: xtree.New(cfg)}
	if plain {
		var all []xtree.Entry
		for _, key := range keys {
			all = append(all, groups[key]...)
		}
		sh.tree.BulkLoad(all)
		return sh
	}
	parts := make([][]xtree.Entry, 0, len(keys))
	for _, key := range keys {
		parts = append(parts, groups[key])
	}
	sh.tree.BulkLoadGrouped(parts)
	return sh
}

// Build indexes the given vectors, replacing any previous content. Vector
// i receives ID i. A nil vector is a tombstone: its ID stays reserved but
// nothing is stored (snapshots of indexes with deletions use this). With
// Options.QuantileSplits the quadrant splits are placed at the
// per-dimension medians of the data; with Options.Recursive overloaded
// disks are recursively declustered (both extensions of §4.3).
//
// The new structure is computed off the lock — queries keep running
// against the old contents meanwhile — and swapped in as an atomic
// cutover. A concurrent Insert or Delete serializes either before the
// cutover (its effect is replaced, as if it preceded Build) or after it.
func (ix *Index) Build(points [][]float64) error {
	st, pts, live, err := ix.buildState(points)
	if err != nil {
		return err
	}
	if ix.opts.Durable {
		// A durable Build is a generation rebase: the new state must be
		// committed as a snapshot before the cutover (see durable.go).
		return ix.rebaseDurable(st, pts, live)
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.meta.Lock()
	defer ix.meta.Unlock()
	if ix.closed {
		return ErrClosed
	}
	ix.st = st
	ix.points = pts
	ix.live = live
	ix.version++
	return nil
}

// Insert adds one vector dynamically and returns its ID. Point mutations
// are serialized with each other but run concurrently with queries. On a
// durable index the insert is logged (and, with WALSyncAlways, fsynced
// via group commit) before it returns.
func (ix *Index) Insert(p []float64) (int, error) {
	if len(p) != ix.opts.Dim {
		return 0, fmt.Errorf("parsearch: inserting dimension %d, want %d", len(p), ix.opts.Dim)
	}
	if ix.opts.Durable {
		ix.rotMu.RLock()
		defer ix.rotMu.RUnlock()
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	st := ix.st
	ix.meta.Lock()
	if ix.closed {
		ix.meta.Unlock()
		return 0, ErrClosed
	}
	id, w, target, err := ix.insertOne(st, p)
	ix.meta.Unlock()
	if err != nil {
		return 0, err
	}
	if w != nil && w.Policy() == wal.SyncAlways {
		if err := w.SyncTo(target); err != nil {
			// The mutation is applied in memory but its durability is
			// unknown; the writer is sticky-failed, so every further
			// mutation will be refused rather than silently undurable.
			return 0, fmt.Errorf("parsearch: syncing insert: %w", err)
		}
	}
	return id, nil
}

// insertOne logs and applies one insert. The caller holds rotMu in read
// mode (durable indexes), mu in read mode, and meta, has verified the
// index is open and the dimension matches, and waits for the group
// commit (SyncTo(target) on the returned writer) after releasing meta.
// Batched ingest shares this primitive: a whole batch is applied under
// one meta hold and acknowledged by a single sync to the last target.
func (ix *Index) insertOne(st *state, p []float64) (id int, w *wal.Writer, target int64, err error) {
	id = len(ix.points)
	point := vec.Clone(p)
	ix.canonPacked(point)
	// Log before apply: a failed append leaves both the log and the
	// index untouched. The sync wait happens after meta is released, so
	// concurrent mutations share fsyncs (group commit) instead of
	// serializing behind them. rotMu (held in read mode) pins the
	// writer: a checkpoint may rotate it concurrently — its cut syncs
	// this append first — but a Build cannot replace the generation
	// under us.
	w = ix.wal
	if w != nil {
		target, err = w.AppendAsync(wal.EncodeInsert(uint64(id), point))
		if err != nil {
			return 0, nil, 0, fmt.Errorf("parsearch: logging insert: %w", err)
		}
	}
	ix.points = append(ix.points, point)
	ix.live++
	ix.version++
	if ix.opts.QuantileSplits {
		ix.observer().Observe(point)
	}
	d, key, rect := ix.assignCell(st, id, point)
	addToCell(st, key, d, rect)
	sh := st.shards[d]
	sh.mu.Lock()
	sh.tree.Insert(point, id)
	sh.mu.Unlock()
	if st.replicas != nil {
		rsh := st.replicas[replicaOf(d, ix.opts.Disks)]
		rsh.mu.Lock()
		rsh.tree.Insert(point, id)
		rsh.mu.Unlock()
	}
	if st.baseline != nil {
		st.baseline.mu.Lock()
		st.baseline.tree.Insert(point, id)
		st.baseline.mu.Unlock()
	}
	return id, w, target, nil
}

// Delete removes the vector with the given ID. The ID is not reused;
// subsequent inserts continue from the highest ID ever assigned. On a
// durable index the delete is logged like an insert (see Insert).
func (ix *Index) Delete(id int) error {
	if ix.opts.Durable {
		ix.rotMu.RLock()
		defer ix.rotMu.RUnlock()
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	w, target, err := ix.deleteLocked(id)
	if err != nil {
		return err
	}
	if w != nil && w.Policy() == wal.SyncAlways {
		if err := w.SyncTo(target); err != nil {
			// Applied in memory, durability unknown; the writer is
			// sticky-failed (see Insert).
			return fmt.Errorf("parsearch: syncing delete: %w", err)
		}
	}
	return nil
}

// deleteLocked validates, logs, and applies one delete under the
// metadata lock; the caller waits for the group commit off the lock.
func (ix *Index) deleteLocked(id int) (*wal.Writer, int64, error) {
	st := ix.st
	ix.meta.Lock()
	defer ix.meta.Unlock()
	if ix.closed {
		return nil, 0, ErrClosed
	}
	return ix.deleteOne(st, id)
}

// deleteOne applies and logs one delete. Locking contract as insertOne.
func (ix *Index) deleteOne(st *state, id int) (*wal.Writer, int64, error) {
	if id < 0 || id >= len(ix.points) || ix.points[id] == nil {
		return nil, 0, fmt.Errorf("parsearch: no vector with id %d", id)
	}
	p := ix.points[id]
	// Apply to the trees BEFORE logging: the tree deletes are the only
	// remaining failure modes, and a delete record must never become
	// durable unless the delete is actually applied — otherwise a
	// failed delete would silently reappear as applied after recovery.
	// (Insert logs first because its apply cannot fail.) Log order
	// still matches commit order: both happen under meta.
	d, key, _ := ix.assignCell(st, id, p)
	sh := st.shards[d]
	sh.mu.Lock()
	ok := sh.tree.Delete(p, id)
	sh.mu.Unlock()
	if !ok {
		return nil, 0, fmt.Errorf("parsearch: internal inconsistency: id %d not found on disk %d", id, d)
	}
	var rsh *shard
	if st.replicas != nil {
		r := replicaOf(d, ix.opts.Disks)
		rsh = st.replicas[r]
		rsh.mu.Lock()
		ok := rsh.tree.Delete(p, id)
		rsh.mu.Unlock()
		if !ok {
			// Undo the primary so the failed delete leaves no trace.
			sh.mu.Lock()
			sh.tree.Insert(p, id)
			sh.mu.Unlock()
			return nil, 0, fmt.Errorf("parsearch: internal inconsistency: id %d not found in disk %d's replica on disk %d", id, d, r)
		}
	}
	if st.baseline != nil {
		st.baseline.mu.Lock()
		st.baseline.tree.Delete(p, id)
		st.baseline.mu.Unlock()
	}
	w := ix.wal
	var target int64
	if w != nil {
		var werr error
		target, werr = w.AppendAsync(wal.EncodeDelete(uint64(id)))
		if werr != nil {
			// The delete was refused, not applied: roll the trees back
			// so memory, the log, and the error agree.
			sh.mu.Lock()
			sh.tree.Insert(p, id)
			sh.mu.Unlock()
			if rsh != nil {
				rsh.mu.Lock()
				rsh.tree.Insert(p, id)
				rsh.mu.Unlock()
			}
			if st.baseline != nil {
				st.baseline.mu.Lock()
				st.baseline.tree.Insert(p, id)
				st.baseline.mu.Unlock()
			}
			return nil, 0, fmt.Errorf("parsearch: logging delete: %w", werr)
		}
	}
	if idx, ok := st.cellIndex[key]; ok && st.cells[idx].count > 0 {
		st.cells[idx].count--
	}
	ix.points[id] = nil
	ix.live--
	ix.version++
	return w, target, nil
}

// ErrEmpty is returned by queries on an empty index.
var ErrEmpty = errors.New("parsearch: index is empty")

// NN returns the nearest neighbor of q.
func (ix *Index) NN(q []float64) (Neighbor, QueryStats, error) {
	return ix.NNContext(context.Background(), q)
}

// NNContext is NN with a context, which may carry a per-request tracer
// (see WithTracer).
func (ix *Index) NNContext(ctx context.Context, q []float64) (Neighbor, QueryStats, error) {
	res, stats, err := ix.KNNContext(ctx, q, 1)
	if err != nil {
		return Neighbor{}, stats, err
	}
	if len(res) == 0 {
		// Degraded-to-empty edge: a best-effort search over a partially
		// failed index can come up with no candidates at all. Surface
		// that as an error instead of indexing an empty slice.
		if stats.Degraded {
			return Neighbor{}, stats, ErrUnavailable
		}
		return Neighbor{}, stats, ErrEmpty
	}
	return res[0], stats, nil
}

// KNN returns the k nearest neighbors of q, searching all disks in
// parallel, together with the query's cost statistics.
func (ix *Index) KNN(q []float64, k int) ([]Neighbor, QueryStats, error) {
	return ix.KNNContext(context.Background(), q, k)
}

// KNNContext is KNN with a context, which may carry a per-request
// tracer (see WithTracer) and a deadline. Cancellation is honored at
// the fan-out granularity: the query checks ctx between per-disk
// searches and before the simulated I/O phase, so a cancelled context
// returns ctx.Err() promptly without charging further disk reads. A
// disk search already underway completes (the simulated disks execute
// a planned read batch atomically).
func (ix *Index) KNNContext(ctx context.Context, q []float64, k int) ([]Neighbor, QueryStats, error) {
	return ix.knnContext(ctx, q, k, ix.ApproxDefaults(), ShardSpec{})
}

// KNNApprox is KNN with per-query approximate-search knobs, overriding
// the index defaults: the returned k-th distance is at most
// (1+a.Epsilon) times the exact one, and with Options.LSH the probe
// fraction is capped at a.RecallTarget. A zero Approx is an exact
// query regardless of the index defaults.
func (ix *Index) KNNApprox(q []float64, k int, a Approx) ([]Neighbor, QueryStats, error) {
	return ix.KNNApproxContext(context.Background(), q, k, a)
}

// KNNApproxContext is KNNApprox with a context (see KNNContext).
func (ix *Index) KNNApproxContext(ctx context.Context, q []float64, k int, a Approx) ([]Neighbor, QueryStats, error) {
	if err := a.validate(); err != nil {
		return nil, QueryStats{}, err
	}
	return ix.knnContext(ctx, q, k, a, ShardSpec{})
}

// KNNShardContext is KNNApproxContext restricted to a subset of the
// declustered disks (see ShardSpec) — the per-shard-group query of a
// multi-node deployment. Results are exact over the selected disks:
// excluded disks are neither searched nor accounted, and never flag the
// query Degraded (another process shard serves them). A coordinator
// merging every group's results obtains exactly the unrestricted
// query's answer; with a.Bound it can additionally ship one group's
// k-th distance to the others (see Approx.Bound).
func (ix *Index) KNNShardContext(ctx context.Context, q []float64, k int, a Approx, shards ShardSpec) ([]Neighbor, QueryStats, error) {
	if err := a.validate(); err != nil {
		return nil, QueryStats{}, err
	}
	if err := shards.validate(ix.opts.Disks); err != nil {
		return nil, QueryStats{}, err
	}
	return ix.knnContext(ctx, q, k, a, shards)
}

// knnContext runs one k-NN query with the resolved approximate-search
// knobs and shard restriction (both already validated).
func (ix *Index) knnContext(ctx context.Context, q []float64, k int, a Approx, shards ShardSpec) (_ []Neighbor, stats QueryStats, err error) {
	start := time.Now()
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	st := ix.st

	sp := ix.newSpan(ctx, "knn")
	defer func() {
		if err != nil {
			ix.reg.QueryErrors.Inc()
			sp.errEvent(err)
		}
	}()

	if len(q) != ix.opts.Dim {
		return nil, stats, fmt.Errorf("parsearch: query dimension %d, want %d", len(q), ix.opts.Dim)
	}
	if k < 1 {
		return nil, stats, fmt.Errorf("parsearch: k = %d", k)
	}
	if ix.liveCount() == 0 {
		return nil, stats, ErrEmpty
	}
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}

	// Plan the failure routing once: the same snapshot of the failure
	// flags drives the search and the I/O accounting, so the query sees
	// one consistent failure state.
	routes, degraded := ix.plan(st, shards.mask(ix.opts.Disks))
	sp.planEvents(routes, degraded)

	// Phase 1: every live shard finds its local k nearest neighbors,
	// one goroutine per shard (the union of the local results contains
	// the global result over the reachable data). A failed disk's
	// search runs against the chained replica instead; shards with no
	// live copy are skipped. Each goroutine holds only its own tree's
	// read lock, so a concurrent insert on one disk never blocks the
	// searches on the others.
	//
	// Cooperative pruning (unless Options.DisableSharedBound): the
	// shards share one lock-free bound on the global k-th-best distance
	// (knn.Bound). The query's home shard — the disk its quadrant is
	// declustered to, the likeliest holder of near neighbors — is
	// probed synchronously first so the bound is tight before the
	// fan-out starts; every other shard then consults the live bound
	// before expanding each priority-queue node and tightens it as its
	// local k-best improves. Pruned work is still accounted exactly
	// (QueryStats.PagesSavedByBound); results are provably identical to
	// the independent search (see DESIGN.md "Cooperative pruning").
	m := ix.metric()
	sr := newShardSearch(ctx, ix, &sp, st, q, k, m)
	sr.setApprox(a, ix.opts.LSH)
	sr.seedBound(a)
	seed := -1
	if sr.bound != nil {
		if d := ix.homeDisk(st, q); routes[d].sh != nil {
			seed = d
			sr.search(routes[d], d)
		}
	}
	var wg sync.WaitGroup
	for d := range routes {
		if routes[d].sh == nil || d == seed {
			continue
		}
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			sr.search(routes[d], d)
		}(d)
	}
	wg.Wait()
	// A context cancelled during the fan-out leaves some disks
	// unsearched; partial results would be silently wrong, so surface
	// the cancellation before merging (and before the I/O phase burns
	// simulated disk time for a client that is gone).
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}
	locals := sr.locals
	ix.reg.NodeVisits.Add(sr.record(&stats))
	if sr.approx {
		sp.emit(TraceEvent{Stage: StageApprox, Disk: -1, Item: -1, K: k,
			Epsilon: sr.eps, Pages: stats.PagesSkippedApprox})
	}

	// Merge to the global k nearest.
	var merged []knn.Result
	for _, l := range locals {
		merged = append(merged, l...)
	}
	sortResults(merged)
	if len(merged) > k {
		merged = merged[:k]
	}
	if len(merged) == 0 {
		if degraded {
			// Every live copy of the data is on a failed disk.
			stats.Degraded = true
			return nil, stats, ErrUnavailable
		}
		// Concurrent deletions emptied the index between the live
		// check and the search.
		return nil, stats, ErrEmpty
	}
	rk := merged[len(merged)-1].Dist
	sp.emit(TraceEvent{Stage: StageMerge, Disk: -1, Item: -1, K: k,
		Results: len(merged), Radius: rk})

	// Phase 2: cost accounting — every disk must read its pages
	// intersecting the NN-sphere of radius rk (§3.2: the partitions
	// intersecting the NN-sphere should be distributed over different
	// disks). The cost model selects what a "page" is: the disk's own
	// X-tree leaf pages (real system) or the quadrant buckets (the
	// paper's idealized storage). Reads are charged to the disk the
	// routing selected; pages with no live copy are counted as
	// Unreachable instead of being read.
	stats.PagesPerDisk = make([]int, len(st.shards))
	refs := ix.sphereRefs(st, routes, q, rk, &stats)
	// Degraded only when the dead data could have changed the answer:
	// unreachable pages intersect the NN-sphere (a dead point could be
	// closer than rk), or the merge came up short of k (any dead point
	// would have made the cut). Otherwise every dead page lies strictly
	// outside the sphere and the results are provably exact.
	stats.Degraded = stats.Unreachable > 0 || (degraded && len(merged) < k)
	batch, err := ix.array.ReadBatch(refs)
	if err != nil {
		return nil, stats, fmt.Errorf("parsearch: %w", err)
	}
	stats.MaxPages = batch.MaxPerDisk
	stats.TotalPages = batch.Total
	stats.Retries = batch.Retries
	stats.ParallelTime = batch.ParallelTime.Seconds()
	stats.SequentialTime = batch.SequentialTime.Seconds()
	stats.Speedup = batch.Speedup()
	sp.ioEvents(batch)
	ix.recordQuery(&ix.reg.QueriesKNN, &stats, batch, start)

	if st.baseline != nil {
		st.baseline.mu.RLock()
		pages, leaves := knn.SphereLeafPagesMetric(st.baseline.tree, q, rk, m)
		st.baseline.mu.RUnlock()
		stats.SeqPages = pages
		stats.BaselineTime = ix.params.SimulateCost(leaves, pages).Seconds()
		if stats.ParallelTime > 0 {
			stats.BaselineSpeedup = stats.BaselineTime / stats.ParallelTime
		}
	}

	out := make([]Neighbor, len(merged))
	for i, r := range merged {
		out[i] = Neighbor{ID: r.Entry.ID, Point: r.Entry.Point, Dist: r.Dist}
	}
	sp.emit(TraceEvent{Stage: StageDone, Disk: -1, Item: -1, K: k,
		Results: len(out), Pages: stats.TotalPages, Degraded: stats.Degraded})
	return out, stats, nil
}

// sphereRefs collects the page reads a query with NN-sphere radius rk
// requires, per the configured cost model: the pages of the trees the
// routing actually searches (real system) or the quadrant bucket pages
// (the paper's idealized storage of §3). Page counts, intersected
// cells, and the degraded-mode accounting (Unreachable, Rerouted) are
// recorded into qs; the returned refs feed the disk array and only name
// disks the routing selected as live. Each tree's leaves are enumerated
// under its read lock; the cell scan of the bucket model runs under
// meta.
func (ix *Index) sphereRefs(st *state, routes []route, q vec.Point, rk float64, qs *QueryStats) (refs []disk.PageRef) {
	m := ix.metric()
	rank := m.ToRank(rk)
	switch ix.opts.CostModel {
	case BucketPages:
		leafCap := ix.treeConfig().LeafCapacity
		ix.meta.Lock()
		for i := range st.cells {
			c := &st.cells[i]
			if c.count == 0 || m.RankMinDist(c.rect, q) > rank {
				continue
			}
			rt := routes[c.disk]
			if rt.masked {
				continue
			}
			pages := (c.count + leafCap - 1) / leafCap
			qs.Cells++
			if rt.sh == nil {
				qs.Unreachable += pages
				continue
			}
			if rt.rerouted {
				qs.Rerouted += pages
			}
			qs.PagesPerDisk[rt.disk] += pages
			refs = append(refs, disk.PageRef{Disk: rt.disk, Blocks: pages})
		}
		ix.meta.Unlock()
	default: // TreePages
		for d := range routes {
			rt := routes[d]
			if rt.masked {
				continue
			}
			sh, charge := rt.sh, rt.disk
			if sh == nil {
				// No live copy: enumerate the primary tree's pages
				// anyway so the shortfall is visible as Unreachable.
				sh, charge = st.shards[d], -1
			}
			sh.mu.RLock()
			for _, leaf := range sh.tree.Leaves() {
				if m.RankMinDist(leaf.Rect(), q) > rank {
					continue
				}
				qs.Cells++
				if charge < 0 {
					qs.Unreachable += leaf.Super()
					continue
				}
				if rt.rerouted {
					qs.Rerouted += leaf.Super()
				}
				qs.PagesPerDisk[charge] += leaf.Super()
				refs = append(refs, disk.PageRef{Disk: charge, Blocks: leaf.Super()})
			}
			sh.mu.RUnlock()
		}
	}
	return refs
}

// shardSearch is the per-query state of the k-NN fan-out: the per-disk
// result and accounting slots, plus the shared bound of the cooperative
// search (nil with Options.DisableSharedBound). One shardSearch serves
// one query; search is safe to call concurrently for different disks.
type shardSearch struct {
	ix    *Index
	sp    *span
	ctx   context.Context
	q     vec.Point
	k     int
	m     vec.Metric
	item  int  // batch item for trace events; -1 for single queries
	emit  bool // emit a per-disk search event (batch items emit their own)
	bound *knn.Bound

	// Approximate tier (setApprox): shrink is the rank-space
	// ε-termination factor (1 disables), eps the ε behind it, recall
	// the LSH probe fraction (1 disables). approx routes the per-disk
	// searches through knn.HSApprox; when false they run the exact code
	// path untouched, so exact queries stay byte-identical.
	shrink float64
	eps    float64
	recall float64
	approx bool

	locals  [][]knn.Result
	accs    []knn.Accounting
	saved   []knn.Accounting
	tight   []int
	remote  []int
	skipped []int
	probed  []int
}

func newShardSearch(ctx context.Context, ix *Index, sp *span, st *state, q vec.Point, k int, m vec.Metric) *shardSearch {
	sr := &shardSearch{ix: ix, sp: sp, ctx: ctx, q: q, k: k, m: m, item: -1, emit: true,
		locals: make([][]knn.Result, len(st.shards)),
		accs:   make([]knn.Accounting, len(st.shards)),
	}
	if !ix.opts.DisableSharedBound {
		sr.bound = knn.NewBound()
		sr.saved = make([]knn.Accounting, len(st.shards))
		sr.tight = make([]int, len(st.shards))
		sr.remote = make([]int, len(st.shards))
	}
	sr.shrink, sr.recall = 1, 1
	return sr
}

// seedBound installs the externally shipped k-th-distance bound of
// a.Bound (converted to rank space) into this query's shared bound —
// the receiving half of the cross-network bound protocol. A no-op
// without a bound to seed, or with the shared bound disabled.
func (sr *shardSearch) seedBound(a Approx) {
	if a.Bound > 0 && sr.bound != nil {
		sr.bound.Seed(sr.m.ToRank(a.Bound))
	}
}

// setApprox arms the approximate tier for this query. The recall cap
// only takes effect on an index built with Options.LSH (without the
// filter there is nothing to order the probes by).
func (sr *shardSearch) setApprox(a Approx, lshOn bool) {
	sr.shrink = knn.ShrinkFor(a.Epsilon, sr.m)
	sr.eps = a.Epsilon
	if lshOn && a.RecallTarget > 0 && a.RecallTarget < 1 {
		sr.recall = a.RecallTarget
	}
	sr.approx = sr.shrink < 1 || sr.recall < 1
	if sr.approx {
		sr.skipped = make([]int, len(sr.locals))
		sr.probed = make([]int, len(sr.locals))
	}
}

// search runs disk d's local search via the given route, under the
// routed tree's read lock. A cancelled query context skips the disk
// entirely — the fan-out checks cancellation between per-disk searches
// so a disconnected client stops burning traversal work; the caller
// surfaces ctx.Err() after the fan-out. Bound tightenings are buffered
// and emitted after the lock is released so no user code (the tracer)
// ever runs under a shard lock.
func (sr *shardSearch) search(rt route, d int) {
	if sr.ctx.Err() != nil {
		return
	}
	sh := rt.sh
	var tighs []float64
	sh.mu.RLock()
	switch {
	case sr.approx:
		var onTighten func(float64)
		if sr.bound != nil && sr.sp.on() {
			onTighten = func(sq float64) { tighs = append(tighs, sq) }
		}
		spec := knn.ApproxSpec{Shrink: sr.shrink}
		if sr.recall < 1 && sh.probe != nil {
			spec.Probe = sh.probe.Admit(sr.q, sr.recall)
		}
		var as knn.ApproxStats
		sr.locals[d], sr.accs[d], as = knn.HSApprox(sh.tree, sr.q, sr.k, sr.m, spec, sr.bound, onTighten)
		if sr.bound != nil {
			sr.saved[d] = as.Saved
			sr.tight[d] = as.Tightened
			sr.remote[d] = as.RemotePages
		}
		sr.skipped[d] = as.SkippedPages
		sr.probed[d] = as.ProbedPages
	case sr.bound != nil:
		var onTighten func(float64)
		if sr.sp.on() {
			onTighten = func(sq float64) { tighs = append(tighs, sq) }
		}
		var ss knn.SharedStats
		sr.locals[d], sr.accs[d], ss = knn.HSShared(sh.tree, sr.q, sr.k, sr.m, sr.bound, onTighten)
		sr.saved[d] = ss.Saved
		sr.tight[d] = ss.Tightened
		sr.remote[d] = ss.RemotePages
	default:
		sr.locals[d], sr.accs[d] = knn.HSMetric(sh.tree, sr.q, sr.k, sr.m)
	}
	sh.mu.RUnlock()
	for _, sq := range tighs {
		sr.sp.emit(TraceEvent{Stage: StageBoundTightened, Disk: d, Item: sr.item, K: sr.k,
			Radius: sr.m.FromRank(sq)})
	}
	if sr.emit {
		sr.sp.emit(TraceEvent{Stage: StageSearch, Disk: d, Item: sr.item, K: sr.k,
			Results: len(sr.locals[d]), Pages: sr.accs[d].PageAccesses})
	}
}

// record folds the finished fan-out into the query's stats and returns
// the node-visit count for the registry (charged by the caller: KNN
// directly, BatchKNN via its batch-wide accumulator).
func (sr *shardSearch) record(qs *QueryStats) (nodeVisits int64) {
	for d := range sr.accs {
		nodeVisits += int64(sr.accs[d].DirAccesses + sr.accs[d].LeafAccesses)
		qs.SearchPages += sr.accs[d].PageAccesses
		qs.DistCompsSaved += sr.accs[d].DistCompsSkipped
	}
	for d := range sr.saved {
		qs.PagesSavedByBound += sr.saved[d].PageAccesses
		qs.BoundTightenings += sr.tight[d]
		qs.PagesSavedByRemoteBound += sr.remote[d]
	}
	for d := range sr.skipped {
		qs.PagesSkippedApprox += sr.skipped[d]
		qs.ProbePages += sr.probed[d]
	}
	if sr.approx {
		qs.EffectiveEpsilon = sr.eps
	}
	return nodeVisits
}

// homeDisk returns the disk the declustering assigns the query point's
// own cell to — the shard likeliest to hold near neighbors, and hence
// the seeding probe of the cooperative search. Point-based assigners
// (round robin) have no home quadrant and seed disk 0; any probe warms
// the bound, correctness never depends on the choice.
func (ix *Index) homeDisk(st *state, q vec.Point) int {
	return st.assigner.Assign(0, q)
}

// HomeDisk returns the disk the declustering assigns the query point's
// cell to — the disk likeliest to hold q's near neighbors. A
// multi-node coordinator uses it to pick the first shard group of the
// two-phase bound protocol (group HomeDisk(q) mod number of shards);
// correctness never depends on the choice, only pruning quality does.
func (ix *Index) HomeDisk(q []float64) (int, error) {
	if len(q) != ix.opts.Dim {
		return 0, fmt.Errorf("parsearch: query dimension %d, want %d", len(q), ix.opts.Dim)
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.homeDisk(ix.st, q), nil
}

// sortResults orders by distance, breaking ties by ID.
func sortResults(rs []knn.Result) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0; j-- {
			if rs[j].Dist < rs[j-1].Dist ||
				(rs[j].Dist == rs[j-1].Dist && rs[j].Entry.ID < rs[j-1].Entry.ID) {
				rs[j], rs[j-1] = rs[j-1], rs[j]
			} else {
				break
			}
		}
	}
}

// VerifyDeclustering checks the active bucket-based strategy against the
// paper's near-optimality criterion (Definition 4) and returns up to max
// violations, formatted for display. Round-robin and recursive
// assignments are point-based and return an error, as do dimensions too
// large to enumerate.
func (ix *Index) VerifyDeclustering(max int) ([]string, error) {
	ix.mu.RLock()
	assigner := ix.st.assigner
	ix.mu.RUnlock()
	ba, ok := assigner.(*core.BucketAssigner)
	if !ok {
		return nil, fmt.Errorf("parsearch: strategy %q is not bucket-based", assigner.Name())
	}
	if ix.opts.Dim >= 25 {
		return nil, fmt.Errorf("parsearch: dimension %d too large for exhaustive verification", ix.opts.Dim)
	}
	var out []string
	for _, v := range core.VerifyNearOptimal(ba.Strategy(), ix.opts.Dim, max) {
		out = append(out, v.String())
	}
	return out, nil
}
