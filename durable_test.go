package parsearch

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"parsearch/internal/fsx"
)

// durableOpts is the baseline configuration of the durability tests:
// small, deterministic, and durable over whatever FS the test supplies.
func durableOpts() Options {
	return Options{Dim: 3, Disks: 4, Durable: true}
}

// durPoint derives a deterministic vector from an ID, so tests can
// verify recovered coordinates without storing expectations.
func durPoint(id, dim int) []float64 {
	p := make([]float64, dim)
	for j := range p {
		p[j] = float64(id*31+j*7) + 0.25
	}
	return p
}

// tableOf reads the index's point table (IDs and coordinates,
// tombstones as nil) for comparison against an oracle.
func tableOf(ix *Index) [][]float64 {
	ix.meta.Lock()
	defer ix.meta.Unlock()
	out := make([][]float64, len(ix.points))
	for i, p := range ix.points {
		if p != nil {
			out[i] = append([]float64(nil), p...)
		}
	}
	return out
}

func TestDurableRecoversAckedMutations(t *testing.T) {
	fs := fsx.NewMem()
	ix, err := openDurable(durableOpts(), fs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := ix.Insert(durPoint(i, 3)); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []int{3, 7, 11} {
		if err := ix.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	want := tableOf(ix)

	// No Close: recovery must come entirely from the log. SyncAlways
	// means every acknowledged mutation is in the durable prefix.
	re, err := openDurable(durableOpts(), fs)
	if err != nil {
		t.Fatal(err)
	}
	if got := tableOf(re); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered table differs: got %d slots, want %d", len(got), len(want))
	}
	if re.Len() != 17 {
		t.Fatalf("recovered live count %d, want 17", re.Len())
	}
	info := re.Recovery()
	// 20 inserts + 3 deletes + the log's checkpoint record.
	if !info.Recovered || info.Records != 24 {
		t.Fatalf("recovery info %+v, want Recovered with 24 records", info)
	}
	if err := re.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	if got := re.Metrics().Recoveries; got != 1 {
		t.Fatalf("Recoveries metric %d, want 1", got)
	}
}

func TestDurableRecoveredAnswersMatchOracle(t *testing.T) {
	fs := fsx.NewMem()
	ix, err := openDurable(durableOpts(), fs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := ix.Insert(durPoint(i, 3)); err != nil {
			t.Fatal(err)
		}
	}
	re, err := openDurable(durableOpts(), fs)
	if err != nil {
		t.Fatal(err)
	}

	oracle, err := Open(Options{Dim: 3, Disks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := oracle.Build(tableOf(re)); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 10; q++ {
		query := durPoint(q*5+2, 3)
		got, _, err := re.KNN(query, 7)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := oracle.KNN(query, 7)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d: recovered KNN differs from oracle", q)
		}
	}
}

func TestDurableCheckpointRotatesGenerations(t *testing.T) {
	fs := fsx.NewMem()
	ix, err := openDurable(durableOpts(), fs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := ix.Insert(durPoint(i, 3)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 15; i++ {
		if _, err := ix.Insert(durPoint(i, 3)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := ix.Durability().Generation; got != 2 {
		t.Fatalf("generation %d after two checkpoints, want 2", got)
	}
	// Retention: generations 1 and 2 live, generation 0 pruned.
	names, _ := fs.List()
	for _, name := range names {
		if name == walName(0) || name == snapName(0) {
			t.Fatalf("generation 0 file %s not pruned; have %v", name, names)
		}
	}
	for _, want := range []string{snapName(1), snapName(2), walName(1), walName(2)} {
		if _, err := fs.ReadFile(want); err != nil {
			t.Fatalf("missing %s after rotation: %v (have %v)", want, err, names)
		}
	}

	if _, err := ix.Insert(durPoint(15, 3)); err != nil {
		t.Fatal(err)
	}
	want := tableOf(ix)
	re, err := openDurable(durableOpts(), fs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tableOf(re), want) {
		t.Fatal("recovered table differs after checkpoints")
	}
	info := re.Recovery()
	if !info.HaveSnapshot || info.SnapshotGen != 2 {
		t.Fatalf("recovery info %+v, want snapshot gen 2", info)
	}
	// Only the post-checkpoint insert should need replaying.
	if info.Records != 2 { // checkpoint record + 1 insert
		t.Fatalf("replayed %d records, want 2", info.Records)
	}
}

func TestDurableBuildRebases(t *testing.T) {
	fs := fsx.NewMem()
	ix, err := openDurable(durableOpts(), fs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := ix.Insert(durPoint(i, 3)); err != nil {
			t.Fatal(err)
		}
	}
	rebuilt := [][]float64{durPoint(100, 3), durPoint(101, 3), nil, durPoint(103, 3)}
	if err := ix.Build(rebuilt); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Insert(durPoint(104, 3)); err != nil {
		t.Fatal(err)
	}
	want := tableOf(ix)

	re, err := openDurable(durableOpts(), fs)
	if err != nil {
		t.Fatal(err)
	}
	if got := tableOf(re); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered table after Build differs: got %v, want %v", got, want)
	}
	if re.Len() != 4 {
		t.Fatalf("live count %d, want 4", re.Len())
	}
}

func TestDurableCloseSemantics(t *testing.T) {
	fs := fsx.NewMem()
	ix, err := openDurable(durableOpts(), fs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Insert(durPoint(0, 3)); err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := ix.Insert(durPoint(1, 3)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Insert after Close: %v, want ErrClosed", err)
	}
	if err := ix.Delete(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Delete after Close: %v, want ErrClosed", err)
	}
	if err := ix.Build([][]float64{durPoint(0, 3)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Build after Close: %v, want ErrClosed", err)
	}
	if err := ix.Checkpoint(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Checkpoint after Close: %v, want ErrClosed", err)
	}
	// Queries and Save keep working against the in-memory state.
	if _, _, err := ix.KNN(durPoint(0, 3), 1); err != nil {
		t.Fatalf("KNN after Close: %v", err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatalf("Save after Close: %v", err)
	}
	if !ix.Durability().Closed {
		t.Fatal("Durability().Closed is false after Close")
	}
}

func TestDurableCloseStopsNonDurableMutations(t *testing.T) {
	ix, err := Open(Options{Dim: 3, Disks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Insert(durPoint(0, 3)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Insert after Close: %v, want ErrClosed", err)
	}
}

func TestDurableTornTailTruncated(t *testing.T) {
	fs := fsx.NewMem()
	ix, err := openDurable(durableOpts(), fs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := ix.Insert(durPoint(i, 3)); err != nil {
			t.Fatal(err)
		}
	}
	want := tableOf(ix)

	// A crash mid-append leaves a partial frame at the tail.
	f, err := fs.Append(walName(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x20, 0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re, err := openDurable(durableOpts(), fs)
	if err != nil {
		t.Fatalf("torn tail must recover cleanly: %v", err)
	}
	if !reflect.DeepEqual(tableOf(re), want) {
		t.Fatal("recovered table differs after torn tail")
	}
	if re.Recovery().TornBytes != 3 {
		t.Fatalf("TornBytes %d, want 3", re.Recovery().TornBytes)
	}
	// The tail was truncated: appends resume and the log stays valid.
	if _, err := re.Insert(durPoint(5, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := openDurable(durableOpts(), fs); err != nil {
		t.Fatalf("reopen after post-truncation append: %v", err)
	}
}

func TestDurableMidLogCorruptionRefused(t *testing.T) {
	fs := fsx.NewMem()
	ix, err := openDurable(durableOpts(), fs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := ix.Insert(durPoint(i, 3)); err != nil {
			t.Fatal(err)
		}
	}
	// Flip one byte in the middle of the log: bit rot, not a crash.
	data, err := fs.ReadFile(walName(0))
	if err != nil {
		t.Fatal(err)
	}
	corrupted := append([]byte(nil), data...)
	corrupted[len(corrupted)/2] ^= 0x40
	if err := rewriteFile(fs, walName(0), corrupted); err != nil {
		t.Fatal(err)
	}

	if _, err := openDurable(durableOpts(), fs); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-log corruption: %v, want ErrCorrupt", err)
	}

	// Salvage recovers the valid prefix instead.
	salvageOpts := durableOpts()
	salvageOpts.Salvage = true
	re, err := openDurable(salvageOpts, fs)
	if err != nil {
		t.Fatalf("salvage open: %v", err)
	}
	info := re.Recovery()
	if !info.Salvaged || info.DroppedBytes == 0 {
		t.Fatalf("recovery info %+v, want Salvaged with dropped bytes", info)
	}
	got := tableOf(re)
	if len(got) >= 10 {
		t.Fatalf("salvage kept %d slots, corruption should have cost some", len(got))
	}
	for i, p := range got {
		if !reflect.DeepEqual(p, durPoint(i, 3)) {
			t.Fatalf("salvaged point %d corrupted", i)
		}
	}
	// The salvaged state must be clean: a plain reopen succeeds.
	if _, err := openDurable(durableOpts(), fs); err != nil {
		t.Fatalf("reopen after salvage: %v", err)
	}
}

func TestDurableCorruptSnapshotFallsBack(t *testing.T) {
	fs := fsx.NewMem()
	ix, err := openDurable(durableOpts(), fs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := ix.Insert(durPoint(i, 3)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Insert(durPoint(10, 3)); err != nil {
		t.Fatal(err)
	}
	if err := ix.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Insert(durPoint(11, 3)); err != nil {
		t.Fatal(err)
	}
	want := tableOf(ix)

	// Rot the newest snapshot. Without Salvage that is refused; with
	// Salvage, recovery falls back to the previous generation's
	// snapshot and the intact log chain replays everything — no loss.
	raw, err := fs.ReadFile(snapName(2))
	if err != nil {
		t.Fatal(err)
	}
	corrupted := append([]byte(nil), raw...)
	corrupted[len(corrupted)/2] ^= 0x01
	if err := rewriteFile(fs, snapName(2), corrupted); err != nil {
		t.Fatal(err)
	}

	if _, err := openDurable(durableOpts(), fs); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt snapshot: %v, want ErrCorrupt", err)
	}
	salvageOpts := durableOpts()
	salvageOpts.Salvage = true
	re, err := openDurable(salvageOpts, fs)
	if err != nil {
		t.Fatalf("salvage open: %v", err)
	}
	if !reflect.DeepEqual(tableOf(re), want) {
		t.Fatal("fallback recovery lost data despite intact log chain")
	}
	info := re.Recovery()
	if !info.Salvaged || info.SnapshotGen != 1 {
		t.Fatalf("recovery info %+v, want Salvaged from snapshot gen 1", info)
	}
}

func TestDurableWALSyncOSLagAndClose(t *testing.T) {
	fs := fsx.NewMem()
	opts := durableOpts()
	opts.WALSync = WALSyncOS
	ix, err := openDurable(opts, fs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := ix.Insert(durPoint(i, 3)); err != nil {
			t.Fatal(err)
		}
	}
	d := ix.Durability()
	if d.WALLagBytes <= 0 {
		t.Fatalf("WALLagBytes %d with WALSyncOS, want > 0", d.WALLagBytes)
	}
	if d.SyncPolicy != string(WALSyncOS) {
		t.Fatalf("SyncPolicy %q, want %q", d.SyncPolicy, WALSyncOS)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	// Close synced the log: the durable view holds everything.
	re, err := openDurable(opts, fs.DurableView())
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 5 {
		t.Fatalf("recovered %d points after Close, want 5", re.Len())
	}
}

func TestDurableStickySyncFailure(t *testing.T) {
	fs := fsx.NewMem()
	ix, err := openDurable(durableOpts(), fs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Insert(durPoint(0, 3)); err != nil {
		t.Fatal(err)
	}
	fs.FailSyncs(1)
	if _, err := ix.Insert(durPoint(1, 3)); err == nil {
		t.Fatal("Insert with failed fsync returned nil error")
	}
	// fsyncgate: the log's durability is unknowable after a failed
	// fsync, so every further mutation must be refused.
	if _, err := ix.Insert(durPoint(2, 3)); err == nil {
		t.Fatal("Insert after sticky sync failure returned nil error")
	}
	if err := ix.Delete(0); err == nil {
		t.Fatal("Delete after sticky sync failure returned nil error")
	}
}

func TestDurableInjectedWriteErrorHeals(t *testing.T) {
	fs := fsx.NewMem()
	ix, err := openDurable(durableOpts(), fs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Insert(durPoint(0, 3)); err != nil {
		t.Fatal(err)
	}
	// One-shot short write: the failed insert is rejected, the log
	// self-heals, and the next mutation proceeds.
	fs.FailWriteAt(fs.TotalWritten() + 10)
	if _, err := ix.Insert(durPoint(1, 3)); err == nil {
		t.Fatal("Insert across injected write error returned nil error")
	}
	if _, err := ix.Insert(durPoint(2, 3)); err != nil {
		t.Fatalf("Insert after self-heal: %v", err)
	}
	re, err := openDurable(durableOpts(), fs)
	if err != nil {
		t.Fatal(err)
	}
	got := tableOf(re)
	if len(got) != 2 {
		t.Fatalf("recovered %d slots, want 2 (failed insert dropped)", len(got))
	}
	// The rejected insert's ID was re-used by the healed one: the
	// durable history matches the acknowledged one.
	if !reflect.DeepEqual(got[1], durPoint(2, 3)) {
		t.Fatalf("slot 1 holds %v, want the healed insert", got[1])
	}
}

func TestDurableOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opts Options
	}{
		{"dir without durable", Options{Dim: 3, Disks: 2, Dir: "x"}},
		{"walsync without durable", Options{Dim: 3, Disks: 2, WALSync: WALSyncAlways}},
		{"salvage without durable", Options{Dim: 3, Disks: 2, Salvage: true}},
		{"durable without dir", Options{Dim: 3, Disks: 2, Durable: true}},
	}
	for _, tc := range cases {
		if _, err := Open(tc.opts); err == nil {
			t.Errorf("%s: Open returned nil error", tc.name)
		}
	}
	bad := durableOpts()
	bad.WALSync = "sometimes"
	if _, err := openDurable(bad, fsx.NewMem()); err == nil {
		t.Error("unknown WALSync policy: openDurable returned nil error")
	}
}

func TestDurableOSDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dim: 3, Disks: 4, Durable: true, Dir: dir}
	ix, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if _, err := ix.Insert(durPoint(i, 3)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := ix.Delete(4); err != nil {
		t.Fatal(err)
	}
	want := tableOf(ix)
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if !reflect.DeepEqual(tableOf(re), want) {
		t.Fatal("recovered table differs over the OS filesystem")
	}
	if got, _, err := re.NN(durPoint(7, 3)); err != nil || got.ID != 7 {
		t.Fatalf("NN after OS recovery: %v %v", got, err)
	}
}

func TestDurableDimensionMismatchRejected(t *testing.T) {
	fs := fsx.NewMem()
	ix, err := openDurable(durableOpts(), fs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Insert(durPoint(0, 3)); err != nil {
		t.Fatal(err)
	}
	if err := ix.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	other := durableOpts()
	other.Dim = 5
	if _, err := openDurable(other, fs); err == nil {
		t.Fatal("dimension mismatch against the snapshot: nil error")
	}
}

func TestDurableMetricsSurviveCheckpoint(t *testing.T) {
	fs := fsx.NewMem()
	ix, err := openDurable(durableOpts(), fs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := ix.Insert(durPoint(i, 3)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := ix.KNN(durPoint(2, 3), 3); err != nil {
		t.Fatal(err)
	}
	if err := ix.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	before := ix.Metrics()
	if before.WALAppends == 0 || before.WALSyncs == 0 || before.WALBytes == 0 {
		t.Fatalf("WAL metrics not recorded: %+v", before)
	}
	re, err := openDurable(durableOpts(), fs)
	if err != nil {
		t.Fatal(err)
	}
	after := re.Metrics()
	// The snapshot carried the cumulative counters across the restart.
	if after.QueriesKNN != before.QueriesKNN {
		t.Fatalf("QueriesKNN %d after recovery, want %d", after.QueriesKNN, before.QueriesKNN)
	}
	if after.WALFsyncNs.Count == 0 {
		t.Fatal("WALFsyncNs histogram empty after recovery")
	}
}

// rewriteFile replaces name's content (Create truncates, then write).
func rewriteFile(fs fsx.FS, name string, data []byte) error {
	f, err := fs.Create(name)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// TestLoadRejectsTrailingGarbage is the regression test for the Load
// hardening: bytes appended after the CRC footer must be rejected
// deterministically (not just probabilistically via a shifted-footer
// CRC mismatch).
func TestLoadRejectsTrailingGarbage(t *testing.T) {
	ix, err := Open(Options{Dim: 2, Disks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Build([][]float64{{1, 2}, {3, 4}, {5, 6}}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	for _, extra := range [][]byte{{0x00}, {0xff, 0xfe}, bytes.Repeat([]byte{0xab}, 64)} {
		raw := append(append([]byte(nil), buf.Bytes()...), extra...)
		_, err := Load(bytes.NewReader(raw))
		if err == nil {
			t.Fatalf("%d trailing bytes: Load returned nil error", len(extra))
		}
		if want := fmt.Sprintf("%d bytes of trailing garbage", len(extra)); !bytes.Contains([]byte(err.Error()), []byte(want)) {
			t.Fatalf("%d trailing bytes: error %q does not name the garbage deterministically", len(extra), err)
		}
	}
	// Sanity: the unmodified snapshot still loads.
	if _, err := Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
}

// hookFS wraps a Mem and fires a callback before every Create — the
// window tests use it to run mutations at an exact point inside a
// rotation.
type hookFS struct {
	*fsx.Mem
	onCreate func(name string)
}

func (h *hookFS) Create(name string) (fsx.File, error) {
	if h.onCreate != nil {
		h.onCreate(name)
	}
	return h.Mem.Create(name)
}

// TestCheckpointWindowMutationSurvivesCrashBeforeRename: a mutation
// acknowledged while Checkpoint is writing the snapshot off-lock lives
// only in the freshly created wal-(g+1). If the process dies before the
// snapshot rename (the first operation that fsyncs the directory as a
// side effect), that log file's name must already be durable —
// otherwise the acknowledged mutation vanishes with the file.
func TestCheckpointWindowMutationSurvivesCrashBeforeRename(t *testing.T) {
	mem := fsx.NewMem()
	fs := &hookFS{Mem: mem}
	ix, err := openDurable(durableOpts(), fs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := ix.Insert(durPoint(i, 3)); err != nil {
			t.Fatal(err)
		}
	}
	// The snapshot tmp file is created after the log swap and before
	// the rename: exactly the window where a concurrent mutation acks
	// into the new log. Simulate one, then capture the crash state.
	var view *fsx.Mem
	fs.onCreate = func(name string) {
		if !strings.HasSuffix(name, ".tmp") || view != nil {
			return
		}
		if _, err := ix.Insert(durPoint(99, 3)); err != nil {
			t.Errorf("insert during checkpoint window: %v", err)
			return
		}
		view = mem.DurableView()
	}
	if err := ix.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if view == nil {
		t.Fatal("checkpoint never created a snapshot tmp file")
	}
	re, err := openDurable(durableOpts(), view)
	if err != nil {
		t.Fatalf("recovery from mid-checkpoint crash: %v", err)
	}
	got := tableOf(re)
	if len(got) != 6 || !reflect.DeepEqual(got[5], durPoint(99, 3)) {
		t.Fatalf("recovered %d slots: the mutation acked during the checkpoint window was lost", len(got))
	}
}

// TestRecoveryRefusesGapInLogChain: when the chain's base log is
// missing but a newer log survives, the newer records cannot be
// ordered against the recovered state. Recovery must refuse with
// ErrCorrupt instead of silently starting a fresh log at the gap (and
// later truncating the orphan via Create); Salvage drops the orphan
// explicitly.
func TestRecoveryRefusesGapInLogChain(t *testing.T) {
	fs := fsx.NewMem()
	ix, err := openDurable(durableOpts(), fs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := ix.Insert(durPoint(i, 3)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Checkpoint(); err != nil { // gen 1: snap-1 + wal-1
		t.Fatal(err)
	}
	snapState := tableOf(ix)
	for i := 5; i < 8; i++ {
		if _, err := ix.Insert(durPoint(i, 3)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Checkpoint(); err != nil { // gen 2: snap-2 + wal-2
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	// Damage: the newest snapshot and the base link wal-1 are gone, so
	// recovery starts from snap-1 — and wal-2 is unreachable across the
	// missing wal-1.
	if err := fs.Remove(snapName(2)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(walName(1)); err != nil {
		t.Fatal(err)
	}

	if _, err := openDurable(durableOpts(), fs); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("gapped log chain: %v, want ErrCorrupt", err)
	}

	salvageOpts := durableOpts()
	salvageOpts.Salvage = true
	re, err := openDurable(salvageOpts, fs)
	if err != nil {
		t.Fatalf("salvage open: %v", err)
	}
	if !reflect.DeepEqual(tableOf(re), snapState) {
		t.Fatal("salvage did not recover exactly the snapshot state")
	}
	info := re.Recovery()
	if !info.Salvaged || info.DroppedBytes == 0 {
		t.Fatalf("recovery info %+v, want Salvaged with dropped bytes", info)
	}
	// The orphan is gone: a second open (without salvage) is clean.
	if _, err := openDurable(durableOpts(), fs); err != nil {
		t.Fatalf("reopen after salvage: %v", err)
	}
}

// TestDeleteWALAppendFailureLeavesNoRecord: a delete whose log append
// fails must be refused without a trace — neither applied in memory
// nor present in the log — so the live index, the error, and any
// future recovery agree.
func TestDeleteWALAppendFailureLeavesNoRecord(t *testing.T) {
	fs := fsx.NewMem()
	ix, err := openDurable(durableOpts(), fs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := ix.Insert(durPoint(i, 3)); err != nil {
			t.Fatal(err)
		}
	}
	fs.FailWriteAt(fs.TotalWritten()) // the delete record's write fails whole
	if err := ix.Delete(2); err == nil {
		t.Fatal("Delete across injected write error returned nil error")
	}
	if ix.Len() != 4 {
		t.Fatalf("live count %d after refused delete, want 4", ix.Len())
	}
	// The refused delete is queryable and durable state has no record
	// of it.
	if got, _, err := ix.NN(durPoint(2, 3)); err != nil || got.ID != 2 {
		t.Fatalf("NN after refused delete: %v %v", got, err)
	}
	re, err := openDurable(durableOpts(), fs.FlushedView())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tableOf(re), tableOf(ix)) {
		t.Fatal("recovered state diverges from live state after a refused delete")
	}
	// The writer healed: the same delete succeeds and recovers cleanly.
	if err := ix.Delete(2); err != nil {
		t.Fatalf("Delete after self-heal: %v", err)
	}
	re2, err := openDurable(durableOpts(), fs.FlushedView())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tableOf(re2), tableOf(ix)) {
		t.Fatal("recovered state diverges after the healed delete")
	}
}
