package parsearch

import (
	"context"
	"fmt"
	"sort"

	"parsearch/internal/core"
	"parsearch/internal/vec"
)

// Reorganization implements the dynamic side of the paper's §4.3
// extensions: with Options.QuantileSplits the index keeps per-dimension
// distribution statistics as vectors are inserted (an AdaptiveSplitter
// with streaming P² quantile estimators); when the data drifts so far
// that some split's below/above ratio exceeds the threshold,
// NeedsReorganization reports true and Reorganize rebalances the disks —
// "we reorganize our data distribution using the new 0.5-quantile for
// each dimension".
//
// The reorganization is incremental: instead of rebuilding the whole
// index, it repeatedly finds the most overloaded disk, takes that disk's
// heaviest terminal bucket cell, and declusters it one level deeper with
// the recursive scheme — split at the medians of the cell's actual
// contents (quantile re-estimation, per cell), children re-colored
// across the disks. Only the points of the split cells move; every other
// cell, tree page, and the point table itself stay untouched. Each step
// is cut in atomically under the index write lock, so concurrent queries
// see either the old or the new structure, never a torn one — and since
// every structure answers queries exactly, results are identical either
// way. Bucket strategies that are not recursive yet are first wrapped
// via core.NewRecursiveOver, which changes no assignment at level 0;
// only the arrival-order round-robin layout, which has no bucket
// structure to split, still falls back to a full rebuild.

// imbalanceThreshold is the below/above ratio that triggers
// reorganization (2 = one side holds twice the other's points).
const imbalanceThreshold = 2.0

// reorgOverloadFactor is the per-disk load threshold relative to the
// ideal N/n beyond which a reorganization step splits a bucket — the
// same factor BuildRecursive uses.
const reorgOverloadFactor = 2.0

// reorgMaxLevels bounds the recursion depth of incremental expansions,
// matching DefaultRecursiveConfig.
const reorgMaxLevels = 8

// reorgMaxSteps bounds the incremental steps of one Reorganize call.
const reorgMaxSteps = 64

// observer returns the index's adaptive splitter, creating it on first
// use. Only meaningful with QuantileSplits. Caller holds meta.
func (ix *Index) observer() *core.AdaptiveSplitter {
	if ix.adaptive == nil {
		ix.adaptive = core.NewAdaptiveSplitter(ix.opts.Dim, 0.5, imbalanceThreshold)
	}
	return ix.adaptive
}

// NeedsReorganization reports whether inserted data has drifted far
// enough from the current split values that a Reorganize would
// rebalance the disks. Always false unless Options.QuantileSplits is
// set.
func (ix *Index) NeedsReorganization() bool {
	ix.meta.Lock()
	defer ix.meta.Unlock()
	if !ix.opts.QuantileSplits || ix.adaptive == nil {
		return false
	}
	return ix.adaptive.NeedsRebalance()
}

// ReorgStats reports what a Reorganize call did.
type ReorgStats struct {
	// Steps counts the incremental cut-ins applied (including a
	// strategy-wrapping step, which moves no points).
	Steps int
	// BucketsSplit counts the terminal bucket cells declustered one
	// level deeper; PointsMoved the vectors that changed disks.
	BucketsSplit int
	PointsMoved  int
	// Rebuilt reports the full-rebuild fallback ran (round-robin
	// layouts only).
	Rebuilt bool
	// Checkpointed reports that a durable index sealed the new
	// structure with a checkpoint, so a crash right after Reorganize
	// replays (almost) no log records.
	Checkpointed bool
}

// Reorganize rebalances the index over its current (live) contents by
// incrementally splitting overloaded bucket cells (see the package
// comment above). IDs are preserved. It is the explicit form of the
// paper's reorganization step; call it when NeedsReorganization reports
// true (or on a maintenance schedule). Queries and point mutations keep
// running throughout; each step's cut-in is atomic.
func (ix *Index) Reorganize() error {
	_, err := ix.ReorganizeStats()
	return err
}

// ReorganizeStats is Reorganize reporting what it did.
func (ix *Index) ReorganizeStats() (ReorgStats, error) {
	var stats ReorgStats
	for stats.Steps < reorgMaxSteps {
		plan, err := ix.reorganizeStep()
		if err != nil {
			return stats, err
		}
		if plan == nil {
			break // balanced (or nothing left to split)
		}
		stats.Steps++
		stats.BucketsSplit += plan.buckets
		stats.PointsMoved += plan.moved
		if plan.rebuild {
			stats.Rebuilt = true
			break
		}
	}

	// Seal the drift statistics: adopt the current quantile estimates as
	// the new reference splits and reset the below/above counters.
	// Discarding the splitter instead (the old behavior) made the next
	// observer restart at midpoints, so an index serving skewed data
	// re-triggered reorganization forever.
	ix.meta.Lock()
	if ix.adaptive != nil {
		ix.adaptive.Rebalance()
	}
	closed := ix.closed
	ix.meta.Unlock()

	sp := ix.newSpan(context.Background(), "reorganize")
	sp.emit(TraceEvent{Stage: StageReorg, Disk: -1, Item: -1,
		Results: stats.BucketsSplit, Pages: stats.PointsMoved})

	// A durable index seals the reorganized structure with a checkpoint:
	// recovery then starts from a snapshot of the new structure instead
	// of replaying the whole log onto a from-scratch rebuild.
	if ix.opts.Durable && !closed && stats.Steps > 0 {
		if err := ix.Checkpoint(); err != nil {
			return stats, fmt.Errorf("parsearch: sealing reorganization: %w", err)
		}
		stats.Checkpointed = true
	}
	return stats, nil
}

// reorgMove relocates one point into its post-split cell (and, when the
// re-coloring says so, onto another disk).
type reorgMove struct {
	id      int
	p       vec.Point
	oldDisk int
	newDisk int
	newKey  string
	newRect vec.Rect
}

// reorgPlan is one step's worth of change, computed off the lock against
// a pinned state + point-table snapshot and applied under the write
// lock (after a version re-check).
type reorgPlan struct {
	// rebuild: the layout has no bucket structure (round robin); fall
	// back to a full rebuild.
	rebuild bool
	// wrap: replace a bucket-strategy assigner with its recursive
	// wrapper (no point moves; level-0 assignments are identical).
	wrap *core.Recursive
	// next is the expanded assigner clone to cut in, oldKeys the cells
	// it empties, moves the per-point relocations.
	next    *core.Recursive
	oldKeys []string
	moves   []reorgMove
	buckets int
	moved   int
}

// reorganizeStep performs one incremental step: plan optimistically off
// the lock, then cut in atomically (re-planning under the locks if a
// mutation raced the planner). It returns nil when the disks are
// balanced or nothing splittable remains.
func (ix *Index) reorganizeStep() (*reorgPlan, error) {
	ix.mu.RLock()
	st := ix.st
	ix.meta.Lock()
	if ix.closed {
		ix.meta.Unlock()
		ix.mu.RUnlock()
		return nil, ErrClosed
	}
	v := ix.version
	points := append([]vec.Point(nil), ix.points...)
	ix.meta.Unlock()
	ix.mu.RUnlock()

	plan := ix.reorgPlanFor(st, points)
	if plan == nil {
		return nil, nil
	}
	if plan.rebuild {
		if err := ix.reorganizeRebuild(); err != nil {
			return nil, err
		}
		return plan, nil
	}

	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.meta.Lock()
	defer ix.meta.Unlock()
	if ix.closed {
		return nil, ErrClosed
	}
	if ix.st != st || ix.version != v {
		// The point table (or the whole state) changed while the
		// optimistic planner ran. Re-plan from the current contents
		// under the locks: slower (it blocks queries for the duration),
		// but atomic and lossless.
		st = ix.st
		plan = ix.reorgPlanFor(st, ix.points)
		if plan == nil {
			return nil, nil
		}
		if plan.rebuild {
			// The assigner kind cannot change between plans (Build
			// preserves it), so this is unreachable; fail loudly rather
			// than rebuild while holding the cutover lock.
			return nil, fmt.Errorf("parsearch: internal inconsistency: assigner became plain during reorganize")
		}
	}
	if err := ix.reorgApply(st, plan); err != nil {
		return nil, err
	}
	return plan, nil
}

// reorgPlanFor computes one step's plan against a consistent point-table
// snapshot: find the most overloaded disk, pick its heaviest terminal
// bucket level, and split every terminal cell of that (level, disk) at
// the per-dimension medians of its members. Returns nil when balanced
// (within one leaf page of the overload threshold) or stuck (overloaded
// but nothing expandable below the depth bound).
func (ix *Index) reorgPlanFor(st *state, points []vec.Point) *reorgPlan {
	n := ix.opts.Disks
	if n == 1 {
		return nil // nothing to decluster
	}
	live := 0
	for _, p := range points {
		if p != nil {
			live++
		}
	}
	if live == 0 {
		return nil
	}
	ideal := float64(live) / float64(n)
	// One leaf page of slack: a disk within a page of the threshold
	// cannot be meaningfully improved by moving points.
	slack := float64(ix.treeConfig().LeafCapacity)
	balanced := func(worst int) bool {
		return float64(worst) <= reorgOverloadFactor*ideal+slack
	}
	maxLoad := func(loads []int) int {
		m := 0
		for _, l := range loads {
			if l > m {
				m = l
			}
		}
		return m
	}

	rec, isRec := st.assigner.(*core.Recursive)
	if !isRec {
		// Plain per-point load scan for the non-recursive layouts.
		loads := make([]int, n)
		for i, p := range points {
			if p != nil {
				loads[st.assigner.Assign(i, p)]++
			}
		}
		if balanced(maxLoad(loads)) {
			return nil
		}
		if ba, ok := st.assigner.(*core.BucketAssigner); ok {
			return &reorgPlan{wrap: core.NewRecursiveOver(ba.Bucketer(), ba.Strategy())}
		}
		// Round robin (arrival order): no bucket structure to split.
		return &reorgPlan{rebuild: true}
	}

	// Pass 1: per-disk loads under the recursive assignment.
	diskLoads := make([]int, n)
	for _, p := range points {
		if p != nil {
			diskLoads[rec.AssignCell(p).Disk]++
		}
	}
	worst, worstLoad := 0, 0
	for d, l := range diskLoads {
		if l > worstLoad {
			worst, worstLoad = d, l
		}
	}
	if balanced(worstLoad) {
		return nil
	}

	// Pass 2: the worst disk's terminal cells, grouped by level.
	type member struct {
		id int
		p  vec.Point
	}
	type cellMembers struct {
		rect    vec.Rect
		members []member
	}
	cells := make(map[string]*cellMembers)
	levelCount := make(map[int]int)
	levelOf := make(map[string]int)
	for i, p := range points {
		if p == nil {
			continue
		}
		c := rec.AssignCell(p)
		if c.Disk != worst {
			continue
		}
		key := c.Key()
		cm := cells[key]
		if cm == nil {
			cm = &cellMembers{rect: c.Rect}
			cells[key] = cm
			levelOf[key] = c.Level
		}
		cm.members = append(cm.members, member{id: i, p: p})
		levelCount[c.Level]++
	}
	// The heaviest expandable terminal level of the worst disk, as in
	// BuildRecursive.
	bestLevel, bestCount := -1, 0
	for l, cnt := range levelCount {
		if l < reorgMaxLevels && cnt > bestCount {
			bestLevel, bestCount = l, cnt
		}
	}
	if bestLevel < 0 {
		return nil // overloaded but at the depth bound: stuck
	}

	// Expand (bestLevel, worst) on a clone and register each affected
	// cell's quantile sub-splits: the per-dimension medians of the
	// cell's actual members, so the split halves the real load instead
	// of the geometry.
	clone := rec.Clone()
	clone.Expand(bestLevel, worst)
	plan := &reorgPlan{next: clone}
	keys := make([]string, 0, len(cells))
	for key := range cells {
		if levelOf[key] == bestLevel {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys) // deterministic plan order
	dim := ix.opts.Dim
	coords := make([]float64, 0, 64)
	for _, key := range keys {
		cm := cells[key]
		splits := make([]float64, dim)
		for j := 0; j < dim; j++ {
			coords = coords[:0]
			for _, m := range cm.members {
				coords = append(coords, m.p[j])
			}
			sort.Float64s(coords)
			med := coords[(len(coords)-1)/2]
			if med > cm.rect.Min[j] && med < cm.rect.Max[j] {
				splits[j] = med
			} else {
				// Degenerate dimension: keep the midpoint.
				splits[j] = (cm.rect.Min[j] + cm.rect.Max[j]) / 2
			}
		}
		clone.SetSubSplits(key, splits)
		plan.oldKeys = append(plan.oldKeys, key)
		plan.buckets++
		for _, m := range cm.members {
			c2 := clone.AssignCell(m.p)
			plan.moves = append(plan.moves, reorgMove{
				id: m.id, p: m.p,
				oldDisk: worst, newDisk: c2.Disk,
				newKey: c2.Key(), newRect: c2.Rect,
			})
			if c2.Disk != worst {
				plan.moved++
			}
		}
	}
	return plan
}

// reorgApply cuts one plan in. Caller holds mu (write) and meta, and has
// verified the plan was computed against the current state and version.
func (ix *Index) reorgApply(st *state, plan *reorgPlan) error {
	n := ix.opts.Disks
	if plan.wrap != nil {
		// Wrapping changes no disk assignment (level 0 is colored by the
		// same strategy), so the trees stay as they are; only the cell
		// table switches to recursive path keys.
		st.assigner = plan.wrap
		st.cells = nil
		st.cellIndex = make(map[string]int)
		for i, p := range ix.points {
			if p == nil {
				continue
			}
			d, key, rect := ix.assignCell(st, i, p)
			addToCell(st, key, d, rect)
		}
		ix.version++
		return nil
	}

	// Swap the assigner first so assignCell (and any error path below)
	// agrees with the new cell table; queries are excluded by mu.
	st.assigner = plan.next
	for _, key := range plan.oldKeys {
		if idx, ok := st.cellIndex[key]; ok {
			st.cells[idx].count = 0
		}
	}
	for _, mv := range plan.moves {
		addToCell(st, mv.newKey, mv.newDisk, mv.newRect)
		if mv.newDisk == mv.oldDisk {
			continue
		}
		sh := st.shards[mv.oldDisk]
		sh.mu.Lock()
		ok := sh.tree.Delete(mv.p, mv.id)
		sh.mu.Unlock()
		if !ok {
			return fmt.Errorf("parsearch: internal inconsistency: id %d not on disk %d during reorganize", mv.id, mv.oldDisk)
		}
		nsh := st.shards[mv.newDisk]
		nsh.mu.Lock()
		nsh.tree.Insert(mv.p, mv.id)
		nsh.mu.Unlock()
		if st.replicas != nil {
			rsh := st.replicas[replicaOf(mv.oldDisk, n)]
			rsh.mu.Lock()
			ok := rsh.tree.Delete(mv.p, mv.id)
			rsh.mu.Unlock()
			if !ok {
				return fmt.Errorf("parsearch: internal inconsistency: id %d not in disk %d's replica during reorganize", mv.id, mv.oldDisk)
			}
			nrsh := st.replicas[replicaOf(mv.newDisk, n)]
			nrsh.mu.Lock()
			nrsh.tree.Insert(mv.p, mv.id)
			nrsh.mu.Unlock()
		}
		// The baseline tree is disk-agnostic: nothing to move.
	}
	ix.version++
	ix.reg.ReorgBuckets.Add(int64(plan.buckets))
	return nil
}

// reorganizeRebuild is the full-rebuild fallback for layouts without
// bucket structure: rebuild off the lock against a consistent copy of
// the point table and cut the result in atomically (re-building under
// the locks if a mutation raced it — slower, but lossless).
func (ix *Index) reorganizeRebuild() error {
	ix.meta.Lock()
	if ix.closed {
		ix.meta.Unlock()
		return ErrClosed
	}
	points := snapshotPoints(ix.points)
	v := ix.version
	ix.meta.Unlock()

	st, pts, live, err := ix.buildState(points)
	if err != nil {
		return fmt.Errorf("parsearch: reorganizing: %w", err)
	}

	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.meta.Lock()
	defer ix.meta.Unlock()
	if ix.closed {
		return ErrClosed
	}
	if ix.version != v {
		st, pts, live, err = ix.buildState(snapshotPoints(ix.points))
		if err != nil {
			return fmt.Errorf("parsearch: reorganizing: %w", err)
		}
	}
	ix.st = st
	ix.points = pts
	ix.live = live
	ix.version++
	return nil
}

// snapshotPoints copies the point table's slice (the vectors themselves
// are immutable once stored, so sharing them is safe). Build clones;
// tombstones stay nil. Caller holds meta.
func snapshotPoints(points []vec.Point) [][]float64 {
	out := make([][]float64, len(points))
	for i, p := range points {
		out[i] = p
	}
	return out
}
