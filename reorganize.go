package parsearch

import (
	"fmt"

	"parsearch/internal/core"
	"parsearch/internal/vec"
)

// Reorganization implements the dynamic side of the paper's §4.3
// extensions: with Options.QuantileSplits the index keeps per-dimension
// distribution statistics as vectors are inserted (an AdaptiveSplitter
// with streaming P² quantile estimators); when the data drifts so far
// that some split's below/above ratio exceeds the threshold,
// NeedsReorganization reports true and Reorganize rebuilds the index
// with fresh split values — "we reorganize our data distribution using
// the new 0.5-quantile for each dimension".

// imbalanceThreshold is the below/above ratio that triggers
// reorganization (2 = one side holds twice the other's points).
const imbalanceThreshold = 2.0

// observer returns the index's adaptive splitter, creating it on first
// use. Only meaningful with QuantileSplits. Caller holds meta.
func (ix *Index) observer() *core.AdaptiveSplitter {
	if ix.adaptive == nil {
		ix.adaptive = core.NewAdaptiveSplitter(ix.opts.Dim, 0.5, imbalanceThreshold)
	}
	return ix.adaptive
}

// NeedsReorganization reports whether inserted data has drifted far
// enough from the current split values that a Reorganize would
// rebalance the disks. Always false unless Options.QuantileSplits is
// set.
func (ix *Index) NeedsReorganization() bool {
	ix.meta.Lock()
	defer ix.meta.Unlock()
	if !ix.opts.QuantileSplits || ix.adaptive == nil {
		return false
	}
	return ix.adaptive.NeedsRebalance()
}

// Reorganize rebuilds the index over its current (live) contents,
// recomputing quantile splits and recursive expansions from today's
// data. IDs are preserved. It is the explicit form of the paper's
// reorganization step; call it when NeedsReorganization reports true (or
// on a maintenance schedule).
//
// The rebuild runs off the lock against a consistent copy of the point
// table, so queries and point mutations keep running meanwhile; the
// finished structure is cut in atomically. If vectors were inserted or
// deleted while the rebuild was in flight, the conflict is detected via
// the mutation version counter and the index is rebuilt once more under
// the write lock — no concurrent mutation is ever lost.
func (ix *Index) Reorganize() error {
	ix.meta.Lock()
	points := snapshotPoints(ix.points)
	v := ix.version
	ix.meta.Unlock()

	st, pts, live, err := ix.buildState(points)
	if err != nil {
		return fmt.Errorf("parsearch: reorganizing: %w", err)
	}

	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.meta.Lock()
	defer ix.meta.Unlock()
	if ix.version != v {
		// The point table changed while the optimistic rebuild ran.
		// Rebuild from the current table under the locks: slower (it
		// blocks queries for the duration), but atomic and lossless.
		st, pts, live, err = ix.buildState(snapshotPoints(ix.points))
		if err != nil {
			return fmt.Errorf("parsearch: reorganizing: %w", err)
		}
	}
	ix.st = st
	ix.points = pts
	ix.live = live
	ix.adaptive = nil
	ix.version++
	return nil
}

// snapshotPoints copies the point table's slice (the vectors themselves
// are immutable once stored, so sharing them is safe). Build clones;
// tombstones stay nil. Caller holds meta.
func snapshotPoints(points []vec.Point) [][]float64 {
	out := make([][]float64, len(points))
	for i, p := range points {
		out[i] = p
	}
	return out
}
