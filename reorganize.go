package parsearch

import (
	"fmt"

	"parsearch/internal/core"
)

// Reorganization implements the dynamic side of the paper's §4.3
// extensions: with Options.QuantileSplits the index keeps per-dimension
// distribution statistics as vectors are inserted (an AdaptiveSplitter
// with streaming P² quantile estimators); when the data drifts so far
// that some split's below/above ratio exceeds the threshold,
// NeedsReorganization reports true and Reorganize rebuilds the index
// with fresh split values — "we reorganize our data distribution using
// the new 0.5-quantile for each dimension".

// imbalanceThreshold is the below/above ratio that triggers
// reorganization (2 = one side holds twice the other's points).
const imbalanceThreshold = 2.0

// observer returns the index's adaptive splitter, creating it on first
// use. Only meaningful with QuantileSplits.
func (ix *Index) observer() *core.AdaptiveSplitter {
	if ix.adaptive == nil {
		ix.adaptive = core.NewAdaptiveSplitter(ix.opts.Dim, 0.5, imbalanceThreshold)
	}
	return ix.adaptive
}

// NeedsReorganization reports whether inserted data has drifted far
// enough from the current split values that a Reorganize would
// rebalance the disks. Always false unless Options.QuantileSplits is
// set.
func (ix *Index) NeedsReorganization() bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if !ix.opts.QuantileSplits || ix.adaptive == nil {
		return false
	}
	return ix.adaptive.NeedsRebalance()
}

// Reorganize rebuilds the index over its current (live) contents,
// recomputing quantile splits and recursive expansions from today's
// data. IDs are preserved. It is the explicit form of the paper's
// reorganization step; call it when NeedsReorganization reports true (or
// on a maintenance schedule).
func (ix *Index) Reorganize() error {
	ix.mu.Lock()
	points := make([][]float64, len(ix.points))
	for i, p := range ix.points {
		points[i] = p // Build clones; tombstones stay nil
	}
	ix.adaptive = nil
	ix.mu.Unlock()
	if err := ix.Build(points); err != nil {
		return fmt.Errorf("parsearch: reorganizing: %w", err)
	}
	return nil
}
