// Benchmark harness: one testing.B benchmark per paper figure (and per
// ablation), each wrapping the corresponding experiment from
// internal/exp at a reduced scale so the full suite stays runnable. The
// headline value of each figure is attached as a custom benchmark metric;
// full-scale numbers are produced with cmd/experiments and recorded in
// EXPERIMENTS.md.
package parsearch_test

import (
	"context"
	"math/rand"
	"testing"

	"parsearch"
	"parsearch/internal/exp"
)

// benchConfig keeps every figure benchmark fast enough for -bench=.
func benchConfig() exp.Config {
	return exp.Config{Scale: 0.25, Queries: 5, Seed: 42}
}

// runExperiment executes the experiment b.N times and reports the given
// series' last y value (typically the 16-disk end of a sweep) as metric.
func runExperiment(b *testing.B, id string, series int, metric string) {
	e, ok := exp.Get(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	var last exp.Result
	for i := 0; i < b.N; i++ {
		last = e.Run(benchConfig())
	}
	if series < len(last.Series) && len(last.Series[series].Y) > 0 {
		y := last.Series[series].Y
		b.ReportMetric(y[len(y)-1], metric)
	}
}

func BenchmarkFig01SequentialDegeneration(b *testing.B) {
	runExperiment(b, "fig1", 0, "pages@d16")
}

func BenchmarkFig02RoundRobinSpeedup(b *testing.B) {
	runExperiment(b, "fig2", 0, "speedup@16disks")
}

func BenchmarkFig03HilbertOverRR(b *testing.B) {
	runExperiment(b, "fig3", 0, "factor@16disks")
}

func BenchmarkFig03bHilbertOverRRDataSize(b *testing.B) {
	runExperiment(b, "fig3b", 0, "factor@maxN")
}

func BenchmarkFig05SurfaceProbability(b *testing.B) {
	runExperiment(b, "fig5", 0, "p@d100")
}

func BenchmarkFig07CounterExamples(b *testing.B) {
	runExperiment(b, "fig7", 0, "violations@new")
}

func BenchmarkFig10ColorStaircase(b *testing.B) {
	runExperiment(b, "fig10", 0, "colors@d32")
}

func BenchmarkFig12NewTechniqueSpeedup(b *testing.B) {
	runExperiment(b, "fig12", 0, "speedup@16disks")
}

func BenchmarkFig13FourierSpeedup(b *testing.B) {
	runExperiment(b, "fig13", 0, "newNN@16disks")
}

func BenchmarkFig14ImprovementFactor(b *testing.B) {
	runExperiment(b, "fig14", 0, "factor@16disks")
}

func BenchmarkFig15ScaleUp(b *testing.B) {
	runExperiment(b, "fig15", 0, "ms@16disks")
}

func BenchmarkFig16RecursiveDeclustering(b *testing.B) {
	runExperiment(b, "fig16", 1, "extMS@10nn")
}

func BenchmarkFig17TextData(b *testing.B) {
	runExperiment(b, "fig17", 0, "newMS@10nn")
}

func BenchmarkAblKNNAlgorithms(b *testing.B) {
	runExperiment(b, "abl-knn", 0, "hsPages@d16")
}

func BenchmarkAblIndirectNeighbors(b *testing.B) {
	runExperiment(b, "abl-indirect", 0, "colMax@16disks")
}

func BenchmarkAblFolding(b *testing.B) {
	runExperiment(b, "abl-fold", 0, "collisions@13disks")
}

func BenchmarkAblQuantileSplits(b *testing.B) {
	runExperiment(b, "abl-quantile", 1, "quantMax@10nn")
}

func BenchmarkAblCostModel(b *testing.B) {
	runExperiment(b, "abl-costmodel", 0, "treeMax@RR")
}

func BenchmarkAblSupernodes(b *testing.B) {
	runExperiment(b, "abl-supernode", 0, "pages@d16")
}

// Engine micro-benchmarks: the public API's hot paths.

func benchIndex(b *testing.B, kind parsearch.Kind, n, d, disks int) *parsearch.Index {
	b.Helper()
	ix, err := parsearch.Open(parsearch.Options{Dim: d, Disks: disks, Kind: kind})
	if err != nil {
		b.Fatal(err)
	}
	pts := make([][]float64, n)
	rng := newBenchRand()
	for i := range pts {
		p := make([]float64, d)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	if err := ix.Build(pts); err != nil {
		b.Fatal(err)
	}
	return ix
}

func BenchmarkIndexBuild64k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchIndex(b, parsearch.NearOptimal, 65536, 10, 16)
	}
}

func BenchmarkKNNQuery(b *testing.B) {
	ix := benchIndex(b, parsearch.NearOptimal, 65536, 10, 16)
	rng := newBenchRand()
	q := make([]float64, 10)
	for j := range q {
		q[j] = rng.Float64()
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := ix.KNN(q, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInsertDynamic(b *testing.B) {
	ix, err := parsearch.Open(parsearch.Options{Dim: 10, Disks: 16})
	if err != nil {
		b.Fatal(err)
	}
	rng := newBenchRand()
	pts := make([][]float64, b.N)
	for i := range pts {
		p := make([]float64, 10)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Insert(pts[i]); err != nil {
			b.Fatal(err)
		}
	}
}

// newBenchRand gives benchmarks a fixed-seed source.
func newBenchRand() *rand.Rand { return rand.New(rand.NewSource(99)) }

func BenchmarkExtPartialMatch(b *testing.B) {
	runExperiment(b, "ext-partialmatch", 0, "maxPages@FX")
}

func BenchmarkExtThroughput(b *testing.B) {
	runExperiment(b, "ext-throughput", 0, "qps@RR")
}

func BenchmarkExtQueueing(b *testing.B) {
	runExperiment(b, "ext-queueing", 0, "newRespMS@fullLoad")
}

func BenchmarkAblGreedyColoring(b *testing.B) {
	runExperiment(b, "abl-greedy", 1, "greedyColors@d13")
}

func BenchmarkExtModelValidation(b *testing.B) {
	runExperiment(b, "ext-model", 2, "measPages@d12")
}

func BenchmarkExtHilbert2D(b *testing.B) {
	runExperiment(b, "ext-hilbert2d", 0, "hilRatio@16disks")
}

func BenchmarkAblTreeQuality(b *testing.B) {
	runExperiment(b, "abl-quality", 0, "insOverlap@d16")
}

// --- Observability benchmarks -------------------------------------
//
// The harness workloads (see internal/exp.RunBench and the
// cmd/experiments bench subcommand), wrapped as testing.B benchmarks:
// `go test -bench 'Observability|Traced'` gives the same ns/op view as
// BENCH_parsearch.json, and the Traced/Untraced pair bounds the cost
// of the tracing layer itself.

// benchIndex builds the harness's 16-disk index at reduced scale.
func obsBenchIndex(b *testing.B, opts parsearch.Options, n int) (*parsearch.Index, [][]float64) {
	b.Helper()
	ix, err := parsearch.Open(opts)
	if err != nil {
		b.Fatal(err)
	}
	rng := newBenchRand()
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, opts.Dim)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	if err := ix.Build(pts); err != nil {
		b.Fatal(err)
	}
	queries := make([][]float64, 16)
	for i := range queries {
		q := make([]float64, opts.Dim)
		for j := range q {
			q[j] = rng.Float64()
		}
		queries[i] = q
	}
	return ix, queries
}

func benchKNNLoop(b *testing.B, ix *parsearch.Index, queries [][]float64) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ix.KNN(queries[i%len(queries)], 10); err != nil {
			b.Fatal(err)
		}
	}
	m := ix.Metrics()
	if m.QueriesKNN > 0 {
		b.ReportMetric(float64(m.PagesRead)/float64(m.QueriesKNN), "pages/query")
		b.ReportMetric(m.Balance, "balance@16disks")
	}
}

func BenchmarkObservabilityKNN16Untraced(b *testing.B) {
	ix, queries := obsBenchIndex(b, parsearch.Options{Dim: 8, Disks: 16}, 4000)
	benchKNNLoop(b, ix, queries)
}

func BenchmarkObservabilityKNN16Traced(b *testing.B) {
	ix, queries := obsBenchIndex(b, parsearch.Options{Dim: 8, Disks: 16}, 4000)
	var events int64
	tr := parsearch.TracerFunc(func(parsearch.TraceEvent) { events++ })
	ctx := parsearch.WithTracer(context.Background(), tr)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ix.KNNContext(ctx, queries[i%len(queries)], 10); err != nil {
			b.Fatal(err)
		}
	}
	if events == 0 {
		b.Fatal("tracer saw no events")
	}
}

func BenchmarkObservabilityRange16(b *testing.B) {
	ix, queries := obsBenchIndex(b, parsearch.Options{Dim: 8, Disks: 16}, 4000)
	lo, hi := make([]float64, 8), make([]float64, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := queries[i%len(queries)]
		for j := range lo {
			lo[j], hi[j] = c[j]-0.2, c[j]+0.2
		}
		if _, _, err := ix.RangeQuery(lo, hi); err != nil {
			b.Fatal(err)
		}
	}
}

// The cooperative-pruning pair (see DESIGN.md "Cooperative pruning"
// and the knn16/knn16-indep workloads of internal/exp.RunBench): same
// index data and queries, with and without the shared cross-disk
// bound. The searchpages/query gap is what the bound saves.

func benchSharedBoundLoop(b *testing.B, ix *parsearch.Index, queries [][]float64) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ix.KNN(queries[i%len(queries)], 10); err != nil {
			b.Fatal(err)
		}
	}
	m := ix.Metrics()
	if m.QueriesKNN > 0 {
		b.ReportMetric(float64(m.SearchPages)/float64(m.QueriesKNN), "searchpages/query")
		b.ReportMetric(float64(m.PagesSavedByBound)/float64(m.QueriesKNN), "savedpages/query")
	}
}

func BenchmarkKNNSharedBound(b *testing.B) {
	ix, queries := obsBenchIndex(b, parsearch.Options{Dim: 8, Disks: 16}, 4000)
	benchSharedBoundLoop(b, ix, queries)
}

func BenchmarkKNNIndependent(b *testing.B) {
	ix, queries := obsBenchIndex(b, parsearch.Options{Dim: 8, Disks: 16, DisableSharedBound: true}, 4000)
	benchSharedBoundLoop(b, ix, queries)
}

func BenchmarkObservabilityBatch16(b *testing.B) {
	ix, queries := obsBenchIndex(b, parsearch.Options{Dim: 8, Disks: 16}, 4000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ix.BatchKNN(queries, 10); err != nil {
			b.Fatal(err)
		}
	}
	m := ix.Metrics()
	b.ReportMetric(float64(m.PagesRead)/float64(m.BatchQueries), "pages/query")
}
