package parsearch

import (
	"os"
	"testing"

	"parsearch/internal/data"
)

// TestGenPreSlabGolden regenerates testdata/pre_slab_golden.snap. Run
// manually with PARSEARCH_GEN_GOLDEN=1; kept out of normal runs so the
// committed golden bytes stay frozen.
func TestGenPreSlabGolden(t *testing.T) {
	if os.Getenv("PARSEARCH_GEN_GOLDEN") == "" {
		t.Skip("set PARSEARCH_GEN_GOLDEN=1 to regenerate")
	}
	ix, err := Open(Options{Dim: 8, Disks: 4, Replication: 1})
	if err != nil {
		t.Fatal(err)
	}
	pts := data.Uniform(500, 8, 42)
	// Pre-round to float32 so the golden data is representable exactly
	// in both the float64 and any future packed load path.
	for _, p := range pts {
		for j := range p {
			p[j] = float64(float32(p[j]))
		}
	}
	if err := ix.Build(pts); err != nil {
		t.Fatal(err)
	}
	if err := ix.Delete(7); err != nil { // one tombstone for slot coverage
		t.Fatal(err)
	}
	f, err := os.Create("testdata/pre_slab_golden.snap")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := ix.Save(f); err != nil {
		t.Fatal(err)
	}
}
