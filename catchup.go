package parsearch

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// Snapshot+delta shipping: a cold replica (or a restarted parsearchd)
// catches up from a leader's durable directory contents instead of
// re-ingesting everything. The leader serves, per request, the byte
// suffix of the generation chain the follower is missing: if the
// follower's newest WAL generation is still on the leader, the delta is
// just the new log bytes (plus any newer generations in full); if the
// follower is too far behind — its generation was pruned — the leader
// resets it to the newest snapshot plus the logs above it. Applying the
// delta to the follower's directory yields a prefix of the leader's
// durable state that Open's standard recovery replays; repeated rounds
// converge to the leader's synced cut.
//
// The protocol ships only bytes the leader has made durable (the synced
// WAL prefix), so a follower can never get ahead of what the leader
// would itself recover to after a crash.

// CatchupFile is one file fragment of a delta: Data belongs at Offset
// of Name (Offset 0 creates/replaces the file).
type CatchupFile struct {
	Name   string `json:"name"`
	Offset int64  `json:"offset"`
	Data   []byte `json:"data"`
}

// CatchupDelta is a leader's answer to one catch-up round.
type CatchupDelta struct {
	// Gen is the leader's current generation; NextOffset the synced
	// length of wal-Gen the delta reaches. A follower polls with
	// (have=true, Gen, NextOffset) for the next round.
	Gen        uint64 `json:"gen"`
	NextOffset int64  `json:"next_offset"`
	// Reset reports that the follower's chain position was unusable
	// (never seeded, diverged, or pruned): the delta replaces the
	// follower's durable files instead of extending them.
	Reset bool `json:"reset,omitempty"`
	// Files are applied in order.
	Files []CatchupFile `json:"files"`
}

// Catchup serves one catch-up round from this index's durable
// directory. A follower that has no state passes have=false; otherwise
// gen/offset name the follower's newest WAL generation and its local
// length. The call runs under the checkpoint lock, so the served chain
// cannot rotate or be pruned mid-read; queries and mutations are not
// blocked (mutations appended after the synced cut simply ride the next
// round).
func (ix *Index) Catchup(have bool, gen uint64, offset int64) (CatchupDelta, error) {
	if !ix.opts.Durable {
		return CatchupDelta{}, fmt.Errorf("parsearch: Catchup on a non-durable index")
	}
	if offset < 0 {
		return CatchupDelta{}, fmt.Errorf("parsearch: negative catch-up offset %d", offset)
	}
	ix.ckptMu.Lock()
	defer ix.ckptMu.Unlock()

	ix.meta.Lock()
	w, cur := ix.wal, ix.gen
	ix.meta.Unlock()
	// Everything up to the cut is durable on the leader and safe to
	// ship. (On a closed index the writer is fully synced already and
	// Sync is a no-op.)
	if err := w.Sync(); err != nil {
		return CatchupDelta{}, fmt.Errorf("parsearch: syncing wal for catch-up: %w", err)
	}
	cut := w.Synced()

	delta := CatchupDelta{Gen: cur, NextOffset: cut}
	var total int64
	if have && gen <= cur {
		files, ok, err := ix.catchupTail(gen, offset, cur, cut)
		if err != nil {
			return CatchupDelta{}, err
		}
		if ok {
			delta.Files = files
			for _, f := range files {
				total += int64(len(f.Data))
			}
			ix.reg.CatchupBytes.Add(total)
			sp := ix.newSpan(context.Background(), "catchup")
			sp.emit(TraceEvent{Stage: StageCatchup, Disk: -1, Item: -1,
				Results: len(delta.Files), Pages: int(total)})
			return delta, nil
		}
		// Fall through: the follower's position is gone or diverged.
	}

	// Reset: the newest snapshot at or below the current generation,
	// plus every log above it. With no snapshot at all the chain starts
	// at wal-0, which always exists.
	delta.Reset = true
	base, haveSnap, err := ix.newestSnapshot(cur)
	if err != nil {
		return CatchupDelta{}, err
	}
	if haveSnap {
		data, err := ix.fs.ReadFile(snapName(base))
		if err != nil {
			return CatchupDelta{}, fmt.Errorf("parsearch: reading %s for catch-up: %w", snapName(base), err)
		}
		delta.Files = append(delta.Files, CatchupFile{Name: snapName(base), Data: data})
	} else {
		base = 0
	}
	files, ok, err := ix.catchupTail(base, 0, cur, cut)
	if err != nil {
		return CatchupDelta{}, err
	}
	if !ok {
		return CatchupDelta{}, fmt.Errorf("parsearch: generation chain %d..%d incomplete during catch-up", base, cur)
	}
	delta.Files = append(delta.Files, files...)
	for _, f := range delta.Files {
		total += int64(len(f.Data))
	}
	ix.reg.CatchupBytes.Add(total)
	sp := ix.newSpan(context.Background(), "catchup")
	sp.emit(TraceEvent{Stage: StageCatchup, Disk: -1, Item: -1,
		Results: len(delta.Files), Pages: int(total)})
	return delta, nil
}

// catchupTail collects wal-from[offset:] through wal-cur[:cut]. ok is
// false when the follower's position cannot be extended: wal-from was
// pruned, or the follower's file is longer than the leader's (the
// leader truncated a torn tail the follower had already copied).
// Caller holds ckptMu.
func (ix *Index) catchupTail(from uint64, offset int64, cur uint64, cut int64) ([]CatchupFile, bool, error) {
	var files []CatchupFile
	for g := from; g <= cur; g++ {
		data, err := ix.fs.ReadFile(walName(g))
		if err != nil {
			if g == from && errors.Is(err, fs.ErrNotExist) {
				return nil, false, nil // pruned below the follower
			}
			return nil, false, fmt.Errorf("parsearch: reading %s for catch-up: %w", walName(g), err)
		}
		end := int64(len(data))
		if g == cur && cut < end {
			// Never ship bytes beyond the synced cut: the leader itself
			// would not recover them after a crash.
			end = cut
		}
		start := int64(0)
		if g == from {
			start = offset
			if start > end {
				return nil, false, nil // diverged (leader shorter than follower)
			}
		}
		if start < end || g > from {
			files = append(files, CatchupFile{Name: walName(g), Offset: start, Data: data[start:end]})
		}
	}
	return files, true, nil
}

// newestSnapshot returns the highest snapshot generation at or below
// max. Caller holds ckptMu.
func (ix *Index) newestSnapshot(max uint64) (gen uint64, ok bool, err error) {
	names, err := ix.fs.List()
	if err != nil {
		return 0, false, fmt.Errorf("parsearch: listing durable dir for catch-up: %w", err)
	}
	for _, name := range names {
		g, isSnap := parseGen(name, snapPrefix, snapSuffix)
		if isSnap && g <= max && (!ok || g > gen) {
			gen, ok = g, true
		}
	}
	return gen, ok, nil
}

// CatchupScan inspects a follower's durable directory and returns the
// position to request: the newest local WAL generation and its length.
// A missing or empty directory yields have=false (full reset requested).
func CatchupScan(dir string) (have bool, gen uint64, offset int64, err error) {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, fs.ErrNotExist) {
		return false, 0, 0, nil
	}
	if err != nil {
		return false, 0, 0, fmt.Errorf("parsearch: scanning %s: %w", dir, err)
	}
	for _, e := range entries {
		g, ok := parseGen(e.Name(), walPrefix, walSuffix)
		if !ok {
			continue
		}
		if !have || g > gen {
			info, err := e.Info()
			if err != nil {
				return false, 0, 0, fmt.Errorf("parsearch: scanning %s: %w", dir, err)
			}
			have, gen, offset = true, g, info.Size()
		}
	}
	return have, gen, offset, nil
}

// CatchupApply installs one delta into a follower's durable directory
// (creating it if needed). On Reset it first removes the follower's
// snapshot and WAL files. Every fragment is verified to extend the
// local file exactly at its offset — a mismatch aborts with an error
// before anything is corrupted — and the files are fsynced, so a
// subsequent Open recovers the shipped state even after a crash.
func CatchupApply(dir string, delta CatchupDelta) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("parsearch: %w", err)
	}
	if delta.Reset {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return fmt.Errorf("parsearch: %w", err)
		}
		for _, e := range entries {
			name := e.Name()
			_, isSnap := parseGen(name, snapPrefix, snapSuffix)
			_, isWAL := parseGen(name, walPrefix, walSuffix)
			if isSnap || isWAL {
				if err := os.Remove(filepath.Join(dir, name)); err != nil {
					return fmt.Errorf("parsearch: resetting follower: %w", err)
				}
			}
		}
	}
	for _, f := range delta.Files {
		// Only chain files with well-formed names may be written — the
		// delta came off the wire.
		_, isSnap := parseGen(f.Name, snapPrefix, snapSuffix)
		_, isWAL := parseGen(f.Name, walPrefix, walSuffix)
		if !isSnap && !isWAL || f.Name != filepath.Base(f.Name) {
			return fmt.Errorf("parsearch: refusing catch-up file %q", f.Name)
		}
		if f.Offset < 0 {
			return fmt.Errorf("parsearch: negative offset for catch-up file %q", f.Name)
		}
		path := filepath.Join(dir, f.Name)
		if err := applyFragment(path, f); err != nil {
			return err
		}
	}
	// Make the new directory entries themselves durable.
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("parsearch: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("parsearch: syncing %s: %w", dir, err)
	}
	return nil
}

// applyFragment writes one delta fragment at its verified offset and
// fsyncs the file.
func applyFragment(path string, f CatchupFile) error {
	flags := os.O_WRONLY | os.O_CREATE
	if f.Offset == 0 {
		flags |= os.O_TRUNC
	} else {
		info, err := os.Stat(path)
		if err != nil {
			return fmt.Errorf("parsearch: catch-up fragment for %s: %w", path, err)
		}
		if info.Size() != f.Offset {
			return fmt.Errorf("parsearch: catch-up fragment for %s at offset %d, file has %d bytes",
				path, f.Offset, info.Size())
		}
	}
	fl, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return fmt.Errorf("parsearch: %w", err)
	}
	if f.Offset > 0 {
		if _, err := fl.Seek(f.Offset, 0); err != nil {
			fl.Close()
			return fmt.Errorf("parsearch: %w", err)
		}
	}
	if _, err := fl.Write(f.Data); err != nil {
		fl.Close()
		return fmt.Errorf("parsearch: writing %s: %w", path, err)
	}
	if err := fl.Sync(); err != nil {
		fl.Close()
		return fmt.Errorf("parsearch: syncing %s: %w", path, err)
	}
	return fl.Close()
}
