module parsearch

go 1.22
