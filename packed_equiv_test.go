package parsearch

import (
	"fmt"
	"math"
	"testing"

	"parsearch/internal/data"
)

// The packed-storage equivalence battery: a packed index (contiguous
// float32 slabs, batched kernels) must return byte-identical results to
// the float64 reference path on the same data, across every query kind,
// metric, replication setting, and failure state — and its cost
// accounting must agree exactly. The input coordinates are pre-rounded
// to float32, so the reference index holds the same float64 values
// packed mode's ingest rounding produces and any difference is a kernel
// bug, not a representation gap.

// roundF32 rounds every coordinate through float32, the packed ingest
// contract, so reference and packed indexes see identical values.
func roundF32(pts [][]float64) [][]float64 {
	out := make([][]float64, len(pts))
	for i, p := range pts {
		q := make([]float64, len(p))
		for j, x := range p {
			q[j] = float64(float32(x))
		}
		out[i] = q
	}
	return out
}

// sameNeighbor compares two neighbors bit for bit. Plain == would
// reject the NaN distances partial-match results carry (the box center
// of a wildcard query is NaN), so floats compare by their IEEE bits.
func sameNeighbor(a, b Neighbor) bool {
	if a.ID != b.ID || len(a.Point) != len(b.Point) {
		return false
	}
	if math.Float64bits(a.Dist) != math.Float64bits(b.Dist) {
		return false
	}
	for j := range a.Point {
		if math.Float64bits(a.Point[j]) != math.Float64bits(b.Point[j]) {
			return false
		}
	}
	return true
}

func sameNeighbors(a, b []Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !sameNeighbor(a[i], b[i]) {
			return false
		}
	}
	return true
}

func rawPoints(n, dim int, seed int64) [][]float64 {
	pts := data.Uniform(n, dim, seed)
	raw := make([][]float64, len(pts))
	for i := range pts {
		raw[i] = pts[i]
	}
	return roundF32(raw)
}

// checkStatsParity compares the deterministic cost fields of one query
// run on the reference and packed indexes. The visited/saved split of
// the cooperative fan-out is timing-dependent, but the sum is exact, so
// shared-bound mode compares the sum; independent mode compares
// SearchPages directly (no pruning, fully deterministic).
func checkStatsParity(t *testing.T, label string, ref, packed QueryStats, shared bool) {
	t.Helper()
	if ref.TotalPages != packed.TotalPages || ref.MaxPages != packed.MaxPages {
		t.Fatalf("%s: page accounting differs: ref total=%d max=%d, packed total=%d max=%d",
			label, ref.TotalPages, ref.MaxPages, packed.TotalPages, packed.MaxPages)
	}
	if ref.Unreachable != packed.Unreachable || ref.Rerouted != packed.Rerouted || ref.Degraded != packed.Degraded {
		t.Fatalf("%s: fault accounting differs: ref %+v packed %+v", label, ref, packed)
	}
	if shared {
		refSum := ref.SearchPages + ref.PagesSavedByBound
		packedSum := packed.SearchPages + packed.PagesSavedByBound
		if refSum != packedSum {
			t.Fatalf("%s: visited+saved differs: ref %d+%d=%d, packed %d+%d=%d",
				label, ref.SearchPages, ref.PagesSavedByBound, refSum,
				packed.SearchPages, packed.PagesSavedByBound, packedSum)
		}
	} else {
		if ref.SearchPages != packed.SearchPages {
			t.Fatalf("%s: SearchPages differs: ref %d, packed %d", label, ref.SearchPages, packed.SearchPages)
		}
		if ref.PagesSavedByBound != 0 || packed.PagesSavedByBound != 0 {
			t.Fatalf("%s: saved pages nonzero with shared bound disabled: ref %d packed %d",
				label, ref.PagesSavedByBound, packed.PagesSavedByBound)
		}
	}
	if ref.DistCompsSaved != 0 || packed.DistCompsSaved != 0 {
		t.Fatalf("%s: DistCompsSaved nonzero without quantization: ref %d packed %d",
			label, ref.DistCompsSaved, packed.DistCompsSaved)
	}
}

func TestPackedEquivalenceBattery(t *testing.T) {
	const (
		dim   = 6
		disks = 4
		n     = 300
	)
	raw := rawPoints(n, dim, 1234)
	queries := rawPoints(6, dim, 99)

	scenarios := []struct {
		name string
		repl int
		fail int // disk to fail, -1 for none
	}{
		{"repl0", 0, -1},
		{"repl1", 1, -1},
		{"repl1-fail2", 1, 2},
	}
	for _, metric := range []Metric{Euclidean, Manhattan, Maximum} {
		for _, shared := range []bool{true, false} {
			for _, sc := range scenarios {
				name := fmt.Sprintf("%s/%s/shared=%v", metric, sc.name, shared)
				t.Run(name, func(t *testing.T) {
					base := Options{
						Dim: dim, Disks: disks, Metric: metric,
						Replication: sc.repl, DisableSharedBound: !shared,
					}
					ref, err := Open(base)
					if err != nil {
						t.Fatal(err)
					}
					packedOpts := base
					packedOpts.Packed = true
					packed, err := Open(packedOpts)
					if err != nil {
						t.Fatal(err)
					}
					if err := ref.Build(raw); err != nil {
						t.Fatal(err)
					}
					if err := packed.Build(raw); err != nil {
						t.Fatal(err)
					}
					if sc.fail >= 0 {
						if err := ref.FailDisk(sc.fail); err != nil {
							t.Fatal(err)
						}
						if err := packed.FailDisk(sc.fail); err != nil {
							t.Fatal(err)
						}
					}

					// KNN and NN across the k range of the battery.
					for _, k := range []int{1, 5, n} {
						for qi, q := range queries {
							label := fmt.Sprintf("knn k=%d q=%d", k, qi)
							wantRes, wantStats, wantErr := ref.KNN(q, k)
							gotRes, gotStats, gotErr := packed.KNN(q, k)
							if (wantErr == nil) != (gotErr == nil) {
								t.Fatalf("%s: error mismatch: ref %v, packed %v", label, wantErr, gotErr)
							}
							if !sameNeighbors(gotRes, wantRes) {
								t.Fatalf("%s: results differ:\n ref    %v\n packed %v", label, wantRes, gotRes)
							}
							checkStatsParity(t, label, wantStats, gotStats, shared)
						}
					}
					for qi, q := range queries {
						label := fmt.Sprintf("nn q=%d", qi)
						want, _, wantErr := ref.NN(q)
						got, _, gotErr := packed.NN(q)
						if (wantErr == nil) != (gotErr == nil) {
							t.Fatalf("%s: error mismatch: ref %v, packed %v", label, wantErr, gotErr)
						}
						if !sameNeighbor(got, want) {
							t.Fatalf("%s: result differs: ref %+v, packed %+v", label, want, got)
						}
					}

					// Range queries: boxes around each query point. Range
					// traversal is fully deterministic, so SearchPages must
					// match exactly in both modes.
					for qi, q := range queries {
						lo, hi := make([]float64, dim), make([]float64, dim)
						for j := range q {
							lo[j], hi[j] = q[j]-0.15, q[j]+0.15
						}
						label := fmt.Sprintf("range q=%d", qi)
						wantRes, wantStats, wantErr := ref.RangeQuery(lo, hi)
						gotRes, gotStats, gotErr := packed.RangeQuery(lo, hi)
						if (wantErr == nil) != (gotErr == nil) {
							t.Fatalf("%s: error mismatch: ref %v, packed %v", label, wantErr, gotErr)
						}
						if !sameNeighbors(gotRes, wantRes) {
							t.Fatalf("%s: results differ:\n ref    %v\n packed %v", label, wantRes, gotRes)
						}
						checkStatsParity(t, label, wantStats, gotStats, false)
					}

					// Partial-match queries: two specified dimensions, the
					// rest wildcards.
					for qi, q := range queries {
						spec := make([]float64, dim)
						for j := range spec {
							spec[j] = Wildcard
						}
						spec[0], spec[dim-1] = q[0], q[dim-1]
						label := fmt.Sprintf("partial q=%d", qi)
						wantRes, wantStats, wantErr := ref.PartialMatch(spec, 0.2)
						gotRes, gotStats, gotErr := packed.PartialMatch(spec, 0.2)
						if (wantErr == nil) != (gotErr == nil) {
							t.Fatalf("%s: error mismatch: ref %v, packed %v", label, wantErr, gotErr)
						}
						if !sameNeighbors(gotRes, wantRes) {
							t.Fatalf("%s: results differ:\n ref    %v\n packed %v", label, wantRes, gotRes)
						}
						checkStatsParity(t, label, wantStats, gotStats, false)
					}
				})
			}
		}
	}
}

// TestPackedEquivalenceAfterMutation exercises the dirty-flag slab
// maintenance: after interleaved inserts and deletes the packed index
// must still answer identically to the reference.
func TestPackedEquivalenceAfterMutation(t *testing.T) {
	const (
		dim   = 5
		disks = 4
		n     = 200
	)
	raw := rawPoints(n, dim, 77)
	extra := rawPoints(80, dim, 78)
	queries := rawPoints(5, dim, 79)

	ref, err := Open(Options{Dim: dim, Disks: disks})
	if err != nil {
		t.Fatal(err)
	}
	packed, err := Open(Options{Dim: dim, Disks: disks, Packed: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Build(raw); err != nil {
		t.Fatal(err)
	}
	if err := packed.Build(raw); err != nil {
		t.Fatal(err)
	}
	for i, p := range extra {
		refID, err := ref.Insert(p)
		if err != nil {
			t.Fatal(err)
		}
		packedID, err := packed.Insert(p)
		if err != nil {
			t.Fatal(err)
		}
		if refID != packedID {
			t.Fatalf("insert %d: IDs diverge (%d vs %d)", i, refID, packedID)
		}
		if i%3 == 0 {
			id := i * 2 % n
			if err := ref.Delete(id); err != nil {
				t.Fatal(err)
			}
			if err := packed.Delete(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	for qi, q := range queries {
		for _, k := range []int{1, 7} {
			wantRes, _, wantErr := ref.KNN(q, k)
			gotRes, _, gotErr := packed.KNN(q, k)
			if wantErr != nil || gotErr != nil {
				t.Fatalf("q=%d k=%d: errors ref=%v packed=%v", qi, k, wantErr, gotErr)
			}
			if !sameNeighbors(gotRes, wantRes) {
				t.Fatalf("q=%d k=%d: results differ after mutations:\n ref    %v\n packed %v",
					qi, k, wantRes, gotRes)
			}
		}
	}
}

// TestQuantizedEngineEquivalence checks Options.Quantize end to end:
// the SQ8 pre-filter plus exact re-ranking returns results identical to
// the unquantized packed path, actually skips work (DistCompsSaved),
// and surfaces the skips in the metrics registry.
func TestQuantizedEngineEquivalence(t *testing.T) {
	const (
		dim   = 6
		disks = 4
		n     = 400
	)
	raw := rawPoints(n, dim, 4321)
	queries := rawPoints(12, dim, 55)

	for _, metric := range []Metric{Euclidean, Manhattan, Maximum} {
		t.Run(string(metric), func(t *testing.T) {
			packed, err := Open(Options{Dim: dim, Disks: disks, Metric: metric, Packed: true})
			if err != nil {
				t.Fatal(err)
			}
			quant, err := Open(Options{Dim: dim, Disks: disks, Metric: metric, Packed: true, Quantize: true})
			if err != nil {
				t.Fatal(err)
			}
			if err := packed.Build(raw); err != nil {
				t.Fatal(err)
			}
			if err := quant.Build(raw); err != nil {
				t.Fatal(err)
			}
			saved := 0
			for qi, q := range queries {
				for _, k := range []int{1, 5, 20} {
					wantRes, wantStats, err := packed.KNN(q, k)
					if err != nil {
						t.Fatal(err)
					}
					gotRes, gotStats, err := quant.KNN(q, k)
					if err != nil {
						t.Fatal(err)
					}
					if !sameNeighbors(gotRes, wantRes) {
						t.Fatalf("q=%d k=%d: quantized results differ:\n packed    %v\n quantized %v",
							qi, k, wantRes, gotRes)
					}
					if wantStats.TotalPages != gotStats.TotalPages {
						t.Fatalf("q=%d k=%d: TotalPages %d vs %d", qi, k, wantStats.TotalPages, gotStats.TotalPages)
					}
					if wantStats.DistCompsSaved != 0 {
						t.Fatalf("unquantized index reported %d saved distance comps", wantStats.DistCompsSaved)
					}
					saved += gotStats.DistCompsSaved
				}
			}
			if saved == 0 {
				t.Fatal("SQ8 pre-filter never skipped an exact distance computation")
			}
			if got := quant.Metrics().DistCompsSaved; got == 0 {
				t.Fatal("metrics registry DistCompsSaved stayed zero")
			}
		})
	}
}

// TestQuantizeRequiresPacked pins the option validation: SQ8 codes live
// in the slabs, so Quantize without Packed must be rejected.
func TestQuantizeRequiresPacked(t *testing.T) {
	if _, err := Open(Options{Dim: 3, Disks: 2, Quantize: true}); err == nil {
		t.Fatal("Open accepted Quantize without Packed")
	}
}
