package parsearch

import (
	"bytes"
	"strings"
	"testing"

	"parsearch/internal/data"
)

func buildTestIndex(t *testing.T, opts Options, n int) *Index {
	t.Helper()
	ix, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	pts := data.Uniform(n, opts.Dim, 123)
	raw := make([][]float64, n)
	for i, p := range pts {
		raw[i] = p
	}
	if err := ix.Build(raw); err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestSnapshotRoundTrip(t *testing.T) {
	opts := Options{
		Dim: 6, Disks: 4, Kind: Hilbert,
		QuantileSplits: true, Baseline: true,
	}
	ix := buildTestIndex(t, opts, 800)

	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if loaded.Len() != ix.Len() {
		t.Fatalf("Len = %d, want %d", loaded.Len(), ix.Len())
	}
	if loaded.Strategy() != ix.Strategy() || loaded.Disks() != ix.Disks() {
		t.Errorf("options drift: %s/%d vs %s/%d",
			loaded.Strategy(), loaded.Disks(), ix.Strategy(), ix.Disks())
	}
	// Queries on the loaded index must give identical results and cost
	// statistics (the rebuild is deterministic).
	for _, q := range data.Uniform(10, opts.Dim, 9) {
		a, sa, err := ix.KNN(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		b, sb, err := loaded.KNN(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i].ID != b[i].ID || a[i].Dist != b[i].Dist {
				t.Fatalf("result %d differs after reload: %+v vs %+v", i, a[i], b[i])
			}
		}
		if sa.MaxPages != sb.MaxPages || sa.TotalPages != sb.TotalPages {
			t.Fatalf("cost statistics differ after reload: %+v vs %+v", sa, sb)
		}
	}
}

func TestSnapshotRoundTripRecursive(t *testing.T) {
	ix := buildTestIndex(t, Options{Dim: 5, Disks: 8, Recursive: true, QuantileSplits: true}, 600)
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := loaded.DiskLoads(), ix.DiskLoads(); len(got) != len(want) {
		t.Fatalf("disk count changed")
	} else {
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("disk loads differ after reload: %v vs %v", got, want)
			}
		}
	}
}

func TestSnapshotEmptyIndex(t *testing.T) {
	ix, err := Open(Options{Dim: 3, Disks: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 0 {
		t.Errorf("Len = %d", loaded.Len())
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":       {},
		"short":       []byte("PAR"),
		"wrong magic": append([]byte("NOTMAGIC"), make([]byte, 64)...),
	}
	for name, b := range cases {
		if _, err := Load(bytes.NewReader(b)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	ix := buildTestIndex(t, Options{Dim: 4, Disks: 2}, 100)
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Flip one payload byte: checksum must catch it.
	corrupted := append([]byte(nil), good...)
	corrupted[len(corrupted)/2] ^= 0xFF
	if _, err := Load(bytes.NewReader(corrupted)); err == nil ||
		!strings.Contains(err.Error(), "checksum") {
		t.Errorf("corrupted snapshot: err = %v, want checksum mismatch", err)
	}

	// Truncate: must error, not panic.
	if _, err := Load(bytes.NewReader(good[:len(good)-10])); err == nil {
		t.Error("truncated snapshot accepted")
	}

	// Trailing junk after the checksum changes the checksum position,
	// so it must be rejected too.
	if _, err := Load(bytes.NewReader(append(append([]byte(nil), good...), 1, 2, 3))); err == nil {
		t.Error("snapshot with trailing bytes accepted")
	}
}

func TestSnapshotPreservesUnusualOptions(t *testing.T) {
	opts := Options{
		Dim: 4, Disks: 3, Kind: FX, PageSize: 1024,
		CostModel: BucketPages,
	}
	ix := buildTestIndex(t, opts, 50)
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Strategy() != "FX" {
		t.Errorf("strategy %q after reload", loaded.Strategy())
	}
}

// TestSnapshotMetricsPersist: cumulative metrics ride along in the
// snapshot (flag bit 16) — a loaded index continues counting from
// where the saved one stopped, and further queries add on top.
func TestSnapshotMetricsPersist(t *testing.T) {
	const dim, disks = 4, 3
	ix := buildTestIndex(t, Options{Dim: dim, Disks: disks}, 500)
	queries := data.Uniform(5, dim, 31)
	for _, q := range queries {
		if _, _, err := ix.KNN(q, 4); err != nil {
			t.Fatal(err)
		}
	}
	before := ix.Metrics()
	if before.QueriesKNN != int64(len(queries)) || before.PagesRead == 0 {
		t.Fatalf("pre-save metrics: %+v", before)
	}

	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	after := loaded.Metrics()
	if after.QueriesKNN != before.QueriesKNN || after.PagesRead != before.PagesRead {
		t.Fatalf("loaded metrics %+v, want %+v", after, before)
	}
	if after.QueryPages.Count != before.QueryPages.Count || after.QueryPages.Sum != before.QueryPages.Sum {
		t.Fatalf("loaded histogram %+v, want %+v", after.QueryPages, before.QueryPages)
	}
	for d := range before.PagesPerDisk {
		if after.PagesPerDisk[d] != before.PagesPerDisk[d] {
			t.Fatalf("loaded per-disk pages %v, want %v", after.PagesPerDisk, before.PagesPerDisk)
		}
	}

	// The restored counters keep counting.
	if _, _, err := loaded.KNN(queries[0], 4); err != nil {
		t.Fatal(err)
	}
	if got := loaded.Metrics().QueriesKNN; got != before.QueriesKNN+1 {
		t.Fatalf("post-load QueriesKNN = %d, want %d", got, before.QueriesKNN+1)
	}
}
