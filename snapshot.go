package parsearch

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"time"

	"parsearch/internal/core"
	"parsearch/internal/vec"
)

// Snapshot format: a little-endian binary stream holding the index
// options and the raw vectors. Index structures (per-disk X-trees,
// bucket cells, recursive expansions) are derived state and are rebuilt
// deterministically by Build on load, so the snapshot stays small and
// version-independent. A CRC-32 of the payload guards against
// truncation and corruption.
//
// Snapshots written since the observability layer also carry the
// metrics registry (header flag bit 16): a uint32-length-prefixed
// metrics blob (see internal/metrics codec) between the point table
// and the checksum, so cumulative counters survive Save/Load. Readers
// skip the section cleanly when the bit is unset (older snapshots).
const (
	snapshotMagic   = "PARSRCH1"
	snapshotVersion = 1

	flagQuantile    = 1
	flagRecursive   = 2
	flagBaseline    = 4
	flagReplication = 8
	flagMetrics     = 16
	// flagPacked marks a snapshot of a packed index (Options.Packed):
	// its coordinates were rounded to float32 at ingest, so the point
	// table stores 4-byte float32 coordinates — losslessly, and half the
	// size. flagQuantize additionally records Options.Quantize (the SQ8
	// pre-filter); it does not change the payload, since the codes are
	// derived state rebuilt by Build.
	flagPacked   = 32
	flagQuantize = 64
)

// Save writes a snapshot of the index (options and vectors) to w. The
// point table is copied atomically under the metadata lock, so the
// snapshot is a consistent point-in-time view even while concurrent
// inserts and deletes are running — and writing to w happens off the
// lock, so a slow writer never stalls the index.
//
// On a durable index (Options.Durable) Save only exports: it does not
// rotate generations or truncate the mutation log. Checkpoint is the
// durable counterpart.
func (ix *Index) Save(w io.Writer) error {
	ix.meta.Lock()
	points := make([]vec.Point, len(ix.points))
	copy(points, ix.points)
	ix.meta.Unlock()
	return ix.writeSnapshot(w, points)
}

// writeSnapshot encodes the given point-table cut (see Save) to w.
// It reads only immutable options and the lock-free metrics registry,
// so it runs without any index lock — Save and Checkpoint hand it a
// consistent cut and stream off-lock.
func (ix *Index) writeSnapshot(w io.Writer, points []vec.Point) error {
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, crc))

	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return fmt.Errorf("parsearch: writing snapshot: %w", err)
	}
	metricsBlob, err := ix.reg.MarshalBinary()
	if err != nil {
		return fmt.Errorf("parsearch: encoding snapshot metrics: %w", err)
	}
	var flags uint8 = flagMetrics
	if ix.opts.QuantileSplits {
		flags |= flagQuantile
	}
	if ix.opts.Recursive {
		flags |= flagRecursive
	}
	if ix.opts.Baseline {
		flags |= flagBaseline
	}
	if ix.opts.Replication > 0 {
		flags |= flagReplication
	}
	if ix.opts.Packed {
		flags |= flagPacked
	}
	if ix.opts.Quantize {
		flags |= flagQuantize
	}
	header := []interface{}{
		uint32(snapshotVersion),
		uint32(ix.opts.Dim),
		uint32(ix.opts.Disks),
		uint32(ix.opts.PageSize),
		flags,
		int64(ix.params.Seek),
		int64(ix.params.Transfer),
		math.Float64bits(ix.params.Throttle),
	}
	for _, v := range header {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("parsearch: writing snapshot header: %w", err)
		}
	}
	if err := writeString(bw, string(ix.opts.Kind)); err != nil {
		return err
	}
	if err := writeString(bw, string(ix.opts.CostModel)); err != nil {
		return err
	}

	if err := binary.Write(bw, binary.LittleEndian, uint64(len(points))); err != nil {
		return fmt.Errorf("parsearch: writing snapshot: %w", err)
	}
	// Each slot is a presence byte followed by the coordinates; deleted
	// IDs (tombstones) are a single zero byte, so IDs stay stable across
	// save/load. Packed indexes hold float32-representable coordinates
	// only (rounded at ingest), so the snapshot stores them as 4-byte
	// float32s without loss.
	coordSize := 8
	if ix.opts.Packed {
		coordSize = 4
	}
	buf := make([]byte, coordSize*ix.opts.Dim)
	for _, p := range points {
		if p == nil {
			if err := bw.WriteByte(0); err != nil {
				return fmt.Errorf("parsearch: writing snapshot: %w", err)
			}
			continue
		}
		if err := bw.WriteByte(1); err != nil {
			return fmt.Errorf("parsearch: writing snapshot: %w", err)
		}
		if ix.opts.Packed {
			for j, x := range p {
				binary.LittleEndian.PutUint32(buf[4*j:], math.Float32bits(float32(x)))
			}
		} else {
			for j, x := range p {
				binary.LittleEndian.PutUint64(buf[8*j:], math.Float64bits(x))
			}
		}
		if _, err := bw.Write(buf); err != nil {
			return fmt.Errorf("parsearch: writing snapshot: %w", err)
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(metricsBlob))); err != nil {
		return fmt.Errorf("parsearch: writing snapshot metrics: %w", err)
	}
	if _, err := bw.Write(metricsBlob); err != nil {
		return fmt.Errorf("parsearch: writing snapshot metrics: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("parsearch: writing snapshot: %w", err)
	}
	// The checksum covers everything flushed so far.
	if err := binary.Write(w, binary.LittleEndian, crc.Sum32()); err != nil {
		return fmt.Errorf("parsearch: writing snapshot checksum: %w", err)
	}
	return nil
}

// snapshotData is a fully decoded and validated snapshot: the options
// to open the index with, the point table (nil entries are
// tombstones), and the metrics blob when present.
type snapshotData struct {
	opts    Options
	points  [][]float64
	metrics []byte
}

// newIndex opens an index from the decoded snapshot.
func (sd *snapshotData) newIndex() (*Index, error) {
	ix, err := Open(sd.opts)
	if err != nil {
		return nil, fmt.Errorf("parsearch: snapshot options invalid: %w", err)
	}
	if err := ix.Build(sd.points); err != nil {
		return nil, fmt.Errorf("parsearch: rebuilding from snapshot: %w", err)
	}
	if sd.metrics != nil {
		if err := ix.reg.UnmarshalBinary(sd.metrics); err != nil {
			return nil, fmt.Errorf("parsearch: snapshot metrics invalid: %w", err)
		}
	}
	return ix, nil
}

// Load reads a snapshot written by Save and returns a fully rebuilt
// index. The whole snapshot is buffered so the checksum can be verified
// before any of it is trusted.
func Load(r io.Reader) (*Index, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("parsearch: reading snapshot: %w", err)
	}
	sd, err := decodeSnapshot(raw)
	if err != nil {
		return nil, err
	}
	return sd.newIndex()
}

// decodeSnapshot validates and parses a complete snapshot: the
// structural parse determines exactly where the payload ends, so the
// footer position is known — not inferred from the file length — and
// any bytes after the 4-byte CRC footer are rejected deterministically
// as trailing garbage (before this refactor, appended bytes were only
// caught probabilistically, by the CRC of the shifted footer failing).
// The payload checksum is verified against the footer before the data
// is returned.
func decodeSnapshot(raw []byte) (*snapshotData, error) {
	sd, consumed, perr := parseSnapshotPayload(raw)
	if perr != nil {
		// The structural parse failed. When the checksum fails too, the
		// snapshot is damaged and the CRC verdict is the honest report
		// (the structural error is a symptom); a passing checksum means
		// the payload itself is malformed.
		if len(raw) >= len(snapshotMagic)+4 {
			body, foot := raw[:len(raw)-4], raw[len(raw)-4:]
			if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(foot) {
				return nil, fmt.Errorf("parsearch: snapshot checksum mismatch (corrupted or truncated)")
			}
		}
		return nil, perr
	}
	rest := len(raw) - consumed
	if rest < 4 {
		return nil, fmt.Errorf("parsearch: snapshot truncated (footer missing)")
	}
	if rest > 4 {
		return nil, fmt.Errorf("parsearch: %d bytes of trailing garbage after snapshot footer", rest-4)
	}
	if crc32.ChecksumIEEE(raw[:consumed]) != binary.LittleEndian.Uint32(raw[consumed:]) {
		return nil, fmt.Errorf("parsearch: snapshot checksum mismatch (corrupted or truncated)")
	}
	return sd, nil
}

// parseSnapshotPayload structurally parses the snapshot payload from
// the start of raw and returns the decoded data plus the number of
// bytes the payload occupies (everything before the CRC footer). Every
// length and count field is bounds-checked against the remaining input
// before it sizes an allocation, so the parse is safe on untrusted
// bytes even before the checksum is verified.
func parseSnapshotPayload(raw []byte) (*snapshotData, int, error) {
	br := bytes.NewReader(raw)

	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, 0, fmt.Errorf("parsearch: reading snapshot: %w", err)
	}
	if string(magic) != snapshotMagic {
		return nil, 0, fmt.Errorf("parsearch: not a parsearch snapshot (magic %q)", magic)
	}
	var (
		version, dim, disks, pageSize uint32
		flags                         uint8
		seek, transfer                int64
		throttleBits                  uint64
	)
	for _, v := range []interface{}{&version, &dim, &disks, &pageSize, &flags, &seek, &transfer, &throttleBits} {
		if err := binary.Read(br, binary.LittleEndian, v); err != nil {
			return nil, 0, fmt.Errorf("parsearch: reading snapshot header: %w", err)
		}
	}
	if version != snapshotVersion {
		return nil, 0, fmt.Errorf("parsearch: unsupported snapshot version %d", version)
	}
	kind, err := readString(br)
	if err != nil {
		return nil, 0, err
	}
	costModel, err := readString(br)
	if err != nil {
		return nil, 0, err
	}

	var count uint64
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, 0, fmt.Errorf("parsearch: reading snapshot: %w", err)
	}
	// Bound every header field that sizes an allocation BEFORE
	// allocating: a forged dim or disk count must fail here, not OOM in
	// make() below (or in Open's registry/array construction).
	if dim == 0 || dim > core.MaxDim || count > (1<<34) {
		return nil, 0, fmt.Errorf("parsearch: implausible snapshot (dim %d, %d points)", dim, count)
	}
	if disks == 0 || disks > (1<<16) {
		return nil, 0, fmt.Errorf("parsearch: implausible snapshot (%d disks)", disks)
	}
	// Every slot needs at least its presence byte, so a forged count
	// larger than the remaining payload cannot be honest — reject it
	// before allocating for it.
	if count > uint64(br.Len()) {
		return nil, 0, fmt.Errorf("parsearch: snapshot claims %d points in %d bytes", count, br.Len())
	}
	packed := flags&flagPacked != 0
	coordSize := 8
	if packed {
		coordSize = 4
	}
	points := make([][]float64, count)
	buf := make([]byte, coordSize*int(dim))
	for i := range points {
		presence, err := br.ReadByte()
		if err != nil {
			return nil, 0, fmt.Errorf("parsearch: reading snapshot point %d: %w", i, err)
		}
		switch presence {
		case 0: // tombstone
		case 1:
			if _, err := io.ReadFull(br, buf); err != nil {
				return nil, 0, fmt.Errorf("parsearch: reading snapshot point %d: %w", i, err)
			}
			p := make([]float64, dim)
			if packed {
				// Widening float32 → float64 is exact, so the round trip
				// restores the ingested (pre-rounded) coordinates bit for
				// bit.
				for j := range p {
					p[j] = float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[4*j:])))
				}
			} else {
				for j := range p {
					p[j] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*j:]))
				}
			}
			points[i] = p
		default:
			return nil, 0, fmt.Errorf("parsearch: invalid presence byte %d at point %d", presence, i)
		}
	}
	// The metrics section (flag bit 16) restores the cumulative
	// counters; older snapshots without the bit skip it. The blob is
	// only installed after the rebuilt index exists, and only if it
	// passes the codec's full validation.
	var metricsBlob []byte
	if flags&flagMetrics != 0 {
		var blobLen uint32
		if err := binary.Read(br, binary.LittleEndian, &blobLen); err != nil {
			return nil, 0, fmt.Errorf("parsearch: reading snapshot metrics length: %w", err)
		}
		if uint64(blobLen) > uint64(br.Len()) {
			return nil, 0, fmt.Errorf("parsearch: snapshot metrics section claims %d bytes in %d", blobLen, br.Len())
		}
		metricsBlob = make([]byte, blobLen)
		if _, err := io.ReadFull(br, metricsBlob); err != nil {
			return nil, 0, fmt.Errorf("parsearch: reading snapshot metrics: %w", err)
		}
	}

	params := DiskParams{
		Seek:     time.Duration(seek),
		Transfer: time.Duration(transfer),
		Throttle: math.Float64frombits(throttleBits),
	}
	sd := &snapshotData{
		opts: Options{
			Dim:            int(dim),
			Disks:          int(disks),
			Kind:           Kind(kind),
			PageSize:       int(pageSize),
			QuantileSplits: flags&flagQuantile != 0,
			Recursive:      flags&flagRecursive != 0,
			Baseline:       flags&flagBaseline != 0,
			Replication:    int(flags & flagReplication >> 3),
			Packed:         packed,
			Quantize:       flags&flagQuantize != 0,
			DiskParams:     &params,
			CostModel:      CostModel(costModel),
		},
		points:  points,
		metrics: metricsBlob,
	}
	return sd, len(raw) - br.Len(), nil
}

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint16(len(s))); err != nil {
		return fmt.Errorf("parsearch: writing snapshot string: %w", err)
	}
	if _, err := io.WriteString(w, s); err != nil {
		return fmt.Errorf("parsearch: writing snapshot string: %w", err)
	}
	return nil
}

func readString(r io.Reader) (string, error) {
	var n uint16
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", fmt.Errorf("parsearch: reading snapshot string: %w", err)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", fmt.Errorf("parsearch: reading snapshot string: %w", err)
	}
	return string(b), nil
}
