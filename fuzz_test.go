package parsearch

import (
	"bytes"
	"testing"
)

// Fuzzing the snapshot loader: arbitrary bytes must never panic — they
// either load as a valid index or return an error.
func FuzzLoad(f *testing.F) {
	// Seed with a valid snapshot and a few mutations.
	ix, err := Open(Options{Dim: 3, Disks: 2})
	if err != nil {
		f.Fatal(err)
	}
	if err := ix.Build([][]float64{{0.1, 0.2, 0.3}, {0.7, 0.8, 0.9}}); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("PARSRCH1"))
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, b []byte) {
		loaded, err := Load(bytes.NewReader(b))
		if err != nil {
			return
		}
		// A successfully loaded index must be queryable (or empty).
		if loaded.Len() == 0 {
			return
		}
		q := make([]float64, loaded.opts.Dim)
		if _, _, err := loaded.KNN(q, 1); err != nil {
			t.Fatalf("loaded index cannot be queried: %v", err)
		}
	})
}
