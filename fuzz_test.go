package parsearch

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"reflect"
	"testing"

	"parsearch/internal/data"
)

// Fuzzing the snapshot loader: arbitrary bytes must never panic — they
// either load as a valid index or return an error.
func FuzzLoad(f *testing.F) {
	// Seed with a valid snapshot and a few mutations.
	ix, err := Open(Options{Dim: 3, Disks: 2})
	if err != nil {
		f.Fatal(err)
	}
	if err := ix.Build([][]float64{{0.1, 0.2, 0.3}, {0.7, 0.8, 0.9}}); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("PARSRCH1"))
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, b []byte) {
		loaded, err := Load(bytes.NewReader(b))
		if err != nil {
			return
		}
		// A successfully loaded index must be queryable (or empty).
		if loaded.Len() == 0 {
			return
		}
		q := make([]float64, loaded.opts.Dim)
		if _, _, err := loaded.KNN(q, 1); err != nil {
			t.Fatalf("loaded index cannot be queried: %v", err)
		}
	})
}

// metricsSnapshotPayload builds a snapshot of a queried index (so the
// metrics section carries real counts) and returns its payload with
// the trailing CRC-32 stripped.
func metricsSnapshotPayload(f *testing.F) []byte {
	f.Helper()
	ix, err := Open(Options{Dim: 3, Disks: 2})
	if err != nil {
		f.Fatal(err)
	}
	pts := data.Uniform(64, 3, 5)
	raw := make([][]float64, len(pts))
	for i := range pts {
		raw[i] = pts[i]
	}
	if err := ix.Build(raw); err != nil {
		f.Fatal(err)
	}
	for _, q := range data.Uniform(4, 3, 6) {
		if _, _, err := ix.KNN(q, 3); err != nil {
			f.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		f.Fatal(err)
	}
	blob, err := ix.reg.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	payload := buf.Bytes()[:buf.Len()-4]
	if got := binary.LittleEndian.Uint32(payload[len(payload)-4-len(blob):]); got != uint32(len(blob)) {
		f.Fatalf("metrics length prefix reads %d, blob is %d bytes", got, len(blob))
	}
	return payload
}

// FuzzSnapshotRoundtrip fuzzes the metrics-bearing snapshot bits
// introduced with the observability layer (header flag 16 and the
// length-prefixed metrics section). The harness appends a valid
// CRC-32 to the fuzzed payload so mutations reach the parser instead
// of dying at the checksum. A payload that loads must yield a
// self-consistent metrics snapshot, and Save→Load must preserve it.
func FuzzSnapshotRoundtrip(f *testing.F) {
	payload := metricsSnapshotPayload(f)
	f.Add(payload)

	// Flag bit 16 cleared but the metrics section left in place: the
	// loader must reject it as trailing bytes.
	noFlag := append([]byte(nil), payload...)
	noFlag[len(snapshotMagic)+16] &^= flagMetrics
	f.Add(noFlag)

	// A corrupted byte near the end of the metrics blob: the codec's
	// validation must reject it without panicking.
	badLen := append([]byte(nil), payload...)
	badLen[len(badLen)-8] ^= 0xFF
	f.Add(badLen)

	// Truncated mid-metrics, and a corrupted counter inside the blob.
	f.Add(payload[:len(payload)-7])
	corrupt := append([]byte(nil), payload...)
	corrupt[len(corrupt)-3] ^= 0xFF
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, b []byte) {
		full := make([]byte, len(b)+4)
		copy(full, b)
		binary.LittleEndian.PutUint32(full[len(b):], crc32.ChecksumIEEE(b))
		loaded, err := Load(bytes.NewReader(full))
		if err != nil {
			return
		}
		s := loaded.Metrics()
		if len(s.PagesPerDisk) != loaded.opts.Disks || len(s.ServiceTimePerDiskNs) != loaded.opts.Disks {
			t.Fatalf("loaded metrics sized for %d/%d disks, index has %d",
				len(s.PagesPerDisk), len(s.ServiceTimePerDiskNs), loaded.opts.Disks)
		}
		for _, v := range s.PagesPerDisk {
			if v < 0 {
				t.Fatalf("loaded negative per-disk pages: %v", s.PagesPerDisk)
			}
		}
		if s.QueryPages.Count < 0 || s.QueryPages.Sum < 0 {
			t.Fatalf("loaded negative histogram: %+v", s.QueryPages)
		}
		// Counters that loaded once must survive another round-trip
		// bit-for-bit.
		var again bytes.Buffer
		if err := loaded.Save(&again); err != nil {
			t.Fatalf("re-saving loaded index: %v", err)
		}
		reloaded, err := Load(bytes.NewReader(again.Bytes()))
		if err != nil {
			t.Fatalf("re-loading saved index: %v", err)
		}
		if got := reloaded.Metrics(); !reflect.DeepEqual(got, s) {
			t.Fatalf("metrics changed across round-trip:\n got %+v\nwant %+v", got, s)
		}
	})
}
