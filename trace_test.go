package parsearch

// Tests for the observability layer: span events of the traced query
// paths, tracer resolution (Options vs. context), and the metrics
// registry exposed by Index.Metrics / PublishExpvar.

import (
	"context"
	"encoding/json"
	"expvar"
	"strings"
	"sync"
	"testing"
	"time"

	"parsearch/internal/data"
)

// recordTracer collects events under a mutex so traced queries stay
// race-clean (the per-disk fan-out emits concurrently).
type recordTracer struct {
	mu     sync.Mutex
	events []TraceEvent
}

func (r *recordTracer) Event(ev TraceEvent) {
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

// stages returns the recorded stage names in order.
func (r *recordTracer) stages() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.events))
	for i, ev := range r.events {
		out[i] = ev.Stage
	}
	return out
}

// count returns how many events carry the given stage.
func (r *recordTracer) count(stage string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, ev := range r.events {
		if ev.Stage == stage {
			n++
		}
	}
	return n
}

// tracedIndex builds an index with an Options.Tracer installed.
func tracedIndex(t *testing.T, opts Options, n int) (*Index, *recordTracer) {
	t.Helper()
	tr := &recordTracer{}
	opts.Tracer = tr
	ix, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	pts := data.Uniform(n, opts.Dim, 5)
	raw := make([][]float64, n)
	for i := range pts {
		raw[i] = pts[i]
	}
	if err := ix.Build(raw); err != nil {
		t.Fatal(err)
	}
	return ix, tr
}

func TestKNNTraceSpan(t *testing.T) {
	const dim, disks = 4, 4
	ix, tr := tracedIndex(t, Options{Dim: dim, Disks: disks}, 800)
	q := data.Uniform(1, dim, 9)[0]
	if _, _, err := ix.KNN(q, 5); err != nil {
		t.Fatal(err)
	}

	if got := tr.count(StagePlan); got != 1 {
		t.Errorf("%d plan events, want 1", got)
	}
	if got := tr.count(StageSearch); got != disks {
		t.Errorf("%d search events, want %d (one per disk)", got, disks)
	}
	if got := tr.count(StageMerge); got != 1 {
		t.Errorf("%d merge events, want 1", got)
	}
	if got := tr.count(StageIO); got != 1 {
		t.Errorf("%d io events, want 1", got)
	}
	if got := tr.count(StageDone); got != 1 {
		t.Errorf("%d done events, want 1", got)
	}

	tr.mu.Lock()
	defer tr.mu.Unlock()
	// Shared span identity and ordering: plan first, done last, merge
	// after every search, all events op "knn" with the same query id.
	if len(tr.events) == 0 {
		t.Fatal("no events recorded")
	}
	qid := tr.events[0].Query
	if qid == 0 {
		t.Error("query sequence number not assigned")
	}
	mergeAt, lastSearch := -1, -1
	for i, ev := range tr.events {
		if ev.Op != "knn" || ev.Query != qid {
			t.Errorf("event %d: op %q query %d, want knn/%d", i, ev.Op, ev.Query, qid)
		}
		switch ev.Stage {
		case StageSearch:
			lastSearch = i
			if ev.Disk < 0 || ev.Disk >= disks {
				t.Errorf("search event names disk %d", ev.Disk)
			}
		case StageMerge:
			mergeAt = i
			if ev.Radius <= 0 {
				t.Errorf("merge event radius %v, want > 0", ev.Radius)
			}
			if ev.Results != 5 {
				t.Errorf("merge event results %d, want 5", ev.Results)
			}
		}
	}
	if tr.events[0].Stage != StagePlan {
		t.Errorf("first event %q, want plan", tr.events[0].Stage)
	}
	if last := tr.events[len(tr.events)-1]; last.Stage != StageDone {
		t.Errorf("last event %q, want done", last.Stage)
	} else if last.Pages <= 0 || last.Results != 5 {
		t.Errorf("done event pages %d results %d", last.Pages, last.Results)
	}
	if mergeAt < lastSearch {
		t.Errorf("merge event at %d before last search at %d", mergeAt, lastSearch)
	}
}

func TestContextTracerOverridesOptions(t *testing.T) {
	const dim = 3
	ix, optTracer := tracedIndex(t, Options{Dim: dim, Disks: 2}, 200)
	ctxTracer := &recordTracer{}
	q := data.Uniform(1, dim, 3)[0]

	if _, _, err := ix.KNNContext(WithTracer(context.Background(), ctxTracer), q, 2); err != nil {
		t.Fatal(err)
	}
	if got := optTracer.count(StageDone); got != 0 {
		t.Errorf("Options.Tracer saw %d done events despite context override", got)
	}
	if got := ctxTracer.count(StageDone); got != 1 {
		t.Errorf("context tracer saw %d done events, want 1", got)
	}

	// Without a context tracer the Options tracer is used.
	if _, _, err := ix.KNNContext(context.Background(), q, 2); err != nil {
		t.Fatal(err)
	}
	if got := optTracer.count(StageDone); got != 1 {
		t.Errorf("Options.Tracer saw %d done events, want 1", got)
	}
	if got := ContextTracer(context.Background()); got != nil {
		t.Errorf("empty context carries tracer %v", got)
	}
}

func TestTraceQuerySequenceDistinct(t *testing.T) {
	const dim = 3
	ix, tr := tracedIndex(t, Options{Dim: dim, Disks: 2}, 200)
	for _, q := range data.Uniform(3, dim, 4) {
		if _, _, err := ix.KNN(q, 1); err != nil {
			t.Fatal(err)
		}
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	seen := map[uint64]bool{}
	for _, ev := range tr.events {
		if ev.Stage == StageDone {
			if seen[ev.Query] {
				t.Fatalf("query id %d reused", ev.Query)
			}
			seen[ev.Query] = true
		}
	}
	if len(seen) != 3 {
		t.Fatalf("%d distinct query ids, want 3", len(seen))
	}
}

func TestRangeAndBatchTraceSpans(t *testing.T) {
	const dim, disks = 4, 3
	ix, tr := tracedIndex(t, Options{Dim: dim, Disks: disks}, 600)

	lo, hi := make([]float64, dim), make([]float64, dim)
	for i := range lo {
		lo[i], hi[i] = 0.2, 0.8
	}
	if _, _, err := ix.RangeQuery(lo, hi); err != nil {
		t.Fatal(err)
	}
	if got := tr.count(StageSearch); got != disks {
		t.Errorf("range: %d search events, want %d", got, disks)
	}
	if tr.count(StagePlan) != 1 || tr.count(StageIO) != 1 || tr.count(StageDone) != 1 {
		t.Errorf("range: stage counts %v", tr.stages())
	}

	tr.mu.Lock()
	tr.events = nil
	tr.mu.Unlock()

	queries := data.Uniform(4, dim, 11)
	raw := make([][]float64, len(queries))
	for i := range queries {
		raw[i] = queries[i]
	}
	if _, _, err := ix.BatchKNN(raw, 3); err != nil {
		t.Fatal(err)
	}
	if got := tr.count(StageSearch); got != len(queries) {
		t.Errorf("batch: %d search events, want one per item (%d)", got, len(queries))
	}
	tr.mu.Lock()
	items := map[int]bool{}
	for _, ev := range tr.events {
		if ev.Stage == StageSearch {
			items[ev.Item] = true
		}
	}
	tr.mu.Unlock()
	for i := range queries {
		if !items[i] {
			t.Errorf("batch: no search event for item %d", i)
		}
	}
}

func TestTraceRerouteAndUnreachable(t *testing.T) {
	const dim, disks = 4, 4
	ix, tr := tracedIndex(t, Options{Dim: dim, Disks: disks, Replication: 1}, 800)
	q := data.Uniform(1, dim, 2)[0]

	if err := ix.FailDisk(1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ix.KNN(q, 3); err != nil {
		t.Fatal(err)
	}
	if got := tr.count(StageReroute); got != 1 {
		t.Errorf("%d reroute events with one failed primary, want 1", got)
	}
	if got := tr.count(StageUnreachable); got != 0 {
		t.Errorf("%d unreachable events with a live replica, want 0", got)
	}

	// Kill the replica too: the shard becomes unreachable.
	tr.mu.Lock()
	tr.events = nil
	tr.mu.Unlock()
	if err := ix.FailDisk(ix.ReplicaDisk(1)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ix.KNN(q, 3); err != nil {
		t.Fatal(err)
	}
	if got := tr.count(StageUnreachable); got != 1 {
		t.Errorf("%d unreachable events with primary+replica dead, want 1", got)
	}
}

func TestTraceRetryAndErrorEvents(t *testing.T) {
	const dim = 3
	ix, tr := tracedIndex(t, Options{Dim: dim, Disks: 2, Faults: &FaultModel{
		TransientProb: 0.4, MaxRetries: 32, RetryBackoff: time.Microsecond, Seed: 3,
	}}, 500)
	for _, q := range data.Uniform(6, dim, 44) {
		if _, _, err := ix.KNN(q, 4); err != nil {
			t.Fatal(err)
		}
	}
	if tr.count(StageRetry) == 0 {
		t.Error("no retry events at a 40% transient rate")
	}

	// An error surfaces as an error event carrying the message.
	tr.mu.Lock()
	tr.events = nil
	tr.mu.Unlock()
	if _, _, err := ix.KNN(make([]float64, dim+1), 1); err == nil {
		t.Fatal("dimension mismatch should error")
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if len(tr.events) != 1 || tr.events[0].Stage != StageError ||
		!strings.Contains(tr.events[0].Err, "dimension") {
		t.Fatalf("error trace = %+v", tr.events)
	}
}

func TestTraceEventString(t *testing.T) {
	ev := TraceEvent{Query: 7, Op: "knn", Stage: StageSearch, Disk: 2, Item: -1}
	if got := ev.String(); !strings.Contains(got, "q7 knn/search") || !strings.Contains(got, "disk=2") {
		t.Errorf("String() = %q", got)
	}
	ev = TraceEvent{Query: 1, Op: "batch", Stage: StageError, Disk: -1, Item: 3, Err: "boom"}
	if got := ev.String(); !strings.Contains(got, "item=3") || !strings.Contains(got, "err=boom") {
		t.Errorf("String() = %q", got)
	}
}

func TestMetricsAccumulateAndReset(t *testing.T) {
	const dim, disks = 4, 4
	ix, _ := tracedIndex(t, Options{Dim: dim, Disks: disks}, 1000)
	before := ix.Metrics()
	if before.QueriesKNN != 0 || before.PagesRead != 0 {
		t.Fatalf("fresh index has metrics %+v", before)
	}

	var wantPages int64
	queries := data.Uniform(8, dim, 77)
	for _, q := range queries {
		_, stats, err := ix.KNN(q, 4)
		if err != nil {
			t.Fatal(err)
		}
		wantPages += int64(stats.TotalPages)
	}
	s := ix.Metrics()
	if s.QueriesKNN != int64(len(queries)) {
		t.Errorf("QueriesKNN = %d, want %d", s.QueriesKNN, len(queries))
	}
	if s.PagesRead != wantPages {
		t.Errorf("PagesRead = %d, want %d", s.PagesRead, wantPages)
	}
	var perDisk int64
	for _, v := range s.PagesPerDisk {
		perDisk += v
	}
	if perDisk != wantPages {
		t.Errorf("per-disk pages sum to %d, want %d", perDisk, wantPages)
	}
	if s.Balance <= 0 || s.Balance > 1 {
		t.Errorf("balance coefficient %v outside (0, 1]", s.Balance)
	}
	if s.QueryPages.Count != int64(len(queries)) || s.QueryPages.Sum != wantPages {
		t.Errorf("query pages histogram %+v", s.QueryPages)
	}
	if s.NodeVisits == 0 {
		t.Error("no node visits recorded")
	}
	var svc int64
	for _, v := range s.ServiceTimePerDiskNs {
		svc += v
	}
	if svc == 0 {
		t.Error("no per-disk service time recorded")
	}

	ix.ResetMetrics()
	if after := ix.Metrics(); after.QueriesKNN != 0 || after.PagesRead != 0 {
		t.Errorf("metrics after reset: %+v", after)
	}
}

func TestPublishExpvar(t *testing.T) {
	const name = "parsearch_test_index"
	ix, _ := tracedIndex(t, Options{Dim: 3, Disks: 2}, 300)
	if err := ix.PublishExpvar(name); err != nil {
		t.Fatal(err)
	}
	if err := ix.PublishExpvar(name); err == nil {
		t.Fatal("duplicate expvar name should error, not panic")
	}
	if err := ix.PublishExpvar(""); err == nil {
		t.Fatal("empty expvar name should error")
	}
	q := data.Uniform(1, 3, 1)[0]
	if _, _, err := ix.KNN(q, 2); err != nil {
		t.Fatal(err)
	}
	v := expvar.Get(name)
	if v == nil {
		t.Fatal("published expvar not found")
	}
	var decoded struct {
		QueriesKNN   int64   `json:"queries_knn"`
		PagesPerDisk []int64 `json:"pages_per_disk"`
		Balance      float64 `json:"balance"`
	}
	if err := json.Unmarshal([]byte(v.String()), &decoded); err != nil {
		t.Fatalf("expvar JSON: %v (%s)", err, v.String())
	}
	if decoded.QueriesKNN != 1 || len(decoded.PagesPerDisk) != 2 {
		t.Fatalf("expvar decoded to %+v", decoded)
	}
}
