package parsearch

import (
	"container/heap"
	"fmt"

	"parsearch/internal/knn"
)

// Browser returns the stored vectors in increasing distance from a query
// point, one at a time, without fixing k in advance — the "distance
// browsing" mode of Hjaltason and Samet [HS 95]. Interactive similarity
// search uses it to fetch further results on demand.
//
// A Browser pins the index structure (the cutover read lock) and holds
// every disk's read lock until Close is called: inserts, deletes, and
// rebuilds block meanwhile, and other queries keep running — though once
// a writer is waiting, new queries on the contested disk queue behind it
// (RWMutex writer fairness). Keep browsing sessions short under
// write-heavy load.
type Browser struct {
	ix     *Index
	st     *state
	merge  mergeQueue
	closed bool
}

// mergeItem is the current head of one disk's ranking.
type mergeItem struct {
	disk   int
	result knn.Result
}

type mergeQueue struct {
	items    []mergeItem
	browsers []*knn.Browser
}

func (q *mergeQueue) Len() int { return len(q.items) }
func (q *mergeQueue) Less(i, j int) bool {
	a, b := q.items[i].result, q.items[j].result
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.Entry.ID < b.Entry.ID
}
func (q *mergeQueue) Swap(i, j int)      { q.items[i], q.items[j] = q.items[j], q.items[i] }
func (q *mergeQueue) Push(x interface{}) { q.items = append(q.items, x.(mergeItem)) }
func (q *mergeQueue) Pop() interface{} {
	old := q.items
	x := old[len(old)-1]
	q.items = old[:len(old)-1]
	return x
}

// Browse starts an incremental ranking of all stored vectors around q.
// Call Close when done.
func (ix *Index) Browse(q []float64) (*Browser, error) {
	ix.mu.RLock()
	if len(q) != ix.opts.Dim {
		ix.mu.RUnlock()
		return nil, fmt.Errorf("parsearch: query dimension %d, want %d", len(q), ix.opts.Dim)
	}
	st := ix.st
	// Hold every disk's read lock for the browser's lifetime: the
	// incremental ranking walks the trees lazily in Next, so the trees
	// must not mutate until Close.
	for _, sh := range st.shards {
		sh.mu.RLock()
	}
	b := &Browser{ix: ix, st: st}
	m := ix.metric()
	b.merge.browsers = make([]*knn.Browser, len(st.shards))
	for d, sh := range st.shards {
		b.merge.browsers[d] = knn.NewBrowserMetric(sh.tree, q, m)
		if res, ok := b.merge.browsers[d].Next(); ok {
			b.merge.items = append(b.merge.items, mergeItem{disk: d, result: res})
		}
	}
	heap.Init(&b.merge)
	return b, nil
}

// Next returns the next-nearest vector, or ok = false when every stored
// vector has been returned (or the browser is closed).
func (b *Browser) Next() (Neighbor, bool) {
	if b.closed || b.merge.Len() == 0 {
		return Neighbor{}, false
	}
	top := heap.Pop(&b.merge).(mergeItem)
	if res, ok := b.merge.browsers[top.disk].Next(); ok {
		heap.Push(&b.merge, mergeItem{disk: top.disk, result: res})
	}
	return Neighbor{
		ID:    top.result.Entry.ID,
		Point: top.result.Entry.Point,
		Dist:  top.result.Dist,
	}, true
}

// Close releases the disk read locks and the index's structure lock. The
// browser must not be used afterwards; Close is idempotent.
func (b *Browser) Close() {
	if b.closed {
		return
	}
	b.closed = true
	for _, sh := range b.st.shards {
		sh.mu.RUnlock()
	}
	b.ix.mu.RUnlock()
}
