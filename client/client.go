// Package client is the typed Go client of the parsearch serving API
// (package server / cmd/parsearchd). It mirrors the library surface —
// KNN, Range, PartialMatch, BatchKNN — over HTTP/JSON, mapping wire
// error codes back to the engine's sentinel errors so callers can keep
// using errors.Is(err, parsearch.ErrEmpty) and friends unchanged.
//
// Retry policy: a 503 (server draining, or no live replica) and any
// transport-level failure are retried with jittered exponential
// backoff, up to MaxRetries attempts, always respecting the caller's
// context. A 429 (admission queue full) is NOT retried by default —
// the server is telling the caller to shed load, and hammering it back
// defeats admission control; opt in with WithRetryOn429 where the
// caller knows the burst is transient.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"strings"
	"time"

	"parsearch"
	"parsearch/internal/wire"
)

// APIError is a non-2xx response from the server. It unwraps to the
// matching engine sentinel error when the wire code identifies one, so
// errors.Is(err, parsearch.ErrUnavailable) works across the network
// boundary.
type APIError struct {
	// Status is the HTTP status code; Code the machine-readable wire
	// code (wire.Code*); Msg the server's human-readable message.
	Status int
	Code   string
	Msg    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("parsearch server: %s (http %d, code %s)", e.Msg, e.Status, e.Code)
}

// Unwrap maps wire codes to the engine's sentinel errors.
func (e *APIError) Unwrap() error {
	switch e.Code {
	case wire.CodeEmpty:
		return parsearch.ErrEmpty
	case wire.CodeUnavailable, wire.CodeDraining:
		return parsearch.ErrUnavailable
	case wire.CodeDeadline:
		return context.DeadlineExceeded
	default:
		return nil
	}
}

// Client talks to one parsearch server. Create with New; the zero
// value is not usable. Client is safe for concurrent use.
type Client struct {
	base       string
	hc         *http.Client
	timeout    time.Duration
	maxRetries int
	baseDelay  time.Duration
	maxDelay   time.Duration
	retryOn429 bool
	rnd        func() float64 // jitter source, swappable in tests
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient swaps the underlying HTTP client (default
// http.DefaultClient).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithTimeout sets the per-request timeout applied when the caller's
// context has no deadline (default 30s; 0 disables).
func WithTimeout(d time.Duration) Option { return func(c *Client) { c.timeout = d } }

// WithMaxRetries sets the total number of attempts per request
// (default 3; 1 disables retries).
func WithMaxRetries(n int) Option { return func(c *Client) { c.maxRetries = n } }

// WithBackoff sets the base and cap of the jittered exponential
// backoff between attempts (defaults 50ms and 1s).
func WithBackoff(base, max time.Duration) Option {
	return func(c *Client) { c.baseDelay, c.maxDelay = base, max }
}

// WithRetryOn429 also retries queue-full rejections. Off by default:
// 429 means the server is shedding load, and retrying works against
// its admission control.
func WithRetryOn429() Option { return func(c *Client) { c.retryOn429 = true } }

// New returns a client for the server at base (e.g.
// "http://localhost:7080").
func New(base string, opts ...Option) *Client {
	c := &Client{
		base:       strings.TrimRight(base, "/"),
		hc:         http.DefaultClient,
		timeout:    30 * time.Second,
		maxRetries: 3,
		baseDelay:  50 * time.Millisecond,
		maxDelay:   time.Second,
		rnd:        rand.Float64,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// retryable reports whether an attempt's failure warrants another try.
func (c *Client) retryable(err error) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		if ae.Status == http.StatusServiceUnavailable {
			return true
		}
		if ae.Status == http.StatusTooManyRequests {
			return c.retryOn429
		}
		return false
	}
	// Transport-level failure (connection refused, reset, ...) — but a
	// context expiry is the caller's deadline, not the server's fault.
	return !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled)
}

// backoff returns the jittered delay before attempt n (0-based):
// base·2ⁿ capped at maxDelay, scaled by a random factor in [0.5, 1).
func (c *Client) backoff(n int) time.Duration {
	d := float64(c.baseDelay) * math.Pow(2, float64(n))
	if d > float64(c.maxDelay) {
		d = float64(c.maxDelay)
	}
	return time.Duration(d * (0.5 + 0.5*c.rnd()))
}

// post runs one request with retries, decoding a 2xx body into out.
func (c *Client) post(ctx context.Context, path string, reqBody, out any) error {
	cancel := context.CancelFunc(func() {})
	if _, ok := ctx.Deadline(); !ok && c.timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
	}
	defer cancel()

	payload, err := json.Marshal(reqBody)
	if err != nil {
		return fmt.Errorf("client: encoding request: %w", err)
	}
	var lastErr error
	for attempt := 0; attempt < c.maxRetries; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(c.backoff(attempt - 1)):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		lastErr = c.once(ctx, path, payload, out)
		if lastErr == nil || !c.retryable(lastErr) {
			return lastErr
		}
	}
	return lastErr
}

// once runs a single attempt.
func (c *Client) once(ctx context.Context, path string, payload []byte, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("client: building request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		// Surface the caller's deadline as such, not as a URL error.
		if ctxErr := ctx.Err(); ctxErr != nil {
			return ctxErr
		}
		return fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("client: reading response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		var er wire.ErrorResponse
		if json.Unmarshal(body, &er) != nil || er.Code == "" {
			er = wire.ErrorResponse{Error: strings.TrimSpace(string(body)), Code: wire.CodeInternal}
		}
		return &APIError{Status: resp.StatusCode, Code: er.Code, Msg: er.Error}
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("client: decoding response: %w", err)
	}
	return nil
}

// neighbors converts wire results back to engine types. An empty
// result stays nil, matching the library's no-match convention.
func neighbors(ws []wire.Neighbor) []parsearch.Neighbor {
	if len(ws) == 0 {
		return nil
	}
	out := make([]parsearch.Neighbor, len(ws))
	for i, n := range ws {
		out[i] = parsearch.Neighbor{ID: n.ID, Point: n.Point, Dist: n.Dist}
	}
	return out
}

// KNN finds the k nearest neighbors of q.
func (c *Client) KNN(ctx context.Context, q []float64, k int) ([]parsearch.Neighbor, error) {
	var resp wire.QueryResponse
	err := c.post(ctx, "/v1/knn", wire.KNNRequest{Query: q, K: k}, &resp)
	if err != nil {
		return nil, err
	}
	return neighbors(resp.Neighbors), nil
}

// KNNApprox is KNN with explicit approximate-tier knobs: the server
// runs the query with the given ε and recall target instead of its own
// defaults (see parsearch.Approx). A zero Approx forces an exact
// search regardless of the server's configuration.
func (c *Client) KNNApprox(ctx context.Context, q []float64, k int, a parsearch.Approx) ([]parsearch.Neighbor, error) {
	var resp wire.QueryResponse
	err := c.post(ctx, "/v1/knn", wire.KNNRequest{
		Query: q, K: k,
		Epsilon:      &a.Epsilon,
		RecallTarget: &a.RecallTarget,
	}, &resp)
	if err != nil {
		return nil, err
	}
	return neighbors(resp.Neighbors), nil
}

// Range finds all points inside the axis-aligned box [min, max].
func (c *Client) Range(ctx context.Context, min, max []float64) ([]parsearch.Neighbor, error) {
	var resp wire.QueryResponse
	err := c.post(ctx, "/v1/range", wire.RangeRequest{Min: min, Max: max}, &resp)
	if err != nil {
		return nil, err
	}
	return neighbors(resp.Neighbors), nil
}

// PartialMatch finds points matching the specified dimensions of spec
// within eps. Wildcard dimensions use parsearch.Wildcard (NaN), which
// the client transports as JSON null.
func (c *Client) PartialMatch(ctx context.Context, spec []float64, eps float64) ([]parsearch.Neighbor, error) {
	ws := make([]*float64, len(spec))
	for i := range spec {
		if !math.IsNaN(spec[i]) {
			v := spec[i]
			ws[i] = &v
		}
	}
	var resp wire.QueryResponse
	err := c.post(ctx, "/v1/partialmatch", wire.PartialMatchRequest{Spec: ws, Eps: eps}, &resp)
	if err != nil {
		return nil, err
	}
	return neighbors(resp.Neighbors), nil
}

// BatchKNN answers many k-NN queries in one request.
func (c *Client) BatchKNN(ctx context.Context, queries [][]float64, k int) ([][]parsearch.Neighbor, error) {
	var resp wire.BatchResponse
	err := c.post(ctx, "/v1/batch", wire.BatchRequest{Queries: queries, K: k}, &resp)
	if err != nil {
		return nil, err
	}
	out := make([][]parsearch.Neighbor, len(resp.Results))
	for i, ws := range resp.Results {
		out[i] = neighbors(ws)
	}
	return out, nil
}

// BatchKNNApprox is BatchKNN with explicit approximate-tier knobs,
// applied to every query of the batch (see KNNApprox).
func (c *Client) BatchKNNApprox(ctx context.Context, queries [][]float64, k int, a parsearch.Approx) ([][]parsearch.Neighbor, error) {
	var resp wire.BatchResponse
	err := c.post(ctx, "/v1/batch", wire.BatchRequest{
		Queries: queries, K: k,
		Epsilon:      &a.Epsilon,
		RecallTarget: &a.RecallTarget,
	}, &resp)
	if err != nil {
		return nil, err
	}
	out := make([][]parsearch.Neighbor, len(resp.Results))
	for i, ws := range resp.Results {
		out[i] = neighbors(ws)
	}
	return out, nil
}

// decodeStats decodes the advisory stats blob of a response; a missing
// or malformed blob degrades to zero stats, mirroring the server's
// omit-on-failure behavior.
func decodeStats(raw json.RawMessage, out any) {
	if len(raw) > 0 {
		_ = json.Unmarshal(raw, out)
	}
}

// KNNRaw posts a fully-specified wire request and returns the decoded
// per-query statistics with the neighbors. This is the coordinator's
// entry point: unlike KNN/KNNApprox it transports the shard
// restriction and the cross-network bound verbatim, and surfaces the
// shard's cost accounting (PagesSavedByRemoteBound et al.) that the
// convenience methods discard.
func (c *Client) KNNRaw(ctx context.Context, req wire.KNNRequest) ([]parsearch.Neighbor, parsearch.QueryStats, error) {
	var resp wire.QueryResponse
	if err := c.post(ctx, "/v1/knn", req, &resp); err != nil {
		return nil, parsearch.QueryStats{}, err
	}
	var stats parsearch.QueryStats
	decodeStats(resp.Stats, &stats)
	return neighbors(resp.Neighbors), stats, nil
}

// RangeRaw is KNNRaw for range queries.
func (c *Client) RangeRaw(ctx context.Context, req wire.RangeRequest) ([]parsearch.Neighbor, parsearch.QueryStats, error) {
	var resp wire.QueryResponse
	if err := c.post(ctx, "/v1/range", req, &resp); err != nil {
		return nil, parsearch.QueryStats{}, err
	}
	var stats parsearch.QueryStats
	decodeStats(resp.Stats, &stats)
	return neighbors(resp.Neighbors), stats, nil
}

// PartialMatchRaw is KNNRaw for partial-match queries.
func (c *Client) PartialMatchRaw(ctx context.Context, req wire.PartialMatchRequest) ([]parsearch.Neighbor, parsearch.QueryStats, error) {
	var resp wire.QueryResponse
	if err := c.post(ctx, "/v1/partialmatch", req, &resp); err != nil {
		return nil, parsearch.QueryStats{}, err
	}
	var stats parsearch.QueryStats
	decodeStats(resp.Stats, &stats)
	return neighbors(resp.Neighbors), stats, nil
}

// BatchKNNRaw is KNNRaw for batches.
func (c *Client) BatchKNNRaw(ctx context.Context, req wire.BatchRequest) ([][]parsearch.Neighbor, parsearch.BatchStats, error) {
	var resp wire.BatchResponse
	if err := c.post(ctx, "/v1/batch", req, &resp); err != nil {
		return nil, parsearch.BatchStats{}, err
	}
	var stats parsearch.BatchStats
	decodeStats(resp.Stats, &stats)
	out := make([][]parsearch.Neighbor, len(resp.Results))
	for i, ws := range resp.Results {
		out[i] = neighbors(ws)
	}
	return out, stats, nil
}

// Catchup requests one snapshot+delta round from the server (POST
// /v1/catchup). have/gen/offset describe the local durable directory's
// chain position — usually from parsearch.CatchupScan.
func (c *Client) Catchup(ctx context.Context, have bool, gen uint64, offset int64) (parsearch.CatchupDelta, error) {
	var resp wire.CatchupResponse
	err := c.post(ctx, "/v1/catchup", wire.CatchupRequest{Have: have, Gen: gen, Offset: offset}, &resp)
	if err != nil {
		return parsearch.CatchupDelta{}, err
	}
	delta := parsearch.CatchupDelta{
		Gen:        resp.Gen,
		NextOffset: resp.NextOffset,
		Reset:      resp.Reset,
	}
	for _, f := range resp.Files {
		delta.Files = append(delta.Files, parsearch.CatchupFile{Name: f.Name, Offset: f.Offset, Data: f.Data})
	}
	return delta, nil
}

// CatchupDir brings the durable directory up to the server's current
// synced state: it scans the local chain position, requests the delta,
// and applies it, looping until a round ships no bytes (each round may
// race new leader writes, so convergence can take more than one). The
// directory is then ready for parsearch.Open. Returns the bytes shipped.
func (c *Client) CatchupDir(ctx context.Context, dir string) (int64, error) {
	var total int64
	for {
		have, gen, offset, err := parsearch.CatchupScan(dir)
		if err != nil {
			return total, err
		}
		delta, err := c.Catchup(ctx, have, gen, offset)
		if err != nil {
			return total, err
		}
		var n int64
		for _, f := range delta.Files {
			n += int64(len(f.Data))
		}
		if n == 0 && !delta.Reset {
			return total, nil
		}
		if err := parsearch.CatchupApply(dir, delta); err != nil {
			return total, err
		}
		total += n
		if n == 0 {
			return total, nil
		}
	}
}

// Health fetches GET /healthz. Unlike the query methods it never
// retries and treats 503 as a successful fetch of a degraded status.
func (c *Client) Health(ctx context.Context) (wire.Health, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return wire.Health{}, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return wire.Health{}, fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	var h wire.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return wire.Health{}, fmt.Errorf("client: decoding health: %w", err)
	}
	return h, nil
}
