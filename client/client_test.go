package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"parsearch"
	"parsearch/internal/wire"
)

// fakeServer answers /v1/knn with a scripted status sequence, then 200.
func fakeServer(t *testing.T, statuses []int) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		if int(n) <= len(statuses) {
			st := statuses[n-1]
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(st)
			code := wire.CodeUnavailable
			if st == http.StatusTooManyRequests {
				code = wire.CodeQueueFull
			}
			_ = json.NewEncoder(w).Encode(wire.ErrorResponse{Error: "scripted", Code: code})
			return
		}
		_ = json.NewEncoder(w).Encode(wire.QueryResponse{
			Neighbors: []wire.Neighbor{{ID: 1, Point: []float64{0.5}, Dist: 0.25}},
		})
	}))
	t.Cleanup(ts.Close)
	return ts, &calls
}

func fastBackoff() Option { return WithBackoff(time.Millisecond, 5*time.Millisecond) }

func TestRetryOn503(t *testing.T) {
	ts, calls := fakeServer(t, []int{503, 503})
	cl := New(ts.URL, fastBackoff())
	ns, err := cl.KNN(context.Background(), []float64{0.5}, 1)
	if err != nil {
		t.Fatalf("after retries: %v", err)
	}
	if len(ns) != 1 || ns[0].ID != 1 {
		t.Errorf("result %+v", ns)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want 3", got)
	}
}

func TestRetriesExhausted(t *testing.T) {
	ts, calls := fakeServer(t, []int{503, 503, 503, 503})
	cl := New(ts.URL, fastBackoff(), WithMaxRetries(2))
	_, err := cl.KNN(context.Background(), []float64{0.5}, 1)
	if !errors.Is(err, parsearch.ErrUnavailable) {
		t.Errorf("err = %v, want ErrUnavailable", err)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("server saw %d calls, want 2", got)
	}
}

// countingBody counts MarshalJSON invocations so the test can pin how
// many times the retry loop encodes the request.
type countingBody struct {
	encodes *atomic.Int64
}

func (b countingBody) MarshalJSON() ([]byte, error) {
	b.encodes.Add(1)
	return []byte(`{"query":[0.5],"k":1}`), nil
}

// TestRetryEncodesRequestOnce is the regression guard for the retry
// loop's encode discipline: the payload is marshaled exactly once per
// logical request and the same bytes are re-sent on every attempt. A
// per-attempt re-marshal would triple encode cost under a retry storm
// — exactly when the coordinator is hammering a recovering shard.
func TestRetryEncodesRequestOnce(t *testing.T) {
	ts, calls := fakeServer(t, []int{503, 503})
	cl := New(ts.URL, fastBackoff())
	var encodes atomic.Int64
	var resp wire.QueryResponse
	if err := cl.post(context.Background(), "/v1/knn", countingBody{&encodes}, &resp); err != nil {
		t.Fatalf("after retries: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
	if got := encodes.Load(); got != 1 {
		t.Errorf("request marshaled %d times over 3 attempts, want exactly 1", got)
	}
	if len(resp.Neighbors) != 1 {
		t.Errorf("response %+v", resp)
	}
}

func TestNoRetryOn429ByDefault(t *testing.T) {
	ts, calls := fakeServer(t, []int{429})
	cl := New(ts.URL, fastBackoff())
	_, err := cl.KNN(context.Background(), []float64{0.5}, 1)
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want 429 APIError", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d calls, want 1 (429 must not be retried)", got)
	}
}

func TestRetryOn429OptIn(t *testing.T) {
	ts, calls := fakeServer(t, []int{429})
	cl := New(ts.URL, fastBackoff(), WithRetryOn429())
	if _, err := cl.KNN(context.Background(), []float64{0.5}, 1); err != nil {
		t.Fatalf("after opt-in retry: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("server saw %d calls, want 2", got)
	}
}

func TestErrorMapping(t *testing.T) {
	cases := []struct {
		code string
		want error
	}{
		{wire.CodeEmpty, parsearch.ErrEmpty},
		{wire.CodeUnavailable, parsearch.ErrUnavailable},
		{wire.CodeDraining, parsearch.ErrUnavailable},
		{wire.CodeDeadline, context.DeadlineExceeded},
	}
	for _, c := range cases {
		ae := &APIError{Status: 500, Code: c.code, Msg: "x"}
		if !errors.Is(ae, c.want) {
			t.Errorf("code %s does not map to %v", c.code, c.want)
		}
	}
	if errors.Is(&APIError{Code: wire.CodeBadRequest}, parsearch.ErrEmpty) {
		t.Error("bad_request wrongly maps to ErrEmpty")
	}
}

func TestNoRetryOn400(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		_ = json.NewEncoder(w).Encode(wire.ErrorResponse{Error: "bad", Code: wire.CodeBadRequest})
	}))
	t.Cleanup(ts.Close)
	cl := New(ts.URL, fastBackoff())
	_, err := cl.KNN(context.Background(), []float64{0.5}, 1)
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want 400 APIError", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d calls, want 1", got)
	}
}

func TestRetryOnTransportError(t *testing.T) {
	// A server that is down for the first attempt cannot be scripted
	// with httptest alone; instead point at a closed port and verify
	// the client classifies it retryable, then give up.
	cl := New("http://127.0.0.1:1", fastBackoff(), WithMaxRetries(2))
	start := time.Now()
	_, err := cl.KNN(context.Background(), []float64{0.5}, 1)
	if err == nil {
		t.Fatal("expected connection failure")
	}
	var ae *APIError
	if errors.As(err, &ae) {
		t.Fatalf("transport failure surfaced as APIError: %v", err)
	}
	// Two attempts with >= 0.5ms jittered backoff between them.
	if time.Since(start) < 500*time.Microsecond {
		t.Error("no backoff between attempts")
	}
}

func TestCallerDeadlineNotRetried(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(200 * time.Millisecond)
	}))
	t.Cleanup(ts.Close)
	cl := New(ts.URL, fastBackoff())
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := cl.KNN(ctx, []float64{0.5}, 1)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 150*time.Millisecond {
		t.Error("client kept retrying past the caller's deadline")
	}
}

func TestBackoffBounds(t *testing.T) {
	cl := New("http://x", WithBackoff(10*time.Millisecond, 40*time.Millisecond))
	for n := 0; n < 8; n++ {
		d := cl.backoff(n)
		if d < 5*time.Millisecond || d > 40*time.Millisecond {
			t.Errorf("backoff(%d) = %v outside [5ms, 40ms]", n, d)
		}
	}
}
