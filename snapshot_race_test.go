package parsearch

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"

	"parsearch/internal/fsx"
)

// Satellite of the durability PR: Save racing Insert/Delete must always
// serialize a consistent cut. Every point in a loaded snapshot must be
// exactly the vector that was inserted for its ID (coords are a pure
// function of the ID) — a torn vector, a half-applied delete, or a
// snapshot taken mid-mutation would break that. Run under -race this
// also proves the snapshot path takes the locks it claims to.

// racePoint derives a 4-dim vector from an ID.
func racePoint(id int) []float64 {
	return []float64{float64(id), float64(id * 3), float64(id*7 + 1), float64(id % 13)}
}

func TestSaveRacesMutations(t *testing.T) {
	ix, err := Open(Options{Dim: 4, Disks: 4})
	if err != nil {
		t.Fatal(err)
	}
	const seed = 64
	for i := 0; i < seed; i++ {
		if _, err := ix.Insert(racePoint(i)); err != nil {
			t.Fatal(err)
		}
	}

	var (
		wg   sync.WaitGroup
		stop atomic.Bool
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		next := seed
		del := 0
		for !stop.Load() {
			id, err := ix.Insert(racePoint(next))
			if err != nil {
				t.Errorf("insert: %v", err)
				return
			}
			if id != next {
				t.Errorf("insert got ID %d, want %d", id, next)
				return
			}
			next++
			// Delete only even seed IDs, so an ID is either live with
			// its full vector or tombstoned — never mutated in place.
			if del < seed {
				if err := ix.Delete(del); err != nil {
					t.Errorf("delete %d: %v", del, err)
					return
				}
				del += 2
			}
		}
	}()

	for round := 0; round < 30; round++ {
		var buf bytes.Buffer
		if err := ix.Save(&buf); err != nil {
			t.Fatalf("save round %d: %v", round, err)
		}
		re, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("load round %d: %v", round, err)
		}
		if err := re.CheckIntegrity(); err != nil {
			t.Fatalf("round %d: loaded cut fails integrity: %v", round, err)
		}
		table := tableOf(re)
		live := 0
		for id, p := range table {
			if p == nil {
				continue // tombstoned by the racing deleter
			}
			live++
			want := racePoint(id)
			if len(p) != len(want) {
				t.Fatalf("round %d: ID %d has %d dims, want %d", round, id, len(p), len(want))
			}
			for j := range want {
				if p[j] != want[j] {
					t.Fatalf("round %d: ID %d coord %d = %v, want %v — snapshot cut is not consistent", round, id, j, p[j], want[j])
				}
			}
		}
		if re.Len() != live {
			t.Fatalf("round %d: Len()=%d but %d live points in table", round, re.Len(), live)
		}
	}
	stop.Store(true)
	wg.Wait()
}

// TestSaveRacesDurableMutations is the same cut-consistency check on a
// durable index, where Save additionally races the WAL append path and
// Checkpoint's generation rotation.
func TestSaveRacesDurableMutations(t *testing.T) {
	ix, err := openDurable(durableOpts(), fsx.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	var (
		wg   sync.WaitGroup
		stop atomic.Bool
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		next := 0
		for !stop.Load() {
			if _, err := ix.Insert(durPoint(next, 3)); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
			next++
			if next%16 == 0 {
				if err := ix.Checkpoint(); err != nil {
					t.Errorf("checkpoint: %v", err)
					return
				}
			}
		}
	}()
	for round := 0; round < 15; round++ {
		var buf bytes.Buffer
		if err := ix.Save(&buf); err != nil {
			t.Fatalf("save round %d: %v", round, err)
		}
		re, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("load round %d: %v", round, err)
		}
		if err := re.CheckIntegrity(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for id, p := range tableOf(re) {
			if p == nil {
				continue
			}
			want := durPoint(id, 3)
			for j := range want {
				if p[j] != want[j] {
					t.Fatalf("round %d: ID %d coord %d torn", round, id, j)
				}
			}
		}
	}
	stop.Store(true)
	wg.Wait()
}
