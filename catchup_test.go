package parsearch

// Tests of the snapshot+delta catch-up layer: a follower directory is
// brought up to the leader's synced state by shipping the newest
// snapshot plus WAL suffixes, then opened with the standard recovery
// path. Equivalence is checked at the strongest level available —
// byte-identical point tables and query answers.

import (
	"path/filepath"
	"reflect"
	"testing"
)

// catchupLeader opens a durable leader index in its own temp dir.
func catchupLeader(t *testing.T) (*Index, Options) {
	t.Helper()
	opts := Options{Dim: 3, Disks: 4, Durable: true, Dir: t.TempDir()}
	ix, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	return ix, opts
}

// catchupRound runs one scan→Catchup→apply round against the leader
// and returns the delta.
func catchupRound(t *testing.T, leader *Index, dir string) CatchupDelta {
	t.Helper()
	have, gen, off, err := CatchupScan(dir)
	if err != nil {
		t.Fatal(err)
	}
	delta, err := leader.Catchup(have, gen, off)
	if err != nil {
		t.Fatal(err)
	}
	if err := CatchupApply(dir, delta); err != nil {
		t.Fatal(err)
	}
	return delta
}

// verifyFollower opens the follower directory and checks byte-identity
// with the leader.
func verifyFollower(t *testing.T, leader *Index, opts Options, dir string) {
	t.Helper()
	fopts := opts
	fopts.Dir = dir
	follower, err := Open(fopts)
	if err != nil {
		t.Fatalf("opening follower: %v", err)
	}
	defer follower.Close()
	if got, want := tableOf(follower), tableOf(leader); !reflect.DeepEqual(got, want) {
		t.Fatal("follower table differs from leader")
	}
	for q := 0; q < 8; q++ {
		query := durPoint(q*11+3, opts.Dim)
		got, _, err := follower.KNN(query, 5)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := leader.KNN(query, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d: follower KNN differs from leader", q)
		}
	}
	if err := follower.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestCatchupColdReplica(t *testing.T) {
	leader, opts := catchupLeader(t)
	for i := 0; i < 30; i++ {
		if _, err := leader.Insert(durPoint(i, opts.Dim)); err != nil {
			t.Fatal(err)
		}
	}
	if err := leader.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 30; i < 55; i++ {
		if _, err := leader.Insert(durPoint(i, opts.Dim)); err != nil {
			t.Fatal(err)
		}
	}

	dir := filepath.Join(t.TempDir(), "replica")
	delta := catchupRound(t, leader, dir)
	if !delta.Reset {
		t.Fatal("cold replica's first round was not a reset")
	}
	if len(delta.Files) == 0 {
		t.Fatal("reset delta shipped no files")
	}
	if got := leader.Metrics().CatchupBytes; got == 0 {
		t.Fatal("catchup_bytes metric stayed zero")
	}
	verifyFollower(t, leader, opts, dir)
}

func TestCatchupIncrementalRounds(t *testing.T) {
	leader, opts := catchupLeader(t)
	for i := 0; i < 20; i++ {
		if _, err := leader.Insert(durPoint(i, opts.Dim)); err != nil {
			t.Fatal(err)
		}
	}
	dir := filepath.Join(t.TempDir(), "replica")
	catchupRound(t, leader, dir)
	verifyFollower(t, leader, opts, dir)

	// New leader traffic, including a generation rotation: the second
	// round must extend the follower without a reset.
	for i := 20; i < 35; i++ {
		if _, err := leader.Insert(durPoint(i, opts.Dim)); err != nil {
			t.Fatal(err)
		}
	}
	if err := leader.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := leader.Delete(3); err != nil {
		t.Fatal(err)
	}
	delta := catchupRound(t, leader, dir)
	if delta.Reset {
		t.Fatal("incremental round reset a follower whose chain is intact")
	}
	if len(delta.Files) == 0 {
		t.Fatal("incremental round shipped nothing despite new leader traffic")
	}
	verifyFollower(t, leader, opts, dir)

	// Steady state: a third round with no new traffic ships zero bytes.
	delta = catchupRound(t, leader, dir)
	var bytes int64
	for _, f := range delta.Files {
		bytes += int64(len(f.Data))
	}
	if delta.Reset || bytes != 0 {
		t.Fatalf("steady-state round: reset=%v, %d bytes", delta.Reset, bytes)
	}
}

func TestCatchupResetAfterPrune(t *testing.T) {
	leader, opts := catchupLeader(t)
	for i := 0; i < 10; i++ {
		if _, err := leader.Insert(durPoint(i, opts.Dim)); err != nil {
			t.Fatal(err)
		}
	}
	dir := filepath.Join(t.TempDir(), "replica")
	catchupRound(t, leader, dir)

	// Rotate generations past the retention window: the follower's
	// generation is pruned on the leader, forcing a reset.
	for g := 0; g < 3; g++ {
		for i := 0; i < 5; i++ {
			if _, err := leader.Insert(durPoint(100+g*10+i, opts.Dim)); err != nil {
				t.Fatal(err)
			}
		}
		if err := leader.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	delta := catchupRound(t, leader, dir)
	if !delta.Reset {
		t.Fatal("pruned-out follower was not reset")
	}
	verifyFollower(t, leader, opts, dir)
}

func TestCatchupRejectsBadInput(t *testing.T) {
	leader, _ := catchupLeader(t)
	if _, err := leader.Catchup(false, 0, -1); err == nil {
		t.Fatal("negative offset accepted")
	}

	nonDurable, err := Open(Options{Dim: 3, Disks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nonDurable.Catchup(false, 0, 0); err == nil {
		t.Fatal("catch-up from a non-durable index accepted")
	}

	// CatchupApply must refuse wire-supplied names that are not chain
	// files — especially path escapes.
	dir := t.TempDir()
	for _, name := range []string{"../evil", "nested/wal-00000000000000000000.log", "notes.txt", ""} {
		err := CatchupApply(dir, CatchupDelta{Files: []CatchupFile{{Name: name, Data: []byte("x")}}})
		if err == nil {
			t.Fatalf("CatchupApply accepted file name %q", name)
		}
	}
	// A fragment that does not extend the local file exactly is refused.
	wal := "wal-00000000000000000000.log"
	if err := CatchupApply(dir, CatchupDelta{Files: []CatchupFile{{Name: wal, Offset: 0, Data: []byte("abcd")}}}); err != nil {
		t.Fatal(err)
	}
	if err := CatchupApply(dir, CatchupDelta{Files: []CatchupFile{{Name: wal, Offset: 9, Data: []byte("x")}}}); err == nil {
		t.Fatal("gap-leaving fragment accepted")
	}
}

func TestCatchupFollowerAheadIsReset(t *testing.T) {
	leader, opts := catchupLeader(t)
	for i := 0; i < 8; i++ {
		if _, err := leader.Insert(durPoint(i, opts.Dim)); err != nil {
			t.Fatal(err)
		}
	}
	have, gen, off, err := CatchupScan(opts.Dir)
	if err != nil {
		t.Fatal(err)
	}
	if !have {
		t.Fatal("leader's own dir scans as empty")
	}
	// A follower claiming more bytes than the leader has (a divergent
	// chain, e.g. the leader truncated a torn tail) must be reset, not
	// served a negative-length delta.
	delta, err := leader.Catchup(true, gen, off+4096)
	if err != nil {
		t.Fatal(err)
	}
	if !delta.Reset {
		t.Fatal("follower ahead of the leader was not reset")
	}
}
