package parsearch

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"parsearch/internal/disk"
	"parsearch/internal/vec"
	"parsearch/internal/xtree"
)

// RangeQuery returns all vectors inside the axis-aligned box [min, max]
// (boundary inclusive), searching all disks in parallel, together with
// the usual per-disk cost accounting. Results are ordered by ID; their
// Dist field is the distance to the box center.
//
// Range queries are the workload the classic declustering methods (Disk
// Modulo, FX, Hilbert) were designed for; the PartialMatch helper
// expresses the partial-match queries of [DS 82] and [KP 88] on top of
// this.
func (ix *Index) RangeQuery(min, max []float64) ([]Neighbor, QueryStats, error) {
	return ix.RangeQueryContext(context.Background(), min, max)
}

// RangeQueryContext is RangeQuery with a context, which may carry a
// per-request tracer (see WithTracer) and a deadline. A cancelled
// context returns ctx.Err() before the shard fan-out and again before
// the simulated I/O phase, so a disconnected client stops burning disk
// time.
func (ix *Index) RangeQueryContext(ctx context.Context, min, max []float64) (_ []Neighbor, stats QueryStats, err error) {
	return ix.rangeQueryContext(ctx, min, max, ShardSpec{})
}

// RangeQueryShardContext is RangeQueryContext restricted to a subset of
// the declustered disks (see ShardSpec): excluded disks are neither
// searched nor accounted and never flag the query Degraded. Each point
// lives on exactly one disk, so the per-group result sets are disjoint
// and a coordinator reproduces the unrestricted answer by concatenating
// them and sorting by ID.
func (ix *Index) RangeQueryShardContext(ctx context.Context, min, max []float64, shards ShardSpec) ([]Neighbor, QueryStats, error) {
	if err := shards.validate(ix.opts.Disks); err != nil {
		return nil, QueryStats{}, err
	}
	return ix.rangeQueryContext(ctx, min, max, shards)
}

func (ix *Index) rangeQueryContext(ctx context.Context, min, max []float64, shards ShardSpec) (_ []Neighbor, stats QueryStats, err error) {
	start := time.Now()
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	st := ix.st

	sp := ix.newSpan(ctx, "range")
	defer func() {
		if err != nil {
			ix.reg.QueryErrors.Inc()
			sp.errEvent(err)
		}
	}()

	if len(min) != ix.opts.Dim || len(max) != ix.opts.Dim {
		return nil, stats, fmt.Errorf("parsearch: range bounds have dimensions %d/%d, want %d",
			len(min), len(max), ix.opts.Dim)
	}
	for i := range min {
		if min[i] > max[i] {
			return nil, stats, fmt.Errorf("parsearch: range min > max in dimension %d", i)
		}
	}
	if ix.liveCount() == 0 {
		return nil, stats, ErrEmpty
	}
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}
	rect := vec.NewRect(min, max)
	center := rect.Center()

	// Plan the failure routing once (see KNN): one consistent failure
	// snapshot drives the search and the I/O accounting.
	routes, degraded := ix.plan(st, shards.mask(ix.opts.Disks))
	sp.planEvents(routes, degraded)

	// Phase 1: all live shards search in parallel, each under its own
	// tree's read lock. A failed disk's search runs against the chained
	// replica instead; shards with no live copy are skipped, making the
	// results best-effort (flagged Degraded).
	found := make([][]xtree.Entry, len(st.shards))
	visits := make([]int, len(st.shards))
	var wg sync.WaitGroup
	for d := range routes {
		sh := routes[d].sh
		if sh == nil {
			continue
		}
		wg.Add(1)
		go func(d int, sh *shard) {
			defer wg.Done()
			sh.mu.RLock()
			found[d], visits[d] = sh.tree.RangeSearch(rect)
			sh.mu.RUnlock()
			sp.emit(TraceEvent{Stage: StageSearch, Disk: d, Item: -1,
				Results: len(found[d]), Pages: visits[d]})
		}(d, sh)
	}
	wg.Wait()
	var totalVisits int64
	for _, v := range visits {
		totalVisits += int64(v)
	}
	ix.reg.NodeVisits.Add(totalVisits)
	// A box query has no distance bound to share across disks, so the
	// cooperative-pruning fields stay zero; the traversal cost is still
	// surfaced uniformly with the k-NN paths.
	stats.SearchPages = int(totalVisits)

	// Phase 2: page accounting — every disk reads its pages
	// intersecting the query box. Reads are charged to the disk the
	// routing selected; pages with no live copy are counted as
	// Unreachable instead of being read.
	stats.PagesPerDisk = make([]int, len(st.shards))
	var refs []disk.PageRef
	switch ix.opts.CostModel {
	case BucketPages:
		leafCap := ix.treeConfig().LeafCapacity
		ix.meta.Lock()
		for i := range st.cells {
			c := &st.cells[i]
			if c.count == 0 || !c.rect.Intersects(rect) {
				continue
			}
			rt := routes[c.disk]
			if rt.masked {
				continue
			}
			pages := (c.count + leafCap - 1) / leafCap
			stats.Cells++
			if rt.sh == nil {
				stats.Unreachable += pages
				continue
			}
			if rt.rerouted {
				stats.Rerouted += pages
			}
			stats.PagesPerDisk[rt.disk] += pages
			refs = append(refs, disk.PageRef{Disk: rt.disk, Blocks: pages})
		}
		ix.meta.Unlock()
	default: // TreePages
		for d := range routes {
			rt := routes[d]
			if rt.masked {
				continue
			}
			sh, charge := rt.sh, rt.disk
			if sh == nil {
				// No live copy: enumerate the primary tree's pages
				// anyway so the shortfall is visible as Unreachable.
				sh, charge = st.shards[d], -1
			}
			sh.mu.RLock()
			for _, leaf := range sh.tree.Leaves() {
				if !leaf.Rect().Intersects(rect) {
					continue
				}
				stats.Cells++
				if charge < 0 {
					stats.Unreachable += leaf.Super()
					continue
				}
				if rt.rerouted {
					stats.Rerouted += leaf.Super()
				}
				stats.PagesPerDisk[charge] += leaf.Super()
				refs = append(refs, disk.PageRef{Disk: charge, Blocks: leaf.Super()})
			}
			sh.mu.RUnlock()
		}
	}
	// Degraded only when dead pages intersect the box — a dead point
	// could then be inside it; dead pages fully outside the box cannot
	// hold matches, so the results are provably exact.
	stats.Degraded = stats.Unreachable > 0
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}
	batch, err := ix.array.ReadBatch(refs)
	if err != nil {
		return nil, stats, fmt.Errorf("parsearch: %w", err)
	}
	stats.MaxPages = batch.MaxPerDisk
	stats.TotalPages = batch.Total
	stats.Retries = batch.Retries
	stats.ParallelTime = batch.ParallelTime.Seconds()
	stats.SequentialTime = batch.SequentialTime.Seconds()
	stats.Speedup = batch.Speedup()
	sp.ioEvents(batch)
	ix.recordQuery(&ix.reg.QueriesRange, &stats, batch, start)

	if st.baseline != nil {
		pages, leaves := 0, 0
		st.baseline.mu.RLock()
		for _, leaf := range st.baseline.tree.Leaves() {
			if leaf.Rect().Intersects(rect) {
				pages += leaf.Super()
				leaves++
			}
		}
		st.baseline.mu.RUnlock()
		stats.SeqPages = pages
		stats.BaselineTime = ix.params.SimulateCost(leaves, pages).Seconds()
		if stats.ParallelTime > 0 {
			stats.BaselineSpeedup = stats.BaselineTime / stats.ParallelTime
		}
	}

	var out []Neighbor
	for _, entries := range found {
		for _, e := range entries {
			out = append(out, Neighbor{ID: e.ID, Point: e.Point, Dist: vec.Dist(center, e.Point)})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	sp.emit(TraceEvent{Stage: StageDone, Disk: -1, Item: -1,
		Results: len(out), Pages: stats.TotalPages, Degraded: stats.Degraded})
	return out, stats, nil
}

// Wildcard marks a dimension as unspecified in a PartialMatch query.
var Wildcard = math.NaN()

// PartialMatch runs a partial match query [DS 82, KP 88]: spec gives an
// exact value per specified dimension and Wildcard (NaN) for the rest;
// eps is the matching tolerance per specified dimension. It returns the
// vectors matching every specified dimension within eps.
func (ix *Index) PartialMatch(spec []float64, eps float64) ([]Neighbor, QueryStats, error) {
	return ix.PartialMatchContext(context.Background(), spec, eps)
}

// PartialMatchContext is PartialMatch with a context, which may carry a
// per-request tracer (see WithTracer).
func (ix *Index) PartialMatchContext(ctx context.Context, spec []float64, eps float64) ([]Neighbor, QueryStats, error) {
	return ix.PartialMatchShardContext(ctx, spec, eps, ShardSpec{})
}

// PartialMatchShardContext is PartialMatchContext restricted to a
// subset of the declustered disks (see RangeQueryShardContext).
func (ix *Index) PartialMatchShardContext(ctx context.Context, spec []float64, eps float64, shards ShardSpec) ([]Neighbor, QueryStats, error) {
	if err := shards.validate(ix.opts.Disks); err != nil {
		return nil, QueryStats{}, err
	}
	if len(spec) != ix.opts.Dim {
		return nil, QueryStats{}, fmt.Errorf("parsearch: partial-match spec has dimension %d, want %d",
			len(spec), ix.opts.Dim)
	}
	if eps < 0 {
		return nil, QueryStats{}, fmt.Errorf("parsearch: negative tolerance %v", eps)
	}
	min := make([]float64, len(spec))
	max := make([]float64, len(spec))
	specified := 0
	for i, v := range spec {
		if math.IsNaN(v) {
			min[i], max[i] = math.Inf(-1), math.Inf(1)
			continue
		}
		specified++
		min[i], max[i] = v-eps, v+eps
	}
	if specified == 0 {
		return nil, QueryStats{}, fmt.Errorf("parsearch: partial-match query specifies no dimension")
	}
	return ix.rangeQueryContext(ctx, min, max, shards)
}
