package exp

import (
	"fmt"
	"math/rand"

	"parsearch/internal/core"
)

func init() {
	register(Experiment{
		ID: "ext-hilbert2d", Figure: "extension",
		Title: "Low-dimensional range queries: the Hilbert curve's home turf [FB 93]",
		Run:   runExtHilbert2D,
	})
}

// runExtHilbert2D reproduces the context the paper cites from Faloutsos
// and Bhagwat: on a fine two-dimensional grid with range queries,
// Hilbert declustering clearly beats Disk Modulo and FX. It is only in
// high-dimensional *nearest-neighbor* search — where no grid finer than
// binary is possible — that Hilbert stops being near-optimal and the
// paper's coloring takes over. Measured: the mean ratio of the
// bottleneck disk's cell count to the ideal (total/disks) over random
// square range queries; 1.0 is perfect declustering.
func runExtHilbert2D(cfg Config) Result {
	cfg.validate()
	const (
		d     = 2
		order = 5 // 32x32 grid
		size  = 1 << order
	)
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Random square queries of side 3..10 cells.
	type query struct{ x0, y0, side int }
	queries := make([]query, 20*cfg.Queries)
	for i := range queries {
		side := 3 + rng.Intn(8)
		queries[i] = query{
			x0:   rng.Intn(size - side),
			y0:   rng.Intn(size - side),
			side: side,
		}
	}

	imbalance := func(s core.Strategy, q query) float64 {
		counts := make([]int, s.Disks())
		total := 0
		for x := q.x0; x < q.x0+q.side; x++ {
			for y := q.y0; y < q.y0+q.side; y++ {
				counts[s.Disk([]uint32{uint32(x), uint32(y)})]++
				total++
			}
		}
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		ideal := float64(total) / float64(s.Disks())
		return float64(max) / ideal
	}

	hil := Series{Name: "HIL"}
	dm := Series{Name: "DM"}
	fx := Series{Name: "FX"}
	var x []float64
	for _, disks := range []int{2, 4, 8, 16} {
		strategies := []struct {
			s      core.Strategy
			series *Series
		}{
			{core.MustNewHilbert(d, order, disks), &hil},
			{core.NewDiskModulo(disks), &dm},
			{core.NewFX(disks), &fx},
		}
		x = append(x, float64(disks))
		for _, st := range strategies {
			sum := 0.0
			for _, q := range queries {
				sum += imbalance(st.s, q)
			}
			st.series.Y = append(st.series.Y, sum/float64(len(queries)))
		}
	}
	return Result{
		ID: "ext-hilbert2d", Title: "2-d range queries: bottleneck/ideal ratio per strategy",
		XLabel: "disks", X: x,
		Series: []Series{hil, dm, fx},
		Notes: []string{
			fmt.Sprintf("%dx%d grid, %d random square range queries; 1.0 = perfect declustering", size, size, len(queries)),
			"expected: Hilbert at or near the best ratio in 2-d (its design point, [FB 93]) — the contrast to its high-dimensional NN behaviour in fig13/fig14",
		},
	}
}
