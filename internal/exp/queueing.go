package exp

import (
	"fmt"

	"parsearch"
	"parsearch/internal/data"
	"parsearch/internal/sim"
)

func init() {
	register(Experiment{
		ID: "ext-queueing", Figure: "extension",
		Title: "Query-stream queueing: response time vs. arrival rate per strategy",
		Run:   runExtQueueing,
	})
}

// runExtQueueing drives a Poisson query stream through FCFS disk queues
// (internal/sim) and sweeps the arrival rate: the strategy with the
// lowest bottleneck demand saturates last. This extends the paper's
// single-query evaluation toward its future-work goal of
// throughput-oriented declustering.
func runExtQueueing(cfg Config) Result {
	cfg.validate()
	pts, _ := uniformWorkload(cfg)
	queries := raw(data.Uniform(16*cfg.Queries, uniformDim, cfg.Seed+1))

	kinds := []parsearch.Kind{parsearch.NearOptimal, parsearch.Hilbert, parsearch.RoundRobin}
	demands := make([][][]float64, len(kinds))
	saturation := make([]float64, len(kinds))
	for i, kind := range kinds {
		ix := build(parsearch.Options{Dim: uniformDim, Disks: maxDisks, Kind: kind}, pts)
		d, err := ix.ServiceDemands(queries, 10)
		if err != nil {
			panic(fmt.Sprintf("exp: %v", err))
		}
		demands[i] = d
		saturation[i] = sim.SaturationRate(d)
	}

	// Sweep arrival rates as fractions of the best strategy's
	// saturation rate.
	base := saturation[0]
	series := make([]Series, len(kinds))
	for i, kind := range kinds {
		series[i] = Series{Name: string(kind)}
	}
	var x []float64
	for _, frac := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		rate := base * frac
		x = append(x, frac)
		for i := range kinds {
			s := sim.Run(demands[i], rate, cfg.Seed+7)
			series[i].Y = append(series[i].Y, s.MeanResponse*1000)
		}
	}
	notes := []string{
		fmt.Sprintf("N = %d uniform points, d = %d, %d disks, %d 10-NN queries; mean response (ms) vs. arrival rate",
			len(pts), uniformDim, maxDisks, len(queries)),
		fmt.Sprintf("x axis: arrival rate as a fraction of the near-optimal strategy's saturation rate (%.1f queries/s)", base),
	}
	for i, kind := range kinds {
		notes = append(notes, fmt.Sprintf("%s saturates at %.1f queries/s", kind, saturation[i]))
	}
	notes = append(notes, "expected: near-optimal sustains the highest rate before responses blow up")
	return Result{
		ID: "ext-queueing", Title: "mean response time under a Poisson query stream",
		XLabel: "load", X: x,
		Series: series,
		Notes:  notes,
	}
}
