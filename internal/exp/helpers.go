package exp

import (
	"fmt"

	"parsearch"
	"parsearch/internal/data"
	"parsearch/internal/vec"
)

// Standard workload parameters. The paper ran 16-dimensional data on up
// to 16 disks; the uniform-data experiments here use d=10 so that the
// laptop-scale point counts still give several pages per quadrant
// (N / 2^d >= a few pages), which the paper's multi-hundred-MByte data
// sets had at d=16; the real-data experiments use d=12 for the same
// reason. See DESIGN.md and EXPERIMENTS.md for the scaling rationale.
const (
	uniformDim  = 10
	uniformN    = 131072
	realDim     = 12
	realN       = 131072
	maxDisks    = 16
	fourierFams = 256
	textTopics  = 8
	queryJitter = 0.02
)

// diskSweep is the x axis of the speed-up experiments.
var diskSweep = []int{1, 2, 4, 8, 16}

// measurement is the average query cost over a query workload.
type measurement struct {
	MaxPages   float64 // pages on the bottleneck disk
	TotalPages float64 // pages over all disks
	SeqPages   float64 // pages of the sequential X-tree (baseline runs)
	ParTimeMS  float64 // simulated parallel search time
	BaseTimeMS float64 // simulated sequential search time (baseline runs)
	Speedup    float64 // BaselineSpeedup average (baseline runs)
}

// measure runs k-NN for every query and averages the cost statistics.
func measure(ix *parsearch.Index, queries [][]float64, k int) measurement {
	var m measurement
	for _, q := range queries {
		_, stats, err := ix.KNN(q, k)
		if err != nil {
			panic(fmt.Sprintf("exp: query failed: %v", err))
		}
		m.MaxPages += float64(stats.MaxPages)
		m.TotalPages += float64(stats.TotalPages)
		m.SeqPages += float64(stats.SeqPages)
		m.ParTimeMS += stats.ParallelTime * 1000
		m.BaseTimeMS += stats.BaselineTime * 1000
		m.Speedup += stats.BaselineSpeedup
	}
	n := float64(len(queries))
	m.MaxPages /= n
	m.TotalPages /= n
	m.SeqPages /= n
	m.ParTimeMS /= n
	m.BaseTimeMS /= n
	m.Speedup /= n
	return m
}

// build opens and fills an index, panicking on error (experiment
// configurations are static and must be valid).
func build(opts parsearch.Options, pts [][]float64) *parsearch.Index {
	ix, err := parsearch.Open(opts)
	if err != nil {
		panic(fmt.Sprintf("exp: %v", err))
	}
	if err := ix.Build(pts); err != nil {
		panic(fmt.Sprintf("exp: %v", err))
	}
	return ix
}

// raw converts vec.Points to the public API's [][]float64 (same backing
// arrays).
func raw(pts []vec.Point) [][]float64 {
	out := make([][]float64, len(pts))
	for i, p := range pts {
		out[i] = p
	}
	return out
}

// uniformWorkload returns the standard uniform data set and query points.
func uniformWorkload(cfg Config) (pts [][]float64, queries [][]float64) {
	n := cfg.scaled(uniformN)
	pts = raw(data.Uniform(n, uniformDim, cfg.Seed))
	queries = raw(data.Uniform(cfg.Queries, uniformDim, cfg.Seed+1))
	return pts, queries
}

// fourierWorkload returns the Fourier (CAD contour) data set with
// data-distributed query points.
func fourierWorkload(cfg Config, families int, jitter float64) (pts [][]float64, queries [][]float64) {
	n := cfg.scaled(realN)
	ps := data.Fourier(n, realDim, families, jitter, cfg.Seed)
	pts = raw(ps)
	queries = raw(data.QueriesFromData(ps, cfg.Queries, queryJitter, cfg.Seed+1))
	return pts, queries
}

// textWorkload returns the text-descriptor data set with data-distributed
// query points.
func textWorkload(cfg Config) (pts [][]float64, queries [][]float64) {
	n := cfg.scaled(realN)
	ps := data.Text(n, realDim, textTopics, cfg.Seed)
	pts = raw(ps)
	queries = raw(data.QueriesFromData(ps, cfg.Queries, queryJitter, cfg.Seed+1))
	return pts, queries
}
