package exp

// The benchmark-regression harness: reproducible wall-clock and
// page-cost measurements of the three query paths, emitted as the
// machine-readable BENCH_parsearch.json that CI diffs against the
// committed baseline. Unlike the figure experiments (simulated disk
// time), these measure real ns/op of the engine code, so thresholds
// are generous; the page counts and the balance coefficient are
// deterministic and tighten the comparison.

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"time"

	"parsearch"
	"parsearch/client"
	"parsearch/coord"
	"parsearch/internal/data"
	"parsearch/server"
)

// BenchProfile sizes a benchmark run. Reps runs each workload several
// times and keeps the fastest (best-of), damping scheduler noise.
// Packed builds the measured indexes with Options.Packed (contiguous
// float32 leaf slabs and batched distance kernels).
type BenchProfile struct {
	Name    string `json:"name"`
	Points  int    `json:"points"`
	Queries int    `json:"queries"`
	K       int    `json:"k"`
	Reps    int    `json:"reps"`
	Packed  bool   `json:"packed,omitempty"`
}

// BenchProfiles are the named run sizes: "short" for the per-PR CI
// gate, "full" for the recorded EXPERIMENTS.md numbers, "scale" the
// million-point packed-storage run whose latency percentiles gate the
// slab kernels at a size where cache behavior actually shows.
var BenchProfiles = map[string]BenchProfile{
	"short": {Name: "short", Points: 6000, Queries: 48, K: 10, Reps: 3},
	"full":  {Name: "full", Points: 40000, Queries: 200, K: 10, Reps: 5},
	"scale": {Name: "scale", Points: 1_000_000, Queries: 32, K: 10, Reps: 2, Packed: true},
}

// BenchDisks is the disk configuration the harness measures — the
// paper's largest array.
const BenchDisks = 16

// RecallFloor is the minimum mean recall CompareBench accepts from any
// workload that reports one. The documented default knobs (ε=0.1,
// recall_target=0.9) comfortably clear it on uniform data; dipping
// below means the approximate tier broke its contract.
const RecallFloor = 0.95

// benchDim matches the uniform-data experiments (see uniformDim).
const benchDim = uniformDim

// BenchWorkload is one measured workload of a bench run.
type BenchWorkload struct {
	// Name identifies the workload: knn16, range16, batch16.
	Name string `json:"name"`
	// NsPerOp is the best-of-reps wall-clock time per query (per batch
	// item for the batch workload).
	NsPerOp int64 `json:"ns_per_op"`
	// PagesPerQuery is the deterministic average page cost.
	PagesPerQuery float64 `json:"pages_per_query"`
	// Balance is the per-disk balance coefficient (mean/max of
	// per-disk page totals, 1.0 = perfectly even) over the whole
	// workload, read from the metrics registry.
	Balance float64 `json:"balance"`
	// SearchPagesPerQuery is the average number of tree pages the k-NN
	// searches actually visited; SavedPagesPerQuery is the average
	// number the cooperative cross-disk bound pruned away (zero when
	// the bound is disabled and for range queries). Their sum is the
	// deterministic independent-search cost; the split between them is
	// timing-dependent on the parallel path (see CompareBench).
	SearchPagesPerQuery float64 `json:"search_pages_per_query,omitempty"`
	SavedPagesPerQuery  float64 `json:"saved_pages_per_query,omitempty"`
	// LatencyP50Ns/P90Ns/P99Ns are wall-clock latency percentiles over
	// every query of the workload (all reps pooled), read from the
	// engine's QueryWallNs histogram. The histogram has power-of-two
	// buckets, so each value is the upper edge of the bucket holding the
	// percentile observation — coarse, but stable, which is what a
	// regression gate wants.
	LatencyP50Ns int64 `json:"latency_p50_ns,omitempty"`
	LatencyP90Ns int64 `json:"latency_p90_ns,omitempty"`
	LatencyP99Ns int64 `json:"latency_p99_ns,omitempty"`
	// Recall is the mean fraction of the exact k-NN result set the
	// workload's answers recovered, measured against the exact engine on
	// the same queries. Only the approximate rows (knn16-eps01,
	// knn16-lsh) set it; CompareBench gates it against a hard floor.
	Recall float64 `json:"recall,omitempty"`
}

// BenchReport is the schema of BENCH_parsearch.json.
type BenchReport struct {
	Profile    string          `json:"profile"`
	Disks      int             `json:"disks"`
	Dim        int             `json:"dim"`
	Points     int             `json:"points"`
	Queries    int             `json:"queries"`
	K          int             `json:"k"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Workloads  []BenchWorkload `json:"workloads"`
}

// Workload returns the named workload, or nil.
func (r *BenchReport) Workload(name string) *BenchWorkload {
	for i := range r.Workloads {
		if r.Workloads[i].Name == name {
			return &r.Workloads[i]
		}
	}
	return nil
}

// RunBench measures the knn/range/batch workloads of the profile on a
// BenchDisks-disk index and returns the report.
func RunBench(p BenchProfile, seed int64) (BenchReport, error) {
	if p.Points < 1 || p.Queries < 1 || p.K < 1 || p.Reps < 1 {
		return BenchReport{}, fmt.Errorf("exp: invalid bench profile %+v", p)
	}
	ix, err := parsearch.Open(parsearch.Options{Dim: benchDim, Disks: BenchDisks, Packed: p.Packed})
	if err != nil {
		return BenchReport{}, err
	}
	// A second index, identical except for the disabled cooperative
	// bound, anchors the shared-vs-independent pair: both builds are
	// deterministic, so the trees match and the two knn16 workloads
	// traverse the same pages — minus what the shared bound prunes.
	ixIndep, err := parsearch.Open(parsearch.Options{
		Dim: benchDim, Disks: BenchDisks, Packed: p.Packed, DisableSharedBound: true})
	if err != nil {
		return BenchReport{}, err
	}
	// A third index carries the LSH pre-filter for the approximate rows;
	// the exact rows never touch it, so the filter's build cost and its
	// recall behavior are isolated from the regression pair above.
	ixLSH, err := parsearch.Open(parsearch.Options{
		Dim: benchDim, Disks: BenchDisks, Packed: p.Packed, LSH: true})
	if err != nil {
		return BenchReport{}, err
	}
	pts := data.Uniform(p.Points, benchDim, seed)
	raw := make([][]float64, len(pts))
	for i := range pts {
		raw[i] = pts[i]
	}
	if err := ix.Build(raw); err != nil {
		return BenchReport{}, err
	}
	if err := ixIndep.Build(raw); err != nil {
		return BenchReport{}, err
	}
	if err := ixLSH.Build(raw); err != nil {
		return BenchReport{}, err
	}
	queries := make([][]float64, p.Queries)
	for i, q := range data.Uniform(p.Queries, benchDim, seed+1) {
		queries[i] = q
	}
	// Range boxes sized to select a small fraction of the space.
	boxes := make([][2][]float64, p.Queries)
	for i, c := range data.Uniform(p.Queries, benchDim, seed+2) {
		lo, hi := make([]float64, benchDim), make([]float64, benchDim)
		for j := range lo {
			lo[j], hi[j] = c[j]-0.2, c[j]+0.2
		}
		boxes[i] = [2][]float64{lo, hi}
	}

	// The serving row runs the same k-NN workload through the full HTTP
	// path — decode, admission, engine, JSON encode — over a loopback
	// listener, so the report tracks serving overhead next to the
	// library numbers. Coalescing is disabled: a serial driver would
	// only measure the coalescing window, not the serving cost.
	hsrv, err := server.New(ix, server.Config{DisableCoalescing: true})
	if err != nil {
		return BenchReport{}, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return BenchReport{}, err
	}
	hs := &http.Server{Handler: hsrv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()
	cl := client.New("http://" + ln.Addr().String())

	// The coord row runs the k-NN workload through the multi-node path:
	// three shard daemons (all full replicas — here three HTTP servers
	// over the same engine, which models replicas exactly because builds
	// are deterministic) under a scatter-gather coordinator, so the
	// report tracks fan-out, merge, and the cross-network kth-distance
	// bound next to the single-server row.
	shardURLs := []string{"http://" + ln.Addr().String()}
	for i := 0; i < 2; i++ {
		sln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return BenchReport{}, err
		}
		shs := &http.Server{Handler: hsrv.Handler()}
		go func() { _ = shs.Serve(sln) }()
		defer shs.Close()
		shardURLs = append(shardURLs, "http://"+sln.Addr().String())
	}
	co, err := coord.New(coord.Config{
		Shards: shardURLs, Dim: benchDim, Disks: BenchDisks,
	})
	if err != nil {
		return BenchReport{}, err
	}

	// The wal-ingest row measures the durable mutation path — WAL
	// framing, CRC, group commit — per insert. The "os" sync policy
	// keeps the number tracking engine code rather than the machine's
	// fsync latency (which the regression gate could not threshold).
	walDir, err := os.MkdirTemp("", "parsearch-bench-wal-")
	if err != nil {
		return BenchReport{}, err
	}
	defer os.RemoveAll(walDir)
	dix, err := parsearch.Open(parsearch.Options{
		Dim: benchDim, Disks: BenchDisks,
		Durable: true, Dir: walDir, WALSync: parsearch.WALSyncOS,
	})
	if err != nil {
		return BenchReport{}, err
	}
	ingest := data.Uniform(p.Queries, benchDim, seed+3)
	ingestNext := 0

	type benchCost struct {
		pages, search, saved int
		recallSum            float64
		recallN              int
	}

	// Ground truth for the approximate rows: the exact engine's answers
	// on the same queries (the equivalence battery pins those to a
	// linear scan). Computed once, outside any timed rep.
	truth := make([]map[int]bool, p.Queries)
	for i, q := range queries {
		res, _, err := ix.KNN(q, p.K)
		if err != nil {
			return BenchReport{}, err
		}
		ids := make(map[int]bool, len(res))
		for _, n := range res {
			ids[n.ID] = true
		}
		truth[i] = ids
	}
	recallOf := func(i int, res []parsearch.Neighbor) float64 {
		if len(truth[i]) == 0 {
			return 1
		}
		hits := 0
		for _, n := range res {
			if truth[i][n.ID] {
				hits++
			}
		}
		return float64(hits) / float64(len(truth[i]))
	}
	approxRun := func(on *parsearch.Index, a parsearch.Approx) (benchCost, error) {
		var c benchCost
		for i, q := range queries {
			res, stats, err := on.KNNApprox(q, p.K, a)
			if err != nil {
				return benchCost{}, err
			}
			c.pages += stats.TotalPages
			c.search += stats.SearchPages
			c.saved += stats.PagesSavedByBound
			c.recallSum += recallOf(i, res)
			c.recallN++
		}
		return c, nil
	}

	// The mixed-* rows measure the live-mutation story: the 95% query /
	// 5% ingest serving mix, alone and with an incremental reorganize in
	// flight. They run on a dedicated durable index so the mutations
	// cannot disturb the other rows' trees, capped in size so the scale
	// profile doesn't pay a million-point durable build for a
	// serving-overlap measurement.
	mixPoints := p.Points
	if mixPoints > 20000 {
		mixPoints = 20000
	}
	mixDir, err := os.MkdirTemp("", "parsearch-bench-mix-")
	if err != nil {
		return BenchReport{}, err
	}
	defer os.RemoveAll(mixDir)
	mix, err := parsearch.Open(parsearch.Options{
		Dim: benchDim, Disks: BenchDisks, Packed: p.Packed,
		Durable: true, Dir: mixDir, WALSync: parsearch.WALSyncOS,
		QuantileSplits: true,
	})
	if err != nil {
		return BenchReport{}, err
	}
	if err := mix.Build(raw[:mixPoints]); err != nil {
		return BenchReport{}, err
	}
	// The ingested points are clustered (scaled toward the origin):
	// sustained skew drifts the quantile splits, which is what gives the
	// in-flight reorganize real bucket splitting to do.
	mixPool := data.Uniform(4096, benchDim, seed+4)
	for _, pt := range mixPool {
		for j := range pt {
			pt[j] *= 0.2
		}
	}
	mixNext := 0
	mixInsert := func() error {
		_, err := mix.Insert(mixPool[mixNext%len(mixPool)])
		mixNext++
		return err
	}
	mixedLoop := func() (benchCost, error) {
		var c benchCost
		for i := 0; i < p.Queries; i++ {
			if i%20 == 19 { // every 20th op mutates: the 95/5 serving mix
				if err := mixInsert(); err != nil {
					return benchCost{}, err
				}
				continue
			}
			_, stats, err := mix.KNN(queries[i], p.K)
			if err != nil {
				return benchCost{}, err
			}
			c.pages += stats.TotalPages
			c.search += stats.SearchPages
			c.saved += stats.PagesSavedByBound
		}
		return c, nil
	}

	report := BenchReport{
		Profile: p.Name, Disks: BenchDisks, Dim: benchDim,
		Points: p.Points, Queries: p.Queries, K: p.K,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	knnRun := func(on *parsearch.Index) (benchCost, error) {
		var c benchCost
		for _, q := range queries {
			_, stats, err := on.KNN(q, p.K)
			if err != nil {
				return benchCost{}, err
			}
			c.pages += stats.TotalPages
			c.search += stats.SearchPages
			c.saved += stats.PagesSavedByBound
		}
		return c, nil
	}
	type workload struct {
		name string
		ix   *parsearch.Index
		ops  int // ns/op divisor per rep
		run  func() (benchCost, error)
	}
	workloads := []workload{
		{"knn16", ix, p.Queries, func() (benchCost, error) {
			return knnRun(ix)
		}},
		{"knn16-indep", ixIndep, p.Queries, func() (benchCost, error) {
			return knnRun(ixIndep)
		}},
		{"knn16-eps01", ix, p.Queries, func() (benchCost, error) {
			// ε-termination at the default documented knob. Page costs
			// are timing-dependent (the ε check composes with the shared
			// bound), so CompareBench gates this row on ns/op and recall
			// only.
			return approxRun(ix, parsearch.Approx{Epsilon: 0.1})
		}},
		{"knn16-lsh", ixLSH, p.Queries, func() (benchCost, error) {
			// Multi-probe LSH pre-filter at recall_target 0.9, exact
			// distances (ε=0): measures the probe-ordering tier alone.
			return approxRun(ixLSH, parsearch.Approx{RecallTarget: 0.9})
		}},
		{"range16", ix, p.Queries, func() (benchCost, error) {
			var c benchCost
			for _, b := range boxes {
				_, stats, err := ix.RangeQuery(b[0], b[1])
				if err != nil {
					return benchCost{}, err
				}
				c.pages += stats.TotalPages
				c.search += stats.SearchPages
			}
			return c, nil
		}},
		{"batch16", ix, p.Queries, func() (benchCost, error) {
			_, stats, err := ix.BatchKNN(queries, p.K)
			if err != nil {
				return benchCost{}, err
			}
			return benchCost{pages: stats.TotalPages, search: stats.SearchPages,
				saved: stats.PagesSavedByBound}, nil
		}},
		{"server-knn16", ix, p.Queries, func() (benchCost, error) {
			// The client discards per-query stats, so the page costs
			// come from the registry delta around the rep.
			before := ix.Metrics()
			for _, q := range queries {
				if _, err := cl.KNN(context.Background(), q, p.K); err != nil {
					return benchCost{}, err
				}
			}
			after := ix.Metrics()
			return benchCost{
				pages:  int(after.PagesRead - before.PagesRead),
				search: int(after.SearchPages - before.SearchPages),
				saved:  int(after.PagesSavedByBound - before.PagesSavedByBound),
			}, nil
		}},
		{"coord-knn16", ix, p.Queries, func() (benchCost, error) {
			// The coordinator's stats aggregate the per-shard executed
			// pages (deterministic, phantom accounting); saved counts the
			// phase-2 pages attributed to the shipped remote bound — its
			// split against the shards' own local tightening is
			// timing-dependent, so only the executed total is gated
			// exactly.
			var c benchCost
			for _, q := range queries {
				_, st, err := co.KNN(context.Background(), q, p.K)
				if err != nil {
					return benchCost{}, err
				}
				c.pages += st.TotalPages
				c.saved += st.PagesSavedByRemoteBound
			}
			return c, nil
		}},
		{"wal-ingest", dix, 16 * p.Queries, func() (benchCost, error) {
			// Inserts accumulate across reps (each insert is a fresh ID);
			// the cost model is per-mutation, not per-table-size, at
			// these scales. The op count is a large multiple of the
			// query count: a single insert is microseconds, so the rep
			// must amortize timer granularity and page-cache variance
			// for the regression gate to see engine cost, not jitter.
			for i := 0; i < 16*p.Queries; i++ {
				if _, err := dix.Insert(ingest[ingestNext%len(ingest)]); err != nil {
					return benchCost{}, err
				}
				ingestNext++
			}
			return benchCost{}, nil
		}},
		{"mixed-serve16", mix, p.Queries, func() (benchCost, error) {
			return mixedLoop()
		}},
		{"mixed-reorg16", mix, p.Queries, func() (benchCost, error) {
			// Drift burst: enough clustered inserts to overload buckets,
			// so the reorganize running under the serving mix has real
			// splitting to do (at the tiny test scale it may legitimately
			// find nothing — the row still measures the overlap).
			for i := 0; i < mixPoints/4; i++ {
				if err := mixInsert(); err != nil {
					return benchCost{}, err
				}
			}
			reorgDone := make(chan error, 1)
			go func() {
				_, err := mix.ReorganizeStats()
				reorgDone <- err
			}()
			c, err := mixedLoop()
			if rerr := <-reorgDone; err == nil && rerr != nil {
				err = rerr
			}
			return c, err
		}},
	}

	for _, w := range workloads {
		// The balance coefficient comes from the registry's cumulative
		// per-disk pages, reset per workload so workloads don't bleed
		// into each other.
		w.ix.ResetMetrics()
		best := time.Duration(0)
		var cost benchCost
		for rep := 0; rep < p.Reps; rep++ {
			start := time.Now()
			c, err := w.run()
			elapsed := time.Since(start)
			if err != nil {
				return BenchReport{}, fmt.Errorf("exp: bench %s: %w", w.name, err)
			}
			cost = c
			if rep == 0 || elapsed < best {
				best = elapsed
			}
		}
		m := w.ix.Metrics()
		row := BenchWorkload{
			Name:                w.name,
			NsPerOp:             best.Nanoseconds() / int64(w.ops),
			PagesPerQuery:       float64(cost.pages) / float64(w.ops),
			Balance:             m.Balance,
			SearchPagesPerQuery: float64(cost.search) / float64(w.ops),
			SavedPagesPerQuery:  float64(cost.saved) / float64(w.ops),
			LatencyP50Ns:        m.QueryWallNs.Quantile(0.50),
			LatencyP90Ns:        m.QueryWallNs.Quantile(0.90),
			LatencyP99Ns:        m.QueryWallNs.Quantile(0.99),
		}
		if cost.recallN > 0 {
			row.Recall = cost.recallSum / float64(cost.recallN)
		}
		report.Workloads = append(report.Workloads, row)
	}
	return report, nil
}

// CompareBench diffs a fresh report against a baseline: a workload
// regresses when its ns/op grows by more than nsThreshold (fractional,
// e.g. 0.25 = +25%) or its deterministic page cost grows at all beyond
// rounding. Workloads present in only one report are ignored (the
// suite may grow). It returns a line per regression.
//
// Search-page costs get a looser check than executed pages: on the
// parallel k-NN path the visited/saved split depends on goroutine
// timing (only the sum is deterministic), so the per-run visited count
// may wander a little. It still must not grow past the baseline by
// more than 10% + 1 page — the independent cost bounds it from above.
//
// Beyond the baseline diff, the current report must prove the
// cooperative bound is alive: every workload with an "-indep" sibling
// (same queries, shared bound disabled) must visit strictly fewer
// search pages than the sibling, and the pair's visited+saved total
// must equal the sibling's visited total — the phantom accounting
// guarantees the equality exactly, so any drift is a correctness bug,
// not noise.
func CompareBench(baseline, current BenchReport, nsThreshold float64) []string {
	var regressions []string
	for _, b := range baseline.Workloads {
		c := current.Workload(b.Name)
		if c == nil || b.NsPerOp <= 0 {
			continue
		}
		// The wal-* rows time the durable mutation path, which is
		// write()-syscall bound: per-op cost varies with filesystem and
		// page-cache state far more than the compute-bound query rows.
		// Triple the threshold — still tight enough to flag a gross
		// regression (an accidental per-insert fsync under the "os"
		// policy is a 10-100x step), loose enough not to flake. The
		// mixed-* rows get the same slack: they mutate through the WAL
		// and (in the reorganize variant) race a restructuring pass, so
		// both their wall clock and their page costs are legitimately
		// run-dependent — the page gates are skipped for them entirely.
		nsT := nsThreshold
		mixed := strings.HasPrefix(b.Name, "mixed-")
		if mixed || strings.HasPrefix(b.Name, "wal-") {
			nsT = 3 * nsThreshold
		}
		// The approximate rows' page costs depend on when the ε check or
		// the LSH filter fires relative to cross-disk bound tightening —
		// timing, not determinism — so they get the ns/op and recall
		// gates only.
		if b.Recall > 0 || c.Recall > 0 {
			mixed = true
		}
		if ratio := float64(c.NsPerOp) / float64(b.NsPerOp); ratio > 1+nsT {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %d ns/op vs baseline %d (%.0f%% > %.0f%% threshold)",
				b.Name, c.NsPerOp, b.NsPerOp, (ratio-1)*100, nsT*100))
		}
		if !mixed && c.PagesPerQuery > b.PagesPerQuery*1.01+0.5 {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %.1f pages/query vs baseline %.1f (page cost is deterministic)",
				b.Name, c.PagesPerQuery, b.PagesPerQuery))
		}
		if !mixed && c.SearchPagesPerQuery > b.SearchPagesPerQuery*1.10+1 {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %.1f search pages/query vs baseline %.1f (bound pruning got weaker)",
				b.Name, c.SearchPagesPerQuery, b.SearchPagesPerQuery))
		}
		// The latency percentiles live on power-of-two bucket edges, so
		// they only move in 2x steps: allow one step of wall-clock noise
		// and flag anything beyond (> 4x means at least two buckets up).
		if b.LatencyP99Ns > 0 && c.LatencyP99Ns > 4*b.LatencyP99Ns {
			regressions = append(regressions, fmt.Sprintf(
				"%s: p99 latency %d ns vs baseline %d ns (more than two histogram buckets up)",
				b.Name, c.LatencyP99Ns, b.LatencyP99Ns))
		}
	}
	// RecallFloor is absolute, not baseline-relative: an approximate row
	// whose measured recall dips below it fails regardless of what the
	// baseline recorded — approximation may trade pages for recall, but
	// never below the documented floor.
	for _, c := range current.Workloads {
		if c.Recall != 0 && c.Recall < RecallFloor {
			regressions = append(regressions, fmt.Sprintf(
				"%s: recall %.3f below the %.2f floor", c.Name, c.Recall, RecallFloor))
		}
	}
	for _, c := range current.Workloads {
		indep := current.Workload(c.Name + "-indep")
		if indep == nil {
			continue
		}
		if c.SearchPagesPerQuery >= indep.SearchPagesPerQuery {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %.1f search pages/query, independent sibling %.1f (cooperative pruning saved nothing)",
				c.Name, c.SearchPagesPerQuery, indep.SearchPagesPerQuery))
		}
		sum := c.SearchPagesPerQuery + c.SavedPagesPerQuery
		if diff := sum - indep.SearchPagesPerQuery; diff > 1e-6 || diff < -1e-6 {
			regressions = append(regressions, fmt.Sprintf(
				"%s: visited+saved = %.3f pages/query, independent sibling visited %.3f (must match exactly)",
				c.Name, sum, indep.SearchPagesPerQuery))
		}
	}
	return regressions
}

// MarshalBenchReport renders the report as the committed JSON format
// (indented, trailing newline).
func MarshalBenchReport(r BenchReport) ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
