package exp

import (
	"fmt"

	"parsearch/internal/data"
	"parsearch/internal/xtree"
)

func init() {
	register(Experiment{
		ID: "abl-quality", Figure: "ablation",
		Title: "X-tree structure quality vs. dimension (insert-built vs. bulk-loaded)",
		Run:   runAblQuality,
	})
}

// runAblQuality measures the structural quality criteria of the X-tree
// paper — directory overlap, storage utilization, supernode extent — for
// insert-built and bulk-loaded trees across dimensions. Both paths keep
// directory overlap tiny, by different means: insert-built trees refuse
// overlapping splits and grow supernodes instead, while the bulk loader's
// volume-minimal cuts stay supernode-free at comparable fill.
func runAblQuality(cfg Config) Result {
	cfg.validate()
	n := cfg.scaled(16384)

	insOverlap := Series{Name: "ins overlap"}
	blkOverlap := Series{Name: "bulk overlap"}
	insFill := Series{Name: "ins fill"}
	blkFill := Series{Name: "bulk fill"}
	superBlocks := Series{Name: "#superblk"}
	var x []float64
	for _, d := range []int{4, 8, 12, 16} {
		pts := data.Uniform(n, d, cfg.Seed)

		ins := xtree.New(xtree.DefaultConfig(d))
		for i, p := range pts {
			ins.Insert(p, i)
		}
		blk := xtree.New(xtree.DefaultConfig(d))
		entries := make([]xtree.Entry, len(pts))
		for i, p := range pts {
			entries[i] = xtree.Entry{Point: p, ID: i}
		}
		blk.BulkLoad(entries)

		ia := ins.Analyze()
		ba := blk.Analyze()
		x = append(x, float64(d))
		insOverlap.Y = append(insOverlap.Y, ia.MeanDirOverlap)
		blkOverlap.Y = append(blkOverlap.Y, ba.MeanDirOverlap)
		insFill.Y = append(insFill.Y, ia.LeafFill)
		blkFill.Y = append(blkFill.Y, ba.LeafFill)
		superBlocks.Y = append(superBlocks.Y, float64(ia.SuperBlocks))
	}
	return Result{
		ID: "abl-quality", Title: "X-tree structure quality vs. dimension",
		XLabel: "dimension", X: x,
		Series: []Series{insOverlap, blkOverlap, insFill, blkFill, superBlocks},
		Notes: []string{
			fmt.Sprintf("N = %d uniform points; overlap = mean sibling intersection/union volume", n),
			"expected: overlap tiny for both paths; insert-built trees trade supernode blocks for zero overlap in high d",
		},
	}
}
