// Package exp is the experiment harness: it regenerates every figure of
// the paper's evaluation (and a set of ablations motivated by its design
// choices) as numeric series, printed in the same rows the paper plots.
//
// Each experiment is registered under a stable id (fig1, fig2, ...,
// abl-knn, ...); cmd/experiments runs them by id and the repository's
// benchmark suite wraps them as testing.B benchmarks. See DESIGN.md for
// the experiment index and EXPERIMENTS.md for recorded paper-vs-measured
// results.
package exp

import (
	"fmt"
	"sort"
	"strings"
)

// Config tunes an experiment run without changing its structure.
type Config struct {
	// Scale multiplies the data-set sizes; 1.0 reproduces the standard
	// configuration, smaller values give quick runs. Must be > 0.
	Scale float64
	// Queries is the number of query points averaged per measurement.
	// Must be >= 1.
	Queries int
	// Seed makes runs reproducible.
	Seed int64
}

// DefaultConfig is the standard configuration used by EXPERIMENTS.md.
func DefaultConfig() Config {
	return Config{Scale: 1, Queries: 20, Seed: 42}
}

func (c Config) validate() {
	if c.Scale <= 0 {
		panic(fmt.Sprintf("exp: scale %v", c.Scale))
	}
	if c.Queries < 1 {
		panic(fmt.Sprintf("exp: %d queries", c.Queries))
	}
}

// scaled applies the scale factor to a point count, keeping at least 256.
func (c Config) scaled(n int) int {
	s := int(float64(n) * c.Scale)
	if s < 256 {
		s = 256
	}
	return s
}

// Series is one curve of a figure: y values over x values.
type Series struct {
	Name string
	Y    []float64
}

// Result is the output of one experiment: a table of series over a
// common x axis, plus free-form notes.
type Result struct {
	ID     string
	Title  string
	XLabel string
	X      []float64
	Series []Series
	Notes  []string
}

// Format renders the result as an aligned text table, the harness's
// equivalent of the paper's plot.
func (r Result) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", r.ID, r.Title)
	if len(r.X) > 0 {
		fmt.Fprintf(&sb, "%-14s", r.XLabel)
		for _, s := range r.Series {
			fmt.Fprintf(&sb, "%14s", s.Name)
		}
		sb.WriteByte('\n')
		for i, x := range r.X {
			fmt.Fprintf(&sb, "%-14.4g", x)
			for _, s := range r.Series {
				if i < len(s.Y) {
					fmt.Fprintf(&sb, "%14.4g", s.Y[i])
				} else {
					fmt.Fprintf(&sb, "%14s", "-")
				}
			}
			sb.WriteByte('\n')
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// TSV renders the result as tab-separated values with a header row —
// ready for gnuplot or a spreadsheet.
func (r Result) TSV() string {
	var sb strings.Builder
	sb.WriteString(r.XLabel)
	for _, s := range r.Series {
		sb.WriteByte('\t')
		sb.WriteString(s.Name)
	}
	sb.WriteByte('\n')
	for i, x := range r.X {
		fmt.Fprintf(&sb, "%g", x)
		for _, s := range r.Series {
			if i < len(s.Y) {
				fmt.Fprintf(&sb, "\t%g", s.Y[i])
			} else {
				sb.WriteString("\t")
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Experiment is a registered, runnable reproduction of one paper figure
// or ablation.
type Experiment struct {
	// ID is the stable identifier (fig1, abl-knn, ...).
	ID string
	// Figure names the paper figure reproduced ("Figure 12"), or
	// "ablation".
	Figure string
	// Title is a one-line description.
	Title string
	// Run executes the experiment.
	Run func(Config) Result
}

var registry = map[string]Experiment{}

// register adds an experiment; duplicate ids are programming errors.
func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic(fmt.Sprintf("exp: duplicate experiment id %q", e.ID))
	}
	registry[e.ID] = e
}

// All returns every registered experiment sorted by id (figures first,
// then ablations).
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		fi := strings.HasPrefix(out[i].ID, "fig")
		fj := strings.HasPrefix(out[j].ID, "fig")
		if fi != fj {
			return fi
		}
		if fi && fj {
			// Numeric order for figN ids.
			var a, b int
			fmt.Sscanf(out[i].ID, "fig%d", &a)
			fmt.Sscanf(out[j].ID, "fig%d", &b)
			if a != b {
				return a < b
			}
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Get returns the experiment with the given id.
func Get(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}
