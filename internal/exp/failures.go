package exp

import (
	"fmt"

	"parsearch"
)

func init() {
	register(Experiment{
		ID: "ext-failures", Figure: "extension",
		Title: "Fault tolerance: speedup and availability as disks fail",
		Run:   runExtFailures,
	})
}

// failureDisks is the progressive failure order of the sweep: spaced
// disks on an 8-disk array, so no chained primary/replica pair dies
// together and the replicated configuration keeps every page reachable.
var failureDisks = []int{0, 2, 4, 6}

// runExtFailures sweeps 0..4 failed disks on an 8-disk array and
// measures, with and without replicated declustering, the surviving
// speedup and the availability — the fraction of 10-NN queries that
// are error-free and exact (not degraded). Without replication every
// failure makes some data unreachable, so availability collapses;
// with chained replication the queries stay exact while the speedup
// gracefully degrades (the replica disks absorb the failed disks'
// reads on top of their own).
func runExtFailures(cfg Config) Result {
	cfg.validate()
	const disks = 8
	pts, queries := uniformWorkload(cfg)

	var x []float64
	for f := 0; f <= len(failureDisks); f++ {
		x = append(x, float64(f))
	}
	notes := []string{fmt.Sprintf("N = %d uniform points, d = %d, %d disks, 10-NN; failing disks %v in order",
		len(pts), uniformDim, disks, failureDisks)}

	var series []Series
	for _, repl := range []int{0, 1} {
		ix := build(parsearch.Options{Dim: uniformDim, Disks: disks, Replication: repl}, pts)
		speed := Series{Name: fmt.Sprintf("speedup r=%d", repl)}
		avail := Series{Name: fmt.Sprintf("avail r=%d", repl)}
		for f := 0; f <= len(failureDisks); f++ {
			if f > 0 {
				if err := ix.FailDisk(failureDisks[f-1]); err != nil {
					panic(fmt.Sprintf("exp: %v", err))
				}
			}
			var sumSpeed float64
			exact, answered := 0, 0
			for _, q := range queries {
				_, stats, err := ix.KNN(q, 10)
				if err != nil {
					continue
				}
				answered++
				sumSpeed += stats.Speedup
				if !stats.Degraded {
					exact++
				}
			}
			if answered > 0 {
				speed.Y = append(speed.Y, sumSpeed/float64(answered))
			} else {
				speed.Y = append(speed.Y, 0)
			}
			avail.Y = append(avail.Y, float64(exact)/float64(len(queries)))
		}
		series = append(series, speed, avail)
	}
	notes = append(notes,
		"expected: r=0 availability collapses with the first failure; r=1 stays 1.0 with degrading speedup")
	return Result{
		ID: "ext-failures", Title: "speedup and availability under disk failures",
		XLabel: "failed disks", X: x,
		Series: series,
		Notes:  notes,
	}
}
