package exp

import (
	"fmt"

	"parsearch"
	"parsearch/internal/core"
	"parsearch/internal/data"
	"parsearch/internal/knn"
	"parsearch/internal/vec"
	"parsearch/internal/xtree"
)

func init() {
	register(Experiment{
		ID: "abl-knn", Figure: "ablation",
		Title: "HS vs. RKV page accesses on the sequential X-tree",
		Run:   runAblKNN,
	})
	register(Experiment{
		ID: "abl-indirect", Figure: "ablation",
		Title: "Value of the indirect-neighbor guarantee (col vs. direct-only coloring)",
		Run:   runAblIndirect,
	})
	register(Experiment{
		ID: "abl-fold", Figure: "ablation",
		Title: "Complement folding vs. naive modulo for arbitrary disk counts",
		Run:   runAblFold,
	})
	register(Experiment{
		ID: "abl-quantile", Figure: "ablation",
		Title: "Midpoint vs. quantile splits on skewed data",
		Run:   runAblQuantile,
	})
	register(Experiment{
		ID: "abl-costmodel", Figure: "ablation",
		Title: "Tree-page vs. bucket-page cost accounting",
		Run:   runAblCostModel,
	})
	register(Experiment{
		ID: "abl-supernode", Figure: "ablation",
		Title: "X-tree supernodes on vs. off (R*-tree behaviour)",
		Run:   runAblSupernode,
	})
}

// runAblKNN compares the page accesses of the two NN algorithms over the
// same trees — the reason the engine uses HS.
func runAblKNN(cfg Config) Result {
	cfg.validate()
	n := cfg.scaled(16384)
	hs := Series{Name: "HS"}
	rkv := Series{Name: "RKV"}
	var x []float64
	for _, d := range []int{2, 4, 8, 12, 16} {
		pts := data.Uniform(n, d, cfg.Seed)
		tree := xtree.New(xtree.DefaultConfig(d))
		entries := make([]xtree.Entry, len(pts))
		for i, p := range pts {
			entries[i] = xtree.Entry{Point: p, ID: i}
		}
		tree.BulkLoad(entries)
		queries := data.Uniform(cfg.Queries, d, cfg.Seed+1)
		var hsTotal, rkvTotal int
		for _, q := range queries {
			_, a := knn.HS(tree, q, 1)
			hsTotal += a.PageAccesses
			_, b := knn.RKV(tree, q, 1)
			rkvTotal += b.PageAccesses
		}
		x = append(x, float64(d))
		hs.Y = append(hs.Y, float64(hsTotal)/float64(len(queries)))
		rkv.Y = append(rkv.Y, float64(rkvTotal)/float64(len(queries)))
	}
	return Result{
		ID: "abl-knn", Title: "1-NN page accesses: HS vs. RKV",
		XLabel: "dimension", X: x,
		Series: []Series{hs, rkv},
		Notes: []string{
			fmt.Sprintf("N = %d uniform points per dimension", n),
			"expected: HS <= RKV everywhere (HS is I/O-optimal)",
		},
	}
}

// runAblIndirect quantifies what the indirect-neighbor guarantee buys:
// the paper's col coloring vs. a (d+1)-coloring that only separates
// direct neighbors.
func runAblIndirect(cfg Config) Result {
	cfg.validate()
	pts, queries := uniformWorkload(cfg)
	colS := Series{Name: "col maxPages"}
	directS := Series{Name: "direct-only"}
	var x []float64
	for _, disks := range []int{4, 8, 16} {
		no := build(parsearch.Options{Dim: uniformDim, Disks: disks}, pts)
		dir := build(parsearch.Options{Dim: uniformDim, Disks: disks, Kind: parsearch.DirectOnly}, pts)
		x = append(x, float64(disks))
		colS.Y = append(colS.Y, measure(no, queries, 10).MaxPages)
		directS.Y = append(directS.Y, measure(dir, queries, 10).MaxPages)
	}
	return Result{
		ID: "abl-indirect", Title: "bottleneck pages: col vs. direct-only coloring (10-NN)",
		XLabel: "disks", X: x,
		Series: []Series{colS, directS},
		Notes: []string{
			"direct-only uses d+1 colors and lets indirect neighbors collide",
			"expected: col at or below direct-only, gap grows with disks",
		},
	}
}

// colModN is the naive alternative to complement folding: col(b) mod n.
type colModN struct {
	d, n int
}

func (s colModN) Name() string { return "col-mod-n" }
func (s colModN) Disks() int   { return s.n }
func (s colModN) Disk(cell []uint32) int {
	return core.Col(core.BucketFromCell(cell), s.d) % s.n
}

// runAblFold compares the paper's complement folding against the naive
// `col mod n` reduction for non-power-of-two disk counts, by the number
// of direct-neighbor collisions each produces.
func runAblFold(cfg Config) Result {
	cfg.validate()
	const d = 10
	fold := Series{Name: "fold"}
	naive := Series{Name: "mod"}
	var x []float64
	for _, n := range []int{3, 5, 6, 7, 9, 11, 12, 13} {
		foldViol := core.VerifyNearOptimal(core.NewNearOptimal(d, n), d, 0)
		modViol := core.VerifyNearOptimal(colModN{d: d, n: n}, d, 0)
		foldDirect, modDirect := 0, 0
		for _, v := range foldViol {
			if v.Kind == core.Direct {
				foldDirect++
			}
		}
		for _, v := range modViol {
			if v.Kind == core.Direct {
				modDirect++
			}
		}
		x = append(x, float64(n))
		fold.Y = append(fold.Y, float64(foldDirect))
		naive.Y = append(naive.Y, float64(modDirect))
	}
	return Result{
		ID: "abl-fold", Title: "direct-neighbor collisions: complement folding vs. col mod n",
		XLabel: "disks", X: x,
		Series: []Series{fold, naive},
		Notes: []string{
			fmt.Sprintf("d = %d; all %d direct pairs enumerated", d, (1<<d)*d/2),
			"expected: folding produces no more collisions than naive modulo",
		},
	}
}

// runAblQuantile compares midpoint against median splits on skewed data
// — the paper's first §4.3 extension.
func runAblQuantile(cfg Config) Result {
	cfg.validate()
	n := cfg.scaled(65536)
	const d = 10
	// Skewed data: product of two uniforms biases every dimension
	// toward 0, so midpoint splits put most points in quadrant 0.
	skewed := make([][]float64, n)
	src := data.Uniform(2*n, d, cfg.Seed)
	for i := range skewed {
		p := make([]float64, d)
		for j := 0; j < d; j++ {
			p[j] = src[2*i][j] * src[2*i+1][j]
		}
		skewed[i] = p
	}
	queries := raw(data.QueriesFromData(toVec(skewed), cfg.Queries, queryJitter, cfg.Seed+1))

	mid := build(parsearch.Options{Dim: d, Disks: maxDisks}, skewed)
	quant := build(parsearch.Options{Dim: d, Disks: maxDisks, QuantileSplits: true}, skewed)

	midS := Series{Name: "midpoint"}
	quantS := Series{Name: "quantile"}
	var x []float64
	for _, k := range []int{1, 10} {
		x = append(x, float64(k))
		midS.Y = append(midS.Y, measure(mid, queries, k).MaxPages)
		quantS.Y = append(quantS.Y, measure(quant, queries, k).MaxPages)
	}
	return Result{
		ID: "abl-quantile", Title: "bottleneck pages on skewed data: midpoint vs. median splits",
		XLabel: "k", X: x,
		Series: []Series{midS, quantS},
		Notes: []string{
			fmt.Sprintf("N = %d skewed points, d = %d, %d disks", n, d, maxDisks),
			fmt.Sprintf("load imbalance: midpoint %.1f, quantile %.1f",
				imbalanceOf(mid.DiskLoads()), imbalanceOf(quant.DiskLoads())),
			"expected: quantile splits reduce the bottleneck",
		},
	}
}

// runAblCostModel compares the two page accounting models on the same
// workload: the real system's tree pages vs. the paper's idealized bucket
// pages.
func runAblCostModel(cfg Config) Result {
	cfg.validate()
	pts, queries := uniformWorkload(cfg)
	tree := Series{Name: "tree"}
	bucket := Series{Name: "buckets"}
	var x []float64
	for i, kind := range []parsearch.Kind{parsearch.NearOptimal, parsearch.Hilbert, parsearch.RoundRobin} {
		tm := build(parsearch.Options{Dim: uniformDim, Disks: maxDisks, Kind: kind}, pts)
		bm := build(parsearch.Options{Dim: uniformDim, Disks: maxDisks, Kind: kind, CostModel: parsearch.BucketPages}, pts)
		x = append(x, float64(i+1))
		tree.Y = append(tree.Y, measure(tm, queries, 10).MaxPages)
		bucket.Y = append(bucket.Y, measure(bm, queries, 10).MaxPages)
	}
	return Result{
		ID: "abl-costmodel", Title: "bottleneck pages under both cost models (10-NN)",
		XLabel: "strategy", X: x,
		Series: []Series{tree, bucket},
		Notes: []string{
			"strategies: 1 = new, 2 = HIL, 3 = RR",
			"tree = per-disk X-tree pages (real system); buckets = quadrant pages (paper's idealization)",
			"expected: same ranking of new vs. HIL under both; RR penalized only by the tree model",
		},
	}
}

// runAblSupernode measures what the X-tree's supernodes buy over plain
// R*-style splitting: page accesses of sequential 1-NN queries on
// insert-built trees.
func runAblSupernode(cfg Config) Result {
	cfg.validate()
	n := cfg.scaled(8192)
	withS := Series{Name: "supernodes"}
	withoutS := Series{Name: "r*-split"}
	superCount := Series{Name: "#super"}
	var x []float64
	for _, d := range []int{8, 12, 16} {
		pts := data.Uniform(n, d, cfg.Seed)
		queries := data.Uniform(cfg.Queries, d, cfg.Seed+1)

		run := func(maxOverlap float64) (float64, int) {
			cfgT := xtree.DefaultConfig(d)
			cfgT.MaxOverlap = maxOverlap
			t := xtree.New(cfgT)
			for i, p := range pts {
				t.Insert(p, i)
			}
			total := 0
			for _, q := range queries {
				_, acc := knn.HS(t, q, 1)
				total += acc.PageAccesses
			}
			return float64(total) / float64(len(queries)), t.Stats().Supernodes
		}
		xt, supers := run(0.2) // X-tree threshold
		rstar, _ := run(1.0)   // accept any topological split: R*-like
		x = append(x, float64(d))
		withS.Y = append(withS.Y, xt)
		withoutS.Y = append(withoutS.Y, rstar)
		superCount.Y = append(superCount.Y, float64(supers))
	}
	return Result{
		ID: "abl-supernode", Title: "1-NN page accesses: X-tree supernodes vs. pure R* splits",
		XLabel: "dimension", X: x,
		Series: []Series{withS, withoutS, superCount},
		Notes: []string{
			fmt.Sprintf("N = %d uniform points, insert-built trees", n),
			"expected: supernodes at or below the R*-split cost in high dimensions",
		},
	}
}

// toVec converts raw slices to vec.Points (same backing arrays).
func toVec(pts [][]float64) []vec.Point {
	out := make([]vec.Point, len(pts))
	for i, p := range pts {
		out[i] = p
	}
	return out
}

// imbalanceOf returns max load over ideal load.
func imbalanceOf(loads []int) float64 {
	total, max := 0, 0
	for _, l := range loads {
		total += l
		if l > max {
			max = l
		}
	}
	if total == 0 {
		return 0
	}
	return float64(max) * float64(len(loads)) / float64(total)
}
