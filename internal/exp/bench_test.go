package exp

import (
	"encoding/json"
	"strings"
	"testing"
)

// tinyProfile keeps the harness test fast.
func tinyProfile() BenchProfile {
	return BenchProfile{Name: "tiny", Points: 600, Queries: 6, K: 4, Reps: 2}
}

func TestRunBenchReport(t *testing.T) {
	report, err := RunBench(tinyProfile(), 42)
	if err != nil {
		t.Fatal(err)
	}
	if report.Disks != BenchDisks || report.Profile != "tiny" {
		t.Fatalf("report header %+v", report)
	}
	for _, name := range []string{"knn16", "knn16-indep", "range16", "batch16",
		"coord-knn16", "wal-ingest", "mixed-serve16", "mixed-reorg16"} {
		w := report.Workload(name)
		if w == nil {
			t.Fatalf("workload %s missing from report", name)
		}
		if w.NsPerOp <= 0 {
			t.Errorf("%s: ns/op %d", name, w.NsPerOp)
		}
		// The tiny range workload can select zero pages (balance 0);
		// whenever pages were read the coefficient must be in (0, 1].
		if w.Balance < 0 || w.Balance > 1 || (w.PagesPerQuery > 0 && w.Balance == 0) {
			t.Errorf("%s: balance %v inconsistent with %v pages/query", name, w.Balance, w.PagesPerQuery)
		}
	}
	if report.Workload("knn16").PagesPerQuery <= 0 {
		t.Error("knn16 measured no pages")
	}
	// The multi-node row answers through a 3-shard cluster: it executes
	// pages and the phase-2 shards prune against the shipped remote
	// bound even at the tiny scale (16 disks split 6/5/5 across groups,
	// so two thirds of the cluster receives a bound).
	coordRow := report.Workload("coord-knn16")
	if coordRow.PagesPerQuery <= 0 {
		t.Error("coord-knn16 measured no pages")
	}
	if coordRow.SavedPagesPerQuery <= 0 {
		t.Errorf("coord-knn16 remote bound saved %v pages/query, want > 0",
			coordRow.SavedPagesPerQuery)
	}

	// The shared-vs-independent pair: same trees and queries, so the
	// executed page cost matches, the shared side visits strictly fewer
	// search pages, and its visited+saved total equals the independent
	// visited total exactly (phantom accounting).
	shared, indep := report.Workload("knn16"), report.Workload("knn16-indep")
	if shared.PagesPerQuery != indep.PagesPerQuery {
		t.Errorf("executed pages differ: shared %v, independent %v",
			shared.PagesPerQuery, indep.PagesPerQuery)
	}
	if shared.SavedPagesPerQuery <= 0 {
		t.Errorf("shared bound saved %v pages/query, want > 0", shared.SavedPagesPerQuery)
	}
	if shared.SearchPagesPerQuery >= indep.SearchPagesPerQuery {
		t.Errorf("shared visited %v search pages/query, independent %v",
			shared.SearchPagesPerQuery, indep.SearchPagesPerQuery)
	}
	if got := shared.SearchPagesPerQuery + shared.SavedPagesPerQuery; got != indep.SearchPagesPerQuery {
		t.Errorf("visited+saved = %v, independent visited %v", got, indep.SearchPagesPerQuery)
	}
	if indep.SavedPagesPerQuery != 0 || indep.SearchPagesPerQuery <= 0 {
		t.Errorf("independent workload measured search %v saved %v",
			indep.SearchPagesPerQuery, indep.SavedPagesPerQuery)
	}

	// Page costs are deterministic: a second run agrees exactly. On the
	// parallel shared-bound path only the visited+saved sum is
	// deterministic (the split depends on goroutine timing).
	again, err := RunBench(tinyProfile(), 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range report.Workloads {
		if strings.HasPrefix(w.Name, "mixed-") {
			// The mixed rows query while mutating (and, in the reorganize
			// variant, while the tree restructures): their page costs are
			// legitimately run-dependent.
			continue
		}
		a := again.Workload(w.Name)
		if a.PagesPerQuery != w.PagesPerQuery || a.Balance != w.Balance {
			t.Errorf("%s: pages %v/%v balance %v/%v across identical runs",
				w.Name, w.PagesPerQuery, a.PagesPerQuery, w.Balance, a.Balance)
		}
		if w.Name == "coord-knn16" {
			// The cluster row's saved column is the remote-bound share of
			// the savings; the split between it and the shards' own local
			// tightening is timing-dependent (only the executed total,
			// checked above, is deterministic).
			continue
		}
		// The underlying page counts are integers, but the per-op split
		// is timing-dependent, so the float sum can drift by an ulp —
		// same tolerance CompareBench uses.
		if d := (a.SearchPagesPerQuery + a.SavedPagesPerQuery) -
			(w.SearchPagesPerQuery + w.SavedPagesPerQuery); d > 1e-6 || d < -1e-6 {
			t.Errorf("%s: visited+saved %v/%v across identical runs", w.Name,
				a.SearchPagesPerQuery+a.SavedPagesPerQuery,
				w.SearchPagesPerQuery+w.SavedPagesPerQuery)
		}
	}

	// The report round-trips through its JSON form.
	blob, err := MarshalBenchReport(report)
	if err != nil {
		t.Fatal(err)
	}
	var decoded BenchReport
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Workloads) != len(report.Workloads) {
		t.Fatalf("decoded %d workloads, want %d", len(decoded.Workloads), len(report.Workloads))
	}

	if _, err := RunBench(BenchProfile{}, 1); err == nil {
		t.Error("zero profile accepted")
	}
}

func TestCompareBench(t *testing.T) {
	base := BenchReport{Workloads: []BenchWorkload{
		{Name: "knn16", NsPerOp: 1000, PagesPerQuery: 50},
		{Name: "range16", NsPerOp: 400, PagesPerQuery: 8},
	}}
	ok := BenchReport{Workloads: []BenchWorkload{
		{Name: "knn16", NsPerOp: 1200, PagesPerQuery: 50}, // +20% < 25%
		{Name: "range16", NsPerOp: 300, PagesPerQuery: 8},
		{Name: "batch16", NsPerOp: 9999, PagesPerQuery: 1}, // new workload: ignored
	}}
	if regs := CompareBench(base, ok, 0.25); len(regs) != 0 {
		t.Errorf("unexpected regressions: %v", regs)
	}

	bad := BenchReport{Workloads: []BenchWorkload{
		{Name: "knn16", NsPerOp: 1300, PagesPerQuery: 50},  // +30% > 25%
		{Name: "range16", NsPerOp: 400, PagesPerQuery: 12}, // page cost grew
	}}
	regs := CompareBench(base, bad, 0.25)
	if len(regs) != 2 {
		t.Fatalf("%d regressions, want 2: %v", len(regs), regs)
	}

	// The mixed rows mutate while measuring: page drift is expected and
	// not gated, and the ns threshold is tripled like the wal rows'.
	mixBase := BenchReport{Workloads: []BenchWorkload{
		{Name: "mixed-reorg16", NsPerOp: 1000, PagesPerQuery: 50, SearchPagesPerQuery: 30},
	}}
	mixOK := BenchReport{Workloads: []BenchWorkload{
		{Name: "mixed-reorg16", NsPerOp: 1700, PagesPerQuery: 80, SearchPagesPerQuery: 60}, // +70% < 75%
	}}
	if regs := CompareBench(mixBase, mixOK, 0.25); len(regs) != 0 {
		t.Errorf("mixed row within slack flagged: %v", regs)
	}
	mixBad := BenchReport{Workloads: []BenchWorkload{
		{Name: "mixed-reorg16", NsPerOp: 1800, PagesPerQuery: 50}, // +80% > 75%
	}}
	if regs := CompareBench(mixBase, mixBad, 0.25); len(regs) != 1 {
		t.Errorf("mixed row past tripled threshold: %d regressions, want 1: %v", len(regs), regs)
	}
}

func TestCompareBenchSharedBoundPair(t *testing.T) {
	base := BenchReport{Workloads: []BenchWorkload{
		{Name: "knn16", NsPerOp: 1000, PagesPerQuery: 50, SearchPagesPerQuery: 30, SavedPagesPerQuery: 10},
		{Name: "knn16-indep", NsPerOp: 1100, PagesPerQuery: 50, SearchPagesPerQuery: 40},
	}}

	// The visited/saved split may wander a little between runs; the
	// pair's invariants still hold.
	ok := BenchReport{Workloads: []BenchWorkload{
		{Name: "knn16", NsPerOp: 1000, PagesPerQuery: 50, SearchPagesPerQuery: 32, SavedPagesPerQuery: 8},
		{Name: "knn16-indep", NsPerOp: 1100, PagesPerQuery: 50, SearchPagesPerQuery: 40},
	}}
	if regs := CompareBench(base, ok, 0.25); len(regs) != 0 {
		t.Errorf("unexpected regressions: %v", regs)
	}

	// Weaker pruning: visited pages grew past the 10% + 1 tolerance.
	weaker := BenchReport{Workloads: []BenchWorkload{
		{Name: "knn16", NsPerOp: 1000, PagesPerQuery: 50, SearchPagesPerQuery: 39, SavedPagesPerQuery: 1},
		{Name: "knn16-indep", NsPerOp: 1100, PagesPerQuery: 50, SearchPagesPerQuery: 40},
	}}
	if regs := CompareBench(base, weaker, 0.25); len(regs) != 1 {
		t.Errorf("weaker pruning: %d regressions, want 1: %v", len(regs), regs)
	}

	// Dead bound: the shared side visits as much as its sibling. Both
	// the strict-inequality and (here) the exact-sum check fire.
	dead := BenchReport{Workloads: []BenchWorkload{
		{Name: "knn16", NsPerOp: 1000, PagesPerQuery: 50, SearchPagesPerQuery: 30, SavedPagesPerQuery: 10},
		{Name: "knn16-indep", NsPerOp: 1100, PagesPerQuery: 50, SearchPagesPerQuery: 30},
	}}
	if regs := CompareBench(base, dead, 0.25); len(regs) != 2 {
		t.Errorf("dead bound: %d regressions, want 2: %v", len(regs), regs)
	}

	// Broken accounting: visited+saved drifts from the sibling's total.
	drift := BenchReport{Workloads: []BenchWorkload{
		{Name: "knn16", NsPerOp: 1000, PagesPerQuery: 50, SearchPagesPerQuery: 30, SavedPagesPerQuery: 9},
		{Name: "knn16-indep", NsPerOp: 1100, PagesPerQuery: 50, SearchPagesPerQuery: 40},
	}}
	if regs := CompareBench(base, drift, 0.25); len(regs) != 1 {
		t.Errorf("accounting drift: %d regressions, want 1: %v", len(regs), regs)
	}
}
