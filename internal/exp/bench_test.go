package exp

import (
	"encoding/json"
	"testing"
)

// tinyProfile keeps the harness test fast.
func tinyProfile() BenchProfile {
	return BenchProfile{Name: "tiny", Points: 600, Queries: 6, K: 4, Reps: 2}
}

func TestRunBenchReport(t *testing.T) {
	report, err := RunBench(tinyProfile(), 42)
	if err != nil {
		t.Fatal(err)
	}
	if report.Disks != BenchDisks || report.Profile != "tiny" {
		t.Fatalf("report header %+v", report)
	}
	for _, name := range []string{"knn16", "range16", "batch16"} {
		w := report.Workload(name)
		if w == nil {
			t.Fatalf("workload %s missing from report", name)
		}
		if w.NsPerOp <= 0 {
			t.Errorf("%s: ns/op %d", name, w.NsPerOp)
		}
		// The tiny range workload can select zero pages (balance 0);
		// whenever pages were read the coefficient must be in (0, 1].
		if w.Balance < 0 || w.Balance > 1 || (w.PagesPerQuery > 0 && w.Balance == 0) {
			t.Errorf("%s: balance %v inconsistent with %v pages/query", name, w.Balance, w.PagesPerQuery)
		}
	}
	if report.Workload("knn16").PagesPerQuery <= 0 {
		t.Error("knn16 measured no pages")
	}

	// Page costs are deterministic: a second run agrees exactly.
	again, err := RunBench(tinyProfile(), 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range report.Workloads {
		a := again.Workload(w.Name)
		if a.PagesPerQuery != w.PagesPerQuery || a.Balance != w.Balance {
			t.Errorf("%s: pages %v/%v balance %v/%v across identical runs",
				w.Name, w.PagesPerQuery, a.PagesPerQuery, w.Balance, a.Balance)
		}
	}

	// The report round-trips through its JSON form.
	blob, err := MarshalBenchReport(report)
	if err != nil {
		t.Fatal(err)
	}
	var decoded BenchReport
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Workloads) != len(report.Workloads) {
		t.Fatalf("decoded %d workloads, want %d", len(decoded.Workloads), len(report.Workloads))
	}

	if _, err := RunBench(BenchProfile{}, 1); err == nil {
		t.Error("zero profile accepted")
	}
}

func TestCompareBench(t *testing.T) {
	base := BenchReport{Workloads: []BenchWorkload{
		{Name: "knn16", NsPerOp: 1000, PagesPerQuery: 50},
		{Name: "range16", NsPerOp: 400, PagesPerQuery: 8},
	}}
	ok := BenchReport{Workloads: []BenchWorkload{
		{Name: "knn16", NsPerOp: 1200, PagesPerQuery: 50}, // +20% < 25%
		{Name: "range16", NsPerOp: 300, PagesPerQuery: 8},
		{Name: "batch16", NsPerOp: 9999, PagesPerQuery: 1}, // new workload: ignored
	}}
	if regs := CompareBench(base, ok, 0.25); len(regs) != 0 {
		t.Errorf("unexpected regressions: %v", regs)
	}

	bad := BenchReport{Workloads: []BenchWorkload{
		{Name: "knn16", NsPerOp: 1300, PagesPerQuery: 50},  // +30% > 25%
		{Name: "range16", NsPerOp: 400, PagesPerQuery: 12}, // page cost grew
	}}
	regs := CompareBench(base, bad, 0.25)
	if len(regs) != 2 {
		t.Fatalf("%d regressions, want 2: %v", len(regs), regs)
	}
}
