package exp

import (
	"fmt"
	"math/rand"

	"parsearch"
	"parsearch/internal/data"
)

func init() {
	register(Experiment{
		ID: "ext-partialmatch", Figure: "extension",
		Title: "Partial-match queries: the workload DM/FX/Hilbert were designed for",
		Run:   runExtPartialMatch,
	})
	register(Experiment{
		ID: "ext-throughput", Figure: "extension",
		Title: "Query throughput under batch load (the paper's future-work metric)",
		Run:   runExtThroughput,
	})
}

// runExtPartialMatch compares the strategies on partial-match queries
// (exact values in a few dimensions, wildcards elsewhere), the query type
// the classic declusterings were designed for [DS 82, KP 88, FB 93]. On
// the binary quadrant grid of high-dimensional spaces even this home turf
// does not rescue them: FX degenerates to two disks and DM to d+1.
func runExtPartialMatch(cfg Config) Result {
	cfg.validate()
	pts, _ := uniformWorkload(cfg)
	rng := rand.New(rand.NewSource(cfg.Seed + 2))

	// Queries: 3 specified dimensions with a generous tolerance.
	type pm struct {
		spec []float64
	}
	queries := make([]pm, cfg.Queries)
	for i := range queries {
		spec := make([]float64, uniformDim)
		for j := range spec {
			spec[j] = parsearch.Wildcard
		}
		for _, j := range rng.Perm(uniformDim)[:3] {
			spec[j] = rng.Float64()
		}
		queries[i] = pm{spec: spec}
	}

	kinds := []parsearch.Kind{parsearch.NearOptimal, parsearch.Hilbert, parsearch.DiskModulo, parsearch.FX}
	maxS := Series{Name: "maxPages"}
	speedS := Series{Name: "speedup"}
	var x []float64
	notes := []string{fmt.Sprintf("N = %d uniform points, d = %d, %d disks; 3 specified dims, eps 0.05",
		len(pts), uniformDim, maxDisks)}
	for i, kind := range kinds {
		ix := build(parsearch.Options{Dim: uniformDim, Disks: maxDisks, Kind: kind}, pts)
		var sumMax, sumSpeed float64
		for _, q := range queries {
			_, stats, err := ix.PartialMatch(q.spec, 0.05)
			if err != nil {
				panic(fmt.Sprintf("exp: %v", err))
			}
			sumMax += float64(stats.MaxPages)
			sumSpeed += stats.Speedup
		}
		m := float64(len(queries))
		x = append(x, float64(i+1))
		maxS.Y = append(maxS.Y, sumMax/m)
		speedS.Y = append(speedS.Y, sumSpeed/m)
		notes = append(notes, fmt.Sprintf("%d: %s", i+1, kind))
	}
	notes = append(notes, "expected: near-optimal competitive even on the baselines' home-turf query type")
	return Result{
		ID: "ext-partialmatch", Title: "partial-match queries across strategies",
		XLabel: "strategy", X: x,
		Series: []Series{maxS, speedS},
		Notes:  notes,
	}
}

// runExtThroughput measures batch query throughput — the paper's closing
// remark names throughput-optimal declustering as future work. Under
// batch load the total work per disk matters rather than the per-query
// bottleneck, so even round robin balances well; the near-optimal
// strategy additionally keeps single-query latency low.
func runExtThroughput(cfg Config) Result {
	cfg.validate()
	pts, _ := uniformWorkload(cfg)
	queries := raw(data.Uniform(8*cfg.Queries, uniformDim, cfg.Seed+1))

	kinds := []parsearch.Kind{parsearch.NearOptimal, parsearch.Hilbert, parsearch.RoundRobin}
	qps := Series{Name: "queries/s"}
	util := Series{Name: "utilization"}
	var x []float64
	notes := []string{fmt.Sprintf("N = %d uniform points, d = %d, %d disks, batch of %d 10-NN queries",
		len(pts), uniformDim, maxDisks, len(queries))}
	for i, kind := range kinds {
		ix := build(parsearch.Options{Dim: uniformDim, Disks: maxDisks, Kind: kind}, pts)
		_, stats, err := ix.BatchKNN(queries, 10)
		if err != nil {
			panic(fmt.Sprintf("exp: %v", err))
		}
		x = append(x, float64(i+1))
		qps.Y = append(qps.Y, stats.QueriesPerSecond)
		util.Y = append(util.Y, stats.Utilization)
		notes = append(notes, fmt.Sprintf("%d: %s", i+1, kind))
	}
	notes = append(notes, "expected: high utilization for all balanced strategies; totals favor bucket-local layouts")
	return Result{
		ID: "ext-throughput", Title: "batch throughput across strategies",
		XLabel: "strategy", X: x,
		Series: []Series{qps, util},
		Notes:  notes,
	}
}
