package exp

import (
	"fmt"
	"math/rand"

	"parsearch"
	"parsearch/internal/core"
	"parsearch/internal/data"
	"parsearch/internal/graph"
	"parsearch/internal/model"
)

func init() {
	register(Experiment{
		ID: "fig1", Figure: "Figure 1",
		Title: "Sequential X-tree NN search degenerates with dimension",
		Run:   runFig1,
	})
	register(Experiment{
		ID: "fig2", Figure: "Figure 2",
		Title: "Speed-up of parallel NN search with round-robin declustering",
		Run:   runFig2,
	})
	register(Experiment{
		ID: "fig3", Figure: "Figure 3 (left)",
		Title: "Improvement of Hilbert over round robin vs. number of disks",
		Run:   runFig3,
	})
	register(Experiment{
		ID: "fig3b", Figure: "Figure 3 (right)",
		Title: "Improvement of Hilbert over round robin vs. amount of data",
		Run:   runFig3b,
	})
	register(Experiment{
		ID: "fig5", Figure: "Figure 5",
		Title: "Probability of a point lying near the data-space surface",
		Run:   runFig5,
	})
	register(Experiment{
		ID: "fig7", Figure: "Figure 7",
		Title: "DM, FX and Hilbert are not near-optimal (d=3 counter-examples)",
		Run:   runFig7,
	})
	register(Experiment{
		ID: "fig10", Figure: "Figure 10",
		Title: "Number of colors required by col (staircase and bounds)",
		Run:   runFig10,
	})
	register(Experiment{
		ID: "fig12", Figure: "Figure 12",
		Title: "Speed-up of the near-optimal technique on uniform data",
		Run:   runFig12,
	})
	register(Experiment{
		ID: "fig13", Figure: "Figure 13",
		Title: "Speed-up of near-optimal vs. Hilbert on Fourier points",
		Run:   runFig13,
	})
	register(Experiment{
		ID: "fig14", Figure: "Figure 14",
		Title: "Improvement factor over the Hilbert curve (Fourier points)",
		Run:   runFig14,
	})
	register(Experiment{
		ID: "fig15", Figure: "Figure 15",
		Title: "Scale-up: search time as data and disks grow together",
		Run:   runFig15,
	})
	register(Experiment{
		ID: "fig16", Figure: "Figure 16",
		Title: "Effect of recursive declustering on highly clustered data",
		Run:   runFig16,
	})
	register(Experiment{
		ID: "fig17", Figure: "Figure 17",
		Title: "Search time of near-optimal vs. Hilbert on text descriptors",
		Run:   runFig17,
	})
}

// runFig1 measures 1-NN page accesses and simulated search time of a
// sequential X-tree at constant data size and growing dimension.
func runFig1(cfg Config) Result {
	cfg.validate()
	dims := []int{2, 4, 6, 8, 10, 12, 14, 16}
	n := cfg.scaled(32768)

	var pages, times Series
	pages.Name = "pages"
	times.Name = "time(ms)"
	x := make([]float64, 0, len(dims))
	for _, d := range dims {
		pts := raw(data.Uniform(n, d, cfg.Seed))
		queries := raw(data.Uniform(cfg.Queries, d, cfg.Seed+1))
		ix := build(parsearch.Options{Dim: d, Disks: 1}, pts)
		m := measure(ix, queries, 1)
		x = append(x, float64(d))
		pages.Y = append(pages.Y, m.MaxPages)
		times.Y = append(times.Y, m.ParTimeMS)
	}
	return Result{
		ID: "fig1", Title: "sequential NN search time vs. dimension",
		XLabel: "dimension", X: x,
		Series: []Series{pages, times},
		Notes: []string{
			fmt.Sprintf("N = %d uniform points, 1 disk, 4-KByte pages", n),
			"expected shape: super-linear growth with dimension (Figure 1)",
		},
	}
}

// speedupSweep builds the given strategy for every disk count and
// reports the baseline speed-up for 1-NN and 10-NN.
func speedupSweep(cfg Config, kind parsearch.Kind, pts, queries [][]float64, quantile bool) Result {
	nn := Series{Name: "NN"}
	tenNN := Series{Name: "10-NN"}
	x := make([]float64, 0, len(diskSweep))
	for _, disks := range diskSweep {
		ix := build(parsearch.Options{
			Dim: len(pts[0]), Disks: disks, Kind: kind,
			Baseline: true, QuantileSplits: quantile,
		}, pts)
		x = append(x, float64(disks))
		nn.Y = append(nn.Y, measure(ix, queries, 1).Speedup)
		tenNN.Y = append(tenNN.Y, measure(ix, queries, 10).Speedup)
	}
	return Result{
		XLabel: "disks", X: x,
		Series: []Series{nn, tenNN},
	}
}

func runFig2(cfg Config) Result {
	cfg.validate()
	pts, queries := uniformWorkload(cfg)
	r := speedupSweep(cfg, parsearch.RoundRobin, pts, queries, false)
	r.ID, r.Title = "fig2", "round-robin speed-up on uniform data"
	r.Notes = []string{
		fmt.Sprintf("N = %d uniform points, d = %d", len(pts), uniformDim),
		"expected shape: increasing but clearly sub-linear speed-up",
	}
	return r
}

func runFig3(cfg Config) Result {
	cfg.validate()
	pts, queries := uniformWorkload(cfg)
	nn := Series{Name: "NN"}
	tenNN := Series{Name: "10-NN"}
	var x []float64
	for _, disks := range []int{2, 4, 8, 16} {
		hil := build(parsearch.Options{Dim: uniformDim, Disks: disks, Kind: parsearch.Hilbert}, pts)
		rr := build(parsearch.Options{Dim: uniformDim, Disks: disks, Kind: parsearch.RoundRobin}, pts)
		x = append(x, float64(disks))
		nn.Y = append(nn.Y, measure(rr, queries, 1).ParTimeMS/measure(hil, queries, 1).ParTimeMS)
		tenNN.Y = append(tenNN.Y, measure(rr, queries, 10).ParTimeMS/measure(hil, queries, 10).ParTimeMS)
	}
	return Result{
		ID: "fig3", Title: "improvement factor of Hilbert over round robin",
		XLabel: "disks", X: x,
		Series: []Series{nn, tenNN},
		Notes: []string{
			fmt.Sprintf("N = %d uniform points, d = %d; factor = RR search time / Hilbert search time", len(pts), uniformDim),
			"expected shape: factor > 1, growing with the number of disks",
		},
	}
}

func runFig3b(cfg Config) Result {
	cfg.validate()
	nn := Series{Name: "NN"}
	tenNN := Series{Name: "10-NN"}
	var x []float64
	for _, base := range []int{32768, 65536, 131072, 262144} {
		n := cfg.scaled(base)
		pts := raw(data.Uniform(n, uniformDim, cfg.Seed))
		queries := raw(data.Uniform(cfg.Queries, uniformDim, cfg.Seed+1))
		hil := build(parsearch.Options{Dim: uniformDim, Disks: maxDisks, Kind: parsearch.Hilbert}, pts)
		rr := build(parsearch.Options{Dim: uniformDim, Disks: maxDisks, Kind: parsearch.RoundRobin}, pts)
		x = append(x, float64(n))
		nn.Y = append(nn.Y, measure(rr, queries, 1).ParTimeMS/measure(hil, queries, 1).ParTimeMS)
		tenNN.Y = append(tenNN.Y, measure(rr, queries, 10).ParTimeMS/measure(hil, queries, 10).ParTimeMS)
	}
	return Result{
		ID: "fig3b", Title: "improvement of Hilbert over round robin vs. data size",
		XLabel: "points", X: x,
		Series: []Series{nn, tenNN},
		Notes: []string{
			fmt.Sprintf("d = %d, %d disks", uniformDim, maxDisks),
			"expected shape: factor grows with the amount of data",
		},
	}
}

func runFig5(cfg Config) Result {
	cfg.validate()
	rng := rand.New(rand.NewSource(cfg.Seed))
	analytic := Series{Name: "analytic"}
	mc := Series{Name: "montecarlo"}
	var x []float64
	const eps = 0.1
	for d := 2; d <= 100; d += 7 {
		x = append(x, float64(d))
		analytic.Y = append(analytic.Y, model.SurfaceProbability(d, eps))
		hits := 0
		const trials = 4000
		for t := 0; t < trials; t++ {
			near := false
			for j := 0; j < d; j++ {
				if v := rng.Float64(); v < eps || v > 1-eps {
					near = true
				}
			}
			if near {
				hits++
			}
		}
		mc.Y = append(mc.Y, float64(hits)/trials)
	}
	return Result{
		ID: "fig5", Title: "probability of a point within 0.1 of the surface",
		XLabel: "dimension", X: x,
		Series: []Series{analytic, mc},
		Notes: []string{
			"p(d) = 1 - (1 - 0.2)^d (Eq. 1); paper: > 97% at d = 16",
			fmt.Sprintf("p(16) = %.4f", model.SurfaceProbability(16, eps)),
		},
	}
}

func runFig7(cfg Config) Result {
	cfg.validate()
	const d = 3
	n := core.NumColors(d) // 4 disks: enough for a near-optimal declustering
	strategies := []core.Strategy{
		core.NewDiskModulo(n),
		core.NewFX(n),
		core.MustNewHilbert(d, 1, n),
		core.NewNearOptimal(d, n),
	}
	violations := Series{Name: "violations"}
	var x []float64
	notes := []string{fmt.Sprintf("d = %d, %d disks; total neighbor pairs: %d",
		d, n, 8*3/2+8*3/2)}
	for i, s := range strategies {
		vs := core.VerifyNearOptimal(s, d, 0)
		x = append(x, float64(i+1))
		violations.Y = append(violations.Y, float64(len(vs)))
		note := fmt.Sprintf("%d: %-4s %d violations", i+1, s.Name(), len(vs))
		if len(vs) > 0 {
			note += " (e.g. " + vs[0].String() + ")"
		}
		notes = append(notes, note)
	}
	notes = append(notes, "expected: DM, FX, Hilbert > 0 violations (Lemma 1); new = 0 (Lemma 5)")
	return Result{
		ID: "fig7", Title: "near-optimality violations of the classic declusterings",
		XLabel: "strategy", X: x,
		Series: []Series{violations},
		Notes:  notes,
	}
}

func runFig10(cfg Config) Result {
	cfg.validate()
	colors := Series{Name: "col"}
	lower := Series{Name: "d+1"}
	upper := Series{Name: "2d"}
	var x []float64
	for d := 1; d <= 32; d++ {
		x = append(x, float64(d))
		colors.Y = append(colors.Y, float64(core.NumColors(d)))
		lower.Y = append(lower.Y, float64(core.ColorLowerBound(d)))
		upper.Y = append(upper.Y, float64(core.ColorUpperBound(d)))
	}
	notes := []string{"staircase nextPow2(d+1); optimal up to rounding (Lemma 6)"}
	for d := 1; d <= 4; d++ {
		chrom := graph.New(d).ChromaticNumber()
		notes = append(notes, fmt.Sprintf(
			"d=%d: exact chromatic number of G_d = %d, staircase = %d",
			d, chrom, core.NumColors(d)))
	}
	return Result{
		ID: "fig10", Title: "colors required by the coloring function",
		XLabel: "dimension", X: x,
		Series: []Series{colors, lower, upper},
		Notes:  notes,
	}
}

func runFig12(cfg Config) Result {
	cfg.validate()
	pts, queries := uniformWorkload(cfg)
	r := speedupSweep(cfg, parsearch.NearOptimal, pts, queries, false)
	r.ID, r.Title = "fig12", "near-optimal speed-up on uniform data"
	r.Notes = []string{
		fmt.Sprintf("N = %d uniform points, d = %d", len(pts), uniformDim),
		"expected shape: near-linear speed-up for both query types",
	}
	return r
}

func runFig13(cfg Config) Result {
	cfg.validate()
	pts, queries := fourierWorkload(cfg, fourierFams, 0.3)
	newNN := Series{Name: "new NN"}
	hilNN := Series{Name: "HIL NN"}
	new10 := Series{Name: "new 10-NN"}
	hil10 := Series{Name: "HIL 10-NN"}
	var x []float64
	for _, disks := range diskSweep {
		no := build(parsearch.Options{Dim: realDim, Disks: disks, Baseline: true, QuantileSplits: true}, pts)
		hil := build(parsearch.Options{Dim: realDim, Disks: disks, Kind: parsearch.Hilbert, Baseline: true, QuantileSplits: true}, pts)
		x = append(x, float64(disks))
		newNN.Y = append(newNN.Y, measure(no, queries, 1).Speedup)
		hilNN.Y = append(hilNN.Y, measure(hil, queries, 1).Speedup)
		new10.Y = append(new10.Y, measure(no, queries, 10).Speedup)
		hil10.Y = append(hil10.Y, measure(hil, queries, 10).Speedup)
	}
	return Result{
		ID: "fig13", Title: "speed-up on Fourier points: near-optimal vs. Hilbert",
		XLabel: "disks", X: x,
		Series: []Series{newNN, hilNN, new10, hil10},
		Notes: []string{
			fmt.Sprintf("N = %d Fourier descriptors, d = %d, %d part families, median splits", len(pts), realDim, fourierFams),
			"expected shape: both increase, new clearly above HIL",
		},
	}
}

func runFig14(cfg Config) Result {
	cfg.validate()
	pts, queries := fourierWorkload(cfg, fourierFams, 0.3)
	nn := Series{Name: "NN"}
	tenNN := Series{Name: "10-NN"}
	var x []float64
	for _, disks := range []int{2, 4, 8, 16} {
		no := build(parsearch.Options{Dim: realDim, Disks: disks, QuantileSplits: true}, pts)
		hil := build(parsearch.Options{Dim: realDim, Disks: disks, Kind: parsearch.Hilbert, QuantileSplits: true}, pts)
		x = append(x, float64(disks))
		nn.Y = append(nn.Y, measure(hil, queries, 1).ParTimeMS/measure(no, queries, 1).ParTimeMS)
		tenNN.Y = append(tenNN.Y, measure(hil, queries, 10).ParTimeMS/measure(no, queries, 10).ParTimeMS)
	}
	return Result{
		ID: "fig14", Title: "improvement factor of near-optimal over Hilbert (Fourier)",
		XLabel: "disks", X: x,
		Series: []Series{nn, tenNN},
		Notes: []string{
			"factor = Hilbert search time / near-optimal search time",
			"expected shape: grows with the number of disks (paper: up to ~5 at 16 disks)",
		},
	}
}

func runFig15(cfg Config) Result {
	cfg.validate()
	unit := cfg.scaled(32768)
	nn := Series{Name: "NN(ms)"}
	tenNN := Series{Name: "10-NN(ms)"}
	var x []float64
	for _, disks := range []int{2, 4, 8, 16} {
		n := unit * disks
		// Growing the database means indexing more distinct parts, not
		// denser copies of the same parts: scale the family count with
		// the data so the local density stays comparable.
		families := fourierFams * disks / 16
		ps := data.Fourier(n, realDim, families, 0.3, cfg.Seed)
		pts := raw(ps)
		queries := raw(data.QueriesFromData(ps, cfg.Queries, queryJitter, cfg.Seed+1))
		ix := build(parsearch.Options{Dim: realDim, Disks: disks, QuantileSplits: true}, pts)
		x = append(x, float64(disks))
		nn.Y = append(nn.Y, measure(ix, queries, 1).ParTimeMS)
		tenNN.Y = append(tenNN.Y, measure(ix, queries, 10).ParTimeMS)
	}
	return Result{
		ID: "fig15", Title: "scale-up: search time with proportional data and disks",
		XLabel: "disks", X: x,
		Series: []Series{nn, tenNN},
		Notes: []string{
			fmt.Sprintf("%d Fourier points per disk, d = %d", unit, realDim),
			"expected shape: roughly constant search time (constant scale-up)",
		},
	}
}

func runFig16(cfg Config) Result {
	cfg.validate()
	// A few part families with tiny within-family jitter: variants of a
	// handful of CAD parts, highly clustered (the workload of the
	// paper's recursive-declustering experiment).
	pts, queries := fourierWorkload(cfg, 4, 0.04)
	basic := build(parsearch.Options{Dim: realDim, Disks: maxDisks}, pts)
	ext := build(parsearch.Options{
		Dim: realDim, Disks: maxDisks,
		QuantileSplits: true, Recursive: true,
	}, pts)

	basicS := Series{Name: "new(ms)"}
	extS := Series{Name: "new+ext(ms)"}
	var x []float64
	for _, k := range []int{1, 10} {
		x = append(x, float64(k))
		basicS.Y = append(basicS.Y, measure(basic, queries, k).ParTimeMS)
		extS.Y = append(extS.Y, measure(ext, queries, k).ParTimeMS)
	}
	imbalance := func(loads []int) float64 {
		m := 0
		for _, l := range loads {
			if l > m {
				m = l
			}
		}
		return float64(m) * float64(maxDisks) / float64(len(pts))
	}
	return Result{
		ID: "fig16", Title: "recursive declustering on highly clustered CAD variants",
		XLabel: "k", X: x,
		Series: []Series{basicS, extS},
		Notes: []string{
			fmt.Sprintf("N = %d tightly clustered Fourier points (4 part families), d = %d, %d disks", len(pts), realDim, maxDisks),
			fmt.Sprintf("load imbalance (max/ideal): basic %.1f, extended %.1f",
				imbalance(basic.DiskLoads()), imbalance(ext.DiskLoads())),
			"expected: large search-time reduction (paper: ~3.3x) from the extension",
		},
	}
}

func runFig17(cfg Config) Result {
	cfg.validate()
	pts, queries := textWorkload(cfg)
	no := build(parsearch.Options{Dim: realDim, Disks: maxDisks, QuantileSplits: true}, pts)
	hil := build(parsearch.Options{Dim: realDim, Disks: maxDisks, Kind: parsearch.Hilbert, QuantileSplits: true}, pts)

	newS := Series{Name: "new(ms)"}
	hilS := Series{Name: "HIL(ms)"}
	var x []float64
	var notes []string
	for _, k := range []int{1, 10} {
		mNew := measure(no, queries, k)
		mHil := measure(hil, queries, k)
		x = append(x, float64(k))
		newS.Y = append(newS.Y, mNew.ParTimeMS)
		hilS.Y = append(hilS.Y, mHil.ParTimeMS)
		notes = append(notes, fmt.Sprintf("k=%d: improvement factor %.2f", k, mHil.ParTimeMS/mNew.ParTimeMS))
	}
	notes = append(notes,
		fmt.Sprintf("N = %d text descriptors, d = %d, %d disks", len(pts), realDim, maxDisks),
		"expected: new faster than HIL (paper: factors ~1.8 NN, ~2.0 10-NN)")
	return Result{
		ID: "fig17", Title: "text descriptors: near-optimal vs. Hilbert search time",
		XLabel: "k", X: x,
		Series: []Series{newS, hilS},
		Notes:  notes,
	}
}
