package exp

import (
	"strings"
	"testing"
)

// quickCfg runs every experiment at reduced scale so the suite stays
// fast; shape assertions hold at this scale too.
func quickCfg() Config {
	return Config{Scale: 0.25, Queries: 8, Seed: 7}
}

func TestRegistryComplete(t *testing.T) {
	wantFigures := []string{
		"fig1", "fig2", "fig3", "fig3b", "fig5", "fig7", "fig10",
		"fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
	}
	wantAblations := []string{
		"abl-knn", "abl-indirect", "abl-fold", "abl-quantile",
		"abl-costmodel", "abl-supernode", "abl-greedy", "abl-quality",
		"ext-partialmatch", "ext-throughput", "ext-queueing", "ext-model", "ext-hilbert2d",
		"ext-failures",
	}
	for _, id := range append(wantFigures, wantAblations...) {
		if _, ok := Get(id); !ok {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if got := len(All()); got != len(wantFigures)+len(wantAblations) {
		t.Errorf("registry has %d experiments, want %d", got, len(wantFigures)+len(wantAblations))
	}
	// All() orders figures before ablations, figN numerically.
	all := All()
	if all[0].ID != "fig1" || all[1].ID != "fig2" {
		t.Errorf("ordering wrong: %s, %s first", all[0].ID, all[1].ID)
	}
}

func TestGetUnknown(t *testing.T) {
	if _, ok := Get("fig99"); ok {
		t.Error("unknown id found")
	}
}

func TestConfigValidate(t *testing.T) {
	for _, cfg := range []Config{{Scale: 0, Queries: 1}, {Scale: 1, Queries: 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v: expected panic", cfg)
				}
			}()
			cfg.validate()
		}()
	}
}

func TestScaledFloor(t *testing.T) {
	c := Config{Scale: 0.0001, Queries: 1}
	if got := c.scaled(100000); got != 256 {
		t.Errorf("scaled floor = %d, want 256", got)
	}
}

func TestResultFormat(t *testing.T) {
	r := Result{
		ID: "figX", Title: "demo", XLabel: "n",
		X:      []float64{1, 2},
		Series: []Series{{Name: "a", Y: []float64{3, 4}}, {Name: "b", Y: []float64{5}}},
		Notes:  []string{"hello"},
	}
	out := r.Format()
	for _, want := range []string{"figX", "demo", "n", "a", "b", "3", "hello", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted output missing %q:\n%s", want, out)
		}
	}
}

// Shape assertions per figure, at quick scale.

func TestFig1Shape(t *testing.T) {
	r := mustRun(t, "fig1", quickCfg())
	pages := r.Series[0].Y
	if pages[len(pages)-1] < 4*pages[0] {
		t.Errorf("page accesses should explode with dimension: %v", pages)
	}
}

func TestFig2Shape(t *testing.T) {
	r := mustRun(t, "fig2", quickCfg())
	nn := r.Series[0].Y
	//

	// Speed-up grows with disks and stays above 1 from 2 disks on.
	if nn[len(nn)-1] <= nn[1] {
		t.Errorf("round-robin speed-up not increasing: %v", nn)
	}
	if nn[len(nn)-1] < 2 {
		t.Errorf("round-robin speed-up at 16 disks too small: %v", nn)
	}
}

func TestFig3Shape(t *testing.T) {
	r := mustRun(t, "fig3", quickCfg())
	nn := r.Series[0].Y
	if nn[len(nn)-1] <= 1 {
		t.Errorf("Hilbert should beat round robin at 16 disks: %v", nn)
	}
}

func TestFig5Shape(t *testing.T) {
	r := mustRun(t, "fig5", quickCfg())
	analytic := r.Series[0].Y
	mc := r.Series[1].Y
	for i := range analytic {
		if analytic[i] < 0 || analytic[i] > 1 {
			t.Fatalf("probability out of range: %v", analytic[i])
		}
		if diff := analytic[i] - mc[i]; diff > 0.05 || diff < -0.05 {
			t.Errorf("Monte Carlo diverges from analytic at x=%v: %v vs %v",
				r.X[i], mc[i], analytic[i])
		}
	}
	if analytic[len(analytic)-1] < 0.99 {
		t.Errorf("p(~100) should approach 1: %v", analytic[len(analytic)-1])
	}
}

func TestFig7Shape(t *testing.T) {
	r := mustRun(t, "fig7", quickCfg())
	v := r.Series[0].Y
	// DM, FX, Hilbert must have violations; near-optimal none.
	for i := 0; i < 3; i++ {
		if v[i] == 0 {
			t.Errorf("strategy %d should violate near-optimality", i+1)
		}
	}
	if v[3] != 0 {
		t.Errorf("near-optimal strategy has %v violations", v[3])
	}
}

func TestFig10Shape(t *testing.T) {
	r := mustRun(t, "fig10", quickCfg())
	col := r.Series[0].Y
	lower := r.Series[1].Y
	upper := r.Series[2].Y
	for i := range col {
		if col[i] < lower[i] || col[i] > upper[i] {
			t.Errorf("staircase out of bounds at d=%v: %v not in [%v, %v]",
				r.X[i], col[i], lower[i], upper[i])
		}
	}
}

func TestFig12Shape(t *testing.T) {
	r := mustRun(t, "fig12", quickCfg())
	nn := r.Series[0].Y
	last := len(nn) - 1
	if nn[last] <= nn[1] {
		t.Errorf("near-optimal speed-up not increasing: %v", nn)
	}
	if nn[last] < 3 {
		t.Errorf("near-optimal speed-up at 16 disks too small: %v", nn)
	}
}

func TestFig14Shape(t *testing.T) {
	r := mustRun(t, "fig14", quickCfg())
	nn := r.Series[0].Y
	if nn[len(nn)-1] <= 1 {
		t.Errorf("near-optimal should beat Hilbert on Fourier data at 16 disks: %v", nn)
	}
}

func TestFig16Shape(t *testing.T) {
	r := mustRun(t, "fig16", quickCfg())
	basic := r.Series[0].Y
	ext := r.Series[1].Y
	for i := range basic {
		if ext[i] >= basic[i] {
			t.Errorf("recursive declustering should reduce search time at k=%v: %v vs %v",
				r.X[i], ext[i], basic[i])
		}
	}
}

func TestFig17Shape(t *testing.T) {
	r := mustRun(t, "fig17", quickCfg())
	newT := r.Series[0].Y
	hilT := r.Series[1].Y
	for i := range newT {
		if newT[i] > hilT[i] {
			t.Errorf("near-optimal slower than Hilbert on text at k=%v: %v vs %v",
				r.X[i], newT[i], hilT[i])
		}
	}
}

func TestAblKNNShape(t *testing.T) {
	r := mustRun(t, "abl-knn", quickCfg())
	hs := r.Series[0].Y
	rkv := r.Series[1].Y
	for i := range hs {
		if hs[i] > rkv[i]+0.5 {
			t.Errorf("HS read more pages than RKV at d=%v: %v vs %v", r.X[i], hs[i], rkv[i])
		}
	}
}

func TestAblFoldShape(t *testing.T) {
	r := mustRun(t, "abl-fold", quickCfg())
	fold := r.Series[0].Y
	naive := r.Series[1].Y
	foldTotal, naiveTotal := 0.0, 0.0
	for i := range fold {
		foldTotal += fold[i]
		naiveTotal += naive[i]
	}
	if foldTotal > naiveTotal {
		t.Errorf("folding collides more than naive modulo overall: %v vs %v", foldTotal, naiveTotal)
	}
}

func TestAblQuantileShape(t *testing.T) {
	r := mustRun(t, "abl-quantile", quickCfg())
	mid := r.Series[0].Y
	quant := r.Series[1].Y
	if quant[1] >= mid[1] {
		t.Errorf("quantile splits should reduce the 10-NN bottleneck: %v vs %v", quant[1], mid[1])
	}
}

// The remaining experiments are exercised for crash-freedom and sane
// output; their magnitudes are recorded in EXPERIMENTS.md at full scale.
func TestRemainingExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep skipped in -short mode")
	}
	for _, id := range []string{"fig3b", "fig13", "fig15", "abl-indirect", "abl-costmodel", "abl-supernode", "ext-partialmatch", "ext-throughput"} {
		r := mustRun(t, id, quickCfg())
		if len(r.X) == 0 || len(r.Series) == 0 {
			t.Errorf("%s: empty result", id)
		}
		for _, s := range r.Series {
			for _, y := range s.Y {
				if y < 0 {
					t.Errorf("%s: negative measurement %v in %s", id, y, s.Name)
				}
			}
		}
	}
}

func mustRun(t *testing.T, id string, cfg Config) Result {
	t.Helper()
	e, ok := Get(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	return e.Run(cfg)
}

// The queueing extension must show near-optimal sustaining load at least
// as well as round robin.
func TestExtQueueingShape(t *testing.T) {
	r := mustRun(t, "ext-queueing", quickCfg())
	if len(r.Series) != 3 {
		t.Fatalf("%d series", len(r.Series))
	}
	newResp := r.Series[0].Y
	rrResp := r.Series[2].Y
	last := len(newResp) - 1
	if newResp[last] > rrResp[last] {
		t.Errorf("at full load, near-optimal response %v should not exceed RR %v",
			newResp[last], rrResp[last])
	}
	// Responses must grow with load for every strategy.
	for _, s := range r.Series {
		if s.Y[last] < s.Y[0] {
			t.Errorf("%s: response fell with load: %v", s.Name, s.Y)
		}
	}
}

func TestAblGreedyShape(t *testing.T) {
	r := mustRun(t, "abl-greedy", quickCfg())
	col := r.Series[0].Y
	greedy := r.Series[1].Y
	lower := r.Series[2].Y
	for i := range col {
		if col[i] < lower[i] || greedy[i] < lower[i] {
			t.Errorf("d=%v: a proper coloring cannot use fewer than d+1 colors", r.X[i])
		}
	}
}

func TestExtModelShape(t *testing.T) {
	r := mustRun(t, "ext-model", quickCfg())
	measR := r.Series[0].Y
	modelR := r.Series[1].Y
	// The model must track the measured radius within a factor of 2 in
	// low dimensions and never exceed the measured value by much (it
	// ignores boundary effects, so it underestimates).
	for i := range measR {
		if modelR[i] > 2*measR[i]+0.05 {
			t.Errorf("d=%v: model radius %v far above measured %v", r.X[i], modelR[i], measR[i])
		}
	}
	// Page counts explode with dimension in both curves.
	measP := r.Series[2].Y
	if measP[len(measP)-1] < 3*measP[0] {
		t.Errorf("measured pages did not grow: %v", measP)
	}
}

// The failure sweep must show the fault-tolerance story: without
// replication availability collapses with the first failure; with
// chained replication it stays 1.0 (the sweep never kills a chained
// pair) while the speedup monotonically degrades.
func TestExtFailuresShape(t *testing.T) {
	r := mustRun(t, "ext-failures", quickCfg())
	if len(r.Series) != 4 {
		t.Fatalf("%d series", len(r.Series))
	}
	availR0 := r.Series[1].Y
	speedR1 := r.Series[2].Y
	availR1 := r.Series[3].Y
	if availR0[0] != 1 {
		t.Errorf("healthy r=0 availability %v, want 1", availR0[0])
	}
	for i := 1; i < len(availR0); i++ {
		if availR0[i] != 0 {
			t.Errorf("%v failed disks, r=0: availability %v, want 0 without replication", r.X[i], availR0[i])
		}
	}
	for i, a := range availR1 {
		if a != 1 {
			t.Errorf("%v failed disks, r=1: availability %v, want 1 (no chained pair fails)", r.X[i], a)
		}
	}
	for i := 1; i < len(speedR1); i++ {
		if speedR1[i] > speedR1[i-1] {
			t.Errorf("r=1 speedup rose from %v to %v with an extra failed disk", speedR1[i-1], speedR1[i])
		}
	}
}

// In 2-d range queries Hilbert must beat DM and FX on average — the
// design point of [FB 93] that the paper contrasts against.
func TestExtHilbert2DShape(t *testing.T) {
	r := mustRun(t, "ext-hilbert2d", quickCfg())
	hil := r.Series[0].Y
	dm := r.Series[1].Y
	fx := r.Series[2].Y
	hilSum, dmSum, fxSum := 0.0, 0.0, 0.0
	for i := range hil {
		hilSum += hil[i]
		dmSum += dm[i]
		fxSum += fx[i]
	}
	if hilSum > dmSum || hilSum > fxSum {
		t.Errorf("Hilbert should win 2-d range queries: HIL %v, DM %v, FX %v", hilSum, dmSum, fxSum)
	}
}

func TestResultTSV(t *testing.T) {
	r := Result{
		XLabel: "disks",
		X:      []float64{2, 4},
		Series: []Series{{Name: "a", Y: []float64{1.5, 2.5}}, {Name: "b", Y: []float64{3}}},
	}
	got := r.TSV()
	want := "disks\ta\tb\n2\t1.5\t3\n4\t2.5\t\n"
	if got != want {
		t.Errorf("TSV = %q, want %q", got, want)
	}
}

func TestAblQualityShape(t *testing.T) {
	r := mustRun(t, "abl-quality", quickCfg())
	insOv := r.Series[0].Y
	blkOv := r.Series[1].Y
	insFill := r.Series[2].Y
	blkFill := r.Series[3].Y
	for i := range insOv {
		// Both construction paths must keep directory overlap small
		// (the X-tree's design goal): insert-built via supernodes,
		// bulk-loaded via volume-minimal cuts.
		if insOv[i] > 0.1 || blkOv[i] > 0.1 {
			t.Errorf("d=%v: directory overlap too high: ins %v, bulk %v", r.X[i], insOv[i], blkOv[i])
		}
		if insFill[i] < 0.4 || blkFill[i] < 0.4 {
			t.Errorf("d=%v: storage utilization too low: ins %v, bulk %v", r.X[i], insFill[i], blkFill[i])
		}
	}
}
