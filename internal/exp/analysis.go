package exp

import (
	"fmt"

	"parsearch/internal/core"
	"parsearch/internal/data"
	"parsearch/internal/graph"
	"parsearch/internal/knn"
	"parsearch/internal/model"
	"parsearch/internal/xtree"
)

func init() {
	register(Experiment{
		ID: "abl-greedy", Figure: "ablation",
		Title: "Closed-form coloring vs. generic greedy graph coloring",
		Run:   runAblGreedy,
	})
	register(Experiment{
		ID: "ext-model", Figure: "extension",
		Title: "Analytic cost model vs. measured page accesses ([BBKK 97])",
		Run:   runExtModel,
	})
}

// runAblGreedy compares the paper's closed-form coloring against a
// generic greedy coloring of the disk assignment graph: greedy also
// produces a proper (near-optimal) coloring, but needs more colors and
// gives no closed form — the reason the paper's O(d) function matters.
func runAblGreedy(cfg Config) Result {
	cfg.validate()
	colS := Series{Name: "col"}
	greedyS := Series{Name: "greedy"}
	lowerS := Series{Name: "d+1"}
	var x []float64
	for d := 2; d <= 13; d++ {
		g := graph.New(d)
		colors, k := g.GreedyColoring()
		if ok, _, _ := g.IsProperColoring(colors); !ok {
			panic("exp: greedy coloring is not proper")
		}
		x = append(x, float64(d))
		colS.Y = append(colS.Y, float64(core.NumColors(d)))
		greedyS.Y = append(greedyS.Y, float64(k))
		lowerS.Y = append(lowerS.Y, float64(d+1))
	}
	return Result{
		ID: "abl-greedy", Title: "colors used: closed form vs. greedy",
		XLabel: "dimension", X: x,
		Series: []Series{colS, greedyS, lowerS},
		Notes: []string{
			"both colorings are proper on G_d (near-optimal declusterings)",
			"expected: col stays at nextPow2(d+1); greedy needs at least as many colors and is O(2^d) to compute",
		},
	}
}

// runExtModel compares the analytic estimates of [BBKK 97] — expected
// NN distance and expected page accesses — against the measured values
// on the sequential X-tree, validating the cost model the paper builds
// its argument on.
func runExtModel(cfg Config) Result {
	cfg.validate()
	n := cfg.scaled(32768)
	measuredPages := Series{Name: "pages(meas)"}
	modelPages := Series{Name: "pages(model)"}
	measuredR := Series{Name: "r1(meas)"}
	modelR := Series{Name: "r1(model)"}
	var x []float64
	for _, d := range []int{2, 4, 6, 8, 10, 12} {
		pts := data.Uniform(n, d, cfg.Seed)
		entries := make([]xtree.Entry, len(pts))
		for i, p := range pts {
			entries[i] = xtree.Entry{Point: p, ID: i}
		}
		tree := xtree.New(xtree.DefaultConfig(d))
		tree.BulkLoad(entries)
		queries := data.Uniform(cfg.Queries, d, cfg.Seed+1)

		var pages, radius float64
		for _, q := range queries {
			res, acc := knn.HS(tree, q, 1)
			pages += float64(acc.LeafAccesses)
			radius += res[0].Dist
		}
		m := float64(len(queries))
		x = append(x, float64(d))
		measuredPages.Y = append(measuredPages.Y, pages/m)
		modelPages.Y = append(modelPages.Y, model.ExpectedPageAccesses(n, d, 1, xtree.LeafCapacityForPage(d, xtree.PageSize)))
		measuredR.Y = append(measuredR.Y, radius/m)
		modelR.Y = append(modelR.Y, model.ExpectedNNDist(n, d, 1))
	}
	return Result{
		ID: "ext-model", Title: "cost model vs. measurement (1-NN, sequential X-tree)",
		XLabel: "dimension", X: x,
		Series: []Series{measuredR, modelR, measuredPages, modelPages},
		Notes: []string{
			fmt.Sprintf("N = %d uniform points", n),
			"expected: model tracks the measured NN radius closely in low d and underestimates in high d (boundary effects, as [BBKK 97] discusses); both page curves explode with d",
		},
	}
}
