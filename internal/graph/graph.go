// Package graph implements the disk assignment graph of the paper
// (Definition 5): vertices are the 2^d quadrant bucket numbers of a
// d-dimensional data space, and edges connect direct neighbors (bucket
// numbers differing in one bit) and indirect neighbors (differing in two
// bits). Declustering is exactly graph coloring on this graph: colors are
// disks, and a proper coloring is a near-optimal declustering.
//
// The package provides the graph construction, proper-coloring
// verification, a greedy coloring for comparison, and an exact
// chromatic-number search by backtracking. The exact search is how the
// paper "verified by enumerating all possible color assignments" that the
// staircase nextPow2(d+1) is optimal for low dimensions.
package graph

import (
	"fmt"
	"math/bits"
)

// DiskAssignmentGraph is G_d: an undirected graph on the 2^d bucket
// numbers with direct and indirect neighborhood edges.
type DiskAssignmentGraph struct {
	d   int
	adj [][]int
}

// New builds the disk assignment graph for a d-dimensional space. The
// graph has 2^d vertices and 2^d · (d + d(d-1)/2) / 2 edges, so d must
// stay small (d <= 20).
func New(d int) *DiskAssignmentGraph {
	if d < 1 || d > 20 {
		panic(fmt.Sprintf("graph: dimension %d outside [1, 20]", d))
	}
	n := 1 << uint(d)
	g := &DiskAssignmentGraph{d: d, adj: make([][]int, n)}
	degree := d + d*(d-1)/2
	for v := 0; v < n; v++ {
		g.adj[v] = make([]int, 0, degree)
		for i := 0; i < d; i++ {
			g.adj[v] = append(g.adj[v], v^1<<uint(i))
			for j := i + 1; j < d; j++ {
				g.adj[v] = append(g.adj[v], v^1<<uint(i)^1<<uint(j))
			}
		}
	}
	return g
}

// Dim returns the dimensionality d of the underlying data space.
func (g *DiskAssignmentGraph) Dim() int { return g.d }

// NumVertices returns 2^d.
func (g *DiskAssignmentGraph) NumVertices() int { return len(g.adj) }

// NumEdges returns the number of undirected edges.
func (g *DiskAssignmentGraph) NumEdges() int {
	total := 0
	for _, nbrs := range g.adj {
		total += len(nbrs)
	}
	return total / 2
}

// Degree returns the degree of every vertex: d direct plus d(d-1)/2
// indirect neighbors (the graph is vertex-transitive).
func (g *DiskAssignmentGraph) Degree() int {
	return g.d + g.d*(g.d-1)/2
}

// Neighbors returns the adjacency list of v. The slice is shared; callers
// must not modify it.
func (g *DiskAssignmentGraph) Neighbors(v int) []int {
	return g.adj[v]
}

// Adjacent reports whether u and v are connected, i.e. differ in exactly
// one or two bits.
func (g *DiskAssignmentGraph) Adjacent(u, v int) bool {
	pop := bits.OnesCount(uint(u ^ v))
	return pop == 1 || pop == 2
}

// IsProperColoring reports whether the given coloring (one color per
// vertex) assigns different colors to every pair of adjacent vertices,
// returning the first conflicting edge otherwise.
func (g *DiskAssignmentGraph) IsProperColoring(colors []int) (ok bool, u, v int) {
	if len(colors) != len(g.adj) {
		panic(fmt.Sprintf("graph: coloring of length %d for %d vertices", len(colors), len(g.adj)))
	}
	for a, nbrs := range g.adj {
		for _, b := range nbrs {
			if a < b && colors[a] == colors[b] {
				return false, a, b
			}
		}
	}
	return true, 0, 0
}

// GreedyColoring colors vertices in index order with the lowest free
// color and returns the coloring and the number of colors used. On the
// disk assignment graph greedy is not optimal in general; it serves as a
// baseline against the closed-form coloring.
func (g *DiskAssignmentGraph) GreedyColoring() ([]int, int) {
	n := len(g.adj)
	colors := make([]int, n)
	for i := range colors {
		colors[i] = -1
	}
	maxColor := 0
	used := make([]bool, g.Degree()+1)
	for v := 0; v < n; v++ {
		for i := range used {
			used[i] = false
		}
		for _, w := range g.adj[v] {
			if c := colors[w]; c >= 0 && c < len(used) {
				used[c] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		colors[v] = c
		if c+1 > maxColor {
			maxColor = c + 1
		}
	}
	return colors, maxColor
}

// Colorable reports whether the graph has a proper coloring with k colors,
// searching exhaustively with backtracking and symmetry breaking (vertex 0
// is pinned to color 0). Exponential; intended for d <= 4, where it
// finishes quickly.
func (g *DiskAssignmentGraph) Colorable(k int) bool {
	if k < 1 {
		return false
	}
	n := len(g.adj)
	colors := make([]int, n)
	for i := range colors {
		colors[i] = -1
	}
	colors[0] = 0
	var rec func(v, maxUsed int) bool
	rec = func(v, maxUsed int) bool {
		if v == n {
			return true
		}
		if colors[v] >= 0 {
			return rec(v+1, maxUsed)
		}
		// Try existing colors plus at most one new color (canonical
		// order breaks color-permutation symmetry).
		limit := maxUsed + 1
		if limit > k-1 {
			limit = k - 1
		}
		for c := 0; c <= limit; c++ {
			conflict := false
			for _, w := range g.adj[v] {
				if colors[w] == c {
					conflict = true
					break
				}
			}
			if conflict {
				continue
			}
			colors[v] = c
			next := maxUsed
			if c > maxUsed {
				next = c
			}
			if rec(v+1, next) {
				return true
			}
			colors[v] = -1
		}
		return false
	}
	return rec(1, 0)
}

// ChromaticNumber returns the exact chromatic number by trying increasing
// k starting from the clique-based lower bound d+1. Exponential; intended
// for d <= 4.
func (g *DiskAssignmentGraph) ChromaticNumber() int {
	for k := g.d + 1; ; k++ {
		if g.Colorable(k) {
			return k
		}
	}
}
