package graph

import (
	"testing"

	"parsearch/internal/core"
)

func TestNewValidation(t *testing.T) {
	for _, d := range []int{0, -1, 21} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d): expected panic", d)
				}
			}()
			New(d)
		}()
	}
}

func TestGraphStructure(t *testing.T) {
	g := New(3)
	if g.Dim() != 3 {
		t.Errorf("Dim = %d", g.Dim())
	}
	if g.NumVertices() != 8 {
		t.Errorf("NumVertices = %d, want 8", g.NumVertices())
	}
	// Degree: 3 direct + 3 indirect = 6; edges = 8*6/2 = 24.
	if g.Degree() != 6 {
		t.Errorf("Degree = %d, want 6", g.Degree())
	}
	if g.NumEdges() != 24 {
		t.Errorf("NumEdges = %d, want 24", g.NumEdges())
	}
	for v := 0; v < 8; v++ {
		if len(g.Neighbors(v)) != 6 {
			t.Errorf("vertex %d has %d neighbors", v, len(g.Neighbors(v)))
		}
	}
}

func TestAdjacent(t *testing.T) {
	g := New(4)
	tests := []struct {
		u, v int
		want bool
	}{
		{0b0000, 0b0001, true},  // direct
		{0b0000, 0b0011, true},  // indirect
		{0b0000, 0b0111, false}, // 3 bits
		{0b0101, 0b0101, false}, // same vertex
		{0b1111, 0b1100, true},
	}
	for _, tt := range tests {
		if got := g.Adjacent(tt.u, tt.v); got != tt.want {
			t.Errorf("Adjacent(%b, %b) = %v", tt.u, tt.v, got)
		}
	}
}

// The coloring function of the paper is a proper coloring of G_d — the
// graph-theoretic formulation of Lemma 5.
func TestColIsProperColoring(t *testing.T) {
	for d := 1; d <= 8; d++ {
		g := New(d)
		colors := make([]int, g.NumVertices())
		for v := range colors {
			colors[v] = core.Col(core.Bucket(v), d)
		}
		if ok, u, v := g.IsProperColoring(colors); !ok {
			t.Errorf("d=%d: col conflicts on edge (%b, %b)", d, u, v)
		}
	}
}

// An all-same coloring must be rejected with a concrete conflict edge.
func TestIsProperColoringRejects(t *testing.T) {
	g := New(2)
	ok, u, v := g.IsProperColoring(make([]int, 4))
	if ok {
		t.Fatal("constant coloring accepted")
	}
	if !g.Adjacent(u, v) {
		t.Errorf("reported conflict (%d, %d) not an edge", u, v)
	}
}

func TestIsProperColoringLengthPanics(t *testing.T) {
	g := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong coloring length")
		}
	}()
	g.IsProperColoring([]int{0})
}

func TestGreedyColoringIsProper(t *testing.T) {
	for d := 1; d <= 7; d++ {
		g := New(d)
		colors, k := g.GreedyColoring()
		if ok, u, v := g.IsProperColoring(colors); !ok {
			t.Fatalf("d=%d: greedy coloring conflicts on (%b, %b)", d, u, v)
		}
		if k < core.ColorLowerBound(d) {
			t.Errorf("d=%d: greedy used %d colors, below the d+1 lower bound", d, k)
		}
		if k > g.Degree()+1 {
			t.Errorf("d=%d: greedy used %d colors, above degree+1", d, k)
		}
	}
}

// The paper's enumeration claim: for low dimensions the exact chromatic
// number of G_d equals the staircase nextPow2(d+1). (d=1: 2, d=2: 4,
// d=3: 4, d=4: 8.)
func TestChromaticNumberMatchesStaircase(t *testing.T) {
	if testing.Short() {
		t.Skip("exact chromatic search skipped in -short mode")
	}
	for d := 1; d <= 4; d++ {
		g := New(d)
		got := g.ChromaticNumber()
		want := core.NumColors(d)
		if got != want {
			t.Errorf("d=%d: chromatic number %d, staircase %d", d, got, want)
		}
	}
}

func TestColorableEdgeCases(t *testing.T) {
	g := New(2)
	if g.Colorable(0) {
		t.Error("0 colors cannot color a non-empty graph")
	}
	if g.Colorable(3) {
		t.Error("G_2 is K_4; 3 colors must not suffice")
	}
	if !g.Colorable(4) {
		t.Error("G_2 is K_4; 4 colors suffice")
	}
}

// G_2 is the complete graph K_4 (all four quadrants are pairwise direct or
// indirect neighbors).
func TestG2IsComplete(t *testing.T) {
	g := New(2)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			if !g.Adjacent(u, v) {
				t.Errorf("G_2 missing edge (%d, %d)", u, v)
			}
		}
	}
}

func BenchmarkChromaticNumberD3(b *testing.B) {
	g := New(3)
	for i := 0; i < b.N; i++ {
		if g.ChromaticNumber() != 4 {
			b.Fatal("wrong chromatic number")
		}
	}
}
