// Package wire defines the JSON wire format of the parsearch serving
// layer: the request and response bodies of the /v1 endpoints, shared
// by the server and the typed client, plus the validating request
// decoder the server runs on every body.
//
// Decoding is strict about the things the engine would otherwise have
// to police per query: every vector must have exactly the index's
// dimensionality and only finite components (no NaN/Inf — JSON cannot
// carry them literally, but a decoder must not rely on that), k must be
// positive, range bounds must be ordered, and a partial-match spec must
// specify at least one dimension. A request failing validation is a
// client error (HTTP 400), never a panic or an engine error.
package wire

import (
	"encoding/json"
	"fmt"
	"math"
)

// The /v1 operation names, doubling as the request-decoder dispatch
// keys: each one is the path suffix of its endpoint.
const (
	OpKNN          = "knn"
	OpRange        = "range"
	OpPartialMatch = "partialmatch"
	OpBatch        = "batch"
)

// KNNRequest is the body of POST /v1/knn. Epsilon and RecallTarget are
// the approximate-tier knobs: absent (null) fields fall back to the
// served index's defaults; present fields override them per request
// (0 forces an exact search, and a recall_target of 1 disables the LSH
// probe cap). Bound and Shard are the cluster fields a scatter-gather
// coordinator sets; both are optional, and servers predating them
// ignore the unknown keys (encoding/json discards unknown fields), so
// a new coordinator degrades gracefully against old shard daemons —
// the bound and the restriction only ever change accounting and
// routing, never result correctness at the coordinator, which merges
// whatever each shard returns.
type KNNRequest struct {
	Query        []float64 `json:"query"`
	K            int       `json:"k"`
	Epsilon      *float64  `json:"epsilon,omitempty"`
	RecallTarget *float64  `json:"recall_target,omitempty"`
	// Bound, when present, seeds the served index's cooperative k-NN
	// bound with an externally known k-th-distance upper bound (see
	// parsearch.Approx.Bound). Exactness-preserving by construction.
	Bound *float64 `json:"bound,omitempty"`
	// Shard, when present, restricts the query to a subset of the
	// declustered disks (see parsearch.ShardSpec).
	Shard *ShardSpec `json:"shard,omitempty"`
}

// ShardSpec mirrors parsearch.ShardSpec on the wire: the query serves
// the disks d with d mod Of in Groups.
type ShardSpec struct {
	Of     int   `json:"of"`
	Groups []int `json:"groups"`
}

// RangeRequest is the body of POST /v1/range. Shard behaves as in
// KNNRequest (a box query has no distance bound to ship).
type RangeRequest struct {
	Min   []float64  `json:"min"`
	Max   []float64  `json:"max"`
	Shard *ShardSpec `json:"shard,omitempty"`
}

// PartialMatchRequest is the body of POST /v1/partialmatch. Wildcard
// dimensions are JSON nulls (NaN is not representable in JSON); the
// server maps them to parsearch.Wildcard. Shard behaves as in
// KNNRequest.
type PartialMatchRequest struct {
	Spec  []*float64 `json:"spec"`
	Eps   float64    `json:"eps"`
	Shard *ShardSpec `json:"shard,omitempty"`
}

// BatchRequest is the body of POST /v1/batch. Epsilon, RecallTarget,
// Bound, and Shard behave as in KNNRequest and apply to every query of
// the batch.
type BatchRequest struct {
	Queries      [][]float64 `json:"queries"`
	K            int         `json:"k"`
	Epsilon      *float64    `json:"epsilon,omitempty"`
	RecallTarget *float64    `json:"recall_target,omitempty"`
	Bound        *float64    `json:"bound,omitempty"`
	Shard        *ShardSpec  `json:"shard,omitempty"`
}

// Neighbor mirrors parsearch.Neighbor on the wire. Dist is NaN for
// partial-match results (the engine reports the distance to the query
// box center, undefined under wildcards); JSON cannot carry NaN, so a
// non-finite distance travels as null and is restored to NaN on decode.
type Neighbor struct {
	ID    int       `json:"id"`
	Point []float64 `json:"point"`
	Dist  float64   `json:"dist"`
}

// wireNeighbor is the JSON shape of Neighbor: Dist nullable.
type wireNeighbor struct {
	ID    int       `json:"id"`
	Point []float64 `json:"point"`
	Dist  *float64  `json:"dist"`
}

// MarshalJSON emits a non-finite Dist as null.
func (n Neighbor) MarshalJSON() ([]byte, error) {
	a := wireNeighbor{ID: n.ID, Point: n.Point}
	if !math.IsNaN(n.Dist) && !math.IsInf(n.Dist, 0) {
		a.Dist = &n.Dist
	}
	return json.Marshal(a)
}

// UnmarshalJSON restores a null Dist to NaN.
func (n *Neighbor) UnmarshalJSON(data []byte) error {
	var a wireNeighbor
	if err := json.Unmarshal(data, &a); err != nil {
		return err
	}
	n.ID, n.Point = a.ID, a.Point
	if a.Dist == nil {
		n.Dist = math.NaN()
	} else {
		n.Dist = *a.Dist
	}
	return nil
}

// QueryResponse is the body of a successful single-query response
// (/v1/knn, /v1/range, /v1/partialmatch). Stats carries the engine's
// QueryStats verbatim (its exported field names are the JSON keys).
type QueryResponse struct {
	Neighbors []Neighbor      `json:"neighbors"`
	Stats     json.RawMessage `json:"stats,omitempty"`
}

// BatchResponse is the body of a successful /v1/batch response.
type BatchResponse struct {
	Results [][]Neighbor    `json:"results"`
	Stats   json.RawMessage `json:"stats,omitempty"`
}

// CatchupRequest is the body of POST /v1/catchup: the follower's chain
// position (see parsearch.CatchupScan). Have false requests a full
// reset delta regardless of Gen/Offset.
type CatchupRequest struct {
	Have   bool   `json:"have"`
	Gen    uint64 `json:"gen"`
	Offset int64  `json:"offset"`
}

// CatchupFile mirrors parsearch.CatchupFile on the wire; Data is
// base64-encoded by encoding/json.
type CatchupFile struct {
	Name   string `json:"name"`
	Offset int64  `json:"offset"`
	Data   []byte `json:"data"`
}

// CatchupResponse is the body of a successful /v1/catchup response,
// mirroring parsearch.CatchupDelta.
type CatchupResponse struct {
	Gen        uint64        `json:"gen"`
	NextOffset int64         `json:"next_offset"`
	Reset      bool          `json:"reset,omitempty"`
	Files      []CatchupFile `json:"files"`
}

// ErrorResponse is the body of every non-2xx response. Code is the
// machine-readable classification the client maps back to sentinel
// errors; Error is human-readable.
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// The error codes of ErrorResponse.Code.
const (
	CodeBadRequest  = "bad_request" // malformed or invalid request body
	CodeEmpty       = "empty"       // parsearch.ErrEmpty: the index holds no vectors
	CodeUnavailable = "unavailable" // parsearch.ErrUnavailable: no live copy reachable
	CodeQueueFull   = "queue_full"  // admission queue at capacity (HTTP 429)
	CodeDraining    = "draining"    // server is draining for shutdown (HTTP 503)
	CodeDeadline    = "deadline"    // request deadline expired in queue or in flight
	CodeInternal    = "internal"    // unexpected engine failure
)

// Health is the body of GET /healthz.
type Health struct {
	// Status is "ok" (all disks live), "rerouted" (failures fully
	// covered by replicas), "degraded" (some data unreachable), or
	// "draining" (shutdown in progress). The endpoint answers HTTP 200
	// for the first two and 503 for the rest, so load balancers pull a
	// degraded or draining instance out of rotation.
	Status string `json:"status"`
	Disks  int    `json:"disks"`
	// FailedDisks lists the disks currently failed; Unreachable the
	// subset whose data has no live replica.
	FailedDisks []int `json:"failed_disks,omitempty"`
	Unreachable []int `json:"unreachable,omitempty"`
	Draining    bool  `json:"draining"`
	// Durability is present when the served index runs with a durable
	// mutation log; absent for a purely in-memory index.
	Durability *Durability `json:"durability,omitempty"`
}

// Durability is the durable-log block of Health: the live WAL state
// (generation, fsync policy, un-synced byte lag) plus what the crash
// recovery at startup found. WALLagBytes is the data a crash right now
// would lose — always 0 between mutations under the "always" policy.
type Durability struct {
	Generation       uint64 `json:"generation"`
	SyncPolicy       string `json:"sync_policy"`
	WALLagBytes      int64  `json:"wal_lag_bytes"`
	Recovered        bool   `json:"recovered"`
	RecoveredRecords int    `json:"recovered_records"`
	TornBytes        int64  `json:"torn_bytes,omitempty"`
	Salvaged         bool   `json:"salvaged,omitempty"`
}

// checkVector validates one request vector: exact dimensionality and
// finite components.
func checkVector(name string, v []float64, dim int) error {
	if len(v) != dim {
		return fmt.Errorf("wire: %s has dimension %d, want %d", name, len(v), dim)
	}
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("wire: %s component %d is not finite", name, i)
		}
	}
	return nil
}

// maxEpsilon mirrors the engine's cap on the ε knob; anything larger
// is a client bug (or garbage), not a meaningful recall trade.
const maxEpsilon = 1e6

// checkApprox validates the optional approximate-tier knobs of a
// request: a present epsilon must be finite, ≥ 0, and ≤ 1e6; a present
// recall_target must be in [0, 1]. Absent (nil) knobs are valid — the
// server fills them from the index defaults.
func checkApprox(epsilon, recallTarget *float64) error {
	if epsilon != nil {
		e := *epsilon
		if math.IsNaN(e) || e < 0 || e > maxEpsilon {
			return fmt.Errorf("wire: epsilon %v outside [0, %g]", e, float64(maxEpsilon))
		}
	}
	if recallTarget != nil {
		rt := *recallTarget
		if math.IsNaN(rt) || rt < 0 || rt > 1 {
			return fmt.Errorf("wire: recall_target %v outside [0, 1]", rt)
		}
	}
	return nil
}

// maxShardOf bounds the shard-group count of a wire ShardSpec: no real
// deployment partitions one declustered disk set into more process
// shards than this, so anything larger is garbage (or an attack) and a
// cheap way to make the server allocate. The engine additionally
// requires Of <= Disks.
const maxShardOf = 4096

// checkShard validates an optional shard restriction: a present spec
// must name a positive group count and at least one distinct group in
// [0, of). A nil spec is valid (the query serves every disk).
func checkShard(s *ShardSpec) error {
	if s == nil {
		return nil
	}
	if s.Of < 1 || s.Of > maxShardOf {
		return fmt.Errorf("wire: shard group count %d outside [1, %d]", s.Of, maxShardOf)
	}
	if len(s.Groups) == 0 {
		return fmt.Errorf("wire: shard spec selects no groups")
	}
	if len(s.Groups) > s.Of {
		return fmt.Errorf("wire: %d shard groups listed, only %d exist", len(s.Groups), s.Of)
	}
	seen := make(map[int]bool, len(s.Groups))
	for _, g := range s.Groups {
		if g < 0 || g >= s.Of {
			return fmt.Errorf("wire: shard group %d outside [0, %d)", g, s.Of)
		}
		if seen[g] {
			return fmt.Errorf("wire: duplicate shard group %d", g)
		}
		seen[g] = true
	}
	return nil
}

// checkBound validates an optional cross-network k-th-distance bound:
// a present bound must be a finite distance >= 0.
func checkBound(bound *float64) error {
	if bound == nil {
		return nil
	}
	if b := *bound; math.IsNaN(b) || math.IsInf(b, 0) || b < 0 {
		return fmt.Errorf("wire: bound %v, want a finite distance >= 0", *bound)
	}
	return nil
}

// decode unmarshals into dst, classifying syntax errors uniformly.
func decode(data []byte, dst any) error {
	if err := json.Unmarshal(data, dst); err != nil {
		return fmt.Errorf("wire: invalid request body: %w", err)
	}
	return nil
}

// DecodeKNN decodes and validates a /v1/knn body against the index
// dimensionality.
func DecodeKNN(data []byte, dim int) (KNNRequest, error) {
	var req KNNRequest
	if err := decode(data, &req); err != nil {
		return KNNRequest{}, err
	}
	if err := checkVector("query", req.Query, dim); err != nil {
		return KNNRequest{}, err
	}
	if req.K < 1 {
		return KNNRequest{}, fmt.Errorf("wire: k = %d, want >= 1", req.K)
	}
	if err := checkApprox(req.Epsilon, req.RecallTarget); err != nil {
		return KNNRequest{}, err
	}
	if err := checkBound(req.Bound); err != nil {
		return KNNRequest{}, err
	}
	if err := checkShard(req.Shard); err != nil {
		return KNNRequest{}, err
	}
	return req, nil
}

// DecodeRange decodes and validates a /v1/range body.
func DecodeRange(data []byte, dim int) (RangeRequest, error) {
	var req RangeRequest
	if err := decode(data, &req); err != nil {
		return RangeRequest{}, err
	}
	if err := checkVector("min", req.Min, dim); err != nil {
		return RangeRequest{}, err
	}
	if err := checkVector("max", req.Max, dim); err != nil {
		return RangeRequest{}, err
	}
	for i := range req.Min {
		if req.Min[i] > req.Max[i] {
			return RangeRequest{}, fmt.Errorf("wire: min > max in dimension %d", i)
		}
	}
	if err := checkShard(req.Shard); err != nil {
		return RangeRequest{}, err
	}
	return req, nil
}

// DecodePartialMatch decodes and validates a /v1/partialmatch body.
// Null spec entries are wildcards; at least one dimension must be
// specified, and specified values must be finite.
func DecodePartialMatch(data []byte, dim int) (PartialMatchRequest, error) {
	var req PartialMatchRequest
	if err := decode(data, &req); err != nil {
		return PartialMatchRequest{}, err
	}
	if len(req.Spec) != dim {
		return PartialMatchRequest{}, fmt.Errorf("wire: spec has dimension %d, want %d", len(req.Spec), dim)
	}
	specified := 0
	for i, v := range req.Spec {
		if v == nil {
			continue
		}
		if math.IsNaN(*v) || math.IsInf(*v, 0) {
			return PartialMatchRequest{}, fmt.Errorf("wire: spec component %d is not finite", i)
		}
		specified++
	}
	if specified == 0 {
		return PartialMatchRequest{}, fmt.Errorf("wire: partial-match spec specifies no dimension")
	}
	if math.IsNaN(req.Eps) || math.IsInf(req.Eps, 0) || req.Eps < 0 {
		return PartialMatchRequest{}, fmt.Errorf("wire: invalid tolerance %v", req.Eps)
	}
	if err := checkShard(req.Shard); err != nil {
		return PartialMatchRequest{}, err
	}
	return req, nil
}

// DecodeBatch decodes and validates a /v1/batch body. maxQueries
// bounds the batch size (0 = unbounded) so a single request cannot
// monopolize the engine.
func DecodeBatch(data []byte, dim, maxQueries int) (BatchRequest, error) {
	var req BatchRequest
	if err := decode(data, &req); err != nil {
		return BatchRequest{}, err
	}
	if len(req.Queries) == 0 {
		return BatchRequest{}, fmt.Errorf("wire: batch holds no queries")
	}
	if maxQueries > 0 && len(req.Queries) > maxQueries {
		return BatchRequest{}, fmt.Errorf("wire: batch holds %d queries, limit %d", len(req.Queries), maxQueries)
	}
	for i, q := range req.Queries {
		if err := checkVector(fmt.Sprintf("query %d", i), q, dim); err != nil {
			return BatchRequest{}, err
		}
	}
	if req.K < 1 {
		return BatchRequest{}, fmt.Errorf("wire: k = %d, want >= 1", req.K)
	}
	if err := checkApprox(req.Epsilon, req.RecallTarget); err != nil {
		return BatchRequest{}, err
	}
	if err := checkBound(req.Bound); err != nil {
		return BatchRequest{}, err
	}
	if err := checkShard(req.Shard); err != nil {
		return BatchRequest{}, err
	}
	return req, nil
}

// DecodeCatchup decodes and validates a /v1/catchup body.
func DecodeCatchup(data []byte) (CatchupRequest, error) {
	var req CatchupRequest
	if err := decode(data, &req); err != nil {
		return CatchupRequest{}, err
	}
	if req.Offset < 0 {
		return CatchupRequest{}, fmt.Errorf("wire: negative catch-up offset %d", req.Offset)
	}
	return req, nil
}

// DecodeQueryRequest dispatches a request body to the decoder of the
// given operation (one of the Op* constants) — the single entry point
// the fuzz harness drives. Unknown operations are an error.
func DecodeQueryRequest(op string, data []byte, dim int) (any, error) {
	switch op {
	case OpKNN:
		return DecodeKNN(data, dim)
	case OpRange:
		return DecodeRange(data, dim)
	case OpPartialMatch:
		return DecodePartialMatch(data, dim)
	case OpBatch:
		return DecodeBatch(data, dim, 0)
	default:
		return nil, fmt.Errorf("wire: unknown operation %q", op)
	}
}
