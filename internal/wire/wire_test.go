package wire

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestDecodeKNN(t *testing.T) {
	req, err := DecodeKNN([]byte(`{"query":[0.1,0.2,0.3],"k":5}`), 3)
	if err != nil {
		t.Fatal(err)
	}
	if req.K != 5 || len(req.Query) != 3 {
		t.Fatalf("decoded %+v", req)
	}

	bad := []string{
		`{"query":[0.1,0.2],"k":5}`,     // wrong dim
		`{"query":[0.1,0.2,0.3],"k":0}`, // k < 1
		`{"query":[0.1,0.2,0.3]}`,       // k missing
		`{"query":[1e999,0,0],"k":1}`,   // overflows float64
		`{`,                             // malformed
		`[]`,                            // wrong shape
	}
	for _, body := range bad {
		if _, err := DecodeKNN([]byte(body), 3); err == nil {
			t.Errorf("DecodeKNN(%q) accepted", body)
		}
	}
}

func TestDecodeApproxKnobs(t *testing.T) {
	// Knobs present and in range decode to set pointers; absent knobs
	// stay nil so the server can distinguish "omitted" (index default)
	// from an explicit zero.
	req, err := DecodeKNN([]byte(`{"query":[0.1,0.2,0.3],"k":5,"epsilon":0.5,"recall_target":0.9}`), 3)
	if err != nil {
		t.Fatal(err)
	}
	if req.Epsilon == nil || *req.Epsilon != 0.5 {
		t.Fatalf("epsilon decoded as %v", req.Epsilon)
	}
	if req.RecallTarget == nil || *req.RecallTarget != 0.9 {
		t.Fatalf("recall_target decoded as %v", req.RecallTarget)
	}
	plain, err := DecodeKNN([]byte(`{"query":[0.1,0.2,0.3],"k":5}`), 3)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Epsilon != nil || plain.RecallTarget != nil {
		t.Fatalf("absent knobs decoded non-nil: %+v", plain)
	}
	// Explicit zeros are valid (exact search) and distinct from nil.
	zero, err := DecodeKNN([]byte(`{"query":[0.1,0.2,0.3],"k":5,"epsilon":0,"recall_target":1}`), 3)
	if err != nil {
		t.Fatal(err)
	}
	if zero.Epsilon == nil || *zero.Epsilon != 0 || zero.RecallTarget == nil || *zero.RecallTarget != 1 {
		t.Fatalf("explicit exact knobs decoded as %+v", zero)
	}

	bad := []string{
		`{"query":[0.1,0.2,0.3],"k":5,"epsilon":-0.1}`,        // negative ε
		`{"query":[0.1,0.2,0.3],"k":5,"epsilon":1e7}`,         // past the 1e6 cap
		`{"query":[0.1,0.2,0.3],"k":5,"epsilon":1e999}`,       // overflows to +Inf
		`{"query":[0.1,0.2,0.3],"k":5,"epsilon":"NaN"}`,       // non-numeric
		`{"query":[0.1,0.2,0.3],"k":5,"recall_target":-0.5}`,  // negative target
		`{"query":[0.1,0.2,0.3],"k":5,"recall_target":1.5}`,   // > 1
		`{"query":[0.1,0.2,0.3],"k":5,"recall_target":1e999}`, // overflow
	}
	for _, body := range bad {
		if _, err := DecodeKNN([]byte(body), 3); err == nil {
			t.Errorf("DecodeKNN(%q) accepted", body)
		}
		batch := strings.Replace(body, `"query":[0.1,0.2,0.3]`, `"queries":[[0.1,0.2,0.3]]`, 1)
		if _, err := DecodeBatch([]byte(batch), 3, 0); err == nil {
			t.Errorf("DecodeBatch(%q) accepted", batch)
		}
	}
}

func TestDecodeClusterFields(t *testing.T) {
	// Coordinator-issued requests carry the cross-network bound and the
	// shard restriction; both decode to set pointers, and absent fields
	// stay nil so a shard daemon can distinguish "plain client" from
	// "coordinator fan-out".
	req, err := DecodeKNN([]byte(`{"query":[0.1,0.2,0.3],"k":5,"bound":1.5,"shard":{"of":3,"groups":[0,2]}}`), 3)
	if err != nil {
		t.Fatal(err)
	}
	if req.Bound == nil || *req.Bound != 1.5 {
		t.Fatalf("bound decoded as %v", req.Bound)
	}
	if req.Shard == nil || req.Shard.Of != 3 || len(req.Shard.Groups) != 2 {
		t.Fatalf("shard decoded as %+v", req.Shard)
	}
	plain, err := DecodeKNN([]byte(`{"query":[0.1,0.2,0.3],"k":5}`), 3)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Bound != nil || plain.Shard != nil {
		t.Fatalf("absent cluster fields decoded non-nil: %+v", plain)
	}
	// A bound of zero is legitimate (k duplicates of the query point
	// already in hand) and distinct from nil.
	zero, err := DecodeKNN([]byte(`{"query":[0.1,0.2,0.3],"k":5,"bound":0}`), 3)
	if err != nil {
		t.Fatal(err)
	}
	if zero.Bound == nil || *zero.Bound != 0 {
		t.Fatalf("explicit zero bound decoded as %v", zero.Bound)
	}

	bad := []string{
		`{"query":[0.1,0.2,0.3],"k":5,"bound":-1}`,                        // negative distance
		`{"query":[0.1,0.2,0.3],"k":5,"bound":1e999}`,                     // overflows to +Inf
		`{"query":[0.1,0.2,0.3],"k":5,"bound":"NaN"}`,                     // non-numeric
		`{"query":[0.1,0.2,0.3],"k":5,"shard":{"of":0,"groups":[0]}}`,     // no groups exist
		`{"query":[0.1,0.2,0.3],"k":5,"shard":{"of":-2,"groups":[0]}}`,    // negative group count
		`{"query":[0.1,0.2,0.3],"k":5,"shard":{"of":5000,"groups":[0]}}`,  // past the of cap
		`{"query":[0.1,0.2,0.3],"k":5,"shard":{"of":3,"groups":[]}}`,      // selects nothing
		`{"query":[0.1,0.2,0.3],"k":5,"shard":{"of":3}}`,                  // groups missing
		`{"query":[0.1,0.2,0.3],"k":5,"shard":{"of":3,"groups":[3]}}`,     // group out of range
		`{"query":[0.1,0.2,0.3],"k":5,"shard":{"of":3,"groups":[-1]}}`,    // negative group
		`{"query":[0.1,0.2,0.3],"k":5,"shard":{"of":3,"groups":[1,1]}}`,   // duplicate group
		`{"query":[0.1,0.2,0.3],"k":5,"shard":{"of":2,"groups":[0,1,0]}}`, // more groups than of
	}
	for _, body := range bad {
		if _, err := DecodeKNN([]byte(body), 3); err == nil {
			t.Errorf("DecodeKNN(%q) accepted", body)
		}
		batch := strings.Replace(body, `"query":[0.1,0.2,0.3]`, `"queries":[[0.1,0.2,0.3]]`, 1)
		if _, err := DecodeBatch([]byte(batch), 3, 0); err == nil {
			t.Errorf("DecodeBatch(%q) accepted", batch)
		}
	}

	// Range and partial-match carry the shard restriction too.
	rr, err := DecodeRange([]byte(`{"min":[0,0,0],"max":[1,1,1],"shard":{"of":2,"groups":[1]}}`), 3)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Shard == nil || rr.Shard.Of != 2 {
		t.Fatalf("range shard decoded as %+v", rr.Shard)
	}
	if _, err := DecodeRange([]byte(`{"min":[0,0,0],"max":[1,1,1],"shard":{"of":2,"groups":[2]}}`), 3); err == nil {
		t.Error("range with out-of-range shard group accepted")
	}
	pm, err := DecodePartialMatch([]byte(`{"spec":[0.5,null,0.25],"eps":0.1,"shard":{"of":4,"groups":[0,3]}}`), 3)
	if err != nil {
		t.Fatal(err)
	}
	if pm.Shard == nil || len(pm.Shard.Groups) != 2 {
		t.Fatalf("partial-match shard decoded as %+v", pm.Shard)
	}
	if _, err := DecodePartialMatch([]byte(`{"spec":[0.5,null,0.25],"eps":0.1,"shard":{"of":4,"groups":[]}}`), 3); err == nil {
		t.Error("partial-match with empty shard groups accepted")
	}
}

func TestDecodeForwardCompat(t *testing.T) {
	// The cluster fields ride on the forward-compatibility contract of
	// the codec: encoding/json discards unknown object keys, so a server
	// predating "bound"/"shard" serves a coordinator-issued request as a
	// plain unrestricted query instead of rejecting it. Simulate that
	// old decoder with a pre-cluster request shape.
	type legacyKNN struct {
		Query []float64 `json:"query"`
		K     int       `json:"k"`
	}
	body := []byte(`{"query":[0.1,0.2,0.3],"k":5,"bound":1.5,"shard":{"of":3,"groups":[0,2]}}`)
	var old legacyKNN
	if err := json.Unmarshal(body, &old); err != nil {
		t.Fatalf("old-shape decode rejected new fields: %v", err)
	}
	if old.K != 5 || len(old.Query) != 3 {
		t.Fatalf("old-shape decode corrupted known fields: %+v", old)
	}

	// And the reverse direction: today's decoder must tolerate keys it
	// has never heard of, so the next protocol extension can ship
	// without a lockstep upgrade.
	future := []byte(`{"query":[0.1,0.2,0.3],"k":5,"future_knob":{"depth":7},"hints":["a","b"]}`)
	req, err := DecodeKNN(future, 3)
	if err != nil {
		t.Fatalf("decoder rejected unknown fields: %v", err)
	}
	if req.K != 5 || req.Bound != nil || req.Shard != nil {
		t.Fatalf("unknown fields bled into request: %+v", req)
	}
	for op, body := range map[string]string{
		OpRange:        `{"min":[0,0,0],"max":[1,1,1],"future_knob":1}`,
		OpPartialMatch: `{"spec":[0.5,null,null],"eps":0.1,"future_knob":1}`,
		OpBatch:        `{"queries":[[0,1,0]],"k":1,"future_knob":1}`,
	} {
		if _, err := DecodeQueryRequest(op, []byte(body), 3); err != nil {
			t.Errorf("%s: decoder rejected unknown field: %v", op, err)
		}
	}
}

func TestDecodeRange(t *testing.T) {
	if _, err := DecodeRange([]byte(`{"min":[0,0],"max":[1,1]}`), 2); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeRange([]byte(`{"min":[1,0],"max":[0,1]}`), 2); err == nil ||
		!strings.Contains(err.Error(), "min > max") {
		t.Errorf("inverted bounds: err = %v", err)
	}
	if _, err := DecodeRange([]byte(`{"min":[0],"max":[1,1]}`), 2); err == nil {
		t.Error("short min accepted")
	}
}

func TestDecodePartialMatch(t *testing.T) {
	req, err := DecodePartialMatch([]byte(`{"spec":[0.5,null,0.25],"eps":0.1}`), 3)
	if err != nil {
		t.Fatal(err)
	}
	if req.Spec[1] != nil || req.Spec[0] == nil || *req.Spec[0] != 0.5 {
		t.Fatalf("decoded spec %v", req.Spec)
	}

	bad := []string{
		`{"spec":[null,null,null],"eps":0.1}`, // no specified dimension
		`{"spec":[0.5,null],"eps":0.1}`,       // wrong dim
		`{"spec":[0.5,null,0.2],"eps":-1}`,    // negative eps
	}
	for _, body := range bad {
		if _, err := DecodePartialMatch([]byte(body), 3); err == nil {
			t.Errorf("DecodePartialMatch(%q) accepted", body)
		}
	}
}

func TestDecodeBatch(t *testing.T) {
	req, err := DecodeBatch([]byte(`{"queries":[[0,1],[1,0]],"k":2}`), 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(req.Queries) != 2 {
		t.Fatalf("decoded %+v", req)
	}
	if _, err := DecodeBatch([]byte(`{"queries":[[0,1],[1,0],[0,0]],"k":2}`), 2, 2); err == nil {
		t.Error("over-limit batch accepted")
	}
	if _, err := DecodeBatch([]byte(`{"queries":[],"k":2}`), 2, 0); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := DecodeBatch([]byte(`{"queries":[[0,1],[1]],"k":2}`), 2, 0); err == nil {
		t.Error("ragged batch accepted")
	}
}

func TestDecodeQueryRequestDispatch(t *testing.T) {
	if _, err := DecodeQueryRequest(OpKNN, []byte(`{"query":[0.1,0.2],"k":1}`), 2); err != nil {
		t.Errorf("knn dispatch: %v", err)
	}
	if _, err := DecodeQueryRequest("nope", []byte(`{}`), 2); err == nil {
		t.Error("unknown op accepted")
	}
}
