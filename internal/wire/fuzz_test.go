package wire

import (
	"math"
	"testing"
)

// FuzzDecodeQueryRequest drives the serving layer's request decoder
// with arbitrary operation names and bodies. The decoder must never
// panic, and every accepted request must satisfy the invariants the
// engine relies on: exact dimensionality, finite components, positive
// k, ordered range bounds, at least one specified partial-match
// dimension. A NaN/Inf smuggled past validation would poison the
// priority queues of the k-NN search; a dimension mismatch would index
// out of bounds.
func FuzzDecodeQueryRequest(f *testing.F) {
	seeds := []struct {
		op   string
		body string
	}{
		{OpKNN, `{"query":[0.1,0.2,0.3],"k":5}`},
		{OpKNN, `{"query":[0.1,0.2],"k":5}`},
		{OpKNN, `{"query":[1e999,0,0],"k":1}`},
		{OpKNN, `{"query":["NaN",0,0],"k":1}`},
		{OpKNN, `{"query":[0.1,0.2,0.3],"k":5,"epsilon":0.5,"recall_target":0.9}`},
		{OpKNN, `{"query":[0.1,0.2,0.3],"k":5,"epsilon":-1}`},
		{OpKNN, `{"query":[0.1,0.2,0.3],"k":5,"epsilon":1e999}`},
		{OpKNN, `{"query":[0.1,0.2,0.3],"k":5,"recall_target":2}`},
		{OpBatch, `{"queries":[[0,1,0]],"k":1,"epsilon":0.1,"recall_target":0.5}`},
		{OpBatch, `{"queries":[[0,1,0]],"k":1,"recall_target":-0.5}`},
		{OpRange, `{"min":[0,0,0],"max":[1,1,1]}`},
		{OpRange, `{"min":[1,0,0],"max":[0,1,1]}`},
		{OpPartialMatch, `{"spec":[0.5,null,0.25],"eps":0.1}`},
		{OpPartialMatch, `{"spec":[null,null,null],"eps":0.1}`},
		{OpBatch, `{"queries":[[0,1,0],[1,0,1]],"k":2}`},
		{OpBatch, `{"queries":[[0,1,0],[1,0]],"k":2}`},
		{OpKNN, `{"query":[0.1,0.2,0.3],"k":5,"bound":1.5,"shard":{"of":3,"groups":[0,2]}}`},
		{OpKNN, `{"query":[0.1,0.2,0.3],"k":5,"bound":-1}`},
		{OpKNN, `{"query":[0.1,0.2,0.3],"k":5,"bound":1e999}`},
		{OpKNN, `{"query":[0.1,0.2,0.3],"k":5,"shard":{"of":0,"groups":[0]}}`},
		{OpKNN, `{"query":[0.1,0.2,0.3],"k":5,"shard":{"of":3,"groups":[]}}`},
		{OpKNN, `{"query":[0.1,0.2,0.3],"k":5,"shard":{"of":3,"groups":[3]}}`},
		{OpKNN, `{"query":[0.1,0.2,0.3],"k":5,"shard":{"of":3,"groups":[1,1]}}`},
		{OpRange, `{"min":[0,0,0],"max":[1,1,1],"shard":{"of":2,"groups":[1]}}`},
		{OpPartialMatch, `{"spec":[0.5,null,0.25],"eps":0.1,"shard":{"of":4,"groups":[0,1,2,3]}}`},
		{OpBatch, `{"queries":[[0,1,0]],"k":1,"bound":0,"shard":{"of":2,"groups":[0]}}`},
		{"nope", `{}`},
		{OpKNN, `{`},
		{OpKNN, `[]`},
		{OpKNN, `null`},
	}
	for _, s := range seeds {
		f.Add(s.op, []byte(s.body))
	}
	const dim = 3
	f.Fuzz(func(t *testing.T, op string, body []byte) {
		v, err := DecodeQueryRequest(op, body, dim)
		if err != nil {
			return
		}
		checkFinite := func(name string, vec []float64) {
			if len(vec) != dim {
				t.Fatalf("%s: accepted dimension %d, want %d (body %q)", name, len(vec), dim, body)
			}
			for _, x := range vec {
				if math.IsNaN(x) || math.IsInf(x, 0) {
					t.Fatalf("%s: accepted non-finite component (body %q)", name, body)
				}
			}
		}
		checkApproxKnobs := func(epsilon, recallTarget *float64) {
			// Accepted knobs must be usable verbatim by the engine: a
			// NaN or out-of-range value smuggled past validation would
			// corrupt the termination shrink factor or the probe cap.
			if epsilon != nil {
				if e := *epsilon; math.IsNaN(e) || e < 0 || e > 1e6 {
					t.Fatalf("accepted epsilon %v (body %q)", e, body)
				}
			}
			if recallTarget != nil {
				if rt := *recallTarget; math.IsNaN(rt) || rt < 0 || rt > 1 {
					t.Fatalf("accepted recall_target %v (body %q)", rt, body)
				}
			}
		}
		checkCluster := func(bound *float64, shard *ShardSpec) {
			// Accepted cluster knobs must satisfy what the engine's
			// ShardSpec.validate and Approx bound check require, so a
			// shard daemon never rejects a request the wire layer let
			// through for structural reasons.
			if bound != nil {
				if b := *bound; math.IsNaN(b) || math.IsInf(b, 0) || b < 0 {
					t.Fatalf("accepted bound %v (body %q)", b, body)
				}
			}
			if shard != nil {
				if shard.Of < 1 || len(shard.Groups) == 0 {
					t.Fatalf("accepted shard spec %+v (body %q)", *shard, body)
				}
				seen := make(map[int]bool)
				for _, g := range shard.Groups {
					if g < 0 || g >= shard.Of || seen[g] {
						t.Fatalf("accepted shard group %d of %+v (body %q)", g, *shard, body)
					}
					seen[g] = true
				}
			}
		}
		switch req := v.(type) {
		case KNNRequest:
			checkFinite("knn query", req.Query)
			if req.K < 1 {
				t.Fatalf("accepted k = %d (body %q)", req.K, body)
			}
			checkApproxKnobs(req.Epsilon, req.RecallTarget)
			checkCluster(req.Bound, req.Shard)
		case RangeRequest:
			checkFinite("range min", req.Min)
			checkFinite("range max", req.Max)
			for i := range req.Min {
				if req.Min[i] > req.Max[i] {
					t.Fatalf("accepted inverted bounds (body %q)", body)
				}
			}
			checkCluster(nil, req.Shard)
		case PartialMatchRequest:
			if len(req.Spec) != dim {
				t.Fatalf("accepted spec dimension %d (body %q)", len(req.Spec), body)
			}
			specified := 0
			for _, p := range req.Spec {
				if p == nil {
					continue
				}
				specified++
				if math.IsNaN(*p) || math.IsInf(*p, 0) {
					t.Fatalf("accepted non-finite spec component (body %q)", body)
				}
			}
			if specified == 0 {
				t.Fatalf("accepted all-wildcard spec (body %q)", body)
			}
			if math.IsNaN(req.Eps) || req.Eps < 0 {
				t.Fatalf("accepted eps %v (body %q)", req.Eps, body)
			}
			checkCluster(nil, req.Shard)
		case BatchRequest:
			if len(req.Queries) == 0 || req.K < 1 {
				t.Fatalf("accepted empty batch or k = %d (body %q)", req.K, body)
			}
			for _, q := range req.Queries {
				checkFinite("batch query", q)
			}
			checkApproxKnobs(req.Epsilon, req.RecallTarget)
			checkCluster(req.Bound, req.Shard)
		default:
			t.Fatalf("decoder returned unknown type %T", v)
		}
	})
}
