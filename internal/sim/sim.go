// Package sim simulates a stream of similarity queries against the
// parallel disk array with queueing: queries arrive as a Poisson
// process, every query puts a service demand on each disk it touches,
// disks serve first-come-first-served, and a query completes when its
// slowest share finishes. The paper's conclusion names declustering for
// *throughput* as future work; this simulator measures exactly that —
// response times and saturation under load, rather than the single-query
// search time of the main experiments.
//
// Because service demands are known up front and disks are FCFS, the
// simulation is a single linear pass: per disk, share i starts at
// max(diskFree, arrival_i).
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Stats summarizes one simulated run.
type Stats struct {
	// Completed is the number of queries processed.
	Completed int
	// MeanResponse, P95Response and MaxResponse are response times in
	// seconds (completion minus arrival).
	MeanResponse, P95Response, MaxResponse float64
	// Throughput is completed queries per second of makespan.
	Throughput float64
	// Utilization is the mean busy fraction over all disks during the
	// makespan.
	Utilization float64
	// Makespan is the time until the last query completed, in seconds.
	Makespan float64
}

// Run simulates the query stream. demands[i][d] is the service time in
// seconds query i requires from disk d (0 = disk not touched); arrival
// times are Poisson with the given rate (queries per second). It panics
// on invalid input (experiment configurations are static).
func Run(demands [][]float64, arrivalRate float64, seed int64) Stats {
	if arrivalRate <= 0 {
		panic(fmt.Sprintf("sim: arrival rate %v", arrivalRate))
	}
	if len(demands) == 0 {
		return Stats{}
	}
	disks := len(demands[0])
	if disks == 0 {
		panic("sim: no disks")
	}
	for i, q := range demands {
		if len(q) != disks {
			panic(fmt.Sprintf("sim: query %d has %d demands, want %d", i, len(q), disks))
		}
	}

	rng := rand.New(rand.NewSource(seed))
	arrival := 0.0
	diskFree := make([]float64, disks)
	busy := make([]float64, disks)
	responses := make([]float64, 0, len(demands))
	makespan := 0.0

	for _, q := range demands {
		arrival += rng.ExpFloat64() / arrivalRate
		completion := arrival
		for d, demand := range q {
			if demand <= 0 {
				continue
			}
			start := math.Max(diskFree[d], arrival)
			diskFree[d] = start + demand
			busy[d] += demand
			if diskFree[d] > completion {
				completion = diskFree[d]
			}
		}
		responses = append(responses, completion-arrival)
		if completion > makespan {
			makespan = completion
		}
	}

	stats := Stats{Completed: len(demands), Makespan: makespan}
	sum := 0.0
	for _, r := range responses {
		sum += r
		if r > stats.MaxResponse {
			stats.MaxResponse = r
		}
	}
	stats.MeanResponse = sum / float64(len(responses))
	sort.Float64s(responses)
	stats.P95Response = responses[(len(responses)*95)/100]
	if stats.P95Response == 0 && len(responses) > 0 {
		stats.P95Response = responses[len(responses)-1]
	}
	if makespan > 0 {
		stats.Throughput = float64(len(demands)) / makespan
		totalBusy := 0.0
		for _, b := range busy {
			totalBusy += b
		}
		stats.Utilization = totalBusy / (makespan * float64(disks))
	}
	return stats
}

// SaturationRate estimates the highest sustainable arrival rate for the
// given per-query demands: the reciprocal of the mean per-disk demand of
// the busiest disk. Beyond this rate the bottleneck disk's queue grows
// without bound.
func SaturationRate(demands [][]float64) float64 {
	if len(demands) == 0 {
		return math.Inf(1)
	}
	disks := len(demands[0])
	perDisk := make([]float64, disks)
	for _, q := range demands {
		for d, v := range q {
			perDisk[d] += v
		}
	}
	worst := 0.0
	for _, v := range perDisk {
		if v > worst {
			worst = v
		}
	}
	if worst == 0 {
		return math.Inf(1)
	}
	return float64(len(demands)) / worst
}
