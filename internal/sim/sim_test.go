package sim

import (
	"math"
	"testing"
)

// One query on one disk: response equals its demand.
func TestSingleQuery(t *testing.T) {
	s := Run([][]float64{{0.25}}, 1, 1)
	if s.Completed != 1 {
		t.Fatalf("Completed = %d", s.Completed)
	}
	if math.Abs(s.MeanResponse-0.25) > 1e-12 || math.Abs(s.MaxResponse-0.25) > 1e-12 {
		t.Errorf("response %v/%v, want 0.25", s.MeanResponse, s.MaxResponse)
	}
}

func TestEmpty(t *testing.T) {
	s := Run(nil, 1, 1)
	if s.Completed != 0 || s.Throughput != 0 {
		t.Errorf("empty run: %+v", s)
	}
}

func TestValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"rate":    func() { Run([][]float64{{1}}, 0, 1) },
		"raggedy": func() { Run([][]float64{{1}, {1, 2}}, 1, 1) },
		"nodisks": func() { Run([][]float64{{}}, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

// At a low arrival rate queries rarely queue: mean response approaches
// the bare demand. At a rate beyond saturation, responses blow up.
func TestQueueingBehaviour(t *testing.T) {
	const queries = 2000
	demands := make([][]float64, queries)
	for i := range demands {
		demands[i] = []float64{0.01, 0.01} // 10 ms on each of 2 disks
	}
	sat := SaturationRate(demands)
	if math.Abs(sat-100) > 1e-9 { // 0.01 s per query per disk -> 100/s
		t.Fatalf("SaturationRate = %v, want 100", sat)
	}

	light := Run(demands, 10, 7) // 10% load
	if light.MeanResponse > 0.02 {
		t.Errorf("light load mean response %v, want near 0.01", light.MeanResponse)
	}
	heavy := Run(demands, 300, 7) // 3x overload
	if heavy.MeanResponse < 10*light.MeanResponse {
		t.Errorf("overload did not blow up responses: %v vs %v",
			heavy.MeanResponse, light.MeanResponse)
	}
	if heavy.Utilization < 0.9 {
		t.Errorf("overloaded system should be nearly fully utilized: %v", heavy.Utilization)
	}
	if light.Utilization > 0.3 {
		t.Errorf("light load utilization %v too high", light.Utilization)
	}
}

// Balanced demands sustain a higher rate than skewed demands of the same
// total work — the declustering story in queueing terms.
func TestBalancedBeatsSkewed(t *testing.T) {
	const queries = 1000
	balanced := make([][]float64, queries)
	skewed := make([][]float64, queries)
	for i := range balanced {
		balanced[i] = []float64{0.005, 0.005, 0.005, 0.005} // 20 ms spread
		skewed[i] = []float64{0.02, 0, 0, 0}                // 20 ms on one disk
	}
	if SaturationRate(balanced) <= SaturationRate(skewed) {
		t.Errorf("balanced saturation %v should exceed skewed %v",
			SaturationRate(balanced), SaturationRate(skewed))
	}
	rate := 60.0
	b := Run(balanced, rate, 3)
	s := Run(skewed, rate, 3)
	if b.MeanResponse >= s.MeanResponse {
		t.Errorf("balanced response %v should beat skewed %v at rate %v",
			b.MeanResponse, s.MeanResponse, rate)
	}
}

func TestPercentilesOrdered(t *testing.T) {
	demands := make([][]float64, 500)
	for i := range demands {
		demands[i] = []float64{0.001 * float64(1+i%7)}
	}
	s := Run(demands, 50, 11)
	if s.MeanResponse > s.P95Response || s.P95Response > s.MaxResponse {
		t.Errorf("percentiles out of order: mean %v p95 %v max %v",
			s.MeanResponse, s.P95Response, s.MaxResponse)
	}
}

func TestSaturationRateEdgeCases(t *testing.T) {
	if !math.IsInf(SaturationRate(nil), 1) {
		t.Error("no queries should saturate at +inf")
	}
	if !math.IsInf(SaturationRate([][]float64{{0, 0}}), 1) {
		t.Error("zero demands should saturate at +inf")
	}
}

func TestDeterministicForSeed(t *testing.T) {
	demands := make([][]float64, 300)
	for i := range demands {
		demands[i] = []float64{0.002, 0.001}
	}
	a := Run(demands, 100, 42)
	b := Run(demands, 100, 42)
	if a != b {
		t.Errorf("same seed, different stats: %+v vs %+v", a, b)
	}
	c := Run(demands, 100, 43)
	if a == c {
		t.Error("different seeds produced identical arrival processes")
	}
}
