// Package slab implements the packed storage layout of the engine: one
// contiguous float32 slab per X-tree page, laid out dimension-major, with
// batched distance kernels that compute all distances of a page in one
// tight loop, plus an optional 8-bit scalar quantization (SQ8) side table
// whose per-point lower bounds let k-NN skip exact distance computations.
//
// Exactness contract: packed mode rounds every coordinate to float32 at
// ingest, so the float64 value stored in the tree is float32-representable
// and the slab's float32 copy is lossless. The batched kernels widen each
// float32 back to float64 and accumulate per point in ascending dimension
// order — the same floating-point operation sequence as the scalar
// vec.Metric.RankDist — so batched and scalar distances are bitwise
// identical, and the packed engine returns byte-identical results to the
// float64 reference path.
package slab

import (
	"math"

	"parsearch/internal/vec"
)

// lbShave is the relative safety margin applied to SQ8 lower bounds.
// The per-dimension reconstruction error is measured exactly at encode
// time (errMax), but the query-time bound arithmetic itself rounds; the
// accumulated relative error over <= MaxDim dimensions is O(d*eps) ~
// 1e-14, so shaving 1e-9 keeps the computed bound strictly below the
// computed exact distance whenever the true bound is below the true
// distance. See DESIGN.md "Packed storage" for the proof sketch.
const lbShave = 1e-9

// Slab is the packed payload of one leaf page: n points of dimension dim
// stored dimension-major (coordinate j of point i at data[j*n+i]), so
// the batched kernels stream each dimension's column contiguously. When
// built with quantization it additionally carries SQ8 codes (same
// layout) with per-dimension affine decode parameters and the measured
// maximum reconstruction error. A Slab is immutable after Build; leaf
// mutations rebuild the slab.
type Slab struct {
	dim, n int
	data   []float32

	// SQ8 side table (nil codes when not quantized). A coordinate v in
	// dimension j decodes as off[j] + float64(code)*scale[j]; the true
	// value differs from the decoded one by at most errMax[j] (measured,
	// not estimated, during encode).
	codes  []uint8
	off    []float64
	scale  []float64
	errMax []float64
}

// Build packs the given points (all of dimension dim, coordinates
// float32-representable) into a slab. With quantize it also encodes the
// SQ8 side table. Build(_, nil/empty, _) returns nil.
func Build(dim int, pts []vec.Point, quantize bool) *Slab {
	n := len(pts)
	if n == 0 {
		return nil
	}
	s := &Slab{dim: dim, n: n, data: make([]float32, dim*n)}
	for j := 0; j < dim; j++ {
		col := s.data[j*n : (j+1)*n]
		for i, p := range pts {
			col[i] = float32(p[j])
		}
	}
	if quantize {
		s.encodeSQ8(pts)
	}
	return s
}

// encodeSQ8 fills the slab's quantization side table from the source
// points. Codes map [min, max] of each dimension affinely onto 0..255;
// constant dimensions get scale 0 and decode exactly.
func (s *Slab) encodeSQ8(pts []vec.Point) {
	dim, n := s.dim, s.n
	s.codes = make([]uint8, dim*n)
	s.off = make([]float64, dim)
	s.scale = make([]float64, dim)
	s.errMax = make([]float64, dim)
	for j := 0; j < dim; j++ {
		lo, hi := pts[0][j], pts[0][j]
		for _, p := range pts[1:] {
			if p[j] < lo {
				lo = p[j]
			}
			if p[j] > hi {
				hi = p[j]
			}
		}
		s.off[j] = lo
		s.scale[j] = (hi - lo) / 255
		col := s.codes[j*n : (j+1)*n]
		for i, p := range pts {
			var code float64
			if s.scale[j] > 0 {
				code = math.Round((p[j] - lo) / s.scale[j])
				if code < 0 {
					code = 0
				} else if code > 255 {
					code = 255
				}
			}
			col[i] = uint8(code)
			// Measure the actual reconstruction error with the exact
			// decode formula the query path uses, so errMax is a true
			// bound by construction rather than an estimate.
			dec := s.off[j] + code*s.scale[j]
			if e := math.Abs(p[j] - dec); e > s.errMax[j] {
				s.errMax[j] = e
			}
		}
	}
}

// Len returns the number of points in the slab.
func (s *Slab) Len() int { return s.n }

// Dim returns the dimensionality of the slab's points.
func (s *Slab) Dim() int { return s.dim }

// Quantized reports whether the slab carries an SQ8 side table.
func (s *Slab) Quantized() bool { return s.codes != nil }

// DistsToPage computes the rank distance (vec.Metric.RankDist) from q to
// every point of the page into out[:s.Len()], one dimension-major pass
// per dimension. The per-point accumulation order is ascending dimension
// order, matching the scalar kernels bit for bit.
func (s *Slab) DistsToPage(q vec.Point, m vec.Metric, out []float64) {
	n := s.n
	out = out[:n]
	for i := range out {
		out[i] = 0
	}
	switch m {
	case vec.L2:
		for j := 0; j < s.dim; j++ {
			qj := q[j]
			col := s.data[j*n : (j+1)*n]
			for i, v := range col {
				d := qj - float64(v)
				out[i] += d * d
			}
		}
	case vec.L1:
		for j := 0; j < s.dim; j++ {
			qj := q[j]
			col := s.data[j*n : (j+1)*n]
			for i, v := range col {
				out[i] += math.Abs(qj - float64(v))
			}
		}
	case vec.LInf:
		for j := 0; j < s.dim; j++ {
			qj := q[j]
			col := s.data[j*n : (j+1)*n]
			for i, v := range col {
				if d := math.Abs(qj - float64(v)); d > out[i] {
					out[i] = d
				}
			}
		}
	default:
		panic("slab: unknown metric")
	}
}

// DistTo computes the rank distance from q to point i alone (strided
// column access), bitwise identical to the batched kernel's out[i]. The
// SQ8 path uses it to re-rank exactly the points its pre-filter kept.
func (s *Slab) DistTo(i int, q vec.Point, m vec.Metric) float64 {
	n := s.n
	switch m {
	case vec.L2:
		var sum float64
		for j := 0; j < s.dim; j++ {
			d := q[j] - float64(s.data[j*n+i])
			sum += d * d
		}
		return sum
	case vec.L1:
		var sum float64
		for j := 0; j < s.dim; j++ {
			sum += math.Abs(q[j] - float64(s.data[j*n+i]))
		}
		return sum
	case vec.LInf:
		var sum float64
		for j := 0; j < s.dim; j++ {
			if d := math.Abs(q[j] - float64(s.data[j*n+i])); d > sum {
				sum = d
			}
		}
		return sum
	default:
		panic("slab: unknown metric")
	}
}

// LowerBounds computes, from the SQ8 codes alone, a lower bound on the
// rank distance from q to every point into out[:s.Len()]. The bound is
// sound: out[i] <= DistTo(i, q, m) always holds (see lbShave), so a
// point whose bound exceeds the current kth-best distance can be skipped
// without computing its exact distance. Panics when the slab is not
// quantized.
func (s *Slab) LowerBounds(q vec.Point, m vec.Metric, out []float64) {
	if s.codes == nil {
		panic("slab: LowerBounds on unquantized slab")
	}
	n := s.n
	out = out[:n]
	for i := range out {
		out[i] = 0
	}
	switch m {
	case vec.L2:
		for j := 0; j < s.dim; j++ {
			qj, off, sc, em := q[j], s.off[j], s.scale[j], s.errMax[j]
			col := s.codes[j*n : (j+1)*n]
			for i, c := range col {
				if d := math.Abs(qj-(off+float64(c)*sc)) - em; d > 0 {
					out[i] += d * d
				}
			}
		}
	case vec.L1:
		for j := 0; j < s.dim; j++ {
			qj, off, sc, em := q[j], s.off[j], s.scale[j], s.errMax[j]
			col := s.codes[j*n : (j+1)*n]
			for i, c := range col {
				if d := math.Abs(qj-(off+float64(c)*sc)) - em; d > 0 {
					out[i] += d
				}
			}
		}
	case vec.LInf:
		for j := 0; j < s.dim; j++ {
			qj, off, sc, em := q[j], s.off[j], s.scale[j], s.errMax[j]
			col := s.codes[j*n : (j+1)*n]
			for i, c := range col {
				if d := math.Abs(qj-(off+float64(c)*sc)) - em; d > out[i] {
					out[i] = d
				}
			}
		}
	default:
		panic("slab: unknown metric")
	}
	for i := range out {
		out[i] -= out[i] * lbShave
	}
}

// InRect reports, for every point of the page, whether it lies inside
// [min, max] (boundary inclusive, like vec.Rect.Contains) into
// out[:s.Len()].
func (s *Slab) InRect(min, max vec.Point, out []bool) {
	n := s.n
	out = out[:n]
	for i := range out {
		out[i] = true
	}
	for j := 0; j < s.dim; j++ {
		lo, hi := min[j], max[j]
		col := s.data[j*n : (j+1)*n]
		for i, v := range col {
			f := float64(v)
			if f < lo || f > hi {
				out[i] = false
			}
		}
	}
}
