package slab

import (
	"math"

	"parsearch/internal/vec"
)

// RectSlab is the packed form of a directory page: the n child MBRs
// stored as dimension-major float32 min/max columns, so the batched
// MINDIST kernel streams two contiguous columns per dimension. MBR
// coordinates are coordinates of stored points, which packed mode rounds
// to float32 at ingest, so the float32 copy is lossless and the batched
// MINDIST matches vec.Metric.RankMinDist bit for bit.
type RectSlab struct {
	dim, n   int
	min, max []float32
}

// BuildRects packs the given rectangles (all of dimension dim). Returns
// nil for an empty input.
func BuildRects(dim int, rects []vec.Rect) *RectSlab {
	n := len(rects)
	if n == 0 {
		return nil
	}
	rs := &RectSlab{dim: dim, n: n,
		min: make([]float32, dim*n), max: make([]float32, dim*n)}
	for j := 0; j < dim; j++ {
		minCol := rs.min[j*n : (j+1)*n]
		maxCol := rs.max[j*n : (j+1)*n]
		for i := range rects {
			minCol[i] = float32(rects[i].Min[j])
			maxCol[i] = float32(rects[i].Max[j])
		}
	}
	return rs
}

// Len returns the number of rectangles in the slab.
func (rs *RectSlab) Len() int { return rs.n }

// RectAt writes rectangle i's bounds (widened to float64) into min and
// max, which must have length Dim. Used by invariant checks to compare
// the packed copy against the source rectangles.
func (rs *RectSlab) RectAt(i int, min, max []float64) {
	for j := 0; j < rs.dim; j++ {
		min[j] = float64(rs.min[j*rs.n+i])
		max[j] = float64(rs.max[j*rs.n+i])
	}
}

// MinDistsToPage computes the rank MINDIST (vec.Metric.RankMinDist) from
// q to every rectangle of the page into out[:rs.Len()], accumulating per
// rectangle in ascending dimension order exactly like the scalar kernel.
func (rs *RectSlab) MinDistsToPage(q vec.Point, m vec.Metric, out []float64) {
	n := rs.n
	out = out[:n]
	for i := range out {
		out[i] = 0
	}
	switch m {
	case vec.L2:
		for j := 0; j < rs.dim; j++ {
			qj := q[j]
			minCol := rs.min[j*n : (j+1)*n]
			maxCol := rs.max[j*n : (j+1)*n]
			for i := range minCol {
				switch lo, hi := float64(minCol[i]), float64(maxCol[i]); {
				case qj < lo:
					d := lo - qj
					out[i] += d * d
				case qj > hi:
					d := qj - hi
					out[i] += d * d
				}
			}
		}
	case vec.L1:
		for j := 0; j < rs.dim; j++ {
			qj := q[j]
			minCol := rs.min[j*n : (j+1)*n]
			maxCol := rs.max[j*n : (j+1)*n]
			for i := range minCol {
				switch lo, hi := float64(minCol[i]), float64(maxCol[i]); {
				case qj < lo:
					out[i] += lo - qj
				case qj > hi:
					out[i] += qj - hi
				}
			}
		}
	case vec.LInf:
		for j := 0; j < rs.dim; j++ {
			qj := q[j]
			minCol := rs.min[j*n : (j+1)*n]
			maxCol := rs.max[j*n : (j+1)*n]
			for i := range minCol {
				var d float64
				switch lo, hi := float64(minCol[i]), float64(maxCol[i]); {
				case qj < lo:
					d = lo - qj
				case qj > hi:
					d = qj - hi
				}
				if d > out[i] {
					out[i] = d
				}
			}
		}
	default:
		panic("slab: unknown metric")
	}
}

// Representable reports whether every coordinate of p survives a
// float64→float32→float64 round trip, i.e. satisfies packed mode's
// rounding-at-ingest contract. NaN coordinates are representable (NaN
// round-trips to NaN).
func Representable(p vec.Point) bool {
	for _, x := range p {
		if float64(float32(x)) != x && !math.IsNaN(x) {
			return false
		}
	}
	return true
}
