package slab

import (
	"math"
	"math/rand"
	"testing"

	"parsearch/internal/vec"
)

var metrics = []vec.Metric{vec.L2, vec.L1, vec.LInf}

// r32 rounds a point to float32-representable coordinates — the packed
// ingest contract every slab input satisfies.
func r32(p vec.Point) vec.Point {
	out := make(vec.Point, len(p))
	for j, x := range p {
		out[j] = float64(float32(x))
	}
	return out
}

// adversarialPoints builds point sets designed to expose any divergence
// between the batched kernels and the scalar reference: denormals,
// extreme magnitudes, exact ties, negative zero, and plain random data.
// All coordinates are float32-representable by construction.
func adversarialPoints(dim int) [][]vec.Point {
	rng := rand.New(rand.NewSource(7))
	randset := func(n int, scale float64) []vec.Point {
		pts := make([]vec.Point, n)
		for i := range pts {
			p := make(vec.Point, dim)
			for j := range p {
				p[j] = (rng.Float64() - 0.5) * scale
			}
			pts[i] = r32(p)
		}
		return pts
	}
	constant := func(n int, v float64) []vec.Point {
		pts := make([]vec.Point, n)
		for i := range pts {
			p := make(vec.Point, dim)
			for j := range p {
				p[j] = v
			}
			pts[i] = r32(p)
		}
		return pts
	}
	sets := [][]vec.Point{
		randset(33, 1),
		randset(7, 1e30),  // extreme magnitudes: d*d overflows to +Inf
		randset(7, 1e-40), // float32 denormals
		constant(9, 0.25), // exact ties across all points
		constant(3, math.Copysign(0, -1)), // negative zero
		{r32(vec.Point{math.MaxFloat32, -math.MaxFloat32, 1, 0, 0, 0, 0, 0}[:dim])},
	}
	// One mixed set: denormal, huge, tied, and random points together.
	mixed := append(append(randset(5, 1), randset(2, 1e-40)...), constant(2, 0.25)...)
	return append(sets, mixed)
}

func queriesFor(dim int) []vec.Point {
	rng := rand.New(rand.NewSource(8))
	qs := make([]vec.Point, 6)
	for i := range qs {
		q := make(vec.Point, dim)
		for j := range q {
			q[j] = (rng.Float64() - 0.5) * 2
		}
		qs[i] = r32(q)
	}
	// Queries that hit the adversarial regimes directly.
	qs = append(qs,
		r32(vec.Point{1e30, -1e30, 1e-40, 0, 0.25, -0.25, 1, -1}[:dim]),
		make(vec.Point, dim), // origin
	)
	return qs
}

// TestDistsToPageMatchesScalar checks the batched distance kernel is
// bitwise identical to the scalar vec.Metric.RankDist on every
// adversarial input, and that DistTo agrees with the batched value.
func TestDistsToPageMatchesScalar(t *testing.T) {
	const dim = 8
	for si, pts := range adversarialPoints(dim) {
		s := Build(dim, pts, false)
		out := make([]float64, s.Len())
		for _, m := range metrics {
			for qi, q := range queriesFor(dim) {
				s.DistsToPage(q, m, out)
				for i, p := range pts {
					want := m.RankDist(q, p)
					if got := out[i]; got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
						t.Fatalf("set %d metric %v query %d point %d: batched %v, scalar %v",
							si, m, qi, i, got, want)
					}
					if got := s.DistTo(i, q, m); got != out[i] && !(math.IsNaN(got) && math.IsNaN(out[i])) {
						t.Fatalf("set %d metric %v query %d point %d: DistTo %v, batched %v",
							si, m, qi, i, got, out[i])
					}
				}
			}
		}
	}
}

// TestMinDistsToPageMatchesScalar checks the batched MINDIST kernel
// against vec.Metric.RankMinDist on rectangles drawn from the
// adversarial point sets (MBRs of point pairs, plus degenerate
// point-rects).
func TestMinDistsToPageMatchesScalar(t *testing.T) {
	const dim = 8
	for si, pts := range adversarialPoints(dim) {
		var rects []vec.Rect
		for i := 0; i+1 < len(pts); i += 2 {
			rects = append(rects, vec.MBR([]vec.Point{pts[i], pts[i+1]}))
		}
		rects = append(rects, vec.PointRect(pts[0]))
		rs := BuildRects(dim, rects)
		out := make([]float64, rs.Len())
		for _, m := range metrics {
			for qi, q := range queriesFor(dim) {
				rs.MinDistsToPage(q, m, out)
				for i, r := range rects {
					want := m.RankMinDist(r, q)
					if got := out[i]; got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
						t.Fatalf("set %d metric %v query %d rect %d: batched %v, scalar %v",
							si, m, qi, i, got, want)
					}
				}
			}
		}
	}
}

// TestRectSlabRoundTrip checks RectAt restores the built rectangles
// exactly (float32 widening is lossless on pre-rounded coordinates).
func TestRectSlabRoundTrip(t *testing.T) {
	const dim = 4
	pts := adversarialPoints(dim)[0]
	rects := []vec.Rect{vec.MBR(pts), vec.PointRect(pts[3])}
	rs := BuildRects(dim, rects)
	min, max := make([]float64, dim), make([]float64, dim)
	for i, r := range rects {
		rs.RectAt(i, min, max)
		for j := 0; j < dim; j++ {
			if min[j] != r.Min[j] || max[j] != r.Max[j] {
				t.Fatalf("rect %d dim %d: got [%v,%v], want [%v,%v]",
					i, j, min[j], max[j], r.Min[j], r.Max[j])
			}
		}
	}
}

// TestInRectMatchesContains checks the batched containment kernel
// against vec.Rect.Contains, including exact-boundary points.
func TestInRectMatchesContains(t *testing.T) {
	const dim = 5
	for si, pts := range adversarialPoints(dim) {
		s := Build(dim, pts, false)
		out := make([]bool, s.Len())
		// Boxes: the full MBR (everything inside, boundaries exercised),
		// a sub-box, and a disjoint box.
		mbr := vec.MBR(pts)
		boxes := []vec.Rect{mbr, vec.PointRect(pts[0])}
		sub := mbr.Clone()
		for j := range sub.Max {
			sub.Max[j] = (sub.Min[j] + sub.Max[j]) / 2
		}
		boxes = append(boxes, sub)
		for bi, box := range boxes {
			s.InRect(box.Min, box.Max, out)
			for i, p := range pts {
				if out[i] != box.Contains(p) {
					t.Fatalf("set %d box %d point %d: batched %v, Contains %v",
						si, bi, i, out[i], box.Contains(p))
				}
			}
		}
	}
}

// TestLowerBoundsSound checks the SQ8 lower bound never exceeds the
// exact distance, for every metric, on adversarial inputs — the
// soundness property the skip rule of the k-NN pre-filter rests on.
func TestLowerBoundsSound(t *testing.T) {
	const dim = 8
	for si, pts := range adversarialPoints(dim) {
		s := Build(dim, pts, true)
		if !s.Quantized() {
			t.Fatal("Build(quantize) returned unquantized slab")
		}
		lb := make([]float64, s.Len())
		exact := make([]float64, s.Len())
		for _, m := range metrics {
			for qi, q := range queriesFor(dim) {
				s.LowerBounds(q, m, lb)
				s.DistsToPage(q, m, exact)
				for i := range lb {
					if math.IsNaN(exact[i]) {
						continue
					}
					if lb[i] > exact[i] {
						t.Fatalf("set %d metric %v query %d point %d: lower bound %v > exact %v",
							si, m, qi, i, lb[i], exact[i])
					}
					if lb[i] < 0 {
						t.Fatalf("set %d metric %v query %d point %d: negative lower bound %v",
							si, m, qi, i, lb[i])
					}
				}
			}
		}
	}
}

// TestBuildEmpty checks the nil-slab contract for empty pages.
func TestBuildEmpty(t *testing.T) {
	if s := Build(4, nil, false); s != nil {
		t.Fatalf("Build of empty page = %+v, want nil", s)
	}
	if rs := BuildRects(4, nil); rs != nil {
		t.Fatalf("BuildRects of empty page = %+v, want nil", rs)
	}
}
