package xtree

import (
	"fmt"

	"parsearch/internal/vec"
)

// RangeSearch returns all entries whose points lie inside r (boundary
// inclusive). The second result is the number of nodes visited, the page
// access count of the query.
func (t *Tree) RangeSearch(r vec.Rect) ([]Entry, int) {
	if t.root == nil {
		return nil, 0
	}
	var out []Entry
	accesses := 0
	var hits []bool // packed-mode scratch, grown to the largest leaf
	var walk func(n *Node)
	walk = func(n *Node) {
		accesses++
		if n.leaf {
			if s := n.slab; s != nil {
				// Packed leaf: one batched containment pass over the
				// slab columns instead of per-entry Contains calls.
				// Identical semantics (boundary inclusive, float32
				// values are the stored float64 values exactly).
				if cap(hits) < s.Len() {
					hits = make([]bool, s.Len())
				}
				hits = hits[:s.Len()]
				s.InRect(r.Min, r.Max, hits)
				for i, in := range hits {
					if in {
						out = append(out, n.entries[i])
					}
				}
				return
			}
			for _, e := range n.entries {
				if r.Contains(e.Point) {
					out = append(out, e)
				}
			}
			return
		}
		for _, c := range n.children {
			if c.rect.Intersects(r) {
				walk(c)
			}
		}
	}
	if t.root.rect.Intersects(r) {
		walk(t.root)
	}
	return out, accesses
}

// PointSearch returns the entries stored exactly at p.
func (t *Tree) PointSearch(p vec.Point) []Entry {
	out, _ := t.RangeSearch(vec.PointRect(p))
	return out
}

// Leaves returns all leaf nodes in depth-first order. The parallel engine
// uses this to enumerate the data pages of a disk.
func (t *Tree) Leaves() []*Node {
	var out []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.leaf {
			out = append(out, n)
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	if t.root != nil {
		walk(t.root)
	}
	return out
}

// NodeCount returns the number of directory nodes and leaf nodes.
func (t *Tree) NodeCount() (dirs, leaves int) {
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.leaf {
			leaves++
			return
		}
		dirs++
		for _, c := range n.children {
			walk(c)
		}
	}
	if t.root != nil {
		walk(t.root)
	}
	return dirs, leaves
}

// CheckInvariants verifies the structural invariants of the tree and
// returns the first violation found, or nil. It is used by the tests
// after randomized workloads:
//
//   - every child MBR is contained in its parent's MBR,
//   - every node's MBR is the exact MBR of its payload,
//   - every leaf entry lies inside its leaf's MBR,
//   - node payloads respect the (supernode-adjusted) capacity,
//   - all leaves are at the same depth,
//   - the entry count matches Len().
func (t *Tree) CheckInvariants() error {
	if t.root == nil {
		if t.size != 0 {
			return fmt.Errorf("xtree: empty tree with size %d", t.size)
		}
		return nil
	}
	leafDepth := -1
	count := 0
	var walk func(n *Node, depth int) error
	walk = func(n *Node, depth int) error {
		if n.super < 1 {
			return fmt.Errorf("xtree: node with super %d", n.super)
		}
		if n.leaf {
			if len(n.entries) == 0 {
				return fmt.Errorf("xtree: empty leaf")
			}
			if len(n.entries) > t.leafCap(n) {
				return fmt.Errorf("xtree: leaf with %d entries exceeds capacity %d", len(n.entries), t.leafCap(n))
			}
			if leafDepth == -1 {
				leafDepth = depth
			} else if depth != leafDepth {
				return fmt.Errorf("xtree: leaf at depth %d, expected %d", depth, leafDepth)
			}
			exact := mbrOfEntries(n.entries)
			if !rectsEqual(exact, n.rect) {
				return fmt.Errorf("xtree: leaf MBR %v is not tight (exact %v)", n.rect, exact)
			}
			count += len(n.entries)
			return nil
		}
		if len(n.children) == 0 {
			return fmt.Errorf("xtree: empty directory node")
		}
		if len(n.children) > t.dirCap(n) {
			return fmt.Errorf("xtree: directory with %d children exceeds capacity %d", len(n.children), t.dirCap(n))
		}
		exact := mbrOfNodes(n.children)
		if !rectsEqual(exact, n.rect) {
			return fmt.Errorf("xtree: directory MBR %v is not tight (exact %v)", n.rect, exact)
		}
		for _, c := range n.children {
			if !n.rect.ContainsRect(c.rect) {
				return fmt.Errorf("xtree: child MBR %v escapes parent %v", c.rect, n.rect)
			}
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 0); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("xtree: %d entries found, size says %d", count, t.size)
	}
	if t.cfg.Packed {
		return t.checkPacked(t.root)
	}
	return nil
}

// rectsEqual compares rectangles exactly; MBRs are computed from the same
// float values, so no tolerance is needed.
func rectsEqual(a, b vec.Rect) bool {
	return vec.Equal(a.Min, b.Min) && vec.Equal(a.Max, b.Max)
}
