package xtree

import (
	"fmt"

	"parsearch/internal/vec"
)

// Delete removes one entry with the given point and id. It returns false
// when no such entry exists. Underfull nodes along the path are dissolved
// and their content reinserted (the classic R-tree condense step), so the
// tree stays balanced.
func (t *Tree) Delete(p vec.Point, id int) bool {
	if t.root == nil {
		return false
	}
	if len(p) != t.cfg.Dim {
		panic(fmt.Sprintf("xtree: deleting %d-dimensional point from %d-dimensional tree", len(p), t.cfg.Dim))
	}

	var orphans []Entry
	removed := t.remove(t.root, p, id, &orphans)
	if !removed {
		return false
	}
	t.size--

	// Shrink the root: an empty root leaf disappears; a directory root
	// with a single child is replaced by that child.
	if t.root.leaf {
		if len(t.root.entries) == 0 {
			t.root = nil
		}
	} else if len(t.root.children) == 0 {
		t.root = nil
	} else {
		for !t.root.leaf && len(t.root.children) == 1 {
			t.root = t.root.children[0]
		}
	}
	if t.cfg.Packed && t.root != nil {
		t.refreshPacked(t.root)
	}

	// Reinsert entries orphaned by dissolved nodes.
	for _, e := range orphans {
		t.size--
		t.Insert(e.Point, e.ID)
	}
	return true
}

// remove deletes the entry from the subtree under n. Nodes that underflow
// are emptied into orphans and removed from their parent by the caller.
func (t *Tree) remove(n *Node, p vec.Point, id int, orphans *[]Entry) bool {
	if n.leaf {
		for i, e := range n.entries {
			if e.ID == id && vec.Equal(e.Point, p) {
				n.packDirty = true
				n.entries = append(n.entries[:i], n.entries[i+1:]...)
				if len(n.entries) > 0 {
					n.recomputeRect()
				}
				return true
			}
		}
		return false
	}
	for i, c := range n.children {
		if !c.rect.Contains(p) {
			continue
		}
		if !t.remove(c, p, id, orphans) {
			continue
		}
		n.packDirty = true
		if t.underfull(c) {
			// Dissolve the child: collect its entries for
			// reinsertion and drop it.
			collectEntries(c, orphans)
			n.children = append(n.children[:i], n.children[i+1:]...)
		}
		if len(n.children) > 0 {
			n.recomputeRect()
		}
		return true
	}
	return false
}

// underfull reports whether a node has fallen below the minimum fill and
// should be dissolved. Leaves below half the R* minimum and directory
// nodes with fewer than two children qualify.
func (t *Tree) underfull(n *Node) bool {
	if n.leaf {
		return len(n.entries) < t.minFillOf(t.cfg.LeafCapacity)/2+1
	}
	return len(n.children) < 2
}

// collectEntries gathers every entry in the subtree under n.
func collectEntries(n *Node, out *[]Entry) {
	if n.leaf {
		*out = append(*out, n.entries...)
		return
	}
	for _, c := range n.children {
		collectEntries(c, out)
	}
}
