package xtree

import (
	"math"
	"sort"

	"parsearch/internal/vec"
)

// splitLeaf splits an overfull leaf with the R*-tree topological split and
// returns the new sibling. Point data always admits a balanced split, so
// leaves never become supernodes.
func (t *Tree) splitLeaf(n *Node) *Node {
	t.stats.Splits++
	axis, k := t.chooseLeafSplit(n.entries)
	sortEntriesByAxis(n.entries, axis)

	right := make([]Entry, len(n.entries)-k)
	copy(right, n.entries[k:])
	n.entries = n.entries[:k]

	sibling := &Node{leaf: true, entries: right, super: 1, packDirty: true}
	n.history |= 1 << uint(axis)
	sibling.history = n.history
	n.recomputeRect()
	sibling.recomputeRect()
	return sibling
}

// chooseLeafSplit implements the R* split for point entries: the split
// axis minimizes the total margin over all distributions; the split index
// minimizes overlap (ties: total area).
func (t *Tree) chooseLeafSplit(entries []Entry) (axis, k int) {
	n := len(entries)
	m := t.minFillOf(n)

	bestAxis, bestMargin := 0, math.Inf(1)
	for a := 0; a < t.cfg.Dim; a++ {
		sortEntriesByAxis(entries, a)
		margin := 0.0
		for s := m; s <= n-m; s++ {
			margin += mbrOfEntries(entries[:s]).Margin() + mbrOfEntries(entries[s:]).Margin()
		}
		if margin < bestMargin {
			bestAxis, bestMargin = a, margin
		}
	}

	sortEntriesByAxis(entries, bestAxis)
	bestK, bestOverlap, bestArea := m, math.Inf(1), math.Inf(1)
	for s := m; s <= n-m; s++ {
		r1 := mbrOfEntries(entries[:s])
		r2 := mbrOfEntries(entries[s:])
		ov := r1.OverlapArea(r2)
		area := r1.Area() + r2.Area()
		if ov < bestOverlap || (ov == bestOverlap && area < bestArea) {
			bestK, bestOverlap, bestArea = s, ov, area
		}
	}
	return bestAxis, bestK
}

// splitDir splits an overfull directory node. It first tries the R*
// topological split; if the resulting MBRs overlap more than the X-tree
// threshold, it tries the overlap-minimal split based on the children's
// split history; if that split would be unbalanced, the node becomes a
// supernode instead and no split happens (nil is returned).
func (t *Tree) splitDir(n *Node) *Node {
	children := n.children

	// 1. Topological (R*) split.
	axis, k := t.chooseDirSplit(children)
	sortNodesByAxis(children, axis)
	r1 := mbrOfNodes(children[:k])
	r2 := mbrOfNodes(children[k:])

	if overlapRatio(r1, r2) <= t.cfg.MaxOverlap {
		t.stats.Splits++
		return t.finishDirSplit(n, k, axis)
	}

	// 2. Overlap-minimal split: a dimension along which every child's
	// region has been split admits a cut position where no child MBR
	// straddles the cut, i.e. an overlap-free split. The original
	// algorithm replays the split history tree; equivalently, we scan
	// the dimensions in the intersection of the children's history
	// bitmasks for the overlap-free cut closest to the middle. If the
	// best such cut is unbalanced (one side below MinFanout), the
	// X-tree refuses to split and extends the node into a supernode.
	common := ^uint64(0)
	for _, c := range children {
		common &= c.history
	}
	if dim, cut, ok := bestOverlapFreeCut(children, common, t.cfg.Dim); ok {
		minSide := int(math.Ceil(t.cfg.MinFanout * float64(len(children))))
		if cut >= minSide && len(children)-cut >= minSide {
			t.stats.Splits++
			t.stats.OverlapMinimalSplits++
			return t.finishDirSplit(n, cut, dim)
		}
	}

	// 3. No good split: extend the node into a (larger) supernode.
	t.stats.Supernodes++
	n.super++
	return nil
}

// bestOverlapFreeCut searches the dimensions set in the history mask for
// the overlap-free cut closest to the middle of the children list. A cut
// at index k along dim is overlap-free when every child MBR lies entirely
// on one side: max over children[:k] of Max[dim] <= min over children[k:]
// of Min[dim] after sorting along dim.
// On success the children are left sorted along the returned dimension,
// so the caller can cut the slice directly.
func bestOverlapFreeCut(children []*Node, history uint64, d int) (dim, cut int, ok bool) {
	n := len(children)
	bestDist := n + 1
	for a := 0; a < d; a++ {
		if history&(1<<uint(a)) == 0 {
			continue
		}
		sortNodesByAxis(children, a)
		prefixMax := children[0].rect.Max[a]
		for k := 1; k < n; k++ {
			if prefixMax <= children[k].rect.Min[a] {
				dist := k - n/2
				if dist < 0 {
					dist = -dist
				}
				if dist < bestDist {
					dim, cut, ok, bestDist = a, k, true, dist
				}
			}
			if children[k].rect.Max[a] > prefixMax {
				prefixMax = children[k].rect.Max[a]
			}
		}
	}
	if !ok {
		return 0, 0, false
	}
	// Restore the sort order of the winning dimension (the loop may have
	// finished on another one) and re-verify the cut: sort.Slice is not
	// stable, so tied keys could reorder; reject the cut in that case
	// rather than produce an overlapping "overlap-free" split.
	sortNodesByAxis(children, dim)
	prefixMax := children[0].rect.Max[dim]
	for k := 1; k <= cut; k++ {
		if k == cut {
			if prefixMax > children[k].rect.Min[dim] {
				return 0, 0, false
			}
			break
		}
		if children[k].rect.Max[dim] > prefixMax {
			prefixMax = children[k].rect.Max[dim]
		}
	}
	return dim, cut, true
}

// finishDirSplit moves children[k:] into a new sibling and records the
// split dimension in both histories. Splitting a supernode can leave
// either side larger than one block, so each side's supernode multiplier
// is recomputed from its actual size (supernodes shrink back to normal
// nodes when a split makes that possible).
func (t *Tree) finishDirSplit(n *Node, k, axis int) *Node {
	right := make([]*Node, len(n.children)-k)
	copy(right, n.children[k:])
	n.children = n.children[:k]

	sibling := &Node{leaf: false, children: right, super: superFor(len(right), t.cfg.DirCapacity), packDirty: true}
	n.super = superFor(len(n.children), t.cfg.DirCapacity)
	n.history |= 1 << uint(axis)
	sibling.history = n.history
	n.recomputeRect()
	sibling.recomputeRect()
	return sibling
}

// superFor returns the smallest supernode multiplier that fits count
// children with the given base capacity, at least 1.
func superFor(count, capacity int) int {
	s := (count + capacity - 1) / capacity
	if s < 1 {
		s = 1
	}
	return s
}

// chooseDirSplit is the R* topological split for directory children.
func (t *Tree) chooseDirSplit(children []*Node) (axis, k int) {
	n := len(children)
	m := t.minFillOf(n)

	bestAxis, bestMargin := 0, math.Inf(1)
	for a := 0; a < t.cfg.Dim; a++ {
		sortNodesByAxis(children, a)
		margin := 0.0
		for s := m; s <= n-m; s++ {
			margin += mbrOfNodes(children[:s]).Margin() + mbrOfNodes(children[s:]).Margin()
		}
		if margin < bestMargin {
			bestAxis, bestMargin = a, margin
		}
	}

	sortNodesByAxis(children, bestAxis)
	bestK, bestOverlap, bestArea := m, math.Inf(1), math.Inf(1)
	for s := m; s <= n-m; s++ {
		r1 := mbrOfNodes(children[:s])
		r2 := mbrOfNodes(children[s:])
		ov := r1.OverlapArea(r2)
		area := r1.Area() + r2.Area()
		if ov < bestOverlap || (ov == bestOverlap && area < bestArea) {
			bestK, bestOverlap, bestArea = s, ov, area
		}
	}
	return bestAxis, bestK
}

// minFillOf returns the minimum number of items per side when splitting a
// node that currently holds count items. Deriving it from the actual count
// rather than the base capacity keeps supernode splits balanced too.
func (t *Tree) minFillOf(count int) int {
	m := int(t.cfg.MinFill * float64(count))
	if m < 1 {
		m = 1
	}
	return m
}

// overlapRatio is the X-tree split quality measure: the volume of the
// intersection relative to the volume of the union of the two MBRs, in
// [0, 1]. Zero-volume unions (possible with point-degenerate MBRs in some
// dimensions) count as fully overlapping when the intersection is
// non-empty in every dimension.
func overlapRatio(a, b vec.Rect) float64 {
	union := a.Union(b).Area()
	if union == 0 {
		if a.Intersects(b) {
			return 1
		}
		return 0
	}
	return a.OverlapArea(b) / union
}

// recomputeRect rebuilds the node's MBR from its payload.
func (n *Node) recomputeRect() {
	if n.leaf {
		n.rect = mbrOfEntries(n.entries)
		return
	}
	n.rect = mbrOfNodes(n.children)
}

// mbrOfEntries returns the MBR of the given entries. It panics on an
// empty slice (empty nodes are removed, never kept).
func mbrOfEntries(entries []Entry) vec.Rect {
	r := vec.PointRect(entries[0].Point)
	for _, e := range entries[1:] {
		r.Extend(e.Point)
	}
	return r
}

// mbrOfNodes returns the MBR of the given nodes' rectangles.
func mbrOfNodes(nodes []*Node) vec.Rect {
	r := nodes[0].rect.Clone()
	for _, n := range nodes[1:] {
		r.ExtendRect(n.rect)
	}
	return r
}

// sortEntriesByAxis sorts entries by their coordinate along the axis.
func sortEntriesByAxis(entries []Entry, axis int) {
	sort.Slice(entries, func(i, j int) bool {
		return entries[i].Point[axis] < entries[j].Point[axis]
	})
}

// sortNodesByAxis sorts nodes by rectangle center along the axis (R* sorts
// by lower then upper boundary; for the splits here the center is an
// equivalent single key).
func sortNodesByAxis(nodes []*Node, axis int) {
	sort.Slice(nodes, func(i, j int) bool {
		ci := nodes[i].rect.Min[axis] + nodes[i].rect.Max[axis]
		cj := nodes[j].rect.Min[axis] + nodes[j].rect.Max[axis]
		return ci < cj
	})
}
