package xtree

import (
	"math/rand"
	"strings"
	"testing"
)

func TestAnalyzeEmptyTree(t *testing.T) {
	a := New(smallConfig(2)).Analyze()
	if a.Height != 0 || a.LeafNodes != 0 || a.DirNodes != 0 {
		t.Errorf("empty analysis: %+v", a)
	}
}

func TestAnalyzeSingleLeaf(t *testing.T) {
	tr := New(smallConfig(2))
	tr.Insert([]float64{0.5, 0.5}, 0)
	tr.Insert([]float64{0.6, 0.6}, 1)
	a := tr.Analyze()
	if a.Height != 1 || a.LeafNodes != 1 || a.DirNodes != 0 {
		t.Errorf("analysis: %+v", a)
	}
	if a.LeafFill != 2.0/8 {
		t.Errorf("LeafFill = %v, want 0.25", a.LeafFill)
	}
}

func TestAnalyzeConsistentWithCounts(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	tr := New(smallConfig(3))
	for i, p := range uniformPoints(r, 3000, 3) {
		tr.Insert(p, i)
	}
	a := tr.Analyze()
	dirs, leaves := tr.NodeCount()
	if a.DirNodes != dirs || a.LeafNodes != leaves {
		t.Errorf("Analyze counts %d/%d, NodeCount %d/%d", a.DirNodes, a.LeafNodes, dirs, leaves)
	}
	if a.Height != tr.Height() {
		t.Errorf("Height %d vs %d", a.Height, tr.Height())
	}
	if a.LeafFill <= 0.2 || a.LeafFill > 1.01 {
		t.Errorf("implausible leaf fill %v", a.LeafFill)
	}
	if a.DirFill <= 0.2 || a.DirFill > 1.01 {
		t.Errorf("implausible dir fill %v", a.DirFill)
	}
	if a.MeanDirOverlap < 0 || a.MeanDirOverlap > 1 {
		t.Errorf("overlap ratio %v outside [0,1]", a.MeanDirOverlap)
	}
	if !strings.Contains(a.String(), "height") {
		t.Errorf("String() unhelpful: %q", a.String())
	}
}

// Supernode accounting: analysis of a 16-dimensional insert-built tree
// must agree with the tree's stats counters.
func TestAnalyzeSupernodes(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	tr := New(DefaultConfig(16))
	for i, p := range uniformPoints(r, 6000, 16) {
		tr.Insert(p, i)
	}
	a := tr.Analyze()
	if a.SuperBlocks != tr.Stats().Supernodes {
		t.Errorf("SuperBlocks %d != cumulative supernode extensions %d",
			a.SuperBlocks, tr.Stats().Supernodes)
	}
	if a.Supernodes == 0 && a.SuperBlocks > 0 {
		t.Error("blocks without supernodes")
	}
}

// Bulk-loaded trees over uniform points should have near-zero directory
// overlap (the volume-minimal partition) and decent fill.
func TestAnalyzeBulkLoadQuality(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	pts := uniformPoints(r, 5000, 4)
	entries := make([]Entry, len(pts))
	for i, p := range pts {
		entries[i] = Entry{Point: p, ID: i}
	}
	tr := New(smallConfig(4))
	tr.BulkLoad(entries)
	a := tr.Analyze()
	if a.MeanDirOverlap > 0.05 {
		t.Errorf("bulk-loaded overlap %v too high", a.MeanDirOverlap)
	}
	if a.LeafFill < 0.4 {
		t.Errorf("bulk-loaded leaf fill %v too low", a.LeafFill)
	}
}
