// Package xtree implements the X-tree of Berchtold, Keim and Kriegel
// (VLDB 1996), the high-dimensional index structure the paper's parallel
// nearest-neighbor engine is built on.
//
// The X-tree is an R*-tree variant that avoids the directory degeneration
// of high-dimensional R-trees with two mechanisms: an overlap-minimal
// split that uses the split history of a node's children to find a
// dimension along which the children can be separated without overlap, and
// supernodes — directory nodes enlarged to a multiple of the block size —
// created whenever no good (balanced, low-overlap) split exists.
//
// The implementation stores d-dimensional points (the feature vectors of
// the paper), supports insertion, deletion, bulk loading, range and point
// queries, and exposes its nodes read-only so the knn package can run the
// HS and RKV nearest-neighbor algorithms over it while counting page
// accesses.
package xtree

import (
	"fmt"

	"parsearch/internal/slab"
	"parsearch/internal/vec"
)

// Entry is a data object stored in the tree: a feature vector and the
// caller's identifier.
type Entry struct {
	Point vec.Point
	ID    int
}

// Config controls the shape of the tree. The zero value is not valid; use
// DefaultConfig or fill every field.
type Config struct {
	// Dim is the dimensionality of the indexed points.
	Dim int
	// LeafCapacity is the maximum number of entries per (non-super)
	// leaf node.
	LeafCapacity int
	// DirCapacity is the maximum number of children per (non-super)
	// directory node.
	DirCapacity int
	// MinFill is the minimum fill grade of a node after a split, as a
	// fraction of capacity (R*-tree uses 0.4).
	MinFill float64
	// MaxOverlap is the X-tree threshold: if a topological split of a
	// directory node produces more than this overlap ratio, the
	// overlap-minimal split is tried and, failing that, a supernode is
	// created. The X-tree paper derives 0.2 as a good value.
	MaxOverlap float64
	// MinFanout is the minimum fraction of children on each side of an
	// overlap-minimal split for the split to count as balanced
	// (X-tree paper: 0.35).
	MinFanout float64
	// Packed maintains a contiguous float32 slab cache per node (see
	// pack.go and the slab package) for batched distance kernels.
	// Callers must only insert float32-representable coordinates.
	Packed bool
	// Quantize additionally builds the SQ8 side table of every leaf
	// slab. Only meaningful with Packed.
	Quantize bool
}

// PageSize is the block size used by the paper's experiments (4 KBytes).
const PageSize = 4096

// bytesPerCoord is the storage cost of one float64 coordinate.
const bytesPerCoord = 8

// LeafCapacityForPage returns how many d-dimensional entries fit in a page
// of the given size (one point plus a 4-byte id each), at least 2.
func LeafCapacityForPage(d, pageBytes int) int {
	c := pageBytes / (d*bytesPerCoord + 4)
	if c < 2 {
		c = 2
	}
	return c
}

// DirCapacityForPage returns how many directory entries (an MBR — two
// points — plus an 8-byte child pointer) fit in a page, at least 2.
func DirCapacityForPage(d, pageBytes int) int {
	c := pageBytes / (2*d*bytesPerCoord + 8)
	if c < 2 {
		c = 2
	}
	return c
}

// DefaultConfig returns the configuration the experiments use: 4-KByte
// pages, R* minimum fill 0.4, X-tree overlap threshold 0.2 and minimum
// fanout 0.35.
func DefaultConfig(dim int) Config {
	return Config{
		Dim:          dim,
		LeafCapacity: LeafCapacityForPage(dim, PageSize),
		DirCapacity:  DirCapacityForPage(dim, PageSize),
		MinFill:      0.4,
		MaxOverlap:   0.2,
		MinFanout:    0.35,
	}
}

// validate panics on an unusable configuration.
func (c Config) validate() {
	switch {
	case c.Dim < 1:
		panic(fmt.Sprintf("xtree: dimension %d < 1", c.Dim))
	case c.LeafCapacity < 2:
		panic(fmt.Sprintf("xtree: leaf capacity %d < 2", c.LeafCapacity))
	case c.DirCapacity < 2:
		panic(fmt.Sprintf("xtree: directory capacity %d < 2", c.DirCapacity))
	case c.MinFill <= 0 || c.MinFill > 0.5:
		panic(fmt.Sprintf("xtree: min fill %v outside (0, 0.5]", c.MinFill))
	case c.MaxOverlap < 0 || c.MaxOverlap > 1:
		panic(fmt.Sprintf("xtree: max overlap %v outside [0, 1]", c.MaxOverlap))
	case c.MinFanout <= 0 || c.MinFanout > 0.5:
		panic(fmt.Sprintf("xtree: min fanout %v outside (0, 0.5]", c.MinFanout))
	}
}

// Tree is an X-tree over d-dimensional points.
type Tree struct {
	cfg   Config
	root  *Node
	size  int
	stats Stats
}

// Stats counts structural events since the tree was created.
type Stats struct {
	// Splits counts all node splits (topological or overlap-minimal).
	Splits int
	// OverlapMinimalSplits counts directory splits that fell back to
	// the split-history-based algorithm.
	OverlapMinimalSplits int
	// Supernodes counts supernode extensions (each extension grows one
	// node by one block).
	Supernodes int
}

// Node is a tree node. Fields are unexported; read-only accessors expose
// the structure to search algorithms.
type Node struct {
	leaf     bool
	rect     vec.Rect
	entries  []Entry // leaf payload
	children []*Node // directory payload
	history  uint64  // bitmask of dimensions this node's region was split along
	super    int     // capacity multiplier; 1 = normal node

	// Packed-mode caches (see pack.go): the leaf payload / child MBRs
	// in the slab layout, and the flag the mutation paths set so the
	// refresh walk re-packs exactly the touched spine.
	slab      *slab.Slab
	crects    *slab.RectSlab
	packDirty bool
}

// IsLeaf reports whether the node stores data entries.
func (n *Node) IsLeaf() bool { return n.leaf }

// Rect returns the node's minimum bounding rectangle. Callers must not
// modify it.
func (n *Node) Rect() vec.Rect { return n.rect }

// Entries returns the data entries of a leaf (nil for directory nodes).
// Callers must not modify the slice.
func (n *Node) Entries() []Entry { return n.entries }

// Children returns the children of a directory node (nil for leaves).
// Callers must not modify the slice.
func (n *Node) Children() []*Node { return n.children }

// Super returns the node's supernode multiplier (1 for a normal node; a
// supernode of multiplier s occupies s disk blocks).
func (n *Node) Super() int { return n.super }

// New returns an empty X-tree with the given configuration.
func New(cfg Config) *Tree {
	cfg.validate()
	return &Tree{cfg: cfg}
}

// Config returns the tree's configuration.
func (t *Tree) Config() Config { return t.cfg }

// Len returns the number of stored entries.
func (t *Tree) Len() int { return t.size }

// Root returns the root node, or nil for an empty tree.
func (t *Tree) Root() *Node { return t.root }

// Stats returns the structural event counters.
func (t *Tree) Stats() Stats { return t.stats }

// Height returns the number of levels (0 for an empty tree, 1 for a
// root-only leaf).
func (t *Tree) Height() int {
	h := 0
	for n := t.root; n != nil; {
		h++
		if n.leaf {
			break
		}
		n = n.children[0]
	}
	return h
}

// Insert adds an entry to the tree.
func (t *Tree) Insert(p vec.Point, id int) {
	if len(p) != t.cfg.Dim {
		panic(fmt.Sprintf("xtree: inserting %d-dimensional point into %d-dimensional tree", len(p), t.cfg.Dim))
	}
	e := Entry{Point: vec.Clone(p), ID: id}
	if t.root == nil {
		t.root = &Node{leaf: true, rect: vec.PointRect(e.Point), entries: []Entry{e}, super: 1, packDirty: true}
		t.size = 1
		if t.cfg.Packed {
			t.refreshPacked(t.root)
		}
		return
	}
	if sibling := t.insert(t.root, e); sibling != nil {
		// Root split: grow the tree by one level.
		old := t.root
		t.root = &Node{
			leaf:      false,
			rect:      old.rect.Union(sibling.rect),
			children:  []*Node{old, sibling},
			super:     1,
			packDirty: true,
		}
	}
	t.size++
	if t.cfg.Packed {
		t.refreshPacked(t.root)
	}
}

// insert descends to a leaf, adds the entry, and propagates splits upward.
// It returns the new sibling if n was split.
func (t *Tree) insert(n *Node, e Entry) *Node {
	n.packDirty = true
	n.rect.Extend(e.Point)
	if n.leaf {
		n.entries = append(n.entries, e)
		if len(n.entries) > t.leafCap(n) {
			return t.splitLeaf(n)
		}
		return nil
	}
	child := t.chooseSubtree(n, e.Point)
	if s := t.insert(child, e); s != nil {
		n.children = append(n.children, s)
		if len(n.children) > t.dirCap(n) {
			return t.splitDir(n)
		}
	}
	return nil
}

// leafCap returns the effective capacity of a leaf node including its
// supernode multiplier.
func (t *Tree) leafCap(n *Node) int { return t.cfg.LeafCapacity * n.super }

// dirCap returns the effective capacity of a directory node including its
// supernode multiplier.
func (t *Tree) dirCap(n *Node) int { return t.cfg.DirCapacity * n.super }

// chooseSubtree implements the R*-tree descent criterion: among the
// children of n, pick the one whose MBR needs the least overlap
// enlargement when the child level is a leaf level, and the least area
// enlargement otherwise (ties: smaller area).
func (t *Tree) chooseSubtree(n *Node, p vec.Point) *Node {
	pr := vec.PointRect(p)
	childrenAreLeaves := n.children[0].leaf

	best := n.children[0]
	if childrenAreLeaves {
		bestOverlapInc := overlapEnlargement(n.children, 0, pr)
		bestAreaInc := best.rect.Enlargement(pr)
		for i, c := range n.children[1:] {
			oi := overlapEnlargement(n.children, i+1, pr)
			ai := c.rect.Enlargement(pr)
			if oi < bestOverlapInc ||
				(oi == bestOverlapInc && ai < bestAreaInc) ||
				(oi == bestOverlapInc && ai == bestAreaInc && c.rect.Area() < best.rect.Area()) {
				best, bestOverlapInc, bestAreaInc = c, oi, ai
			}
		}
		return best
	}
	bestAreaInc := best.rect.Enlargement(pr)
	for _, c := range n.children[1:] {
		ai := c.rect.Enlargement(pr)
		if ai < bestAreaInc || (ai == bestAreaInc && c.rect.Area() < best.rect.Area()) {
			best, bestAreaInc = c, ai
		}
	}
	return best
}

// overlapEnlargement computes how much the overlap of children[i] with its
// siblings grows when children[i] is extended to cover r.
func overlapEnlargement(children []*Node, i int, r vec.Rect) float64 {
	enlarged := children[i].rect.Union(r)
	var before, after float64
	for j, c := range children {
		if j == i {
			continue
		}
		before += children[i].rect.OverlapArea(c.rect)
		after += enlarged.OverlapArea(c.rect)
	}
	return after - before
}
