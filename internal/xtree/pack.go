package xtree

import (
	"fmt"

	"parsearch/internal/slab"
	"parsearch/internal/vec"
)

// Packed storage: with Config.Packed every node carries a cache of its
// payload in the slab package's contiguous float32 layout — a point slab
// per leaf, a rectangle slab of the child MBRs per directory node — so
// the search algorithms can use the batched distance kernels instead of
// walking []Entry / []*Node. The caches are maintained eagerly by the
// mutating operations: every node a mutation touches is flagged dirty,
// and the public entry points (Insert, Delete, the bulk loaders) finish
// by re-packing exactly the dirty spine before returning. Readers
// therefore only ever observe complete caches; no lazy rebuild happens
// under a read lock.
//
// Correctness relies on one structural fact: mutations proceed along
// root-to-leaf paths, so every ancestor of a dirty node is itself dirty
// and the refresh walk can prune clean subtrees without missing anything
// (split siblings and new roots are flagged explicitly where they are
// created).

// PageSlab returns the packed payload cache of a leaf (nil for
// directory nodes or unpacked trees).
func (n *Node) PageSlab() *slab.Slab { return n.slab }

// ChildRects returns the packed child-MBR cache of a directory node
// (nil for leaves or unpacked trees).
func (n *Node) ChildRects() *slab.RectSlab { return n.crects }

// packNode rebuilds one node's packed cache from its payload.
func (t *Tree) packNode(n *Node) {
	if n.leaf {
		points := make([]vec.Point, len(n.entries))
		for i := range n.entries {
			points[i] = n.entries[i].Point
		}
		n.slab = slab.Build(t.cfg.Dim, points, t.cfg.Quantize)
		return
	}
	crs := make([]vec.Rect, len(n.children))
	for i, c := range n.children {
		crs[i] = c.rect
	}
	n.crects = slab.BuildRects(t.cfg.Dim, crs)
}

// refreshPacked re-packs the dirty spine under n: it recurses into dirty
// children first, then rebuilds n's own cache and clears the flag. Clean
// subtrees are skipped entirely.
func (t *Tree) refreshPacked(n *Node) {
	if n == nil || !n.packDirty {
		return
	}
	if !n.leaf {
		for _, c := range n.children {
			t.refreshPacked(c)
		}
	}
	t.packNode(n)
	n.packDirty = false
}

// packSubtree rebuilds the packed caches of every node under n,
// ignoring dirty flags (bulk loading builds whole levels at once).
func (t *Tree) packSubtree(n *Node) {
	if n == nil {
		return
	}
	if !n.leaf {
		for _, c := range n.children {
			t.packSubtree(c)
		}
	}
	t.packNode(n)
	n.packDirty = false
}

// checkPacked verifies that every node's packed cache is present, clean,
// and consistent with its payload; CheckInvariants calls it on packed
// trees after randomized workloads.
func (t *Tree) checkPacked(n *Node) error {
	if n.packDirty {
		return fmt.Errorf("xtree: packed node left dirty")
	}
	if n.leaf {
		s := n.slab
		if s == nil || s.Len() != len(n.entries) {
			return fmt.Errorf("xtree: leaf slab out of sync (%d entries)", len(n.entries))
		}
		for i, e := range n.entries {
			if d := s.DistTo(i, e.Point, vec.L2); d != 0 {
				return fmt.Errorf("xtree: leaf slab entry %d differs from payload (sq dist %g)", i, d)
			}
		}
		return nil
	}
	if n.crects == nil || n.crects.Len() != len(n.children) {
		return fmt.Errorf("xtree: directory rect slab out of sync (%d children)", len(n.children))
	}
	min := make([]float64, t.cfg.Dim)
	max := make([]float64, t.cfg.Dim)
	for i, c := range n.children {
		n.crects.RectAt(i, min, max)
		for j := 0; j < t.cfg.Dim; j++ {
			if min[j] != c.rect.Min[j] || max[j] != c.rect.Max[j] {
				return fmt.Errorf("xtree: directory rect slab child %d differs from payload in dimension %d", i, j)
			}
		}
	}
	for _, c := range n.children {
		if err := t.checkPacked(c); err != nil {
			return err
		}
	}
	return nil
}
