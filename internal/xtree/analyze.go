package xtree

import "fmt"

// Analysis summarizes the structural quality of a tree — the criteria
// the X-tree paper evaluates its splits by: storage utilization, directory
// overlap, and the extent of supernodes.
type Analysis struct {
	// Height is the number of levels.
	Height int
	// DirNodes and LeafNodes count the nodes of each kind.
	DirNodes, LeafNodes int
	// Supernodes counts nodes with a multiplier above 1; SuperBlocks is
	// the total number of extra blocks they occupy.
	Supernodes, SuperBlocks int
	// LeafFill is the average leaf fill grade relative to the base leaf
	// capacity (can exceed 1 for supernode leaves).
	LeafFill float64
	// DirFill is the average directory fill grade relative to the base
	// directory capacity.
	DirFill float64
	// MeanDirOverlap is the mean pairwise overlap ratio
	// (intersection/union volume) between sibling directory children,
	// averaged over directory nodes with at least two children.
	MeanDirOverlap float64
}

// String renders the analysis on one line for reports.
func (a Analysis) String() string {
	return fmt.Sprintf(
		"height %d, %d dirs (fill %.2f, overlap %.3f), %d leaves (fill %.2f), %d supernodes (+%d blocks)",
		a.Height, a.DirNodes, a.DirFill, a.MeanDirOverlap,
		a.LeafNodes, a.LeafFill, a.Supernodes, a.SuperBlocks)
}

// Analyze computes the structural quality metrics of the tree.
func (t *Tree) Analyze() Analysis {
	a := Analysis{Height: t.Height()}
	if t.root == nil {
		return a
	}
	var leafFillSum, dirFillSum, overlapSum float64
	overlapNodes := 0

	var walk func(n *Node)
	walk = func(n *Node) {
		if n.super > 1 {
			a.Supernodes++
			a.SuperBlocks += n.super - 1
		}
		if n.leaf {
			a.LeafNodes++
			leafFillSum += float64(len(n.entries)) / float64(t.cfg.LeafCapacity)
			return
		}
		a.DirNodes++
		dirFillSum += float64(len(n.children)) / float64(t.cfg.DirCapacity)
		if len(n.children) >= 2 {
			pairSum, pairs := 0.0, 0
			for i := 0; i < len(n.children); i++ {
				for j := i + 1; j < len(n.children); j++ {
					pairSum += overlapRatio(n.children[i].rect, n.children[j].rect)
					pairs++
				}
			}
			overlapSum += pairSum / float64(pairs)
			overlapNodes++
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)

	if a.LeafNodes > 0 {
		a.LeafFill = leafFillSum / float64(a.LeafNodes)
	}
	if a.DirNodes > 0 {
		a.DirFill = dirFillSum / float64(a.DirNodes)
	}
	if overlapNodes > 0 {
		a.MeanDirOverlap = overlapSum / float64(overlapNodes)
	}
	return a
}
