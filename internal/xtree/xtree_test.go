package xtree

import (
	"math/rand"
	"sort"
	"testing"

	"parsearch/internal/vec"
)

func uniformPoints(r *rand.Rand, n, d int) []vec.Point {
	pts := make([]vec.Point, n)
	for i := range pts {
		p := make(vec.Point, d)
		for j := range p {
			p[j] = r.Float64()
		}
		pts[i] = p
	}
	return pts
}

func buildTree(t *testing.T, pts []vec.Point, cfg Config) *Tree {
	t.Helper()
	tr := New(cfg)
	for i, p := range pts {
		tr.Insert(p, i)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants after build: %v", err)
	}
	return tr
}

func smallConfig(d int) Config {
	return Config{
		Dim: d, LeafCapacity: 8, DirCapacity: 6,
		MinFill: 0.4, MaxOverlap: 0.2, MinFanout: 0.35,
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Dim: 0, LeafCapacity: 8, DirCapacity: 6, MinFill: 0.4, MaxOverlap: 0.2, MinFanout: 0.35},
		{Dim: 2, LeafCapacity: 1, DirCapacity: 6, MinFill: 0.4, MaxOverlap: 0.2, MinFanout: 0.35},
		{Dim: 2, LeafCapacity: 8, DirCapacity: 1, MinFill: 0.4, MaxOverlap: 0.2, MinFanout: 0.35},
		{Dim: 2, LeafCapacity: 8, DirCapacity: 6, MinFill: 0, MaxOverlap: 0.2, MinFanout: 0.35},
		{Dim: 2, LeafCapacity: 8, DirCapacity: 6, MinFill: 0.6, MaxOverlap: 0.2, MinFanout: 0.35},
		{Dim: 2, LeafCapacity: 8, DirCapacity: 6, MinFill: 0.4, MaxOverlap: 1.2, MinFanout: 0.35},
		{Dim: 2, LeafCapacity: 8, DirCapacity: 6, MinFill: 0.4, MaxOverlap: 0.2, MinFanout: 0},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d: expected panic", i)
				}
			}()
			New(cfg)
		}()
	}
}

func TestDefaultConfigCapacities(t *testing.T) {
	cfg := DefaultConfig(16)
	// 4096 / (16*8+4) = 31 entries, 4096 / (16*16+8) = 15 children.
	if cfg.LeafCapacity != 31 {
		t.Errorf("leaf capacity %d, want 31", cfg.LeafCapacity)
	}
	if cfg.DirCapacity != 15 {
		t.Errorf("dir capacity %d, want 15", cfg.DirCapacity)
	}
	New(cfg) // must validate
	if LeafCapacityForPage(1000, 64) != 2 || DirCapacityForPage(1000, 64) != 2 {
		t.Error("tiny pages must clamp capacities to 2")
	}
}

func TestEmptyTree(t *testing.T) {
	tr := New(smallConfig(3))
	if tr.Len() != 0 || tr.Root() != nil || tr.Height() != 0 {
		t.Error("empty tree not empty")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Errorf("empty tree invariants: %v", err)
	}
	if got, acc := tr.RangeSearch(vec.UnitCube(3)); got != nil || acc != 0 {
		t.Error("range search on empty tree should return nothing")
	}
	if tr.Leaves() != nil {
		t.Error("leaves of empty tree")
	}
	if tr.Delete(vec.Point{0, 0, 0}, 1) {
		t.Error("delete from empty tree succeeded")
	}
}

func TestInsertDimensionMismatchPanics(t *testing.T) {
	tr := New(smallConfig(3))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.Insert(vec.Point{0.5}, 1)
}

func TestInsertAndExactSearch(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	pts := uniformPoints(r, 500, 4)
	tr := buildTree(t, pts, smallConfig(4))
	if tr.Len() != 500 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i, p := range pts {
		found := tr.PointSearch(p)
		ok := false
		for _, e := range found {
			if e.ID == i {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("point %d not found by exact search", i)
		}
	}
}

func TestInsertClonesPoint(t *testing.T) {
	tr := New(smallConfig(2))
	p := vec.Point{0.5, 0.5}
	tr.Insert(p, 0)
	p[0] = 0.9 // mutate the caller's slice
	if got := tr.PointSearch(vec.Point{0.5, 0.5}); len(got) != 1 {
		t.Error("tree shares memory with caller's point")
	}
}

func TestRangeSearchMatchesLinearScan(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	const d = 3
	pts := uniformPoints(r, 1000, d)
	tr := buildTree(t, pts, smallConfig(d))
	for trial := 0; trial < 50; trial++ {
		lo := make(vec.Point, d)
		hi := make(vec.Point, d)
		for j := 0; j < d; j++ {
			a, b := r.Float64(), r.Float64()
			if a > b {
				a, b = b, a
			}
			lo[j], hi[j] = a, b
		}
		q := vec.NewRect(lo, hi)
		got, _ := tr.RangeSearch(q)
		var want []int
		for i, p := range pts {
			if q.Contains(p) {
				want = append(want, i)
			}
		}
		gotIDs := make([]int, len(got))
		for i, e := range got {
			gotIDs[i] = e.ID
		}
		sort.Ints(gotIDs)
		if len(gotIDs) != len(want) {
			t.Fatalf("trial %d: got %d entries, want %d", trial, len(gotIDs), len(want))
		}
		for i := range want {
			if gotIDs[i] != want[i] {
				t.Fatalf("trial %d: id mismatch", trial)
			}
		}
	}
}

func TestRangeSearchCountsAccesses(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pts := uniformPoints(r, 2000, 2)
	tr := buildTree(t, pts, smallConfig(2))
	_, accAll := tr.RangeSearch(vec.UnitCube(2))
	dirs, leaves := tr.NodeCount()
	if accAll != dirs+leaves {
		t.Errorf("full-space query accessed %d nodes, tree has %d", accAll, dirs+leaves)
	}
	// A tiny query must access far fewer nodes.
	_, accTiny := tr.RangeSearch(vec.NewRect(vec.Point{0.5, 0.5}, vec.Point{0.501, 0.501}))
	if accTiny >= accAll/4 {
		t.Errorf("tiny query accessed %d of %d nodes", accTiny, accAll)
	}
}

func TestTreeGrowsInHeight(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	tr := New(smallConfig(2))
	heights := map[int]bool{}
	for i, p := range uniformPoints(r, 3000, 2) {
		tr.Insert(p, i)
		heights[tr.Height()] = true
	}
	if tr.Height() < 3 {
		t.Errorf("height %d after 3000 inserts with capacity 8", tr.Height())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if !heights[1] || !heights[2] {
		t.Error("tree should have passed through heights 1 and 2")
	}
}

func TestDuplicatePoints(t *testing.T) {
	tr := New(smallConfig(2))
	p := vec.Point{0.5, 0.5}
	for i := 0; i < 100; i++ {
		tr.Insert(p, i)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants with duplicates: %v", err)
	}
	if got := tr.PointSearch(p); len(got) != 100 {
		t.Errorf("found %d duplicates, want 100", len(got))
	}
}

func TestDelete(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	const d = 3
	pts := uniformPoints(r, 800, d)
	tr := buildTree(t, pts, smallConfig(d))

	// Delete with wrong id fails; right id succeeds exactly once.
	if tr.Delete(pts[0], 999999) {
		t.Error("delete with wrong id succeeded")
	}
	if !tr.Delete(pts[0], 0) {
		t.Error("delete failed")
	}
	if tr.Delete(pts[0], 0) {
		t.Error("double delete succeeded")
	}
	if tr.Len() != 799 {
		t.Errorf("Len = %d after delete", tr.Len())
	}
	if len(tr.PointSearch(pts[0])) != 0 {
		t.Error("deleted point still found")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteAll(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	const d = 2
	pts := uniformPoints(r, 500, d)
	tr := buildTree(t, pts, smallConfig(d))
	perm := r.Perm(len(pts))
	for k, i := range perm {
		if !tr.Delete(pts[i], i) {
			t.Fatalf("delete %d failed", i)
		}
		if k%50 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("invariants after %d deletes: %v", k+1, err)
			}
		}
	}
	if tr.Len() != 0 || tr.Root() != nil {
		t.Errorf("tree not empty after deleting everything: len=%d", tr.Len())
	}
}

func TestMixedWorkloadInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const d = 4
	tr := New(smallConfig(d))
	live := map[int]vec.Point{}
	nextID := 0
	for round := 0; round < 3000; round++ {
		if len(live) == 0 || r.Float64() < 0.6 {
			p := uniformPoints(r, 1, d)[0]
			tr.Insert(p, nextID)
			live[nextID] = p
			nextID++
		} else {
			// Delete a random live entry.
			var id int
			for id = range live {
				break
			}
			if !tr.Delete(live[id], id) {
				t.Fatalf("delete of live entry %d failed", id)
			}
			delete(live, id)
		}
	}
	if tr.Len() != len(live) {
		t.Fatalf("Len = %d, live = %d", tr.Len(), len(live))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for id, p := range live {
		found := false
		for _, e := range tr.PointSearch(p) {
			if e.ID == id {
				found = true
			}
		}
		if !found {
			t.Fatalf("live entry %d lost", id)
		}
	}
}

func TestDeleteDimensionMismatchPanics(t *testing.T) {
	tr := New(smallConfig(2))
	tr.Insert(vec.Point{0.1, 0.1}, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.Delete(vec.Point{0.1}, 0)
}

// High-dimensional data must create supernodes instead of degenerate
// overlapping directory splits — the defining X-tree behaviour.
func TestSupernodesAppearInHighDimensions(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	const d = 16
	cfg := DefaultConfig(d)
	tr := New(cfg)
	for i, p := range uniformPoints(r, 6000, d) {
		tr.Insert(p, i)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := tr.Stats()
	if st.Supernodes == 0 {
		t.Error("no supernodes created on 16-dimensional uniform data")
	}
	t.Logf("d=%d: %d splits, %d overlap-minimal, %d supernode extensions",
		d, st.Splits, st.OverlapMinimalSplits, st.Supernodes)
}

// In low dimensions the tree should behave like an R*-tree: no or very few
// supernodes.
func TestFewSupernodesInLowDimensions(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	cfg := DefaultConfig(2)
	tr := New(cfg)
	for i, p := range uniformPoints(r, 20000, 2) {
		tr.Insert(p, i)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := tr.Stats()
	if st.Supernodes > st.Splits/10 {
		t.Errorf("%d supernode extensions vs %d splits in d=2", st.Supernodes, st.Splits)
	}
}

func TestBulkLoad(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	const d = 8
	pts := uniformPoints(r, 5000, d)
	entries := make([]Entry, len(pts))
	for i, p := range pts {
		entries[i] = Entry{Point: p, ID: i}
	}
	tr := New(DefaultConfig(d))
	tr.BulkLoad(entries)
	if tr.Len() != len(pts) {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Every point must be findable.
	for i := 0; i < len(pts); i += 97 {
		found := false
		for _, e := range tr.PointSearch(pts[i]) {
			if e.ID == i {
				found = true
			}
		}
		if !found {
			t.Fatalf("bulk-loaded point %d not found", i)
		}
	}
}

func TestBulkLoadEmptyAndSmall(t *testing.T) {
	tr := New(smallConfig(2))
	tr.BulkLoad(nil)
	if tr.Len() != 0 || tr.Root() != nil {
		t.Error("bulk load of nothing should leave an empty tree")
	}
	tr.BulkLoad([]Entry{{Point: vec.Point{0.5, 0.5}, ID: 7}})
	if tr.Len() != 1 || tr.Height() != 1 {
		t.Errorf("single-entry bulk load: len=%d height=%d", tr.Len(), tr.Height())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadDimensionMismatchPanics(t *testing.T) {
	tr := New(smallConfig(2))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.BulkLoad([]Entry{{Point: vec.Point{0.5}, ID: 0}})
}

// Bulk-loaded leaves should have zero pairwise overlap (the recursive
// median partition guarantees it for distinct points).
func TestBulkLoadLeavesDisjoint(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	const d = 4
	pts := uniformPoints(r, 3000, d)
	entries := make([]Entry, len(pts))
	for i, p := range pts {
		entries[i] = Entry{Point: p, ID: i}
	}
	tr := New(smallConfig(d))
	tr.BulkLoad(entries)
	leaves := tr.Leaves()
	overlapping := 0
	for i := 0; i < len(leaves); i++ {
		for j := i + 1; j < len(leaves); j++ {
			if leaves[i].Rect().OverlapArea(leaves[j].Rect()) > 0 {
				overlapping++
			}
		}
	}
	if overlapping > 0 {
		t.Errorf("%d overlapping leaf pairs after bulk load", overlapping)
	}
}

func TestBulkLoadReplacesContent(t *testing.T) {
	tr := New(smallConfig(2))
	tr.Insert(vec.Point{0.1, 0.1}, 1)
	tr.BulkLoad([]Entry{{Point: vec.Point{0.9, 0.9}, ID: 2}})
	if len(tr.PointSearch(vec.Point{0.1, 0.1})) != 0 {
		t.Error("old content survived bulk load")
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestLeavesEnumeration(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	pts := uniformPoints(r, 400, 3)
	tr := buildTree(t, pts, smallConfig(3))
	total := 0
	for _, l := range tr.Leaves() {
		if !l.IsLeaf() {
			t.Fatal("Leaves returned a directory node")
		}
		total += len(l.Entries())
	}
	if total != 400 {
		t.Errorf("leaves hold %d entries, want 400", total)
	}
	_, leafCount := tr.NodeCount()
	if leafCount != len(tr.Leaves()) {
		t.Errorf("NodeCount leaves %d != len(Leaves) %d", leafCount, len(tr.Leaves()))
	}
}

func TestNodeAccessors(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	pts := uniformPoints(r, 200, 2)
	tr := buildTree(t, pts, smallConfig(2))
	root := tr.Root()
	if root.IsLeaf() {
		t.Fatal("root should be a directory after 200 inserts with capacity 8")
	}
	if root.Entries() != nil {
		t.Error("directory node has entries")
	}
	if len(root.Children()) == 0 {
		t.Error("directory node has no children")
	}
	if root.Super() < 1 {
		t.Error("invalid supernode multiplier")
	}
	if !root.Rect().Valid() {
		t.Error("invalid root rect")
	}
}

func BenchmarkInsert16D(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	tr := New(DefaultConfig(16))
	pts := uniformPoints(r, b.N+1, 16)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Insert(pts[i], i)
	}
}

func BenchmarkBulkLoad16D(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	pts := uniformPoints(r, 20000, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		entries := make([]Entry, len(pts))
		for j, p := range pts {
			entries[j] = Entry{Point: p, ID: j}
		}
		tr := New(DefaultConfig(16))
		tr.BulkLoad(entries)
	}
}

func TestBulkLoadGrouped(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	const d = 4
	// Three spatial groups plus an empty one; no leaf may span groups.
	makeGroup := func(base float64, n, idStart int) []Entry {
		g := make([]Entry, n)
		for i := range g {
			p := make(vec.Point, d)
			for j := range p {
				p[j] = base + 0.2*r.Float64()
			}
			g[i] = Entry{Point: p, ID: idStart + i}
		}
		return g
	}
	groups := [][]Entry{
		makeGroup(0.0, 100, 0),
		nil, // empty group is allowed
		makeGroup(0.4, 150, 100),
		makeGroup(0.8, 1, 250), // single-entry group
	}
	tr := New(smallConfig(d))
	tr.BulkLoadGrouped(groups)
	if tr.Len() != 251 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Every leaf must lie entirely within one group's region.
	for _, leaf := range tr.Leaves() {
		rect := leaf.Rect()
		within := 0
		for _, base := range []float64{0.0, 0.4, 0.8} {
			if rect.Min[0] >= base-1e-12 && rect.Max[0] <= base+0.2+1e-12 {
				within++
			}
		}
		if within != 1 {
			t.Fatalf("leaf %v spans group boundaries", rect)
		}
	}
	// All entries findable.
	for _, id := range []int{0, 99, 100, 249, 250} {
		found := false
		for _, g := range groups {
			for _, e := range g {
				if e.ID == id {
					for _, got := range tr.PointSearch(e.Point) {
						if got.ID == id {
							found = true
						}
					}
				}
			}
		}
		if !found {
			t.Fatalf("entry %d lost", id)
		}
	}
}

func TestBulkLoadGroupedEmpty(t *testing.T) {
	tr := New(smallConfig(2))
	tr.BulkLoadGrouped(nil)
	if tr.Len() != 0 || tr.Root() != nil {
		t.Error("empty grouped load should leave an empty tree")
	}
	tr.BulkLoadGrouped([][]Entry{nil, nil})
	if tr.Len() != 0 {
		t.Error("all-empty groups should leave an empty tree")
	}
}

func TestBulkLoadGroupedDimensionPanics(t *testing.T) {
	tr := New(smallConfig(2))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.BulkLoadGrouped([][]Entry{{{Point: vec.Point{0.5}, ID: 0}}})
}

func TestConfigAccessor(t *testing.T) {
	cfg := smallConfig(3)
	tr := New(cfg)
	if got := tr.Config(); got != cfg {
		t.Errorf("Config = %+v, want %+v", got, cfg)
	}
}

func TestSuperFor(t *testing.T) {
	tests := []struct{ count, cap, want int }{
		{0, 6, 1}, {1, 6, 1}, {6, 6, 1}, {7, 6, 2}, {12, 6, 2}, {13, 6, 3},
	}
	for _, tt := range tests {
		if got := superFor(tt.count, tt.cap); got != tt.want {
			t.Errorf("superFor(%d, %d) = %d, want %d", tt.count, tt.cap, got, tt.want)
		}
	}
}
