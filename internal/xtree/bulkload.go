package xtree

import (
	"fmt"
	"math"
	"sort"

	"parsearch/internal/vec"
)

// BulkLoad builds the tree from scratch over the given entries, replacing
// any previous content. It uses a recursive median partition (a
// sort-tile-recursive variant): the entry set is repeatedly sorted along
// the dimension of largest spread and cut at a block-aligned median, which
// yields leaves with zero overlap; directory levels are built bottom-up
// the same way over the node centers. Bulk loading is how the experiments
// construct their per-disk trees.
//
// The entries slice is taken over by the tree and reordered; callers must
// not reuse it.
func (t *Tree) BulkLoad(entries []Entry) {
	for _, e := range entries {
		if len(e.Point) != t.cfg.Dim {
			panic(fmt.Sprintf("xtree: bulk loading %d-dimensional point into %d-dimensional tree", len(e.Point), t.cfg.Dim))
		}
	}
	t.root = nil
	t.size = len(entries)
	t.stats = Stats{}
	if len(entries) == 0 {
		return
	}

	// Build the leaf level.
	var leaves []*Node
	t.partitionEntries(entries, t.cfg.LeafCapacity, 0, func(group []Entry, history uint64) {
		own := make([]Entry, len(group))
		copy(own, group)
		n := &Node{leaf: true, entries: own, history: history, super: 1}
		n.recomputeRect()
		leaves = append(leaves, n)
	})

	// Build directory levels bottom-up until a single root remains.
	level := leaves
	for len(level) > 1 {
		var next []*Node
		t.partitionNodes(level, t.cfg.DirCapacity, 0, func(group []*Node, history uint64) {
			own := make([]*Node, len(group))
			copy(own, group)
			n := &Node{leaf: false, children: own, history: history, super: 1}
			n.recomputeRect()
			next = append(next, n)
		})
		level = next
	}
	t.root = level[0]
	if t.cfg.Packed {
		t.packSubtree(t.root)
	}
}

// BulkLoadGrouped builds the tree like BulkLoad but with the guarantee
// that no leaf page spans two of the given groups: each group's entries
// are partitioned into their own leaves, and only the directory levels
// are built across groups. The parallel engine uses this to keep every
// data page inside a single declustering bucket — the storage layout of
// the paper, where the buckets of the quadrant grid are the storage
// units. Empty groups are permitted. The group slices are taken over and
// reordered.
func (t *Tree) BulkLoadGrouped(groups [][]Entry) {
	total := 0
	for _, g := range groups {
		for _, e := range g {
			if len(e.Point) != t.cfg.Dim {
				panic(fmt.Sprintf("xtree: bulk loading %d-dimensional point into %d-dimensional tree", len(e.Point), t.cfg.Dim))
			}
		}
		total += len(g)
	}
	t.root = nil
	t.size = total
	t.stats = Stats{}
	if total == 0 {
		return
	}

	var leaves []*Node
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		t.partitionEntries(g, t.cfg.LeafCapacity, 0, func(group []Entry, history uint64) {
			own := make([]Entry, len(group))
			copy(own, group)
			n := &Node{leaf: true, entries: own, history: history, super: 1}
			n.recomputeRect()
			leaves = append(leaves, n)
		})
	}
	level := leaves
	for len(level) > 1 {
		var next []*Node
		t.partitionNodes(level, t.cfg.DirCapacity, 0, func(group []*Node, history uint64) {
			own := make([]*Node, len(group))
			copy(own, group)
			n := &Node{leaf: false, children: own, history: history, super: 1}
			n.recomputeRect()
			next = append(next, n)
		})
		level = next
	}
	t.root = level[0]
	if t.cfg.Packed {
		t.packSubtree(t.root)
	}
}

// partitionEntries recursively splits entries into groups of at most cap,
// cutting along the dimension of largest spread at a block-aligned
// median. history accumulates the split dimensions, matching the split
// history maintained by dynamic inserts.
func (t *Tree) partitionEntries(entries []Entry, cap int, history uint64, emit func([]Entry, uint64)) {
	if len(entries) <= cap {
		emit(entries, history)
		return
	}
	dim := widestEntryDim(entries, t.cfg.Dim)
	sort.Slice(entries, func(i, j int) bool {
		return entries[i].Point[dim] < entries[j].Point[dim]
	})
	cut := bestCut(len(entries), func(i int) vec.Point { return entries[i].Point },
		func(i int) vec.Point { return entries[i].Point }, t.cfg.Dim)
	h := history | 1<<uint(dim)
	t.partitionEntries(entries[:cut], cap, h, emit)
	t.partitionEntries(entries[cut:], cap, h, emit)
}

// partitionNodes is partitionEntries over node centers.
func (t *Tree) partitionNodes(nodes []*Node, cap int, history uint64, emit func([]*Node, uint64)) {
	if len(nodes) <= cap {
		emit(nodes, history)
		return
	}
	dim := widestNodeDim(nodes, t.cfg.Dim)
	sort.Slice(nodes, func(i, j int) bool {
		ci := nodes[i].rect.Min[dim] + nodes[i].rect.Max[dim]
		cj := nodes[j].rect.Min[dim] + nodes[j].rect.Max[dim]
		return ci < cj
	})
	cut := bestCut(len(nodes), func(i int) vec.Point { return nodes[i].rect.Min },
		func(i int) vec.Point { return nodes[i].rect.Max }, t.cfg.Dim)
	h := history | 1<<uint(dim)
	t.partitionNodes(nodes[:cut], cap, h, emit)
	t.partitionNodes(nodes[cut:], cap, h, emit)
}

// bestCut returns the cut index in the middle 40% of a sorted sequence
// that minimizes the summed MBR volume of the two sides (ties: closest to
// the middle). Volume-minimal cuts fall between the data's natural
// clusters (e.g. quadrant boundaries), keeping page MBRs tight — what a
// dynamically built R*/X-tree achieves with its overlap-minimizing
// splits. min and max yield the per-item bounds (identical for points).
func bestCut(n int, min, max func(i int) vec.Point, d int) int {
	lo := n * 3 / 10
	if lo < 1 {
		lo = 1
	}
	hi := n - lo
	if hi < lo {
		return n / 2
	}

	// prefixVol[k] = volume of the MBR of items [0, k); suffixVol[k] =
	// volume of the MBR of items [k, n).
	prefixVol := make([]float64, n+1)
	suffixVol := make([]float64, n+1)
	runMin := make(vec.Point, d)
	runMax := make(vec.Point, d)

	copy(runMin, min(0))
	copy(runMax, max(0))
	prefixVol[1] = volume(runMin, runMax)
	for i := 1; i < n; i++ {
		extend(runMin, runMax, min(i), max(i))
		prefixVol[i+1] = volume(runMin, runMax)
	}
	copy(runMin, min(n-1))
	copy(runMax, max(n-1))
	suffixVol[n-1] = volume(runMin, runMax)
	for i := n - 2; i >= 0; i-- {
		extend(runMin, runMax, min(i), max(i))
		suffixVol[i] = volume(runMin, runMax)
	}

	best, bestVol, bestDist := n/2, math.Inf(1), n
	for k := lo; k <= hi; k++ {
		v := prefixVol[k] + suffixVol[k]
		dist := k - n/2
		if dist < 0 {
			dist = -dist
		}
		if v < bestVol || (v == bestVol && dist < bestDist) {
			best, bestVol, bestDist = k, v, dist
		}
	}
	return best
}

// extend grows the running bounds to cover the item bounds.
func extend(runMin, runMax, itemMin, itemMax vec.Point) {
	for j := range runMin {
		if itemMin[j] < runMin[j] {
			runMin[j] = itemMin[j]
		}
		if itemMax[j] > runMax[j] {
			runMax[j] = itemMax[j]
		}
	}
}

// volume returns the product of the side lengths.
func volume(min, max vec.Point) float64 {
	v := 1.0
	for j := range min {
		v *= max[j] - min[j]
	}
	return v
}

// widestEntryDim returns the dimension with the largest coordinate spread.
func widestEntryDim(entries []Entry, d int) int {
	best, bestSpread := 0, -1.0
	for dim := 0; dim < d; dim++ {
		lo, hi := entries[0].Point[dim], entries[0].Point[dim]
		for _, e := range entries[1:] {
			v := e.Point[dim]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if s := hi - lo; s > bestSpread {
			best, bestSpread = dim, s
		}
	}
	return best
}

// widestNodeDim returns the dimension with the largest center spread.
func widestNodeDim(nodes []*Node, d int) int {
	best, bestSpread := 0, -1.0
	for dim := 0; dim < d; dim++ {
		lo := nodes[0].rect.Min[dim] + nodes[0].rect.Max[dim]
		hi := lo
		for _, n := range nodes[1:] {
			v := n.rect.Min[dim] + n.rect.Max[dim]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if s := hi - lo; s > bestSpread {
			best, bestSpread = dim, s
		}
	}
	return best
}
