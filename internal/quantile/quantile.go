// Package quantile provides quantile estimation for the α-quantile split
// extension of the declustering technique (paper §4.3): instead of splitting
// every dimension at the midpoint 0.5, skewed data is split at the
// α-quantile of each dimension so that both half-spaces carry comparable
// load.
//
// Two estimators are provided: Exact, which sorts a sample, and P2, the
// constant-space streaming estimator of Jain and Chlamtac (CACM 1985) that
// supports the paper's dynamic adaptation ("we dynamically adapt the
// 0.5-quantile by recording the distribution") without retaining the data.
package quantile

import (
	"fmt"
	"math"
	"sort"
)

// Exact returns the q-quantile (0 <= q <= 1) of the values using linear
// interpolation between order statistics. It copies and sorts the input.
// It panics on an empty input or a q outside [0, 1].
func Exact(values []float64, q float64) float64 {
	if len(values) == 0 {
		panic("quantile: Exact of no values")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("quantile: q = %v outside [0, 1]", q))
	}
	s := make([]float64, len(values))
	copy(s, values)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// P2 is the P² streaming quantile estimator. It maintains five markers and
// adjusts them with parabolic interpolation as observations arrive, using
// O(1) space regardless of stream length.
type P2 struct {
	q       float64    // target quantile
	n       int        // observations seen
	heights [5]float64 // marker heights
	pos     [5]float64 // actual marker positions (1-based)
	want    [5]float64 // desired marker positions
	incr    [5]float64 // desired position increments
	initial []float64  // first five observations, pre-initialization
}

// NewP2 returns a streaming estimator for the q-quantile. It panics if q is
// outside (0, 1).
func NewP2(q float64) *P2 {
	if q <= 0 || q >= 1 {
		panic(fmt.Sprintf("quantile: P2 target %v outside (0, 1)", q))
	}
	p := &P2{q: q}
	p.want = [5]float64{1, 1 + 2*q, 1 + 4*q, 3 + 2*q, 5}
	p.incr = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
	return p
}

// Target returns the quantile this estimator tracks.
func (p *P2) Target() float64 { return p.q }

// Count returns the number of observations added so far.
func (p *P2) Count() int { return p.n }

// Add feeds one observation to the estimator.
func (p *P2) Add(x float64) {
	p.n++
	if len(p.initial) < 5 {
		p.initial = append(p.initial, x)
		if len(p.initial) == 5 {
			sort.Float64s(p.initial)
			for i := 0; i < 5; i++ {
				p.heights[i] = p.initial[i]
				p.pos[i] = float64(i + 1)
			}
		}
		return
	}

	// Find the cell containing x and update extreme markers.
	var k int
	switch {
	case x < p.heights[0]:
		p.heights[0] = x
		k = 0
	case x >= p.heights[4]:
		p.heights[4] = x
		k = 3
	default:
		for i := 1; i < 5; i++ {
			if x < p.heights[i] {
				k = i - 1
				break
			}
		}
	}

	// Shift positions of markers above the cell.
	for i := k + 1; i < 5; i++ {
		p.pos[i]++
	}
	for i := 0; i < 5; i++ {
		p.want[i] += p.incr[i]
	}

	// Adjust interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := p.want[i] - p.pos[i]
		if (d >= 1 && p.pos[i+1]-p.pos[i] > 1) || (d <= -1 && p.pos[i-1]-p.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1.0
			}
			h := p.parabolic(i, sign)
			if p.heights[i-1] < h && h < p.heights[i+1] {
				p.heights[i] = h
			} else {
				p.heights[i] = p.linear(i, sign)
			}
			p.pos[i] += sign
		}
	}
}

func (p *P2) parabolic(i int, d float64) float64 {
	return p.heights[i] + d/(p.pos[i+1]-p.pos[i-1])*
		((p.pos[i]-p.pos[i-1]+d)*(p.heights[i+1]-p.heights[i])/(p.pos[i+1]-p.pos[i])+
			(p.pos[i+1]-p.pos[i]-d)*(p.heights[i]-p.heights[i-1])/(p.pos[i]-p.pos[i-1]))
}

func (p *P2) linear(i int, d float64) float64 {
	j := i + int(d)
	return p.heights[i] + d*(p.heights[j]-p.heights[i])/(p.pos[j]-p.pos[i])
}

// Value returns the current estimate of the target quantile. Before five
// observations have been seen it falls back to the exact quantile of the
// observations so far; with no observations it returns 0.
func (p *P2) Value() float64 {
	if p.n == 0 {
		return 0
	}
	if len(p.initial) < 5 {
		return Exact(p.initial, p.q)
	}
	return p.heights[2]
}
