package quantile

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestExactKnownValues(t *testing.T) {
	v := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 1},
		{0.25, 2},
		{0.5, 3},
		{0.75, 4},
		{1, 5},
		{0.125, 1.5},
	}
	for _, tt := range tests {
		if got := Exact(v, tt.q); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Exact(q=%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
}

func TestExactSingleValue(t *testing.T) {
	if got := Exact([]float64{7}, 0.5); got != 7 {
		t.Errorf("Exact single = %v", got)
	}
}

func TestExactDoesNotMutateInput(t *testing.T) {
	v := []float64{3, 1, 2}
	Exact(v, 0.5)
	if v[0] != 3 || v[1] != 1 || v[2] != 2 {
		t.Errorf("input mutated: %v", v)
	}
}

func TestExactPanics(t *testing.T) {
	for _, tc := range []struct {
		vals []float64
		q    float64
	}{
		{nil, 0.5},
		{[]float64{1}, -0.1},
		{[]float64{1}, 1.1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Exact(%v, %v): expected panic", tc.vals, tc.q)
				}
			}()
			Exact(tc.vals, tc.q)
		}()
	}
}

func TestNewP2Panics(t *testing.T) {
	for _, q := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewP2(%v): expected panic", q)
				}
			}()
			NewP2(q)
		}()
	}
}

func TestP2Empty(t *testing.T) {
	p := NewP2(0.5)
	if p.Value() != 0 || p.Count() != 0 {
		t.Errorf("empty P2: value=%v count=%d", p.Value(), p.Count())
	}
	if p.Target() != 0.5 {
		t.Errorf("Target = %v", p.Target())
	}
}

func TestP2FewObservations(t *testing.T) {
	p := NewP2(0.5)
	p.Add(3)
	p.Add(1)
	p.Add(2)
	if got := p.Value(); got != 2 {
		t.Errorf("median of {1,2,3} = %v, want 2", got)
	}
	if p.Count() != 3 {
		t.Errorf("Count = %d", p.Count())
	}
}

// P2 on uniform data should estimate quantiles with small error.
func TestP2Uniform(t *testing.T) {
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		r := rand.New(rand.NewSource(11))
		p := NewP2(q)
		for i := 0; i < 50000; i++ {
			p.Add(r.Float64())
		}
		if got := p.Value(); math.Abs(got-q) > 0.02 {
			t.Errorf("P2(%v) on uniform = %v, want ~%v", q, got, q)
		}
	}
}

// P2 on a Gaussian should track the exact sample quantile.
func TestP2Gaussian(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	p := NewP2(0.5)
	var all []float64
	for i := 0; i < 20000; i++ {
		x := r.NormFloat64()*2 + 10
		p.Add(x)
		all = append(all, x)
	}
	exact := Exact(all, 0.5)
	if math.Abs(p.Value()-exact) > 0.1 {
		t.Errorf("P2 median = %v, exact = %v", p.Value(), exact)
	}
}

// P2 on heavily skewed data (exponential) must still converge.
func TestP2Exponential(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	p := NewP2(0.5)
	var all []float64
	for i := 0; i < 30000; i++ {
		x := r.ExpFloat64()
		p.Add(x)
		all = append(all, x)
	}
	exact := Exact(all, 0.5)
	if math.Abs(p.Value()-exact) > 0.05 {
		t.Errorf("P2 exp median = %v, exact = %v", p.Value(), exact)
	}
}

// The estimate must always lie within the observed range.
func TestP2WithinRange(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	p := NewP2(0.3)
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < 1000; i++ {
		x := r.NormFloat64()
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
		p.Add(x)
		if v := p.Value(); v < lo-1e-9 || v > hi+1e-9 {
			t.Fatalf("estimate %v outside observed range [%v, %v] after %d obs", v, lo, hi, i+1)
		}
	}
}

// Exact quantiles of a sorted ramp agree with the closed form; use that to
// cross-check P2 against Exact on identical streams.
func TestP2MatchesExactOnPermutedRamp(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	vals := make([]float64, 10000)
	for i := range vals {
		vals[i] = float64(i) / float64(len(vals))
	}
	r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	p := NewP2(0.25)
	for _, v := range vals {
		p.Add(v)
	}
	sort.Float64s(vals)
	exact := Exact(vals, 0.25)
	if math.Abs(p.Value()-exact) > 0.02 {
		t.Errorf("P2 = %v, exact = %v", p.Value(), exact)
	}
}

func BenchmarkP2Add(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	p := NewP2(0.5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Add(r.Float64())
	}
}
