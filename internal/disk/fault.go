package disk

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ErrTransient is wrapped by ReadBatch errors when a page read keeps
// failing transiently after exhausting its retry budget. Unlike
// ErrDiskFailed it does not indicate a dead disk: the next batch may
// well succeed.
var ErrTransient = errors.New("transient read error")

// FaultModel configures injectable faults for every disk of an Array,
// complementing the permanent Fail/Heal flags with the transient
// misbehaviour of real hardware:
//
//   - transient read errors, absorbed by a bounded retry with
//     exponential backoff (the backoff is charged as simulated service
//     time, so flaky disks are measurably slower);
//   - latency spikes, charged as extra service time on the affected
//     read.
//
// All randomness comes from per-disk RNGs seeded from Seed, so a
// single-threaded sequence of batches is exactly reproducible.
// Concurrent batches share the per-disk RNGs (their interleaving is
// scheduler-dependent), but every draw is still from the seeded
// sequence. The zero FaultModel disables fault injection.
type FaultModel struct {
	// TransientProb is the per-read probability of a transient error.
	TransientProb float64
	// MaxRetries bounds the retries of one page read; a read that still
	// fails after MaxRetries retries makes its disk report an error
	// wrapping ErrTransient.
	MaxRetries int
	// RetryBackoff is the simulated wait charged before the first
	// retry, doubling on every further attempt.
	RetryBackoff time.Duration
	// SpikeProb is the per-read probability of a latency spike.
	SpikeProb float64
	// SpikeLatency is the extra service time charged per spike.
	SpikeLatency time.Duration
	// Seed seeds the per-disk RNGs (disk d uses Seed+d).
	Seed int64
}

// enabled reports whether the model injects any fault at all.
func (m FaultModel) enabled() bool {
	return m.TransientProb > 0 || m.SpikeProb > 0
}

// validate returns a descriptive error for out-of-range parameters.
func (m FaultModel) validate() error {
	if m.TransientProb < 0 || m.TransientProb > 1 {
		return fmt.Errorf("disk: transient probability %v outside [0, 1]", m.TransientProb)
	}
	if m.SpikeProb < 0 || m.SpikeProb > 1 {
		return fmt.Errorf("disk: spike probability %v outside [0, 1]", m.SpikeProb)
	}
	if m.MaxRetries < 0 {
		return fmt.Errorf("disk: %d retries", m.MaxRetries)
	}
	if m.RetryBackoff < 0 || m.SpikeLatency < 0 {
		return fmt.Errorf("disk: negative fault durations %+v", m)
	}
	return nil
}

// faultState is the installed fault model plus its per-disk RNG state.
// It is swapped in and out of the Array atomically as one unit, so a
// batch sees one consistent model for its whole run.
type faultState struct {
	model FaultModel
	mu    []sync.Mutex
	rngs  []*rand.Rand
}

func newFaultState(m FaultModel, disks int) *faultState {
	fs := &faultState{
		model: m,
		mu:    make([]sync.Mutex, disks),
		rngs:  make([]*rand.Rand, disks),
	}
	for d := range fs.rngs {
		fs.rngs[d] = rand.New(rand.NewSource(m.Seed + int64(d)))
	}
	return fs
}

// roll draws one uniform float for disk d.
func (fs *faultState) roll(d int) float64 {
	fs.mu[d].Lock()
	v := fs.rngs[d].Float64()
	fs.mu[d].Unlock()
	return v
}

// transient reports whether the next read attempt on disk d fails
// transiently.
func (fs *faultState) transient(d int) bool {
	return fs.model.TransientProb > 0 && fs.roll(d) < fs.model.TransientProb
}

// spike reports whether the read on disk d suffers a latency spike.
func (fs *faultState) spike(d int) bool {
	return fs.model.SpikeProb > 0 && fs.roll(d) < fs.model.SpikeProb
}

// SetFaults installs (or, with a zero model, removes) the fault model.
// The model takes effect for batches that start after the call; batches
// already in flight finish under the model they started with.
func (a *Array) SetFaults(m FaultModel) error {
	if err := m.validate(); err != nil {
		return err
	}
	if !m.enabled() {
		a.faults.Store(nil)
		return nil
	}
	a.faults.Store(newFaultState(m, a.n))
	return nil
}

// Faults returns the installed fault model (the zero model when fault
// injection is off).
func (a *Array) Faults() FaultModel {
	if fs := a.faults.Load(); fs != nil {
		return fs.model
	}
	return FaultModel{}
}
