package disk

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNewArrayValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewArray(0, DefaultParams()) },
		func() { NewArray(4, Params{Seek: -1}) },
		func() { NewArray(4, Params{Transfer: -1}) },
		func() { NewArray(4, Params{Throttle: -1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
	a := NewArray(4, DefaultParams())
	if a.Disks() != 4 {
		t.Errorf("Disks = %d", a.Disks())
	}
	if a.Params().Seek != 8*time.Millisecond {
		t.Errorf("Params = %+v", a.Params())
	}
}

func TestReadBatchAccounting(t *testing.T) {
	p := Params{Seek: 10 * time.Millisecond, Transfer: time.Millisecond}
	a := NewArray(3, p)
	refs := []PageRef{
		{Disk: 0, Blocks: 1},
		{Disk: 0, Blocks: 2},
		{Disk: 1, Blocks: 1},
	}
	res, err := a.ReadBatch(refs)
	if err != nil {
		t.Fatal(err)
	}
	if res.PerDisk[0] != 3 || res.PerDisk[1] != 1 || res.PerDisk[2] != 0 {
		t.Errorf("PerDisk = %v", res.PerDisk)
	}
	if res.ReadsPerDisk[0] != 2 || res.ReadsPerDisk[1] != 1 {
		t.Errorf("ReadsPerDisk = %v", res.ReadsPerDisk)
	}
	if res.Total != 4 || res.MaxPerDisk != 3 {
		t.Errorf("Total=%d MaxPerDisk=%d", res.Total, res.MaxPerDisk)
	}
	// Disk 0: 2 seeks + 3 transfers = 23ms; disk 1: 1 seek + 1 transfer
	// = 11ms.
	if res.ParallelTime != 23*time.Millisecond {
		t.Errorf("ParallelTime = %v", res.ParallelTime)
	}
	if res.SequentialTime != 34*time.Millisecond {
		t.Errorf("SequentialTime = %v", res.SequentialTime)
	}
	if sp := res.Speedup(); sp < 1.47 || sp > 1.48 {
		t.Errorf("Speedup = %v", sp)
	}
}

func TestReadBatchEmpty(t *testing.T) {
	a := NewArray(2, DefaultParams())
	res, err := a.ReadBatch(nil)
	if err != nil || res.Total != 0 || res.Speedup() != 0 {
		t.Errorf("empty batch: %+v err=%v", res, err)
	}
}

func TestReadBatchValidation(t *testing.T) {
	a := NewArray(2, DefaultParams())
	for _, refs := range [][]PageRef{
		{{Disk: 2, Blocks: 1}},
		{{Disk: -1, Blocks: 1}},
		{{Disk: 0, Blocks: 0}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("refs %v: expected panic", refs)
				}
			}()
			a.ReadBatch(refs)
		}()
	}
}

func TestLifetimeCounters(t *testing.T) {
	a := NewArray(2, Params{})
	a.ReadBatch([]PageRef{{Disk: 0, Blocks: 2}, {Disk: 1, Blocks: 1}})
	a.ReadBatch([]PageRef{{Disk: 0, Blocks: 1}})
	got := a.TotalReads()
	if got[0] != 3 || got[1] != 1 {
		t.Errorf("TotalReads = %v", got)
	}
	a.ResetCounters()
	got = a.TotalReads()
	if got[0] != 0 || got[1] != 0 {
		t.Errorf("after reset: %v", got)
	}
}

func TestFailureInjection(t *testing.T) {
	a := NewArray(3, Params{})
	a.Fail(1)
	if !a.Failed(1) || a.Failed(0) {
		t.Error("failure flags wrong")
	}
	res, err := a.ReadBatch([]PageRef{
		{Disk: 0, Blocks: 1},
		{Disk: 1, Blocks: 1},
	})
	if err == nil {
		t.Fatal("batch touching a failed disk must error")
	}
	if !errors.Is(err, ErrDiskFailed) {
		t.Errorf("error %v does not wrap ErrDiskFailed", err)
	}
	// The healthy disk still completed its reads.
	if res.PerDisk[0] != 1 {
		t.Errorf("healthy disk accounting lost: %v", res.PerDisk)
	}
	if res.PerDisk[1] != 0 {
		t.Errorf("failed disk reported reads: %v", res.PerDisk)
	}
	a.Heal(1)
	if _, err := a.ReadBatch([]PageRef{{Disk: 1, Blocks: 1}}); err != nil {
		t.Errorf("healed disk still fails: %v", err)
	}
}

// Batches from many goroutines must keep counters consistent.
func TestConcurrentBatches(t *testing.T) {
	a := NewArray(4, Params{})
	var wg sync.WaitGroup
	const workers, perWorker = 8, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				a.ReadBatch([]PageRef{
					{Disk: 0, Blocks: 1},
					{Disk: 1, Blocks: 1},
					{Disk: 2, Blocks: 1},
					{Disk: 3, Blocks: 1},
				})
			}
		}()
	}
	wg.Wait()
	for d, c := range a.TotalReads() {
		if c != workers*perWorker {
			t.Errorf("disk %d counted %d, want %d", d, c, workers*perWorker)
		}
	}
}

// With throttling, a balanced batch over n disks must finish in roughly
// 1/n of the sequential time — the goroutines really run in parallel.
func TestThrottledParallelism(t *testing.T) {
	p := Params{Seek: 0, Transfer: time.Millisecond, Throttle: 1}
	const n, pages = 4, 20
	a := NewArray(n, p)
	var refs []PageRef
	for d := 0; d < n; d++ {
		for i := 0; i < pages; i++ {
			refs = append(refs, PageRef{Disk: d, Blocks: 1})
		}
	}
	start := time.Now()
	res, err := a.ReadBatch(refs)
	wall := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if res.ParallelTime != pages*time.Millisecond {
		t.Errorf("ParallelTime = %v", res.ParallelTime)
	}
	// Wall time should be near ParallelTime (20 ms), far below the
	// 80 ms sequential time. Allow generous scheduling slack.
	if wall > 60*time.Millisecond {
		t.Errorf("wall time %v suggests the disks ran sequentially", wall)
	}
}

func TestSimulateCost(t *testing.T) {
	p := Params{Seek: 10 * time.Millisecond, Transfer: 2 * time.Millisecond}
	if got := p.SimulateCost(3, 5); got != 40*time.Millisecond {
		t.Errorf("SimulateCost = %v", got)
	}
}

func BenchmarkReadBatch16Disks(b *testing.B) {
	a := NewArray(16, Params{})
	refs := make([]PageRef, 160)
	for i := range refs {
		refs[i] = PageRef{Disk: i % 16, Blocks: 1}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.ReadBatch(refs)
	}
}

func TestFailedDisks(t *testing.T) {
	a := NewArray(4, Params{})
	if got := a.FailedDisks(); got != nil {
		t.Fatalf("FailedDisks on healthy array = %v", got)
	}
	a.Fail(3)
	a.Fail(1)
	got := a.FailedDisks()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("FailedDisks = %v, want [1 3]", got)
	}
	a.Heal(1)
	got = a.FailedDisks()
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("FailedDisks after heal = %v, want [3]", got)
	}
}

// Regression: failing and healing disks while batches are in flight must
// be race-free, and every batch either succeeds or reports ErrDiskFailed.
func TestConcurrentFailHealDuringBatches(t *testing.T) {
	a := NewArray(4, Params{Seek: time.Microsecond, Transfer: time.Microsecond})
	refs := make([]PageRef, 16)
	for i := range refs {
		refs[i] = PageRef{Disk: i % 4, Blocks: 1}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			d := i % 4
			a.Fail(d)
			a.FailedDisks()
			a.Heal(d)
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, err := a.ReadBatch(refs); err != nil && !errors.Is(err, ErrDiskFailed) {
					t.Errorf("unexpected batch error: %v", err)
					return
				}
			}
		}()
	}
	time.Sleep(5 * time.Millisecond)
	close(stop)
	wg.Wait()
	for d := 0; d < 4; d++ {
		a.Heal(d)
	}
	if _, err := a.ReadBatch(refs); err != nil {
		t.Fatalf("healed array still failing: %v", err)
	}
}
