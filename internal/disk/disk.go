// Package disk simulates the multi-disk hardware of the paper's testbed
// (a workstation cluster where every disk serves page reads
// independently). Queries translate into batches of page reads spread
// over the disks; each disk is serviced by its own goroutine, so batch
// execution is genuinely parallel, and a parametric service-time model
// (seek + transfer per block) converts page counts into simulated time.
//
// The paper measures "the search time of the disk which accesses most
// pages"; BatchResult exposes exactly that (MaxPerDisk / ParallelTime)
// next to the sequential cost (Total / SequentialTime), whose ratio is the
// speed-up reported in the experiments.
//
// Disks can be failed and healed to test error propagation, and a
// FaultModel injects transient read errors and latency spikes with a
// seeded RNG; ReadBatch absorbs transient errors with a bounded,
// backoff-charged retry per read (see FaultModel).
//
// An Array is safe for concurrent use: ReadBatch may run from any number
// of goroutines, and Fail/Heal/Failed/TotalReads are atomic — the
// failure flags, the installed fault model, and the lifetime block
// counters are the only shared state, and all are lock-free (the fault
// model's per-disk RNGs use short per-disk critical sections).
package disk

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Params is the service-time model of one disk.
type Params struct {
	// Seek is charged once per page read (positioning + rotational
	// delay).
	Seek time.Duration
	// Transfer is charged per block of the page (supernodes span
	// several blocks).
	Transfer time.Duration
	// Throttle, when non-zero, makes ReadBatch really sleep
	// Throttle-scaled service time on each disk goroutine, turning the
	// accounting model into observable wall-clock behaviour (used by
	// tests and demos; experiments keep it 0 for speed).
	Throttle float64
}

// DefaultParams models a mid-1990s SCSI disk: ~8 ms positioning and ~1 ms
// to transfer a 4-KByte block.
func DefaultParams() Params {
	return Params{Seek: 8 * time.Millisecond, Transfer: time.Millisecond}
}

// PageRef identifies one page read: the disk it lives on and how many
// blocks it spans (1 for a normal node, more for supernodes).
type PageRef struct {
	Disk   int
	Blocks int
}

// BatchResult summarizes the execution of one read batch.
type BatchResult struct {
	// PerDisk is the number of blocks read per disk.
	PerDisk []int
	// ReadsPerDisk is the number of page reads per disk.
	ReadsPerDisk []int
	// Total is the total number of blocks read.
	Total int
	// MaxPerDisk is the largest per-disk block count — the bottleneck
	// disk, the paper's cost metric.
	MaxPerDisk int
	// ParallelTime is the simulated batch time: the service time of
	// the slowest disk.
	ParallelTime time.Duration
	// SequentialTime is the simulated time had a single disk performed
	// every read.
	SequentialTime time.Duration
	// Times is the simulated service time each disk spent on its share
	// of the batch (ParallelTime is its maximum, SequentialTime its
	// sum) — the per-disk view observability consumers aggregate.
	Times []time.Duration
	// Retries is the number of re-read attempts transient faults caused
	// across all disks (0 unless a FaultModel is installed). Retries
	// counts attempts, not backoff sleeps: a retry performed under a
	// zero-length RetryBackoff still counts.
	Retries int
}

// Speedup returns SequentialTime / ParallelTime, the paper's headline
// metric; 0 when the batch was empty.
func (r BatchResult) Speedup() float64 {
	if r.ParallelTime == 0 {
		return 0
	}
	return float64(r.SequentialTime) / float64(r.ParallelTime)
}

// ErrDiskFailed is wrapped by ReadBatch errors for failed disks.
var ErrDiskFailed = errors.New("disk failed")

// Array is a bank of n independently serviced disks.
type Array struct {
	n      int
	params Params

	failed []atomic.Bool
	reads  []atomic.Int64 // lifetime block counters
	faults atomic.Pointer[faultState]
}

// NewArray returns an array of n disks with the given service model.
func NewArray(n int, params Params) *Array {
	if n < 1 {
		panic(fmt.Sprintf("disk: array of %d disks", n))
	}
	if params.Seek < 0 || params.Transfer < 0 || params.Throttle < 0 {
		panic(fmt.Sprintf("disk: negative service parameters %+v", params))
	}
	return &Array{
		n:      n,
		params: params,
		failed: make([]atomic.Bool, n),
		reads:  make([]atomic.Int64, n),
	}
}

// Disks returns the number of disks.
func (a *Array) Disks() int { return a.n }

// Params returns the service model.
func (a *Array) Params() Params { return a.params }

// checkDisk returns a descriptive error when no such disk exists.
func (a *Array) checkDisk(disk int) error {
	if disk < 0 || disk >= a.n {
		return fmt.Errorf("disk: no disk %d in an array of %d (want [0, %d])", disk, a.n, a.n-1)
	}
	return nil
}

// Fail marks a disk as failed; subsequent reads from it error. It
// returns a descriptive error when no such disk exists.
func (a *Array) Fail(disk int) error {
	if err := a.checkDisk(disk); err != nil {
		return err
	}
	a.failed[disk].Store(true)
	return nil
}

// Heal clears a disk's failure. It returns a descriptive error when no
// such disk exists.
func (a *Array) Heal(disk int) error {
	if err := a.checkDisk(disk); err != nil {
		return err
	}
	a.failed[disk].Store(false)
	return nil
}

// Failed reports whether the disk is failed; out-of-range disks are
// reported as not failed.
func (a *Array) Failed(disk int) bool {
	return disk >= 0 && disk < a.n && a.failed[disk].Load()
}

// FailedDisks returns the currently failed disks in ascending order. Like
// Fail and Heal it is lock-free; a concurrent Fail/Heal may or may not be
// reflected.
func (a *Array) FailedDisks() []int {
	var out []int
	for d := 0; d < a.n; d++ {
		if a.failed[d].Load() {
			out = append(out, d)
		}
	}
	return out
}

// TotalReads returns the lifetime per-disk block counters.
func (a *Array) TotalReads() []int64 {
	out := make([]int64, a.n)
	for i := range out {
		out[i] = a.reads[i].Load()
	}
	return out
}

// ResetCounters zeroes the lifetime counters.
func (a *Array) ResetCounters() {
	for i := range a.reads {
		a.reads[i].Store(0)
	}
}

// ReadBatch executes the given page reads, one goroutine per involved
// disk, and returns the cost accounting. Reads on failed disks make the
// whole batch return an error (wrapping ErrDiskFailed) alongside the
// accounting of the disks that did succeed; with several disks failing,
// the per-disk errors are aggregated with errors.Join so callers can
// route around every failure, not just the lowest-numbered one. With a
// FaultModel installed, transient read errors are retried up to
// MaxRetries times per read (charging exponential backoff plus the
// re-read as service time); a read that stays broken makes its disk
// report an error wrapping ErrTransient.
func (a *Array) ReadBatch(refs []PageRef) (BatchResult, error) {
	res := BatchResult{
		PerDisk:      make([]int, a.n),
		ReadsPerDisk: make([]int, a.n),
	}
	byDisk := make([][]PageRef, a.n)
	for _, ref := range refs {
		if ref.Disk < 0 || ref.Disk >= a.n {
			panic(fmt.Sprintf("disk: read from disk %d of %d", ref.Disk, a.n))
		}
		if ref.Blocks < 1 {
			panic(fmt.Sprintf("disk: page of %d blocks", ref.Blocks))
		}
		byDisk[ref.Disk] = append(byDisk[ref.Disk], ref)
	}

	fs := a.faults.Load()
	times := make([]time.Duration, a.n)
	errs := make([]error, a.n)
	retries := make([]int, a.n)
	var wg sync.WaitGroup
	for d := 0; d < a.n; d++ {
		if len(byDisk[d]) == 0 {
			continue
		}
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			if a.failed[d].Load() {
				errs[d] = fmt.Errorf("disk %d: %w", d, ErrDiskFailed)
				return
			}
			var t time.Duration
			blocks, reads := 0, 0
			for _, ref := range byDisk[d] {
				cost := a.params.Seek + time.Duration(ref.Blocks)*a.params.Transfer
				t += cost
				if fs != nil {
					if fs.spike(d) {
						t += fs.model.SpikeLatency
					}
					// Retry accounting counts re-read attempts; the
					// backoff charge is a separate, purely temporal
					// concern (zero-length backoff still retries — and
					// still counts).
					attempts := 0
					for fs.transient(d) {
						if attempts == fs.model.MaxRetries {
							errs[d] = fmt.Errorf("disk %d: read of %d blocks still failing after %d retries: %w",
								d, ref.Blocks, attempts, ErrTransient)
							break
						}
						if backoff := fs.model.RetryBackoff; backoff > 0 {
							t += backoff << attempts // doubling wait, charged as service time
						}
						attempts++
						t += cost // the re-read
					}
					retries[d] += attempts
					if errs[d] != nil {
						// Like a failed disk, a disk that gave up on a
						// read contributes no accounting.
						return
					}
				}
				blocks += ref.Blocks
				reads++
			}
			if a.params.Throttle > 0 {
				time.Sleep(time.Duration(float64(t) * a.params.Throttle))
			}
			a.reads[d].Add(int64(blocks))
			times[d] = t
			res.PerDisk[d] = blocks
			res.ReadsPerDisk[d] = reads
		}(d)
	}
	wg.Wait()

	res.Times = times
	for d := 0; d < a.n; d++ {
		res.Retries += retries[d]
		res.Total += res.PerDisk[d]
		res.SequentialTime += times[d]
		if res.PerDisk[d] > res.MaxPerDisk {
			res.MaxPerDisk = res.PerDisk[d]
		}
		if times[d] > res.ParallelTime {
			res.ParallelTime = times[d]
		}
	}
	return res, errors.Join(errs...)
}

// SimulateCost converts block counts into simulated time without touching
// the array: reads page reads, each of blocks blocks. Used to derive
// search times from page-access counts the same way for every strategy.
func (p Params) SimulateCost(reads, blocks int) time.Duration {
	return time.Duration(reads)*p.Seek + time.Duration(blocks)*p.Transfer
}
