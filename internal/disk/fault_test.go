package disk

import (
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFailHealOutOfRange(t *testing.T) {
	a := NewArray(4, Params{})
	for _, d := range []int{-1, 4, 99} {
		if err := a.Fail(d); err == nil {
			t.Errorf("Fail(%d) on a 4-disk array should error", d)
		}
		if err := a.Heal(d); err == nil {
			t.Errorf("Heal(%d) on a 4-disk array should error", d)
		}
		if a.Failed(d) {
			t.Errorf("Failed(%d) on a 4-disk array should be false", d)
		}
	}
	if err := a.Fail(3); err != nil {
		t.Fatalf("Fail(3): %v", err)
	}
	if !a.Failed(3) {
		t.Fatal("disk 3 should be failed")
	}
	if err := a.Heal(3); err != nil {
		t.Fatalf("Heal(3): %v", err)
	}
	if a.Failed(3) {
		t.Fatal("disk 3 should be healed")
	}
}

// Every failed disk must be reported, not just the lowest-numbered one:
// callers route around failures per disk.
func TestReadBatchAggregatesAllFailures(t *testing.T) {
	a := NewArray(4, Params{})
	a.Fail(0)
	a.Fail(2)
	_, err := a.ReadBatch([]PageRef{
		{Disk: 0, Blocks: 1},
		{Disk: 1, Blocks: 1},
		{Disk: 2, Blocks: 1},
	})
	if err == nil {
		t.Fatal("batch touching two failed disks must error")
	}
	if !errors.Is(err, ErrDiskFailed) {
		t.Fatalf("error %v does not wrap ErrDiskFailed", err)
	}
	msg := err.Error()
	for _, want := range []string{"disk 0", "disk 2"} {
		if !strings.Contains(msg, want) {
			t.Errorf("aggregated error %q does not name %s", msg, want)
		}
	}
	if strings.Contains(msg, "disk 1") {
		t.Errorf("aggregated error %q blames the healthy disk 1", msg)
	}
}

func TestSetFaultsValidation(t *testing.T) {
	a := NewArray(2, Params{})
	for _, m := range []FaultModel{
		{TransientProb: -0.1},
		{TransientProb: 1.5},
		{SpikeProb: 2},
		{MaxRetries: -1},
		{RetryBackoff: -time.Millisecond},
		{SpikeLatency: -time.Millisecond},
	} {
		if err := a.SetFaults(m); err == nil {
			t.Errorf("SetFaults(%+v) should error", m)
		}
	}
	if err := a.SetFaults(FaultModel{TransientProb: 0.5, MaxRetries: 3}); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	if got := a.Faults().TransientProb; got != 0.5 {
		t.Fatalf("Faults().TransientProb = %v", got)
	}
	// The zero model clears fault injection.
	if err := a.SetFaults(FaultModel{}); err != nil {
		t.Fatal(err)
	}
	if got := a.Faults(); got != (FaultModel{}) {
		t.Fatalf("faults not cleared: %+v", got)
	}
}

// Moderate transient error rates are absorbed by the retry budget: the
// batch succeeds, retries are counted, and the retried reads cost extra
// simulated time.
func TestTransientFaultsRetried(t *testing.T) {
	p := Params{Seek: 10 * time.Millisecond, Transfer: time.Millisecond}
	a := NewArray(2, p)
	refs := make([]PageRef, 64)
	for i := range refs {
		refs[i] = PageRef{Disk: i % 2, Blocks: 1}
	}
	clean, err := a.ReadBatch(refs)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SetFaults(FaultModel{
		TransientProb: 0.3,
		MaxRetries:    16,
		RetryBackoff:  time.Millisecond,
		Seed:          1,
	}); err != nil {
		t.Fatal(err)
	}
	faulty, err := a.ReadBatch(refs)
	if err != nil {
		t.Fatalf("retry budget should absorb a 30%% transient rate: %v", err)
	}
	if faulty.Retries == 0 {
		t.Fatal("expected retries at a 30% transient rate over 64 reads")
	}
	if faulty.Total != clean.Total {
		t.Fatalf("retried batch read %d blocks, want %d", faulty.Total, clean.Total)
	}
	if faulty.ParallelTime <= clean.ParallelTime {
		t.Fatalf("retries cost no time: faulty %v vs clean %v", faulty.ParallelTime, clean.ParallelTime)
	}
}

// A read that keeps failing past the retry budget surfaces as
// ErrTransient, with the healthy disks' accounting intact.
func TestTransientFaultsExhaustRetries(t *testing.T) {
	a := NewArray(2, Params{})
	if err := a.SetFaults(FaultModel{TransientProb: 1, MaxRetries: 2, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	res, err := a.ReadBatch([]PageRef{{Disk: 0, Blocks: 1}, {Disk: 1, Blocks: 1}})
	if err == nil {
		t.Fatal("a certain transient fault must exhaust the retries")
	}
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("error %v does not wrap ErrTransient", err)
	}
	if errors.Is(err, ErrDiskFailed) {
		t.Fatalf("transient exhaustion %v must not masquerade as a dead disk", err)
	}
	if res.PerDisk[0] != 0 || res.PerDisk[1] != 0 {
		t.Fatalf("gave-up disks must contribute no accounting: %v", res.PerDisk)
	}
}

// Latency spikes are charged deterministically when certain.
func TestLatencySpikes(t *testing.T) {
	p := Params{Seek: 10 * time.Millisecond, Transfer: time.Millisecond}
	a := NewArray(1, p)
	if err := a.SetFaults(FaultModel{SpikeProb: 1, SpikeLatency: 5 * time.Millisecond, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	res, err := a.ReadBatch([]PageRef{
		{Disk: 0, Blocks: 1},
		{Disk: 0, Blocks: 1},
		{Disk: 0, Blocks: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 3 reads at 11ms each, plus 3 certain spikes of 5ms.
	if want := 48 * time.Millisecond; res.ParallelTime != want {
		t.Fatalf("ParallelTime = %v, want %v", res.ParallelTime, want)
	}
}

// The same seed must reproduce the same faults, retries, and times.
func TestFaultDeterminism(t *testing.T) {
	run := func() BatchResult {
		a := NewArray(3, Params{Seek: time.Millisecond, Transfer: time.Millisecond})
		if err := a.SetFaults(FaultModel{
			TransientProb: 0.4,
			MaxRetries:    20,
			RetryBackoff:  time.Millisecond,
			SpikeProb:     0.2,
			SpikeLatency:  4 * time.Millisecond,
			Seed:          42,
		}); err != nil {
			t.Fatal(err)
		}
		refs := make([]PageRef, 90)
		for i := range refs {
			refs[i] = PageRef{Disk: i % 3, Blocks: 1 + i%2}
		}
		res, err := a.ReadBatch(refs)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Fatalf("seeded runs differ:\n%+v\n%+v", a, b)
	}
}

// Fault injection under concurrent batches must be race-free and every
// batch must either succeed or report a classified error.
func TestConcurrentFaultyBatches(t *testing.T) {
	a := NewArray(4, Params{})
	if err := a.SetFaults(FaultModel{TransientProb: 0.3, MaxRetries: 2, Seed: 11}); err != nil {
		t.Fatal(err)
	}
	refs := make([]PageRef, 16)
	for i := range refs {
		refs[i] = PageRef{Disk: i % 4, Blocks: 1}
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, err := a.ReadBatch(refs); err != nil && !errors.Is(err, ErrTransient) {
					t.Errorf("unexpected batch error: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
