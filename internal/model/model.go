// Package model implements the analytic cost model the paper builds on
// ([BBKK 97], and Eq. 1 / Figure 5 of the paper itself): the probability
// mass near the data-space surface, the expected nearest-neighbor
// distance in high dimensions, and the expected number of page accesses
// of a nearest-neighbor query — the quantities that motivate
// parallelizing the search in the first place.
package model

import (
	"fmt"
	"math"
)

// SurfaceProbability returns the probability that a uniformly distributed
// point in [0,1]^d lies within eps of the (d-1)-dimensional surface of the
// data space (Eq. 1): 1 - (1-2·eps)^d. For eps = 0.1 this exceeds 97% at
// d = 16 — the paper's Figure 5.
func SurfaceProbability(d int, eps float64) float64 {
	if d < 1 {
		panic(fmt.Sprintf("model: dimension %d", d))
	}
	if eps < 0 || eps > 0.5 {
		panic(fmt.Sprintf("model: eps %v outside [0, 0.5]", eps))
	}
	return 1 - math.Pow(1-2*eps, float64(d))
}

// UnitBallVolume returns the volume of the d-dimensional unit ball,
// π^(d/2) / Γ(d/2 + 1). UnitBallVolume(0) is 1.
func UnitBallVolume(d int) float64 {
	if d < 0 {
		panic(fmt.Sprintf("model: dimension %d", d))
	}
	return math.Pow(math.Pi, float64(d)/2) / math.Gamma(float64(d)/2+1)
}

// ExpectedNNDist returns the expected distance from a query point to its
// k-th nearest neighbor among n uniform points in [0,1]^d, from the
// sphere-volume argument of [BBKK 97]: the NN-sphere of radius r contains
// k points in expectation when n · Vol_d(r) = k, i.e.
//
//	r = ( k / (n · UnitBallVolume(d)) )^(1/d).
//
// The estimate ignores boundary effects (it underestimates r for large d,
// where most of the data space is boundary), but captures the paper's
// core observation: r grows rapidly with d.
func ExpectedNNDist(n, d, k int) float64 {
	if n < 1 || k < 1 || k > n {
		panic(fmt.Sprintf("model: n=%d k=%d", n, k))
	}
	if d < 1 {
		panic(fmt.Sprintf("model: dimension %d", d))
	}
	return math.Pow(float64(k)/(float64(n)*UnitBallVolume(d)), 1/float64(d))
}

// ExpectedPageAccesses estimates how many data pages a k-NN query on n
// uniform points in [0,1]^d must read when pages hold up to c points and
// partition the space into cubes of side (c/n)^(1/d): the number of pages
// whose cell intersects the NN-sphere equals the total number of pages
// times the Minkowski-sum volume of a cell and the sphere,
//
//	accesses = (n/c) · Σ_{i=0..d} C(d,i) · a^(d-i) · V_i · r^i,
//
// clamped to the page count. V_i is the i-dimensional unit-ball volume
// and a the page side. This is the Friedman/BBKK-style estimate behind
// the paper's Figure 1: the count explodes with d.
func ExpectedPageAccesses(n, d, k, c int) float64 {
	if c < 1 {
		panic(fmt.Sprintf("model: page capacity %d", c))
	}
	r := ExpectedNNDist(n, d, k)
	pages := float64(n) / float64(c)
	if pages < 1 {
		pages = 1
	}
	a := math.Pow(float64(c)/float64(n), 1/float64(d))
	if a > 1 {
		a = 1
	}

	// Minkowski sum volume of a cube of side a and a ball of radius r.
	vol := 0.0
	binom := 1.0 // C(d, i), updated incrementally
	for i := 0; i <= d; i++ {
		vol += binom * math.Pow(a, float64(d-i)) * UnitBallVolume(i) * math.Pow(r, float64(i))
		binom = binom * float64(d-i) / float64(i+1)
	}
	accesses := pages * vol
	if accesses > pages {
		return pages
	}
	if accesses < 1 {
		return 1
	}
	return accesses
}

// MaxSpeedup returns the best possible speed-up of a parallel
// nearest-neighbor search with n disks when the query must read p pages:
// min(n, p) — with fewer pages than disks, some disks idle. The paper's
// declustering aims to reach this bound.
func MaxSpeedup(n int, p float64) float64 {
	if n < 1 {
		panic(fmt.Sprintf("model: %d disks", n))
	}
	if p < float64(n) {
		return p
	}
	return float64(n)
}
