package model

import (
	"math"
	"math/rand"
	"testing"
)

func TestSurfaceProbabilityKnownValues(t *testing.T) {
	// Eq. 1 with eps = 0.1: p(d) = 1 - 0.8^d.
	tests := []struct {
		d    int
		want float64
	}{
		{1, 0.2},
		{2, 0.36},
		{16, 1 - math.Pow(0.8, 16)}, // ≈ 0.9719
	}
	for _, tt := range tests {
		if got := SurfaceProbability(tt.d, 0.1); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("p(%d) = %v, want %v", tt.d, got, tt.want)
		}
	}
	// The paper's claim: "more than 97% for a dimensionality of 16".
	if p := SurfaceProbability(16, 0.1); p < 0.97 {
		t.Errorf("p(16) = %v, paper says > 0.97", p)
	}
}

func TestSurfaceProbabilityMonotone(t *testing.T) {
	prev := 0.0
	for d := 1; d <= 100; d++ {
		p := SurfaceProbability(d, 0.1)
		if p <= prev || p > 1 {
			t.Fatalf("p(%d) = %v not increasing in (0,1]", d, p)
		}
		prev = p
	}
}

func TestSurfaceProbabilityMonteCarlo(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, d := range []int{2, 8, 16} {
		hits := 0
		const trials = 20000
		for i := 0; i < trials; i++ {
			near := false
			for j := 0; j < d; j++ {
				x := r.Float64()
				if x < 0.1 || x > 0.9 {
					near = true
				}
			}
			if near {
				hits++
			}
		}
		got := float64(hits) / trials
		want := SurfaceProbability(d, 0.1)
		if math.Abs(got-want) > 0.02 {
			t.Errorf("d=%d: Monte Carlo %v vs analytic %v", d, got, want)
		}
	}
}

func TestSurfaceProbabilityValidation(t *testing.T) {
	for _, f := range []func(){
		func() { SurfaceProbability(0, 0.1) },
		func() { SurfaceProbability(2, -0.1) },
		func() { SurfaceProbability(2, 0.6) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestUnitBallVolumeKnownValues(t *testing.T) {
	tests := []struct {
		d    int
		want float64
	}{
		{0, 1},
		{1, 2},
		{2, math.Pi},
		{3, 4 * math.Pi / 3},
	}
	for _, tt := range tests {
		if got := UnitBallVolume(tt.d); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("V(%d) = %v, want %v", tt.d, got, tt.want)
		}
	}
	// Ball volume peaks near d=5 and then decays toward zero.
	if UnitBallVolume(5) < UnitBallVolume(20) {
		t.Error("ball volume should decay for large d")
	}
}

func TestExpectedNNDistGrowsWithDimension(t *testing.T) {
	prev := 0.0
	for _, d := range []int{2, 4, 8, 16, 32} {
		r := ExpectedNNDist(100000, d, 1)
		if r <= prev {
			t.Fatalf("r(%d) = %v did not grow", d, r)
		}
		prev = r
	}
	// The paper's core fact: at high d the NN-sphere radius is of the
	// order of the data-space extent even for large n.
	if r := ExpectedNNDist(100000, 16, 1); r < 0.3 {
		t.Errorf("r(16) = %v unexpectedly small", r)
	}
}

func TestExpectedNNDistMonteCarlo(t *testing.T) {
	// In d=2 the estimate is accurate (little boundary effect).
	r := rand.New(rand.NewSource(2))
	const n, trials = 5000, 200
	pts := make([][2]float64, n)
	for i := range pts {
		pts[i] = [2]float64{r.Float64(), r.Float64()}
	}
	sum := 0.0
	for trial := 0; trial < trials; trial++ {
		q := [2]float64{0.2 + 0.6*r.Float64(), 0.2 + 0.6*r.Float64()}
		best := math.Inf(1)
		for _, p := range pts {
			d := math.Hypot(q[0]-p[0], q[1]-p[1])
			if d < best {
				best = d
			}
		}
		sum += best
	}
	got := sum / trials
	want := ExpectedNNDist(n, 2, 1)
	if math.Abs(got-want)/want > 0.3 {
		t.Errorf("measured mean NN dist %v vs model %v", got, want)
	}
}

func TestExpectedNNDistKGrows(t *testing.T) {
	r1 := ExpectedNNDist(10000, 8, 1)
	r10 := ExpectedNNDist(10000, 8, 10)
	if r10 <= r1 {
		t.Errorf("r_10 %v should exceed r_1 %v", r10, r1)
	}
}

func TestExpectedPageAccesses(t *testing.T) {
	// Page accesses explode with dimension (Figure 1's shape).
	prev := 0.0
	for _, d := range []int{2, 4, 8, 16} {
		a := ExpectedPageAccesses(50000, d, 1, 30)
		if a < prev {
			t.Fatalf("accesses fell from %v to %v at d=%d", prev, a, d)
		}
		prev = a
	}
	// Never more than the page count, never less than 1.
	if a := ExpectedPageAccesses(50000, 16, 1, 30); a > 50000.0/30+1 {
		t.Errorf("accesses %v exceed page count", a)
	}
	if a := ExpectedPageAccesses(100, 2, 1, 30); a < 1 {
		t.Errorf("accesses %v below 1", a)
	}
}

func TestValidationPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"nn n":    func() { ExpectedNNDist(0, 2, 1) },
		"nn k":    func() { ExpectedNNDist(10, 2, 0) },
		"nn k>n":  func() { ExpectedNNDist(10, 2, 11) },
		"nn d":    func() { ExpectedNNDist(10, 0, 1) },
		"pages c": func() { ExpectedPageAccesses(10, 2, 1, 0) },
		"ball d":  func() { UnitBallVolume(-1) },
		"speed n": func() { MaxSpeedup(0, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestMaxSpeedup(t *testing.T) {
	if got := MaxSpeedup(16, 100); got != 16 {
		t.Errorf("MaxSpeedup = %v", got)
	}
	if got := MaxSpeedup(16, 3); got != 3 {
		t.Errorf("MaxSpeedup with few pages = %v", got)
	}
}

// Cross-check the Minkowski-sum binomial recursion against a direct
// computation for a small case.
func TestMinkowskiBinomial(t *testing.T) {
	// d=2, a=0.5, r=0.1: vol = a^2 + 2·a·(2r)/... direct formula:
	// C(2,0)a²·V0 + C(2,1)a·V1·r + C(2,2)V2·r² with V0=1, V1=2, V2=π.
	a, r := 0.5, 0.1
	want := a*a + 2*a*2*r + math.Pi*r*r
	// Reconstruct via ExpectedPageAccesses: n/c = 4 pages of side 0.5
	// (n=4c). Pick c so that r matches? Simpler: inline the same loop.
	vol := 0.0
	binom := 1.0
	for i := 0; i <= 2; i++ {
		vol += binom * math.Pow(a, float64(2-i)) * UnitBallVolume(i) * math.Pow(r, float64(i))
		binom = binom * float64(2-i) / float64(i+1)
	}
	if math.Abs(vol-want) > 1e-12 {
		t.Errorf("Minkowski volume %v, want %v", vol, want)
	}
}
