// Package hilbert implements the d-dimensional Hilbert space-filling curve
// using Skilling's transpose algorithm (J. Skilling, "Programming the
// Hilbert curve", AIP Conf. Proc. 707, 2004).
//
// The curve underlies the Hilbert declustering baseline of Faloutsos and
// Bhagwat [FB 93] that the paper compares against: a grid cell
// (c_0, ..., c_{d-1}) is mapped to disk Hilbert(c_0, ..., c_{d-1}) mod n.
// For the binary quadrant grid of the paper the curve order is 1 (one bit
// per dimension), but the implementation supports arbitrary orders so the
// same package also serves finer grids and point mapping.
package hilbert

import "fmt"

// Curve is a Hilbert curve over a dim-dimensional grid with 2^order cells
// per dimension. The total index space is 2^(dim*order), which must fit in
// a uint64: dim*order <= 64.
type Curve struct {
	dim   int
	order int
}

// New returns a Hilbert curve for the given dimensionality and order.
func New(dim, order int) (*Curve, error) {
	switch {
	case dim < 1:
		return nil, fmt.Errorf("hilbert: dimension %d < 1", dim)
	case order < 1:
		return nil, fmt.Errorf("hilbert: order %d < 1", order)
	case dim*order > 64:
		return nil, fmt.Errorf("hilbert: dim*order = %d exceeds 64 bits", dim*order)
	}
	return &Curve{dim: dim, order: order}, nil
}

// MustNew is New that panics on error, for statically valid parameters.
func MustNew(dim, order int) *Curve {
	c, err := New(dim, order)
	if err != nil {
		panic(err)
	}
	return c
}

// Dim returns the dimensionality of the curve.
func (c *Curve) Dim() int { return c.dim }

// Order returns the order (bits per dimension) of the curve.
func (c *Curve) Order() int { return c.order }

// Size returns the number of cells along each dimension, 2^order.
func (c *Curve) Size() uint32 { return 1 << uint(c.order) }

// Length returns the total number of cells, 2^(dim*order).
func (c *Curve) Length() uint64 { return 1 << uint(c.dim*c.order) }

// Encode maps grid coordinates to the Hilbert index. Each coordinate must
// be < 2^order; Encode panics otherwise (out-of-grid coordinates are a
// programming error, like an out-of-range slice index).
func (c *Curve) Encode(coords []uint32) uint64 {
	if len(coords) != c.dim {
		panic(fmt.Sprintf("hilbert: Encode with %d coordinates on a %d-dimensional curve", len(coords), c.dim))
	}
	x := make([]uint32, c.dim)
	for i, v := range coords {
		if v >= c.Size() {
			panic(fmt.Sprintf("hilbert: coordinate %d = %d exceeds grid size %d", i, v, c.Size()))
		}
		x[i] = v
	}
	c.axesToTranspose(x)
	return c.interleave(x)
}

// Decode maps a Hilbert index back to grid coordinates. The index must be
// < Length().
func (c *Curve) Decode(h uint64) []uint32 {
	if c.dim*c.order < 64 && h >= c.Length() {
		panic(fmt.Sprintf("hilbert: index %d exceeds curve length %d", h, c.Length()))
	}
	x := c.deinterleave(h)
	c.transposeToAxes(x)
	return x
}

// axesToTranspose converts coordinates in place to the "transposed" Hilbert
// representation (Skilling's inverse undo + Gray encode).
func (c *Curve) axesToTranspose(x []uint32) {
	n := c.dim
	m := uint32(1) << uint(c.order-1)

	// Inverse undo.
	for q := m; q > 1; q >>= 1 {
		p := q - 1
		for i := 0; i < n; i++ {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}

	// Gray encode.
	for i := 1; i < n; i++ {
		x[i] ^= x[i-1]
	}
	var t uint32
	for q := m; q > 1; q >>= 1 {
		if x[n-1]&q != 0 {
			t ^= q - 1
		}
	}
	for i := 0; i < n; i++ {
		x[i] ^= t
	}
}

// transposeToAxes converts the transposed representation in place back to
// coordinates (Skilling's Gray decode + undo excess work).
func (c *Curve) transposeToAxes(x []uint32) {
	n := c.dim
	size := uint32(2) << uint(c.order-1)

	// Gray decode by H ^ (H/2).
	t := x[n-1] >> 1
	for i := n - 1; i > 0; i-- {
		x[i] ^= x[i-1]
	}
	x[0] ^= t

	// Undo excess work.
	for q := uint32(2); q != size; q <<= 1 {
		p := q - 1
		for i := n - 1; i >= 0; i-- {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
}

// interleave packs the transposed representation into a single index: bit
// j of x[i] (counting from the most significant, j = order-1 .. 0) becomes
// bit (j*dim + (dim-1-i)) of the result, i.e. the bits of H are distributed
// round-robin over the x[i], most significant first.
func (c *Curve) interleave(x []uint32) uint64 {
	var h uint64
	for j := c.order - 1; j >= 0; j-- {
		for i := 0; i < c.dim; i++ {
			h = h<<1 | uint64((x[i]>>uint(j))&1)
		}
	}
	return h
}

// deinterleave is the inverse of interleave.
func (c *Curve) deinterleave(h uint64) []uint32 {
	x := make([]uint32, c.dim)
	shift := c.dim*c.order - 1
	for j := c.order - 1; j >= 0; j-- {
		for i := 0; i < c.dim; i++ {
			bit := uint32(h>>uint(shift)) & 1
			x[i] |= bit << uint(j)
			shift--
		}
	}
	return x
}
