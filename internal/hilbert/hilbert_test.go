package hilbert

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	for _, tc := range []struct {
		dim, order int
		ok         bool
	}{
		{1, 1, true},
		{2, 16, true},
		{16, 4, true},
		{16, 1, true},
		{0, 1, false},
		{2, 0, false},
		{-1, 3, false},
		{2, -1, false},
		{33, 2, false}, // 66 bits
		{64, 1, true},
		{65, 1, false},
	} {
		_, err := New(tc.dim, tc.order)
		if (err == nil) != tc.ok {
			t.Errorf("New(%d, %d): err = %v, want ok=%v", tc.dim, tc.order, err, tc.ok)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew should panic on invalid parameters")
		}
	}()
	MustNew(0, 0)
}

func TestAccessors(t *testing.T) {
	c := MustNew(3, 4)
	if c.Dim() != 3 || c.Order() != 4 {
		t.Errorf("Dim/Order = %d/%d", c.Dim(), c.Order())
	}
	if c.Size() != 16 {
		t.Errorf("Size = %d, want 16", c.Size())
	}
	if c.Length() != 1<<12 {
		t.Errorf("Length = %d, want 4096", c.Length())
	}
}

func TestEncodePanicsOnBadInput(t *testing.T) {
	c := MustNew(2, 2)
	for _, coords := range [][]uint32{
		{0},       // wrong arity
		{0, 1, 2}, // wrong arity
		{4, 0},    // out of grid
		{0, 100},  // out of grid
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Encode(%v): expected panic", coords)
				}
			}()
			c.Encode(coords)
		}()
	}
}

func TestDecodePanicsOnBadIndex(t *testing.T) {
	c := MustNew(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("Decode past curve length should panic")
		}
	}()
	c.Decode(16)
}

func TestCurveStartsAtOrigin(t *testing.T) {
	for _, tc := range []struct{ dim, order int }{
		{1, 4}, {2, 1}, {2, 4}, {3, 2}, {16, 1}, {8, 2},
	} {
		c := MustNew(tc.dim, tc.order)
		coords := c.Decode(0)
		for i, v := range coords {
			if v != 0 {
				t.Errorf("dim=%d order=%d: Decode(0)[%d] = %d, want 0", tc.dim, tc.order, i, v)
			}
		}
		if h := c.Encode(make([]uint32, tc.dim)); h != 0 {
			t.Errorf("dim=%d order=%d: Encode(origin) = %d, want 0", tc.dim, tc.order, h)
		}
	}
}

// The defining property of the Hilbert curve: consecutive indices map to
// grid cells that differ by exactly 1 in exactly one coordinate.
func TestUnitStepAdjacency(t *testing.T) {
	for _, tc := range []struct{ dim, order int }{
		{1, 6}, {2, 1}, {2, 4}, {3, 3}, {4, 2}, {5, 2}, {16, 1},
	} {
		c := MustNew(tc.dim, tc.order)
		prev := c.Decode(0)
		for h := uint64(1); h < c.Length(); h++ {
			cur := c.Decode(h)
			diff := 0
			for i := range cur {
				d := int64(cur[i]) - int64(prev[i])
				if d != 0 {
					diff++
					if d != 1 && d != -1 {
						t.Fatalf("dim=%d order=%d: step %d -> %d moves by %d in dim %d",
							tc.dim, tc.order, h-1, h, d, i)
					}
				}
			}
			if diff != 1 {
				t.Fatalf("dim=%d order=%d: step %d -> %d changes %d coordinates, want 1",
					tc.dim, tc.order, h-1, h, diff)
			}
			prev = cur
		}
	}
}

// The curve must be a bijection: decoding every index yields every grid
// cell exactly once.
func TestBijection(t *testing.T) {
	for _, tc := range []struct{ dim, order int }{
		{2, 3}, {3, 2}, {4, 2}, {10, 1}, {16, 1},
	} {
		c := MustNew(tc.dim, tc.order)
		seen := make(map[string]bool, c.Length())
		for h := uint64(0); h < c.Length(); h++ {
			coords := c.Decode(h)
			key := ""
			for _, v := range coords {
				key += string(rune(v)) + ","
			}
			if seen[key] {
				t.Fatalf("dim=%d order=%d: cell %v visited twice", tc.dim, tc.order, coords)
			}
			seen[key] = true
		}
		if uint64(len(seen)) != c.Length() {
			t.Fatalf("dim=%d order=%d: visited %d cells, want %d", tc.dim, tc.order, len(seen), c.Length())
		}
	}
}

func TestEncodeDecodeRoundTripExhaustive(t *testing.T) {
	for _, tc := range []struct{ dim, order int }{
		{1, 8}, {2, 4}, {3, 3}, {4, 2}, {16, 1},
	} {
		c := MustNew(tc.dim, tc.order)
		for h := uint64(0); h < c.Length(); h++ {
			if got := c.Encode(c.Decode(h)); got != h {
				t.Fatalf("dim=%d order=%d: Encode(Decode(%d)) = %d", tc.dim, tc.order, h, got)
			}
		}
	}
}

func TestEncodeDecodeRoundTripRandom(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		dim := 1 + r.Intn(16)
		maxOrder := 64 / dim
		if maxOrder > 16 {
			maxOrder = 16
		}
		order := 1 + r.Intn(maxOrder)
		c := MustNew(dim, order)
		coords := make([]uint32, dim)
		for j := range coords {
			coords[j] = uint32(r.Intn(int(c.Size())))
		}
		got := c.Decode(c.Encode(coords))
		for j := range coords {
			if got[j] != coords[j] {
				t.Fatalf("dim=%d order=%d: Decode(Encode(%v)) = %v", dim, order, coords, got)
			}
		}
	}
}

// Property-based round trip with testing/quick on a fixed curve.
func TestQuickRoundTrip(t *testing.T) {
	c := MustNew(4, 8)
	f := func(a, b, cc, d uint16) bool {
		coords := []uint32{
			uint32(a) % c.Size(), uint32(b) % c.Size(),
			uint32(cc) % c.Size(), uint32(d) % c.Size(),
		}
		got := c.Decode(c.Encode(coords))
		for i := range coords {
			if got[i] != coords[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Classic 2-d, order-1 curve: the 4 quadrants are visited in a U shape
// (each consecutive pair is a direct neighbor). With Skilling's convention
// the visit order is (0,0), (1,0)... verify only the structural property
// plus that all 4 cells appear.
func TestTwoDimOrderOne(t *testing.T) {
	c := MustNew(2, 1)
	cells := make(map[[2]uint32]uint64)
	for h := uint64(0); h < 4; h++ {
		xy := c.Decode(h)
		cells[[2]uint32{xy[0], xy[1]}] = h
	}
	if len(cells) != 4 {
		t.Fatalf("expected all 4 quadrants, got %v", cells)
	}
}

// One-dimensional Hilbert curve degenerates to the identity.
func TestOneDimIsIdentity(t *testing.T) {
	c := MustNew(1, 10)
	for h := uint64(0); h < c.Length(); h += 37 {
		if got := c.Decode(h)[0]; uint64(got) != h {
			t.Fatalf("Decode(%d) = %d in 1-d", h, got)
		}
	}
}

func BenchmarkEncode16D(b *testing.B) {
	c := MustNew(16, 1)
	coords := make([]uint32, 16)
	for i := range coords {
		coords[i] = uint32(i % 2)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Encode(coords)
	}
}

func BenchmarkDecode2D16(b *testing.B) {
	c := MustNew(2, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Decode(uint64(i) % c.Length())
	}
}

// Fuzz the curve: any in-range coordinates must round-trip through
// Encode/Decode, for every dimension/order combination derived from the
// fuzz input.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint8(2), uint8(4), uint64(123))
	f.Add(uint8(16), uint8(1), uint64(0xFFFF))
	f.Fuzz(func(t *testing.T, dRaw, oRaw uint8, coordBits uint64) {
		dim := 1 + int(dRaw)%16
		maxOrder := 64 / dim
		if maxOrder > 16 {
			maxOrder = 16
		}
		order := 1 + int(oRaw)%maxOrder
		c := MustNew(dim, order)
		coords := make([]uint32, dim)
		for i := range coords {
			coords[i] = uint32(coordBits>>(uint(i)*4)) % c.Size()
		}
		got := c.Decode(c.Encode(coords))
		for i := range coords {
			if got[i] != coords[i] {
				t.Fatalf("dim=%d order=%d: %v -> %v", dim, order, coords, got)
			}
		}
	})
}
