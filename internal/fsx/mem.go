package fsx

import (
	"errors"
	"fmt"
	"io/fs"
	"sort"
	"sync"
)

// ErrCrashed is returned by every operation on a Mem whose crash
// budget is exhausted: the simulated process is dead, and nothing it
// attempts after the crash point reaches storage.
var ErrCrashed = errors.New("fsx: simulated crash")

// ErrInjected is the injected I/O error of the one-shot write and sync
// failpoints — a storage error the process survives (unlike ErrCrashed).
var ErrInjected = errors.New("fsx: injected I/O error")

// memFile is one file's content: data is everything written, synced
// the prefix guaranteed to survive a crash. Writes beyond synced are
// volatile until the next Sync. entrySynced models the directory
// entry: a freshly created file's name is volatile — erased by a
// crash together with its content, even if that content was fsynced —
// until a SyncDir (or Rename, which syncs the directory) makes it
// durable. This mirrors POSIX, where fsync of a file does not commit
// its directory entry.
type memFile struct {
	data        []byte
	synced      int
	entrySynced bool
}

// Mem is an in-memory FS with durability modeling and failpoints. The
// zero value is not usable; construct with NewMem. All methods are
// safe for concurrent use.
//
// Failpoints (all byte offsets are global — cumulative bytes written
// across all files, the "injected write offset" of the chaos battery):
//
//   - CrashAfter(n): the write crossing global offset n writes only
//     the prefix up to n, then every later operation fails with
//     ErrCrashed. This is process death at an arbitrary write offset;
//     reopen from DurableView (pessimistic: only fsynced bytes
//     survived) or FlushedView (optimistic: the kernel pushed
//     everything out before dying).
//   - FailWriteAt(n): one-shot short write + ErrInjected at global
//     offset n; the process lives and later operations succeed — this
//     exercises the WAL writer's self-healing truncation.
//   - FailSyncs(k): the next k Sync calls fail with ErrInjected —
//     the fsyncgate path (a writer must treat a failed fsync as fatal
//     for the log, never retry it silently).
type Mem struct {
	mu    sync.Mutex
	files map[string]*memFile

	written    int64   // global bytes successfully written
	boundaries []int64 // global offset at the start of each Write call

	crashAt   int64 // global offset at which the process dies; -1 = never
	crashed   bool
	failAt    int64 // one-shot write-error offset; -1 = disabled
	syncFails int
}

// NewMem returns an empty in-memory filesystem with no failpoints.
func NewMem() *Mem {
	return &Mem{files: make(map[string]*memFile), crashAt: -1, failAt: -1}
}

// CrashAfter arms the crash failpoint: the write crossing global byte
// offset n is cut short at n and everything after fails with
// ErrCrashed. CrashAfter(0) with nothing written yet kills the next
// write outright.
func (m *Mem) CrashAfter(n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.crashAt = n
}

// FailWriteAt arms the one-shot write-error failpoint at global byte
// offset n.
func (m *Mem) FailWriteAt(n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.failAt = n
}

// FailSyncs makes the next k Sync calls fail with ErrInjected.
func (m *Mem) FailSyncs(k int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.syncFails = k
}

// TotalWritten returns the global bytes written so far.
func (m *Mem) TotalWritten() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.written
}

// WriteBoundaries returns the global offsets at which each Write call
// started — the natural crash points for the chaos battery to sweep
// (plus intra-write offsets of its choosing).
func (m *Mem) WriteBoundaries() []int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]int64, len(m.boundaries))
	copy(out, m.boundaries)
	return out
}

// Crashed reports whether the crash failpoint has fired.
func (m *Mem) Crashed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.crashed
}

// DurableView returns the filesystem a reboot after the crash would
// see under the pessimistic storage model: every file truncated to its
// last fsynced length, and files whose directory entry was never
// covered by a SyncDir (or Rename) gone entirely — on a real
// filesystem a created name is not durable until its directory is
// fsynced, no matter how much of the content was. Removes and renames
// that happened before the crash are modeled as journaled.
func (m *Mem) DurableView() *Mem {
	return m.view(func(f *memFile) int { return f.synced }, true)
}

// FlushedView returns the optimistic post-crash filesystem: the kernel
// happened to flush every written byte — and every directory entry —
// before the crash. Recovery must be correct under both extremes (and,
// by the prefix structure of the log, under anything between them).
func (m *Mem) FlushedView() *Mem {
	return m.view(func(f *memFile) int { return len(f.data) }, false)
}

func (m *Mem) view(keep func(*memFile) int, dropVolatileEntries bool) *Mem {
	m.mu.Lock()
	defer m.mu.Unlock()
	v := NewMem()
	for name, f := range m.files {
		if dropVolatileEntries && !f.entrySynced {
			continue
		}
		n := keep(f)
		data := make([]byte, n)
		copy(data, f.data[:n])
		v.files[name] = &memFile{data: data, synced: n, entrySynced: true}
	}
	return v
}

// checkAlive returns ErrCrashed once the crash failpoint has fired.
// Caller holds mu.
func (m *Mem) checkAlive() error {
	if m.crashed {
		return ErrCrashed
	}
	return nil
}

type memHandle struct {
	m    *Mem
	name string
}

// file resolves the handle's memFile. Caller holds m.mu. A file
// removed or renamed away under an open handle is a usage bug in the
// durability layer, so it fails loudly.
func (h *memHandle) file() (*memFile, error) {
	f, ok := h.m.files[h.name]
	if !ok {
		return nil, fmt.Errorf("fsx: write through stale handle %q: %w", h.name, fs.ErrNotExist)
	}
	return f, nil
}

func (h *memHandle) Write(p []byte) (int, error) {
	m := h.m
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkAlive(); err != nil {
		return 0, err
	}
	f, err := h.file()
	if err != nil {
		return 0, err
	}
	m.boundaries = append(m.boundaries, m.written)
	n := len(p)
	var failErr error

	// One-shot injected error: keep the prefix up to the armed offset.
	if m.failAt >= 0 && m.written+int64(n) > m.failAt {
		if cut := m.failAt - m.written; cut < int64(n) {
			if cut < 0 {
				cut = 0
			}
			n = int(cut)
			failErr = ErrInjected
			m.failAt = -1
		}
	}
	// Crash: keep the prefix up to the crash offset, then die.
	if m.crashAt >= 0 && m.written+int64(n) > m.crashAt {
		if cut := m.crashAt - m.written; cut < int64(n) {
			if cut < 0 {
				cut = 0
			}
			n = int(cut)
			failErr = ErrCrashed
			m.crashed = true
		}
	}
	f.data = append(f.data, p[:n]...)
	m.written += int64(n)
	if failErr != nil {
		return n, failErr
	}
	return n, nil
}

func (h *memHandle) Sync() error {
	m := h.m
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkAlive(); err != nil {
		return err
	}
	if m.syncFails > 0 {
		m.syncFails--
		return ErrInjected
	}
	f, err := h.file()
	if err != nil {
		return err
	}
	f.synced = len(f.data)
	return nil
}

func (h *memHandle) Truncate(size int64) error {
	m := h.m
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkAlive(); err != nil {
		return err
	}
	f, err := h.file()
	if err != nil {
		return err
	}
	if size < 0 || size > int64(len(f.data)) {
		return fmt.Errorf("fsx: truncating %q to %d bytes (have %d)", h.name, size, len(f.data))
	}
	f.data = f.data[:size]
	if f.synced > int(size) {
		f.synced = int(size)
	}
	return nil
}

func (h *memHandle) Size() (int64, error) {
	m := h.m
	m.mu.Lock()
	defer m.mu.Unlock()
	f, err := h.file()
	if err != nil {
		return 0, err
	}
	return int64(len(f.data)), nil
}

func (h *memHandle) Close() error { return nil }

// Create implements FS. A freshly created name is volatile until
// SyncDir (an existing name stays as durable as it already was).
func (m *Mem) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkAlive(); err != nil {
		return nil, err
	}
	prior, existed := m.files[name]
	m.files[name] = &memFile{entrySynced: existed && prior.entrySynced}
	return &memHandle{m: m, name: name}, nil
}

// Append implements FS. Like Create, a name Append brings into
// existence is volatile until SyncDir.
func (m *Mem) Append(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkAlive(); err != nil {
		return nil, err
	}
	if _, ok := m.files[name]; !ok {
		m.files[name] = &memFile{}
	}
	return &memHandle{m: m, name: name}, nil
}

// ReadFile implements FS.
func (m *Mem) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkAlive(); err != nil {
		return nil, err
	}
	f, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("fsx: %q: %w", name, fs.ErrNotExist)
	}
	out := make([]byte, len(f.data))
	copy(out, f.data)
	return out, nil
}

// Rename implements FS. Per the FS contract the rename fsyncs the
// directory, which makes ALL pending directory entries durable, not
// just the renamed one — exactly what a real directory fsync does.
func (m *Mem) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkAlive(); err != nil {
		return err
	}
	f, ok := m.files[oldname]
	if !ok {
		return fmt.Errorf("fsx: renaming %q: %w", oldname, fs.ErrNotExist)
	}
	delete(m.files, oldname)
	m.files[newname] = f
	m.syncEntriesLocked()
	return nil
}

// Remove implements FS.
func (m *Mem) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkAlive(); err != nil {
		return err
	}
	if _, ok := m.files[name]; !ok {
		return fmt.Errorf("fsx: removing %q: %w", name, fs.ErrNotExist)
	}
	delete(m.files, name)
	return nil
}

// SyncDir implements FS: every current directory entry becomes
// durable.
func (m *Mem) SyncDir() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkAlive(); err != nil {
		return err
	}
	m.syncEntriesLocked()
	return nil
}

// syncEntriesLocked marks all directory entries durable. Caller holds
// mu.
func (m *Mem) syncEntriesLocked() {
	for _, f := range m.files {
		f.entrySynced = true
	}
}

// List implements FS.
func (m *Mem) List() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkAlive(); err != nil {
		return nil, err
	}
	names := make([]string, 0, len(m.files))
	for name := range m.files {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}
