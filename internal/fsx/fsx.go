// Package fsx is the storage abstraction of the durability layer: a
// minimal flat-namespace filesystem interface with two implementations
// — OS (a directory on the real filesystem) and Mem (an in-memory
// filesystem that models durability and injects storage faults).
//
// Mem is the failpoint layer the crash-recovery chaos battery runs on.
// It extends the engine's fault-injection philosophy (internal/disk
// transient read faults, fault.go) from simulated disk reads to real
// file I/O: every write distinguishes volatile bytes (written but not
// fsynced) from durable bytes (covered by a Sync), so a test can kill
// the "process" at any injected write offset and reopen the index from
// exactly what a real crash would have left behind — the durable
// prefix, or any longer flushed prefix the kernel happened to push out.
//
// The interface is deliberately flat (no subdirectories): the WAL and
// snapshot files of one index live in one directory, and keeping the
// namespace flat keeps the crash model honest — there is no rename
// across directories to reason about.
package fsx

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
)

// File is an open file handle. Writers append (handles returned by
// Create and Append are positioned at the end and never seek);
// Truncate discards a corrupt or torn tail before appending resumes.
type File interface {
	// Write appends p. Short writes return n < len(p) and an error.
	Write(p []byte) (int, error)
	// Sync makes every written byte durable (survives Mem's crash).
	Sync() error
	// Truncate cuts the file to size bytes.
	Truncate(size int64) error
	// Size returns the current file length.
	Size() (int64, error)
	// Close releases the handle. Close does NOT imply Sync.
	Close() error
}

// FS is the flat filesystem the durability layer runs on.
type FS interface {
	// Create opens name for appending, truncating any existing content.
	Create(name string) (File, error)
	// Append opens name for appending, creating it when missing.
	Append(name string) (File, error)
	// ReadFile returns the full content of name.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newname with oldname's content.
	Rename(oldname, newname string) error
	// Remove deletes name; removing a missing file is an error
	// satisfying errors.Is(err, fs.ErrNotExist).
	Remove(name string) error
	// List returns the sorted names of all files.
	List() ([]string, error)
	// SyncDir makes the directory's metadata durable: file creations
	// are not guaranteed to survive a crash until a SyncDir (or a
	// Rename, which syncs the directory itself). Fsyncing a file's
	// content does NOT make its directory entry durable — a writer
	// must SyncDir after creating a file and before acknowledging
	// anything written to it.
	SyncDir() error
}

// OS is an FS over one real directory. The directory must exist.
type OS struct {
	// Dir is the root directory; all names are relative to it.
	Dir string
}

// NewOS returns an FS over dir, creating the directory when missing.
func NewOS(dir string) (*OS, error) {
	if dir == "" {
		return nil, fmt.Errorf("fsx: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fsx: creating %s: %w", dir, err)
	}
	return &OS{Dir: dir}, nil
}

// path resolves a flat name, rejecting anything that would escape Dir.
func (o *OS) path(name string) (string, error) {
	if name == "" || name != filepath.Base(name) {
		return "", fmt.Errorf("fsx: invalid file name %q", name)
	}
	return filepath.Join(o.Dir, name), nil
}

type osFile struct{ f *os.File }

func (f *osFile) Write(p []byte) (int, error) { return f.f.Write(p) }
func (f *osFile) Sync() error                 { return f.f.Sync() }
func (f *osFile) Truncate(size int64) error {
	if err := f.f.Truncate(size); err != nil {
		return err
	}
	// The handle appends via O_APPEND, so no seek-back is needed.
	return nil
}
func (f *osFile) Size() (int64, error) {
	st, err := f.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}
func (f *osFile) Close() error { return f.f.Close() }

// Create implements FS.
func (o *OS) Create(name string) (File, error) {
	p, err := o.path(name)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(p, os.O_CREATE|os.O_TRUNC|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &osFile{f: f}, nil
}

// Append implements FS.
func (o *OS) Append(name string) (File, error) {
	p, err := o.path(name)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(p, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &osFile{f: f}, nil
}

// ReadFile implements FS.
func (o *OS) ReadFile(name string) ([]byte, error) {
	p, err := o.path(name)
	if err != nil {
		return nil, err
	}
	return os.ReadFile(p)
}

// Rename implements FS. The destination directory is fsynced after the
// rename so the new name itself is durable — the rename is the commit
// point of a snapshot rotation.
func (o *OS) Rename(oldname, newname string) error {
	po, err := o.path(oldname)
	if err != nil {
		return err
	}
	pn, err := o.path(newname)
	if err != nil {
		return err
	}
	if err := os.Rename(po, pn); err != nil {
		return err
	}
	return o.syncDir()
}

// Remove implements FS.
func (o *OS) Remove(name string) error {
	p, err := o.path(name)
	if err != nil {
		return err
	}
	return os.Remove(p)
}

// SyncDir implements FS.
func (o *OS) SyncDir() error { return o.syncDir() }

// List implements FS.
func (o *OS) List() ([]string, error) {
	entries, err := os.ReadDir(o.Dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.Type().IsRegular() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// syncDir fsyncs the directory so metadata changes (renames, creates)
// are durable. Filesystems that refuse to fsync a directory (some CI
// mounts) degrade to the rename's own guarantees.
func (o *OS) syncDir() error {
	d, err := os.Open(o.Dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, fs.ErrInvalid) {
		return err
	}
	return nil
}
