package fsx

import (
	"bytes"
	"errors"
	"io/fs"
	"testing"
)

// implementations under test, OS rooted in a fresh temp dir.
func fses(t *testing.T) map[string]FS {
	t.Helper()
	osFS, err := NewOS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]FS{"os": osFS, "mem": NewMem()}
}

// TestFSConformance runs the shared contract over both implementations:
// create/append/read round-trip, rename, remove, list, truncate.
func TestFSConformance(t *testing.T) {
	for name, fsys := range fses(t) {
		t.Run(name, func(t *testing.T) {
			f, err := fsys.Create("a.log")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write([]byte("hello ")); err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write([]byte("world")); err != nil {
				t.Fatal(err)
			}
			if err := f.Sync(); err != nil {
				t.Fatal(err)
			}
			if sz, err := f.Size(); err != nil || sz != 11 {
				t.Fatalf("Size = %d, %v", sz, err)
			}
			if err := f.Truncate(5); err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write([]byte("!")); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
			b, err := fsys.ReadFile("a.log")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(b, []byte("hello!")) {
				t.Fatalf("content %q", b)
			}

			// Append continues at the end.
			g, err := fsys.Append("a.log")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := g.Write([]byte("?")); err != nil {
				t.Fatal(err)
			}
			if err := g.Close(); err != nil {
				t.Fatal(err)
			}
			if b, _ = fsys.ReadFile("a.log"); string(b) != "hello!?" {
				t.Fatalf("after append: %q", b)
			}

			if err := fsys.Rename("a.log", "b.log"); err != nil {
				t.Fatal(err)
			}
			if _, err := fsys.ReadFile("a.log"); !errors.Is(err, fs.ErrNotExist) {
				t.Fatalf("old name readable after rename: %v", err)
			}
			names, err := fsys.List()
			if err != nil {
				t.Fatal(err)
			}
			if len(names) != 1 || names[0] != "b.log" {
				t.Fatalf("List = %v", names)
			}
			if err := fsys.Remove("b.log"); err != nil {
				t.Fatal(err)
			}
			if err := fsys.Remove("b.log"); !errors.Is(err, fs.ErrNotExist) {
				t.Fatalf("double remove: %v", err)
			}
			if err := fsys.SyncDir(); err != nil {
				t.Fatalf("SyncDir: %v", err)
			}
		})
	}
}

// TestMemVolatileDirectoryEntry: a created file's name is volatile
// until a directory sync, even when its content was fsynced — the
// pessimistic crash view erases it, matching a real filesystem where
// fsync of a file does not commit its directory entry.
func TestMemVolatileDirectoryEntry(t *testing.T) {
	m := NewMem()
	f, _ := m.Create("wal")
	if _, err := f.Write([]byte("acked")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.DurableView().ReadFile("wal"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("fsynced file with volatile entry survived the durable view: %v", err)
	}
	// The optimistic view keeps it (the kernel flushed the metadata).
	if b, err := m.FlushedView().ReadFile("wal"); err != nil || string(b) != "acked" {
		t.Fatalf("flushed view: %q, %v", b, err)
	}
	// After SyncDir the entry is durable.
	if err := m.SyncDir(); err != nil {
		t.Fatal(err)
	}
	if b, err := m.DurableView().ReadFile("wal"); err != nil || string(b) != "acked" {
		t.Fatalf("durable view after SyncDir: %q, %v", b, err)
	}

	// Rename syncs the directory as part of its contract, making all
	// pending entries durable.
	m2 := NewMem()
	g, _ := m2.Create("a")
	if _, err := g.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := g.Sync(); err != nil {
		t.Fatal(err)
	}
	h, _ := m2.Create("b")
	if _, err := h.Write([]byte("y")); err != nil {
		t.Fatal(err)
	}
	if err := h.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := m2.Rename("b", "c"); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "c"} {
		if _, err := m2.DurableView().ReadFile(name); err != nil {
			t.Fatalf("%q not durable after rename's directory sync: %v", name, err)
		}
	}
}

func TestOSRejectsEscapingNames(t *testing.T) {
	osFS, err := NewOS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"", "../evil", "a/b", "/abs"} {
		if _, err := osFS.Create(name); err == nil {
			t.Errorf("Create(%q) accepted", name)
		}
	}
}

// TestMemCrashKeepsDurablePrefix: after a crash, the durable view
// keeps only the fsynced bytes; the flushed view keeps everything
// written before the crash offset, including the torn final write.
func TestMemCrashKeepsDurablePrefix(t *testing.T) {
	m := NewMem()
	f, _ := m.Create("wal")
	if err := m.SyncDir(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("durable|")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	// Crash 4 bytes into the next write.
	m.CrashAfter(m.TotalWritten() + 4)
	n, err := f.Write([]byte("volatile"))
	if n != 4 || !errors.Is(err, ErrCrashed) {
		t.Fatalf("crashing write: n=%d err=%v", n, err)
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash sync: %v", err)
	}
	if _, err := m.Create("other"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash create: %v", err)
	}

	durable, _ := m.DurableView().ReadFile("wal")
	if string(durable) != "durable|" {
		t.Fatalf("durable view: %q", durable)
	}
	flushed, _ := m.FlushedView().ReadFile("wal")
	if string(flushed) != "durable|vola" {
		t.Fatalf("flushed view: %q", flushed)
	}
}

func TestMemFailWriteAtIsOneShot(t *testing.T) {
	m := NewMem()
	f, _ := m.Create("wal")
	m.FailWriteAt(3)
	n, err := f.Write([]byte("abcdef"))
	if n != 3 || !errors.Is(err, ErrInjected) {
		t.Fatalf("injected write: n=%d err=%v", n, err)
	}
	// The process survives: the next write succeeds.
	if _, err := f.Write([]byte("ghi")); err != nil {
		t.Fatalf("write after injected error: %v", err)
	}
	b, _ := m.ReadFile("wal")
	if string(b) != "abcghi" {
		t.Fatalf("content %q", b)
	}
}

func TestMemFailSyncs(t *testing.T) {
	m := NewMem()
	f, _ := m.Create("wal")
	if err := m.SyncDir(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	m.FailSyncs(2)
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("first sync: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("second sync: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("third sync: %v", err)
	}
	if b, _ := m.DurableView().ReadFile("wal"); string(b) != "abc" {
		t.Fatalf("durable after successful sync: %q", b)
	}
}

func TestMemWriteBoundaries(t *testing.T) {
	m := NewMem()
	f, _ := m.Create("wal")
	for _, s := range []string{"aa", "bbb", "c"} {
		if _, err := f.Write([]byte(s)); err != nil {
			t.Fatal(err)
		}
	}
	got := m.WriteBoundaries()
	want := []int64{0, 2, 5}
	if len(got) != len(want) {
		t.Fatalf("boundaries %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("boundaries %v, want %v", got, want)
		}
	}
	if m.TotalWritten() != 6 {
		t.Fatalf("TotalWritten = %d", m.TotalWritten())
	}
}
