// Package admit implements the admission-control machinery shared by
// the shard daemon (server) and the cluster coordinator (coord): a
// bounded in-flight slot semaphore with a bounded wait queue, and the
// drain gate that serializes graceful shutdown against request
// registration.
//
// Every query request must win an in-flight slot before it touches the
// engine (or the shard fan-out). MaxInFlight slots bound the concurrent
// work; up to MaxQueue requests may wait for a slot, each until its own
// context deadline. A request arriving with the queue at capacity is
// rejected immediately (HTTP 429) — the process sheds load instead of
// accumulating an unbounded backlog; a request arriving while the
// process drains is rejected with ErrDraining (HTTP 503).
//
// The drain handshake is the usual flag-then-wait two-step: requests
// register in the in-flight WaitGroup under the same mutex Shutdown
// uses to flip the draining flag, so Shutdown's Wait observes every
// admitted request and no request slips in after the flag is up.
package admit

import (
	"context"
	"errors"
	"sync"
)

var (
	// ErrQueueFull rejects a request when the wait queue is at
	// capacity (mapped to HTTP 429).
	ErrQueueFull = errors.New("admit: admission queue is full")
	// ErrDraining rejects a request during graceful shutdown (mapped
	// to HTTP 503).
	ErrDraining = errors.New("admit: draining")
)

// Admission is the slot semaphore plus the bounded wait queue.
type Admission struct {
	slots chan struct{} // buffered maxInFlight: a token in the channel is a held slot
	queue chan struct{} // buffered maxQueue: a token is a waiting request
	drain chan struct{} // closed when the process starts draining
}

// New returns an Admission granting maxInFlight concurrent slots with
// up to maxQueue requests waiting.
func New(maxInFlight, maxQueue int) *Admission {
	return &Admission{
		slots: make(chan struct{}, maxInFlight),
		queue: make(chan struct{}, maxQueue),
		drain: make(chan struct{}),
	}
}

// Acquire wins an in-flight slot, waiting in the bounded queue if
// necessary. It fails fast with ErrQueueFull when the queue is at
// capacity, ErrDraining when the process drains before a slot frees,
// and ctx.Err() when the request's own deadline expires first.
func (a *Admission) Acquire(ctx context.Context) error {
	select {
	case <-a.drain:
		return ErrDraining
	default:
	}
	// Fast path: a slot is free.
	select {
	case a.slots <- struct{}{}:
		return nil
	default:
	}
	// Slow path: join the bounded queue (or bounce).
	select {
	case a.queue <- struct{}{}:
	default:
		return ErrQueueFull
	}
	defer func() { <-a.queue }()
	select {
	case a.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-a.drain:
		return ErrDraining
	}
}

// Release frees the slot of a finished request.
func (a *Admission) Release() { <-a.slots }

// InFlight returns the number of held slots and waiting requests
// (advisory; the values race with concurrent requests).
func (a *Admission) InFlight() (slots, queued int) {
	return len(a.slots), len(a.queue)
}

// CloseDrain wakes every queued waiter with ErrDraining. Call exactly
// once, guarded by Gate.Close reporting true.
func (a *Admission) CloseDrain() { close(a.drain) }

// Gate serializes the draining flag against in-flight registration;
// see the package comment on the handshake.
type Gate struct {
	mu       sync.Mutex
	draining bool
	inflight sync.WaitGroup
}

// Enter registers one admitted request; it fails when the process is
// already draining (the caller releases its admission slot and answers
// 503).
func (g *Gate) Enter() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.draining {
		return ErrDraining
	}
	g.inflight.Add(1)
	return nil
}

// Exit deregisters a finished request.
func (g *Gate) Exit() { g.inflight.Done() }

// Close flips the draining flag; it reports whether this call was the
// one that flipped it.
func (g *Gate) Close() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.draining {
		return false
	}
	g.draining = true
	return true
}

// IsDraining reports the flag.
func (g *Gate) IsDraining() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.draining
}

// Wait blocks until every registered request has exited or ctx
// expires.
func (g *Gate) Wait(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		g.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
