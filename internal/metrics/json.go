package metrics

// The JSON codec of the registry: the text sibling of the binary
// MarshalBinary/UnmarshalBinary pair, so HTTP surfaces (/statusz, the
// bench harness) can emit and restore metrics without the binary
// format. Marshaling renders the same Snapshot the registry exposes;
// unmarshaling validates the snapshot with the same plausibility rules
// as the binary decoder before installing anything.

import (
	"encoding/json"
	"fmt"
)

// MarshalJSON encodes the registry's current values as its Snapshot.
func (r *Registry) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.Snapshot())
}

// UnmarshalJSON decodes a Snapshot (as produced by MarshalJSON or by
// marshaling Snapshot directly) into the registry, replacing its
// values. Like UnmarshalBinary it validates structure (disk counts and
// bucket counts must match) and plausibility (no negative counters,
// histogram buckets must sum to the count) before installing, so a
// corrupted document is rejected rather than half-applied. Derived
// fields (Balance, histogram means) are ignored on input.
func (r *Registry) UnmarshalJSON(data []byte) error {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("metrics: decoding JSON: %w", err)
	}
	return r.Install(s)
}

// Install validates a snapshot against the registry's shape and
// replaces the registry's values with it. It is the common install
// path of the JSON codec and of programmatic restores.
func (r *Registry) Install(s Snapshot) error {
	scalars := []struct {
		name string
		v    int64
		dst  *Counter
	}{
		{"queries_knn", s.QueriesKNN, &r.QueriesKNN},
		{"queries_range", s.QueriesRange, &r.QueriesRange},
		{"queries_batch", s.QueriesBatch, &r.QueriesBatch},
		{"batch_queries", s.BatchQueries, &r.BatchQueries},
		{"query_errors", s.QueryErrors, &r.QueryErrors},
		{"degraded_queries", s.DegradedQueries, &r.DegradedQueries},
		{"pages_read", s.PagesRead, &r.PagesRead},
		{"cells_visited", s.CellsVisited, &r.CellsVisited},
		{"node_visits", s.NodeVisits, &r.NodeVisits},
		{"retries", s.Retries, &r.Retries},
		{"rerouted", s.Rerouted, &r.Rerouted},
		{"unreachable", s.Unreachable, &r.Unreachable},
		{"search_pages", s.SearchPages, &r.SearchPages},
		{"pages_saved_by_bound", s.PagesSavedByBound, &r.PagesSavedByBound},
		{"bound_tightenings", s.BoundTightenings, &r.BoundTightenings},
		{"dist_comps_saved", s.DistCompsSaved, &r.DistCompsSaved},
		{"approx_queries", s.ApproxQueries, &r.ApproxQueries},
		{"pages_skipped_approx", s.PagesSkippedApprox, &r.PagesSkippedApprox},
	}
	for _, c := range scalars {
		if err := nonNegative(c.name, c.v); err != nil {
			return err
		}
	}
	perDisk := []struct {
		name string
		vals []int64
		dst  *PerDisk
	}{
		{"pages_per_disk", s.PagesPerDisk, r.PagesPerDisk},
		{"service_time_per_disk_ns", s.ServiceTimePerDiskNs, r.ServiceTimePerDisk},
	}
	for _, p := range perDisk {
		if len(p.vals) != r.Disks() {
			return fmt.Errorf("metrics: %s has %d entries, registry has %d disks",
				p.name, len(p.vals), r.Disks())
		}
		for _, v := range p.vals {
			if err := nonNegative(p.name, v); err != nil {
				return err
			}
		}
	}
	hists := []struct {
		name string
		s    HistogramSnapshot
		dst  *Histogram
	}{
		{"query_pages", s.QueryPages, &r.QueryPages},
		{"query_time_ns", s.QueryTimeNs, &r.QueryTimeNs},
		{"query_wall_ns", s.QueryWallNs, &r.QueryWallNs},
		{"lsh_probe_pages", s.LSHProbePages, &r.LSHProbePages},
	}
	for _, h := range hists {
		if h.s.Buckets == nil && h.s.Count == 0 && h.s.Sum == 0 {
			// Histogram absent from an older document: installs as zeros.
			continue
		}
		if len(h.s.Buckets) != HistBuckets {
			return fmt.Errorf("metrics: %s has %d buckets, want %d",
				h.name, len(h.s.Buckets), HistBuckets)
		}
		if err := nonNegative(h.name+" sum", h.s.Sum); err != nil {
			return err
		}
		var total int64
		for _, b := range h.s.Buckets {
			if err := nonNegative(h.name+" bucket", b); err != nil {
				return err
			}
			total += b
		}
		if total != h.s.Count {
			return fmt.Errorf("metrics: %s buckets sum to %d, count says %d",
				h.name, total, h.s.Count)
		}
	}

	// Everything validated — install.
	for _, c := range scalars {
		c.dst.v.Store(c.v)
	}
	for _, p := range perDisk {
		for i, v := range p.vals {
			p.dst.vals[i].Store(v)
		}
	}
	for _, h := range hists {
		h.dst.count.Store(h.s.Count)
		h.dst.sum.Store(h.s.Sum)
		for i := range h.dst.buckets {
			var v int64
			if i < len(h.s.Buckets) {
				v = h.s.Buckets[i]
			}
			h.dst.buckets[i].Store(v)
		}
	}
	return nil
}
