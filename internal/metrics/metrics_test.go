package metrics

import (
	"encoding/binary"
	"reflect"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 46, 47}, {1 << 47, 47}, {1 << 62, 47},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.bucket)
		}
	}

	var h Histogram
	for _, v := range []int64{1, 2, 3, 100, 100, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 || s.Sum != 1206 {
		t.Fatalf("count %d sum %d, want 6 / 1206", s.Count, s.Sum)
	}
	var total int64
	for _, b := range s.Buckets {
		total += b
	}
	if total != s.Count {
		t.Fatalf("buckets sum to %d, count %d", total, s.Count)
	}
	if s.Mean != 201 {
		t.Fatalf("mean %v, want 201", s.Mean)
	}
	// The median observation is 3 (ranked 1,2,3,100,100,1000 → rank 2),
	// which lives in bucket [2,4): quantile reports the upper edge.
	if q := s.Quantile(0.5); q != 4 {
		t.Fatalf("p50 = %d, want 4", q)
	}
	if q := s.Quantile(1); q != 1024 {
		t.Fatalf("p100 = %d, want 1024", q)
	}
	if q := (HistogramSnapshot{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %d, want 0", q)
	}
}

func TestBalanceCoefficient(t *testing.T) {
	cases := []struct {
		loads []int64
		want  float64
	}{
		{[]int64{4, 4, 4, 4}, 1},
		{[]int64{8, 0, 0, 0}, 0.25},
		{[]int64{0, 0}, 0},
		{nil, 0},
		{[]int64{2, 4}, 0.75},
	}
	for _, c := range cases {
		if got := BalanceCoefficient(c.loads); got != c.want {
			t.Errorf("BalanceCoefficient(%v) = %v, want %v", c.loads, got, c.want)
		}
	}
}

func TestSnapshotReflectsUpdates(t *testing.T) {
	r := NewRegistry(4)
	r.QueriesKNN.Add(3)
	r.PagesRead.Add(100)
	r.PagesPerDisk.Add(0, 25)
	r.PagesPerDisk.Add(2, 25)
	r.PagesPerDisk.Add(-1, 99) // ignored
	r.PagesPerDisk.Add(4, 99)  // ignored
	r.ServiceTimePerDisk.Add(1, 1e6)
	r.QueryPages.Observe(50)

	s := r.Snapshot()
	if s.QueriesKNN != 3 || s.PagesRead != 100 {
		t.Fatalf("snapshot %+v", s)
	}
	if !reflect.DeepEqual(s.PagesPerDisk, []int64{25, 0, 25, 0}) {
		t.Fatalf("pages per disk %v", s.PagesPerDisk)
	}
	if s.Balance != 0.5 {
		t.Fatalf("balance %v, want 0.5", s.Balance)
	}
	if s.QueryPages.Count != 1 || s.QueryPages.Sum != 50 {
		t.Fatalf("query pages histogram %+v", s.QueryPages)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	r := NewRegistry(3)
	r.QueriesKNN.Add(7)
	r.QueriesRange.Add(2)
	r.QueriesBatch.Inc()
	r.BatchQueries.Add(12)
	r.QueryErrors.Add(1)
	r.DegradedQueries.Add(4)
	r.PagesRead.Add(12345)
	r.CellsVisited.Add(99)
	r.NodeVisits.Add(1024)
	r.Retries.Add(5)
	r.Rerouted.Add(6)
	r.Unreachable.Add(7)
	r.SearchPages.Add(2048)
	r.PagesSavedByBound.Add(512)
	r.BoundTightenings.Add(33)
	r.PagesPerDisk.Add(0, 10)
	r.PagesPerDisk.Add(2, 30)
	r.ServiceTimePerDisk.Add(1, 5e8)
	r.PagesSavedByRemoteBound.Add(256)
	r.ShardRPCs.Add(60)
	r.ShardRetries.Add(3)
	r.RemoteBoundTightenings.Add(19)
	for i := int64(1); i < 100; i *= 3 {
		r.QueryPages.Observe(i)
		r.QueryTimeNs.Observe(i * 1000)
		r.ShardLatencyNs.Observe(i * 10000)
	}

	b, err := r.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewRegistry(3)
	if err := fresh.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Snapshot(), fresh.Snapshot()) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", r.Snapshot(), fresh.Snapshot())
	}

	// A second marshal of the decoded registry is byte-identical.
	b2, err := fresh.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b, b2) {
		t.Fatal("re-marshal differs")
	}
}

// TestUnmarshalVersion1 decodes a version-1 encoding (12 scalar
// counters, before the cooperative-pruning counters were appended):
// the prefix decodes one-to-one and the newer counters stay zero.
// Snapshots written by older builds must keep loading.
func TestUnmarshalVersion1(t *testing.T) {
	r := NewRegistry(2)
	r.QueriesKNN.Add(7)
	r.PagesRead.Add(1234)
	r.PagesPerDisk.Add(1, 9)
	r.QueryPages.Observe(42)
	// The newer counters are deliberately non-zero so the splice below
	// proves they are dropped from (not smuggled through) a v1 blob.
	r.SearchPages.Add(555)
	r.PagesSavedByBound.Add(66)
	r.BoundTightenings.Add(7)

	v3, err := r.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Hand-build the v1 encoding: same header with version 1, the first
	// codecV1Scalars counters, then everything after the scalar block
	// minus the third through fifth histograms (v1 carried only two).
	const header = 12
	const histBlock = 8 + 8 + 4 + HistBuckets*8
	v1 := append([]byte{}, v3[:header+codecV1Scalars*8]...)
	binary.LittleEndian.PutUint32(v1[4:], 1)
	tail := v3[header+len(r.scalars())*8 : len(v3)-4*histBlock]
	v1 = append(v1, tail...)

	fresh := NewRegistry(2)
	if err := fresh.UnmarshalBinary(v1); err != nil {
		t.Fatalf("v1 decode: %v", err)
	}
	s := fresh.Snapshot()
	if s.QueriesKNN != 7 || s.PagesRead != 1234 || s.PagesPerDisk[1] != 9 {
		t.Fatalf("v1 prefix mismatch: %+v", s)
	}
	if s.SearchPages != 0 || s.PagesSavedByBound != 0 || s.BoundTightenings != 0 {
		t.Fatalf("v1 decode left newer counters non-zero: %+v", s)
	}
	// Re-encoding always writes the current version.
	b2, err := fresh.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint32(b2[4:]); got != codecVersion {
		t.Fatalf("re-marshal version = %d, want %d", got, codecVersion)
	}

	// A v1 blob that still carries the full scalar block has trailing
	// bytes from the v1 reader's point of view: rejected, not guessed at.
	tooLong := append([]byte{}, v3...)
	binary.LittleEndian.PutUint32(tooLong[4:], 1)
	if err := NewRegistry(2).UnmarshalBinary(tooLong); err == nil {
		t.Fatal("v1 header with v2 payload accepted")
	}
}

// TestUnmarshalVersion2 decodes a version-2 encoding (15 scalars, two
// histograms, before DistCompsSaved and QueryWallNs): the prefix
// decodes one-to-one and the v3 additions stay zero.
func TestUnmarshalVersion2(t *testing.T) {
	r := NewRegistry(2)
	r.QueriesKNN.Add(3)
	r.SearchPages.Add(555)
	r.PagesSavedByBound.Add(66)
	r.BoundTightenings.Add(7)
	r.QueryPages.Observe(42)
	r.QueryTimeNs.Observe(9000)
	// v3-only fields, deliberately non-zero so the splice proves they
	// are dropped from a v2 blob.
	r.DistCompsSaved.Add(123)
	r.QueryWallNs.Observe(5e6)

	v3, err := r.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	const header = 12
	const histBlock = 8 + 8 + 4 + HistBuckets*8
	v2 := append([]byte{}, v3[:header+codecV2Scalars*8]...)
	binary.LittleEndian.PutUint32(v2[4:], 2)
	v2 = append(v2, v3[header+len(r.scalars())*8:len(v3)-4*histBlock]...)

	fresh := NewRegistry(2)
	if err := fresh.UnmarshalBinary(v2); err != nil {
		t.Fatalf("v2 decode: %v", err)
	}
	s := fresh.Snapshot()
	if s.QueriesKNN != 3 || s.SearchPages != 555 || s.PagesSavedByBound != 66 || s.BoundTightenings != 7 {
		t.Fatalf("v2 prefix mismatch: %+v", s)
	}
	if s.QueryPages.Count != 1 || s.QueryTimeNs.Count != 1 {
		t.Fatalf("v2 histograms lost: %+v", s)
	}
	if s.DistCompsSaved != 0 || s.QueryWallNs.Count != 0 {
		t.Fatalf("v2 decode left v3 fields non-zero: %+v", s)
	}
}

// TestUnmarshalVersion3 decodes a version-3 encoding (16 scalars,
// three histograms, before the durability counters and WALFsyncNs):
// the prefix decodes one-to-one and the v4 additions stay zero.
func TestUnmarshalVersion3(t *testing.T) {
	r := NewRegistry(2)
	r.QueriesKNN.Add(3)
	r.DistCompsSaved.Add(123)
	r.QueryWallNs.Observe(5e6)
	// v4-only fields, deliberately non-zero so the splice proves they
	// are dropped from a v3 blob.
	r.WALAppends.Add(44)
	r.WALBytes.Add(4096)
	r.Recoveries.Add(2)
	r.WALFsyncNs.Observe(7e5)

	v4, err := r.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	const header = 12
	const histBlock = 8 + 8 + 4 + HistBuckets*8
	v3 := append([]byte{}, v4[:header+codecV3Scalars*8]...)
	binary.LittleEndian.PutUint32(v3[4:], 3)
	v3 = append(v3, v4[header+len(r.scalars())*8:len(v4)-3*histBlock]...)

	fresh := NewRegistry(2)
	if err := fresh.UnmarshalBinary(v3); err != nil {
		t.Fatalf("v3 decode: %v", err)
	}
	s := fresh.Snapshot()
	if s.QueriesKNN != 3 || s.DistCompsSaved != 123 || s.QueryWallNs.Count != 1 {
		t.Fatalf("v3 prefix mismatch: %+v", s)
	}
	if s.WALAppends != 0 || s.WALBytes != 0 || s.Recoveries != 0 || s.WALFsyncNs.Count != 0 {
		t.Fatalf("v3 decode left v4 fields non-zero: %+v", s)
	}
}

// TestUnmarshalVersion4 decodes a version-4 encoding (21 scalars, four
// histograms, before the live-mutation counters): the prefix decodes
// one-to-one and the v5 additions stay zero.
func TestUnmarshalVersion4(t *testing.T) {
	r := NewRegistry(2)
	r.QueriesKNN.Add(3)
	r.WALAppends.Add(44)
	r.RecoveredRecords.Add(17)
	r.WALFsyncNs.Observe(7e5)
	// v5-only fields, deliberately non-zero so the splice proves they
	// are dropped from a v4 blob.
	r.IngestBatches.Add(8)
	r.ReorgBuckets.Add(9)
	r.CatchupBytes.Add(1 << 20)

	v5, err := r.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	const header = 12
	const histBlock = 8 + 8 + 4 + HistBuckets*8
	v4 := append([]byte{}, v5[:header+codecV4Scalars*8]...)
	binary.LittleEndian.PutUint32(v4[4:], 4)
	v4 = append(v4, v5[header+len(r.scalars())*8:len(v5)-2*histBlock]...)

	fresh := NewRegistry(2)
	if err := fresh.UnmarshalBinary(v4); err != nil {
		t.Fatalf("v4 decode: %v", err)
	}
	s := fresh.Snapshot()
	if s.QueriesKNN != 3 || s.WALAppends != 44 || s.RecoveredRecords != 17 || s.WALFsyncNs.Count != 1 {
		t.Fatalf("v4 prefix mismatch: %+v", s)
	}
	if s.IngestBatches != 0 || s.ReorgBuckets != 0 || s.CatchupBytes != 0 {
		t.Fatalf("v4 decode left v5 fields non-zero: %+v", s)
	}
}

// TestUnmarshalVersion5 decodes a version-5 encoding (24 scalars, four
// histograms, before the approximate-tier counters and LSHProbePages):
// the prefix decodes one-to-one and the v6 additions stay zero.
func TestUnmarshalVersion5(t *testing.T) {
	r := NewRegistry(2)
	r.QueriesKNN.Add(3)
	r.IngestBatches.Add(8)
	r.CatchupBytes.Add(1 << 20)
	r.WALFsyncNs.Observe(7e5)
	// v6-only fields, deliberately non-zero so the splice proves they
	// are dropped from a v5 blob.
	r.ApproxQueries.Add(5)
	r.PagesSkippedApprox.Add(77)
	r.LSHProbePages.Observe(12)

	cur, err := r.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// The v5 splice drops the trailing v6 and v7 histograms (LSHProbePages
	// and ShardLatencyNs) along with the post-v5 scalar block.
	const header = 12
	const histBlock = 8 + 8 + 4 + HistBuckets*8
	v5 := append([]byte{}, cur[:header+codecV5Scalars*8]...)
	binary.LittleEndian.PutUint32(v5[4:], 5)
	v5 = append(v5, cur[header+len(r.scalars())*8:len(cur)-2*histBlock]...)

	fresh := NewRegistry(2)
	if err := fresh.UnmarshalBinary(v5); err != nil {
		t.Fatalf("v5 decode: %v", err)
	}
	s := fresh.Snapshot()
	if s.QueriesKNN != 3 || s.IngestBatches != 8 || s.CatchupBytes != 1<<20 || s.WALFsyncNs.Count != 1 {
		t.Fatalf("v5 prefix mismatch: %+v", s)
	}
	if s.ApproxQueries != 0 || s.PagesSkippedApprox != 0 || s.LSHProbePages.Count != 0 {
		t.Fatalf("v5 decode left v6 fields non-zero: %+v", s)
	}
	// A current-version round-trip carries the new fields.
	again := NewRegistry(2)
	if err := again.UnmarshalBinary(cur); err != nil {
		t.Fatalf("current decode: %v", err)
	}
	s = again.Snapshot()
	if s.ApproxQueries != 5 || s.PagesSkippedApprox != 77 || s.LSHProbePages.Count != 1 {
		t.Fatalf("round-trip lost approx fields: %+v", s)
	}
}

// TestUnmarshalVersion6 decodes a version-6 encoding (26 scalars, five
// histograms, before the cluster counters): the prefix decodes
// one-to-one and the v7 cluster fields stay zero. Snapshot blobs
// written by pre-cluster builds must keep loading.
func TestUnmarshalVersion6(t *testing.T) {
	r := NewRegistry(2)
	r.QueriesKNN.Add(9)
	r.ApproxQueries.Add(4)
	r.PagesSkippedApprox.Add(31)
	r.LSHProbePages.Observe(6)
	// v7-only fields, deliberately non-zero so the splice proves they
	// are dropped from a v6 blob.
	r.PagesSavedByRemoteBound.Add(123)
	r.ShardRPCs.Add(45)
	r.ShardRetries.Add(2)
	r.RemoteBoundTightenings.Add(17)
	r.ShardLatencyNs.Observe(3e6)

	v7, err := r.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	const header = 12
	const histBlock = 8 + 8 + 4 + HistBuckets*8
	v6 := append([]byte{}, v7[:header+codecV6Scalars*8]...)
	binary.LittleEndian.PutUint32(v6[4:], 6)
	v6 = append(v6, v7[header+len(r.scalars())*8:len(v7)-histBlock]...)

	fresh := NewRegistry(2)
	if err := fresh.UnmarshalBinary(v6); err != nil {
		t.Fatalf("v6 decode: %v", err)
	}
	s := fresh.Snapshot()
	if s.QueriesKNN != 9 || s.ApproxQueries != 4 || s.PagesSkippedApprox != 31 || s.LSHProbePages.Count != 1 {
		t.Fatalf("v6 prefix mismatch: %+v", s)
	}
	if s.PagesSavedByRemoteBound != 0 || s.ShardRPCs != 0 || s.ShardRetries != 0 ||
		s.RemoteBoundTightenings != 0 || s.ShardLatencyNs.Count != 0 {
		t.Fatalf("v6 decode left cluster fields non-zero: %+v", s)
	}
	// Re-encoding always writes the current version.
	b2, err := fresh.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint32(b2[4:]); got != codecVersion {
		t.Fatalf("re-marshal version = %d, want %d", got, codecVersion)
	}

	// The full v7 round-trip carries the cluster counters and the
	// shard-latency histogram, and re-marshals byte-identically.
	again := NewRegistry(2)
	if err := again.UnmarshalBinary(v7); err != nil {
		t.Fatalf("v7 decode: %v", err)
	}
	s = again.Snapshot()
	if s.PagesSavedByRemoteBound != 123 || s.ShardRPCs != 45 || s.ShardRetries != 2 ||
		s.RemoteBoundTightenings != 17 || s.ShardLatencyNs.Count != 1 {
		t.Fatalf("v7 round-trip lost cluster fields: %+v", s)
	}
	b3, err := again.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v7, b3) {
		t.Fatal("v7 re-marshal differs")
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	r := NewRegistry(2)
	r.QueriesKNN.Add(5)
	r.QueryPages.Observe(10)
	good, err := r.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	reject := func(name string, b []byte) {
		t.Helper()
		fresh := NewRegistry(2)
		if err := fresh.UnmarshalBinary(b); err == nil {
			t.Errorf("%s: corrupted encoding accepted", name)
		}
	}
	reject("empty", nil)
	reject("truncated", good[:len(good)-3])
	reject("trailing", append(append([]byte{}, good...), 0))

	bad := append([]byte{}, good...)
	bad[0] ^= 0xFF
	reject("magic", bad)

	// Negative counter: flip the sign bit of the first scalar.
	bad = append([]byte{}, good...)
	bad[12+7] |= 0x80
	reject("negative counter", bad)

	// Wrong disk count.
	reject("disk count", func() []byte {
		r3 := NewRegistry(3)
		b, _ := r3.MarshalBinary()
		return b
	}())

	// Histogram bucket/count mismatch: bump the first histogram's count
	// without touching its buckets. The first histogram starts after the
	// 12-byte header, the scalar counters, and two 2-disk arrays.
	histOff := 12 + len(r.scalars())*8 + 2*2*8
	bad = append([]byte{}, good...)
	bad[histOff]++
	reject("histogram mismatch", bad)
}

func TestPerDiskValuesCopy(t *testing.T) {
	p := NewPerDisk(2)
	p.Add(0, 5)
	v := p.Values()
	v[0] = 99
	if got := p.Values()[0]; got != 5 {
		t.Fatalf("Values leaked internal state: %d", got)
	}
}
