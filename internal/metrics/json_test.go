package metrics

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// populate fills a registry with a deterministic non-trivial shape.
func populate(r *Registry) {
	r.QueriesKNN.Add(7)
	r.QueriesRange.Add(3)
	r.QueriesBatch.Inc()
	r.BatchQueries.Add(12)
	r.QueryErrors.Add(2)
	r.DegradedQueries.Inc()
	r.PagesRead.Add(4096)
	r.CellsVisited.Add(511)
	r.NodeVisits.Add(9000)
	r.Retries.Add(4)
	r.Rerouted.Add(17)
	r.Unreachable.Add(1)
	r.SearchPages.Add(321)
	r.PagesSavedByBound.Add(45)
	r.BoundTightenings.Add(6)
	for d := 0; d < r.Disks(); d++ {
		r.PagesPerDisk.Add(d, int64(10+d))
		r.ServiceTimePerDisk.Add(d, int64(1e6*(d+1)))
	}
	for _, v := range []int64{0, 1, 2, 3, 100, 1 << 20} {
		r.QueryPages.Observe(v)
		r.QueryTimeNs.Observe(v * 1000)
	}
}

func TestRegistryJSONRoundTrip(t *testing.T) {
	r := NewRegistry(4)
	populate(r)

	blob, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewRegistry(4)
	if err := json.Unmarshal(blob, fresh); err != nil {
		t.Fatal(err)
	}
	if got, want := fresh.Snapshot(), r.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Fatalf("round-trip snapshot mismatch:\n got %+v\nwant %+v", got, want)
	}

	// The JSON form matches the Snapshot's own encoding, so consumers
	// can decode either interchangeably.
	snapBlob, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != string(snapBlob) {
		t.Errorf("Registry JSON differs from Snapshot JSON")
	}

	// The binary codec sees the same values, anchoring the two formats
	// to each other.
	bin, err := r.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	viaBinary := NewRegistry(4)
	if err := viaBinary.UnmarshalBinary(bin); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaBinary.Snapshot(), fresh.Snapshot()) {
		t.Errorf("binary and JSON round-trips disagree")
	}
}

func TestRegistryJSONRejectsCorruption(t *testing.T) {
	r := NewRegistry(4)
	populate(r)
	blob, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		mutate func(s *Snapshot)
	}{
		{"negative counter", func(s *Snapshot) { s.PagesRead = -1 }},
		{"wrong disk count", func(s *Snapshot) { s.PagesPerDisk = s.PagesPerDisk[:2] }},
		{"negative per-disk", func(s *Snapshot) { s.ServiceTimePerDiskNs[1] = -5 }},
		{"bucket count mismatch", func(s *Snapshot) { s.QueryPages.Buckets = s.QueryPages.Buckets[:3] }},
		{"bucket sum mismatch", func(s *Snapshot) { s.QueryPages.Count += 3 }},
		{"negative bucket", func(s *Snapshot) {
			s.QueryTimeNs.Buckets[0] = -1
			s.QueryTimeNs.Count -= 2 // keep the sum consistent-looking
		}},
	}
	for _, tc := range cases {
		var s Snapshot
		if err := json.Unmarshal(blob, &s); err != nil {
			t.Fatal(err)
		}
		tc.mutate(&s)
		bad, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		dst := NewRegistry(4)
		if err := json.Unmarshal(bad, dst); err == nil {
			t.Errorf("%s: corrupted snapshot accepted", tc.name)
		}
		// Nothing may have been installed by the failed decode.
		if got := dst.Snapshot(); got.PagesRead != 0 || got.QueriesKNN != 0 {
			t.Errorf("%s: failed decode left values behind: %+v", tc.name, got)
		}
	}

	dst := NewRegistry(4)
	if err := json.Unmarshal([]byte(`{"pages_read": "no"}`), dst); err == nil ||
		!strings.Contains(err.Error(), "metrics:") {
		t.Errorf("malformed JSON: err = %v, want a metrics decode error", err)
	}
}
