// Package metrics is the engine-wide metrics registry of the query
// engine: lock-free counters, fixed-bucket exponential histograms, and
// per-disk accumulators that every query path updates and that
// Index.Metrics() exposes as an immutable Snapshot.
//
// All primitives are safe for concurrent use by any number of
// goroutines; updates are single atomic adds, so instrumentation stays
// off the contended paths (no locks, no allocation). A Snapshot taken
// while writers are running is a per-field-consistent view: every value
// is a valid atomic read, but different fields may reflect slightly
// different instants.
//
// The registry round-trips through a binary encoding (MarshalBinary /
// UnmarshalBinary) so an index snapshot can carry its operational
// history across Save/Load.
package metrics

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sync/atomic"
)

// Counter is a lock-free monotonic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// HistBuckets is the number of exponential buckets of a Histogram.
// Bucket i counts observations v with 2^(i-1) <= v < 2^i (bucket 0
// counts v <= 0 and v = 1 lands in bucket 1); the last bucket absorbs
// everything larger. 48 buckets cover nanosecond-scale observations up
// to ~78 hours.
const HistBuckets = 48

// Histogram is a lock-free histogram over int64 observations with
// fixed power-of-two buckets — coarse, but allocation-free and
// mergeable, which is what per-query instrumentation needs.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [HistBuckets]atomic.Int64
}

// bucketOf returns the bucket index of observation v.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v)) // v in [2^(b-1), 2^b)
	if b >= HistBuckets {
		return HistBuckets - 1
	}
	return b
}

// Observe records one observation.
func (h *Histogram) Observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
}

// HistogramSnapshot is an immutable copy of a Histogram.
type HistogramSnapshot struct {
	// Count is the number of observations; Sum their total.
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	// Mean is Sum/Count (0 when empty).
	Mean float64 `json:"mean"`
	// Buckets[i] counts observations in [2^(i-1), 2^i); see HistBuckets.
	Buckets []int64 `json:"buckets"`
}

// Snapshot returns an immutable copy of the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Buckets: make([]int64, HistBuckets)}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
		s.Count += s.Buckets[i]
	}
	// Count is derived from the buckets rather than h.count so that a
	// snapshot taken under concurrent writers stays internally
	// consistent (sum of buckets == count).
	s.Sum = h.sum.Load()
	if s.Count > 0 {
		s.Mean = float64(s.Sum) / float64(s.Count)
	}
	return s
}

// Quantile returns an upper bound of the q-quantile (0 <= q <= 1) of
// the observations: the upper edge of the bucket holding the quantile
// observation. It returns 0 for an empty snapshot.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(s.Count-1))
	var seen int64
	for i, c := range s.Buckets {
		seen += c
		if seen > rank {
			if i == 0 {
				return 0
			}
			return int64(1) << uint(i) // upper edge of bucket i
		}
	}
	return int64(1) << uint(len(s.Buckets)-1)
}

// PerDisk is a fixed-width array of lock-free per-disk accumulators.
type PerDisk struct {
	vals []atomic.Int64
}

// NewPerDisk returns accumulators for n disks.
func NewPerDisk(n int) *PerDisk {
	return &PerDisk{vals: make([]atomic.Int64, n)}
}

// Add adds n to disk d's accumulator; out-of-range disks are ignored
// (queries charge only real disks, so this is a belt-and-braces guard,
// not a code path).
func (p *PerDisk) Add(d int, n int64) {
	if d >= 0 && d < len(p.vals) {
		p.vals[d].Add(n)
	}
}

// Values returns a copy of the per-disk values.
func (p *PerDisk) Values() []int64 {
	out := make([]int64, len(p.vals))
	for i := range p.vals {
		out[i] = p.vals[i].Load()
	}
	return out
}

// Registry is the engine-wide metrics registry: one per Index, updated
// by every query, exposed via Index.Metrics() and expvar.
type Registry struct {
	// Queries by kind. Batch counts BatchKNN calls; BatchQueries the
	// individual queries inside them.
	QueriesKNN   Counter
	QueriesRange Counter
	QueriesBatch Counter
	BatchQueries Counter
	// QueryErrors counts queries that returned an error (including
	// ErrEmpty and ErrUnavailable).
	QueryErrors Counter
	// DegradedQueries counts queries whose answer unreachable data could
	// have affected (QueryStats.Degraded).
	DegradedQueries Counter

	// PagesRead counts disk blocks read; CellsVisited the storage cells
	// (or tree leaves) the NN-sphere/box intersected; NodeVisits the
	// X-tree nodes the per-disk searches visited.
	PagesRead    Counter
	CellsVisited Counter
	NodeVisits   Counter

	// Fault-path counters, mirroring the QueryStats fields.
	Retries     Counter
	Rerouted    Counter
	Unreachable Counter

	// Cooperative-pruning counters, mirroring the QueryStats fields:
	// SearchPages counts the index pages the per-disk searches actually
	// traversed, PagesSavedByBound the pages the shared bound of the
	// parallel k-NN fan-out pruned, and BoundTightenings how often a
	// disk's search lowered the shared bound.
	SearchPages       Counter
	PagesSavedByBound Counter
	BoundTightenings  Counter

	// DistCompsSaved counts the exact distance computations the SQ8
	// pre-filter of packed quantized indexes skipped
	// (QueryStats.DistCompsSaved).
	DistCompsSaved Counter

	// Durability counters (zero on non-durable indexes): WALAppends
	// counts log records appended, WALSyncs the fsyncs the group-commit
	// writer issued (≤ WALAppends under load — that gap is the group
	// commit working), WALBytes the log bytes written, Recoveries how
	// often Open replayed durable state, and RecoveredRecords the log
	// records those replays applied.
	WALAppends       Counter
	WALSyncs         Counter
	WALBytes         Counter
	Recoveries       Counter
	RecoveredRecords Counter

	// Live-mutation counters: IngestBatches counts the mutation batches
	// the batched-ingest path applied (InsertBatch calls and AsyncWriter
	// group commits), ReorgBuckets the overloaded buckets the
	// incremental reorganization split one level deeper, and
	// CatchupBytes the snapshot+WAL delta bytes served to catching-up
	// replicas.
	IngestBatches Counter
	ReorgBuckets  Counter
	CatchupBytes  Counter

	// Approximate-tier counters: ApproxQueries counts queries that ran
	// with the approximate tier armed (ε > 0 or an effective LSH recall
	// cap), PagesSkippedApprox the search pages the tier skipped
	// (QueryStats.PagesSkippedApprox). Both stay zero on exact paths.
	ApproxQueries      Counter
	PagesSkippedApprox Counter

	// Cluster counters (codec v7). On a shard daemon,
	// PagesSavedByRemoteBound counts the search pages pruned while the
	// shared bound still held a remotely seeded value
	// (QueryStats.PagesSavedByRemoteBound). On a coordinator — whose
	// registry treats the process shards as its "disks" — ShardRPCs
	// counts the shard requests fanned out, ShardRetries the failover
	// re-issues after a shard RPC failed, and RemoteBoundTightenings the
	// queries whose first phase produced a finite k-th-distance bound
	// that was shipped to the remaining shards. All four stay zero on a
	// single-process index.
	PagesSavedByRemoteBound Counter
	ShardRPCs               Counter
	ShardRetries            Counter
	RemoteBoundTightenings  Counter

	// PagesPerDisk accumulates the blocks charged to each disk;
	// ServiceTimePerDisk the simulated service time (nanoseconds) each
	// disk spent — the per-disk balance view of the paper's cost model.
	PagesPerDisk       *PerDisk
	ServiceTimePerDisk *PerDisk

	// QueryPages observes each query's total page count; QueryTimeNs
	// each query's simulated parallel time in nanoseconds; QueryWallNs
	// each query's real wall-clock latency in nanoseconds (the source
	// of the bench harness's latency percentiles).
	QueryPages  Histogram
	QueryTimeNs Histogram
	QueryWallNs Histogram

	// WALFsyncNs observes the duration of each group-commit fsync in
	// nanoseconds (empty on non-durable indexes).
	WALFsyncNs Histogram

	// LSHProbePages observes, per approximate query that consulted the
	// LSH pre-filter, how many leaf pages the filter admitted — the
	// recall-probe profile of the approximate tier.
	LSHProbePages Histogram

	// ShardLatencyNs observes the wall-clock latency of each shard RPC a
	// coordinator issued, in nanoseconds (empty on shard daemons and
	// single-process indexes).
	ShardLatencyNs Histogram
}

// NewRegistry returns an empty registry for an index over disks disks.
func NewRegistry(disks int) *Registry {
	if disks < 1 {
		panic(fmt.Sprintf("metrics: registry over %d disks", disks))
	}
	return &Registry{
		PagesPerDisk:       NewPerDisk(disks),
		ServiceTimePerDisk: NewPerDisk(disks),
	}
}

// Disks returns the number of disks the registry tracks.
func (r *Registry) Disks() int { return len(r.PagesPerDisk.vals) }

// Snapshot is an immutable, JSON-serializable copy of a Registry.
type Snapshot struct {
	QueriesKNN      int64 `json:"queries_knn"`
	QueriesRange    int64 `json:"queries_range"`
	QueriesBatch    int64 `json:"queries_batch"`
	BatchQueries    int64 `json:"batch_queries"`
	QueryErrors     int64 `json:"query_errors"`
	DegradedQueries int64 `json:"degraded_queries"`

	PagesRead    int64 `json:"pages_read"`
	CellsVisited int64 `json:"cells_visited"`
	NodeVisits   int64 `json:"node_visits"`

	Retries     int64 `json:"retries"`
	Rerouted    int64 `json:"rerouted"`
	Unreachable int64 `json:"unreachable"`

	SearchPages       int64 `json:"search_pages"`
	PagesSavedByBound int64 `json:"pages_saved_by_bound"`
	BoundTightenings  int64 `json:"bound_tightenings"`
	DistCompsSaved    int64 `json:"dist_comps_saved"`

	PagesPerDisk         []int64 `json:"pages_per_disk"`
	ServiceTimePerDiskNs []int64 `json:"service_time_per_disk_ns"`

	// Balance is the per-disk balance coefficient over the cumulative
	// page reads: mean/max of PagesPerDisk. 1.0 means every disk read
	// exactly the same number of blocks (the declustering goal of the
	// paper); 1/disks means one disk did all the work; 0 means no reads
	// yet.
	Balance float64 `json:"balance"`

	WALAppends       int64 `json:"wal_appends"`
	WALSyncs         int64 `json:"wal_syncs"`
	WALBytes         int64 `json:"wal_bytes"`
	Recoveries       int64 `json:"recoveries"`
	RecoveredRecords int64 `json:"recovered_records"`

	IngestBatches int64 `json:"ingest_batches"`
	ReorgBuckets  int64 `json:"reorg_buckets"`
	CatchupBytes  int64 `json:"catchup_bytes"`

	ApproxQueries      int64 `json:"approx_queries"`
	PagesSkippedApprox int64 `json:"pages_skipped_approx"`

	PagesSavedByRemoteBound int64 `json:"pages_saved_by_remote_bound"`
	ShardRPCs               int64 `json:"shard_rpcs"`
	ShardRetries            int64 `json:"shard_retries"`
	RemoteBoundTightenings  int64 `json:"remote_bound_tightenings"`

	QueryPages     HistogramSnapshot `json:"query_pages"`
	QueryTimeNs    HistogramSnapshot `json:"query_time_ns"`
	QueryWallNs    HistogramSnapshot `json:"query_wall_ns"`
	WALFsyncNs     HistogramSnapshot `json:"wal_fsync_ns"`
	LSHProbePages  HistogramSnapshot `json:"lsh_probe_pages"`
	ShardLatencyNs HistogramSnapshot `json:"shard_latency_ns"`
}

// BalanceCoefficient computes mean/max over per-disk loads: 1.0 is a
// perfectly even spread, 0 an empty one.
func BalanceCoefficient(perDisk []int64) float64 {
	var sum, max int64
	for _, v := range perDisk {
		sum += v
		if v > max {
			max = v
		}
	}
	if max == 0 || len(perDisk) == 0 {
		return 0
	}
	return float64(sum) / float64(len(perDisk)) / float64(max)
}

// Snapshot returns an immutable copy of the registry.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		QueriesKNN:      r.QueriesKNN.Value(),
		QueriesRange:    r.QueriesRange.Value(),
		QueriesBatch:    r.QueriesBatch.Value(),
		BatchQueries:    r.BatchQueries.Value(),
		QueryErrors:     r.QueryErrors.Value(),
		DegradedQueries: r.DegradedQueries.Value(),

		PagesRead:    r.PagesRead.Value(),
		CellsVisited: r.CellsVisited.Value(),
		NodeVisits:   r.NodeVisits.Value(),

		Retries:     r.Retries.Value(),
		Rerouted:    r.Rerouted.Value(),
		Unreachable: r.Unreachable.Value(),

		SearchPages:       r.SearchPages.Value(),
		PagesSavedByBound: r.PagesSavedByBound.Value(),
		BoundTightenings:  r.BoundTightenings.Value(),
		DistCompsSaved:    r.DistCompsSaved.Value(),

		PagesPerDisk:         r.PagesPerDisk.Values(),
		ServiceTimePerDiskNs: r.ServiceTimePerDisk.Values(),

		WALAppends:       r.WALAppends.Value(),
		WALSyncs:         r.WALSyncs.Value(),
		WALBytes:         r.WALBytes.Value(),
		Recoveries:       r.Recoveries.Value(),
		RecoveredRecords: r.RecoveredRecords.Value(),

		IngestBatches: r.IngestBatches.Value(),
		ReorgBuckets:  r.ReorgBuckets.Value(),
		CatchupBytes:  r.CatchupBytes.Value(),

		ApproxQueries:      r.ApproxQueries.Value(),
		PagesSkippedApprox: r.PagesSkippedApprox.Value(),

		PagesSavedByRemoteBound: r.PagesSavedByRemoteBound.Value(),
		ShardRPCs:               r.ShardRPCs.Value(),
		ShardRetries:            r.ShardRetries.Value(),
		RemoteBoundTightenings:  r.RemoteBoundTightenings.Value(),

		QueryPages:     r.QueryPages.Snapshot(),
		QueryTimeNs:    r.QueryTimeNs.Snapshot(),
		QueryWallNs:    r.QueryWallNs.Snapshot(),
		WALFsyncNs:     r.WALFsyncNs.Snapshot(),
		LSHProbePages:  r.LSHProbePages.Snapshot(),
		ShardLatencyNs: r.ShardLatencyNs.Snapshot(),
	}
	s.Balance = BalanceCoefficient(s.PagesPerDisk)
	return s
}

// The binary encoding: a magic+version prefix, the disk count, the
// scalar counters in a fixed order, the per-disk arrays, and the
// histograms. Everything is little-endian int64s, so the format is
// fixed-length for a given disk count and version.
//
// Version history: v1 had 12 scalar counters and 2 histograms; v2
// appended the three cooperative-pruning counters; v3 appended the
// DistCompsSaved counter and the QueryWallNs histogram; v4 appended
// the five durability counters and the WALFsyncNs histogram; v5
// appended the three live-mutation counters; v6 appended the two
// approximate-tier counters and the LSHProbePages histogram; v7
// appended the four cluster counters and the ShardLatencyNs histogram.
// Decoding accepts all of them (older encodings leave the newer fields
// zero), encoding always writes the current version.
const (
	codecMagic     = uint32(0x4d545231) // "MTR1"
	codecVersion   = uint32(7)
	codecV1Scalars = 12
	codecV2Scalars = 15
	codecV3Scalars = 16
	codecV4Scalars = 21
	codecV5Scalars = 24
	codecV6Scalars = 26
)

// scalars lists the scalar counters in encoding order. Append-only:
// decoding older versions relies on the prefix staying stable.
func (r *Registry) scalars() []*Counter {
	return []*Counter{
		&r.QueriesKNN, &r.QueriesRange, &r.QueriesBatch, &r.BatchQueries,
		&r.QueryErrors, &r.DegradedQueries,
		&r.PagesRead, &r.CellsVisited, &r.NodeVisits,
		&r.Retries, &r.Rerouted, &r.Unreachable,
		&r.SearchPages, &r.PagesSavedByBound, &r.BoundTightenings,
		&r.DistCompsSaved,
		&r.WALAppends, &r.WALSyncs, &r.WALBytes,
		&r.Recoveries, &r.RecoveredRecords,
		&r.IngestBatches, &r.ReorgBuckets, &r.CatchupBytes,
		&r.ApproxQueries, &r.PagesSkippedApprox,
		&r.PagesSavedByRemoteBound, &r.ShardRPCs, &r.ShardRetries,
		&r.RemoteBoundTightenings,
	}
}

// histograms lists the histograms in encoding order, append-only like
// scalars (v1/v2 encoded only the first two, v3 the first three, v4/v5
// the first four, v6 the first five).
func (r *Registry) histograms() []*Histogram {
	return []*Histogram{&r.QueryPages, &r.QueryTimeNs, &r.QueryWallNs, &r.WALFsyncNs, &r.LSHProbePages, &r.ShardLatencyNs}
}

// MarshalBinary encodes the registry's current values.
func (r *Registry) MarshalBinary() ([]byte, error) {
	disks := r.Disks()
	var buf []byte
	buf = binary.LittleEndian.AppendUint32(buf, codecMagic)
	buf = binary.LittleEndian.AppendUint32(buf, codecVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(disks))
	for _, c := range r.scalars() {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(c.Value()))
	}
	for _, p := range []*PerDisk{r.PagesPerDisk, r.ServiceTimePerDisk} {
		for _, v := range p.Values() {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
		}
	}
	for _, h := range r.histograms() {
		s := h.Snapshot()
		buf = binary.LittleEndian.AppendUint64(buf, uint64(s.Count))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(s.Sum))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Buckets)))
		for _, b := range s.Buckets {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(b))
		}
	}
	return buf, nil
}

// decoder is a bounds-checked little-endian reader.
type decoder struct {
	b   []byte
	off int
}

func (d *decoder) u32() (uint32, error) {
	if d.off+4 > len(d.b) {
		return 0, fmt.Errorf("metrics: truncated encoding at byte %d", d.off)
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v, nil
}

func (d *decoder) i64() (int64, error) {
	if d.off+8 > len(d.b) {
		return 0, fmt.Errorf("metrics: truncated encoding at byte %d", d.off)
	}
	v := int64(binary.LittleEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return v, nil
}

// nonNegative rejects counter values a well-formed registry can never
// hold (fuzzed or corrupted encodings).
func nonNegative(name string, v int64) error {
	if v < 0 {
		return fmt.Errorf("metrics: negative %s %d", name, v)
	}
	return nil
}

// UnmarshalBinary decodes an encoding produced by MarshalBinary into
// the registry, replacing its values. It validates structure (magic,
// version, disk count must match the registry) and plausibility (no
// negative counters; histogram buckets must sum to the count), so a
// corrupted encoding is rejected with an error rather than installed.
func (r *Registry) UnmarshalBinary(data []byte) error {
	d := &decoder{b: data}
	magic, err := d.u32()
	if err != nil {
		return err
	}
	if magic != codecMagic {
		return fmt.Errorf("metrics: bad magic %#x", magic)
	}
	version, err := d.u32()
	if err != nil {
		return err
	}
	if version < 1 || version > codecVersion {
		return fmt.Errorf("metrics: unsupported encoding version %d", version)
	}
	disks, err := d.u32()
	if err != nil {
		return err
	}
	if int(disks) != r.Disks() {
		return fmt.Errorf("metrics: encoding for %d disks, registry has %d", disks, r.Disks())
	}

	scalars := r.scalars()
	encoded := len(scalars)
	switch version {
	case 1:
		encoded = codecV1Scalars
	case 2:
		encoded = codecV2Scalars
	case 3:
		encoded = codecV3Scalars
	case 4:
		encoded = codecV4Scalars
	case 5:
		encoded = codecV5Scalars
	case 6:
		encoded = codecV6Scalars
	}
	vals := make([]int64, len(scalars))
	for i := 0; i < encoded; i++ {
		v, err := d.i64()
		if err != nil {
			return err
		}
		if err := nonNegative("counter", v); err != nil {
			return err
		}
		vals[i] = v
	}
	perDisk := make([][]int64, 2)
	for p := range perDisk {
		perDisk[p] = make([]int64, disks)
		for i := range perDisk[p] {
			v, err := d.i64()
			if err != nil {
				return err
			}
			if err := nonNegative("per-disk value", v); err != nil {
				return err
			}
			perDisk[p][i] = v
		}
	}
	type histVals struct {
		count, sum int64
		buckets    []int64
	}
	encodedHists := len(r.histograms())
	switch {
	case version < 3:
		encodedHists = 2
	case version < 4:
		encodedHists = 3
	case version < 6:
		encodedHists = 4
	case version < 7:
		encodedHists = 5
	}
	hists := make([]histVals, encodedHists)
	for h := range hists {
		var hv histVals
		if hv.count, err = d.i64(); err != nil {
			return err
		}
		if hv.sum, err = d.i64(); err != nil {
			return err
		}
		if err := nonNegative("histogram count", hv.count); err != nil {
			return err
		}
		if err := nonNegative("histogram sum", hv.sum); err != nil {
			return err
		}
		n, err := d.u32()
		if err != nil {
			return err
		}
		if n != HistBuckets {
			return fmt.Errorf("metrics: %d histogram buckets, want %d", n, HistBuckets)
		}
		hv.buckets = make([]int64, n)
		var total int64
		for i := range hv.buckets {
			v, err := d.i64()
			if err != nil {
				return err
			}
			if err := nonNegative("bucket count", v); err != nil {
				return err
			}
			hv.buckets[i] = v
			total += v
		}
		if total != hv.count {
			return fmt.Errorf("metrics: histogram buckets sum to %d, count says %d", total, hv.count)
		}
		hists[h] = hv
	}
	if d.off != len(data) {
		return fmt.Errorf("metrics: %d trailing bytes in encoding", len(data)-d.off)
	}

	// Everything validated — install.
	for i, c := range scalars {
		c.v.Store(vals[i])
	}
	for p, dst := range []*PerDisk{r.PagesPerDisk, r.ServiceTimePerDisk} {
		for i, v := range perDisk[p] {
			dst.vals[i].Store(v)
		}
	}
	for h, dst := range r.histograms() {
		if h >= len(hists) {
			// Histogram absent from an older encoding: reset to zero.
			dst.count.Store(0)
			dst.sum.Store(0)
			for i := range dst.buckets {
				dst.buckets[i].Store(0)
			}
			continue
		}
		dst.count.Store(hists[h].count)
		dst.sum.Store(hists[h].sum)
		for i, v := range hists[h].buckets {
			dst.buckets[i].Store(v)
		}
	}
	return nil
}
