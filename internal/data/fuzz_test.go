package data

import (
	"bytes"
	"strings"
	"testing"
)

// Arbitrary bytes fed to the dataset readers must never panic.
func FuzzReadBinary(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, Uniform(5, 3, 1)); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("PRSDATA1"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, b []byte) {
		pts, err := ReadBinary(bytes.NewReader(b))
		if err != nil {
			return
		}
		// A successful parse must round-trip.
		var out bytes.Buffer
		if err := WriteBinary(&out, pts); err != nil {
			t.Fatalf("re-encoding parsed dataset: %v", err)
		}
		again, err := ReadBinary(&out)
		if err != nil {
			t.Fatalf("re-parsing: %v", err)
		}
		if len(again) != len(pts) {
			t.Fatalf("round trip changed count: %d vs %d", len(again), len(pts))
		}
	})
}

func FuzzReadCSV(f *testing.F) {
	f.Add("1.0,2.0\n3.5,4.5\n")
	f.Add("")
	f.Add("abc,def")
	f.Add("1.0\n2.0,3.0")

	f.Fuzz(func(t *testing.T, s string) {
		pts, err := ReadCSV(strings.NewReader(s))
		if err != nil {
			return
		}
		for i, p := range pts {
			if len(pts) > 0 && len(p) != len(pts[0]) {
				t.Fatalf("accepted ragged CSV: row %d", i)
			}
		}
	})
}
