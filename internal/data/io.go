package data

import (
	"bufio"
	"encoding/binary"
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"

	"parsearch/internal/vec"
)

// Dataset serialization: a CSV form for interoperability (one vector per
// row) and a compact binary form for large generated workloads
// (magic, dimension, count, little-endian float64 coordinates).

// binaryMagic identifies the binary dataset format.
const binaryMagic = "PRSDATA1"

// WriteCSV writes one vector per line, coordinates as decimal columns.
func WriteCSV(w io.Writer, pts []vec.Point) error {
	cw := csv.NewWriter(w)
	record := []string(nil)
	for i, p := range pts {
		if i == 0 {
			record = make([]string, len(p))
		}
		if len(p) != len(record) {
			return fmt.Errorf("data: point %d has dimension %d, want %d", i, len(p), len(record))
		}
		for j, x := range p {
			record[j] = strconv.FormatFloat(x, 'g', -1, 64)
		}
		if err := cw.Write(record); err != nil {
			return fmt.Errorf("data: writing CSV: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("data: writing CSV: %w", err)
	}
	return nil
}

// ReadCSV reads vectors written by WriteCSV (or any numeric CSV with one
// vector per row). All rows must have the same number of columns.
func ReadCSV(r io.Reader) ([]vec.Point, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validate dimensions ourselves for a clearer error
	var out []vec.Point
	dim := -1
	for row := 1; ; row++ {
		record, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("data: reading CSV row %d: %w", row, err)
		}
		if dim == -1 {
			dim = len(record)
			if dim == 0 {
				return nil, fmt.Errorf("data: CSV row %d is empty", row)
			}
		}
		if len(record) != dim {
			return nil, fmt.Errorf("data: CSV row %d has %d columns, want %d", row, len(record), dim)
		}
		p := make(vec.Point, dim)
		for j, field := range record {
			x, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return nil, fmt.Errorf("data: CSV row %d column %d: %w", row, j+1, err)
			}
			p[j] = x
		}
		out = append(out, p)
	}
	return out, nil
}

// WriteBinary writes the compact binary dataset format.
func WriteBinary(w io.Writer, pts []vec.Point) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return fmt.Errorf("data: writing dataset: %w", err)
	}
	dim := 0
	if len(pts) > 0 {
		dim = len(pts[0])
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(dim)); err != nil {
		return fmt.Errorf("data: writing dataset: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(pts))); err != nil {
		return fmt.Errorf("data: writing dataset: %w", err)
	}
	buf := make([]byte, 8*dim)
	for i, p := range pts {
		if len(p) != dim {
			return fmt.Errorf("data: point %d has dimension %d, want %d", i, len(p), dim)
		}
		for j, x := range p {
			binary.LittleEndian.PutUint64(buf[8*j:], math.Float64bits(x))
		}
		if _, err := bw.Write(buf); err != nil {
			return fmt.Errorf("data: writing dataset: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("data: writing dataset: %w", err)
	}
	return nil
}

// ReadBinary reads a dataset written by WriteBinary.
func ReadBinary(r io.Reader) ([]vec.Point, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("data: reading dataset: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("data: not a dataset file (magic %q)", magic)
	}
	var dim uint32
	var count uint64
	if err := binary.Read(br, binary.LittleEndian, &dim); err != nil {
		return nil, fmt.Errorf("data: reading dataset: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("data: reading dataset: %w", err)
	}
	if count > 0 && (dim == 0 || dim > 4096) {
		return nil, fmt.Errorf("data: implausible dataset dimension %d", dim)
	}
	if count > 1<<32 {
		return nil, fmt.Errorf("data: implausible dataset size %d", count)
	}
	// Grow incrementally rather than trusting the header's count: a
	// forged count must fail on EOF, not by exhausting memory first.
	prealloc := count
	if prealloc > 65536 {
		prealloc = 65536
	}
	out := make([]vec.Point, 0, prealloc)
	buf := make([]byte, 8*dim)
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("data: reading dataset point %d: %w", i, err)
		}
		p := make(vec.Point, dim)
		for j := range p {
			p[j] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*j:]))
		}
		out = append(out, p)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("data: trailing bytes after %d points", count)
	}
	return out, nil
}
