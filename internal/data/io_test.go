package data

import (
	"bytes"
	"strings"
	"testing"

	"parsearch/internal/vec"
)

func samePoints(a, b []vec.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !vec.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

func TestCSVRoundTrip(t *testing.T) {
	pts := Uniform(100, 5, 3)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !samePoints(pts, got) {
		t.Fatal("CSV round trip lost data")
	}
}

func TestCSVEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty CSV: %v, %v", got, err)
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("1.0,2.0\n3.0\n")); err == nil {
		t.Error("ragged CSV accepted")
	}
	if _, err := ReadCSV(strings.NewReader("1.0,abc\n")); err == nil {
		t.Error("non-numeric CSV accepted")
	}
	ragged := []vec.Point{{1, 2}, {3}}
	if err := WriteCSV(&bytes.Buffer{}, ragged); err == nil {
		t.Error("ragged points written")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	pts := Fourier(200, 8, 4, 0.15, 5)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, pts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !samePoints(pts, got) {
		t.Fatal("binary round trip lost data")
	}
}

func TestBinaryEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty binary: %v, %v", got, err)
	}
}

func TestBinaryErrors(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("garbage")); err == nil {
		t.Error("garbage accepted")
	}
	pts := Uniform(10, 3, 1)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, pts); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(full[:len(full)-5])); err == nil {
		t.Error("truncated dataset accepted")
	}
	if _, err := ReadBinary(bytes.NewReader(append(append([]byte(nil), full...), 0))); err == nil {
		t.Error("trailing bytes accepted")
	}
	ragged := []vec.Point{{1, 2}, {3}}
	if err := WriteBinary(&bytes.Buffer{}, ragged); err == nil {
		t.Error("ragged points written")
	}
}
