package data

import (
	"math"
	"testing"

	"parsearch/internal/vec"
)

func inUnitCube(t *testing.T, pts []vec.Point, d int) {
	t.Helper()
	for i, p := range pts {
		if len(p) != d {
			t.Fatalf("point %d has dimension %d, want %d", i, len(p), d)
		}
		for j, x := range p {
			if x < 0 || x > 1 || math.IsNaN(x) {
				t.Fatalf("point %d coordinate %d = %v outside [0,1]", i, j, x)
			}
		}
	}
}

func TestUniformBasics(t *testing.T) {
	pts := Uniform(2000, 8, 1)
	if len(pts) != 2000 {
		t.Fatalf("got %d points", len(pts))
	}
	inUnitCube(t, pts, 8)
	// Mean of each dimension should be near 0.5.
	for j := 0; j < 8; j++ {
		sum := 0.0
		for _, p := range pts {
			sum += p[j]
		}
		if mean := sum / 2000; mean < 0.45 || mean > 0.55 {
			t.Errorf("dimension %d mean %v", j, mean)
		}
	}
}

func TestDeterminism(t *testing.T) {
	for name, gen := range map[string]func() []vec.Point{
		"uniform":   func() []vec.Point { return Uniform(100, 4, 7) },
		"clustered": func() []vec.Point { return Clustered(100, 4, 3, 0.05, 7) },
		"fourier":   func() []vec.Point { return Fourier(100, 8, 4, 0.15, 7) },
		"text":      func() []vec.Point { return Text(100, 8, 3, 7) },
	} {
		a, b := gen(), gen()
		for i := range a {
			if !vec.Equal(a[i], b[i]) {
				t.Errorf("%s: generation not deterministic at point %d", name, i)
				break
			}
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := Uniform(10, 4, 1)
	b := Uniform(10, 4, 2)
	same := true
	for i := range a {
		if !vec.Equal(a[i], b[i]) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestClusteredIsClustered(t *testing.T) {
	const d = 8
	pts := Clustered(3000, d, 4, 0.03, 11)
	inUnitCube(t, pts, d)
	// Average pairwise distance of clustered data must be far below the
	// uniform expectation (~sqrt(d/6) for uniform in the unit cube).
	uni := Uniform(3000, d, 11)
	if avgDist(pts) > 0.7*avgDist(uni) {
		t.Errorf("clustered data not clustered: avg dist %v vs uniform %v", avgDist(pts), avgDist(uni))
	}
}

func avgDist(pts []vec.Point) float64 {
	sum, count := 0.0, 0
	for i := 0; i < len(pts); i += 37 {
		for j := i + 1; j < len(pts); j += 53 {
			sum += vec.Dist(pts[i], pts[j])
			count++
		}
	}
	return sum / float64(count)
}

func TestFourierBasics(t *testing.T) {
	const d = 16
	pts := Fourier(2000, d, 6, 0.15, 3)
	inUnitCube(t, pts, d)
	// Fourier descriptors of part families must be clustered relative
	// to uniform.
	uni := Uniform(2000, d, 3)
	if avgDist(pts) > 0.8*avgDist(uni) {
		t.Errorf("fourier data not correlated: %v vs %v", avgDist(pts), avgDist(uni))
	}
	// Dimensions must not be constant (normalization fills [0,1]).
	for j := 0; j < d; j++ {
		lo, hi := 1.0, 0.0
		for _, p := range pts {
			lo = math.Min(lo, p[j])
			hi = math.Max(hi, p[j])
		}
		if hi-lo < 0.9 {
			t.Errorf("dimension %d spans only [%v, %v] after normalization", j, lo, hi)
		}
	}
}

// One part family = the heavily clustered CAD-variant workload of
// Figure 16: most points concentrated in a small region.
func TestFourierSingleFamilyHighlyClustered(t *testing.T) {
	const d = 16
	pts := Fourier(1000, d, 1, 0.05, 9)
	multi := Fourier(1000, d, 8, 0.15, 9)
	if avgDist(pts) > avgDist(multi) {
		t.Errorf("single family (%v) should cluster tighter than 8 families (%v)",
			avgDist(pts), avgDist(multi))
	}
}

func TestTextBasics(t *testing.T) {
	const d = 16
	pts := Text(1500, d, 5, 13)
	inUnitCube(t, pts, d)
	uni := Uniform(1500, d, 13)
	if avgDist(pts) > 0.9*avgDist(uni) {
		t.Errorf("text descriptors not clustered: %v vs %v", avgDist(pts), avgDist(uni))
	}
}

func TestQueriesFromData(t *testing.T) {
	pts := Uniform(500, 4, 17)
	qs := QueriesFromData(pts, 50, 0.01, 18)
	if len(qs) != 50 {
		t.Fatalf("got %d queries", len(qs))
	}
	inUnitCube(t, qs, 4)
	// Each query must be near some data point.
	for _, q := range qs {
		best := math.Inf(1)
		for _, p := range pts {
			if dd := vec.Dist(q, p); dd < best {
				best = dd
			}
		}
		if best > 0.2 {
			t.Errorf("query %v is %v away from all data", q, best)
		}
	}
}

func TestValidationPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"uniform n":        func() { Uniform(-1, 4, 1) },
		"uniform d":        func() { Uniform(10, 0, 1) },
		"clustered k":      func() { Clustered(10, 4, 0, 0.1, 1) },
		"clustered stddev": func() { Clustered(10, 4, 2, 0, 1) },
		"fourier families": func() { Fourier(10, 4, 0, 0.15, 1) },
		"fourier jitter":   func() { Fourier(10, 4, 2, 0, 1) },
		"fourier dims":     func() { Fourier(10, 64, 2, 0.15, 1) },
		"text topics":      func() { Text(10, 4, 0, 1) },
		"queries empty":    func() { QueriesFromData(nil, 5, 0.1, 1) },
		"queries n":        func() { QueriesFromData([]vec.Point{{0.5}}, 0, 0.1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestZeroPoints(t *testing.T) {
	if got := Uniform(0, 4, 1); len(got) != 0 {
		t.Error("Uniform(0) should be empty")
	}
}

func TestDFTMagnitudesKnownSignal(t *testing.T) {
	// A pure cosine at frequency 2 concentrates its energy in
	// coefficient k=2.
	n := 32
	signal := make([]float64, n)
	for s := range signal {
		signal[s] = math.Cos(2 * math.Pi * 2 * float64(s) / float64(n))
	}
	mags := dftMagnitudes(signal, 4)
	// Coefficients are 1-indexed from the fundamental: mags[1] is k=2.
	if mags[1] < 0.4 {
		t.Errorf("k=2 magnitude %v too small", mags[1])
	}
	for _, k := range []int{0, 2, 3} {
		if mags[k] > 0.01 {
			t.Errorf("k=%d magnitude %v should be ~0", k+1, mags[k])
		}
	}
}
