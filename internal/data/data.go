// Package data generates the workloads of the paper's evaluation:
// uniformly distributed points, Fourier points corresponding to contours
// of industrial (CAD) parts, and text descriptors characterizing
// substrings of documents — plus Gaussian cluster mixtures used by the
// recursive-declustering experiment.
//
// The paper used proprietary datasets (R&D CAD archives, document
// collections); this package synthesizes data with the same statistical
// character (see DESIGN.md): Fourier descriptors are computed from
// procedurally generated part contours (a few part families with
// parameter jitter, hence highly clustered and correlated), and text
// descriptors are hashed letter-trigram histograms of Markov-generated
// text. Every generator is deterministic for a given seed, and all points
// lie in the unit cube [0,1]^d.
package data

import (
	"fmt"
	"math"
	"math/rand"

	"parsearch/internal/vec"
)

// Uniform returns n points distributed uniformly in [0,1]^d.
func Uniform(n, d int, seed int64) []vec.Point {
	checkArgs(n, d)
	r := rand.New(rand.NewSource(seed))
	pts := make([]vec.Point, n)
	for i := range pts {
		p := make(vec.Point, d)
		for j := range p {
			p[j] = r.Float64()
		}
		pts[i] = p
	}
	return pts
}

// Clustered returns n points drawn from a mixture of k Gaussian clusters
// with the given standard deviation, clipped to the unit cube. Cluster
// centers are uniform in [0.15, 0.85]^d so the clusters keep most of
// their mass inside the cube.
func Clustered(n, d, k int, stddev float64, seed int64) []vec.Point {
	checkArgs(n, d)
	if k < 1 {
		panic(fmt.Sprintf("data: %d clusters", k))
	}
	if stddev <= 0 {
		panic(fmt.Sprintf("data: stddev %v", stddev))
	}
	r := rand.New(rand.NewSource(seed))
	centers := make([]vec.Point, k)
	for i := range centers {
		c := make(vec.Point, d)
		for j := range c {
			c[j] = 0.15 + 0.7*r.Float64()
		}
		centers[i] = c
	}
	pts := make([]vec.Point, n)
	for i := range pts {
		c := centers[r.Intn(k)]
		p := make(vec.Point, d)
		for j := range p {
			p[j] = clamp01(c[j] + r.NormFloat64()*stddev)
		}
		pts[i] = p
	}
	return pts
}

// contourSamples is the number of boundary points sampled per part
// contour before the Fourier transform.
const contourSamples = 64

// Fourier returns n d-dimensional Fourier descriptors of procedurally
// generated part contours drawn from families part families. Each family
// is a base shape; parts within a family jitter the shape parameters by
// the relative jitter (0.15 gives moderately clustered data; small
// values give the tightly clustered CAD-variant workload of Figure 16).
// Descriptors are the magnitudes of the first d Fourier coefficients of
// the contour's radius profile, normalized per dimension to [0,1].
func Fourier(n, d, families int, jitter float64, seed int64) []vec.Point {
	checkArgs(n, d)
	if families < 1 {
		panic(fmt.Sprintf("data: %d part families", families))
	}
	if jitter <= 0 {
		panic(fmt.Sprintf("data: jitter %v", jitter))
	}
	if d > contourSamples/2 {
		panic(fmt.Sprintf("data: %d descriptor dimensions exceed %d contour harmonics", d, contourSamples/2))
	}
	r := rand.New(rand.NewSource(seed))

	// A part family is a base contour given by its harmonic amplitudes
	// and phases (amplitudes decay with the harmonic index, as for any
	// smooth contour). Every harmonic is drawn independently, so the
	// descriptors have full intrinsic dimensionality — like descriptors
	// of diverse real parts — while variants within a family stay
	// tightly clustered.
	type family struct {
		amps   []float64
		phases []float64
	}
	fams := make([]family, families)
	for i := range fams {
		f := family{amps: make([]float64, d), phases: make([]float64, d)}
		for k := 0; k < d; k++ {
			f.amps[k] = (0.05 + 0.45*r.Float64()) / (1 + 0.3*float64(k))
			f.phases[k] = 2 * math.Pi * r.Float64()
		}
		fams[i] = f
	}

	pts := make([]vec.Point, n)
	radius := make([]float64, contourSamples)
	for i := range pts {
		f := fams[r.Intn(families)]
		for s := 0; s < contourSamples; s++ {
			radius[s] = 1
		}
		// Jitter every harmonic independently: a variant of the part.
		for k := 0; k < d; k++ {
			amp := f.amps[k] * (1 + jitter*r.NormFloat64())
			phase := f.phases[k] + 0.1*r.NormFloat64()
			for s := 0; s < contourSamples; s++ {
				th := 2 * math.Pi * float64(s) / contourSamples
				radius[s] += amp * math.Cos(float64(k+1)*th+phase)
			}
		}
		pts[i] = dftMagnitudes(radius, d)
	}
	normalizeColumns(pts)
	return pts
}

// dftMagnitudes returns the magnitudes of the first d DFT coefficients
// (starting at the fundamental, skipping the DC term) of the signal.
func dftMagnitudes(signal []float64, d int) vec.Point {
	n := len(signal)
	out := make(vec.Point, d)
	for k := 1; k <= d; k++ {
		var re, im float64
		for s, x := range signal {
			angle := -2 * math.Pi * float64(k) * float64(s) / float64(n)
			re += x * math.Cos(angle)
			im += x * math.Sin(angle)
		}
		out[k-1] = math.Hypot(re, im) / float64(n)
	}
	return out
}

// Text returns n d-dimensional text descriptors: hashed letter-trigram
// histograms of substrings of Markov-chain generated text, normalized per
// dimension to [0,1]. Like real text descriptors they are sparse, skewed
// and clustered by topic (each Markov chain is one "topic").
func Text(n, d, topics int, seed int64) []vec.Point {
	checkArgs(n, d)
	if topics < 1 {
		panic(fmt.Sprintf("data: %d topics", topics))
	}
	r := rand.New(rand.NewSource(seed))

	// Per-topic syllable inventories: a small set of syllables heavily
	// reused within the topic makes trigram statistics topic-specific.
	const alphabet = "abcdefghijklmnopqrstuvwxyz"
	syllables := make([][]string, topics)
	for t := range syllables {
		count := 12 + r.Intn(8)
		set := make([]string, count)
		for i := range set {
			l := 2 + r.Intn(2)
			b := make([]byte, l)
			for j := range b {
				b[j] = alphabet[r.Intn(len(alphabet))]
			}
			set[i] = string(b)
		}
		syllables[t] = set
	}

	pts := make([]vec.Point, n)
	for i := range pts {
		topic := r.Intn(topics)
		// A substring of ~40 syllables from the topic's language.
		var text []byte
		for s := 0; s < 40; s++ {
			text = append(text, syllables[topic][r.Intn(len(syllables[topic]))]...)
			if r.Float64() < 0.2 {
				text = append(text, ' ')
			}
		}
		p := make(vec.Point, d)
		for j := 0; j+3 <= len(text); j++ {
			h := trigramHash(text[j], text[j+1], text[j+2])
			p[h%uint32(d)]++
		}
		// Scale by substring length so descriptors are comparable.
		for j := range p {
			p[j] /= float64(len(text))
		}
		pts[i] = p
	}
	normalizeColumns(pts)
	return pts
}

// trigramHash is an FNV-style hash of three letters.
func trigramHash(a, b, c byte) uint32 {
	h := uint32(2166136261)
	for _, x := range [3]byte{a, b, c} {
		h ^= uint32(x)
		h *= 16777619
	}
	return h
}

// QueriesFromData samples n query points from the data set with a small
// Gaussian jitter — the query model for the real-data experiments (query
// points follow the data distribution).
func QueriesFromData(points []vec.Point, n int, jitter float64, seed int64) []vec.Point {
	if len(points) == 0 {
		panic("data: QueriesFromData with no points")
	}
	if n < 1 {
		panic(fmt.Sprintf("data: %d queries", n))
	}
	r := rand.New(rand.NewSource(seed))
	out := make([]vec.Point, n)
	for i := range out {
		src := points[r.Intn(len(points))]
		q := make(vec.Point, len(src))
		for j, x := range src {
			q[j] = clamp01(x + r.NormFloat64()*jitter)
		}
		out[i] = q
	}
	return out
}

// normalizeColumns rescales every dimension linearly onto [0,1] over the
// point set (constant dimensions map to 0.5).
func normalizeColumns(pts []vec.Point) {
	if len(pts) == 0 {
		return
	}
	d := len(pts[0])
	for j := 0; j < d; j++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, p := range pts {
			if p[j] < lo {
				lo = p[j]
			}
			if p[j] > hi {
				hi = p[j]
			}
		}
		if hi == lo {
			for _, p := range pts {
				p[j] = 0.5
			}
			continue
		}
		for _, p := range pts {
			p[j] = (p[j] - lo) / (hi - lo)
		}
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func checkArgs(n, d int) {
	if n < 0 {
		panic(fmt.Sprintf("data: %d points", n))
	}
	if d < 1 {
		panic(fmt.Sprintf("data: dimension %d", d))
	}
}
