package vec

import (
	"fmt"
	"math"
)

// The search algorithms order candidates by "rank distance": a value
// that sorts identically to the metric distance but is cheaper to
// compute — the squared distance for L2, the plain distance for L1 and
// L∞. RankDist/RankMinDist produce rank distances and FromRank converts
// them back.

// RankDist returns the rank distance between two points under m.
func (m Metric) RankDist(a, b Point) float64 {
	switch m {
	case L2:
		return SqDist(a, b)
	case L1, LInf:
		return m.Dist(a, b)
	default:
		panic(fmt.Sprintf("vec: unknown metric %d", int(m)))
	}
}

// RankMinDist returns the rank distance from q to the closest point of
// r under m (zero when q lies inside r) — MINDIST generalized to the
// Minkowski metrics.
func (m Metric) RankMinDist(r Rect, q Point) float64 {
	switch m {
	case L2:
		return r.SqMinDist(q)
	case L1:
		var s float64
		for i := range r.Min {
			switch {
			case q[i] < r.Min[i]:
				s += r.Min[i] - q[i]
			case q[i] > r.Max[i]:
				s += q[i] - r.Max[i]
			}
		}
		return s
	case LInf:
		var s float64
		for i := range r.Min {
			var d float64
			switch {
			case q[i] < r.Min[i]:
				d = r.Min[i] - q[i]
			case q[i] > r.Max[i]:
				d = q[i] - r.Max[i]
			}
			if d > s {
				s = d
			}
		}
		return s
	default:
		panic(fmt.Sprintf("vec: unknown metric %d", int(m)))
	}
}

// FromRank converts a rank distance back to the metric distance.
func (m Metric) FromRank(v float64) float64 {
	if m == L2 {
		return math.Sqrt(v)
	}
	return v
}

// ToRank converts a metric distance to a rank distance.
func (m Metric) ToRank(v float64) float64 {
	if m == L2 {
		return v * v
	}
	return v
}
