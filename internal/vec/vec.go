// Package vec provides the geometric primitives used throughout parsearch:
// d-dimensional points, hyperrectangles (minimum bounding rectangles), the
// standard Minkowski metrics, and the MINDIST / MINMAXDIST / MAXDIST
// functions between points and rectangles on which all nearest-neighbor
// algorithms rely.
//
// All functions treat points as []float64 of equal length; length mismatches
// are programming errors and panic, mirroring the behaviour of slice
// indexing itself.
package vec

import (
	"fmt"
	"math"
	"strings"
)

// Point is a position in d-dimensional space. The data space of the paper is
// the unit hypercube [0,1]^d, but nothing in this package assumes it.
type Point = []float64

// Clone returns a copy of p that shares no memory with it.
func Clone(p Point) Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Equal reports whether a and b have the same dimensionality and identical
// coordinates.
func Equal(a, b Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Format renders p with the given precision, e.g. "(0.25, 0.50)".
func Format(p Point, prec int) string {
	var sb strings.Builder
	sb.WriteByte('(')
	for i, x := range p {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%.*f", prec, x)
	}
	sb.WriteByte(')')
	return sb.String()
}

// Metric identifies one of the Minkowski metrics L_p.
type Metric int

const (
	// L2 is the Euclidean metric, the similarity measure used by the paper
	// for feature vectors.
	L2 Metric = iota
	// L1 is the Manhattan metric.
	L1
	// LInf is the maximum metric.
	LInf
)

// String returns the conventional name of the metric.
func (m Metric) String() string {
	switch m {
	case L2:
		return "L2"
	case L1:
		return "L1"
	case LInf:
		return "Linf"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Dist returns the distance between a and b under metric m.
func (m Metric) Dist(a, b Point) float64 {
	switch m {
	case L2:
		return math.Sqrt(SqDist(a, b))
	case L1:
		var s float64
		for i := range a {
			s += math.Abs(a[i] - b[i])
		}
		return s
	case LInf:
		var s float64
		for i := range a {
			if d := math.Abs(a[i] - b[i]); d > s {
				s = d
			}
		}
		return s
	default:
		panic(fmt.Sprintf("vec: unknown metric %d", int(m)))
	}
}

// SqDist returns the squared Euclidean distance between a and b. Euclidean
// k-NN search compares squared distances to avoid square roots on the hot
// path.
func SqDist(a, b Point) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Dist is shorthand for L2.Dist.
func Dist(a, b Point) float64 {
	return math.Sqrt(SqDist(a, b))
}

// Rect is an axis-aligned hyperrectangle, the minimum bounding rectangle
// (MBR) of index structures. Min[i] <= Max[i] must hold in every dimension
// for a valid rectangle.
type Rect struct {
	Min, Max Point
}

// NewRect returns a rectangle with its own copies of min and max. It panics
// if the slices have different lengths or min exceeds max anywhere.
func NewRect(min, max Point) Rect {
	if len(min) != len(max) {
		panic("vec: NewRect with mismatched dimensions")
	}
	for i := range min {
		if min[i] > max[i] {
			panic(fmt.Sprintf("vec: NewRect with min > max in dimension %d", i))
		}
	}
	return Rect{Min: Clone(min), Max: Clone(max)}
}

// PointRect returns the degenerate rectangle containing exactly p.
func PointRect(p Point) Rect {
	return Rect{Min: Clone(p), Max: Clone(p)}
}

// UnitCube returns [0,1]^d, the data space assumed by the paper.
func UnitCube(d int) Rect {
	min := make(Point, d)
	max := make(Point, d)
	for i := range max {
		max[i] = 1
	}
	return Rect{Min: min, Max: max}
}

// Dim returns the dimensionality of r.
func (r Rect) Dim() int { return len(r.Min) }

// Clone returns a deep copy of r.
func (r Rect) Clone() Rect {
	return Rect{Min: Clone(r.Min), Max: Clone(r.Max)}
}

// Valid reports whether Min <= Max holds in every dimension.
func (r Rect) Valid() bool {
	if len(r.Min) != len(r.Max) {
		return false
	}
	for i := range r.Min {
		if r.Min[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// Contains reports whether p lies inside r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	for i := range r.Min {
		if p[i] < r.Min[i] || p[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// ContainsRect reports whether s lies entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	for i := range r.Min {
		if s.Min[i] < r.Min[i] || s.Max[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	for i := range r.Min {
		if r.Max[i] < s.Min[i] || s.Max[i] < r.Min[i] {
			return false
		}
	}
	return true
}

// Center returns the centroid of r.
func (r Rect) Center() Point {
	c := make(Point, len(r.Min))
	for i := range c {
		c[i] = (r.Min[i] + r.Max[i]) / 2
	}
	return c
}

// Area returns the d-dimensional volume of r. Degenerate rectangles have
// area zero.
func (r Rect) Area() float64 {
	a := 1.0
	for i := range r.Min {
		a *= r.Max[i] - r.Min[i]
	}
	return a
}

// Margin returns the sum of the edge lengths of r, the "margin" criterion of
// the R*-tree split algorithm.
func (r Rect) Margin() float64 {
	var m float64
	for i := range r.Min {
		m += r.Max[i] - r.Min[i]
	}
	return m
}

// Extend grows r in place so that it contains p.
func (r *Rect) Extend(p Point) {
	for i := range r.Min {
		if p[i] < r.Min[i] {
			r.Min[i] = p[i]
		}
		if p[i] > r.Max[i] {
			r.Max[i] = p[i]
		}
	}
}

// ExtendRect grows r in place so that it contains s.
func (r *Rect) ExtendRect(s Rect) {
	for i := range r.Min {
		if s.Min[i] < r.Min[i] {
			r.Min[i] = s.Min[i]
		}
		if s.Max[i] > r.Max[i] {
			r.Max[i] = s.Max[i]
		}
	}
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	u := r.Clone()
	u.ExtendRect(s)
	return u
}

// Intersection returns the overlap of r and s and true, or a zero Rect and
// false if they are disjoint.
func (r Rect) Intersection(s Rect) (Rect, bool) {
	if !r.Intersects(s) {
		return Rect{}, false
	}
	out := Rect{Min: make(Point, len(r.Min)), Max: make(Point, len(r.Min))}
	for i := range r.Min {
		out.Min[i] = math.Max(r.Min[i], s.Min[i])
		out.Max[i] = math.Min(r.Max[i], s.Max[i])
	}
	return out, true
}

// OverlapArea returns the volume of the intersection of r and s, or 0 if
// they are disjoint.
func (r Rect) OverlapArea(s Rect) float64 {
	a := 1.0
	for i := range r.Min {
		lo := math.Max(r.Min[i], s.Min[i])
		hi := math.Min(r.Max[i], s.Max[i])
		if hi <= lo {
			return 0
		}
		a *= hi - lo
	}
	return a
}

// Enlargement returns the increase in area required for r to contain s.
func (r Rect) Enlargement(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}

// SqMinDist returns MINDIST(q, r)^2 under the Euclidean metric: the squared
// distance from q to the closest point of r, zero if q lies inside r
// [RKV 95]. Every NN algorithm uses this as its optimistic bound.
func (r Rect) SqMinDist(q Point) float64 {
	var s float64
	for i := range r.Min {
		switch {
		case q[i] < r.Min[i]:
			d := r.Min[i] - q[i]
			s += d * d
		case q[i] > r.Max[i]:
			d := q[i] - r.Max[i]
			s += d * d
		}
	}
	return s
}

// MinDist returns MINDIST(q, r) under the Euclidean metric.
func (r Rect) MinDist(q Point) float64 {
	return math.Sqrt(r.SqMinDist(q))
}

// SqMaxDist returns the squared distance from q to the farthest point of r,
// the pessimistic bound: every point inside r is at most this far from q.
func (r Rect) SqMaxDist(q Point) float64 {
	var s float64
	for i := range r.Min {
		d := math.Max(math.Abs(q[i]-r.Min[i]), math.Abs(q[i]-r.Max[i]))
		s += d * d
	}
	return s
}

// MaxDist returns the distance from q to the farthest point of r.
func (r Rect) MaxDist(q Point) float64 {
	return math.Sqrt(r.SqMaxDist(q))
}

// SqMinMaxDist returns MINMAXDIST(q, r)^2 [RKV 95]: the smallest distance
// within which a data point inside r is guaranteed to exist, provided r is a
// minimum bounding rectangle (every face of an MBR touches at least one data
// object). The RKV pruning rule discards any rectangle whose MINDIST exceeds
// another rectangle's MINMAXDIST.
func (r Rect) SqMinMaxDist(q Point) float64 {
	d := len(r.Min)
	// S = sum over all dimensions of the squared distance to the *far*
	// face; for each candidate dimension k we swap the far-face term for
	// the near-face term in k.
	var total float64
	far := make([]float64, d)
	near := make([]float64, d)
	for i := 0; i < d; i++ {
		// rM: the far edge coordinate in dimension i.
		rm := r.Min[i]
		if q[i] >= (r.Min[i]+r.Max[i])/2 {
			rm = r.Min[i]
		} else {
			rm = r.Max[i]
		}
		f := q[i] - rm
		far[i] = f * f

		// rm_k: the near edge coordinate in dimension i.
		rn := r.Max[i]
		if q[i] <= (r.Min[i]+r.Max[i])/2 {
			rn = r.Min[i]
		} else {
			rn = r.Max[i]
		}
		n := q[i] - rn
		near[i] = n * n
		total += far[i]
	}
	best := math.Inf(1)
	for k := 0; k < d; k++ {
		if v := total - far[k] + near[k]; v < best {
			best = v
		}
	}
	return best
}

// MinMaxDist returns MINMAXDIST(q, r).
func (r Rect) MinMaxDist(q Point) float64 {
	return math.Sqrt(r.SqMinMaxDist(q))
}

// SqDistSphereIntersects reports whether the sphere of squared radius sqR
// around q intersects r. The NN-sphere test of the paper (Fig. 4): a page
// must be read iff its region intersects the NN-sphere.
func (r Rect) SqDistSphereIntersects(q Point, sqR float64) bool {
	return r.SqMinDist(q) <= sqR
}

// String renders r as "[min .. max]" with 3 digits of precision.
func (r Rect) String() string {
	return fmt.Sprintf("[%s .. %s]", Format(r.Min, 3), Format(r.Max, 3))
}

// MBR returns the minimum bounding rectangle of the given points. It panics
// on an empty input.
func MBR(points []Point) Rect {
	if len(points) == 0 {
		panic("vec: MBR of no points")
	}
	r := PointRect(points[0])
	for _, p := range points[1:] {
		r.Extend(p)
	}
	return r
}
