package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randPoint(r *rand.Rand, d int) Point {
	p := make(Point, d)
	for i := range p {
		p[i] = r.Float64()
	}
	return p
}

func randRect(r *rand.Rand, d int) Rect {
	a := randPoint(r, d)
	b := randPoint(r, d)
	for i := range a {
		if a[i] > b[i] {
			a[i], b[i] = b[i], a[i]
		}
	}
	return Rect{Min: a, Max: b}
}

func TestMetricsKnownValues(t *testing.T) {
	a := Point{0, 0}
	b := Point{3, 4}
	tests := []struct {
		m    Metric
		want float64
	}{
		{L2, 5},
		{L1, 7},
		{LInf, 4},
	}
	for _, tt := range tests {
		if got := tt.m.Dist(a, b); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("%v.Dist = %v, want %v", tt.m, got, tt.want)
		}
	}
	if got := SqDist(a, b); got != 25 {
		t.Errorf("SqDist = %v, want 25", got)
	}
	if got := Dist(a, b); got != 5 {
		t.Errorf("Dist = %v, want 5", got)
	}
}

func TestMetricString(t *testing.T) {
	if L2.String() != "L2" || L1.String() != "L1" || LInf.String() != "Linf" {
		t.Errorf("unexpected metric names: %v %v %v", L2, L1, LInf)
	}
	if Metric(99).String() != "Metric(99)" {
		t.Errorf("unexpected fallback name %v", Metric(99))
	}
}

func TestMetricAxioms(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, m := range []Metric{L2, L1, LInf} {
		for i := 0; i < 200; i++ {
			d := 1 + r.Intn(10)
			a, b, c := randPoint(r, d), randPoint(r, d), randPoint(r, d)
			if m.Dist(a, a) != 0 {
				t.Fatalf("%v: d(a,a) != 0", m)
			}
			if math.Abs(m.Dist(a, b)-m.Dist(b, a)) > 1e-12 {
				t.Fatalf("%v: not symmetric", m)
			}
			if m.Dist(a, c) > m.Dist(a, b)+m.Dist(b, c)+1e-12 {
				t.Fatalf("%v: triangle inequality violated", m)
			}
		}
	}
}

func TestUnknownMetricPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown metric")
		}
	}()
	Metric(42).Dist(Point{0}, Point{1})
}

func TestCloneAndEqual(t *testing.T) {
	p := Point{1, 2, 3}
	q := Clone(p)
	if !Equal(p, q) {
		t.Fatal("clone not equal")
	}
	q[0] = 9
	if Equal(p, q) {
		t.Fatal("clone shares memory")
	}
	if Equal(Point{1}, Point{1, 2}) {
		t.Fatal("points of different dimension compare equal")
	}
}

func TestFormat(t *testing.T) {
	if got := Format(Point{0.25, 0.5}, 2); got != "(0.25, 0.50)" {
		t.Errorf("Format = %q", got)
	}
}

func TestNewRectValidation(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{1, 2})
	if !r.Valid() || r.Dim() != 2 {
		t.Fatalf("unexpected rect %v", r)
	}
	for _, tc := range []struct{ min, max Point }{
		{Point{0}, Point{0, 1}},
		{Point{2, 0}, Point{1, 1}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewRect(%v, %v): expected panic", tc.min, tc.max)
				}
			}()
			NewRect(tc.min, tc.max)
		}()
	}
}

func TestRectBasics(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{2, 4})
	if got := r.Area(); got != 8 {
		t.Errorf("Area = %v, want 8", got)
	}
	if got := r.Margin(); got != 6 {
		t.Errorf("Margin = %v, want 6", got)
	}
	if c := r.Center(); !Equal(c, Point{1, 2}) {
		t.Errorf("Center = %v", c)
	}
	if !r.Contains(Point{1, 1}) || r.Contains(Point{3, 1}) {
		t.Error("Contains wrong")
	}
	if !r.Contains(Point{0, 0}) || !r.Contains(Point{2, 4}) {
		t.Error("boundary should be inclusive")
	}
	s := NewRect(Point{1, 1}, Point{3, 3})
	if !r.Intersects(s) {
		t.Error("should intersect")
	}
	if r.ContainsRect(s) {
		t.Error("should not contain")
	}
	if !r.ContainsRect(NewRect(Point{0.5, 1}, Point{1, 2})) {
		t.Error("should contain")
	}
	u := r.Union(s)
	if !Equal(u.Min, Point{0, 0}) || !Equal(u.Max, Point{3, 4}) {
		t.Errorf("Union = %v", u)
	}
	if got := r.OverlapArea(s); got != 2 {
		t.Errorf("OverlapArea = %v, want 2", got)
	}
	if got := r.Enlargement(s); got != u.Area()-r.Area() {
		t.Errorf("Enlargement = %v", got)
	}
	inter, ok := r.Intersection(s)
	if !ok || !Equal(inter.Min, Point{1, 1}) || !Equal(inter.Max, Point{2, 3}) {
		t.Errorf("Intersection = %v ok=%v", inter, ok)
	}
	far := NewRect(Point{10, 10}, Point{11, 11})
	if _, ok := r.Intersection(far); ok {
		t.Error("disjoint rects should not intersect")
	}
	if r.OverlapArea(far) != 0 {
		t.Error("disjoint overlap should be 0")
	}
	if r.Intersects(far) {
		t.Error("disjoint rects report Intersects")
	}
}

func TestUnitCube(t *testing.T) {
	c := UnitCube(3)
	if c.Area() != 1 || !c.Contains(Point{0.5, 0.5, 0.5}) {
		t.Errorf("UnitCube wrong: %v", c)
	}
}

func TestPointRectAndMBR(t *testing.T) {
	p := Point{0.3, 0.7}
	pr := PointRect(p)
	if pr.Area() != 0 || !pr.Contains(p) {
		t.Errorf("PointRect wrong: %v", pr)
	}
	pts := []Point{{0, 1}, {1, 0}, {0.5, 0.5}}
	m := MBR(pts)
	if !Equal(m.Min, Point{0, 0}) || !Equal(m.Max, Point{1, 1}) {
		t.Errorf("MBR = %v", m)
	}
	defer func() {
		if recover() == nil {
			t.Error("MBR of empty slice should panic")
		}
	}()
	MBR(nil)
}

func TestMinDistKnownValues(t *testing.T) {
	r := NewRect(Point{1, 1}, Point{2, 2})
	tests := []struct {
		q    Point
		want float64
	}{
		{Point{1.5, 1.5}, 0},      // inside
		{Point{0, 1.5}, 1},        // left of
		{Point{3, 1.5}, 1},        // right of
		{Point{0, 0}, math.Sqrt2}, // corner
		{Point{1, 1}, 0},          // on boundary
		{Point{2.5, 2.5}, math.Sqrt(0.5)},
	}
	for _, tt := range tests {
		if got := r.MinDist(tt.q); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("MinDist(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
}

func TestMaxDistKnownValues(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{1, 1})
	if got := r.MaxDist(Point{0, 0}); math.Abs(got-math.Sqrt2) > 1e-12 {
		t.Errorf("MaxDist = %v, want sqrt(2)", got)
	}
	if got := r.MaxDist(Point{0.5, 0.5}); math.Abs(got-math.Sqrt(0.5)) > 1e-12 {
		t.Errorf("MaxDist from center = %v", got)
	}
}

func TestMinMaxDistKnownValue(t *testing.T) {
	// Unit square, query at origin: MINMAXDIST is the distance to the
	// farthest point of the nearest face = 1 (e.g. point (0,1) via face
	// x=0 ... min over k of sqrt(near_k^2 + far_rest^2) = sqrt(0+1) = 1.
	r := NewRect(Point{0, 0}, Point{1, 1})
	if got := r.MinMaxDist(Point{0, 0}); math.Abs(got-1) > 1e-12 {
		t.Errorf("MinMaxDist = %v, want 1", got)
	}
}

// Property: MINDIST <= dist(q, p) for every p in r, and
// dist(q, p) <= MAXDIST. MINMAXDIST lies between MINDIST and MAXDIST.
func TestDistBoundsProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		d := 1 + r.Intn(8)
		rect := randRect(r, d)
		q := randPoint(r, d)
		// Random point inside rect.
		p := make(Point, d)
		for j := range p {
			p[j] = rect.Min[j] + r.Float64()*(rect.Max[j]-rect.Min[j])
		}
		dist := Dist(q, p)
		if min := rect.MinDist(q); min > dist+1e-9 {
			t.Fatalf("MINDIST %v > dist %v", min, dist)
		}
		if max := rect.MaxDist(q); dist > max+1e-9 {
			t.Fatalf("dist %v > MAXDIST %v", dist, max)
		}
		mm := rect.MinMaxDist(q)
		if mm < rect.MinDist(q)-1e-9 || mm > rect.MaxDist(q)+1e-9 {
			t.Fatalf("MINMAXDIST %v outside [MINDIST %v, MAXDIST %v]",
				mm, rect.MinDist(q), rect.MaxDist(q))
		}
	}
}

// Property: for a degenerate rectangle (a point), MINDIST = MAXDIST =
// MINMAXDIST = distance to that point.
func TestDegenerateRectDistances(t *testing.T) {
	unit := func(x float64) float64 { // map arbitrary float to [0,1)
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return 0.5
		}
		return math.Abs(x) - math.Floor(math.Abs(x))
	}
	f := func(a, b [4]float64) bool {
		p := Point{unit(a[0]), unit(a[1]), unit(a[2]), unit(a[3])}
		q := Point{unit(b[0]), unit(b[1]), unit(b[2]), unit(b[3])}
		r := PointRect(p)
		want := Dist(q, p)
		return math.Abs(r.MinDist(q)-want) < 1e-9 &&
			math.Abs(r.MaxDist(q)-want) < 1e-9 &&
			math.Abs(r.MinMaxDist(q)-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: MINMAXDIST is an upper bound on the NN distance when the
// rectangle is a true MBR: some data point must lie within MINMAXDIST.
// We verify with point sets whose MBR we compute: the nearest point of the
// set is always within MINMAXDIST of the query.
func TestMinMaxDistGuarantee(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 300; i++ {
		d := 1 + r.Intn(6)
		n := 2 + r.Intn(10)
		pts := make([]Point, n)
		for j := range pts {
			pts[j] = randPoint(r, d)
		}
		// Force the MBR property: project points so every face is
		// touched. MBR() of the raw points already guarantees this.
		m := MBR(pts)
		q := randPoint(r, d)
		nn := math.Inf(1)
		for _, p := range pts {
			if dd := Dist(q, p); dd < nn {
				nn = dd
			}
		}
		// The MINMAXDIST guarantee holds per face only if each face
		// is touched by a point, which MBR construction ensures in
		// aggregate (each face touched by >= 1 point).
		if mm := m.MinMaxDist(q); nn > mm+1e-9 {
			// This can legitimately happen: MINMAXDIST guarantees an
			// object within that distance only under the assumption
			// that each face contains a point. MBR guarantees each
			// face is touched, so the guarantee does hold.
			t.Fatalf("NN dist %v > MINMAXDIST %v (d=%d n=%d)", nn, mm, d, n)
		}
	}
}

func TestSphereIntersection(t *testing.T) {
	r := NewRect(Point{1, 1}, Point{2, 2})
	q := Point{0, 1.5}
	if !r.SqDistSphereIntersects(q, 1.0) { // radius 1 touches
		t.Error("sphere of radius 1 should touch rect")
	}
	if r.SqDistSphereIntersects(q, 0.81) { // radius 0.9 misses
		t.Error("sphere of radius 0.9 should miss rect")
	}
}

func TestExtend(t *testing.T) {
	r := PointRect(Point{0.5, 0.5})
	r.Extend(Point{0, 1})
	r.Extend(Point{1, 0})
	if !Equal(r.Min, Point{0, 0}) || !Equal(r.Max, Point{1, 1}) {
		t.Errorf("Extend produced %v", r)
	}
	s := PointRect(Point{2, 2})
	r.ExtendRect(s)
	if !Equal(r.Max, Point{2, 2}) {
		t.Errorf("ExtendRect produced %v", r)
	}
}

func TestRectString(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{1, 1})
	if got := r.String(); got != "[(0.000, 0.000) .. (1.000, 1.000)]" {
		t.Errorf("String = %q", got)
	}
}

func TestRectCloneIndependence(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{1, 1})
	c := r.Clone()
	c.Min[0] = -5
	if r.Min[0] != 0 {
		t.Error("Clone shares memory")
	}
}

func TestValid(t *testing.T) {
	if (Rect{Min: Point{1}, Max: Point{0}}).Valid() {
		t.Error("inverted rect reports valid")
	}
	if (Rect{Min: Point{0, 0}, Max: Point{1}}).Valid() {
		t.Error("mismatched dims report valid")
	}
}

func BenchmarkSqDist16(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	p, q := randPoint(r, 16), randPoint(r, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SqDist(p, q)
	}
}

func BenchmarkSqMinDist16(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	rect := randRect(r, 16)
	q := randPoint(r, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rect.SqMinDist(q)
	}
}
