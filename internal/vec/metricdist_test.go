package vec

import (
	"math"
	"math/rand"
	"testing"
)

// RankDist must order pairs exactly like Dist.
func TestRankDistOrdering(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, m := range []Metric{L2, L1, LInf} {
		for trial := 0; trial < 500; trial++ {
			d := 1 + r.Intn(8)
			q := randPoint(r, d)
			a := randPoint(r, d)
			b := randPoint(r, d)
			dOrder := m.Dist(q, a) < m.Dist(q, b)
			rOrder := m.RankDist(q, a) < m.RankDist(q, b)
			if dOrder != rOrder {
				t.Fatalf("%v: rank order disagrees with metric order", m)
			}
		}
	}
}

// FromRank inverts ToRank and recovers the metric distance from the rank
// distance.
func TestRankConversions(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for _, m := range []Metric{L2, L1, LInf} {
		for trial := 0; trial < 200; trial++ {
			d := 1 + r.Intn(6)
			a, b := randPoint(r, d), randPoint(r, d)
			dist := m.Dist(a, b)
			if got := m.FromRank(m.RankDist(a, b)); math.Abs(got-dist) > 1e-12 {
				t.Fatalf("%v: FromRank(RankDist) = %v, want %v", m, got, dist)
			}
			if got := m.FromRank(m.ToRank(dist)); math.Abs(got-dist) > 1e-12 {
				t.Fatalf("%v: FromRank(ToRank) = %v, want %v", m, got, dist)
			}
		}
	}
}

// RankMinDist is a valid lower bound: for every point p inside the
// rectangle, RankMinDist(r, q) <= RankDist(q, p); and it is tight at the
// closest point.
func TestRankMinDistLowerBound(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, m := range []Metric{L2, L1, LInf} {
		for trial := 0; trial < 500; trial++ {
			d := 1 + r.Intn(6)
			rect := randRect(r, d)
			q := randPoint(r, d)
			p := make(Point, d)
			closest := make(Point, d)
			for j := range p {
				p[j] = rect.Min[j] + r.Float64()*(rect.Max[j]-rect.Min[j])
				closest[j] = math.Max(rect.Min[j], math.Min(rect.Max[j], q[j]))
			}
			if min := m.RankMinDist(rect, q); min > m.RankDist(q, p)+1e-12 {
				t.Fatalf("%v: RankMinDist %v > RankDist %v", m, min, m.RankDist(q, p))
			}
			want := m.RankDist(q, closest)
			if got := m.RankMinDist(rect, q); math.Abs(got-want) > 1e-9 {
				t.Fatalf("%v: RankMinDist %v, closest-point distance %v", m, got, want)
			}
		}
	}
}

func TestRankMinDistInsideIsZero(t *testing.T) {
	rect := NewRect(Point{0, 0}, Point{1, 1})
	for _, m := range []Metric{L2, L1, LInf} {
		if got := m.RankMinDist(rect, Point{0.3, 0.8}); got != 0 {
			t.Errorf("%v: inside point has RankMinDist %v", m, got)
		}
	}
}

func TestRankMinDistKnownValues(t *testing.T) {
	rect := NewRect(Point{1, 1}, Point{2, 2})
	q := Point{0, 0}
	if got := L1.RankMinDist(rect, q); got != 2 {
		t.Errorf("L1 = %v, want 2", got)
	}
	if got := LInf.RankMinDist(rect, q); got != 1 {
		t.Errorf("Linf = %v, want 1", got)
	}
	if got := L2.RankMinDist(rect, q); got != 2 { // squared sqrt(2)^2
		t.Errorf("L2 rank = %v, want 2", got)
	}
}

func TestRankPanicsOnUnknownMetric(t *testing.T) {
	for name, f := range map[string]func(){
		"RankDist":    func() { Metric(9).RankDist(Point{0}, Point{1}) },
		"RankMinDist": func() { Metric(9).RankMinDist(NewRect(Point{0}, Point{1}), Point{0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
