package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"parsearch/internal/fsx"
)

// collect replays data and returns the records, failing on error.
func collect(t *testing.T, data []byte) ([]Record, ReplayStats) {
	t.Helper()
	var recs []Record
	stats, err := Replay(data, func(r Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return recs, stats
}

func TestRoundTrip(t *testing.T) {
	var log []byte
	log = append(log, EncodeCheckpoint(7, true)...)
	log = append(log, EncodeInsert(0, []float64{1.5, -2.25, 0})...)
	log = append(log, EncodeDelete(0)...)
	log = append(log, EncodeInsert(1, nil)...)

	recs, stats := collect(t, log)
	if stats.Records != 4 || stats.ValidLen != int64(len(log)) || stats.TornBytes != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	want := []Record{
		{Type: RecCheckpoint, Gen: 7, Rebase: true},
		{Type: RecInsert, ID: 0, Point: []float64{1.5, -2.25, 0}},
		{Type: RecDelete, ID: 0},
		{Type: RecInsert, ID: 1, Point: []float64{}},
	}
	for i, w := range want {
		g := recs[i]
		if g.Type != w.Type || g.ID != w.ID || g.Gen != w.Gen || g.Rebase != w.Rebase ||
			len(g.Point) != len(w.Point) {
			t.Fatalf("record %d = %+v, want %+v", i, g, w)
		}
		for j := range w.Point {
			if g.Point[j] != w.Point[j] {
				t.Fatalf("record %d coord %d = %v, want %v", i, j, g.Point[j], w.Point[j])
			}
		}
	}
}

// TestTornTail: cutting a log anywhere inside its final frame replays
// the full-frame prefix with err == nil and reports the torn bytes.
func TestTornTail(t *testing.T) {
	var log []byte
	log = append(log, EncodeInsert(0, []float64{1, 2})...)
	prefix := int64(len(log))
	log = append(log, EncodeInsert(1, []float64{3, 4})...)

	for cut := prefix + 1; cut < int64(len(log)); cut++ {
		recs, stats := collect(t, log[:cut])
		if len(recs) != 1 || stats.ValidLen != prefix {
			t.Fatalf("cut %d: %d records, validLen %d", cut, len(recs), stats.ValidLen)
		}
		if stats.TornBytes != cut-prefix {
			t.Fatalf("cut %d: TornBytes %d", cut, stats.TornBytes)
		}
	}
}

// TestMidLogCorruption: damage that is provably not a torn tail is
// ErrCorrupt, with ValidLen marking the salvageable prefix.
func TestMidLogCorruption(t *testing.T) {
	rec0 := EncodeInsert(0, []float64{1})
	rec1 := EncodeDelete(0)

	t.Run("flipped CRC byte", func(t *testing.T) {
		log := append(append([]byte{}, rec0...), rec1...)
		log[len(rec0)+4] ^= 0xFF // CRC field of the second frame
		stats, err := Replay(log, func(Record) error { return nil })
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v", err)
		}
		if stats.ValidLen != int64(len(rec0)) {
			t.Fatalf("ValidLen = %d, want %d", stats.ValidLen, len(rec0))
		}
	})

	t.Run("flipped body byte mid-log", func(t *testing.T) {
		log := append(append([]byte{}, rec0...), rec1...)
		log[10] ^= 0x01 // inside the first frame's body
		stats, err := Replay(log, func(Record) error { return nil })
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v", err)
		}
		if stats.ValidLen != 0 {
			t.Fatalf("ValidLen = %d", stats.ValidLen)
		}
	})

	t.Run("forged length", func(t *testing.T) {
		log := append([]byte{}, rec0...)
		binary.LittleEndian.PutUint32(log, MaxRecordSize+1)
		if _, err := Replay(log, func(Record) error { return nil }); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v", err)
		}
	})

	t.Run("zero length", func(t *testing.T) {
		log := make([]byte, frameHeader)
		if _, err := Replay(log, func(Record) error { return nil }); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v", err)
		}
	})

	t.Run("unknown type", func(t *testing.T) {
		log := frame([]byte{99, 0, 0})
		if _, err := Replay(log, func(Record) error { return nil }); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v", err)
		}
	})

	t.Run("dim mismatch", func(t *testing.T) {
		body := make([]byte, 1+8+4+8)
		body[0] = RecInsert
		binary.LittleEndian.PutUint32(body[9:], 7) // claims 7 dims, has 1
		if _, err := Replay(frame(body), func(Record) error { return nil }); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestReplayPropagatesFnError(t *testing.T) {
	log := append(EncodeDelete(1), EncodeDelete(2)...)
	sentinel := errors.New("stop")
	stats, err := Replay(log, func(r Record) error {
		if r.ID == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) || stats.Records != 1 {
		t.Fatalf("err %v, stats %+v", err, stats)
	}
}

func newTestWriter(t *testing.T, fs fsx.FS, policy SyncPolicy) *Writer {
	t.Helper()
	f, err := fs.Create("wal-0.log")
	if err != nil {
		t.Fatal(err)
	}
	// Make the new name durable, as the durability layer does before
	// acknowledging anything — created entries are volatile until a
	// directory sync.
	if err := fs.SyncDir(); err != nil {
		t.Fatal(err)
	}
	return NewWriter(f, 0, policy)
}

// TestGroupCommit hammers one writer from many goroutines under
// SyncAlways and checks the log replays to exactly the appended set.
func TestGroupCommit(t *testing.T) {
	mem := fsx.NewMem()
	w := newTestWriter(t, mem, SyncAlways)
	var appends int
	var hookMu sync.Mutex
	w.OnAppend = func(int) { hookMu.Lock(); appends++; hookMu.Unlock() }
	w.OnSync = func(time.Duration) {}

	const G, per = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := w.Append(EncodeDelete(uint64(g*per + i))); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := mem.DurableView().ReadFile("wal-0.log")
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]bool)
	if _, err := Replay(data, func(r Record) error {
		if r.Type != RecDelete || seen[r.ID] {
			return fmt.Errorf("bad record %+v", r)
		}
		seen[r.ID] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != G*per {
		t.Fatalf("recovered %d records, want %d", len(seen), G*per)
	}
	hookMu.Lock()
	if appends != G*per {
		t.Fatalf("OnAppend fired %d times", appends)
	}
	hookMu.Unlock()
}

// TestWriterSelfHeals: an injected short write is truncated away and
// the next append lands on a clean frame boundary.
func TestWriterSelfHeals(t *testing.T) {
	mem := fsx.NewMem()
	w := newTestWriter(t, mem, SyncNone)
	if err := w.Append(EncodeDelete(1)); err != nil {
		t.Fatal(err)
	}
	mem.FailWriteAt(mem.TotalWritten() + 3) // tear the next frame after 3 bytes
	if err := w.Append(EncodeDelete(2)); !errors.Is(err, fsx.ErrInjected) {
		t.Fatalf("injected append: %v", err)
	}
	if err := w.Append(EncodeDelete(3)); err != nil {
		t.Fatalf("append after self-heal: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, _ := mem.FlushedView().ReadFile("wal-0.log")
	var ids []uint64
	if _, err := Replay(data, func(r Record) error { ids = append(ids, r.ID); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 3 {
		t.Fatalf("recovered ids %v", ids)
	}
}

// TestStickySyncError: after a failed fsync the writer refuses all
// further appends (fsyncgate semantics).
func TestStickySyncError(t *testing.T) {
	mem := fsx.NewMem()
	w := newTestWriter(t, mem, SyncAlways)
	if err := w.Append(EncodeDelete(1)); err != nil {
		t.Fatal(err)
	}
	mem.FailSyncs(1)
	if err := w.Append(EncodeDelete(2)); !errors.Is(err, fsx.ErrInjected) {
		t.Fatalf("append over failed sync: %v", err)
	}
	// Sticky: even though Mem's sync works again, the writer is dead.
	if err := w.Append(EncodeDelete(3)); !errors.Is(err, fsx.ErrInjected) {
		t.Fatalf("append after sticky failure: %v", err)
	}
	if err := w.Err(); !errors.Is(err, fsx.ErrInjected) {
		t.Fatalf("Err: %v", err)
	}
}

func TestClosedWriterRejectsAppends(t *testing.T) {
	mem := fsx.NewMem()
	w := newTestWriter(t, mem, SyncNone)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(EncodeDelete(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

// TestNewWriterResumesAtValidLen: a writer opened over an existing log
// continues the frame sequence.
func TestNewWriterResumesAtValidLen(t *testing.T) {
	mem := fsx.NewMem()
	f, _ := mem.Create("wal-0.log")
	if err := mem.SyncDir(); err != nil {
		t.Fatal(err)
	}
	first := EncodeDelete(1)
	if _, err := f.Write(first); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	g, _ := mem.Append("wal-0.log")
	w := NewWriter(g, int64(len(first)), SyncAlways)
	if err := w.Append(EncodeDelete(2)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, _ := mem.DurableView().ReadFile("wal-0.log")
	var ids []uint64
	if _, err := Replay(data, func(r Record) error { ids = append(ids, r.ID); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Fatalf("ids %v", ids)
	}
}
