// Package wal is the durable mutation log of the index: every
// Insert/Delete is appended as a length-prefixed, CRC-32-framed record
// before it is acknowledged, so a crash loses at most the unsynced
// tail and never an acknowledged mutation (with the always-sync
// policy) or a mid-sequence one (with any policy — recovery is always
// a prefix of the mutation order).
//
// # Frame format
//
// Every record is one frame, little-endian:
//
//	u32  length   — of everything after the CRC (type byte + payload)
//	u32  crc      — CRC-32 (IEEE) over the type byte + payload
//	u8   type     — RecInsert, RecDelete, RecCheckpoint
//	...  payload  — per-type, see below
//
// Payloads:
//
//	RecInsert:     u64 id, u32 dim, dim × f64 coordinates
//	RecDelete:     u64 id
//	RecCheckpoint: u64 generation, u8 rebase flag
//
// The length prefix lets the reader skip to the next frame without
// understanding the payload; the CRC catches torn writes and bit rot.
// A crash tears the log only at the end (writers append a frame with
// one Write call and never overwrite), so the reader classifies
// damage: an incomplete final frame is a torn tail (expected after a
// crash — truncated silently), while a damaged frame with intact data
// after it, an impossible length, or a CRC mismatch on a complete
// frame is ErrCorrupt (bit rot or a forged log — never silently
// dropped).
//
// # Group commit
//
// With SyncAlways, concurrent appenders share fsyncs: each append
// publishes its frame under the writer lock, then waits until a sync
// covers its offset. One waiter becomes the leader and fsyncs for
// everyone who appended meanwhile (the classic group commit), so a
// burst of N concurrent inserts costs far fewer than N fsyncs. A
// failed fsync is sticky: the file's durability is unknowable after
// one (the kernel may have dropped the dirty pages), so the writer
// refuses all further appends instead of silently retrying.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sync"
	"time"

	"parsearch/internal/fsx"
)

// Record types.
const (
	// RecInsert logs one Insert: the assigned ID and the stored vector.
	RecInsert byte = 1
	// RecDelete logs one Delete by ID.
	RecDelete byte = 2
	// RecCheckpoint is the first record of every log generation: the
	// generation number this log extends, plus the rebase flag (set
	// when the log's base is a full Build snapshot rather than the
	// previous generation's chain — recovery must not replay it onto
	// an older base).
	RecCheckpoint byte = 3
)

// frameHeader is the length + CRC prefix of every frame.
const frameHeader = 8

// MaxRecordSize bounds one frame's body (type + payload). The largest
// honest record is an insert of a MaxDim-dimensional vector (a few
// KiB); anything bigger is a forged length, classified ErrCorrupt.
const MaxRecordSize = 1 << 20

// ErrCorrupt reports mid-log corruption: a record that is provably not
// a torn tail (bit rot, a forged length, or a framing violation with
// valid data after it). Recovery surfaces it instead of guessing;
// salvage mode recovers the valid prefix. Classify with errors.Is.
var ErrCorrupt = errors.New("wal: corrupt record")

// ErrClosed is returned by appends to a closed writer.
var ErrClosed = errors.New("wal: writer closed")

// Record is one decoded log record.
type Record struct {
	// Type is RecInsert, RecDelete, or RecCheckpoint.
	Type byte
	// ID is the mutation's vector ID (insert/delete).
	ID uint64
	// Point is the inserted vector (insert only).
	Point []float64
	// Gen is the generation number (checkpoint only).
	Gen uint64
	// Rebase marks a checkpoint whose base is a fresh Build snapshot
	// (checkpoint only).
	Rebase bool
}

// AppendInsert / AppendDelete / AppendCheckpoint encode one record
// into a frame.

// EncodeInsert returns the frame of an insert record.
func EncodeInsert(id uint64, p []float64) []byte {
	body := make([]byte, 1+8+4+8*len(p))
	body[0] = RecInsert
	binary.LittleEndian.PutUint64(body[1:], id)
	binary.LittleEndian.PutUint32(body[9:], uint32(len(p)))
	for i, x := range p {
		binary.LittleEndian.PutUint64(body[13+8*i:], math.Float64bits(x))
	}
	return frame(body)
}

// EncodeDelete returns the frame of a delete record.
func EncodeDelete(id uint64) []byte {
	body := make([]byte, 1+8)
	body[0] = RecDelete
	binary.LittleEndian.PutUint64(body[1:], id)
	return frame(body)
}

// EncodeCheckpoint returns the frame of a checkpoint record.
func EncodeCheckpoint(gen uint64, rebase bool) []byte {
	body := make([]byte, 1+8+1)
	body[0] = RecCheckpoint
	binary.LittleEndian.PutUint64(body[1:], gen)
	if rebase {
		body[9] = 1
	}
	return frame(body)
}

// frame wraps a record body in the length+CRC header.
func frame(body []byte) []byte {
	out := make([]byte, frameHeader+len(body))
	binary.LittleEndian.PutUint32(out, uint32(len(body)))
	binary.LittleEndian.PutUint32(out[4:], crc32.ChecksumIEEE(body))
	copy(out[frameHeader:], body)
	return out
}

// decodeBody parses a CRC-verified frame body into a Record.
func decodeBody(body []byte) (Record, error) {
	if len(body) == 0 {
		return Record{}, fmt.Errorf("%w: empty frame body", ErrCorrupt)
	}
	rec := Record{Type: body[0]}
	payload := body[1:]
	switch rec.Type {
	case RecInsert:
		if len(payload) < 12 {
			return Record{}, fmt.Errorf("%w: insert record %d bytes", ErrCorrupt, len(payload))
		}
		rec.ID = binary.LittleEndian.Uint64(payload)
		dim := binary.LittleEndian.Uint32(payload[8:])
		if int(dim)*8 != len(payload)-12 {
			return Record{}, fmt.Errorf("%w: insert record claims dim %d in %d payload bytes",
				ErrCorrupt, dim, len(payload))
		}
		rec.Point = make([]float64, dim)
		for i := range rec.Point {
			rec.Point[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[12+8*i:]))
		}
	case RecDelete:
		if len(payload) != 8 {
			return Record{}, fmt.Errorf("%w: delete record %d bytes", ErrCorrupt, len(payload))
		}
		rec.ID = binary.LittleEndian.Uint64(payload)
	case RecCheckpoint:
		if len(payload) != 9 {
			return Record{}, fmt.Errorf("%w: checkpoint record %d bytes", ErrCorrupt, len(payload))
		}
		rec.Gen = binary.LittleEndian.Uint64(payload)
		switch payload[8] {
		case 0:
		case 1:
			rec.Rebase = true
		default:
			return Record{}, fmt.Errorf("%w: checkpoint rebase byte %d", ErrCorrupt, payload[8])
		}
	default:
		return Record{}, fmt.Errorf("%w: unknown record type %d", ErrCorrupt, rec.Type)
	}
	return rec, nil
}

// ReplayStats reports what a Replay consumed.
type ReplayStats struct {
	// Records is the number of valid records delivered.
	Records int
	// ValidLen is the byte length of the valid frame prefix. Bytes
	// beyond it are a torn tail (err == nil) or corruption
	// (errors.Is(err, ErrCorrupt)).
	ValidLen int64
	// TornBytes is the length of the truncated torn tail (0 when the
	// log ends exactly on a frame boundary).
	TornBytes int64
}

// Replay scans the log bytes, calling fn for each valid record in
// order. It stops at the first damage and classifies it:
//
//   - a clean end or a torn tail (incomplete final frame — the
//     expected residue of a crash) returns err == nil with
//     stats.TornBytes set;
//   - anything else — a forged length, an unknown type, a CRC mismatch
//     on a complete frame, or a malformed payload — returns an error
//     wrapping ErrCorrupt. stats.ValidLen is the salvageable prefix.
//
// An error from fn aborts the replay and is returned verbatim.
//
// The torn-tail rule is sound because writers append each frame with a
// single Write and never overwrite: a crash can only leave a *prefix*
// of a frame, so a frame whose header says it extends past the end of
// the log is torn, while a complete frame that fails its CRC (its
// bytes all made it to storage) can only be bit rot.
func Replay(data []byte, fn func(Record) error) (ReplayStats, error) {
	var stats ReplayStats
	off := int64(0)
	n := int64(len(data))
	for off < n {
		remaining := n - off
		if remaining < frameHeader {
			// Header cut short: torn tail.
			stats.TornBytes = remaining
			return stats, nil
		}
		length := int64(binary.LittleEndian.Uint32(data[off:]))
		if length < 1 || length > MaxRecordSize {
			return stats, fmt.Errorf("%w: frame at offset %d declares %d-byte body", ErrCorrupt, off, length)
		}
		if remaining < frameHeader+length {
			// Body cut short: torn tail.
			stats.TornBytes = remaining
			return stats, nil
		}
		crc := binary.LittleEndian.Uint32(data[off+4:])
		body := data[off+frameHeader : off+frameHeader+length]
		if crc32.ChecksumIEEE(body) != crc {
			return stats, fmt.Errorf("%w: CRC mismatch at offset %d", ErrCorrupt, off)
		}
		rec, err := decodeBody(body)
		if err != nil {
			return stats, fmt.Errorf("record at offset %d: %w", off, err)
		}
		if err := fn(rec); err != nil {
			return stats, err
		}
		off += frameHeader + length
		stats.Records++
		stats.ValidLen = off
	}
	return stats, nil
}

// SyncPolicy selects when appends are fsynced.
type SyncPolicy int

const (
	// SyncAlways fsyncs (via group commit) before every append
	// returns: an acknowledged mutation survives any crash.
	SyncAlways SyncPolicy = iota
	// SyncNone leaves syncing to the OS (and to explicit Sync calls:
	// rotation and Close still sync). A crash may lose the unsynced
	// tail — but only the tail: recovery is still a prefix of the
	// acknowledged mutation order.
	SyncNone
)

// Writer appends frames to one log file. Safe for concurrent use.
type Writer struct {
	policy SyncPolicy

	// OnAppend/OnSync, when non-nil, receive instrumentation events:
	// OnAppend the frame size of every append, OnSync the duration of
	// every leader fsync. Set before the first append; both must be
	// safe for concurrent use.
	OnAppend func(bytes int)
	OnSync   func(d time.Duration)

	mu      sync.Mutex
	f       fsx.File
	written int64 // valid frame bytes in the file
	err     error // sticky append failure (failed self-heal or fsync)
	closed  bool

	// group-commit state
	gmu     sync.Mutex
	gcond   *sync.Cond
	synced  int64
	syncing bool
}

// NewWriter wraps an open log file whose first validLen bytes are
// valid frames. The file must be positioned at its end with exactly
// validLen bytes (callers truncate torn tails first).
func NewWriter(f fsx.File, validLen int64, policy SyncPolicy) *Writer {
	w := &Writer{f: f, written: validLen, synced: validLen, policy: policy}
	w.gcond = sync.NewCond(&w.gmu)
	return w
}

// Append writes one encoded frame and, under SyncAlways, returns only
// once a sync covers it. On a write error the writer heals itself by
// truncating back to the last good frame boundary; if even that fails
// the writer goes sticky-failed (the file's tail is untrustworthy).
func (w *Writer) Append(frame []byte) error {
	target, err := w.AppendAsync(frame)
	if err != nil {
		return err
	}
	if w.policy == SyncAlways {
		return w.SyncTo(target)
	}
	return nil
}

// AppendAsync writes one encoded frame without waiting for a sync and
// returns the offset a SyncTo must cover to make it durable. The
// split lets a caller publish the frame under its own mutation lock
// and wait for the group commit outside it, so concurrent mutations
// share fsyncs instead of serializing behind them.
func (w *Writer) AppendAsync(frame []byte) (int64, error) {
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return 0, err
	}
	if w.closed {
		w.mu.Unlock()
		return 0, ErrClosed
	}
	if _, err := w.f.Write(frame); err != nil {
		// Self-heal: drop the partial frame so the log stays
		// (valid frames)* + nothing. If the truncate fails too, the
		// tail is unknowable — refuse all further appends.
		if terr := w.f.Truncate(w.written); terr != nil {
			w.err = fmt.Errorf("wal: append failed (%v) and truncate failed: %w", err, terr)
		}
		w.mu.Unlock()
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	w.written += int64(len(frame))
	target := w.written
	w.mu.Unlock()
	if w.OnAppend != nil {
		w.OnAppend(len(frame))
	}
	return target, nil
}

// Policy returns the writer's sync policy.
func (w *Writer) Policy() SyncPolicy { return w.policy }

// Sync forces everything appended so far to storage (group commit),
// regardless of policy.
func (w *Writer) Sync() error {
	w.mu.Lock()
	target := w.written
	w.mu.Unlock()
	return w.SyncTo(target)
}

// syncTo blocks until a sync covers offset target. One waiter at a
// time becomes the leader and fsyncs for every frame appended so far;
// the rest wait on the condition. A failed fsync is sticky.
func (w *Writer) SyncTo(target int64) error {
	w.gmu.Lock()
	defer w.gmu.Unlock()
	for w.synced < target {
		if err := w.stickyErr(); err != nil {
			return err
		}
		if w.syncing {
			w.gcond.Wait()
			continue
		}
		w.syncing = true
		w.gmu.Unlock()

		w.mu.Lock()
		upto := w.written
		w.mu.Unlock()
		start := time.Now()
		serr := w.f.Sync()
		elapsed := time.Since(start)

		w.gmu.Lock()
		w.syncing = false
		if serr != nil {
			w.mu.Lock()
			if w.err == nil {
				w.err = fmt.Errorf("wal: fsync failed, log unusable: %w", serr)
			}
			w.mu.Unlock()
		} else {
			if upto > w.synced {
				w.synced = upto
			}
			if w.OnSync != nil {
				w.OnSync(elapsed)
			}
		}
		w.gcond.Broadcast()
	}
	return nil
}

// stickyErr reads the sticky failure. Caller holds gmu (or mu is
// free): it briefly takes mu.
func (w *Writer) stickyErr() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Written returns the log's valid frame length (appended bytes).
func (w *Writer) Written() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.written
}

// Synced returns the durable prefix length (covered by a sync).
func (w *Writer) Synced() int64 {
	w.gmu.Lock()
	defer w.gmu.Unlock()
	return w.synced
}

// Err returns the sticky failure, if any.
func (w *Writer) Err() error { return w.stickyErr() }

// Close syncs outstanding appends and closes the file. Further
// appends return ErrClosed. Close after a sticky failure skips the
// sync and reports that failure.
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	target := w.written
	err := w.err
	w.mu.Unlock()
	if err == nil {
		err = w.SyncTo(target)
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}
