package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// FuzzWALReplay feeds arbitrary bytes to Replay and checks its
// invariants:
//
//   - never panics;
//   - ValidLen is a frame boundary: re-replaying data[:ValidLen]
//     yields the same records with no error and no torn bytes;
//   - err == nil implies ValidLen+TornBytes == len(data) (every byte
//     is accounted for as valid frames or torn tail);
//   - any other error wraps ErrCorrupt.
//
// The committed seed corpus (testdata/fuzz/FuzzWALReplay) covers the
// interesting shapes: a valid multi-record log, a torn final record,
// a flipped CRC byte, and a forged length field.
func FuzzWALReplay(f *testing.F) {
	valid := append(EncodeCheckpoint(1, false), EncodeInsert(0, []float64{1, 2, 3})...)
	valid = append(valid, EncodeDelete(0)...)
	f.Add(valid)
	f.Add(valid[:len(valid)-5]) // torn final record
	flipped := append([]byte{}, valid...)
	flipped[4] ^= 0x80 // CRC byte of the first frame
	f.Add(flipped)
	forged := append([]byte{}, valid...)
	binary.LittleEndian.PutUint32(forged, MaxRecordSize+1)
	f.Add(forged)
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	// The checkpoint-after-reorganize shape: inserts, a sealing
	// checkpoint (as ReorganizeStats writes after a successful pass),
	// then post-reorganize traffic in the same log.
	sealed := append(EncodeInsert(0, []float64{1, 2}), EncodeInsert(1, []float64{3, 4})...)
	sealed = append(sealed, EncodeCheckpoint(2, true)...)
	sealed = append(sealed, EncodeInsert(2, []float64{5, 6})...)
	sealed = append(sealed, EncodeDelete(1)...)
	f.Add(sealed)
	f.Add(sealed[:len(sealed)-3]) // torn tail right after the sealed checkpoint

	f.Fuzz(func(t *testing.T, data []byte) {
		var recs [][]byte
		stats, err := Replay(data, func(r Record) error {
			recs = append(recs, reencode(r))
			return nil
		})
		if stats.ValidLen < 0 || stats.ValidLen > int64(len(data)) {
			t.Fatalf("ValidLen %d out of range", stats.ValidLen)
		}
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("non-ErrCorrupt failure: %v", err)
			}
		} else if stats.ValidLen+stats.TornBytes != int64(len(data)) {
			t.Fatalf("unaccounted bytes: valid %d + torn %d != %d",
				stats.ValidLen, stats.TornBytes, len(data))
		}

		// The valid prefix must replay identically and cleanly.
		var again [][]byte
		stats2, err2 := Replay(data[:stats.ValidLen], func(r Record) error {
			again = append(again, reencode(r))
			return nil
		})
		if err2 != nil || stats2.TornBytes != 0 || stats2.ValidLen != stats.ValidLen {
			t.Fatalf("prefix replay: %+v, %v", stats2, err2)
		}
		if len(again) != len(recs) {
			t.Fatalf("prefix yields %d records, full scan yielded %d", len(again), len(recs))
		}
		for i := range recs {
			if !bytes.Equal(recs[i], again[i]) {
				t.Fatalf("record %d differs between scans", i)
			}
		}
	})
}

// reencode canonicalizes a record for comparison.
func reencode(r Record) []byte {
	switch r.Type {
	case RecInsert:
		return EncodeInsert(r.ID, r.Point)
	case RecDelete:
		return EncodeDelete(r.ID)
	case RecCheckpoint:
		return EncodeCheckpoint(r.Gen, r.Rebase)
	}
	return []byte{r.Type}
}
