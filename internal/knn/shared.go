package knn

// Cooperative cross-disk pruning for the parallel NN algorithm: the
// shards of a declustered index share one global upper bound on the
// k-th-best distance, so every disk can stop expanding priority-queue
// nodes that only the *merged* result would discard. The bound is a
// lock-free atomic (see Bound); HSShared is the HS search consulting
// and tightening it.
//
// Exactness argument: the shared bound only ever holds a distance that
// k candidates somewhere in the index have already achieved (each shard
// publishes its local k-th-best distance, and the global k-th-best is
// at most the minimum of the local ones). A node pruned because its
// MINDIST strictly exceeds the bound can only contain points strictly
// farther than k already-known candidates, so none of its points can
// enter the merged global top k — under any tie-breaking rule. The
// bound is monotonically non-increasing, so the argument holds even
// though other shards keep tightening it concurrently.

import (
	"container/heap"
	"math"
	"sync/atomic"

	"parsearch/internal/vec"
	"parsearch/internal/xtree"
)

// Bound is a lock-free shared upper bound on the squared (rank)
// distance of the current global k-th-best candidate of one query. It
// encodes the float64 as its IEEE-754 bit pattern in an atomic uint64
// (distances are non-negative, so the encoding is order-preserving);
// Tighten lowers it with a compare-and-swap loop, making the bound
// monotonically non-increasing under any number of concurrent writers.
//
// Memory ordering: Go's sync/atomic operations are sequentially
// consistent, so a Load observing a tightened value also observes every
// write that happened before the corresponding Tighten. The algorithm
// needs far less — a stale (larger) bound only costs pruning
// opportunity, never correctness, because the bound is monotone and
// every published value is a distance k real candidates have achieved.
type Bound struct {
	bits atomic.Uint64
	// seed is the externally provided squared bound installed by Seed
	// (NaN when the bound was never seeded). It is written once before
	// the search fan-out starts and only read afterwards, so it needs no
	// atomicity; NaN compares unequal to everything, which makes the
	// attribution check below vacuously false on unseeded bounds.
	seed float64
}

// NewBound returns a bound initialized to +inf (nothing known yet).
func NewBound() *Bound {
	b := &Bound{}
	b.bits.Store(math.Float64bits(math.Inf(1)))
	b.seed = math.NaN()
	return b
}

// Seed installs an externally known squared bound — in the distributed
// search, the k-th-best distance another shard group has already
// achieved, shipped over the wire. Seeding is exactness-preserving for
// the same reason local tightening is: the searches consulting the
// bound traverse pruned nodes in accounting-only phantom mode, so the
// candidate stream (and the results) never depend on the bound's value,
// only the attribution of visits to Saved does. A stale or even wrong
// seed therefore costs accounting precision, never correctness.
//
// Seed must be called before the search fan-out starts (it writes a
// plain field the attribution check reads).
func (b *Bound) Seed(sq float64) {
	b.seed = sq
	b.Tighten(sq)
}

// seededAt reports whether v is the seeded value: the bound in effect
// is still the external seed, no local tightening has improved on it.
func (b *Bound) seededAt(v float64) bool { return v == b.seed }

// Load returns the current bound.
func (b *Bound) Load() float64 {
	return math.Float64frombits(b.bits.Load())
}

// Tighten lowers the bound to d if d improves it and reports whether it
// did. Concurrent Tighten calls never lose the minimum: the CAS retries
// until d is installed or a smaller value is already in place.
func (b *Bound) Tighten(d float64) bool {
	for {
		old := b.bits.Load()
		if math.Float64frombits(old) <= d {
			return false
		}
		if b.bits.CompareAndSwap(old, math.Float64bits(d)) {
			return true
		}
	}
}

// SharedStats reports what the shared bound did for one HSShared call.
type SharedStats struct {
	// Saved accounts the nodes the shared bound pruned: visits the
	// independent HS search would have performed but the cooperative
	// search skipped. Adding Saved to the returned Accounting yields
	// exactly the independent search's Accounting.
	Saved Accounting
	// Tightened counts how many times this search lowered the shared
	// bound.
	Tightened int
	// RemotePages counts the page accesses among Saved performed while
	// the bound still held its externally seeded value (Bound.Seed):
	// pruning attributable to the remote bound rather than to local
	// tightening. Always 0 on unseeded bounds. The attribution is by the
	// bound in effect at visit time — once a local tightening improves
	// on the seed, further savings are charged to the local bound even
	// though the seed alone might still have pruned them.
	RemotePages int
}

// HSShared is HSMetric consulting a shared bound before expanding each
// priority-queue node, and tightening it whenever the local k-best
// improves — the cooperative variant of the parallel NN algorithm,
// where every disk prunes against the global candidate distance instead
// of only its own.
//
// The returned neighbors are byte-identical to HSMetric's: pruned nodes
// are still traversed in accounting-only "phantom" mode (their visits
// charged to SharedStats.Saved instead of the Accounting), so the local
// candidate stream — and with it every tie-break — matches the
// independent search exactly, and Saved is exactly the page count the
// bound saved. Once one node is pruned, every later node would be too
// (pops come in MINDIST order while the bound only decreases), so the
// phantom tail never flips back and never publishes: all its candidates
// are provably farther than the bound it was pruned by.
//
// onTighten, when non-nil, is called with the new squared bound after
// each successful tightening.
func HSShared(t *xtree.Tree, q vec.Point, k int, m vec.Metric, b *Bound, onTighten func(sqBound float64)) ([]Result, Accounting, SharedStats) {
	checkQuery(t, q, k)
	var acc Accounting
	var ss SharedStats
	best := kBest{k: k, metric: m}
	if t.Root() == nil {
		return nil, acc, ss
	}
	var sc scratch
	pq := nodeQueue{{node: t.Root(), sqMinDist: m.RankMinDist(t.Root().Rect(), q)}}
	phantom := false
	for len(pq) > 0 {
		item := heap.Pop(&pq).(nodeItem)
		if item.sqMinDist > best.bound() {
			break
		}
		if !phantom && item.sqMinDist > b.Load() {
			phantom = true
		}
		n := item.node
		if phantom {
			ss.Saved.visit(n)
			if b.seededAt(b.Load()) {
				ss.RemotePages += n.Super()
			}
		} else {
			acc.visit(n)
		}
		if n.IsLeaf() {
			// The SQ8 skip decisions depend only on the local candidate
			// stream (best.bound()), which phantom mode preserves, so
			// charging phantom skips to Saved keeps the exact-sum
			// invariant: acc + Saved equals the independent search's
			// accounting field for field.
			skipped := scanLeaf(n, q, m, &best, &sc)
			if phantom {
				ss.Saved.DistCompsSkipped += skipped
			} else {
				acc.DistCompsSkipped += skipped
			}
			if !phantom {
				if d := best.bound(); !math.IsInf(d, 1) && b.Tighten(d) {
					ss.Tightened++
					if onTighten != nil {
						onTighten(d)
					}
				}
			}
			continue
		}
		pushChildren(&pq, n, q, m, best.bound(), &sc)
	}
	return best.results(), acc, ss
}
