package knn

import (
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"parsearch/internal/vec"
	"parsearch/internal/xtree"
)

func TestBoundTighten(t *testing.T) {
	b := NewBound()
	if !math.IsInf(b.Load(), 1) {
		t.Fatalf("fresh bound %v, want +inf", b.Load())
	}
	if !b.Tighten(2.5) {
		t.Fatal("first Tighten reported no improvement")
	}
	if b.Load() != 2.5 {
		t.Fatalf("bound %v, want 2.5", b.Load())
	}
	if b.Tighten(3.0) {
		t.Fatal("Tighten loosened the bound")
	}
	if b.Load() != 2.5 {
		t.Fatalf("bound %v after rejected Tighten, want 2.5", b.Load())
	}
	if !b.Tighten(0) {
		t.Fatal("Tighten to 0 rejected")
	}
	if b.Load() != 0 {
		t.Fatalf("bound %v, want 0", b.Load())
	}
}

// TestBoundConcurrentMin hammers one bound from many goroutines: the
// final value must be the minimum ever offered (no lost updates).
func TestBoundConcurrentMin(t *testing.T) {
	b := NewBound()
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < per; i++ {
				b.Tighten(1 + rng.Float64()*1000)
			}
		}(w)
	}
	wg.Wait()
	got := b.Load()
	// Replay all streams to find the true minimum.
	want := math.Inf(1)
	for w := 0; w < workers; w++ {
		rng := rand.New(rand.NewSource(int64(w)))
		for i := 0; i < per; i++ {
			if v := 1 + rng.Float64()*1000; v < want {
				want = v
			}
		}
	}
	if got != want {
		t.Fatalf("concurrent bound %v, want minimum %v", got, want)
	}
}

func sharedTestTree(n, dim int, seed int64) (*xtree.Tree, []xtree.Entry) {
	rng := rand.New(rand.NewSource(seed))
	tr := xtree.New(xtree.DefaultConfig(dim))
	entries := make([]xtree.Entry, n)
	for i := 0; i < n; i++ {
		p := make(vec.Point, dim)
		for j := range p {
			p[j] = rng.Float64()
		}
		tr.Insert(p, i)
		entries[i] = xtree.Entry{Point: p, ID: i}
	}
	return tr, entries
}

// TestHSSharedMatchesHS checks the core exactness contract on a single
// tree: with any pre-tightened bound, HSShared returns byte-identical
// results to HSMetric, and real + saved accounting equals HSMetric's.
func TestHSSharedMatchesHS(t *testing.T) {
	for _, m := range []vec.Metric{vec.L2, vec.L1, vec.LInf} {
		tr, entries := sharedTestTree(600, 6, 7)
		rng := rand.New(rand.NewSource(8))
		for qi := 0; qi < 20; qi++ {
			q := make(vec.Point, 6)
			for j := range q {
				q[j] = rng.Float64()
			}
			for _, k := range []int{1, 5, 50} {
				want, wantAcc := HSMetric(tr, q, k, m)
				// Pre-tighten the bound with another sample's k-th
				// distance, simulating a seed shard's publish.
				b := NewBound()
				if lin := LinearMetric(entries[:200], q, k, m); len(lin) == k {
					b.Tighten(m.ToRank(lin[k-1].Dist))
				}
				got, acc, ss := HSShared(tr, q, k, m, b, nil)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("metric %v k=%d query %d: HSShared results differ from HSMetric", m, k, qi)
				}
				total := acc
				total.Add(ss.Saved)
				if total != wantAcc {
					t.Fatalf("metric %v k=%d query %d: real %+v + saved %+v != independent %+v",
						m, k, qi, acc, ss.Saved, wantAcc)
				}
			}
		}
	}
}

// TestHSSharedInfiniteBoundIsIndependent: with an untouched (+inf)
// bound nothing is pruned and the accounting matches HSMetric exactly.
func TestHSSharedInfiniteBoundIsIndependent(t *testing.T) {
	tr, _ := sharedTestTree(400, 4, 3)
	q := vec.Point{0.3, 0.7, 0.1, 0.9}
	want, wantAcc := HSMetric(tr, q, 10, vec.L2)
	got, acc, ss := HSShared(tr, q, 10, vec.L2, NewBound(), nil)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("results differ with an infinite bound")
	}
	if acc != wantAcc {
		t.Fatalf("accounting %+v, want %+v", acc, wantAcc)
	}
	if ss.Saved.PageAccesses != 0 || ss.Saved.DirAccesses != 0 || ss.Saved.LeafAccesses != 0 {
		t.Fatalf("infinite bound saved %+v, want zero", ss.Saved)
	}
	// The search itself must have published its improving k-best.
	if ss.Tightened == 0 {
		t.Fatal("search never tightened the bound")
	}
}

// TestHSSharedZeroBoundSavesEverythingAfterRoot: a bound of 0 (perfect
// knowledge, k results at distance 0 elsewhere) prunes every node whose
// MINDIST is positive, yet the results still equal the independent ones.
func TestHSSharedZeroBoundSavesEverything(t *testing.T) {
	tr, _ := sharedTestTree(400, 4, 3)
	q := vec.Point{2, 2, 2, 2} // outside the data cube: all MINDISTs positive
	b := NewBound()
	b.Tighten(0)
	want, wantAcc := HSMetric(tr, q, 3, vec.L2)
	got, acc, ss := HSShared(tr, q, 3, vec.L2, b, nil)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("results differ with a zero bound")
	}
	if acc.PageAccesses != 0 {
		t.Fatalf("zero bound still read %d pages", acc.PageAccesses)
	}
	if acc.PageAccesses+ss.Saved.PageAccesses != wantAcc.PageAccesses {
		t.Fatalf("real %d + saved %d != independent %d",
			acc.PageAccesses, ss.Saved.PageAccesses, wantAcc.PageAccesses)
	}
	if ss.Tightened != 0 {
		t.Fatal("phantom search published the bound")
	}
}

// TestHSSharedOnTighten checks the callback fires once per successful
// tightening with monotonically decreasing values.
func TestHSSharedOnTighten(t *testing.T) {
	tr, _ := sharedTestTree(500, 4, 11)
	q := vec.Point{0.5, 0.5, 0.5, 0.5}
	var seen []float64
	_, _, ss := HSShared(tr, q, 5, vec.L2, NewBound(), func(sq float64) {
		seen = append(seen, sq)
	})
	if len(seen) != ss.Tightened {
		t.Fatalf("%d callbacks, stats say %d tightenings", len(seen), ss.Tightened)
	}
	if len(seen) == 0 {
		t.Fatal("no tightenings observed")
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] >= seen[i-1] {
			t.Fatalf("bound not strictly decreasing: %v", seen)
		}
	}
}
