package knn

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"parsearch/internal/vec"
	"parsearch/internal/xtree"
)

func TestBrowserFullRankingMatchesSort(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	const d, n = 4, 800
	entries := uniformEntries(r, n, d)
	tree := buildTree(entries, d)
	q := make(vec.Point, d)
	for j := range q {
		q[j] = r.Float64()
	}

	// Ground truth: all distances sorted.
	want := make([]float64, n)
	for i, e := range entries {
		want[i] = vec.Dist(q, e.Point)
	}
	sort.Float64s(want)

	b := NewBrowser(tree, q)
	for i := 0; i < n; i++ {
		res, ok := b.Next()
		if !ok {
			t.Fatalf("ranking exhausted after %d of %d", i, n)
		}
		if math.Abs(res.Dist-want[i]) > 1e-9 {
			t.Fatalf("rank %d: dist %v, want %v", i, res.Dist, want[i])
		}
	}
	if _, ok := b.Next(); ok {
		t.Fatal("ranking returned more entries than stored")
	}
	if b.Accounting().PageAccesses == 0 {
		t.Error("no page accesses recorded")
	}
}

func TestBrowserMatchesHSPrefix(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	const d, n, k = 8, 2000, 25
	entries := uniformEntries(r, n, d)
	tree := buildTree(entries, d)
	q := make(vec.Point, d)
	for j := range q {
		q[j] = r.Float64()
	}
	hs, _ := HS(tree, q, k)
	b := NewBrowser(tree, q)
	for i := 0; i < k; i++ {
		res, ok := b.Next()
		if !ok {
			t.Fatal("browser exhausted early")
		}
		if math.Abs(res.Dist-hs[i].Dist) > 1e-9 {
			t.Fatalf("rank %d: browser %v vs HS %v", i, res.Dist, hs[i].Dist)
		}
	}
}

// Browsing k entries should not read substantially more pages than a
// k-NN query for the same k (lazy evaluation).
func TestBrowserIsLazy(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	const d, n = 8, 5000
	entries := uniformEntries(r, n, d)
	tree := buildTree(entries, d)
	q := make(vec.Point, d)
	for j := range q {
		q[j] = r.Float64()
	}
	b := NewBrowser(tree, q)
	b.Next() // only the single nearest neighbor
	browsePages := b.Accounting().PageAccesses
	_, acc := HS(tree, q, 1)
	if browsePages > 2*acc.PageAccesses+2 {
		t.Errorf("browsing 1 entry read %d pages, HS read %d", browsePages, acc.PageAccesses)
	}
}

func TestBrowserEmptyTree(t *testing.T) {
	tree := xtree.New(xtree.DefaultConfig(2))
	b := NewBrowser(tree, vec.Point{0.5, 0.5})
	if _, ok := b.Next(); ok {
		t.Fatal("empty tree produced a result")
	}
}

func TestBrowserDimensionMismatchPanics(t *testing.T) {
	tree := xtree.New(xtree.DefaultConfig(2))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBrowser(tree, vec.Point{0.5})
}

func BenchmarkBrowserTop10(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	entries := uniformEntries(r, 10000, 16)
	tree := buildTree(entries, 16)
	q := make(vec.Point, 16)
	for j := range q {
		q[j] = r.Float64()
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		br := NewBrowser(tree, q)
		for j := 0; j < 10; j++ {
			br.Next()
		}
	}
}
