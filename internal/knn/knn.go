// Package knn implements nearest-neighbor search over the X-tree: the
// priority-queue algorithm of Hjaltason and Samet [HS 95], which visits
// partitions ordered by MINDIST and is optimal in the number of pages read
// (exactly those intersecting the NN-sphere), and the branch-and-bound
// algorithm of Roussopoulos, Kelley and Vincent [RKV 95] with MINMAXDIST
// pruning, which the paper applied to the X-tree in [BKK 96]. A linear
// scan provides ground truth for the tests.
//
// All algorithms report page-access accounting, the cost measure of the
// paper's experiments (a supernode of multiplier s costs s page accesses).
package knn

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"parsearch/internal/vec"
	"parsearch/internal/xtree"
)

// Result is one neighbor: the stored entry and its Euclidean distance to
// the query point.
type Result struct {
	Entry xtree.Entry
	Dist  float64
}

// Accounting counts the I/O a query performed.
type Accounting struct {
	// DirAccesses and LeafAccesses count visited directory and leaf
	// nodes.
	DirAccesses, LeafAccesses int
	// PageAccesses counts disk blocks: every visited node costs its
	// supernode multiplier.
	PageAccesses int
	// DistCompsSkipped counts exact distance computations the SQ8
	// pre-filter proved unnecessary (0 without quantization).
	DistCompsSkipped int
}

// Add accumulates another query's accounting into a — the aggregation
// step of multi-disk (and multi-query) instrumentation.
func (a *Accounting) Add(o Accounting) {
	a.DirAccesses += o.DirAccesses
	a.LeafAccesses += o.LeafAccesses
	a.PageAccesses += o.PageAccesses
	a.DistCompsSkipped += o.DistCompsSkipped
}

func (a *Accounting) visit(n *xtree.Node) {
	if n.IsLeaf() {
		a.LeafAccesses++
	} else {
		a.DirAccesses++
	}
	a.PageAccesses += n.Super()
}

// resultHeap is a max-heap of the k best candidates so far, ordered by
// squared distance.
type resultHeap []Result

func (h resultHeap) Len() int            { return len(h) }
func (h resultHeap) Less(i, j int) bool  { return h[i].Dist > h[j].Dist }
func (h resultHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x interface{}) { *h = append(*h, x.(Result)) }
func (h *resultHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

// kBest collects the k nearest candidates seen so far, ordered by rank
// distance (see vec.Metric.RankDist).
type kBest struct {
	k      int
	metric vec.Metric
	heap   resultHeap
}

// bound returns the squared distance of the current k-th candidate, or
// +inf while fewer than k candidates are known.
func (b *kBest) bound() float64 {
	if len(b.heap) < b.k {
		return math.Inf(1)
	}
	return b.heap[0].Dist
}

// offer inserts a candidate if it improves the k-set. dist is squared.
func (b *kBest) offer(e xtree.Entry, sqDist float64) {
	if len(b.heap) < b.k {
		heap.Push(&b.heap, Result{Entry: e, Dist: sqDist})
		return
	}
	if sqDist < b.heap[0].Dist {
		b.heap[0] = Result{Entry: e, Dist: sqDist}
		heap.Fix(&b.heap, 0)
	}
}

// results returns the collected candidates sorted by increasing distance,
// with rank distances converted to metric distances.
func (b *kBest) results() []Result {
	out := make([]Result, len(b.heap))
	copy(out, b.heap)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].Entry.ID < out[j].Entry.ID
	})
	for i := range out {
		out[i].Dist = b.metric.FromRank(out[i].Dist)
	}
	return out
}

func checkQuery(t *xtree.Tree, q vec.Point, k int) {
	if k < 1 {
		panic(fmt.Sprintf("knn: k = %d < 1", k))
	}
	if len(q) != t.Config().Dim {
		panic(fmt.Sprintf("knn: %d-dimensional query on %d-dimensional tree", len(q), t.Config().Dim))
	}
}

// nodeItem is a priority-queue element for the HS algorithm.
type nodeItem struct {
	node      *xtree.Node
	sqMinDist float64
}

type nodeQueue []nodeItem

func (q nodeQueue) Len() int            { return len(q) }
func (q nodeQueue) Less(i, j int) bool  { return q[i].sqMinDist < q[j].sqMinDist }
func (q nodeQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *nodeQueue) Push(x interface{}) { *q = append(*q, x.(nodeItem)) }
func (q *nodeQueue) Pop() interface{} {
	old := *q
	x := old[len(old)-1]
	*q = old[:len(old)-1]
	return x
}

// HS finds the k nearest neighbors of q under the Euclidean metric with
// the Hjaltason–Samet priority-queue algorithm: nodes are visited in
// MINDIST order and the search stops as soon as the next node's MINDIST
// exceeds the k-th best distance. HS reads exactly the pages whose
// region intersects the NN-sphere, which makes it the reference
// algorithm for the paper's page-count experiments.
func HS(t *xtree.Tree, q vec.Point, k int) ([]Result, Accounting) {
	return HSMetric(t, q, k, vec.L2)
}

// HSMetric is HS under an arbitrary Minkowski metric (the NN-"sphere"
// becomes the metric's ball; the algorithm and its optimality argument
// carry over unchanged).
func HSMetric(t *xtree.Tree, q vec.Point, k int, m vec.Metric) ([]Result, Accounting) {
	checkQuery(t, q, k)
	var acc Accounting
	best := kBest{k: k, metric: m}
	if t.Root() == nil {
		return nil, acc
	}
	var sc scratch
	pq := nodeQueue{{node: t.Root(), sqMinDist: m.RankMinDist(t.Root().Rect(), q)}}
	for len(pq) > 0 {
		item := heap.Pop(&pq).(nodeItem)
		if item.sqMinDist > best.bound() {
			break
		}
		n := item.node
		acc.visit(n)
		if n.IsLeaf() {
			acc.DistCompsSkipped += scanLeaf(n, q, m, &best, &sc)
			continue
		}
		pushChildren(&pq, n, q, m, best.bound(), &sc)
	}
	return best.results(), acc
}

// RKV finds the k nearest neighbors with the depth-first branch-and-bound
// algorithm of Roussopoulos et al.: children are visited in MINDIST order,
// branches whose MINDIST exceeds the current k-th best distance are
// pruned, and for k = 1 the MINMAXDIST of each sibling additionally
// tightens the upper bound before any point has been seen (the pruning
// rule does not generalize to k > 1, where it is skipped).
func RKV(t *xtree.Tree, q vec.Point, k int) ([]Result, Accounting) {
	checkQuery(t, q, k)
	var acc Accounting
	best := kBest{k: k, metric: vec.L2}
	if t.Root() == nil {
		return nil, acc
	}
	var sc scratch
	var visit func(n *xtree.Node)
	visit = func(n *xtree.Node) {
		acc.visit(n)
		if n.IsLeaf() {
			acc.DistCompsSkipped += scanLeaf(n, q, vec.L2, &best, &sc)
			return
		}
		children := n.Children()
		type branch struct {
			node      *xtree.Node
			sqMinDist float64
		}
		abl := make([]branch, 0, len(children))
		upper := math.Inf(1)
		for _, c := range children {
			abl = append(abl, branch{node: c, sqMinDist: c.Rect().SqMinDist(q)})
			if k == 1 {
				// MINMAXDIST guarantees a data point within
				// that distance inside the child MBR.
				if mm := c.Rect().SqMinMaxDist(q); mm < upper {
					upper = mm
				}
			}
		}
		sort.Slice(abl, func(i, j int) bool { return abl[i].sqMinDist < abl[j].sqMinDist })
		for _, b := range abl {
			if b.sqMinDist > best.bound() || b.sqMinDist > upper {
				continue
			}
			visit(b.node)
		}
	}
	visit(t.Root())
	return best.results(), acc
}

// Linear scans entries directly — the ground truth for correctness tests
// and the no-index baseline. Ties are broken by entry ID, matching the
// tree algorithms.
func Linear(entries []xtree.Entry, q vec.Point, k int) []Result {
	return LinearMetric(entries, q, k, vec.L2)
}

// LinearMetric is Linear under an arbitrary Minkowski metric.
func LinearMetric(entries []xtree.Entry, q vec.Point, k int, m vec.Metric) []Result {
	if k < 1 {
		panic(fmt.Sprintf("knn: k = %d < 1", k))
	}
	best := kBest{k: k, metric: m}
	for _, e := range entries {
		best.offer(e, m.RankDist(q, e.Point))
	}
	return best.results()
}

// SphereLeafPages counts the leaf pages of the tree whose MBR intersects
// the Euclidean sphere of (non-squared) radius r around q — the pages
// any NN-algorithm must read (paper §2.1, the NN-sphere). Supernode
// leaves count their multiplier. The second result is the number of
// leaves.
func SphereLeafPages(t *xtree.Tree, q vec.Point, r float64) (pages, leaves int) {
	return SphereLeafPagesMetric(t, q, r, vec.L2)
}

// SphereLeafPagesMetric is SphereLeafPages for the metric's ball of
// radius r.
func SphereLeafPagesMetric(t *xtree.Tree, q vec.Point, r float64, m vec.Metric) (pages, leaves int) {
	rank := m.ToRank(r)
	for _, l := range t.Leaves() {
		if m.RankMinDist(l.Rect(), q) <= rank {
			pages += l.Super()
			leaves++
		}
	}
	return pages, leaves
}

// KthDistance returns the distance of the k-th nearest neighbor of q, or
// +inf when the tree holds fewer than k entries. It runs HS.
func KthDistance(t *xtree.Tree, q vec.Point, k int) float64 {
	res, _ := HS(t, q, k)
	if len(res) < k {
		return math.Inf(1)
	}
	return res[k-1].Dist
}
