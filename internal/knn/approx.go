package knn

// Approximate k-NN: the HS search with two optional, composable
// relaxations.
//
// ε-termination (Arya et al.): the search stops as soon as the next
// priority-queue node's MINDIST exceeds kth/(1+ε) — equivalently, once
// (1+ε)·MINDIST exceeds the current k-th best distance. Every point the
// terminated search never sees is then provably farther than
// kth/(1+ε), so the returned k-th distance is at most (1+ε) times the
// true k-th distance. The comparison happens in rank space: for a
// Minkowski metric, ToRank is a power function, so scaling the metric
// distance by 1/(1+ε) is scaling the rank distance by ToRank(1/(1+ε))
// (the Shrink factor below). ε = 0 makes Shrink 1, and because the
// exact stop check runs first, the ε check can then never fire — the
// traversal is the exact one by construction.
//
// LSH probe filter: an optional per-leaf predicate (built from the
// multi-probe LSH filter over the shard's leaf layout, see package
// lsh). A popped leaf the filter rejects is skipped unscanned. The
// filter is only consulted once k candidates are known, so every shard
// still returns min(k, shard size) candidates and the merged result is
// never short — the filter can cost recall, never result cardinality.
//
// Composition with the shared cross-disk bound: the phantom mechanism
// of HSShared is unchanged — for the pages that are visited, phantom
// accounting stays exact. Pages the approximation skips (the pending
// queue at ε-termination, plus LSH-rejected leaves) are charged to
// ApproxStats.SkippedPages, never to Saved, so the shared bound's
// savings and the approximation's savings stay separately attributable.

import (
	"container/heap"
	"math"

	"parsearch/internal/vec"
	"parsearch/internal/xtree"
)

// ApproxSpec configures the approximate search.
type ApproxSpec struct {
	// Shrink is the rank-space ε-termination factor,
	// Metric.ToRank(1/(1+ε)). 1 (or more) disables ε-termination.
	Shrink float64
	// Probe, when non-nil, is the LSH pre-filter: a popped leaf for
	// which it returns false is skipped without scanning. It is only
	// consulted once the local candidate set is full.
	Probe func(n *xtree.Node) bool
}

// ExactSpec reports whether the spec requests no approximation at all.
func (s ApproxSpec) ExactSpec() bool { return s.Shrink >= 1 && s.Probe == nil }

// ShrinkFor returns the rank-space termination factor for ε under m.
func ShrinkFor(epsilon float64, m vec.Metric) float64 {
	if epsilon <= 0 {
		return 1
	}
	return m.ToRank(1 / (1 + epsilon))
}

// ApproxStats reports what the approximation (and the shared bound)
// did for one HSApprox call.
type ApproxStats struct {
	SharedStats
	// SkippedPages counts pages the approximation skipped: the
	// still-reachable pending queue at ε-termination (nodes whose
	// MINDIST did not exceed the local bound — deeper pages under
	// pending directory nodes are not expanded, so this is a lower
	// bound on the work avoided) plus every LSH-rejected leaf.
	SkippedPages int
	// EpsilonFired reports whether ε-termination cut the traversal.
	EpsilonFired bool
	// ProbedPages counts leaf pages the LSH filter admitted;
	// RejectedLeaves counts leaves it refused. Both stay zero while
	// the candidate set is not yet full (the filter is not consulted).
	ProbedPages    int
	RejectedLeaves int
}

// HSApprox is HSShared with the ApproxSpec relaxations applied. b may
// be nil (no shared cross-disk bound): phantom accounting and
// tightening are then skipped, matching HSMetric's independent
// traversal. With an exact spec (Shrink ≥ 1, nil Probe) the traversal
// and results are identical to HSShared / HSMetric.
func HSApprox(t *xtree.Tree, q vec.Point, k int, m vec.Metric, spec ApproxSpec, b *Bound, onTighten func(sqBound float64)) ([]Result, Accounting, ApproxStats) {
	checkQuery(t, q, k)
	var acc Accounting
	var as ApproxStats
	best := kBest{k: k, metric: m}
	if t.Root() == nil {
		return nil, acc, as
	}
	var sc scratch
	pq := nodeQueue{{node: t.Root(), sqMinDist: m.RankMinDist(t.Root().Rect(), q)}}
	phantom := false
	for len(pq) > 0 {
		item := heap.Pop(&pq).(nodeItem)
		bound := best.bound()
		if item.sqMinDist > bound {
			break
		}
		if spec.Shrink < 1 && item.sqMinDist > spec.Shrink*bound {
			// ε fires: k candidates are known (a finite bound), and every
			// pending node holds only points farther than kth/(1+ε).
			// Charge the reachable remainder of the queue as skipped —
			// nodes already beyond the local bound would never have been
			// visited (the bound only decreases), so they don't count.
			as.EpsilonFired = true
			as.SkippedPages += item.node.Super()
			for _, pend := range pq {
				if pend.sqMinDist <= bound {
					as.SkippedPages += pend.node.Super()
				}
			}
			break
		}
		if b != nil && !phantom && item.sqMinDist > b.Load() {
			phantom = true
		}
		n := item.node
		if n.IsLeaf() && spec.Probe != nil && len(best.heap) >= k {
			if !spec.Probe(n) {
				as.RejectedLeaves++
				as.SkippedPages += n.Super()
				continue
			}
			as.ProbedPages += n.Super()
		}
		if phantom {
			as.Saved.visit(n)
			if b.seededAt(b.Load()) {
				as.RemotePages += n.Super()
			}
		} else {
			acc.visit(n)
		}
		if n.IsLeaf() {
			skipped := scanLeaf(n, q, m, &best, &sc)
			if phantom {
				as.Saved.DistCompsSkipped += skipped
			} else {
				acc.DistCompsSkipped += skipped
				if b != nil {
					if d := best.bound(); !math.IsInf(d, 1) && b.Tighten(d) {
						as.Tightened++
						if onTighten != nil {
							onTighten(d)
						}
					}
				}
			}
			continue
		}
		pushChildren(&pq, n, q, m, best.bound(), &sc)
	}
	return best.results(), acc, as
}
