package knn

import (
	"container/heap"

	"parsearch/internal/vec"
	"parsearch/internal/xtree"
)

// Packed-mode fast paths: when the tree maintains slab caches
// (xtree.Config.Packed), the leaf and directory scans below replace the
// per-entry scalar kernels with one batched kernel call per page. The
// batched kernels reproduce the scalar arithmetic bit for bit (see the
// slab package), so every candidate distance, every push decision and
// every tie-break is identical to the unpacked path — only the constant
// factor changes. On quantized slabs the leaf scan additionally skips
// the exact distance of points whose SQ8 lower bound already exceeds
// the current k-th-best distance; such points could never enter the
// k-set (kBest.offer replaces on strictly smaller distances only), so
// the results stay identical while the skips are counted as
// Accounting.DistCompsSkipped.

// scratch holds the per-search batch buffer, grown to the largest page
// seen, so the batched kernels allocate once per search instead of once
// per page.
type scratch struct {
	dists []float64
}

func (sc *scratch) grow(n int) []float64 {
	if cap(sc.dists) < n {
		sc.dists = make([]float64, n)
	}
	return sc.dists[:n]
}

// scanLeaf offers every entry of the leaf to best and returns how many
// exact distance computations the SQ8 pre-filter skipped (0 without
// quantization or on unpacked trees).
func scanLeaf(n *xtree.Node, q vec.Point, m vec.Metric, best *kBest, sc *scratch) int {
	entries := n.Entries()
	s := n.PageSlab()
	if s == nil {
		for _, e := range entries {
			best.offer(e, m.RankDist(q, e.Point))
		}
		return 0
	}
	out := sc.grow(s.Len())
	if s.Quantized() {
		s.LowerBounds(q, m, out)
		skipped := 0
		for i, e := range entries {
			// bound() is live: each offer may tighten it, widening the
			// skip window for the rest of the page. A skipped point has
			// exact distance >= lower bound > bound, and offer only
			// replaces on strictly smaller distances, so skipping it
			// cannot change the k-set or any tie-break.
			if out[i] > best.bound() {
				skipped++
				continue
			}
			best.offer(e, s.DistTo(i, q, m))
		}
		return skipped
	}
	s.DistsToPage(q, m, out)
	for i, e := range entries {
		best.offer(e, out[i])
	}
	return 0
}

// pushChildren pushes every child with rank MINDIST <= bound onto the
// queue, batching the MINDIST computation on packed trees.
func pushChildren(pq *nodeQueue, n *xtree.Node, q vec.Point, m vec.Metric, bound float64, sc *scratch) {
	children := n.Children()
	if rs := n.ChildRects(); rs != nil {
		out := sc.grow(rs.Len())
		rs.MinDistsToPage(q, m, out)
		for i, c := range children {
			if out[i] <= bound {
				heap.Push(pq, nodeItem{node: c, sqMinDist: out[i]})
			}
		}
		return
	}
	for _, c := range children {
		if d := m.RankMinDist(c.Rect(), q); d <= bound {
			heap.Push(pq, nodeItem{node: c, sqMinDist: d})
		}
	}
}
