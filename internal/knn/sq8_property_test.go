package knn

import (
	"math/rand"
	"testing"

	"parsearch/internal/vec"
	"parsearch/internal/xtree"
)

// TestSQ8PropertyEquivalence is the SQ8 property battery: on 1000
// seeded random instances (dimension, size, metric, k all varied), the
// quantized pre-filter plus exact re-ranking must return results
// identical to the unquantized packed path — same neighbors, same
// distances, same tie-breaks, same page accounting — while actually
// skipping exact distance computations somewhere across the batch. The
// skips may not change page visits: the pre-filter only replaces exact
// distance computations inside leaves the search visits anyway.
func TestSQ8PropertyEquivalence(t *testing.T) {
	metrics := []vec.Metric{vec.L2, vec.L1, vec.LInf}
	totalSkipped := 0
	for inst := 0; inst < 1000; inst++ {
		r := rand.New(rand.NewSource(int64(inst)))
		dim := 2 + r.Intn(7)
		n := 40 + r.Intn(160)
		m := metrics[inst%len(metrics)]

		cfg := xtree.DefaultConfig(dim)
		cfg.Packed = true
		packed := xtree.New(cfg)
		qcfg := cfg
		qcfg.Quantize = true
		quant := xtree.New(qcfg)
		for i := 0; i < n; i++ {
			p := make(vec.Point, dim)
			for j := range p {
				p[j] = float64(float32(r.Float64() * 10))
			}
			packed.Insert(p, i)
			quant.Insert(p, i)
		}
		q := make(vec.Point, dim)
		for j := range q {
			q[j] = float64(float32(r.Float64() * 10))
		}
		k := 1 + r.Intn(8)

		want, wantAcc := HSMetric(packed, q, k, m)
		got, gotAcc := HSMetric(quant, q, k, m)
		if len(got) != len(want) {
			t.Fatalf("inst %d (dim=%d n=%d m=%v k=%d): %d results, want %d",
				inst, dim, n, m, k, len(got), len(want))
		}
		for i := range want {
			if got[i].Entry.ID != want[i].Entry.ID || got[i].Dist != want[i].Dist {
				t.Fatalf("inst %d (dim=%d n=%d m=%v k=%d) result %d: got ID=%d d=%v, want ID=%d d=%v",
					inst, dim, n, m, k, i, got[i].Entry.ID, got[i].Dist, want[i].Entry.ID, want[i].Dist)
			}
		}
		if gotAcc.PageAccesses != wantAcc.PageAccesses ||
			gotAcc.LeafAccesses != wantAcc.LeafAccesses ||
			gotAcc.DirAccesses != wantAcc.DirAccesses {
			t.Fatalf("inst %d: page accounting differs: quantized %+v, packed %+v", inst, gotAcc, wantAcc)
		}
		if wantAcc.DistCompsSkipped != 0 {
			t.Fatalf("inst %d: unquantized tree skipped %d distance comps", inst, wantAcc.DistCompsSkipped)
		}
		totalSkipped += gotAcc.DistCompsSkipped
	}
	if totalSkipped == 0 {
		t.Fatal("SQ8 pre-filter never skipped an exact distance computation across 1000 instances")
	}
}
