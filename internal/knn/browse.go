package knn

import (
	"container/heap"
	"fmt"

	"parsearch/internal/vec"
	"parsearch/internal/xtree"
)

// Browser performs incremental nearest-neighbor ranking ("distance
// browsing", the second contribution of Hjaltason and Samet [HS 95]): it
// returns the neighbors of a query point one at a time in increasing
// distance order, without a k fixed in advance. Interactive similarity
// search uses this to fetch more results on demand at no extra cost.
//
// A Browser holds a single priority queue of nodes and data entries;
// Next pops entries in globally correct order because a data entry is
// only emitted once no remaining node could contain anything closer.
type Browser struct {
	query  vec.Point
	metric vec.Metric
	queue  browseQueue
	acc    Accounting
	sc     scratch
}

// browseItem is either a tree node or a data entry, keyed by (squared)
// distance.
type browseItem struct {
	node   *xtree.Node // nil for data entries
	entry  xtree.Entry
	sqDist float64
}

type browseQueue []browseItem

func (q browseQueue) Len() int { return len(q) }
func (q browseQueue) Less(i, j int) bool {
	if q[i].sqDist != q[j].sqDist {
		return q[i].sqDist < q[j].sqDist
	}
	// Entries before nodes at equal distance, then by ID, for
	// deterministic emission order.
	in, jn := q[i].node != nil, q[j].node != nil
	if in != jn {
		return !in
	}
	return q[i].entry.ID < q[j].entry.ID
}
func (q browseQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *browseQueue) Push(x interface{}) { *q = append(*q, x.(browseItem)) }
func (q *browseQueue) Pop() interface{} {
	old := *q
	x := old[len(old)-1]
	*q = old[:len(old)-1]
	return x
}

// NewBrowser starts an incremental ranking of the tree's entries around
// q under the Euclidean metric.
func NewBrowser(t *xtree.Tree, q vec.Point) *Browser {
	return NewBrowserMetric(t, q, vec.L2)
}

// NewBrowserMetric is NewBrowser under an arbitrary Minkowski metric.
func NewBrowserMetric(t *xtree.Tree, q vec.Point, m vec.Metric) *Browser {
	if len(q) != t.Config().Dim {
		panic(fmt.Sprintf("knn: %d-dimensional query on %d-dimensional tree", len(q), t.Config().Dim))
	}
	b := &Browser{query: vec.Clone(q), metric: m}
	if root := t.Root(); root != nil {
		b.queue = browseQueue{{node: root, sqDist: m.RankMinDist(root.Rect(), q)}}
	}
	return b
}

// Next returns the next-nearest entry and its distance, or false when the
// ranking is exhausted.
func (b *Browser) Next() (Result, bool) {
	for len(b.queue) > 0 {
		item := heap.Pop(&b.queue).(browseItem)
		if item.node == nil {
			return Result{Entry: item.entry, Dist: b.metric.FromRank(item.sqDist)}, true
		}
		b.acc.visit(item.node)
		if item.node.IsLeaf() {
			entries := item.node.Entries()
			if s := item.node.PageSlab(); s != nil {
				// Packed leaf: batch all entry distances in one kernel
				// call; the values (and so the emission order) are
				// bitwise identical to the scalar path. Browsing emits
				// every entry eventually, so the SQ8 pre-filter does
				// not apply here — exact distances are always needed.
				out := b.sc.grow(s.Len())
				s.DistsToPage(b.query, b.metric, out)
				for i, e := range entries {
					heap.Push(&b.queue, browseItem{entry: e, sqDist: out[i]})
				}
				continue
			}
			for _, e := range entries {
				heap.Push(&b.queue, browseItem{entry: e, sqDist: b.metric.RankDist(b.query, e.Point)})
			}
			continue
		}
		children := item.node.Children()
		if rs := item.node.ChildRects(); rs != nil {
			out := b.sc.grow(rs.Len())
			rs.MinDistsToPage(b.query, b.metric, out)
			for i, c := range children {
				heap.Push(&b.queue, browseItem{node: c, sqDist: out[i]})
			}
			continue
		}
		for _, c := range children {
			heap.Push(&b.queue, browseItem{node: c, sqDist: b.metric.RankMinDist(c.Rect(), b.query)})
		}
	}
	return Result{}, false
}

// Accounting returns the page accesses performed so far.
func (b *Browser) Accounting() Accounting { return b.acc }
