package knn

import (
	"math"
	"math/rand"
	"testing"

	"parsearch/internal/vec"
	"parsearch/internal/xtree"
)

func uniformEntries(r *rand.Rand, n, d int) []xtree.Entry {
	entries := make([]xtree.Entry, n)
	for i := range entries {
		p := make(vec.Point, d)
		for j := range p {
			p[j] = r.Float64()
		}
		entries[i] = xtree.Entry{Point: p, ID: i}
	}
	return entries
}

func buildTree(entries []xtree.Entry, d int) *xtree.Tree {
	t := xtree.New(xtree.DefaultConfig(d))
	for _, e := range entries {
		t.Insert(e.Point, e.ID)
	}
	return t
}

func sameResults(a, b []Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		// Distances must agree; IDs may differ only on exact ties.
		if math.Abs(a[i].Dist-b[i].Dist) > 1e-9 {
			return false
		}
	}
	return true
}

func TestHSMatchesLinearScan(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, d := range []int{2, 4, 8, 16} {
		entries := uniformEntries(r, 1500, d)
		tree := buildTree(entries, d)
		for trial := 0; trial < 20; trial++ {
			q := make(vec.Point, d)
			for j := range q {
				q[j] = r.Float64()
			}
			for _, k := range []int{1, 5, 10} {
				want := Linear(entries, q, k)
				got, acc := HS(tree, q, k)
				if !sameResults(got, want) {
					t.Fatalf("d=%d k=%d: HS disagrees with linear scan\n got %v\nwant %v", d, k, got, want)
				}
				if acc.PageAccesses == 0 {
					t.Fatal("HS reported zero page accesses")
				}
			}
		}
	}
}

func TestRKVMatchesLinearScan(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, d := range []int{2, 8} {
		entries := uniformEntries(r, 1200, d)
		tree := buildTree(entries, d)
		for trial := 0; trial < 20; trial++ {
			q := make(vec.Point, d)
			for j := range q {
				q[j] = r.Float64()
			}
			for _, k := range []int{1, 7} {
				want := Linear(entries, q, k)
				got, _ := RKV(tree, q, k)
				if !sameResults(got, want) {
					t.Fatalf("d=%d k=%d: RKV disagrees with linear scan", d, k)
				}
			}
		}
	}
}

func TestResultsSortedAscending(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	entries := uniformEntries(r, 500, 4)
	tree := buildTree(entries, 4)
	q := vec.Point{0.5, 0.5, 0.5, 0.5}
	res, _ := HS(tree, q, 10)
	for i := 1; i < len(res); i++ {
		if res[i].Dist < res[i-1].Dist {
			t.Fatalf("results not sorted: %v", res)
		}
	}
}

func TestKLargerThanDataset(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	entries := uniformEntries(r, 7, 3)
	tree := buildTree(entries, 3)
	q := vec.Point{0.5, 0.5, 0.5}
	res, _ := HS(tree, q, 50)
	if len(res) != 7 {
		t.Errorf("HS returned %d results, want all 7", len(res))
	}
	res, _ = RKV(tree, q, 50)
	if len(res) != 7 {
		t.Errorf("RKV returned %d results, want all 7", len(res))
	}
	if got := KthDistance(tree, q, 50); !math.IsInf(got, 1) {
		t.Errorf("KthDistance beyond dataset = %v, want +inf", got)
	}
}

func TestEmptyTree(t *testing.T) {
	tree := xtree.New(xtree.DefaultConfig(2))
	res, acc := HS(tree, vec.Point{0.5, 0.5}, 3)
	if res != nil || acc.PageAccesses != 0 {
		t.Error("HS on empty tree should return nothing")
	}
	res, _ = RKV(tree, vec.Point{0.5, 0.5}, 3)
	if res != nil {
		t.Error("RKV on empty tree should return nothing")
	}
}

func TestQueryValidation(t *testing.T) {
	tree := buildTree(uniformEntries(rand.New(rand.NewSource(5)), 10, 2), 2)
	for _, f := range []func(){
		func() { HS(tree, vec.Point{0.5, 0.5}, 0) },
		func() { HS(tree, vec.Point{0.5}, 1) },
		func() { RKV(tree, vec.Point{0.5, 0.5}, -1) },
		func() { Linear(nil, vec.Point{0.5}, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestExactQueryPointFound(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	entries := uniformEntries(r, 300, 5)
	tree := buildTree(entries, 5)
	// Query exactly at a stored point: distance 0, that point first.
	res, _ := HS(tree, entries[42].Point, 1)
	if len(res) != 1 || res[0].Dist != 0 || res[0].Entry.ID != 42 {
		t.Errorf("exact query: %+v", res)
	}
}

// HS is I/O optimal: it must never read more leaf pages than those
// intersecting the NN-sphere (plus it must read all of them).
func TestHSReadsExactlySphereLeaves(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const d, k = 8, 3
	entries := uniformEntries(r, 2000, d)
	tree := buildTree(entries, d)
	for trial := 0; trial < 10; trial++ {
		q := make(vec.Point, d)
		for j := range q {
			q[j] = r.Float64()
		}
		_, acc := HS(tree, q, k)
		rk := KthDistance(tree, q, k)
		_, leaves := SphereLeafPages(tree, q, rk)
		if acc.LeafAccesses > leaves {
			t.Errorf("HS read %d leaves, sphere intersects only %d", acc.LeafAccesses, leaves)
		}
		// HS may read slightly fewer than the sphere count when the
		// bound tightens mid-leaf, but not more, and never less than
		// half (sanity that SphereLeafPages measures the same thing).
		if acc.LeafAccesses*2 < leaves {
			t.Errorf("HS read %d leaves but sphere intersects %d", acc.LeafAccesses, leaves)
		}
	}
}

// RKV visits at least as many pages as HS (HS is optimal).
func TestRKVNeverBeatsHS(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	const d = 8
	entries := uniformEntries(r, 2000, d)
	tree := buildTree(entries, d)
	hsTotal, rkvTotal := 0, 0
	for trial := 0; trial < 20; trial++ {
		q := make(vec.Point, d)
		for j := range q {
			q[j] = r.Float64()
		}
		_, hs := HS(tree, q, 1)
		_, rkv := RKV(tree, q, 1)
		hsTotal += hs.PageAccesses
		rkvTotal += rkv.PageAccesses
	}
	if rkvTotal < hsTotal {
		t.Errorf("RKV total pages %d < HS %d; HS should be optimal", rkvTotal, hsTotal)
	}
}

func TestAccountingSeparatesNodeKinds(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	entries := uniformEntries(r, 3000, 4)
	tree := buildTree(entries, 4)
	q := vec.Point{0.5, 0.5, 0.5, 0.5}
	_, acc := HS(tree, q, 5)
	if acc.DirAccesses == 0 || acc.LeafAccesses == 0 {
		t.Errorf("accounting missing accesses: %+v", acc)
	}
	if acc.PageAccesses < acc.DirAccesses+acc.LeafAccesses {
		t.Errorf("page accesses %d below node accesses %d", acc.PageAccesses, acc.DirAccesses+acc.LeafAccesses)
	}
}

func TestLinearTieBreaking(t *testing.T) {
	entries := []xtree.Entry{
		{Point: vec.Point{0.4}, ID: 3},
		{Point: vec.Point{0.6}, ID: 1},
		{Point: vec.Point{0.4}, ID: 2},
	}
	res := Linear(entries, vec.Point{0.5}, 3)
	// Distances: 0.1, 0.1, 0.1 — all ties; order by ID.
	if res[0].Entry.ID != 1 || res[1].Entry.ID != 2 || res[2].Entry.ID != 3 {
		t.Errorf("tie-break order wrong: %v", res)
	}
}

// The Figure-1 effect: page accesses of a 1-NN query grow rapidly with
// dimension at constant data size.
func TestDegenerationWithDimension(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	const n = 4000
	prev := 0.0
	for _, d := range []int{2, 8, 16} {
		entries := uniformEntries(r, n, d)
		tree := buildTree(entries, d)
		total := 0
		for trial := 0; trial < 10; trial++ {
			q := make(vec.Point, d)
			for j := range q {
				q[j] = r.Float64()
			}
			_, acc := HS(tree, q, 1)
			total += acc.PageAccesses
		}
		avg := float64(total) / 10
		if avg < prev {
			t.Errorf("page accesses fell from %.1f to %.1f when dimension grew to %d", prev, avg, d)
		}
		prev = avg
	}
}

func TestSphereLeafPagesZeroRadius(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	entries := uniformEntries(r, 500, 3)
	tree := buildTree(entries, 3)
	// Radius 0 at a data point: at least the leaf holding it.
	pages, leaves := SphereLeafPages(tree, entries[0].Point, 0)
	if leaves < 1 || pages < leaves {
		t.Errorf("zero-radius sphere: pages=%d leaves=%d", pages, leaves)
	}
}

func BenchmarkHS16D(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	entries := uniformEntries(r, 10000, 16)
	tree := buildTree(entries, 16)
	q := make(vec.Point, 16)
	for j := range q {
		q[j] = r.Float64()
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		HS(tree, q, 10)
	}
}

func BenchmarkRKV16D(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	entries := uniformEntries(r, 10000, 16)
	tree := buildTree(entries, 16)
	q := make(vec.Point, 16)
	for j := range q {
		q[j] = r.Float64()
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RKV(tree, q, 10)
	}
}
