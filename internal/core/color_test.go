package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// The paper's worked example (§4.2): vertex c = 5 = 101 in a 3-dimensional
// space has bits 0 and 2 set; (0+1) XOR (2+1) = 1 XOR 3 = 2.
func TestColPaperExample(t *testing.T) {
	if got := Col(5, 3); got != 2 {
		t.Errorf("Col(5, 3) = %d, want 2", got)
	}
}

func TestColOriginIsZero(t *testing.T) {
	for d := 1; d <= 64; d++ {
		if got := Col(0, d); got != 0 {
			t.Errorf("Col(0, %d) = %d, want 0", d, got)
		}
	}
}

func TestColSingleBits(t *testing.T) {
	// A bucket with only bit i set has color i+1.
	for d := 1; d <= 32; d++ {
		for i := 0; i < d; i++ {
			if got := Col(Bucket(1)<<uint(i), d); got != i+1 {
				t.Errorf("Col(bit %d, d=%d) = %d, want %d", i, d, got, i+1)
			}
		}
	}
}

func TestColPanicsOnOutOfRangeBits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Col with a bit beyond d should panic")
		}
	}()
	Col(Bucket(1)<<10, 3)
}

// Lemma 2: col(b) XOR col(c) = col(b XOR c).
func TestColDistributivity(t *testing.T) {
	f := func(a, b uint64, dRaw uint8) bool {
		d := 1 + int(dRaw)%64
		var mask uint64 = ^uint64(0)
		if d < 64 {
			mask = 1<<uint(d) - 1
		}
		x, y := Bucket(a&mask), Bucket(b&mask)
		return Col(x, d)^Col(y, d) == Col(x^y, d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Lemma 3: direct neighbors are colored differently.
func TestColDirectNeighbors(t *testing.T) {
	f := func(a uint64, dRaw, iRaw uint8) bool {
		d := 1 + int(dRaw)%64
		i := int(iRaw) % d
		var mask uint64 = ^uint64(0)
		if d < 64 {
			mask = 1<<uint(d) - 1
		}
		b := Bucket(a & mask)
		c := b ^ Bucket(1)<<uint(i)
		return Col(b, d) != Col(c, d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Lemma 4: indirect neighbors are colored differently.
func TestColIndirectNeighbors(t *testing.T) {
	f := func(a uint64, dRaw, iRaw, jRaw uint8) bool {
		d := 2 + int(dRaw)%63
		i := int(iRaw) % d
		j := int(jRaw) % (d - 1)
		if j >= i {
			j++
		}
		var mask uint64 = ^uint64(0)
		if d < 64 {
			mask = 1<<uint(d) - 1
		}
		b := Bucket(a & mask)
		c := b ^ Bucket(1)<<uint(i) ^ Bucket(1)<<uint(j)
		return Col(b, d) != Col(c, d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Lemma 6: the colors used are exactly [0, nextPow2(d+1)).
func TestColRangeExact(t *testing.T) {
	for d := 1; d <= 16; d++ {
		want := NumColors(d)
		used := make(map[int]bool)
		for b := uint64(0); b < NumBuckets(d); b++ {
			c := Col(Bucket(b), d)
			if c < 0 || c >= want {
				t.Fatalf("d=%d: Col(%b) = %d outside [0, %d)", d, b, c, want)
			}
			used[c] = true
		}
		if len(used) != want {
			t.Errorf("d=%d: %d distinct colors used, want %d", d, len(used), want)
		}
	}
}

// The staircase of Figure 10.
func TestNumColorsStaircase(t *testing.T) {
	want := map[int]int{
		1: 2, 2: 4, 3: 4, 4: 8, 5: 8, 6: 8, 7: 8,
		8: 16, 9: 16, 15: 16, 16: 32, 31: 32, 32: 64, 63: 64,
	}
	for d, w := range want {
		if got := NumColors(d); got != w {
			t.Errorf("NumColors(%d) = %d, want %d", d, got, w)
		}
	}
}

// Lemma 6 bounds: d+1 <= NumColors(d) <= 2d (with equality cases).
func TestColorBounds(t *testing.T) {
	for d := 1; d <= 64; d++ {
		n := NumColors(d)
		if n < ColorLowerBound(d) {
			t.Errorf("d=%d: NumColors %d below lower bound %d", d, n, d+1)
		}
		if n > ColorUpperBound(d) {
			t.Errorf("d=%d: NumColors %d above upper bound %d", d, n, 2*d)
		}
	}
	// The staircase touches the lower bound when d+1 is a power of two.
	for _, d := range []int{1, 3, 7, 15, 31, 63} {
		if NumColors(d) != d+1 {
			t.Errorf("d=%d: staircase should touch lower bound, got %d", d, NumColors(d))
		}
	}
}

func TestNextPow2(t *testing.T) {
	tests := []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {8, 8}, {9, 16},
		{17, 32}, {1 << 20, 1 << 20}, {1<<20 + 1, 1 << 21},
	}
	for _, tt := range tests {
		if got := NextPow2(tt.in); got != tt.want {
			t.Errorf("NextPow2(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("NextPow2(-1) should panic")
		}
	}()
	NextPow2(-1)
}

func TestFoldColorsValidation(t *testing.T) {
	for _, tc := range []struct{ colors, n int }{
		{0, 1}, {3, 1}, {12, 2}, {8, 0}, {-8, 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FoldColors(%d, %d): expected panic", tc.colors, tc.n)
				}
			}()
			FoldColors(tc.colors, tc.n)
		}()
	}
}

// The paper's fold example (§4.3): 8-dimensional space, C = 16 colors,
// folding to 8 disks maps 8..15 to 7..0.
func TestFoldColorsPaperExample(t *testing.T) {
	t8 := FoldColors(16, 8)
	for c := 0; c < 8; c++ {
		if t8[c] != c {
			t.Errorf("fold16to8[%d] = %d, want identity", c, t8[c])
		}
	}
	wantUpper := []int{7, 6, 5, 4, 3, 2, 1, 0}
	for i, w := range wantUpper {
		if t8[8+i] != w {
			t.Errorf("fold16to8[%d] = %d, want %d", 8+i, t8[8+i], w)
		}
	}
}

func TestFoldColorsIdentityWhenEnoughDisks(t *testing.T) {
	for _, n := range []int{16, 17, 100} {
		tbl := FoldColors(16, n)
		for c, v := range tbl {
			if v != c {
				t.Errorf("FoldColors(16, %d)[%d] = %d, want identity", n, c, v)
			}
		}
	}
}

// Folding must land every color in [0, n) and use all n disks.
func TestFoldColorsRangeAndSurjectivity(t *testing.T) {
	for _, colors := range []int{2, 4, 8, 16, 32, 64} {
		for n := 1; n <= colors; n++ {
			tbl := FoldColors(colors, n)
			used := make(map[int]bool)
			for c, v := range tbl {
				if v < 0 || v >= n {
					t.Fatalf("FoldColors(%d, %d)[%d] = %d outside [0, %d)", colors, n, c, v, n)
				}
				used[v] = true
			}
			if len(used) != n {
				t.Errorf("FoldColors(%d, %d) uses %d disks, want %d", colors, n, len(used), n)
			}
		}
	}
}

func TestFoldColorsSingleDisk(t *testing.T) {
	for _, v := range FoldColors(32, 1) {
		if v != 0 {
			t.Fatalf("FoldColors(_, 1) must map everything to disk 0, got %d", v)
		}
	}
}

// With n = C/2 disks, the fold pairs each color with its binary
// complement, which has maximal Hamming distance — the paper's rationale.
func TestFoldColorsComplementPairing(t *testing.T) {
	const colors = 16
	tbl := FoldColors(colors, colors/2)
	for c := 0; c < colors; c++ {
		comp := (colors - 1) ^ c
		if tbl[c] != tbl[comp] {
			t.Errorf("colors %d and its complement %d folded apart: %d vs %d", c, comp, tbl[c], tbl[comp])
		}
	}
}

// When folding to a power-of-two disk count, direct neighbors (colors that
// differ by XOR with j+1) should still usually differ; the paper only
// claims "most", so verify the collision rate stays low statistically.
func TestFoldPreservesMostDirectNeighborSeparation(t *testing.T) {
	const d = 16
	colors := NumColors(d) // 32
	for _, n := range []int{16, 8} {
		tbl := FoldColors(colors, n)
		collisions, total := 0, 0
		for b := uint64(0); b < 1<<d; b += 37 { // sampled stride
			cb := tbl[Col(Bucket(b), d)]
			for i := 0; i < d; i++ {
				c := Bucket(b) ^ Bucket(1)<<uint(i)
				total++
				if tbl[Col(c, d)] == cb {
					collisions++
				}
			}
		}
		rate := float64(collisions) / float64(total)
		if rate > 0.25 {
			t.Errorf("fold to %d disks: direct-neighbor collision rate %.2f too high", n, rate)
		}
	}
}

// DirectOnlyColor must separate all direct neighbors using d+1 colors.
func TestDirectOnlyColor(t *testing.T) {
	for _, d := range []int{2, 3, 5, 8, 13} {
		for b := uint64(0); b < NumBuckets(d); b++ {
			c := DirectOnlyColor(Bucket(b), d)
			if c < 0 || c > d {
				t.Fatalf("d=%d: DirectOnlyColor(%b) = %d outside [0, %d]", d, b, c, d)
			}
			for i := 0; i < d; i++ {
				nb := Bucket(b) ^ Bucket(1)<<uint(i)
				if DirectOnlyColor(nb, d) == c {
					t.Fatalf("d=%d: direct neighbors %b and %b share color %d", d, b, nb, c)
				}
			}
		}
	}
}

// ... and it must fail on some indirect pair (that is the point of the
// ablation): for every d >= 2 there exist indirect neighbors with equal
// colors.
func TestDirectOnlyColorCollidesOnIndirect(t *testing.T) {
	for _, d := range []int{3, 4, 8, 16} {
		found := false
	search:
		for b := uint64(0); b < NumBuckets(d); b++ {
			for _, nb := range IndirectNeighbors(Bucket(b), d) {
				if DirectOnlyColor(Bucket(b), d) == DirectOnlyColor(nb, d) {
					found = true
					break search
				}
			}
		}
		if !found {
			t.Errorf("d=%d: expected an indirect collision for the direct-only coloring", d)
		}
	}
}

func BenchmarkCol16(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	buckets := make([]Bucket, 1024)
	for i := range buckets {
		buckets[i] = Bucket(r.Uint64() & 0xFFFF)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Col(buckets[i%len(buckets)], 16)
	}
}
