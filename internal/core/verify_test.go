package core

import (
	"math/rand"
	"strings"
	"testing"

	"parsearch/internal/vec"
)

func TestVerifyNearOptimalFindsAllViolations(t *testing.T) {
	// FX on the binary grid maps every bucket to XOR of its bits, so in
	// d=3 there are plenty of collisions between neighbors; max <= 0
	// returns all of them, a positive max truncates.
	s := NewFX(4)
	all := VerifyNearOptimal(s, 3, 0)
	if len(all) == 0 {
		t.Fatal("expected violations for FX in d=3")
	}
	limited := VerifyNearOptimal(s, 3, 2)
	if len(limited) != 2 {
		t.Fatalf("max=2 returned %d violations", len(limited))
	}
	// Each reported violation must actually be a violation.
	for _, v := range all {
		switch v.Kind {
		case Direct:
			if !AreDirectNeighbors(v.A, v.B) {
				t.Errorf("reported direct violation %v is not a direct pair", v)
			}
		case Indirect:
			if !AreIndirectNeighbors(v.A, v.B) {
				t.Errorf("reported indirect violation %v is not an indirect pair", v)
			}
		}
		if s.Disk(v.A.Cell(3)) != v.Disk || s.Disk(v.B.Cell(3)) != v.Disk {
			t.Errorf("violation %v does not match the strategy's assignment", v)
		}
	}
}

func TestVerifyNearOptimalCleanStrategy(t *testing.T) {
	for d := 1; d <= 10; d++ {
		s := NewNearOptimal(d, NumColors(d))
		if v := VerifyNearOptimal(s, d, 0); len(v) != 0 {
			t.Errorf("d=%d: %d violations for col with full colors", d, len(v))
		}
	}
}

func TestVerifyNearOptimalPanicsOnHugeDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for d >= 30")
		}
	}()
	VerifyNearOptimal(NewDiskModulo(4), 30, 1)
}

func TestViolationString(t *testing.T) {
	v := Violation{A: 3, B: 6, Kind: Indirect, Disk: 2}
	s := v.String()
	if !strings.Contains(s, "indirect") || !strings.Contains(s, "disk 2") {
		t.Errorf("unhelpful violation string %q", s)
	}
	if Direct.String() != "direct" || Indirect.String() != "indirect" {
		t.Error("NeighborKind names wrong")
	}
}

func TestSampleVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// col with full colors: no violations even in d=32.
	clean := NewNearOptimal(32, NumColors(32))
	if v := SampleVerify(clean, 32, 5000, 0, rng); len(v) != 0 {
		t.Errorf("sampled violations for col in d=32: %v", v[0])
	}
	// FX in d=32: two colors for 2^32 buckets, violations abound.
	dirty := NewFX(4)
	v := SampleVerify(dirty, 32, 2000, 10, rng)
	if len(v) != 10 {
		t.Errorf("expected 10 capped violations, got %d", len(v))
	}
}

func TestSampleVerifyNilRNGPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for nil rng")
		}
	}()
	SampleVerify(NewFX(2), 8, 10, 0, nil)
}

func TestSampleVerifyOneDimension(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// d=1 has no indirect pairs; must not panic.
	s := NewNearOptimal(1, 2)
	if v := SampleVerify(s, 1, 100, 0, rng); len(v) != 0 {
		t.Errorf("violations in d=1: %v", v)
	}
}

func TestMeasureBalance(t *testing.T) {
	a := NewRoundRobin(4)
	pts := make([][]float64, 10)
	for i := range pts {
		pts[i] = []float64{0.5}
	}
	lb := MeasureBalance(a, pts)
	if lb.Max != 3 || lb.Min != 2 {
		t.Errorf("round robin of 10 over 4: max %d min %d, want 3/2", lb.Max, lb.Min)
	}
	if lb.Ideal != 2.5 {
		t.Errorf("Ideal = %v", lb.Ideal)
	}
	if got := lb.Imbalance(); got != 1.2 {
		t.Errorf("Imbalance = %v, want 1.2", got)
	}
}

func TestMeasureBalanceEmpty(t *testing.T) {
	lb := MeasureBalance(NewRoundRobin(4), nil)
	if lb.Max != 0 || lb.Min != 0 || lb.Imbalance() != 0 {
		t.Errorf("empty balance: %+v", lb)
	}
}

// Full-pipeline sanity: points through splitter + strategy end-to-end, all
// strategies, uniform data roughly balanced for the near-optimal strategy.
func TestEndToEndUniformBalance(t *testing.T) {
	const d, n = 16, 16
	r := rand.New(rand.NewSource(99))
	pts := make([][]float64, 8000)
	for i := range pts {
		p := make(vec.Point, d)
		for j := range p {
			p[j] = r.Float64()
		}
		pts[i] = p
	}
	sp := NewMidpointSplitter(d)
	a := NewBucketAssigner(sp, NewNearOptimal(d, n))
	lb := MeasureBalance(a, pts)
	if lb.Imbalance() > 1.5 {
		t.Errorf("uniform data imbalance %.2f for near-optimal declustering", lb.Imbalance())
	}
}
