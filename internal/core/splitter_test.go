package core

import (
	"math/rand"
	"testing"

	"parsearch/internal/vec"
)

func TestMidpointSplitter(t *testing.T) {
	s := NewMidpointSplitter(3)
	if s.Dim() != 3 {
		t.Fatalf("Dim = %d", s.Dim())
	}
	for _, v := range s.Splits() {
		if v != 0.5 {
			t.Fatalf("split = %v, want 0.5", v)
		}
	}
	tests := []struct {
		p    vec.Point
		want Bucket
	}{
		{vec.Point{0.1, 0.1, 0.1}, 0b000},
		{vec.Point{0.9, 0.1, 0.1}, 0b001},
		{vec.Point{0.1, 0.9, 0.1}, 0b010},
		{vec.Point{0.9, 0.9, 0.9}, 0b111},
		{vec.Point{0.5, 0.5, 0.5}, 0b000}, // boundary goes low
	}
	for _, tt := range tests {
		if got := s.Bucket(tt.p); got != tt.want {
			t.Errorf("Bucket(%v) = %b, want %b", tt.p, got, tt.want)
		}
	}
}

func TestSplitterDimensionMismatchPanics(t *testing.T) {
	s := NewMidpointSplitter(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	s.Bucket(vec.Point{0.5})
}

func TestNewSplitterCopiesInput(t *testing.T) {
	in := []float64{0.3, 0.7}
	s := NewSplitter(in)
	in[0] = 0.99
	if s.Splits()[0] != 0.3 {
		t.Error("NewSplitter shares the caller's slice")
	}
}

func TestQuantileSplitterMedianBalances(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	const d, n = 4, 4000
	// Heavily skewed data: exponential-ish per dimension.
	pts := make([]vec.Point, n)
	for i := range pts {
		p := make(vec.Point, d)
		for j := range p {
			p[j] = r.Float64() * r.Float64() // density biased toward 0
		}
		pts[i] = p
	}
	s := NewQuantileSplitter(pts, 0.5)
	// Each dimension must now split the data ~50/50.
	for j := 0; j < d; j++ {
		above := 0
		for _, p := range pts {
			if p[j] > s.Splits()[j] {
				above++
			}
		}
		frac := float64(above) / n
		if frac < 0.45 || frac > 0.55 {
			t.Errorf("dimension %d: %.2f of points above median split", j, frac)
		}
	}
	// A midpoint splitter on the same data is badly imbalanced, which is
	// exactly why the extension exists.
	mid := NewMidpointSplitter(d)
	above := 0
	for _, p := range pts {
		if p[0] > mid.Splits()[0] {
			above++
		}
	}
	if frac := float64(above) / n; frac > 0.40 {
		t.Errorf("midpoint split unexpectedly balanced (%.2f) — workload not skewed?", frac)
	}
}

func TestQuantileSplitterPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty point set")
		}
	}()
	NewQuantileSplitter(nil, 0.5)
}

func TestAdaptiveSplitterValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for threshold < 1")
		}
	}()
	NewAdaptiveSplitter(2, 0.5, 0.5)
}

func TestAdaptiveSplitterLifecycle(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	const d = 3
	a := NewAdaptiveSplitter(d, 0.5, 2.0)
	if a.Dim() != d {
		t.Fatalf("Dim = %d", a.Dim())
	}
	// Initially splits are midpoints and no rebalance is needed.
	if a.NeedsRebalance() {
		t.Error("fresh splitter should not need rebalancing")
	}
	for _, v := range a.Splits() {
		if v != 0.5 {
			t.Fatalf("initial split %v, want 0.5", v)
		}
	}
	// Feed skewed data: most mass below 0.2.
	for i := 0; i < 5000; i++ {
		p := make(vec.Point, d)
		for j := range p {
			p[j] = r.Float64() * 0.4 * r.Float64()
		}
		a.Observe(p)
	}
	if !a.NeedsRebalance() {
		t.Fatal("skewed data should trigger rebalancing")
	}
	splits := a.Rebalance()
	for j, v := range splits {
		if v <= 0 || v >= 0.4 {
			t.Errorf("dimension %d: rebalanced split %v outside the data's range", j, v)
		}
	}
	if a.NeedsRebalance() {
		t.Error("counters should reset after Rebalance")
	}
	// Buckets now respond to the new splits.
	lowPoint := make(vec.Point, d)
	highPoint := make(vec.Point, d)
	for j := range highPoint {
		highPoint[j] = 0.39
	}
	if a.Bucket(lowPoint) != 0 {
		t.Error("low point should land in quadrant 0")
	}
	if a.Bucket(highPoint) != Bucket(1<<d-1) {
		t.Errorf("high point should land in the top quadrant, got %b", a.Bucket(highPoint))
	}
}

func TestAdaptiveSplitterBalancedDataStaysPut(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	a := NewAdaptiveSplitter(2, 0.5, 2.0)
	for i := 0; i < 5000; i++ {
		a.Observe(vec.Point{r.Float64(), r.Float64()})
	}
	if a.NeedsRebalance() {
		t.Error("uniform data should not trigger rebalancing")
	}
}

func TestAdaptiveSplitterDimChecks(t *testing.T) {
	a := NewAdaptiveSplitter(2, 0.5, 2.0)
	for _, f := range []func(){
		func() { a.Observe(vec.Point{1}) },
		func() { a.Bucket(vec.Point{1, 2, 3}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on dimension mismatch")
				}
			}()
			f()
		}()
	}
}

func TestAdaptiveSplitterRebalanceWithoutData(t *testing.T) {
	a := NewAdaptiveSplitter(2, 0.5, 2.0)
	splits := a.Rebalance() // must not panic, splits unchanged
	for _, v := range splits {
		if v != 0.5 {
			t.Errorf("split moved to %v without observations", v)
		}
	}
}
