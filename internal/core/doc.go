// Package core implements the paper's primary contribution: near-optimal
// declustering of high-dimensional data onto multiple disks for parallel
// nearest-neighbor search (Berchtold, Böhm, Braunmüller, Keim, Kriegel,
// SIGMOD 1997).
//
// The data space [0,1]^d is split once per dimension (finer grids are
// infeasible in high dimensions), so the buckets are the 2^d quadrants,
// identified by a bucket number whose bit i is the side of the split in
// dimension i (Definition 2). Two buckets are direct neighbors if they
// differ in exactly one bit and indirect neighbors if they differ in
// exactly two (Definition 3). A declustering is near-optimal when all
// direct and indirect neighbors land on different disks (Definition 4).
//
// The coloring function Col (Definition 6) achieves near-optimality with
// NumColors(d) = nextPow2(d+1) colors, which is optimal up to rounding
// (Lemma 6). FoldColors implements the paper's §4.3 reduction to an
// arbitrary number of disks via binary-complement mapping, NewQuantile-
// Splitter / AdaptiveSplitter implement the α-quantile split extension for
// skewed data, and Recursive implements the recursive declustering of
// overloaded disks for highly clustered data.
//
// The classic declustering baselines the paper compares against — round
// robin, Disk Modulo [DS 82], FX [KP 88] and the Hilbert curve [FB 93] —
// are implemented here as well, behind the same Strategy interface.
package core
