package core

import (
	"fmt"
	"math/bits"
)

// Col is the vertex coloring function of Definition 6 / Figure 9: for every
// set bit i of the bucket number, XOR the value i+1 into the color.
//
// Col guarantees (Lemmas 3–5) that buckets which are direct or indirect
// neighbors receive different colors, so using the color as the disk number
// yields a near-optimal declustering. Colors range over
// [0, NumColors(d)).
func Col(b Bucket, d int) int {
	checkDim(d)
	col := 0
	for v := uint64(b); v != 0; v &= v - 1 {
		i := bits.TrailingZeros64(v)
		if i >= d {
			panic(fmt.Sprintf("core: bucket %b has bit %d set beyond dimension %d", uint64(b), i, d))
		}
		col ^= i + 1
	}
	return col
}

// NextPow2 returns the smallest power of two >= x (the ⌈x⌉₂ operator of
// Lemma 6). NextPow2(0) is 1.
func NextPow2(x int) int {
	if x < 0 {
		panic(fmt.Sprintf("core: NextPow2 of negative %d", x))
	}
	if x <= 1 {
		return 1
	}
	return 1 << uint(bits.Len(uint(x-1)))
}

// NumColors returns the number of colors (disks) the coloring function
// requires for a d-dimensional space: nextPow2(d+1), a staircase function
// that is optimal up to rounding (Lemma 6).
func NumColors(d int) int {
	checkDim(d)
	return NextPow2(d + 1)
}

// ColorLowerBound returns d+1, the information-theoretic minimum number of
// disks for a near-optimal declustering: a bucket and its d direct
// neighbors must receive pairwise different colors.
func ColorLowerBound(d int) int {
	checkDim(d)
	return d + 1
}

// ColorUpperBound returns 2d, the paper's linear upper bound on NumColors:
// a power of two always lies between d+1 and 2(d+1), and for d >= 1
// nextPow2(d+1) <= 2d.
func ColorUpperBound(d int) int {
	checkDim(d)
	return 2 * d
}

// FoldColors implements the §4.3 reduction of the color set to an arbitrary
// number of disks n. It returns a table t of length colors with
// t[c] ∈ [0, n) for every color c.
//
// While n <= half the remaining colors, every color in the upper half is
// mapped to its binary complement within the current bit width (complements
// have maximal Hamming distance, so most direct neighbors stay on different
// disks), halving the color count. A final complement step folds the
// highest remaining colors down so that exactly n disks are used.
//
// colors must be a positive power of two and n >= 1. If n >= colors the
// table is the identity.
func FoldColors(colors, n int) []int {
	if colors < 1 || colors&(colors-1) != 0 {
		panic(fmt.Sprintf("core: FoldColors with colors = %d, want a positive power of two", colors))
	}
	if n < 1 {
		panic(fmt.Sprintf("core: FoldColors with n = %d disks", n))
	}
	t := make([]int, colors)
	for c := range t {
		t[c] = c
	}
	if n >= colors {
		return t
	}
	cur := colors
	for n <= cur/2 {
		for c := range t {
			if t[c] >= cur/2 {
				t[c] = (cur - 1) ^ t[c]
			}
		}
		cur /= 2
	}
	if n < cur {
		for c := range t {
			if t[c] >= n {
				t[c] = (cur - 1) ^ t[c]
			}
		}
	}
	return t
}

// DirectOnlyColor is the ablation counterpart of Col: a (d+1)-coloring
// that separates only *direct* neighbors. Flipping bit j changes the color
// by ±(j+1) mod (d+1) ≠ 0, so direct neighbors always differ, but indirect
// neighbors may collide. Comparing it against Col quantifies the value of
// the indirect-neighbor guarantee.
func DirectOnlyColor(b Bucket, d int) int {
	checkDim(d)
	col := 0
	for v := uint64(b); v != 0; v &= v - 1 {
		i := bits.TrailingZeros64(v)
		col += i + 1
	}
	return col % (d + 1)
}
