package core

import (
	"math/rand"
	"testing"

	"parsearch/internal/vec"
)

func TestNearOptimalBasics(t *testing.T) {
	s := NewNearOptimal(8, 16)
	if s.Name() != "new" || s.Disks() != 16 || s.Dim() != 8 {
		t.Errorf("unexpected accessors: %s %d %d", s.Name(), s.Disks(), s.Dim())
	}
	// Disk and DiskForBucket agree.
	for b := uint64(0); b < 256; b++ {
		if s.Disk(Bucket(b).Cell(8)) != s.DiskForBucket(Bucket(b)) {
			t.Fatalf("Disk and DiskForBucket disagree on %b", b)
		}
	}
}

// Lemma 5: with n >= NumColors(d) disks, the paper's strategy is strictly
// near-optimal — zero violations under exhaustive verification.
func TestNearOptimalIsNearOptimal(t *testing.T) {
	for _, d := range []int{1, 2, 3, 4, 5, 6, 7, 8, 10, 12} {
		s := NewNearOptimal(d, NumColors(d))
		if v := VerifyNearOptimal(s, d, 1); len(v) != 0 {
			t.Errorf("d=%d: near-optimal strategy has violation %v", d, v[0])
		}
	}
}

// Lemma 1 / Figure 7: DM, FX and Hilbert are NOT near-optimal for d >= 3.
func TestBaselinesAreNotNearOptimal(t *testing.T) {
	const d = 3
	n := NumColors(d) // 4 disks, enough for a near-optimal declustering
	for _, s := range []Strategy{
		NewDiskModulo(n),
		NewFX(n),
		MustNewHilbert(d, 1, n),
	} {
		if v := VerifyNearOptimal(s, d, 1); len(v) == 0 {
			t.Errorf("%s: expected a near-optimality violation in d=%d (Lemma 1)", s.Name(), d)
		}
	}
}

// All strategies must produce disks in range for random cells.
func TestStrategyDiskRange(t *testing.T) {
	const d = 10
	r := rand.New(rand.NewSource(8))
	for _, n := range []int{1, 2, 3, 5, 8, 16} {
		strategies := []Strategy{
			NewNearOptimal(d, n),
			NewDiskModulo(n),
			NewFX(n),
			MustNewHilbert(d, 1, n),
			NewDirectOnly(d, n),
		}
		for _, s := range strategies {
			if s.Disks() != n {
				t.Fatalf("%s: Disks() = %d, want %d", s.Name(), s.Disks(), n)
			}
			for trial := 0; trial < 200; trial++ {
				cell := make([]uint32, d)
				for i := range cell {
					cell[i] = uint32(r.Intn(2))
				}
				disk := s.Disk(cell)
				if disk < 0 || disk >= n {
					t.Fatalf("%s: disk %d outside [0, %d)", s.Name(), disk, n)
				}
			}
		}
	}
}

// On the binary quadrant grid, NearOptimal and Hilbert use all n disks,
// while the baselines degenerate: FX's XOR of 0/1 coordinates is only ever
// 0 or 1, and DM's coordinate sum ranges over [0, d] — one reason they
// perform poorly in high dimensions.
func TestStrategiesDiskUsageOnBinaryGrid(t *testing.T) {
	const d = 6
	min := func(a, b int) int {
		if a < b {
			return a
		}
		return b
	}
	for _, n := range []int{2, 3, 4, 7, 8} {
		for _, tc := range []struct {
			s    Strategy
			want int
		}{
			{NewNearOptimal(d, n), n},
			{MustNewHilbert(d, 1, n), n},
			{NewDiskModulo(n), min(n, d+1)},
			{NewFX(n), min(n, 2)},
		} {
			used := make(map[int]bool)
			for b := uint64(0); b < NumBuckets(d); b++ {
				used[tc.s.Disk(Bucket(b).Cell(d))] = true
			}
			if len(used) != tc.want {
				t.Errorf("%s with %d disks uses %d, want %d", tc.s.Name(), n, len(used), tc.want)
			}
		}
	}
}

func TestDiskModuloKnownValues(t *testing.T) {
	s := NewDiskModulo(3)
	tests := []struct {
		cell []uint32
		want int
	}{
		{[]uint32{0, 0, 0}, 0},
		{[]uint32{1, 1, 0}, 2},
		{[]uint32{1, 1, 1}, 0},
		{[]uint32{5, 4}, 0}, // general grid: (5+4) mod 3
	}
	for _, tt := range tests {
		if got := s.Disk(tt.cell); got != tt.want {
			t.Errorf("DM(%v) = %d, want %d", tt.cell, got, tt.want)
		}
	}
}

func TestFXKnownValues(t *testing.T) {
	s := NewFX(4)
	tests := []struct {
		cell []uint32
		want int
	}{
		{[]uint32{0, 0}, 0},
		{[]uint32{1, 1}, 0}, // 1 XOR 1
		{[]uint32{1, 0}, 1},
		{[]uint32{5, 3}, 2}, // 5 XOR 3 = 6 mod 4
	}
	for _, tt := range tests {
		if got := s.Disk(tt.cell); got != tt.want {
			t.Errorf("FX(%v) = %d, want %d", tt.cell, got, tt.want)
		}
	}
}

func TestHilbertStrategyGeneralGrid(t *testing.T) {
	// Order-4 grid in 2-d: 256 cells over 5 disks; all disks used and
	// consecutive curve cells land on consecutive disks mod n.
	s := MustNewHilbert(2, 4, 5)
	used := make(map[int]bool)
	for x := uint32(0); x < 16; x++ {
		for y := uint32(0); y < 16; y++ {
			used[s.Disk([]uint32{x, y})] = true
		}
	}
	if len(used) != 5 {
		t.Errorf("Hilbert order-4 uses %d disks, want 5", len(used))
	}
}

func TestNewHilbertError(t *testing.T) {
	if _, err := NewHilbert(33, 2, 4); err == nil {
		t.Error("expected error for dim*order > 64")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNewHilbert should panic on invalid input")
		}
	}()
	MustNewHilbert(33, 2, 4)
}

func TestRoundRobin(t *testing.T) {
	r := NewRoundRobin(4)
	if r.Name() != "RR" || r.Disks() != 4 {
		t.Errorf("accessors wrong: %s %d", r.Name(), r.Disks())
	}
	p := vec.Point{0.5}
	for i := 0; i < 20; i++ {
		if got := r.Assign(i, p); got != i%4 {
			t.Errorf("Assign(%d) = %d, want %d", i, got, i%4)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("negative index should panic")
		}
	}()
	r.Assign(-1, p)
}

func TestBucketAssigner(t *testing.T) {
	d := 4
	sp := NewMidpointSplitter(d)
	s := NewNearOptimal(d, 8)
	a := NewBucketAssigner(sp, s)
	if a.Name() != "new" || a.Disks() != 8 {
		t.Errorf("accessors wrong: %s %d", a.Name(), a.Disks())
	}
	p := vec.Point{0.9, 0.1, 0.9, 0.1} // bucket 0101 = 5
	want := s.DiskForBucket(5)
	if got := a.Assign(0, p); got != want {
		t.Errorf("Assign = %d, want %d", got, want)
	}
	// Index must be irrelevant for bucket assigners.
	if a.Assign(0, p) != a.Assign(99, p) {
		t.Error("bucket assignment depends on point index")
	}
}

func TestNewBucketAssignerNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for nil components")
		}
	}()
	NewBucketAssigner(nil, nil)
}

func TestCheckDisksPanics(t *testing.T) {
	for _, ctor := range []func(){
		func() { NewNearOptimal(4, 0) },
		func() { NewDiskModulo(-1) },
		func() { NewFX(0) },
		func() { NewRoundRobin(0) },
		func() { NewDirectOnly(4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for invalid disk count")
				}
			}()
			ctor()
		}()
	}
}

// The near-optimal strategy with folding must still separate ALL direct
// and indirect neighbors when n is a power of two >= NumColors(d)... and
// when n < NumColors(d) violations become possible but load must stay
// balanced over buckets.
func TestNearOptimalFoldedBucketBalance(t *testing.T) {
	const d = 8
	for _, n := range []int{3, 5, 6, 11, 16} {
		s := NewNearOptimal(d, n)
		counts := make([]int, n)
		for b := uint64(0); b < NumBuckets(d); b++ {
			counts[s.Disk(Bucket(b).Cell(d))]++
		}
		ideal := float64(NumBuckets(d)) / float64(n)
		for disk, c := range counts {
			if float64(c) > 2.5*ideal || float64(c) < ideal/2.5 {
				t.Errorf("n=%d: disk %d holds %d buckets, ideal %.1f", n, disk, c, ideal)
			}
		}
	}
}
