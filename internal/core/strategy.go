package core

import (
	"fmt"

	"parsearch/internal/hilbert"
	"parsearch/internal/vec"
)

// Strategy maps a grid cell — for the paper's quadrant grid, binary
// coordinates — to a disk number in [0, Disks()). A declustering algorithm
// DA in the paper's notation.
type Strategy interface {
	// Name identifies the strategy in reports ("new", "HIL", ...).
	Name() string
	// Disks returns the number of disks the strategy declusters onto.
	Disks() int
	// Disk returns the disk for the given grid cell.
	Disk(cell []uint32) int
}

// NearOptimal is the paper's declustering technique: color the quadrant
// with Col and fold the color set down to the available number of disks
// (§4.3). For n >= NumColors(d) it is near-optimal in the strict sense of
// Definition 4.
type NearOptimal struct {
	d    int
	n    int
	fold []int
}

// NewNearOptimal returns the paper's declustering for a d-dimensional
// space on n disks.
func NewNearOptimal(d, n int) *NearOptimal {
	checkDim(d)
	checkDisks(n)
	return &NearOptimal{d: d, n: n, fold: FoldColors(NumColors(d), n)}
}

// Name implements Strategy.
func (s *NearOptimal) Name() string { return "new" }

// Disks implements Strategy.
func (s *NearOptimal) Disks() int { return s.n }

// Dim returns the dimensionality the strategy was built for.
func (s *NearOptimal) Dim() int { return s.d }

// Disk implements Strategy. The cell must be binary (quadrant coordinates).
func (s *NearOptimal) Disk(cell []uint32) int {
	return s.DiskForBucket(BucketFromCell(cell))
}

// DiskForBucket is Disk without the cell-slice conversion, for hot paths.
func (s *NearOptimal) DiskForBucket(b Bucket) int {
	return s.fold[Col(b, s.d)]
}

// DiskModulo is the declustering of Du and Sobolewski [DS 82]:
// sum of the cell coordinates mod n.
type DiskModulo struct {
	n int
}

// NewDiskModulo returns the Disk Modulo declustering on n disks.
func NewDiskModulo(n int) *DiskModulo {
	checkDisks(n)
	return &DiskModulo{n: n}
}

// Name implements Strategy.
func (s *DiskModulo) Name() string { return "DM" }

// Disks implements Strategy.
func (s *DiskModulo) Disks() int { return s.n }

// Disk implements Strategy.
func (s *DiskModulo) Disk(cell []uint32) int {
	var sum uint64
	for _, c := range cell {
		sum += uint64(c)
	}
	return int(sum % uint64(s.n))
}

// FX is the field-wise XOR declustering of Kim and Pramanik [KP 88]:
// XOR of the cell coordinates mod n.
type FX struct {
	n int
}

// NewFX returns the FX declustering on n disks.
func NewFX(n int) *FX {
	checkDisks(n)
	return &FX{n: n}
}

// Name implements Strategy.
func (s *FX) Name() string { return "FX" }

// Disks implements Strategy.
func (s *FX) Disks() int { return s.n }

// Disk implements Strategy.
func (s *FX) Disk(cell []uint32) int {
	var x uint64
	for _, c := range cell {
		x ^= uint64(c)
	}
	return int(x % uint64(s.n))
}

// Hilbert is the declustering of Faloutsos and Bhagwat [FB 93]: the cell's
// Hilbert value mod n. The curve preserves spatial proximity as far as a
// linear order can, which made it the best known declustering method for
// low-dimensional range queries — the paper's main experimental baseline.
type Hilbert struct {
	n     int
	curve *hilbert.Curve
}

// NewHilbert returns the Hilbert declustering for a d-dimensional grid of
// 2^order cells per dimension on n disks. The quadrant grid of the paper
// has order 1. dim*order must be at most 64.
func NewHilbert(d, order, n int) (*Hilbert, error) {
	checkDim(d)
	checkDisks(n)
	c, err := hilbert.New(d, order)
	if err != nil {
		return nil, err
	}
	return &Hilbert{n: n, curve: c}, nil
}

// MustNewHilbert is NewHilbert that panics on error.
func MustNewHilbert(d, order, n int) *Hilbert {
	s, err := NewHilbert(d, order, n)
	if err != nil {
		panic(err)
	}
	return s
}

// Name implements Strategy.
func (s *Hilbert) Name() string { return "HIL" }

// Disks implements Strategy.
func (s *Hilbert) Disks() int { return s.n }

// Disk implements Strategy.
func (s *Hilbert) Disk(cell []uint32) int {
	return int(s.curve.Encode(cell) % uint64(s.n))
}

// DirectOnly is the ablation strategy built on DirectOnlyColor: it uses
// d+1 colors and separates direct neighbors only. See DirectOnlyColor.
type DirectOnly struct {
	d, n int
}

// NewDirectOnly returns the direct-neighbor-only declustering.
func NewDirectOnly(d, n int) *DirectOnly {
	checkDim(d)
	checkDisks(n)
	return &DirectOnly{d: d, n: n}
}

// Name implements Strategy.
func (s *DirectOnly) Name() string { return "direct-only" }

// Disks implements Strategy.
func (s *DirectOnly) Disks() int { return s.n }

// Disk implements Strategy.
func (s *DirectOnly) Disk(cell []uint32) int {
	return DirectOnlyColor(BucketFromCell(cell), s.d) % s.n
}

// checkDisks panics when n is not a legal disk count.
func checkDisks(n int) {
	if n < 1 {
		panic(fmt.Sprintf("core: %d disks, want >= 1", n))
	}
}

// Assigner places a data point on a disk. It is the interface the parallel
// index uses; bucket-based strategies are adapted via NewBucketAssigner,
// while round robin assigns by insertion order directly.
type Assigner interface {
	// Name identifies the assigner in reports.
	Name() string
	// Disks returns the number of disks.
	Disks() int
	// Assign returns the disk for the i-th point p.
	Assign(i int, p vec.Point) int
}

// RoundRobin distributes points by insertion order: point i goes to disk
// i mod n. The paper's simplest baseline (§3).
type RoundRobin struct {
	n int
}

// NewRoundRobin returns a round-robin assigner over n disks.
func NewRoundRobin(n int) *RoundRobin {
	checkDisks(n)
	return &RoundRobin{n: n}
}

// Name implements Assigner.
func (r *RoundRobin) Name() string { return "RR" }

// Disks implements Assigner.
func (r *RoundRobin) Disks() int { return r.n }

// Assign implements Assigner.
func (r *RoundRobin) Assign(i int, _ vec.Point) int {
	if i < 0 {
		panic(fmt.Sprintf("core: negative point index %d", i))
	}
	return i % r.n
}

// BucketAssigner adapts a bucket-based Strategy to the Assigner interface:
// the point's quadrant is computed with a Bucketer and handed to the
// strategy.
type BucketAssigner struct {
	bucketer Bucketer
	strategy Strategy
}

// NewBucketAssigner combines a Bucketer with a Strategy. The bucketer's
// dimensionality must not exceed what the strategy accepts; strategies
// validate their cells themselves.
func NewBucketAssigner(b Bucketer, s Strategy) *BucketAssigner {
	if b == nil || s == nil {
		panic("core: NewBucketAssigner with nil components")
	}
	return &BucketAssigner{bucketer: b, strategy: s}
}

// Name implements Assigner.
func (a *BucketAssigner) Name() string { return a.strategy.Name() }

// Strategy returns the wrapped bucket strategy.
func (a *BucketAssigner) Strategy() Strategy { return a.strategy }

// Bucketer returns the wrapped bucketer.
func (a *BucketAssigner) Bucketer() Bucketer { return a.bucketer }

// Disks implements Assigner.
func (a *BucketAssigner) Disks() int { return a.strategy.Disks() }

// Assign implements Assigner.
func (a *BucketAssigner) Assign(_ int, p vec.Point) int {
	return a.strategy.Disk(a.bucketer.Bucket(p).Cell(a.bucketer.Dim()))
}
