package core

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBucketCellRoundTrip(t *testing.T) {
	f := func(raw uint64, dRaw uint8) bool {
		d := 1 + int(dRaw)%32
		b := Bucket(raw & (1<<uint(d) - 1))
		return BucketFromCell(b.Cell(d)) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBucketFromCellValidation(t *testing.T) {
	if got := BucketFromCell([]uint32{1, 0, 1}); got != 5 {
		t.Errorf("BucketFromCell(101) = %d, want 5", got)
	}
	for _, cell := range [][]uint32{nil, {0, 2}, {3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("BucketFromCell(%v): expected panic", cell)
				}
			}()
			BucketFromCell(cell)
		}()
	}
}

func TestCoord(t *testing.T) {
	b := Bucket(0b1010)
	want := []uint32{0, 1, 0, 1}
	for i, w := range want {
		if got := b.Coord(i); got != w {
			t.Errorf("Coord(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestBitString(t *testing.T) {
	if got := Bucket(5).BitString(4); got != "0101" {
		t.Errorf("BitString = %q, want 0101", got)
	}
}

func TestNeighborPredicates(t *testing.T) {
	tests := []struct {
		a, b     Bucket
		direct   bool
		indirect bool
	}{
		{0b000, 0b001, true, false},
		{0b000, 0b011, false, true},
		{0b101, 0b101, false, false}, // same bucket
		{0b000, 0b111, false, false}, // 3 bits apart
		{0b110, 0b010, true, false},
		{0b110, 0b000, false, true},
	}
	for _, tt := range tests {
		if got := AreDirectNeighbors(tt.a, tt.b); got != tt.direct {
			t.Errorf("AreDirectNeighbors(%b, %b) = %v", tt.a, tt.b, got)
		}
		if got := AreIndirectNeighbors(tt.a, tt.b); got != tt.indirect {
			t.Errorf("AreIndirectNeighbors(%b, %b) = %v", tt.a, tt.b, got)
		}
	}
}

func TestDirectNeighborsEnumeration(t *testing.T) {
	d := 5
	b := Bucket(0b10110)
	ns := DirectNeighbors(b, d)
	if len(ns) != d {
		t.Fatalf("got %d direct neighbors, want %d", len(ns), d)
	}
	seen := map[Bucket]bool{}
	for _, n := range ns {
		if !AreDirectNeighbors(b, n) {
			t.Errorf("%b is not a direct neighbor of %b", n, b)
		}
		if seen[n] {
			t.Errorf("duplicate neighbor %b", n)
		}
		seen[n] = true
	}
}

func TestIndirectNeighborsEnumeration(t *testing.T) {
	d := 6
	b := Bucket(0b101101)
	ns := IndirectNeighbors(b, d)
	want := d * (d - 1) / 2
	if len(ns) != want {
		t.Fatalf("got %d indirect neighbors, want %d", len(ns), want)
	}
	seen := map[Bucket]bool{}
	for _, n := range ns {
		if !AreIndirectNeighbors(b, n) {
			t.Errorf("%b is not an indirect neighbor of %b", n, b)
		}
		if seen[n] {
			t.Errorf("duplicate neighbor %b", n)
		}
		seen[n] = true
	}
}

// Neighborhood is symmetric.
func TestNeighborSymmetry(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 1000; i++ {
		a := Bucket(r.Uint64())
		b := Bucket(r.Uint64())
		if AreDirectNeighbors(a, b) != AreDirectNeighbors(b, a) {
			t.Fatalf("direct neighborhood not symmetric for %b, %b", a, b)
		}
		if AreIndirectNeighbors(a, b) != AreIndirectNeighbors(b, a) {
			t.Fatalf("indirect neighborhood not symmetric for %b, %b", a, b)
		}
	}
}

// The XOR characterization from Definition 3: direct neighbors XOR to a
// power of two, indirect neighbors to a number with exactly two set bits.
func TestNeighborXORCharacterization(t *testing.T) {
	f := func(a, b uint32) bool {
		x := uint64(a ^ b)
		pop := bits.OnesCount64(x)
		return AreDirectNeighbors(Bucket(a), Bucket(b)) == (pop == 1) &&
			AreIndirectNeighbors(Bucket(a), Bucket(b)) == (pop == 2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNumBuckets(t *testing.T) {
	if NumBuckets(3) != 8 {
		t.Errorf("NumBuckets(3) = %d", NumBuckets(3))
	}
	if NumBuckets(16) != 65536 {
		t.Errorf("NumBuckets(16) = %d", NumBuckets(16))
	}
	defer func() {
		if recover() == nil {
			t.Error("NumBuckets(64) should panic")
		}
	}()
	NumBuckets(64)
}

func TestCheckDimPanics(t *testing.T) {
	for _, d := range []int{0, -1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("dimension %d: expected panic", d)
				}
			}()
			checkDim(d)
		}()
	}
	checkDim(1)
	checkDim(64)
}

// The paper's §3.2 count: an algorithm considering i levels of
// indirection in d dimensions must distribute 1 + sum C(d,k) buckets;
// for two levels in 16 dimensions that is 1 + 16 + 120 = 137.
func TestNeighborsWithinPaperExample(t *testing.T) {
	if got := NeighborsWithin(2, 16); got != 136 {
		t.Errorf("NeighborsWithin(2, 16) = %d, want 136 (paper: 137 including the bucket itself)", got)
	}
	if got := NeighborsWithin(1, 8); got != 8 {
		t.Errorf("direct neighbors in d=8: %d", got)
	}
	if got := NeighborsWithin(2, 3); got != 6 {
		t.Errorf("NeighborsWithin(2, 3) = %d, want 3+3", got)
	}
	// Full levels: all other buckets.
	if got := NeighborsWithin(10, 10); got != 1023 {
		t.Errorf("NeighborsWithin(10, 10) = %d, want 2^10-1", got)
	}
}

func TestNeighborsWithinMatchesEnumeration(t *testing.T) {
	for d := 2; d <= 8; d++ {
		for levels := 1; levels <= d; levels++ {
			count := uint64(0)
			for b := uint64(1); b < NumBuckets(d); b++ {
				if bits.OnesCount64(b) <= levels {
					count++
				}
			}
			if got := NeighborsWithin(levels, d); got != count {
				t.Errorf("NeighborsWithin(%d, %d) = %d, enumeration says %d", levels, d, got, count)
			}
		}
	}
}

func TestNeighborsWithinPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NeighborsWithin(-1, 4) },
		func() { NeighborsWithin(5, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
