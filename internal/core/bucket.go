package core

import (
	"fmt"
	"math/bits"
)

// MaxDim is the largest supported dimensionality of the quadrant space.
// Bucket numbers are stored in a uint64, one bit per dimension.
const MaxDim = 64

// Bucket is a bucket number (Definition 2): the binary quadrant coordinates
// (c_0, ..., c_{d-1}) packed into an integer with bit i = c_i. Bucket
// numbers only make sense together with the dimensionality d of the space.
type Bucket uint64

// checkDim panics when d is outside (0, MaxDim].
func checkDim(d int) {
	if d < 1 || d > MaxDim {
		panic(fmt.Sprintf("core: dimension %d outside [1, %d]", d, MaxDim))
	}
}

// BucketFromCell packs binary grid coordinates into a bucket number. Every
// coordinate must be 0 or 1; the quadrant grid of the paper has no finer
// resolution.
func BucketFromCell(cell []uint32) Bucket {
	checkDim(len(cell))
	var b Bucket
	for i, c := range cell {
		switch c {
		case 0:
		case 1:
			b |= 1 << uint(i)
		default:
			panic(fmt.Sprintf("core: cell coordinate %d = %d, want 0 or 1", i, c))
		}
	}
	return b
}

// Cell unpacks the bucket number into binary grid coordinates of length d.
func (b Bucket) Cell(d int) []uint32 {
	checkDim(d)
	cell := make([]uint32, d)
	for i := range cell {
		cell[i] = uint32(b>>uint(i)) & 1
	}
	return cell
}

// Coord returns coordinate c_i of the bucket.
func (b Bucket) Coord(i int) uint32 {
	return uint32(b>>uint(i)) & 1
}

// BitString renders the bucket as the coordinate string c_{d-1}...c_1 c_0.
func (b Bucket) BitString(d int) string {
	checkDim(d)
	return fmt.Sprintf("%0*b", d, uint64(b))
}

// AreDirectNeighbors reports whether a and b differ in exactly one
// coordinate (Definition 3): XOR of the bucket numbers has the form
// 0...010...0.
func AreDirectNeighbors(a, b Bucket) bool {
	return bits.OnesCount64(uint64(a^b)) == 1
}

// AreIndirectNeighbors reports whether a and b differ in exactly two
// coordinates (Definition 3).
func AreIndirectNeighbors(a, b Bucket) bool {
	return bits.OnesCount64(uint64(a^b)) == 2
}

// DirectNeighbors returns the d buckets that differ from b in exactly one
// coordinate.
func DirectNeighbors(b Bucket, d int) []Bucket {
	checkDim(d)
	out := make([]Bucket, 0, d)
	for i := 0; i < d; i++ {
		out = append(out, b^Bucket(1)<<uint(i))
	}
	return out
}

// IndirectNeighbors returns the d*(d-1)/2 buckets that differ from b in
// exactly two coordinates.
func IndirectNeighbors(b Bucket, d int) []Bucket {
	checkDim(d)
	out := make([]Bucket, 0, d*(d-1)/2)
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			out = append(out, b^Bucket(1)<<uint(i)^Bucket(1)<<uint(j))
		}
	}
	return out
}

// NumBuckets returns the number of quadrants of a d-dimensional space,
// 2^d. It panics for d >= 64, where the count overflows; callers that
// enumerate buckets must bound d themselves anyway.
func NumBuckets(d int) uint64 {
	checkDim(d)
	if d == MaxDim {
		panic("core: NumBuckets(64) overflows uint64")
	}
	return 1 << uint(d)
}

// NeighborsWithin returns how many buckets differ from a given bucket in
// at most `levels` coordinates (excluding the bucket itself): the sum of
// binomial coefficients C(d, k) for k = 1..levels. The paper uses this
// count to argue that guaranteeing separation beyond indirect neighbors
// (levels 1 and 2) is impractical: for two levels of indirection in a
// 16-dimensional space the count is already 136, and it grows
// combinatorially.
func NeighborsWithin(levels, d int) uint64 {
	checkDim(d)
	if levels < 0 || levels > d {
		panic(fmt.Sprintf("core: %d levels of indirection in dimension %d", levels, d))
	}
	var total, binom uint64 = 0, 1
	for k := 1; k <= levels; k++ {
		binom = binom * uint64(d-k+1) / uint64(k)
		total += binom
	}
	return total
}
