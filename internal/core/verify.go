package core

import (
	"fmt"
	"math/rand"
)

// NeighborKind distinguishes the two neighborhood relations of
// Definition 3.
type NeighborKind int

const (
	// Direct neighbors differ in exactly one quadrant coordinate.
	Direct NeighborKind = iota
	// Indirect neighbors differ in exactly two quadrant coordinates.
	Indirect
)

// String returns "direct" or "indirect".
func (k NeighborKind) String() string {
	if k == Direct {
		return "direct"
	}
	return "indirect"
}

// Violation records two neighboring buckets that a strategy assigned to
// the same disk — a breach of near-optimality (Definition 4).
type Violation struct {
	A, B Bucket
	Kind NeighborKind
	Disk int
}

// String renders the violation for reports, e.g.
// "indirect neighbors 011 and 110 both on disk 2".
func (v Violation) String() string {
	return fmt.Sprintf("%s neighbors %b and %b both on disk %d", v.Kind, uint64(v.A), uint64(v.B), v.Disk)
}

// VerifyNearOptimal exhaustively checks a strategy against Definition 4
// for a d-dimensional quadrant space: every pair of direct or indirect
// neighbors must be assigned to different disks. It returns up to max
// violations (max <= 0 means all). Enumeration visits all 2^d buckets, so
// d should stay below ~20.
//
// This is the machine-checkable form of Lemma 1 (DM, FX and Hilbert are
// not near-optimal) and Lemma 5 (col is).
func VerifyNearOptimal(s Strategy, d, max int) []Violation {
	checkDim(d)
	if d >= 30 {
		panic(fmt.Sprintf("core: exhaustive verification of 2^%d buckets is infeasible; use SampleVerify", d))
	}
	var out []Violation
	n := NumBuckets(d)
	disks := make([]int, n)
	for b := uint64(0); b < n; b++ {
		disks[b] = s.Disk(Bucket(b).Cell(d))
	}
	check := func(a, b Bucket, kind NeighborKind) bool {
		if disks[a] == disks[b] {
			out = append(out, Violation{A: a, B: b, Kind: kind, Disk: disks[a]})
			if max > 0 && len(out) >= max {
				return false
			}
		}
		return true
	}
	for b := uint64(0); b < n; b++ {
		for i := 0; i < d; i++ {
			c := b ^ 1<<uint(i)
			if c > b && !check(Bucket(b), Bucket(c), Direct) {
				return out
			}
			for j := i + 1; j < d; j++ {
				c2 := b ^ 1<<uint(i) ^ 1<<uint(j)
				if c2 > b && !check(Bucket(b), Bucket(c2), Indirect) {
					return out
				}
			}
		}
	}
	return out
}

// SampleVerify checks randomly sampled neighbor pairs, for dimensions too
// large to enumerate. It returns up to max violations found in trials
// random probes (each probe checks one random direct and one random
// indirect neighbor of a random bucket).
func SampleVerify(s Strategy, d, trials, max int, rng *rand.Rand) []Violation {
	checkDim(d)
	if rng == nil {
		panic("core: SampleVerify with nil rng")
	}
	var out []Violation
	randBucket := func() Bucket {
		if d == 64 {
			return Bucket(rng.Uint64())
		}
		return Bucket(rng.Uint64() & (1<<uint(d) - 1))
	}
	disk := func(b Bucket) int { return s.Disk(b.Cell(d)) }
	for t := 0; t < trials; t++ {
		b := randBucket()
		i := rng.Intn(d)
		dir := b ^ Bucket(1)<<uint(i)
		if disk(b) == disk(dir) {
			out = append(out, Violation{A: b, B: dir, Kind: Direct, Disk: disk(b)})
		}
		if d > 1 {
			j := rng.Intn(d - 1)
			if j >= i {
				j++
			}
			ind := dir ^ Bucket(1)<<uint(j)
			if disk(b) == disk(ind) {
				out = append(out, Violation{A: b, B: ind, Kind: Indirect, Disk: disk(b)})
			}
		}
		if max > 0 && len(out) >= max {
			break
		}
	}
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}

// LoadBalance summarizes how evenly an Assigner spreads a point set.
type LoadBalance struct {
	// Loads holds the number of points per disk.
	Loads []int
	// Max and Min are the heaviest and lightest disk loads.
	Max, Min int
	// Ideal is the perfectly balanced load, N/n.
	Ideal float64
}

// Imbalance returns Max / Ideal, 1.0 for a perfect distribution. An empty
// assignment reports 0.
func (l LoadBalance) Imbalance() float64 {
	if l.Ideal == 0 {
		return 0
	}
	return float64(l.Max) / l.Ideal
}

// MeasureBalance assigns every point and tallies the per-disk loads.
func MeasureBalance(a Assigner, points [][]float64) LoadBalance {
	loads := make([]int, a.Disks())
	for i, p := range points {
		loads[a.Assign(i, p)]++
	}
	lb := LoadBalance{Loads: loads, Ideal: float64(len(points)) / float64(a.Disks())}
	lb.Min = int(^uint(0) >> 1)
	for _, l := range loads {
		if l > lb.Max {
			lb.Max = l
		}
		if l < lb.Min {
			lb.Min = l
		}
	}
	if len(points) == 0 {
		lb.Min = 0
	}
	return lb
}
