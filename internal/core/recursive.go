package core

import (
	"fmt"

	"parsearch/internal/vec"
)

// Recursive implements the paper's second §4.3 extension for highly
// clustered data: when one disk ends up overloaded (most points fall into
// few quadrants), all buckets of that disk are declustered one level
// deeper — each affected quadrant is split again into sub-quadrants which
// are re-colored with Col, using a per-level color permutation ("permuting
// the colors using a simple heuristic when going to the next level
// provides good speed-ups"). The process repeats until the load is
// balanced or the level/expansion budget is exhausted.
//
// Expanding all buckets of a single disk per step keeps the bookkeeping at
// O(levels · disks) instead of the O(2^d) an exhaustive bucket-level
// declustering would need — exactly the trade-off the paper describes.
type Recursive struct {
	d         int
	n         int
	fold      []int
	bucketer  Bucketer
	baseSpace vec.Rect
	// base, when non-nil, colors the level-0 buckets instead of the
	// default fold[Col] heuristic, so any declustering Strategy can be
	// deepened recursively without moving its level-0 assignments.
	base Strategy
	// expanded[l] holds the disks whose buckets were declustered one
	// level deeper at level l.
	expanded []map[int]bool
	// subSplits overrides the midpoint split values of an expanded
	// cell, keyed by the cell's path key (CellAssignment.Key). Values
	// outside the cell's region fall back to the midpoint, so a stale
	// or adversarial entry can never produce a degenerate quadrant.
	subSplits map[string][]float64
}

// RecursiveConfig bounds the reorganization loop of BuildRecursive.
type RecursiveConfig struct {
	// OverloadFactor is the load threshold relative to the ideal N/n:
	// a disk holding more than OverloadFactor * N/n points triggers an
	// expansion. Must be > 1. Typical: 2.
	OverloadFactor float64
	// MaxLevels bounds the recursion depth. Typical: 8.
	MaxLevels int
	// MaxExpansions bounds the total number of disk expansions across
	// all levels. Typical: 4 * disks.
	MaxExpansions int
}

// DefaultRecursiveConfig returns the configuration used by the
// experiments: overload factor 2, up to 8 levels, 4n expansions.
func DefaultRecursiveConfig(n int) RecursiveConfig {
	return RecursiveConfig{OverloadFactor: 2, MaxLevels: 8, MaxExpansions: 4 * n}
}

// NewRecursive returns a recursive decluster over n disks that buckets
// points with the given Bucketer at level 0 and splits sub-quadrants at
// their midpoints below. No disks are expanded yet; use BuildRecursive to
// derive the expansions from a data set, or Expand to add them manually.
func NewRecursive(b Bucketer, n int) *Recursive {
	if b == nil {
		panic("core: NewRecursive with nil bucketer")
	}
	checkDisks(n)
	d := b.Dim()
	return &Recursive{
		d:         d,
		n:         n,
		fold:      FoldColors(NumColors(d), n),
		bucketer:  b,
		baseSpace: vec.UnitCube(d),
	}
}

// NewRecursiveOver returns a recursive decluster whose level 0 is colored
// by the given Strategy — point for point identical to a BucketAssigner
// over (b, s) until the first Expand. It is the entry point of the
// incremental reorganization: an unbalanced bucket-strategy index is
// wrapped without moving a single point, and only the overloaded buckets
// are then declustered deeper.
func NewRecursiveOver(b Bucketer, s Strategy) *Recursive {
	if s == nil {
		panic("core: NewRecursiveOver with nil strategy")
	}
	r := NewRecursive(b, s.Disks())
	r.base = s
	return r
}

// Name implements Assigner.
func (r *Recursive) Name() string {
	if r.base != nil {
		return r.base.Name() + "+recursive"
	}
	return "new+recursive"
}

// Disks implements Assigner.
func (r *Recursive) Disks() int { return r.n }

// Levels returns the number of levels at which at least one disk has been
// expanded, i.e. the current recursion depth.
func (r *Recursive) Levels() int { return len(r.expanded) }

// Expanded reports whether the given disk is expanded at the given level.
func (r *Recursive) Expanded(level, disk int) bool {
	return level < len(r.expanded) && r.expanded[level][disk]
}

// Expand marks a disk for one-level-deeper declustering at the given
// level. Levels must be added in order: level <= Levels().
func (r *Recursive) Expand(level, disk int) {
	if level < 0 || level > len(r.expanded) {
		panic(fmt.Sprintf("core: Expand at level %d with %d levels present", level, len(r.expanded)))
	}
	if disk < 0 || disk >= r.n {
		panic(fmt.Sprintf("core: Expand of disk %d with %d disks", disk, r.n))
	}
	if level == len(r.expanded) {
		r.expanded = append(r.expanded, make(map[int]bool))
	}
	r.expanded[level][disk] = true
}

// levelZeroDisk colors a level-0 bucket: by the base Strategy when one is
// present, by the default fold[Col] heuristic otherwise. (NearOptimal's
// Disk is fold[Col] too, so wrapping it changes nothing at level 0.)
func (r *Recursive) levelZeroDisk(b Bucket) int {
	if r.base != nil {
		return r.base.Disk(b.Cell(r.d))
	}
	return r.fold[r.permute(Col(b, r.d), 0)]
}

// SetSubSplits registers per-dimension split values for one expanded cell,
// identified by its path key (CellAssignment.Key of the cell being split).
// They replace the midpoints when the descent subdivides that cell,
// letting a reorganization split an overloaded bucket at the medians of
// its actual contents. Dimensions whose value falls outside the open cell
// region keep the midpoint.
func (r *Recursive) SetSubSplits(key string, splits []float64) {
	if len(splits) != r.d {
		panic(fmt.Sprintf("core: %d sub-split values for %d dimensions", len(splits), r.d))
	}
	if r.subSplits == nil {
		r.subSplits = make(map[string][]float64)
	}
	r.subSplits[key] = append([]float64(nil), splits...)
}

// Clone returns a copy that can be expanded independently: the expansion
// and sub-split tables are copied, the bucketer, base strategy and color
// fold (all immutable) are shared. A reorganization step mutates the clone
// off the query path and cuts it in atomically.
func (r *Recursive) Clone() *Recursive {
	c := *r
	c.expanded = make([]map[int]bool, len(r.expanded))
	for l, disks := range r.expanded {
		m := make(map[int]bool, len(disks))
		for d, v := range disks {
			m[d] = v
		}
		c.expanded[l] = m
	}
	if r.subSplits != nil {
		// Values are immutable once stored (SetSubSplits copies), so
		// sharing them across clones is safe.
		c.subSplits = make(map[string][]float64, len(r.subSplits))
		for k, v := range r.subSplits {
			c.subSplits[k] = v
		}
	}
	return &c
}

// permute applies the per-level color permutation heuristic: a rotation of
// the color space by the level index, so a bucket that collides with its
// neighborhood on one level is spread differently on the next.
func (r *Recursive) permute(col, level int) int {
	c := NumColors(r.d)
	return (col + level) % c
}

// Assign implements Assigner: walk down the levels, re-declustering within
// the current quadrant while the assigned disk is expanded at that level.
// Level 0 uses the Bucketer (which may be quantile-adapted); deeper levels
// split the current quadrant at its midpoint.
func (r *Recursive) Assign(_ int, p vec.Point) int {
	_, disk := r.assignWithLevel(p)
	return disk
}

// splitsOf extracts the level-0 split values from a Bucketer. Both
// concrete bucketers expose Splits(); unknown implementations fall back to
// midpoints of the unit cube.
func splitsOf(b Bucketer) []float64 {
	type splitter interface{ Splits() []float64 }
	if s, ok := b.(splitter); ok {
		return s.Splits()
	}
	out := make([]float64, b.Dim())
	for i := range out {
		out[i] = 0.5
	}
	return out
}

// BuildRecursive derives the expansions from a data set: it repeatedly
// assigns all points, finds the most overloaded disk at its deepest
// terminal level, and expands it, until every disk's load is within
// cfg.OverloadFactor of the ideal or the budget is exhausted. It returns
// the resulting assigner.
func BuildRecursive(points []vec.Point, b Bucketer, n int, cfg RecursiveConfig) *Recursive {
	if cfg.OverloadFactor <= 1 {
		panic(fmt.Sprintf("core: overload factor %v must exceed 1", cfg.OverloadFactor))
	}
	if cfg.MaxLevels < 1 || cfg.MaxExpansions < 0 {
		panic(fmt.Sprintf("core: invalid recursive config %+v", cfg))
	}
	r := NewRecursive(b, n)
	if len(points) == 0 {
		return r
	}
	ideal := float64(len(points)) / float64(n)

	for exp := 0; exp < cfg.MaxExpansions; exp++ {
		// Load per (level, disk) where the assignment terminated.
		type cell struct{ level, disk int }
		loads := make(map[cell]int)
		diskLoads := make([]int, n)
		for _, p := range points {
			level, disk := r.assignWithLevel(p)
			loads[cell{level, disk}]++
			diskLoads[disk]++
		}
		// Find the most loaded disk; stop when balanced.
		worst, worstLoad := 0, 0
		for d, l := range diskLoads {
			if l > worstLoad {
				worst, worstLoad = d, l
			}
		}
		if float64(worstLoad) <= cfg.OverloadFactor*ideal {
			break
		}
		// Expand the terminal (level, disk) cell of the worst disk
		// that carries the most points.
		bestLevel, bestCount := -1, 0
		for c, cnt := range loads {
			if c.disk == worst && cnt > bestCount {
				bestLevel, bestCount = c.level, cnt
			}
		}
		if bestLevel < 0 || bestLevel >= cfg.MaxLevels {
			break
		}
		r.Expand(bestLevel, worst)
	}
	return r
}

// assignWithLevel is Assign that also reports the level at which the
// assignment terminated.
func (r *Recursive) assignWithLevel(p vec.Point) (level, disk int) {
	c := r.AssignCell(p)
	return c.Level, c.Disk
}

// CellAssignment describes the terminal storage cell of a point: the disk
// it lives on, the quadrant path that leads there (one bucket number per
// level), and the region of the terminal cell — the storage unit whose
// pages a query must read when its NN-sphere intersects the region.
type CellAssignment struct {
	Disk  int
	Level int
	// Path holds the quadrant chosen at each level, root first.
	Path []Bucket
	Rect vec.Rect
}

// Key returns a string uniquely identifying the cell.
func (c CellAssignment) Key() string {
	key := make([]byte, 0, 9*len(c.Path))
	for _, b := range c.Path {
		key = appendBucketKey(key, b)
	}
	return string(key)
}

// appendBucketKey appends one path element's key bytes (8 little-endian
// bytes plus a separator).
func appendBucketKey(key []byte, b Bucket) []byte {
	return append(key,
		byte(b), byte(b>>8), byte(b>>16), byte(b>>24),
		byte(b>>32), byte(b>>40), byte(b>>48), byte(b>>56), '/')
}

// AssignCell assigns p and reports the full terminal cell.
func (r *Recursive) AssignCell(p vec.Point) CellAssignment {
	if len(p) != r.d {
		panic(fmt.Sprintf("core: %d-dimensional point assigned by %d-dimensional recursive decluster", len(p), r.d))
	}
	lo := make([]float64, r.d)
	hi := make([]float64, r.d)
	splits := splitsOf(r.bucketer)
	for i := 0; i < r.d; i++ {
		lo[i], hi[i] = r.baseSpace.Min[i], r.baseSpace.Max[i]
	}

	bucket := r.bucketer.Bucket(p)
	path := []Bucket{bucket}
	disk := r.levelZeroDisk(bucket)
	level := 0
	var key []byte
	if len(r.subSplits) > 0 {
		key = appendBucketKey(make([]byte, 0, 9*4), bucket)
	}
	for r.Expanded(level, disk) {
		// Narrow the region to the chosen quadrant and split it
		// again at the midpoints, unless the cell carries its own
		// quantile sub-splits.
		var sub []float64
		if key != nil {
			sub = r.subSplits[string(key)]
		}
		for i := 0; i < r.d; i++ {
			if bucket.Coord(i) == 1 {
				lo[i] = splits[i]
			} else {
				hi[i] = splits[i]
			}
			splits[i] = (lo[i] + hi[i]) / 2
			if sub != nil && sub[i] > lo[i] && sub[i] < hi[i] {
				splits[i] = sub[i]
			}
		}
		bucket = 0
		for i := 0; i < r.d; i++ {
			if p[i] > splits[i] {
				bucket |= 1 << uint(i)
			}
		}
		level++
		path = append(path, bucket)
		if key != nil {
			key = appendBucketKey(key, bucket)
		}
		disk = r.fold[r.permute(Col(bucket, r.d), level)]
	}

	// The terminal cell is the quadrant chosen at the final level.
	rect := vec.Rect{Min: make([]float64, r.d), Max: make([]float64, r.d)}
	for i := 0; i < r.d; i++ {
		if bucket.Coord(i) == 1 {
			rect.Min[i], rect.Max[i] = splits[i], hi[i]
		} else {
			rect.Min[i], rect.Max[i] = lo[i], splits[i]
		}
	}
	return CellAssignment{Disk: disk, Level: level, Path: path, Rect: rect}
}
