package core

import (
	"math/rand"
	"testing"

	"parsearch/internal/vec"
)

// clusteredPoints generates points packed into one quadrant corner — the
// adversarial case of §4.3 where the basic technique assigns most points
// to a single disk.
func clusteredPoints(r *rand.Rand, n, d int) []vec.Point {
	pts := make([]vec.Point, n)
	for i := range pts {
		p := make(vec.Point, d)
		for j := range p {
			p[j] = 0.9 + 0.1*r.Float64() // all in the top quadrant
		}
		pts[i] = p
	}
	return pts
}

func TestNewRecursiveValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewRecursive(nil, 4) },
		func() { NewRecursive(NewMidpointSplitter(3), 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestRecursiveWithoutExpansionsMatchesBase(t *testing.T) {
	const d, n = 5, 8
	sp := NewMidpointSplitter(d)
	rec := NewRecursive(sp, n)
	base := NewNearOptimal(d, n)
	r := rand.New(rand.NewSource(10))
	for i := 0; i < 500; i++ {
		p := make(vec.Point, d)
		for j := range p {
			p[j] = r.Float64()
		}
		if got, want := rec.Assign(i, p), base.DiskForBucket(sp.Bucket(p)); got != want {
			t.Fatalf("unexpanded recursive assign %d, base %d", got, want)
		}
	}
	if rec.Levels() != 0 {
		t.Errorf("Levels = %d, want 0", rec.Levels())
	}
	if rec.Name() != "new+recursive" || rec.Disks() != n {
		t.Errorf("accessors: %s %d", rec.Name(), rec.Disks())
	}
}

func TestExpandValidation(t *testing.T) {
	rec := NewRecursive(NewMidpointSplitter(3), 4)
	for _, f := range []func(){
		func() { rec.Expand(1, 0) },  // level skips ahead
		func() { rec.Expand(-1, 0) }, // negative level
		func() { rec.Expand(0, 4) },  // disk out of range
		func() { rec.Expand(0, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
	rec.Expand(0, 1)
	rec.Expand(0, 2)
	rec.Expand(1, 0)
	if !rec.Expanded(0, 1) || !rec.Expanded(0, 2) || !rec.Expanded(1, 0) {
		t.Error("Expanded does not reflect Expand calls")
	}
	if rec.Expanded(0, 3) || rec.Expanded(5, 0) {
		t.Error("Expanded reports disks never expanded")
	}
}

// The headline behaviour (Figure 16): on highly clustered data the basic
// technique puts nearly everything on one disk; recursive declustering
// spreads it out.
func TestBuildRecursiveBalancesClusteredData(t *testing.T) {
	const d, n = 8, 16
	r := rand.New(rand.NewSource(77))
	pts := clusteredPoints(r, 4000, d)
	sp := NewMidpointSplitter(d)

	// Basic technique: everything in one quadrant -> one disk.
	basic := NewBucketAssigner(sp, NewNearOptimal(d, n))
	lbBasic := MeasureBalance(basic, pts)
	if lbBasic.Max != len(pts) {
		t.Fatalf("expected full overload on one disk, max = %d", lbBasic.Max)
	}

	rec := BuildRecursive(pts, sp, n, DefaultRecursiveConfig(n))
	lbRec := MeasureBalance(rec, pts)
	if lbRec.Imbalance() >= lbBasic.Imbalance()/2 {
		t.Errorf("recursive declustering did not help: %.2f -> %.2f",
			lbBasic.Imbalance(), lbRec.Imbalance())
	}
	if rec.Levels() == 0 {
		t.Error("no levels were expanded on clustered data")
	}
	// All disks must stay in range.
	for i, p := range pts {
		if disk := rec.Assign(i, p); disk < 0 || disk >= n {
			t.Fatalf("disk %d out of range", disk)
		}
	}
}

// Uniform data must not trigger any expansion.
func TestBuildRecursiveUniformNoExpansion(t *testing.T) {
	const d, n = 8, 8
	r := rand.New(rand.NewSource(3))
	pts := make([]vec.Point, 2000)
	for i := range pts {
		p := make(vec.Point, d)
		for j := range p {
			p[j] = r.Float64()
		}
		pts[i] = p
	}
	rec := BuildRecursive(pts, NewMidpointSplitter(d), n, DefaultRecursiveConfig(n))
	if rec.Levels() != 0 {
		t.Errorf("uniform data expanded %d levels", rec.Levels())
	}
}

func TestBuildRecursiveEmptyPoints(t *testing.T) {
	rec := BuildRecursive(nil, NewMidpointSplitter(4), 4, DefaultRecursiveConfig(4))
	if rec.Levels() != 0 {
		t.Error("empty data expanded levels")
	}
}

func TestBuildRecursiveConfigValidation(t *testing.T) {
	pts := []vec.Point{{0.5, 0.5}}
	sp := NewMidpointSplitter(2)
	for _, cfg := range []RecursiveConfig{
		{OverloadFactor: 1, MaxLevels: 4, MaxExpansions: 4},
		{OverloadFactor: 2, MaxLevels: 0, MaxExpansions: 4},
		{OverloadFactor: 2, MaxLevels: 4, MaxExpansions: -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v: expected panic", cfg)
				}
			}()
			BuildRecursive(pts, sp, 4, cfg)
		}()
	}
}

// Assignment must be deterministic: the same point always goes to the same
// disk, regardless of query order — required for a consistent store.
func TestRecursiveAssignDeterministic(t *testing.T) {
	const d, n = 6, 8
	r := rand.New(rand.NewSource(13))
	pts := clusteredPoints(r, 1000, d)
	rec := BuildRecursive(pts, NewMidpointSplitter(d), n, DefaultRecursiveConfig(n))
	for i, p := range pts {
		a := rec.Assign(i, p)
		b := rec.Assign(i+500, p)
		if a != b {
			t.Fatalf("assignment of %v changed: %d vs %d", p, a, b)
		}
	}
}

// The recursion must terminate even when every disk is expanded at every
// level (the loop exits past the deepest expanded level).
func TestRecursiveTerminatesWhenFullyExpanded(t *testing.T) {
	const d, n = 3, 4
	rec := NewRecursive(NewMidpointSplitter(d), n)
	for level := 0; level < 3; level++ {
		for disk := 0; disk < n; disk++ {
			rec.Expand(level, disk)
		}
	}
	disk := rec.Assign(0, vec.Point{0.91, 0.93, 0.97})
	if disk < 0 || disk >= n {
		t.Fatalf("disk %d out of range", disk)
	}
	if rec.Levels() != 3 {
		t.Errorf("Levels = %d, want 3", rec.Levels())
	}
}

func TestRecursiveDimensionMismatchPanics(t *testing.T) {
	rec := NewRecursive(NewMidpointSplitter(3), 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	rec.Assign(0, vec.Point{0.5})
}

// Works with a quantile splitter at level 0 (the two extensions compose).
func TestRecursiveWithQuantileSplitter(t *testing.T) {
	const d, n = 6, 8
	r := rand.New(rand.NewSource(55))
	pts := clusteredPoints(r, 2000, d)
	sp := NewQuantileSplitter(pts, 0.5)
	rec := BuildRecursive(pts, sp, n, DefaultRecursiveConfig(n))
	lb := MeasureBalance(rec, pts)
	if lb.Imbalance() > 4 {
		t.Errorf("imbalance %.2f too high with quantile level-0 splits", lb.Imbalance())
	}
}

// AssignCell properties: the terminal cell contains the point, its disk
// matches Assign, and points sharing a cell key share disk and rect.
func TestAssignCellProperties(t *testing.T) {
	const d, n = 6, 8
	r := rand.New(rand.NewSource(101))
	pts := clusteredPoints(r, 2000, d)
	rec := BuildRecursive(pts, NewMidpointSplitter(d), n, DefaultRecursiveConfig(n))

	type cellID struct {
		disk int
		rect string
	}
	byKey := map[string]cellID{}
	for i, p := range pts {
		c := rec.AssignCell(p)
		if !c.Rect.Contains(p) {
			t.Fatalf("cell %v does not contain its point %v", c.Rect, p)
		}
		if got := rec.Assign(i, p); got != c.Disk {
			t.Fatalf("Assign disk %d != AssignCell disk %d", got, c.Disk)
		}
		if c.Level != len(c.Path)-1 {
			t.Fatalf("level %d inconsistent with path length %d", c.Level, len(c.Path))
		}
		id := cellID{disk: c.Disk, rect: c.Rect.String()}
		if prev, ok := byKey[c.Key()]; ok && prev != id {
			t.Fatalf("key %q maps to two cells: %+v vs %+v", c.Key(), prev, id)
		}
		byKey[c.Key()] = id
	}
	if len(byKey) < 2 {
		t.Fatal("expected multiple cells for clustered data under recursion")
	}
}
