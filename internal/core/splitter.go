package core

import (
	"fmt"

	"parsearch/internal/quantile"
	"parsearch/internal/vec"
)

// Bucketer maps points to quadrant bucket numbers. The plain Splitter uses
// fixed split values; AdaptiveSplitter tracks the data distribution and
// moves its splits to the α-quantile (paper §4.3).
type Bucketer interface {
	// Dim returns the dimensionality of the data space.
	Dim() int
	// Bucket returns the quadrant bucket of p: bit i is set iff p lies
	// above the split value of dimension i.
	Bucket(p vec.Point) Bucket
}

// Splitter buckets points against fixed per-dimension split values.
type Splitter struct {
	splits []float64
}

// NewMidpointSplitter splits every dimension of the unit data space at 0.5,
// the paper's default for uniformly distributed data.
func NewMidpointSplitter(d int) *Splitter {
	checkDim(d)
	s := make([]float64, d)
	for i := range s {
		s[i] = 0.5
	}
	return &Splitter{splits: s}
}

// NewSplitter uses the given per-dimension split values.
func NewSplitter(splits []float64) *Splitter {
	checkDim(len(splits))
	c := make([]float64, len(splits))
	copy(c, splits)
	return &Splitter{splits: c}
}

// NewQuantileSplitter splits each dimension at the α-quantile of the given
// points, the paper's first extension for skewed data: with α = 0.5 both
// sides of every split carry the same number of points. It panics if no
// points are given.
func NewQuantileSplitter(points []vec.Point, alpha float64) *Splitter {
	if len(points) == 0 {
		panic("core: NewQuantileSplitter with no points")
	}
	d := len(points[0])
	checkDim(d)
	splits := make([]float64, d)
	col := make([]float64, len(points))
	for i := 0; i < d; i++ {
		for j, p := range points {
			col[j] = p[i]
		}
		splits[i] = quantile.Exact(col, alpha)
	}
	return &Splitter{splits: splits}
}

// Dim implements Bucketer.
func (s *Splitter) Dim() int { return len(s.splits) }

// Splits returns a copy of the split values.
func (s *Splitter) Splits() []float64 {
	c := make([]float64, len(s.splits))
	copy(c, s.splits)
	return c
}

// Bucket implements Bucketer.
func (s *Splitter) Bucket(p vec.Point) Bucket {
	if len(p) != len(s.splits) {
		panic(fmt.Sprintf("core: %d-dimensional point bucketed by %d-dimensional splitter", len(p), len(s.splits)))
	}
	var b Bucket
	for i, split := range s.splits {
		if p[i] > split {
			b |= 1 << uint(i)
		}
	}
	return b
}

// QuadrantRect returns the region of the quadrant b within the unit cube
// under the given per-dimension split values: dimension i spans
// [splits[i], 1] when bit i of b is set and [0, splits[i]] otherwise.
func QuadrantRect(b Bucket, splits []float64) vec.Rect {
	d := len(splits)
	checkDim(d)
	r := vec.Rect{Min: make([]float64, d), Max: make([]float64, d)}
	for i, s := range splits {
		if b.Coord(i) == 1 {
			r.Min[i], r.Max[i] = s, 1
		} else {
			r.Min[i], r.Max[i] = 0, s
		}
	}
	return r
}

// AdaptiveSplitter implements the dynamic α-quantile adaptation of §4.3:
// it buckets against its current split values while recording the observed
// distribution (streaming P² quantile estimators plus below/above
// counters). When the load ratio of some dimension exceeds the imbalance
// threshold, NeedsRebalance reports true and Rebalance adopts the estimated
// quantiles as the new split values — the reorganization step of the paper.
type AdaptiveSplitter struct {
	splits    []float64
	est       []*quantile.P2
	below     []int
	above     []int
	threshold float64
}

// NewAdaptiveSplitter returns an adaptive splitter for d dimensions that
// targets the alpha-quantile and tolerates a below/above imbalance ratio up
// to threshold (e.g. 2 means: rebalance when one side of a split holds more
// than twice the points of the other). Initial splits are the midpoints.
func NewAdaptiveSplitter(d int, alpha, threshold float64) *AdaptiveSplitter {
	checkDim(d)
	if threshold < 1 {
		panic(fmt.Sprintf("core: imbalance threshold %v < 1", threshold))
	}
	a := &AdaptiveSplitter{
		splits:    make([]float64, d),
		est:       make([]*quantile.P2, d),
		below:     make([]int, d),
		above:     make([]int, d),
		threshold: threshold,
	}
	for i := 0; i < d; i++ {
		a.splits[i] = 0.5
		a.est[i] = quantile.NewP2(alpha)
	}
	return a
}

// Dim implements Bucketer.
func (a *AdaptiveSplitter) Dim() int { return len(a.splits) }

// Splits returns a copy of the current split values.
func (a *AdaptiveSplitter) Splits() []float64 {
	c := make([]float64, len(a.splits))
	copy(c, a.splits)
	return c
}

// Observe records one data point in the distribution statistics. Call it
// for every inserted point; it does not change the current splits.
func (a *AdaptiveSplitter) Observe(p vec.Point) {
	if len(p) != len(a.splits) {
		panic(fmt.Sprintf("core: %d-dimensional point observed by %d-dimensional splitter", len(p), len(a.splits)))
	}
	for i, x := range p {
		a.est[i].Add(x)
		if x > a.splits[i] {
			a.above[i]++
		} else {
			a.below[i]++
		}
	}
}

// Bucket implements Bucketer using the current split values.
func (a *AdaptiveSplitter) Bucket(p vec.Point) Bucket {
	if len(p) != len(a.splits) {
		panic(fmt.Sprintf("core: %d-dimensional point bucketed by %d-dimensional splitter", len(p), len(a.splits)))
	}
	var b Bucket
	for i, split := range a.splits {
		if p[i] > split {
			b |= 1 << uint(i)
		}
	}
	return b
}

// NeedsRebalance reports whether any dimension's below/above ratio exceeds
// the threshold. With fewer than two observations it reports false.
func (a *AdaptiveSplitter) NeedsRebalance() bool {
	for i := range a.splits {
		lo, hi := a.below[i], a.above[i]
		if lo+hi < 2 {
			continue
		}
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo == 0 || float64(hi)/float64(lo) > a.threshold {
			return true
		}
	}
	return false
}

// Rebalance adopts the estimated quantiles as the new split values, resets
// the counters, and returns the new splits. The caller must redistribute
// the stored data afterwards (the paper's reorganization).
func (a *AdaptiveSplitter) Rebalance() []float64 {
	for i := range a.splits {
		if a.est[i].Count() > 0 {
			a.splits[i] = a.est[i].Value()
		}
		a.below[i] = 0
		a.above[i] = 0
	}
	return a.Splits()
}
