// Package lsh implements the multi-probe LSH pre-filter of the
// approximate search tier: random-hyperplane signatures over the leaf
// pages of one declustered shard, used to order leaves by probe
// priority and cap how many a query admits under a recall target.
//
// The design follows the multi-probe idea of "Scalable
// Locality-Sensitive Hashing for Similarity Search in High-Dimensional,
// Large-Scale Multimedia Datasets": instead of one bucket per query,
// the probe set is the signatures closest to the query's — here, the
// leaf pages whose signature is Hamming-closest. Because the filter is
// built per shard over the same declustered bucket layout, the paper's
// load-balance guarantees apply to the probe set unchanged: capping
// every shard's probes at the same fraction caps every disk's work at
// the same fraction.
//
// The filter is immutable after Build. Leaves created later (inserts,
// splits, incremental reorganization) are simply absent from it and are
// always admitted — mutation can only make the filter more permissive,
// never cost recall — until the next Build/Reorganize rebuilds it.
package lsh

import (
	"math/bits"
	"math/rand"
	"sort"

	"parsearch/internal/xtree"
)

// SignatureBits is the number of random hyperplanes (signature bits).
// 32 bits keeps the signature in one word while giving the Hamming
// ranking enough resolution for thousands of leaves per shard.
const SignatureBits = 32

// Family is a deterministic set of random hyperplanes through a given
// center point. The same (dim, seed) always yields the same family, so
// rebuilt shards and replicas rank identically.
type Family struct {
	dim    int
	center []float64   // hyperplanes pass through the data center
	planes [][]float64 // SignatureBits unit-length normals
}

// NewFamily draws SignatureBits hyperplane normals from the seeded
// source, centered on center (copied; may be nil for the origin).
func NewFamily(dim int, center []float64, seed int64) *Family {
	f := &Family{dim: dim, center: make([]float64, dim)}
	copy(f.center, center)
	rng := rand.New(rand.NewSource(seed))
	f.planes = make([][]float64, SignatureBits)
	for i := range f.planes {
		p := make([]float64, dim)
		var norm float64
		for j := range p {
			p[j] = rng.NormFloat64()
			norm += p[j] * p[j]
		}
		if norm == 0 {
			p[0] = 1
			norm = 1
		}
		f.planes[i] = p
	}
	return f
}

// Sig returns the signature of p: bit i is set when p lies on the
// positive side of hyperplane i.
func (f *Family) Sig(p []float64) uint64 {
	var sig uint64
	for i, plane := range f.planes {
		var dot float64
		for j := range plane {
			dot += plane[j] * (p[j] - f.center[j])
		}
		if dot > 0 {
			sig |= 1 << uint(i)
		}
	}
	return sig
}

// Filter is the per-shard probe filter: the signatures of the shard's
// leaf pages at build time, in deterministic build order.
type Filter struct {
	fam    *Family
	leaves []*xtree.Node
	sigs   []uint64
	index  map[*xtree.Node]int
}

// Build signs every leaf of the tree by its MBR center. The family is
// derived from (dim, seed) and the mean of the leaf centers, so two
// trees holding the same pages produce the same ranking.
func Build(t *xtree.Tree, seed int64) *Filter {
	dim := t.Config().Dim
	leaves := t.Leaves()
	centers := make([][]float64, len(leaves))
	mean := make([]float64, dim)
	for i, l := range leaves {
		r := l.Rect()
		c := make([]float64, dim)
		for j := 0; j < dim; j++ {
			c[j] = (r.Min[j] + r.Max[j]) / 2
			mean[j] += c[j]
		}
		centers[i] = c
	}
	if len(leaves) > 0 {
		for j := range mean {
			mean[j] /= float64(len(leaves))
		}
	}
	f := &Filter{
		fam:    NewFamily(dim, mean, seed),
		leaves: leaves,
		sigs:   make([]uint64, len(leaves)),
		index:  make(map[*xtree.Node]int, len(leaves)),
	}
	for i, c := range centers {
		f.sigs[i] = f.fam.Sig(c)
		f.index[leaves[i]] = i
	}
	return f
}

// Len returns the number of signed leaves.
func (f *Filter) Len() int { return len(f.leaves) }

// Admit returns the probe predicate for query q at the given recall
// target: the ceil(target·L) signed leaves Hamming-closest to the
// query's signature are admitted (ties broken by build order, so the
// probe set is deterministic), and any leaf the filter has never
// signed — created by mutation since the build — is always admitted.
// A target ≥ 1 admits everything.
func (f *Filter) Admit(q []float64, target float64) func(n *xtree.Node) bool {
	if target >= 1 || len(f.leaves) == 0 {
		return func(*xtree.Node) bool { return true }
	}
	if target < 0 {
		target = 0
	}
	qsig := f.fam.Sig(q)
	order := make([]int, len(f.sigs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ha := bits.OnesCount64(f.sigs[order[a]] ^ qsig)
		hb := bits.OnesCount64(f.sigs[order[b]] ^ qsig)
		if ha != hb {
			return ha < hb
		}
		return order[a] < order[b]
	})
	// ceil(target·L), at least one probe so a full shard always has a
	// candidate source.
	probes := int(float64(len(order)) * target)
	if float64(probes) < float64(len(order))*target {
		probes++
	}
	if probes < 1 {
		probes = 1
	}
	admitted := make(map[*xtree.Node]struct{}, probes)
	for _, i := range order[:probes] {
		admitted[f.leaves[i]] = struct{}{}
	}
	return func(n *xtree.Node) bool {
		if _, signed := f.index[n]; !signed {
			return true
		}
		_, ok := admitted[n]
		return ok
	}
}
