package lsh

import (
	"math/rand"
	"testing"

	"parsearch/internal/vec"
	"parsearch/internal/xtree"
)

// testTree builds a tree over n seeded uniform points with small pages,
// so it has enough leaves for the probe cap to be meaningful.
func testTree(n, dim int, seed int64) *xtree.Tree {
	cfg := xtree.DefaultConfig(dim)
	cfg.LeafCapacity = 8
	t := xtree.New(cfg)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		p := make(vec.Point, dim)
		for j := range p {
			p[j] = rng.Float64()
		}
		t.Insert(p, i)
	}
	return t
}

// TestFamilyDeterminism: the same (dim, center, seed) must always yield
// the same signatures — that is what makes a replica tree rank
// identically to its primary.
func TestFamilyDeterminism(t *testing.T) {
	const dim = 5
	center := []float64{0.5, 0.4, 0.3, 0.2, 0.1}
	a := NewFamily(dim, center, 42)
	b := NewFamily(dim, center, 42)
	other := NewFamily(dim, center, 43)
	rng := rand.New(rand.NewSource(1))
	differs := false
	for i := 0; i < 50; i++ {
		p := make([]float64, dim)
		for j := range p {
			p[j] = rng.Float64() * 2
		}
		if a.Sig(p) != b.Sig(p) {
			t.Fatalf("same seed, different signature for %v", p)
		}
		if a.Sig(p) != other.Sig(p) {
			differs = true
		}
	}
	if !differs {
		t.Error("seeds 42 and 43 produced identical signatures on 50 points — family ignores the seed")
	}
}

// TestBuildMatchesTree: every leaf is signed, twin trees over the same
// data produce the same filter ranking.
func TestBuildMatchesTree(t *testing.T) {
	tr := testTree(600, 4, 7)
	f := Build(tr, 99)
	leaves := tr.Leaves()
	if f.Len() != len(leaves) {
		t.Fatalf("filter signed %d leaves, tree has %d", f.Len(), len(leaves))
	}
	if f.Len() < 20 {
		t.Fatalf("only %d leaves — the probe cap has nothing to rank", f.Len())
	}

	twin := Build(testTree(600, 4, 7), 99)
	q := []float64{0.3, 0.7, 0.1, 0.9}
	const target = 0.5
	admit, admitTwin := f.Admit(q, target), twin.Admit(q, target)
	for i, l := range leaves {
		// Build order is deterministic, so leaf i of the twin holds the
		// same pages as leaf i here; admission must agree by position.
		if admit(l) != admitTwin(twin.leaves[i]) {
			t.Fatalf("leaf %d: primary admit %v, twin admit %v", i, admit(l), admitTwin(twin.leaves[i]))
		}
	}
}

// TestAdmitCap: the probe set size is exactly ceil(target·L) of the
// signed leaves; target ≥ 1 admits everything; unsigned leaves (later
// mutations) are always admitted.
func TestAdmitCap(t *testing.T) {
	tr := testTree(600, 4, 11)
	f := Build(tr, 99)
	leaves := tr.Leaves()
	L := len(leaves)

	for _, target := range []float64{0.25, 0.5, 0.9} {
		admit := f.Admit([]float64{0.5, 0.5, 0.5, 0.5}, target)
		admitted := 0
		for _, l := range leaves {
			if admit(l) {
				admitted++
			}
		}
		want := int(float64(L) * target)
		if float64(want) < float64(L)*target {
			want++
		}
		if admitted != want {
			t.Errorf("target %v: admitted %d of %d leaves, want ceil = %d", target, admitted, L, want)
		}
	}

	all := f.Admit([]float64{0.5, 0.5, 0.5, 0.5}, 1)
	for i, l := range leaves {
		if !all(l) {
			t.Fatalf("target 1 rejected leaf %d", i)
		}
	}

	// A leaf the filter never signed must pass any target.
	fresh := testTree(16, 4, 12).Leaves()[0]
	tight := f.Admit([]float64{0.5, 0.5, 0.5, 0.5}, 0.1)
	if !tight(fresh) {
		t.Error("unsigned leaf rejected — mutation made the filter less permissive")
	}
}

// TestAdmitPrefersHammingClose: a query placed at a leaf's own center
// has Hamming distance zero to that leaf's signature, so even the
// tightest cap must admit it.
func TestAdmitPrefersHammingClose(t *testing.T) {
	tr := testTree(600, 3, 13)
	f := Build(tr, 99)
	for i, l := range tr.Leaves() {
		r := l.Rect()
		c := make([]float64, 3)
		for j := range c {
			c[j] = (r.Min[j] + r.Max[j]) / 2
		}
		// Tightest possible cap that still admits the zero-distance
		// leaf deterministically: Hamming 0 sorts first unless another
		// leaf shares the exact signature and an earlier build index.
		admit := f.Admit(c, 0.3)
		if !admit(l) {
			sig := f.sigs[f.index[l]]
			shared := 0
			for _, s := range f.sigs {
				if s == sig {
					shared++
				}
			}
			if shared <= 1 {
				t.Fatalf("leaf %d rejected for a query at its own center", i)
			}
		}
	}
}
