package parsearch

import (
	"context"
	"errors"
	"testing"
	"time"

	"parsearch/internal/data"
)

// Regression tests for context cancellation in the query paths: a
// cancelled context must surface ctx.Err() promptly — before the shard
// fan-out and the simulated I/O phase — instead of completing the query
// for a client that is gone.

func cancelTestIndex(t *testing.T) (*Index, [][]float64) {
	t.Helper()
	const d, n = 6, 800
	pts := data.Uniform(n, d, 99)
	raw := make([][]float64, n)
	for i, p := range pts {
		raw[i] = p
	}
	ix, err := Open(Options{Dim: d, Disks: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Build(raw); err != nil {
		t.Fatal(err)
	}
	queries := make([][]float64, 8)
	for i, q := range data.Uniform(8, d, 100) {
		queries[i] = q
	}
	return ix, queries
}

func TestKNNContextPreCancelled(t *testing.T) {
	ix, queries := cancelTestIndex(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	start := time.Now()
	_, _, err := ix.KNNContext(ctx, queries[0], 5)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("KNNContext on cancelled ctx: err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("cancelled KNN took %v, want a prompt return", elapsed)
	}

	// No simulated I/O may have been charged for the cancelled query.
	if m := ix.Metrics(); m.PagesRead != 0 {
		t.Errorf("cancelled KNN read %d pages, want 0", m.PagesRead)
	}
	if m := ix.Metrics(); m.QueryErrors != 1 {
		t.Errorf("QueryErrors = %d, want 1", m.QueryErrors)
	}
}

func TestBatchKNNContextPreCancelled(t *testing.T) {
	ix, queries := cancelTestIndex(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	_, _, err := ix.BatchKNNContext(ctx, queries, 5)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("BatchKNNContext on cancelled ctx: err = %v, want context.Canceled", err)
	}
	if m := ix.Metrics(); m.PagesRead != 0 {
		t.Errorf("cancelled batch read %d pages, want 0", m.PagesRead)
	}
}

func TestRangeQueryContextPreCancelled(t *testing.T) {
	ix, _ := cancelTestIndex(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	min := []float64{0, 0, 0, 0, 0, 0}
	max := []float64{1, 1, 1, 1, 1, 1}
	_, _, err := ix.RangeQueryContext(ctx, min, max)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RangeQueryContext on cancelled ctx: err = %v, want context.Canceled", err)
	}
	if m := ix.Metrics(); m.PagesRead != 0 {
		t.Errorf("cancelled range query read %d pages, want 0", m.PagesRead)
	}
}

// TestKNNContextDeadline drives a deadline that expires mid-run: the
// query must return the deadline error, never a partial result.
func TestKNNContextDeadline(t *testing.T) {
	ix, queries := cancelTestIndex(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	res, _, err := ix.KNNContext(ctx, queries[0], 5)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline: err = %v, want context.DeadlineExceeded", err)
	}
	if res != nil {
		t.Fatalf("expired deadline returned %d results alongside the error", len(res))
	}
}
