package parsearch

// Conformance tests for the fault-tolerance layer: replicated
// declustering, degraded-mode queries, fault injection at the index
// level, and snapshot persistence of the replication option. The
// acceptance criterion: with Replication = 1 and any single disk
// failed, every query is exactly right (not degraded, no error); with
// a primary and its chained replica both failed, queries return
// best-effort results flagged Degraded instead of erroring.

import (
	"bytes"
	"errors"
	"reflect"
	"sort"
	"testing"
	"time"

	"parsearch/internal/data"
)

// buildFaultIndex builds a seeded index and returns it with the
// id→point ground truth.
func buildFaultIndex(t *testing.T, opts Options, n int) (*Index, map[int][]float64) {
	t.Helper()
	ix, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	pts := data.Uniform(n, opts.Dim, 123)
	raw := make([][]float64, n)
	expected := make(map[int][]float64, n)
	for i, p := range pts {
		raw[i] = p
		expected[i] = p
	}
	if err := ix.Build(raw); err != nil {
		t.Fatal(err)
	}
	return ix, expected
}

// fullBox returns a range covering all of data.Uniform's [0, 1) space.
func fullBox(dim int) (lo, hi []float64) {
	lo = make([]float64, dim)
	hi = make([]float64, dim)
	for i := range lo {
		lo[i], hi[i] = -1, 2
	}
	return lo, hi
}

// liveIDs returns the IDs a (possibly degraded) full-box range query
// can still reach.
func liveIDs(t *testing.T, ix *Index, dim int) map[int][]float64 {
	t.Helper()
	lo, hi := fullBox(dim)
	res, _, err := ix.RangeQuery(lo, hi)
	if err != nil {
		t.Fatalf("full-box RangeQuery: %v", err)
	}
	out := make(map[int][]float64, len(res))
	for _, n := range res {
		out[n.ID] = n.Point
	}
	return out
}

func TestReplicationOptionValidation(t *testing.T) {
	for _, opts := range []Options{
		{Dim: 4, Disks: 4, Replication: 2},
		{Dim: 4, Disks: 4, Replication: -1},
		{Dim: 4, Disks: 1, Replication: 1},
		{Dim: 4, Disks: 4, Faults: &FaultModel{TransientProb: 1.5}},
	} {
		if _, err := Open(opts); err == nil {
			t.Errorf("Open(%+v) should error", opts)
		}
	}

	plain, err := Open(Options{Dim: 4, Disks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := plain.ReplicaDisk(0); got != -1 {
		t.Errorf("ReplicaDisk without replication = %d, want -1", got)
	}
	if _, err := plain.VerifyReplication(); err == nil {
		t.Error("VerifyReplication without replication should error")
	}

	repl, err := Open(Options{Dim: 4, Disks: 4, Replication: 1})
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 4; d++ {
		if got, want := repl.ReplicaDisk(d), (d+1)%4; got != want {
			t.Errorf("ReplicaDisk(%d) = %d, want %d", d, got, want)
		}
	}
	for _, d := range []int{-1, 4} {
		if got := repl.ReplicaDisk(d); got != -1 {
			t.Errorf("ReplicaDisk(%d) = %d, want -1", d, got)
		}
	}
}

// TestReplicatedSingleFailureExact is the headline acceptance test:
// with Replication = 1, any single disk failure is invisible to
// results — KNN, RangeQuery and BatchKNN stay identical to the linear
// scan, not degraded, with reads rerouted to the replica.
func TestReplicatedSingleFailureExact(t *testing.T) {
	const dim, disks, n = 6, 8, 2000
	ix, expected := buildFaultIndex(t, Options{Dim: dim, Disks: disks, Replication: 1}, n)
	if v, err := ix.VerifyReplication(); err != nil || v != nil {
		t.Fatalf("VerifyReplication: %v %v", v, err)
	}
	m, err := Euclidean.vecMetric()
	if err != nil {
		t.Fatal(err)
	}
	queries := data.Uniform(6, dim, 321)

	for d := 0; d < disks; d++ {
		if err := ix.FailDisk(d); err != nil {
			t.Fatal(err)
		}
		rerouted := 0
		for qi, q := range queries {
			const k = 8
			got, stats, err := ix.KNN(q, k)
			if err != nil {
				t.Fatalf("disk %d query %d: %v", d, qi, err)
			}
			if stats.Degraded || stats.Unreachable != 0 {
				t.Fatalf("disk %d query %d flagged degraded with a live replica: %+v", d, qi, stats)
			}
			if stats.PagesPerDisk[d] != 0 {
				t.Fatalf("disk %d query %d charged pages to the failed disk", d, qi)
			}
			rerouted += stats.Rerouted
			want := linearScanKNN(expected, q, k, m)
			if len(got) != len(want) {
				t.Fatalf("disk %d query %d: %d neighbors, want %d", d, qi, len(got), len(want))
			}
			for j := range got {
				if got[j].ID != want[j].id || got[j].Dist != want[j].dist {
					t.Fatalf("disk %d query %d neighbor %d: got (id %d, %v), want (id %d, %v)",
						d, qi, j, got[j].ID, got[j].Dist, want[j].id, want[j].dist)
				}
			}

			// BatchKNN must agree with the one-at-a-time path.
			batchRes, bstats, err := ix.BatchKNN([][]float64{q}, k)
			if err != nil {
				t.Fatalf("disk %d BatchKNN: %v", d, err)
			}
			if bstats.Degraded || bstats.Unreachable != 0 {
				t.Fatalf("disk %d BatchKNN flagged degraded: %+v", d, bstats)
			}
			if !reflect.DeepEqual(batchRes[0], got) {
				t.Fatalf("disk %d query %d: BatchKNN differs from KNN", d, qi)
			}
		}
		if rerouted == 0 {
			t.Errorf("disk %d: no reads rerouted to the replica across %d queries", d, len(queries))
		}

		// Range queries too: exact against a direct box filter.
		lo, hi := fullBox(dim)
		for i := range lo {
			lo[i], hi[i] = 0.1, 0.9
		}
		res, stats, err := ix.RangeQuery(lo, hi)
		if err != nil {
			t.Fatalf("disk %d RangeQuery: %v", d, err)
		}
		if stats.Degraded || stats.Unreachable != 0 {
			t.Fatalf("disk %d RangeQuery flagged degraded: %+v", d, stats)
		}
		var gotIDs, wantIDs []int
		for _, nb := range res {
			gotIDs = append(gotIDs, nb.ID)
		}
		for id, p := range expected {
			if inBox(p, lo, hi) {
				wantIDs = append(wantIDs, id)
			}
		}
		sort.Ints(wantIDs)
		if !reflect.DeepEqual(gotIDs, wantIDs) {
			t.Fatalf("disk %d RangeQuery: got %d ids, want %d", d, len(gotIDs), len(wantIDs))
		}

		if err := ix.HealDisk(d); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDegradedPairFailure: a primary and its chained replica both
// failed leaves that shard's data with no live copy — queries return
// best-effort results flagged Degraded, exactly right over the
// reachable data, with no error.
func TestDegradedPairFailure(t *testing.T) {
	const dim, disks, n = 5, 6, 1500
	ix, expected := buildFaultIndex(t, Options{Dim: dim, Disks: disks, Replication: 1}, n)
	m, err := Euclidean.vecMetric()
	if err != nil {
		t.Fatal(err)
	}

	const dead = 2
	if err := ix.FailDisk(dead); err != nil {
		t.Fatal(err)
	}
	if err := ix.FailDisk(ix.ReplicaDisk(dead)); err != nil {
		t.Fatal(err)
	}

	// The reachable subset is everything minus disk `dead`'s shard
	// (disk dead+1's own data is still served by ITS replica on dead+2).
	live := liveIDs(t, ix, dim)
	if len(live) == len(expected) {
		t.Fatal("killing a primary and its replica lost no data — test is vacuous")
	}
	for id, p := range live {
		if !reflect.DeepEqual(expected[id], p) {
			t.Fatalf("degraded range query returned corrupted point %d", id)
		}
	}

	queries := data.Uniform(6, dim, 99)
	sawDegraded := false
	for qi, q := range queries {
		const k = 7
		got, stats, err := ix.KNN(q, k)
		if err != nil {
			t.Fatalf("degraded query %d errored: %v", qi, err)
		}
		// Degraded ⇒ exact over the live subset; not Degraded ⇒ the
		// dead pages were provably outside the sphere, so exact over
		// the FULL data set.
		truth := expected
		if stats.Degraded {
			sawDegraded = true
			if stats.Unreachable == 0 {
				t.Errorf("query %d: Degraded but Unreachable = 0", qi)
			}
			truth = live
		}
		want := linearScanKNN(truth, q, k, m)
		if len(got) != len(want) {
			t.Fatalf("query %d (degraded %v): %d neighbors, want %d",
				qi, stats.Degraded, len(got), len(want))
		}
		for j := range got {
			if got[j].ID != want[j].id || got[j].Dist != want[j].dist {
				t.Fatalf("query %d (degraded %v) neighbor %d: got (id %d, %v), want (id %d, %v)",
					qi, stats.Degraded, j, got[j].ID, got[j].Dist, want[j].id, want[j].dist)
			}
		}
	}
	if !sawDegraded {
		t.Error("no query was flagged Degraded with a dead shard — test is vacuous")
	}

	// Heal both: back to exact, unflagged.
	if err := ix.HealDisk(dead); err != nil {
		t.Fatal(err)
	}
	if err := ix.HealDisk(ix.ReplicaDisk(dead)); err != nil {
		t.Fatal(err)
	}
	if _, stats, err := ix.KNN(queries[0], 3); err != nil || stats.Degraded {
		t.Fatalf("healed index: err %v, degraded %v", err, stats.Degraded)
	}
}

// TestAllCopiesDead: when no disk holding data is live, k-NN has no
// best-effort answer and reports ErrUnavailable; a range query still
// answers (the empty result over zero reachable data), flagged.
func TestAllCopiesDead(t *testing.T) {
	const dim, disks = 4, 2
	ix, _ := buildFaultIndex(t, Options{Dim: dim, Disks: disks, Replication: 1}, 300)
	for d := 0; d < disks; d++ {
		if err := ix.FailDisk(d); err != nil {
			t.Fatal(err)
		}
	}
	q := make([]float64, dim)
	if _, _, err := ix.KNN(q, 3); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("KNN on a fully dead array: %v, want ErrUnavailable", err)
	}
	if _, _, err := ix.NN(q); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("NN on a fully dead array: %v, want ErrUnavailable", err)
	}
	if _, _, err := ix.BatchKNN([][]float64{q}, 3); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("BatchKNN on a fully dead array: %v, want ErrUnavailable", err)
	}
	lo, hi := fullBox(dim)
	res, stats, err := ix.RangeQuery(lo, hi)
	if err != nil {
		t.Fatalf("RangeQuery on a fully dead array: %v", err)
	}
	if len(res) != 0 || !stats.Degraded || stats.Unreachable == 0 {
		t.Fatalf("RangeQuery on a fully dead array: %d results, stats %+v", len(res), stats)
	}
}

// TestReplicatedInsertDelete: replication is maintained through
// mutations — after inserts and deletes the replica invariants hold
// and a single-disk failure is still invisible to results.
func TestReplicatedInsertDelete(t *testing.T) {
	const dim, disks = 5, 4
	ix, expected := buildFaultIndex(t, Options{Dim: dim, Disks: disks, Replication: 1}, 600)
	extra := data.Uniform(200, dim, 7)
	for _, p := range extra {
		id, err := ix.Insert(p)
		if err != nil {
			t.Fatal(err)
		}
		expected[id] = p
	}
	for id := 0; id < 600; id += 3 {
		if err := ix.Delete(id); err != nil {
			t.Fatal(err)
		}
		delete(expected, id)
	}
	if err := ix.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	if v, err := ix.VerifyReplication(); err != nil || v != nil {
		t.Fatalf("VerifyReplication after mutations: %v %v", v, err)
	}

	m, err := Euclidean.vecMetric()
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.FailDisk(1); err != nil {
		t.Fatal(err)
	}
	for _, q := range data.Uniform(4, dim, 8) {
		const k = 5
		got, stats, err := ix.KNN(q, k)
		if err != nil || stats.Degraded {
			t.Fatalf("KNN after mutations + failure: err %v, degraded %v", err, stats.Degraded)
		}
		want := linearScanKNN(expected, q, k, m)
		for j := range got {
			if got[j].ID != want[j].id || got[j].Dist != want[j].dist {
				t.Fatalf("neighbor %d: got (id %d, %v), want (id %d, %v)",
					j, got[j].ID, got[j].Dist, want[j].id, want[j].dist)
			}
		}
	}
}

// TestSnapshotRoundTripReplication: the Replication option survives
// Save/Load, and the loaded index routes around failures like the
// original.
func TestSnapshotRoundTripReplication(t *testing.T) {
	const dim, disks = 5, 4
	ix, expected := buildFaultIndex(t, Options{Dim: dim, Disks: disks, Replication: 1}, 800)
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.opts.Replication != 1 {
		t.Fatalf("loaded Replication = %d, want 1", loaded.opts.Replication)
	}
	if v, err := loaded.VerifyReplication(); err != nil || v != nil {
		t.Fatalf("loaded VerifyReplication: %v %v", v, err)
	}
	m, err := Euclidean.vecMetric()
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.FailDisk(0); err != nil {
		t.Fatal(err)
	}
	for _, q := range data.Uniform(4, dim, 55) {
		const k = 6
		got, stats, err := loaded.KNN(q, k)
		if err != nil || stats.Degraded {
			t.Fatalf("loaded degraded query: err %v, degraded %v", err, stats.Degraded)
		}
		want := linearScanKNN(expected, q, k, m)
		for j := range got {
			if got[j].ID != want[j].id || got[j].Dist != want[j].dist {
				t.Fatalf("loaded neighbor %d: got (id %d, %v), want (id %d, %v)",
					j, got[j].ID, got[j].Dist, want[j].id, want[j].dist)
			}
		}
	}
}

// TestIndexFaultInjection: a fault model installed via Options (or
// SetFaults) makes queries retry transient errors — visible in
// QueryStats.Retries — and surface ErrTransient when the budget is
// exhausted; the zero model clears it.
func TestIndexFaultInjection(t *testing.T) {
	const dim, disks = 5, 4
	ix, _ := buildFaultIndex(t, Options{
		Dim: dim, Disks: disks,
		Faults: &FaultModel{
			TransientProb: 0.3,
			MaxRetries:    24,
			RetryBackoff:  time.Millisecond,
			Seed:          17,
		},
	}, 1200)

	retries := 0
	for _, q := range data.Uniform(8, dim, 18) {
		_, stats, err := ix.KNN(q, 5)
		if err != nil {
			t.Fatalf("retry budget should absorb a 30%% transient rate: %v", err)
		}
		retries += stats.Retries
	}
	if retries == 0 {
		t.Fatal("no retries recorded at a 30% transient rate")
	}

	// Certain transient faults with a tiny budget: the query fails
	// with a classified error.
	if err := ix.SetFaults(FaultModel{TransientProb: 1, MaxRetries: 1, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	q := make([]float64, dim)
	if _, _, err := ix.KNN(q, 3); !errors.Is(err, ErrTransient) {
		t.Fatalf("exhausted retries: %v, want ErrTransient", err)
	}

	// The zero model disables injection again.
	if err := ix.SetFaults(FaultModel{}); err != nil {
		t.Fatal(err)
	}
	if _, stats, err := ix.KNN(q, 3); err != nil || stats.Retries != 0 {
		t.Fatalf("cleared fault model: err %v, retries %d", err, stats.Retries)
	}
}

// TestRetriesCountAttemptsNotSleeps: QueryStats.Retries counts re-read
// attempts, decoupled from backoff charging — a zero-length
// RetryBackoff must report exactly the retries a backed-off model does
// (fault injection is seed-deterministic and independent of the
// backoff), while only the backed-off run pays the wait as service
// time. Regression test for retry accounting that keyed off the
// charged sleep instead of the attempt.
func TestRetriesCountAttemptsNotSleeps(t *testing.T) {
	const dim, disks, n = 5, 4, 1200
	model := func(backoff time.Duration) *FaultModel {
		return &FaultModel{TransientProb: 0.35, MaxRetries: 32, RetryBackoff: backoff, Seed: 29}
	}
	slow, _ := buildFaultIndex(t, Options{Dim: dim, Disks: disks, Faults: model(time.Millisecond)}, n)
	fast, _ := buildFaultIndex(t, Options{Dim: dim, Disks: disks, Faults: model(0)}, n)

	totalRetries := 0
	for qi, q := range data.Uniform(8, dim, 41) {
		_, sSlow, err := slow.KNN(q, 6)
		if err != nil {
			t.Fatal(err)
		}
		_, sFast, err := fast.KNN(q, 6)
		if err != nil {
			t.Fatal(err)
		}
		if sFast.Retries != sSlow.Retries {
			t.Errorf("query %d: zero-backoff Retries = %d, with backoff = %d — accounting depends on the sleep",
				qi, sFast.Retries, sSlow.Retries)
		}
		totalRetries += sFast.Retries
		if sFast.Retries > 0 && sFast.SequentialTime >= sSlow.SequentialTime {
			t.Errorf("query %d: zero-backoff service time %v not below backed-off %v despite %d retries",
				qi, sFast.SequentialTime, sSlow.SequentialTime, sFast.Retries)
		}
	}
	if totalRetries == 0 {
		t.Fatal("no retries recorded at a 35% transient rate — test is vacuous")
	}

	// The metrics registry sees the same attempt counts.
	if got := fast.Metrics().Retries; got != int64(totalRetries) {
		t.Errorf("registry Retries = %d, want %d", got, totalRetries)
	}
}
