package parsearch

// Table-driven edge cases for QueryStats and the metrics registry:
// degenerate indexes (empty, one-dimensional, all points identical),
// out-of-range k, dead arrays, and the invariant that the registry's
// cumulative totals equal the sum of the per-query stats it absorbed.

import (
	"errors"
	"testing"

	"parsearch/internal/data"
)

func TestQueryStatsEdgeCases(t *testing.T) {
	type tc struct {
		name  string
		opts  Options
		n     int // points built (0 = none)
		setup func(t *testing.T, ix *Index)
		k     int
		// expectations
		wantErr     error // errors.Is target; nil = success
		wantResults int   // checked on success; -1 = skip
		wantStats   func(t *testing.T, stats QueryStats)
	}
	cases := []tc{
		{
			name: "empty_index", opts: Options{Dim: 4, Disks: 3}, n: 0, k: 3,
			wantErr: ErrEmpty,
		},
		{
			name: "k_exceeds_n", opts: Options{Dim: 4, Disks: 3}, n: 10, k: 50,
			wantResults: 10,
			wantStats: func(t *testing.T, stats QueryStats) {
				if stats.Degraded || stats.TotalPages == 0 {
					t.Errorf("k>n stats: %+v", stats)
				}
			},
		},
		{
			name: "one_dimension", opts: Options{Dim: 1, Disks: 2}, n: 64, k: 5,
			wantResults: 5,
			wantStats: func(t *testing.T, stats QueryStats) {
				if len(stats.PagesPerDisk) != 2 {
					t.Errorf("d=1 per-disk stats sized %d", len(stats.PagesPerDisk))
				}
			},
		},
		{
			name: "all_points_identical", opts: Options{Dim: 3, Disks: 2}, n: 40, k: 40,
			setup: func(t *testing.T, ix *Index) {
				pts := make([][]float64, 40)
				for i := range pts {
					pts[i] = []float64{0.5, 0.5, 0.5}
				}
				if err := ix.Build(pts); err != nil {
					t.Fatal(err)
				}
			},
			wantResults: 40,
			wantStats: func(t *testing.T, stats QueryStats) {
				// All points at one coordinate: the NN sphere boundary
				// passes exactly through the data, so the cost model may
				// legitimately charge zero refinement pages — but the
				// stats must stay internally consistent.
				if stats.Degraded || stats.MaxPages > stats.TotalPages {
					t.Errorf("identical-points stats inconsistent: %+v", stats)
				}
			},
		},
		{
			name: "k_zero", opts: Options{Dim: 3, Disks: 2}, n: 50, k: 0,
			wantErr: errAny, wantResults: -1,
		},
		{
			name: "all_disks_failed", opts: Options{Dim: 4, Disks: 3, Replication: 1}, n: 200, k: 3,
			setup: func(t *testing.T, ix *Index) {
				buildUniform(t, ix, 200)
				for d := 0; d < 3; d++ {
					if err := ix.FailDisk(d); err != nil {
						t.Fatal(err)
					}
				}
			},
			wantErr: ErrUnavailable,
		},
		{
			name: "single_disk", opts: Options{Dim: 4, Disks: 1}, n: 120, k: 4,
			wantResults: 4,
			wantStats: func(t *testing.T, stats QueryStats) {
				// One disk: the bottleneck IS the total, speedup 1.
				if stats.MaxPages != stats.TotalPages {
					t.Errorf("single disk: MaxPages %d != TotalPages %d", stats.MaxPages, stats.TotalPages)
				}
				if stats.Speedup != 1 {
					t.Errorf("single disk: speedup %v, want 1", stats.Speedup)
				}
			},
		},
	}

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ix, err := Open(c.opts)
			if err != nil {
				t.Fatal(err)
			}
			if c.setup != nil {
				c.setup(t, ix)
			} else if c.n > 0 {
				buildUniform(t, ix, c.n)
			}
			q := make([]float64, c.opts.Dim)
			for i := range q {
				q[i] = 0.4
			}
			res, stats, err := ix.KNN(q, c.k)
			switch {
			case c.wantErr == errAny:
				if err == nil {
					t.Fatal("want an error")
				}
			case c.wantErr != nil:
				if !errors.Is(err, c.wantErr) {
					t.Fatalf("err = %v, want %v", err, c.wantErr)
				}
			default:
				if err != nil {
					t.Fatal(err)
				}
				if c.wantResults >= 0 && len(res) != c.wantResults {
					t.Fatalf("%d results, want %d", len(res), c.wantResults)
				}
				if c.wantStats != nil {
					c.wantStats(t, stats)
				}
			}
			// Error or not, the registry stays consistent with what
			// this one query reported.
			s := ix.Metrics()
			if err != nil {
				if s.QueryErrors != 1 {
					t.Errorf("QueryErrors = %d after a failed query, want 1", s.QueryErrors)
				}
				return
			}
			if s.QueriesKNN != 1 || s.PagesRead != int64(stats.TotalPages) {
				t.Errorf("registry (%d queries, %d pages) does not match stats %+v",
					s.QueriesKNN, s.PagesRead, stats)
			}
		})
	}
}

// errAny is a sentinel for "any non-nil error" in the edge-case table.
var errAny = errors.New("any error")

// buildUniform builds n uniform points into ix.
func buildUniform(t *testing.T, ix *Index, n int) {
	t.Helper()
	pts := data.Uniform(n, ix.opts.Dim, 91)
	raw := make([][]float64, n)
	for i := range pts {
		raw[i] = pts[i]
	}
	if err := ix.Build(raw); err != nil {
		t.Fatal(err)
	}
}

// TestMetricsTotalsMatchSummedStats: after a mixed workload, every
// cumulative registry counter equals the sum of the corresponding
// QueryStats fields over the individual queries.
func TestMetricsTotalsMatchSummedStats(t *testing.T) {
	const dim, disks = 5, 4
	ix, err := Open(Options{Dim: dim, Disks: disks, Replication: 1})
	if err != nil {
		t.Fatal(err)
	}
	buildUniform(t, ix, 1500)
	if err := ix.FailDisk(2); err != nil { // exercise the reroute counters too
		t.Fatal(err)
	}

	var sum struct {
		pages, cells, retries, rerouted, unreachable int64
		perDisk                                      []int64
		knn, rng, batchCalls, batchItems, degraded   int64
		histPages                                    int64 // per-query page observations
	}
	sum.perDisk = make([]int64, disks)
	absorb := func(stats QueryStats) {
		sum.pages += int64(stats.TotalPages)
		sum.histPages += int64(stats.TotalPages)
		sum.cells += int64(stats.Cells)
		sum.retries += int64(stats.Retries)
		sum.rerouted += int64(stats.Rerouted)
		sum.unreachable += int64(stats.Unreachable)
		if stats.Degraded {
			sum.degraded++
		}
		for d, p := range stats.PagesPerDisk {
			sum.perDisk[d] += int64(p)
		}
	}

	for _, q := range data.Uniform(6, dim, 92) {
		_, stats, err := ix.KNN(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		sum.knn++
		absorb(stats)
	}
	lo, hi := make([]float64, dim), make([]float64, dim)
	for i := range lo {
		lo[i], hi[i] = 0.25, 0.75
	}
	for range 3 {
		_, stats, err := ix.RangeQuery(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		sum.rng++
		absorb(stats)
	}
	batch := uniformPoints(4, dim, 93)
	_, bstats, err := ix.BatchKNN(batch, 3)
	if err != nil {
		t.Fatal(err)
	}
	sum.batchCalls++
	sum.batchItems += int64(len(batch))
	sum.pages += int64(bstats.TotalPages)
	sum.retries += int64(bstats.Retries)
	sum.rerouted += int64(bstats.Rerouted)
	sum.unreachable += int64(bstats.Unreachable)
	for d, p := range bstats.PagesPerDisk {
		sum.perDisk[d] += int64(p)
	}
	// Cells, Degraded, and the page histogram are charged per batch item.
	for _, qs := range bstats.PerQuery {
		sum.cells += int64(qs.Cells)
		sum.histPages += int64(qs.TotalPages)
		if qs.Degraded {
			sum.degraded++
		}
	}

	s := ix.Metrics()
	checks := []struct {
		name      string
		got, want int64
	}{
		{"QueriesKNN", s.QueriesKNN, sum.knn},
		{"QueriesRange", s.QueriesRange, sum.rng},
		{"QueriesBatch", s.QueriesBatch, sum.batchCalls},
		{"BatchQueries", s.BatchQueries, sum.batchItems},
		{"PagesRead", s.PagesRead, sum.pages},
		{"CellsVisited", s.CellsVisited, sum.cells},
		{"Retries", s.Retries, sum.retries},
		{"Rerouted", s.Rerouted, sum.rerouted},
		{"Unreachable", s.Unreachable, sum.unreachable},
		{"DegradedQueries", s.DegradedQueries, sum.degraded},
		{"QueryErrors", s.QueryErrors, 0},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d (summed stats)", c.name, c.got, c.want)
		}
	}
	for d := range sum.perDisk {
		if s.PagesPerDisk[d] != sum.perDisk[d] {
			t.Errorf("PagesPerDisk[%d] = %d, want %d", d, s.PagesPerDisk[d], sum.perDisk[d])
		}
	}
	if s.QueryPages.Sum != sum.histPages {
		t.Errorf("QueryPages.Sum = %d, want %d", s.QueryPages.Sum, sum.histPages)
	}
	if s.NodeVisits == 0 {
		t.Error("NodeVisits = 0 after a mixed workload")
	}
}
