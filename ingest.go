package parsearch

import (
	"context"
	"fmt"
	"sync"

	"parsearch/internal/vec"
	"parsearch/internal/wal"
)

// Batched async ingest: the serving-while-mutating write path. A batch
// of mutations is logged record by record (log-before-apply preserved —
// every record hits the WAL before its in-memory apply), applied to the
// trees under one metadata-lock hold, and acknowledged by a single group
// commit to the batch's last log offset, so the per-mutation fsync cost
// is amortized across the whole batch. Queries keep running throughout:
// the batch holds the same read-side locks as a single Insert.
//
// InsertBatch is the synchronous form; AsyncWriter decouples producers
// from the apply/fsync path entirely — mutations are enqueued (with
// bounded-queue backpressure), a background worker drains them in
// batches, and each mutation carries a Pending handle that is resolved
// once its batch is durable.

// InsertBatch adds the given vectors and returns their IDs, in order.
// The whole batch is applied under one lock hold and — on a durable
// index with WALSyncAlways — acknowledged by a single group commit, so
// ingesting n vectors costs one fsync, not n.
//
// On error the returned IDs are the applied prefix: those vectors are
// in the index (and logged); the rest of the batch was not attempted.
func (ix *Index) InsertBatch(points [][]float64) ([]int, error) {
	for i, p := range points {
		if len(p) != ix.opts.Dim {
			return nil, fmt.Errorf("parsearch: batch point %d has dimension %d, want %d", i, len(p), ix.opts.Dim)
		}
	}
	if len(points) == 0 {
		return nil, nil
	}
	if ix.opts.Durable {
		ix.rotMu.RLock()
		defer ix.rotMu.RUnlock()
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	st := ix.st
	ix.meta.Lock()
	if ix.closed {
		ix.meta.Unlock()
		return nil, ErrClosed
	}
	ids := make([]int, 0, len(points))
	var w *wal.Writer
	var target int64
	for _, p := range points {
		id, bw, t, err := ix.insertOne(st, p)
		if err != nil {
			ix.meta.Unlock()
			return ids, err
		}
		ids = append(ids, id)
		w, target = bw, t
	}
	ix.reg.IngestBatches.Inc()
	ix.meta.Unlock()
	sp := ix.newSpan(context.Background(), "ingest")
	sp.emit(TraceEvent{Stage: StageIngest, Disk: -1, Item: -1, Results: len(ids)})
	if w != nil && w.Policy() == wal.SyncAlways {
		if err := w.SyncTo(target); err != nil {
			// Applied in memory, durability unknown; the writer is
			// sticky-failed (see Insert).
			return ids, fmt.Errorf("parsearch: syncing batch: %w", err)
		}
	}
	return ids, nil
}

// AsyncConfig tunes an AsyncWriter.
type AsyncConfig struct {
	// MaxBatch bounds the mutations applied (and synced) per group
	// commit. Default 256.
	MaxBatch int
	// MaxPending bounds the enqueued-but-unapplied mutations; a full
	// queue blocks the producer (backpressure). Default 4 × MaxBatch.
	MaxPending int
}

// Pending is the acknowledgement handle of one asynchronous mutation.
type Pending struct {
	id   int
	err  error
	done chan struct{}
}

// Done returns a channel closed when the mutation is resolved.
func (p *Pending) Done() <-chan struct{} { return p.done }

// Wait blocks until the mutation is applied and — on a durable index
// with WALSyncAlways — durable, then returns the assigned ID (inserts
// only) and the outcome.
func (p *Pending) Wait() (int, error) {
	<-p.done
	return p.id, p.err
}

// asyncOp is one queued mutation (or a Flush barrier token).
type asyncOp struct {
	pend  *Pending
	point vec.Point // insert payload; nil for delete and flush
	del   bool
	id    int // delete target
	flush bool
}

// AsyncWriter applies mutations to an index in amortized batches off the
// callers' path. Producers enqueue from any goroutine; one background
// worker greedily drains the queue into batches of at most MaxBatch,
// applies each batch under a single lock hold, and resolves the batch's
// Pending handles after its group commit. Ordering is the enqueue order.
type AsyncWriter struct {
	ix       *Index
	maxBatch int
	ops      chan asyncOp
	quit     chan struct{}
	mu       sync.RWMutex // guards closed against racing enqueues
	closed   bool
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewAsyncWriter starts an ingest pipeline over the index. Close it to
// drain and stop the worker; the index itself stays open.
func NewAsyncWriter(ix *Index, cfg AsyncConfig) *AsyncWriter {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 256
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = 4 * cfg.MaxBatch
	}
	aw := &AsyncWriter{
		ix:       ix,
		maxBatch: cfg.MaxBatch,
		ops:      make(chan asyncOp, cfg.MaxPending),
		quit:     make(chan struct{}),
	}
	aw.wg.Add(1)
	go aw.run()
	return aw
}

// Insert enqueues one vector, blocking while the queue is full. The
// returned handle resolves to the assigned ID once the insert's batch is
// applied and synced.
func (aw *AsyncWriter) Insert(p []float64) (*Pending, error) {
	if len(p) != aw.ix.opts.Dim {
		return nil, fmt.Errorf("parsearch: inserting dimension %d, want %d", len(p), aw.ix.opts.Dim)
	}
	// Clone at the enqueue boundary: the caller may reuse its slice
	// before the worker gets to the batch.
	return aw.enqueue(asyncOp{point: vec.Clone(p)})
}

// Delete enqueues one delete by ID. Validation happens at apply time (a
// concurrent earlier queued delete of the same ID is only visible then),
// so "no such vector" errors surface on the handle, not here.
func (aw *AsyncWriter) Delete(id int) (*Pending, error) {
	return aw.enqueue(asyncOp{del: true, id: id})
}

// Flush enqueues a barrier and blocks until every mutation enqueued
// before it is applied (and, with WALSyncAlways, durable). Individual
// outcomes stay on the per-mutation handles; Flush itself only fails
// when the writer is closed.
func (aw *AsyncWriter) Flush() error {
	p, err := aw.enqueue(asyncOp{flush: true})
	if err != nil {
		return err
	}
	<-p.done
	return nil
}

// Close drains the accepted mutations, resolves their handles, and stops
// the worker. Enqueues from the moment Close starts are refused with
// ErrClosed; every previously accepted handle still resolves.
func (aw *AsyncWriter) Close() error {
	aw.stopOnce.Do(func() {
		// Taking the write lock waits out in-flight enqueues, so by the
		// time quit closes, everything accepted is in the queue and the
		// worker's final drain resolves it.
		aw.mu.Lock()
		aw.closed = true
		aw.mu.Unlock()
		close(aw.quit)
	})
	aw.wg.Wait()
	return nil
}

// enqueue submits one op, blocking for backpressure while the queue is
// full, and returns its handle. The read lock spans the send: a full
// queue only blocks while the worker is draining it, and Close cannot
// slip between the closed check and the send.
func (aw *AsyncWriter) enqueue(op asyncOp) (*Pending, error) {
	aw.mu.RLock()
	defer aw.mu.RUnlock()
	if aw.closed {
		return nil, ErrClosed
	}
	op.pend = &Pending{done: make(chan struct{})}
	aw.ops <- op
	return op.pend, nil
}

// run is the worker loop: batch, apply, resolve, repeat; on Close, drain
// what was accepted and exit.
func (aw *AsyncWriter) run() {
	defer aw.wg.Done()
	for {
		select {
		case op := <-aw.ops:
			aw.apply(aw.fill(op))
		case <-aw.quit:
			for {
				select {
				case op := <-aw.ops:
					aw.apply(aw.fill(op))
				default:
					return
				}
			}
		}
	}
}

// fill greedily extends a batch with whatever is already queued, up to
// MaxBatch. No timers: a lone mutation is applied immediately, a burst
// is batched — latency is never traded for batching.
func (aw *AsyncWriter) fill(first asyncOp) []asyncOp {
	batch := make([]asyncOp, 1, aw.maxBatch)
	batch[0] = first
	for len(batch) < aw.maxBatch {
		select {
		case op := <-aw.ops:
			batch = append(batch, op)
		default:
			return batch
		}
	}
	return batch
}

// apply applies one batch under a single lock hold, group-commits it,
// and resolves every handle. A refused WAL append fails the rest of the
// batch (the writer is sticky-failed; retrying in-batch is pointless),
// but the mutations already applied keep their success — exactly the
// applied-prefix semantics of InsertBatch.
func (aw *AsyncWriter) apply(batch []asyncOp) {
	ix := aw.ix
	var w *wal.Writer
	var target int64
	mutated := false
	var aborted error

	func() {
		if ix.opts.Durable {
			ix.rotMu.RLock()
			defer ix.rotMu.RUnlock()
		}
		ix.mu.RLock()
		defer ix.mu.RUnlock()
		st := ix.st
		ix.meta.Lock()
		defer ix.meta.Unlock()
		closed := ix.closed
		for i := range batch {
			op := &batch[i]
			switch {
			case op.flush:
				// Barrier: resolved with the batch, carries no mutation.
			case closed:
				op.pend.err = ErrClosed
			case aborted != nil:
				op.pend.err = fmt.Errorf("parsearch: batch aborted: %w", aborted)
			case op.del:
				bw, t, err := ix.deleteOne(st, op.id)
				if err != nil {
					op.pend.err = err
					if bw == nil && ix.wal != nil && ix.wal.Err() != nil {
						aborted = err
					}
				} else {
					op.pend.id = op.id
					mutated = true
					if bw != nil {
						w, target = bw, t
					}
				}
			default:
				id, bw, t, err := ix.insertOne(st, op.point)
				if err != nil {
					op.pend.err = err
					aborted = err
				} else {
					op.pend.id = id
					mutated = true
					if bw != nil {
						w, target = bw, t
					}
				}
			}
		}
		if mutated {
			ix.reg.IngestBatches.Inc()
		}
	}()

	if mutated {
		sp := ix.newSpan(context.Background(), "ingest")
		sp.emit(TraceEvent{Stage: StageIngest, Disk: -1, Item: -1, Results: len(batch)})
	}
	var syncErr error
	if w != nil && w.Policy() == wal.SyncAlways {
		if err := w.SyncTo(target); err != nil {
			syncErr = fmt.Errorf("parsearch: syncing batch: %w", err)
		}
	}
	for i := range batch {
		op := &batch[i]
		if op.pend.err == nil && !op.flush && syncErr != nil {
			op.pend.err = syncErr
		}
		close(op.pend.done)
	}
}
